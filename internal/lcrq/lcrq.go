// Package lcrq implements the LCRQ of Morrison & Afek [PPoPP'13]: an
// unbounded MPMC FIFO queue built as a linked list of CRQs (circular
// ring queues driven by fetch-and-add). It is one of the baselines of
// the paper's Figure 8.
//
// # Substitution: 128-bit CAS2 -> packed 64-bit CAS
//
// The original CRQ updates a cell's (safe bit, index, value) triple
// with a 128-bit compare-and-swap. Go has no 128-bit CAS, so a cell is
// packed into one uint64:
//
//	[63]    safe bit
//	[62:36] index lap (the cell at slot i only ever sees indexes
//	        u with u mod R == i, so u/R preserves all comparisons;
//	        27 bits = 2^27 laps per ring, and rings are replaced long
//	        before that under the closing rule)
//	[35:0]  value (all-ones = empty); payloads are capped at 2^36-2
//
// This keeps all CRQ transitions single-word atomic, at the price of a
// bounded payload range, which the benchmarks respect (queue.MaxValue).
package lcrq

import (
	"fmt"
	"sync/atomic"

	"ffq/internal/spin"
)

const (
	safeBit  = uint64(1) << 63
	lapShift = 36
	lapMask  = (uint64(1) << 27) - 1
	valMask  = (uint64(1) << lapShift) - 1
	emptyVal = valMask // in-cell "no value" marker

	// MaxValue is the largest enqueueable payload.
	MaxValue = valMask - 1

	// closedBit marks a ring's tail counter as closed.
	closedBit = uint64(1) << 63

	// starvationLimit bounds how long an enqueuer fights an unsafe /
	// contended ring before closing it and appending a new one.
	starvationLimit = 8
)

func packCell(safe bool, lap uint64, val uint64) uint64 {
	w := (lap&lapMask)<<lapShift | (val & valMask)
	if safe {
		w |= safeBit
	}
	return w
}

func unpackCell(w uint64) (safe bool, lap uint64, val uint64) {
	return w&safeBit != 0, (w >> lapShift) & lapMask, w & valMask
}

// crq is one bounded circular ring queue.
type crq struct {
	mask  uint64
	logR  uint
	cells []atomic.Uint64
	_     [64]byte
	head  atomic.Uint64
	_     [64]byte
	tail  atomic.Uint64 // bit 63 = closed
	_     [64]byte
	next  atomic.Pointer[crq]
}

func newCRQ(capacity int, logR uint) *crq {
	r := &crq{mask: uint64(capacity - 1), logR: logR, cells: make([]atomic.Uint64, capacity)}
	for i := range r.cells {
		// lap 0, empty, safe
		r.cells[i].Store(packCell(true, 0, emptyVal))
	}
	return r
}

func (r *crq) lapOf(u uint64) uint64 { return u >> r.logR }

// enqueue attempts to insert v; false means the ring is (now) closed.
func (r *crq) enqueue(v uint64) bool {
	tries := 0
	//ffq:ignore spin-backoff bounded by starvationLimit: a starved enqueuer closes the ring and returns instead of spinning
	for {
		t := r.tail.Add(1) - 1
		if t&closedBit != 0 {
			return false
		}
		c := &r.cells[t&r.mask]
		w := c.Load()
		safe, lap, val := unpackCell(w)
		myLap := r.lapOf(t)
		if val == emptyVal && lap <= myLap && (safe || r.head.Load() <= t) {
			// CAS2((safe,lap,empty) -> (1,myLap,v))
			if c.CompareAndSwap(w, packCell(true, myLap, v)) {
				return true
			}
		}
		// Failed: check for fullness/starvation and close if needed.
		h := r.head.Load()
		tries++
		if t-h >= uint64(len(r.cells)) || tries > starvationLimit {
			r.tail.Or(closedBit)
			return false
		}
	}
}

// dequeue removes the head item. ok=false means the ring was observed
// empty (the caller then checks whether it is closed and drained).
func (r *crq) dequeue() (uint64, bool) {
	//ffq:ignore spin-backoff every iteration consumes a fresh head index and exits via the empty check once head reaches tail
	for {
		h := r.head.Add(1) - 1
		c := &r.cells[h&r.mask]
		myLap := r.lapOf(h)
		//ffq:ignore spin-backoff per-cell transition retry: a failed CAS means another thread completed a transition on this cell
		for {
			w := c.Load()
			safe, lap, val := unpackCell(w)
			if lap > myLap {
				break // our index is long gone; try the next head
			}
			if val != emptyVal {
				if lap == myLap {
					// Transition: consume, advancing the cell one lap.
					if c.CompareAndSwap(w, packCell(safe, myLap+1, emptyVal)) {
						return val, true
					}
				} else {
					// An old value parked here; mark the cell unsafe so
					// the lagging enqueuer cannot complete blindly.
					if c.CompareAndSwap(w, packCell(false, lap, val)) {
						break
					}
				}
			} else {
				// Empty: advance the cell to our lap+1 so a slow
				// enqueuer with our index cannot deposit in the past.
				if c.CompareAndSwap(w, packCell(safe, myLap+1, emptyVal)) {
					break
				}
			}
		}
		// Empty check.
		t := r.tail.Load() &^ closedBit
		if t <= h+1 {
			r.fixState()
			return 0, false
		}
	}
}

// fixState resynchronizes head and tail after head overtakes tail.
func (r *crq) fixState() {
	//ffq:ignore spin-backoff reconcile loop: a failed CAS means another thread reconciled or moved tail, both of which terminate it
	for {
		t := r.tail.Load()
		h := r.head.Load()
		if r.tail.Load() != t {
			continue
		}
		if h <= t&^closedBit {
			return
		}
		if r.tail.CompareAndSwap(t, h|(t&closedBit)) {
			return
		}
	}
}

// Queue is the unbounded linked list of CRQs.
type Queue struct {
	ringCap int
	logR    uint
	_       [64]byte
	head    atomic.Pointer[crq]
	_       [64]byte
	tail    atomic.Pointer[crq]
	_       [64]byte
}

// New returns an empty LCRQ whose rings hold ringCap (a power of two)
// items each.
func New(ringCap int) (*Queue, error) {
	if ringCap < 2 || ringCap&(ringCap-1) != 0 {
		return nil, fmt.Errorf("lcrq: ring capacity %d is not a power of two >= 2", ringCap)
	}
	logR := uint(0)
	for 1<<logR < ringCap {
		logR++
	}
	q := &Queue{ringCap: ringCap, logR: logR}
	r := newCRQ(ringCap, logR)
	q.head.Store(r)
	q.tail.Store(r)
	return q, nil
}

// Enqueue inserts v (which must be <= MaxValue). Lock-free.
func (q *Queue) Enqueue(v uint64) {
	if v > MaxValue {
		panic("lcrq: value exceeds the 36-bit payload bound of the packed-cell port")
	}
	for spins := 0; ; spins++ {
		spin.RetryYield(spins)
		r := q.tail.Load()
		if nxt := r.next.Load(); nxt != nil {
			q.tail.CompareAndSwap(r, nxt) // help swing tail
			continue
		}
		if r.enqueue(v) {
			return
		}
		// Ring closed: append a fresh ring seeded with v.
		nr := newCRQ(q.ringCap, q.logR)
		nr.tail.Store(1)
		nr.cells[0].Store(packCell(true, 0, v))
		if r.next.CompareAndSwap(nil, nr) {
			q.tail.CompareAndSwap(r, nr)
			return
		}
	}
}

// Dequeue removes the head item; ok=false if the queue was observed
// empty. Lock-free.
func (q *Queue) Dequeue() (uint64, bool) {
	for spins := 0; ; spins++ {
		spin.RetryYield(spins)
		r := q.head.Load()
		if v, ok := r.dequeue(); ok {
			return v, true
		}
		// Ring empty: if no successor, the whole queue is empty.
		if r.next.Load() == nil {
			return 0, false
		}
		// Successor exists; this ring will receive no new items (it is
		// closed). Re-check once to drain stragglers, then retire it.
		if v, ok := r.dequeue(); ok {
			return v, true
		}
		q.head.CompareAndSwap(r, r.next.Load())
	}
}
