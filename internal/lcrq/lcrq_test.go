package lcrq

import (
	"testing"
	"testing/quick"

	"ffq/internal/queue"
	"ffq/internal/queuetest"
)

func factory() queue.Factory {
	return queue.Factory{
		Name: "lcrq",
		New: func(capacity, _ int) queue.Shared {
			q, err := New(capacity)
			if err != nil {
				panic(err)
			}
			return queue.SelfRegistering{Q: q}
		},
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(safe bool, lap32 uint32, val32 uint32) bool {
		lap := uint64(lap32) & lapMask
		val := uint64(val32) // always < 2^36-1
		s, l, v := unpackCell(packCell(safe, lap, val))
		return s == safe && l == lap && v == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	for _, c := range []int{0, 1, 3, 100} {
		if _, err := New(c); err == nil {
			t.Errorf("ring capacity %d accepted", c)
		}
	}
	if _, err := New(1024); err != nil {
		t.Fatal(err)
	}
}

func TestValueBound(t *testing.T) {
	q, _ := New(64)
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range value")
		}
	}()
	q.Enqueue(MaxValue + 1)
}

func TestSequential(t *testing.T) {
	queuetest.Sequential(t, factory(), queuetest.DefaultOptions())
}

func TestEmpty(t *testing.T) {
	queuetest.EmptyBehaviour(t, factory())
}

func TestConcurrent(t *testing.T) {
	queuetest.Concurrent(t, factory(), queuetest.DefaultOptions())
}

func TestConcurrentTinyRing(t *testing.T) {
	// Tiny rings force frequent ring closings and list growth.
	opts := queuetest.DefaultOptions()
	opts.Capacity = 4
	opts.ItemsPerProducer = 2000
	queuetest.Concurrent(t, factory(), opts)
}

func TestRingClosingAppendsNewRing(t *testing.T) {
	q, _ := New(2)
	// Fill beyond one ring's capacity without dequeuing: the first
	// ring must close and a second must be appended.
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(i)
	}
	if q.head.Load() == q.tail.Load() {
		t.Fatal("expected multiple rings after overfilling a size-2 ring")
	}
	for i := uint64(1); i <= 10; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue returned an item")
	}
}

func TestFixState(t *testing.T) {
	r := newCRQ(4, 2)
	// Dequeue on empty ring overshoots head past tail; fixState must
	// resynchronize so subsequent enqueues are not lost.
	if _, ok := r.dequeue(); ok {
		t.Fatal("empty ring returned item")
	}
	if !r.enqueue(7) {
		t.Fatal("enqueue failed on open ring")
	}
	if v, ok := r.dequeue(); !ok || v != 7 {
		t.Fatalf("got %d,%v want 7", v, ok)
	}
}

// White-box: a dequeuer that finds an older-lap value parked in its
// cell must mark the cell unsafe (so the lagging enqueuer cannot
// complete blindly), and enqueuers must refuse unsafe cells when the
// consumer may still visit them.
func TestUnsafeTransition(t *testing.T) {
	r := newCRQ(4, 2)
	// Plant an old value: lap 0 at cell 0.
	r.cells[0].Store(packCell(true, 0, 7))
	// A consumer at head 4 (lap 1) maps to cell 0 and must not consume
	// the lap-0 value.
	r.head.Store(4)
	if v, ok := r.dequeue(); ok {
		t.Fatalf("dequeue stole an old-lap value: %d", v)
	}
	safe, lap, val := unpackCell(r.cells[0].Load())
	if safe {
		t.Fatal("cell not marked unsafe")
	}
	if lap != 0 || val != 7 {
		t.Fatalf("cell disturbed: lap=%d val=%d", lap, val)
	}
	// An enqueuer acquiring an index that maps to the unsafe cell with
	// head beyond it must refuse the cell (it may retry elsewhere or
	// close the ring, but must never overwrite the parked value).
	r.tail.Store(4) // next enqueue index 4 -> cell 0
	r.head.Store(9) // head well past index 4: unsafe condition fails
	_ = r.enqueue(9)
	_, _, val = unpackCell(r.cells[0].Load())
	if val == 9 {
		t.Fatal("enqueue used an unsafe cell it had to refuse")
	}
}

// Closing: an enqueue into a full ring must close it rather than spin.
func TestFullRingCloses(t *testing.T) {
	r := newCRQ(2, 1)
	if !r.enqueue(1) || !r.enqueue(2) {
		t.Fatal("fill failed")
	}
	if r.enqueue(3) {
		t.Fatal("enqueue succeeded on a full ring")
	}
	if r.tail.Load()&closedBit == 0 {
		t.Fatal("full ring did not close")
	}
	// Parked values remain retrievable.
	if v, ok := r.dequeue(); !ok || v != 1 {
		t.Fatalf("got %d,%v", v, ok)
	}
	if v, ok := r.dequeue(); !ok || v != 2 {
		t.Fatalf("got %d,%v", v, ok)
	}
}
