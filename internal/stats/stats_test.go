package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty stream not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 5) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if !almostEqual(s.Variance(), 32.0/7.0) {
		t.Fatalf("Variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	sum := s.Summarize()
	if sum.N != 8 || !almostEqual(sum.Mean, 5) {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: Welford must agree with the naive two-pass computation.
func TestStreamMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var s Stream
		var sum float64
		for _, x := range clean {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, x := range clean {
			m2 += (x - mean) * (x - mean)
		}
		naiveVar := m2 / float64(len(clean)-1)
		scale := 1 + math.Abs(mean) + naiveVar
		return math.Abs(s.Mean()-mean) < 1e-6*scale && math.Abs(s.Variance()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRelStddev(t *testing.T) {
	var s Stream
	s.Add(10)
	s.Add(10)
	if s.RelStddev() != 0 {
		t.Fatalf("RelStddev of constant = %v", s.RelStddev())
	}
	var z Stream
	z.Add(0)
	z.Add(0)
	if z.RelStddev() != 0 {
		t.Fatal("RelStddev with zero mean should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Input must not be mutated (copy-sort).
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean([1 2 3]) != 2")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := 0; i < 100; i++ {
		h.Add(100) // bucket [64,128)
	}
	h.Add(100000) // far tail
	if h.Total() != 101 {
		t.Fatalf("Total = %d", h.Total())
	}
	if q := h.Quantile(0.5); q != 128 {
		t.Fatalf("median upper bound = %v, want 128", q)
	}
	if q := h.Quantile(1.0); q < 100000 {
		t.Fatalf("max quantile %v below the tail value", q)
	}
	if m := h.Mean(); !almostEqual(m, (100.0*100+100000)/101) {
		t.Fatalf("Mean = %v", m)
	}
	var buckets int
	h.Buckets(func(edge float64, count uint64) { buckets++ })
	if buckets != 2 {
		t.Fatalf("non-empty buckets = %d, want 2", buckets)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(10)
	a.Add(100)
	b.Add(1000)
	a.Merge(&b)
	a.Merge(nil)
	if a.Total() != 3 {
		t.Fatalf("Total = %d", a.Total())
	}
	if !almostEqual(a.Mean(), (10.0+100+1000)/3) {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if q := a.Quantile(1.0); q < 1000 {
		t.Fatalf("max quantile %v", q)
	}
}
