// Package stats provides the statistics used by the benchmark
// harness: streaming mean/variance (Welford), min/max, percentiles,
// and a log-bucketed latency histogram. The paper reports the average
// of 10 runs (Section V-A); Summary carries everything needed to do
// the same and to report dispersion alongside.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates observations with Welford's online algorithm.
type Stream struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Stream) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Stream) Stddev() float64 { return math.Sqrt(s.Variance()) }

// RelStddev returns stddev/mean (0 when the mean is 0).
func (s *Stream) RelStddev() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.Stddev() / s.mean
}

// Summary is a frozen view of a Stream.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, Max     float64
}

// Summarize freezes the stream.
func (s *Stream) Summarize() Summary {
	return Summary{N: s.n, Mean: s.mean, Stddev: s.Stddev(), Min: s.min, Max: s.max}
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4g sd=%.2g min=%.4g max=%.4g n=%d", s.Mean, s.Stddev, s.Min, s.Max, s.N)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation; xs need not be sorted (a copy is sorted).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(c) {
		return c[len(c)-1]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a base-2 log-bucketed histogram for latency-like
// non-negative values.
type Histogram struct {
	counts [64]uint64
	total  uint64
	sum    float64
}

// Add records v (values < 1 land in bucket 0).
func (h *Histogram) Add(v float64) {
	b := 0
	for x := v; x >= 2 && b < 63; x /= 2 {
		b++
	}
	h.counts[b]++
	h.total++
	h.sum += v
}

// Total returns the number of recorded values.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns an upper bound for the q-quantile (0<=q<=1) using
// bucket upper edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > target {
			return math.Pow(2, float64(b+1))
		}
	}
	return math.Pow(2, 64)
}

// Merge adds the contents of other into h (bucket-wise; the mean is
// preserved exactly, quantiles at bucket resolution).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for b := range other.counts {
		h.counts[b] += other.counts[b]
	}
	h.total += other.total
	h.sum += other.sum
}

// Buckets invokes fn for every non-empty bucket with its lower edge
// and count, in ascending order.
func (h *Histogram) Buckets(fn func(lowerEdge float64, count uint64)) {
	for b, c := range h.counts {
		if c > 0 {
			fn(math.Pow(2, float64(b)), c)
		}
	}
}
