package obs

import (
	"sync/atomic"
	"time"
)

// Stall watchdog. A consumer parked between its fetch-and-add and the
// producer's rank publication — or a producer circling a full queue —
// spins every peer that depends on it (the failure mode wCQ documents
// for FFQ-family queues). The watchdog makes those episodes visible:
// every blocking wait site periodically checks its elapsed wait
// against a threshold, and a crossing emits a timestamped StallEvent
// (role, rank, duration) into a fixed-size lock-free ring plus the
// stall counter; when the wait finally completes, its full duration
// lands in a log2 stall-duration histogram. An episode that never
// completes therefore still shows up in the event ring and counter —
// that is the point of a watchdog — while the histogram counts only
// finished stalls.

// Role identifies which side of a queue an event belongs to.
type Role uint8

const (
	// RoleProducer marks producer-side (full-queue) waits.
	RoleProducer Role = iota
	// RoleConsumer marks consumer-side (empty-rank) waits.
	RoleConsumer
)

// String names the role.
func (r Role) String() string {
	if r == RoleProducer {
		return "producer"
	}
	return "consumer"
}

// MarshalText renders the role name into JSON-friendly text.
func (r Role) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText parses a role name.
func (r *Role) UnmarshalText(b []byte) error {
	if string(b) == "producer" {
		*r = RoleProducer
	} else {
		*r = RoleConsumer
	}
	return nil
}

// StallEvent is one detected stall episode.
type StallEvent struct {
	// Role is the stalled side.
	Role Role `json:"role"`
	// Rank is the queue rank the stalled operation was waiting on
	// (-1 when the wait site has no single rank, e.g. a lane scan).
	Rank int64 `json:"rank"`
	// DurationNS is the elapsed wait when the event was emitted: the
	// threshold-crossing elapsed time for in-progress detections, the
	// full wait for episodes first noticed at completion.
	DurationNS int64 `json:"duration_ns"`
	// UnixNano is the wall-clock detection time.
	UnixNano int64 `json:"unix_nano"`
}

// DefaultStallRing is the event-ring capacity EnableStallWatchdog uses
// when given a non-positive size.
const DefaultStallRing = 64

// DefaultStallThreshold is the wait duration treated as a stall when
// the watchdog is enabled without an explicit threshold.
const DefaultStallThreshold = time.Millisecond

// stallCheckMask throttles the in-loop clock reads: a spin loop calls
// Recorder.StallCheck every iteration, but only one iteration in
// stallCheckMask+1 actually reads the clock. Wait loops already cost
// a backoff per iteration, so the amortized clock read is noise.
const stallCheckMask = 63

// stallSlot is one seqlock-protected ring entry, padded to a cache
// line so concurrent writers on neighbouring slots do not false-share.
// The event fields are individual atomics: the seqlock makes the
// multi-field copy logically consistent, but under the Go memory model
// only atomic accesses keep the concurrent reader race-free.
type stallSlot struct {
	// seq is even when the event is stable, odd while a writer owns
	// the slot. Writers claim with a CAS even->odd and drop the event
	// on a lost race, so a reader that sees the same even value before
	// and after its copy has a consistent event.
	seq  atomic.Int64
	role atomic.Int64
	rank atomic.Int64
	dur  atomic.Int64
	when atomic.Int64
	_    [cacheLine - 5*8]byte
}

// Stall is the watchdog extension of a Recorder, attached with
// Recorder.EnableStallWatchdog. Exported because the hotpath-purity
// checker sanctions blocks guarded by a *Stall nil-check exactly as it
// does *Recorder guards.
type Stall struct {
	thresholdNS int64
	mask        int64
	events      atomic.Int64
	dropped     atomic.Int64
	next        atomic.Int64
	count       atomic.Int64
	sumNS       atomic.Int64
	buckets     [HistBuckets]atomic.Int64
	ring        []stallSlot
}

// newStall builds a watchdog with the given threshold and ring size
// (rounded up to a power of two).
func newStall(threshold time.Duration, ring int) *Stall {
	if threshold <= 0 {
		threshold = DefaultStallThreshold
	}
	if ring <= 0 {
		ring = DefaultStallRing
	}
	size := 1
	for size < ring {
		size <<= 1
	}
	return &Stall{thresholdNS: int64(threshold), mask: int64(size - 1), ring: make([]stallSlot, size)}
}

// Threshold returns the stall threshold.
func (st *Stall) Threshold() time.Duration { return time.Duration(st.thresholdNS) }

// check reports whether the wait that began at waitStart has crossed
// the stall threshold, emitting the detection event when it has.
// Called from inside a Recorder instrumentation guard.
func (st *Stall) check(role Role, rank int64, waitStart time.Time) bool {
	d := int64(time.Since(waitStart))
	if d < st.thresholdNS {
		return false
	}
	st.emit(role, rank, d)
	return true
}

// complete records the final duration of a finished wait: stalled
// waits land in the duration histogram, and episodes that slipped past
// the in-loop checks (reported=false) emit their event now.
func (st *Stall) complete(role Role, rank, ns int64, reported bool) {
	if ns < st.thresholdNS {
		return
	}
	st.count.Add(1)
	st.sumNS.Add(ns)
	st.buckets[bucketOf(ns)].Add(1)
	if !reported {
		st.emit(role, rank, ns)
	}
}

// emit appends one event to the ring. Writers never block: the cursor
// is claimed with one fetch-and-add and the slot with one CAS; a slot
// still owned by a slower writer drops the event (counted) instead of
// waiting, keeping the ring lock-free for every writer.
func (st *Stall) emit(role Role, rank, durNS int64) {
	st.events.Add(1)
	i := (st.next.Add(1) - 1) & st.mask
	s := &st.ring[i]
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		st.dropped.Add(1)
		return
	}
	s.role.Store(int64(role))
	s.rank.Store(rank)
	s.dur.Store(durNS)
	s.when.Store(time.Now().UnixNano())
	s.seq.Store(seq + 2)
}

// recent returns up to max events, newest first. Slots mid-write or
// torn (seq changed during the copy) are skipped — the ring favours
// writer progress over reader completeness.
func (st *Stall) recent(max int) []StallEvent {
	if max <= 0 || max > len(st.ring) {
		max = len(st.ring)
	}
	written := st.next.Load()
	if written == 0 {
		return nil
	}
	out := make([]StallEvent, 0, max)
	//ffq:ignore spin-backoff bounded ring scan: one pass over len(ring) slots, torn slots are skipped rather than retried
	for i := int64(0); i < int64(len(st.ring)) && len(out) < max; i++ {
		s := &st.ring[(written-1-i)&st.mask]
		seq := s.seq.Load()
		if seq&1 != 0 {
			continue
		}
		ev := StallEvent{
			Role:       Role(s.role.Load()),
			Rank:       s.rank.Load(),
			DurationNS: s.dur.Load(),
			UnixNano:   s.when.Load(),
		}
		if s.seq.Load() != seq || ev.UnixNano == 0 {
			continue
		}
		out = append(out, ev)
	}
	return out
}
