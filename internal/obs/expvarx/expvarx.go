// Package expvarx exposes registered queue Recorders through the two
// monitoring faces Go services conventionally offer, using only the
// standard library:
//
//   - expvar: one "ffq" variable whose JSON value maps queue name to
//     its obs.Stats snapshot (shows up under /debug/vars with the
//     default http mux).
//   - Prometheus text exposition format (version 0.0.4) via Handler,
//     a plain http.Handler serving counters, depth gauges and the
//     blocking-wait histogram for every registered queue.
//
// Queues are registered by name with Register; the name becomes the
// {queue="..."} label. Registration is process-global, mirroring
// expvar's own model.
package expvarx

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"ffq/internal/obs"
)

// QueueInfo describes one registered queue: how to snapshot its stats
// and, optionally, its instantaneous depth and fixed capacity (both
// exported as gauges when present).
type QueueInfo struct {
	// Stats snapshots the queue's counters. Required.
	Stats func() obs.Stats
	// Len returns the instantaneous queue depth. Optional.
	Len func() int
	// Cap is the queue capacity; exported when > 0.
	Cap int
	// LaneLens returns per-lane depths for sharded queues (exported as
	// the ffq_lane_depth gauge with a lane label). Optional.
	LaneLens func() []int
}

var (
	mu      sync.Mutex
	queues  = map[string]QueueInfo{}
	publish sync.Once
)

// Register adds a queue under name. It fails when the name is taken or
// the info has no Stats function. The first registration also publishes
// the aggregate "ffq" expvar variable.
func Register(name string, info QueueInfo) error {
	if info.Stats == nil {
		return fmt.Errorf("expvarx: queue %q registered without a Stats function", name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := queues[name]; dup {
		return fmt.Errorf("expvarx: queue %q already registered", name)
	}
	queues[name] = info
	publish.Do(func() {
		expvar.Publish("ffq", expvar.Func(func() any { return snapshotAll() }))
	})
	return nil
}

// Unregister removes a queue; unknown names are a no-op. The expvar
// variable stays published (expvar has no unpublish) and simply stops
// listing the queue.
func Unregister(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(queues, name)
}

// queueSnapshot is the expvar JSON value for one queue.
type queueSnapshot struct {
	Stats obs.Stats `json:"stats"`
	Len   int       `json:"len,omitempty"`
	Cap   int       `json:"cap,omitempty"`
	Lanes []int     `json:"lanes,omitempty"`
}

// snapshotAll materializes every registered queue's current state.
func snapshotAll() map[string]queueSnapshot {
	mu.Lock()
	infos := make(map[string]QueueInfo, len(queues))
	for n, i := range queues {
		infos[n] = i
	}
	mu.Unlock()
	out := make(map[string]queueSnapshot, len(infos))
	for n, i := range infos {
		s := queueSnapshot{Stats: i.Stats(), Cap: i.Cap}
		if i.Len != nil {
			s.Len = i.Len()
		}
		if i.LaneLens != nil {
			s.Lanes = i.LaneLens()
		}
		out[n] = s
	}
	return out
}

// Histogram buckets exported to Prometheus: 2^minHistExp ns (64ns) up
// to 2^maxHistExp ns (~17s), then +Inf. A fixed range keeps the bucket
// layout stable across scrapes, as Prometheus requires.
const (
	minHistExp = 6
	maxHistExp = 34
)

// counterMetric pairs a Prometheus metric name with its extractor.
type counterMetric struct {
	name, help string
	value      func(obs.Stats) int64
}

var counterMetrics = []counterMetric{
	{"ffq_enqueues_total", "Completed enqueue operations.", func(s obs.Stats) int64 { return s.Enqueues }},
	{"ffq_dequeues_total", "Completed dequeue operations.", func(s obs.Stats) int64 { return s.Dequeues }},
	{"ffq_full_spins_total", "Producer spin iterations on a full queue.", func(s obs.Stats) int64 { return s.FullSpins }},
	{"ffq_empty_spins_total", "Consumer spin iterations on an empty queue.", func(s obs.Stats) int64 { return s.EmptySpins }},
	{"ffq_producer_yields_total", "Producer backoffs that yielded to the scheduler.", func(s obs.Stats) int64 { return s.ProducerYields }},
	{"ffq_consumer_yields_total", "Consumer backoffs that yielded to the scheduler.", func(s obs.Stats) int64 { return s.ConsumerYields }},
	{"ffq_gaps_created_total", "Ranks skipped by producers (gap announcements).", func(s obs.Stats) int64 { return s.GapsCreated }},
	{"ffq_gaps_skipped_total", "Skipped ranks discarded by consumers.", func(s obs.Stats) int64 { return s.GapsSkipped }},
	{"ffq_segments_allocated_total", "Segments allocated by unbounded queues.", func(s obs.Stats) int64 { return s.SegsAllocated }},
	{"ffq_segments_recycled_total", "Segments reused from the recycling pool.", func(s obs.Stats) int64 { return s.SegsRecycled }},
	{"ffq_segments_retired_total", "Drained segments unlinked from unbounded queues.", func(s obs.Stats) int64 { return s.SegsRetired }},
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Handler returns an http.Handler serving the Prometheus text
// exposition of every registered queue.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, Exposition())
	})
}

// writeTo renders all metrics. Kept unexported behind Exposition and
// Handler.
func writeTo(b *strings.Builder) {
	snaps := snapshotAll()
	names := make([]string, 0, len(snaps))
	for n := range snaps {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, m := range counterMetrics {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", m.name, m.help, m.name)
		for _, n := range names {
			fmt.Fprintf(b, "%s{queue=%q} %d\n", m.name, escapeLabel(n), m.value(snaps[n].Stats))
		}
	}

	fmt.Fprintf(b, "# HELP ffq_queue_depth Instantaneous queue length.\n# TYPE ffq_queue_depth gauge\n")
	for _, n := range names {
		fmt.Fprintf(b, "ffq_queue_depth{queue=%q} %d\n", escapeLabel(n), snaps[n].Len)
	}
	fmt.Fprintf(b, "# HELP ffq_queue_capacity Configured queue capacity.\n# TYPE ffq_queue_capacity gauge\n")
	for _, n := range names {
		if snaps[n].Cap > 0 {
			fmt.Fprintf(b, "ffq_queue_capacity{queue=%q} %d\n", escapeLabel(n), snaps[n].Cap)
		}
	}

	fmt.Fprintf(b, "# HELP ffq_lane_depth Instantaneous per-lane depth of sharded queues.\n# TYPE ffq_lane_depth gauge\n")
	for _, n := range names {
		for lane, depth := range snaps[n].Lanes {
			fmt.Fprintf(b, "ffq_lane_depth{queue=%q,lane=\"%d\"} %d\n", escapeLabel(n), lane, depth)
		}
	}

	fmt.Fprintf(b, "# HELP ffq_segments_live Segments currently linked in unbounded queues.\n# TYPE ffq_segments_live gauge\n")
	for _, n := range names {
		fmt.Fprintf(b, "ffq_segments_live{queue=%q} %d\n", escapeLabel(n), snaps[n].Stats.SegsLive)
	}

	fmt.Fprintf(b, "# HELP ffq_batch_items Items per batch operation.\n# TYPE ffq_batch_items histogram\n")
	for _, n := range names {
		s := snaps[n].Stats
		esc := escapeLabel(n)
		var cum int64
		// The last bucket also absorbs oversized batches (it is a
		// clamp), so it is folded into +Inf rather than given a finite
		// upper bound.
		for e := 0; e < obs.BatchHistBuckets-1; e++ {
			if len(s.BatchBuckets) > e {
				cum += s.BatchBuckets[e]
			}
			fmt.Fprintf(b, "ffq_batch_items_bucket{queue=%q,le=\"%d\"} %d\n", esc, int64(1)<<e, cum)
		}
		fmt.Fprintf(b, "ffq_batch_items_bucket{queue=%q,le=\"+Inf\"} %d\n", esc, s.BatchCount)
		fmt.Fprintf(b, "ffq_batch_items_sum{queue=%q} %d\n", esc, s.BatchSumItems)
		fmt.Fprintf(b, "ffq_batch_items_count{queue=%q} %d\n", esc, s.BatchCount)
	}

	fmt.Fprintf(b, "# HELP ffq_wait_ns Blocking-path wait time in nanoseconds.\n# TYPE ffq_wait_ns histogram\n")
	for _, n := range names {
		s := snaps[n].Stats
		esc := escapeLabel(n)
		var cum int64
		for e := 0; e <= maxHistExp; e++ {
			if len(s.WaitBuckets) > e {
				cum += s.WaitBuckets[e]
			}
			if e < minHistExp {
				continue
			}
			fmt.Fprintf(b, "ffq_wait_ns_bucket{queue=%q,le=\"%d\"} %d\n", esc, obs.BucketBound(e), cum)
		}
		fmt.Fprintf(b, "ffq_wait_ns_bucket{queue=%q,le=\"+Inf\"} %d\n", esc, s.WaitCount)
		fmt.Fprintf(b, "ffq_wait_ns_sum{queue=%q} %d\n", esc, s.WaitSumNS)
		fmt.Fprintf(b, "ffq_wait_ns_count{queue=%q} %d\n", esc, s.WaitCount)
	}

	// Per-op latency and stall families appear only for queues that
	// have the corresponding extension enabled (the snapshots are nil /
	// zero otherwise), keeping the default exposition unchanged.
	if anyOpLatency(snaps) {
		fmt.Fprintf(b, "# HELP ffq_op_latency_ns Full per-operation latency in nanoseconds.\n# TYPE ffq_op_latency_ns histogram\n")
		for _, n := range names {
			s := snaps[n].Stats
			writeOpLatency(b, escapeLabel(n), "enqueue", s.EnqLatency)
			writeOpLatency(b, escapeLabel(n), "dequeue", s.DeqLatency)
		}
	}
	if anyStalls(snaps) {
		fmt.Fprintf(b, "# HELP ffq_stall_events_total Detected stall episodes (waits beyond the watchdog threshold).\n# TYPE ffq_stall_events_total counter\n")
		for _, n := range names {
			if snaps[n].Stats.StallThresholdNS > 0 {
				fmt.Fprintf(b, "ffq_stall_events_total{queue=%q} %d\n", escapeLabel(n), snaps[n].Stats.StallEvents)
			}
		}
		fmt.Fprintf(b, "# HELP ffq_stall_seconds Completed stall durations in seconds.\n# TYPE ffq_stall_seconds histogram\n")
		for _, n := range names {
			s := snaps[n].Stats
			if s.StallThresholdNS == 0 {
				continue
			}
			esc := escapeLabel(n)
			var cum int64
			for e := 0; e <= maxHistExp; e++ {
				if len(s.StallBuckets) > e {
					cum += s.StallBuckets[e]
				}
				if e < minHistExp {
					continue
				}
				fmt.Fprintf(b, "ffq_stall_seconds_bucket{queue=%q,le=\"%g\"} %d\n", esc, float64(obs.BucketBound(e))/1e9, cum)
			}
			fmt.Fprintf(b, "ffq_stall_seconds_bucket{queue=%q,le=\"+Inf\"} %d\n", esc, s.StallCount)
			fmt.Fprintf(b, "ffq_stall_seconds_sum{queue=%q} %g\n", esc, float64(s.StallSumNS)/1e9)
			fmt.Fprintf(b, "ffq_stall_seconds_count{queue=%q} %d\n", esc, s.StallCount)
		}
	}

	writeCollected(b)
}

// anyOpLatency reports whether any registered queue carries per-op
// latency snapshots.
func anyOpLatency(snaps map[string]queueSnapshot) bool {
	for _, s := range snaps {
		if s.Stats.EnqLatency != nil || s.Stats.DeqLatency != nil {
			return true
		}
	}
	return false
}

// anyStalls reports whether any registered queue has the stall
// watchdog armed (a non-zero threshold marks the extension present
// even before the first stall).
func anyStalls(snaps map[string]queueSnapshot) bool {
	for _, s := range snaps {
		if s.Stats.StallThresholdNS > 0 {
			return true
		}
	}
	return false
}

// writeOpLatency emits one queue/op series of the ffq_op_latency_ns
// histogram, folding the HDR buckets down to the log2 exposition grid.
func writeOpLatency(b *strings.Builder, esc, op string, lat *obs.LatencySnapshot) {
	if lat == nil {
		return
	}
	log2 := lat.Log2Buckets()
	var cum int64
	for e := 0; e <= maxHistExp; e++ {
		if len(log2) > e {
			cum += log2[e]
		}
		if e < minHistExp {
			continue
		}
		fmt.Fprintf(b, "ffq_op_latency_ns_bucket{queue=%q,op=%q,le=\"%d\"} %d\n", esc, op, obs.BucketBound(e), cum)
	}
	fmt.Fprintf(b, "ffq_op_latency_ns_bucket{queue=%q,op=%q,le=\"+Inf\"} %d\n", esc, op, lat.Count)
	fmt.Fprintf(b, "ffq_op_latency_ns_sum{queue=%q,op=%q} %d\n", esc, op, lat.SumNS)
	fmt.Fprintf(b, "ffq_op_latency_ns_count{queue=%q,op=%q} %d\n", esc, op, lat.Count)
}

// EmitLatencySamples folds an obs.LatencySnapshot onto the
// exposition's log2 bucket grid and emits it through a Collector's
// callback as a cumulative histogram family (_bucket/_sum/_count), so
// collectors can publish latency histograms alongside their scalar
// samples. Nil or empty snapshots emit nothing.
func EmitLatencySamples(emit func(Sample), name, help string, labels map[string]string, lat *obs.LatencySnapshot) {
	if lat == nil || lat.Count == 0 {
		return
	}
	bucket := func(le string, cum int64) {
		l := map[string]string{"le": le}
		for k, v := range labels {
			l[k] = v
		}
		emit(Sample{Name: name + "_bucket", Help: help, Type: "histogram", Labels: l, Value: float64(cum)})
	}
	log2 := lat.Log2Buckets()
	var cum int64
	for e := 0; e <= maxHistExp; e++ {
		if len(log2) > e {
			cum += log2[e]
		}
		if e < minHistExp {
			continue
		}
		bucket(fmt.Sprintf("%d", obs.BucketBound(e)), cum)
	}
	bucket("+Inf", lat.Count)
	emit(Sample{Name: name + "_sum", Help: help, Type: "histogram", Labels: labels, Value: float64(lat.SumNS)})
	emit(Sample{Name: name + "_count", Help: help, Type: "histogram", Labels: labels, Value: float64(lat.Count)})
}

// Exposition renders the full Prometheus text body as a string.
func Exposition() string {
	var b strings.Builder
	writeTo(&b)
	return b.String()
}
