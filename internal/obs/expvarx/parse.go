package expvarx

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Parse reads a Prometheus text-format (version 0.0.4) exposition and
// returns its samples in document order. It is the read-side twin of
// the Handler/Exposition writers, used by ffq-top's broker scrape view
// and by tests that round-trip the exposition. # HELP and # TYPE
// comments annotate the samples that follow them; unknown comment
// lines are skipped. Histogram series come back as ordinary samples
// (the _bucket/_sum/_count names are preserved).
func Parse(r io.Reader) ([]Sample, error) {
	var out []Sample
	help := map[string]string{}
	typ := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// "# HELP name text" / "# TYPE name kind"; anything else is a
			// plain comment.
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "HELP" {
				help[fields[2]] = fields[3]
			} else if len(fields) >= 4 && fields[1] == "TYPE" {
				typ[fields[2]] = strings.TrimSpace(fields[3])
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("expvarx: line %d: %w", lineNo, err)
		}
		base := s.Name
		if h, ok := help[base]; ok {
			s.Help = h
		}
		if t, ok := typ[base]; ok {
			s.Type = t
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("expvarx: scan: %w", err)
	}
	return out, nil
}

// parseSample decodes one `name{label="v",...} value` line.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	// Metric name runs up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = rest[:end]
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp (exposition allows one) is ignored.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes a `{k="v",...}` block, returning the remainder
// of the line after the closing brace. Escapes (\\, \", \n) in label
// values are unescaped.
func parseLabels(in string) (map[string]string, string, error) {
	labels := map[string]string{}
	rest := in[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, " \t,")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %q value is not quoted", key)
		}
		val, tail, err := parseQuoted(rest)
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", key, err)
		}
		labels[key] = val
		rest = tail
	}
}

// parseQuoted consumes a leading double-quoted string with \\ \" \n
// escapes and returns the decoded value plus the remainder.
func parseQuoted(in string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch c := in[i]; c {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(in[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

// parseValue accepts the exposition's value grammar: Go float syntax
// plus the +Inf/-Inf/NaN spellings.
func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return pInf, nil
	case "-Inf":
		return nInf, nil
	}
	return strconv.ParseFloat(v, 64)
}

var (
	pInf = func() float64 { f, _ := strconv.ParseFloat("+Inf", 64); return f }()
	nInf = func() float64 { f, _ := strconv.ParseFloat("-Inf", 64); return f }()
)

// SampleSet indexes parsed samples for lookup by name and label.
type SampleSet struct {
	samples []Sample
}

// NewSampleSet wraps parsed samples for querying.
func NewSampleSet(samples []Sample) *SampleSet { return &SampleSet{samples: samples} }

// Value returns the first sample matching name and every given label
// pair (extra labels on the sample are allowed), or ok=false.
func (ss *SampleSet) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range ss.samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, want := range labels {
			if s.Labels[k] != want {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// HistQuantile estimates the q-quantile (0 <= q <= 1) of a parsed
// cumulative histogram family: it collects the `name+"_bucket"`
// samples matching the given labels, orders them by their `le` bound,
// and returns the upper bound of the bucket holding the target rank —
// the same conservative upper-edge convention obs.LatencySnapshot
// uses. ok=false when no matching buckets exist or the histogram is
// empty. A +Inf target returns the largest finite bound (the data
// gives no tighter answer).
func (ss *SampleSet) HistQuantile(name string, labels map[string]string, q float64) (float64, bool) {
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	for _, s := range ss.samples {
		if s.Name != name+"_bucket" {
			continue
		}
		match := true
		for k, want := range labels {
			if s.Labels[k] != want {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		buckets = append(buckets, bkt{le: le, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total <= 0 {
		return 0, false
	}
	target := q * total
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var lastFinite float64
	for _, b := range buckets {
		if b.le < pInf {
			lastFinite = b.le
		}
		if b.cum >= target {
			if b.le == pInf {
				return lastFinite, true
			}
			return b.le, true
		}
	}
	return lastFinite, true
}

// LabelValues returns the distinct values of the given label across
// every sample of the named family, in first-seen order.
func (ss *SampleSet) LabelValues(name, label string) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range ss.samples {
		if s.Name != name {
			continue
		}
		v, ok := s.Labels[label]
		if !ok || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
