package expvarx

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ffq/internal/obs"
)

// register wires a throwaway queue and cleans it up with the test.
func register(t *testing.T, name string, r *obs.Recorder, length, capacity int) {
	t.Helper()
	err := Register(name, QueueInfo{
		Stats: r.Snapshot,
		Len:   func() int { return length },
		Cap:   capacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Unregister(name) })
}

func TestRegisterValidation(t *testing.T) {
	if err := Register("bad", QueueInfo{}); err == nil {
		t.Fatal("Register accepted a QueueInfo without Stats")
	}
	r := obs.NewRecorder()
	register(t, "dup", r, 0, 0)
	if err := Register("dup", QueueInfo{Stats: r.Snapshot}); err == nil {
		t.Fatal("Register accepted a duplicate name")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := obs.NewRecorder()
	r.Enqueue()
	r.Enqueue()
	r.Dequeue()
	r.GapCreated()
	r.ObserveWait(100 * time.Nanosecond)
	r.ObserveWait(time.Millisecond)
	register(t, "testq", r, 7, 1024)

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE ffq_enqueues_total counter",
		`ffq_enqueues_total{queue="testq"} 2`,
		`ffq_dequeues_total{queue="testq"} 1`,
		`ffq_gaps_created_total{queue="testq"} 1`,
		`ffq_queue_depth{queue="testq"} 7`,
		`ffq_queue_capacity{queue="testq"} 1024`,
		"# TYPE ffq_wait_ns histogram",
		`ffq_wait_ns_bucket{queue="testq",le="+Inf"} 2`,
		`ffq_wait_ns_count{queue="testq"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\nbody:\n%s", want, body)
		}
	}

	// Histogram buckets must be cumulative and end at the total count.
	if !strings.Contains(body, `ffq_wait_ns_sum{queue="testq"} 1000100`) {
		t.Errorf("wait sum wrong\nbody:\n%s", body)
	}
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `ffq_wait_ns_bucket{queue="testq"`) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
	if prev != 2 {
		t.Fatalf("final bucket %d, want 2", prev)
	}
}

// TestSegmentAndBatchExposition: the unbounded-queue metrics — segment
// counters, the live-segment gauge and the batch-size histogram — must
// render in valid exposition format with cumulative buckets.
func TestSegmentAndBatchExposition(t *testing.T) {
	r := obs.NewRecorder()
	r.ObserveBatch(1)
	r.ObserveBatch(8)
	r.ObserveBatch(8)
	r.ObserveBatch(1 << 20) // clamped: must appear only under +Inf
	stats := func() obs.Stats {
		s := r.Snapshot()
		s.SegsAllocated = 5
		s.SegsRecycled = 140
		s.SegsRetired = 143
		s.SegsLive = 2
		return s
	}
	if err := Register("segq", QueueInfo{Stats: stats, Len: func() int { return 0 }}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Unregister("segq") })

	body := Exposition()
	for _, want := range []string{
		"# TYPE ffq_segments_allocated_total counter",
		`ffq_segments_allocated_total{queue="segq"} 5`,
		`ffq_segments_recycled_total{queue="segq"} 140`,
		`ffq_segments_retired_total{queue="segq"} 143`,
		"# TYPE ffq_segments_live gauge",
		`ffq_segments_live{queue="segq"} 2`,
		"# TYPE ffq_batch_items histogram",
		`ffq_batch_items_bucket{queue="segq",le="1"} 1`,
		`ffq_batch_items_bucket{queue="segq",le="8"} 3`,
		`ffq_batch_items_bucket{queue="segq",le="16384"} 3`, // clamp stays out of finite buckets
		`ffq_batch_items_bucket{queue="segq",le="+Inf"} 4`,
		`ffq_batch_items_sum{queue="segq"} 1048593`,
		`ffq_batch_items_count{queue="segq"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\nbody:\n%s", want, body)
		}
	}

	// Batch buckets must be cumulative.
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `ffq_batch_items_bucket{queue="segq"`) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("batch buckets not cumulative at %q", line)
		}
		prev = v
	}
	if prev != 4 {
		t.Fatalf("final batch bucket %d, want 4", prev)
	}
}

func TestExpvarPublishing(t *testing.T) {
	r := obs.NewRecorder()
	r.Enqueue()
	register(t, "expq", r, 3, 16)

	v := expvar.Get("ffq")
	if v == nil {
		t.Fatal("ffq expvar not published")
	}
	var m map[string]struct {
		Stats obs.Stats `json:"stats"`
		Len   int       `json:"len"`
		Cap   int       `json:"cap"`
	}
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("ffq expvar is not valid JSON: %v\n%s", err, v.String())
	}
	q, ok := m["expq"]
	if !ok {
		t.Fatalf("expq missing from expvar map: %v", m)
	}
	if q.Stats.Enqueues != 1 || q.Len != 3 || q.Cap != 16 {
		t.Fatalf("expvar snapshot wrong: %+v", q)
	}

	// Unregistered queues disappear from subsequent snapshots.
	Unregister("expq")
	if strings.Contains(expvar.Get("ffq").String(), "expq") {
		t.Fatal("unregistered queue still exposed")
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := escapeLabel(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Fatalf("escapeLabel = %q", got)
	}
}
