package expvarx

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ffq/internal/obs"
)

// register wires a throwaway queue and cleans it up with the test.
func register(t *testing.T, name string, r *obs.Recorder, length, capacity int) {
	t.Helper()
	err := Register(name, QueueInfo{
		Stats: r.Snapshot,
		Len:   func() int { return length },
		Cap:   capacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Unregister(name) })
}

func TestRegisterValidation(t *testing.T) {
	if err := Register("bad", QueueInfo{}); err == nil {
		t.Fatal("Register accepted a QueueInfo without Stats")
	}
	r := obs.NewRecorder()
	register(t, "dup", r, 0, 0)
	if err := Register("dup", QueueInfo{Stats: r.Snapshot}); err == nil {
		t.Fatal("Register accepted a duplicate name")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := obs.NewRecorder()
	r.Enqueue()
	r.Enqueue()
	r.Dequeue()
	r.GapCreated()
	r.ObserveWait(100 * time.Nanosecond)
	r.ObserveWait(time.Millisecond)
	register(t, "testq", r, 7, 1024)

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE ffq_enqueues_total counter",
		`ffq_enqueues_total{queue="testq"} 2`,
		`ffq_dequeues_total{queue="testq"} 1`,
		`ffq_gaps_created_total{queue="testq"} 1`,
		`ffq_queue_depth{queue="testq"} 7`,
		`ffq_queue_capacity{queue="testq"} 1024`,
		"# TYPE ffq_wait_ns histogram",
		`ffq_wait_ns_bucket{queue="testq",le="+Inf"} 2`,
		`ffq_wait_ns_count{queue="testq"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\nbody:\n%s", want, body)
		}
	}

	// Histogram buckets must be cumulative and end at the total count.
	if !strings.Contains(body, `ffq_wait_ns_sum{queue="testq"} 1000100`) {
		t.Errorf("wait sum wrong\nbody:\n%s", body)
	}
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `ffq_wait_ns_bucket{queue="testq"`) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
	if prev != 2 {
		t.Fatalf("final bucket %d, want 2", prev)
	}
}

func TestExpvarPublishing(t *testing.T) {
	r := obs.NewRecorder()
	r.Enqueue()
	register(t, "expq", r, 3, 16)

	v := expvar.Get("ffq")
	if v == nil {
		t.Fatal("ffq expvar not published")
	}
	var m map[string]struct {
		Stats obs.Stats `json:"stats"`
		Len   int       `json:"len"`
		Cap   int       `json:"cap"`
	}
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("ffq expvar is not valid JSON: %v\n%s", err, v.String())
	}
	q, ok := m["expq"]
	if !ok {
		t.Fatalf("expq missing from expvar map: %v", m)
	}
	if q.Stats.Enqueues != 1 || q.Len != 3 || q.Cap != 16 {
		t.Fatalf("expvar snapshot wrong: %+v", q)
	}

	// Unregistered queues disappear from subsequent snapshots.
	Unregister("expq")
	if strings.Contains(expvar.Get("ffq").String(), "expq") {
		t.Fatal("unregistered queue still exposed")
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := escapeLabel(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Fatalf("escapeLabel = %q", got)
	}
}
