package expvarx

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one metric sample contributed by a Collector. Samples with
// the same Name form one metric family; the family's Help and Type are
// taken from the first sample emitted for it.
type Sample struct {
	// Name is the metric family name (e.g. "ffqd_messages_in_total").
	Name string
	// Help is the family's # HELP text.
	Help string
	// Type is the family's # TYPE: "counter" or "gauge".
	Type string
	// Labels attach label pairs to this sample; may be nil.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Collector contributes metric samples to the Prometheus exposition on
// every scrape. Subsystems that are not queues (the ffqd broker's
// connection and topic accounting, for instance) register one next to
// their queues' Register calls.
type Collector func(emit func(Sample))

var collectors = map[string]Collector{}

// RegisterCollector adds a collector under id; the id only namespaces
// registration (it does not appear in the exposition). Registration is
// process-global like Register.
func RegisterCollector(id string, c Collector) error {
	if c == nil {
		return fmt.Errorf("expvarx: collector %q is nil", id)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := collectors[id]; dup {
		return fmt.Errorf("expvarx: collector %q already registered", id)
	}
	collectors[id] = c
	return nil
}

// UnregisterCollector removes a collector; unknown ids are a no-op.
func UnregisterCollector(id string) {
	mu.Lock()
	defer mu.Unlock()
	delete(collectors, id)
}

// writeCollected gathers every collector's samples, groups them into
// families and renders them after the queue families.
func writeCollected(b *strings.Builder) {
	mu.Lock()
	cs := make([]Collector, 0, len(collectors))
	for _, c := range collectors {
		cs = append(cs, c)
	}
	mu.Unlock()
	if len(cs) == 0 {
		return
	}

	var samples []Sample
	for _, c := range cs {
		c(func(s Sample) { samples = append(samples, s) })
	}

	families := map[string][]Sample{}
	names := make([]string, 0, len(samples))
	for _, s := range samples {
		if _, seen := families[s.Name]; !seen {
			names = append(names, s.Name)
		}
		families[s.Name] = append(families[s.Name], s)
	}
	sort.Strings(names)

	for _, name := range names {
		fam := families[name]
		typ := fam[0].Type
		if typ == "" {
			typ = "gauge"
		}
		if fam[0].Help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", name, fam[0].Help)
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
		lines := make([]string, 0, len(fam))
		for _, s := range fam {
			lines = append(lines, name+renderLabels(s.Labels)+" "+strconv.FormatFloat(s.Value, 'g', -1, 64))
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
}

// renderLabels formats a label set in sorted key order, or returns ""
// for an empty set.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}
