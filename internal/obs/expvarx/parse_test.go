package expvarx

import (
	"math"
	"strings"
	"testing"

	"ffq/internal/obs"
)

// TestParseBasics decodes a small hand-written exposition.
func TestParseBasics(t *testing.T) {
	const text = `# HELP ffqd_topic_depth Messages buffered in the topic queue.
# TYPE ffqd_topic_depth gauge
ffqd_topic_depth{topic="orders"} 42
ffqd_topic_depth{topic="audit \"log\"\n"} 0

# plain comment
ffqd_up 1
ffq_wait_ns_bucket{queue="q",le="+Inf"} 7 1712345678
`
	samples, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4: %+v", len(samples), samples)
	}
	s := samples[0]
	if s.Name != "ffqd_topic_depth" || s.Value != 42 || s.Labels["topic"] != "orders" {
		t.Fatalf("sample 0 = %+v", s)
	}
	if s.Type != "gauge" || !strings.Contains(s.Help, "buffered") {
		t.Fatalf("sample 0 missing HELP/TYPE: %+v", s)
	}
	if got := samples[1].Labels["topic"]; got != "audit \"log\"\n" {
		t.Fatalf("escaped label = %q", got)
	}
	if samples[2].Name != "ffqd_up" || samples[2].Labels != nil {
		t.Fatalf("bare sample = %+v", samples[2])
	}
	if samples[3].Labels["le"] != "+Inf" || samples[3].Value != 7 {
		t.Fatalf("timestamped sample = %+v", samples[3])
	}
}

// TestParseValues covers the special value spellings.
func TestParseValues(t *testing.T) {
	samples, err := Parse(strings.NewReader("a 1.5\nb +Inf\nc -Inf\nd NaN\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if samples[0].Value != 1.5 {
		t.Fatalf("a = %v", samples[0].Value)
	}
	if !math.IsInf(samples[1].Value, 1) || !math.IsInf(samples[2].Value, -1) {
		t.Fatalf("inf values = %v, %v", samples[1].Value, samples[2].Value)
	}
	if !math.IsNaN(samples[3].Value) {
		t.Fatalf("NaN = %v", samples[3].Value)
	}
}

// TestParseErrors rejects malformed lines instead of guessing.
func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"nameonly\n",
		"m{unterminated=\"v\n",
		"m{x=\"v\"} notanumber\n",
		"m{noquote=v} 1\n",
		"m{k=\"bad\\q\"} 1\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestParseRoundTrip feeds a real Exposition through Parse and checks
// the values survive.
func TestParseRoundTrip(t *testing.T) {
	rec := obs.NewRecorder()
	for i := 0; i < 5; i++ {
		rec.Enqueue()
	}
	if err := Register("parse-roundtrip", QueueInfo{
		Stats: rec.Snapshot,
		Len:   func() int { return 3 },
		Cap:   64,
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer Unregister("parse-roundtrip")
	if err := RegisterCollector("parse-roundtrip", func(emit func(Sample)) {
		emit(Sample{Name: "rt_custom_total", Type: "counter", Labels: map[string]string{"topic": "t\"x\""}, Value: 9})
	}); err != nil {
		t.Fatalf("RegisterCollector: %v", err)
	}
	defer UnregisterCollector("parse-roundtrip")

	samples, err := Parse(strings.NewReader(Exposition()))
	if err != nil {
		t.Fatalf("Parse(Exposition()): %v", err)
	}
	ss := NewSampleSet(samples)
	lbl := map[string]string{"queue": "parse-roundtrip"}
	if v, ok := ss.Value("ffq_enqueues_total", lbl); !ok || v != 5 {
		t.Fatalf("ffq_enqueues_total = %v, %v", v, ok)
	}
	if v, ok := ss.Value("ffq_queue_depth", lbl); !ok || v != 3 {
		t.Fatalf("ffq_queue_depth = %v, %v", v, ok)
	}
	if v, ok := ss.Value("rt_custom_total", map[string]string{"topic": "t\"x\""}); !ok || v != 9 {
		t.Fatalf("rt_custom_total = %v, %v", v, ok)
	}
	if vals := ss.LabelValues("ffq_enqueues_total", "queue"); len(vals) == 0 {
		t.Fatalf("LabelValues empty")
	}
}
