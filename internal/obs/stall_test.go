package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestStallDefaults checks the zero-config watchdog parameters.
func TestStallDefaults(t *testing.T) {
	st := newStall(0, 0)
	if st.Threshold() != DefaultStallThreshold {
		t.Fatalf("threshold = %v", st.Threshold())
	}
	if len(st.ring) != DefaultStallRing {
		t.Fatalf("ring = %d", len(st.ring))
	}
	// Ring sizes round up to a power of two.
	if st = newStall(time.Second, 5); len(st.ring) != 8 {
		t.Fatalf("ring(5) = %d, want 8", len(st.ring))
	}
}

// TestStallCheckAndComplete walks one episode through both detection
// paths: an in-loop check past the threshold emits exactly once, and
// completion records the histogram without double-emitting; an episode
// that slipped past every check emits at completion instead.
func TestStallCheckAndComplete(t *testing.T) {
	st := newStall(time.Microsecond, 8)
	if st.check(RoleConsumer, 7, time.Now()) {
		t.Fatal("fresh wait reported as stall")
	}
	old := time.Now().Add(-time.Millisecond)
	if !st.check(RoleConsumer, 7, old) {
		t.Fatal("1ms wait under a 1us threshold not detected")
	}
	if st.events.Load() != 1 {
		t.Fatalf("events = %d", st.events.Load())
	}
	st.complete(RoleConsumer, 7, int64(time.Millisecond), true)
	if st.events.Load() != 1 {
		t.Fatal("reported episode emitted again at completion")
	}
	if st.count.Load() != 1 || st.sumNS.Load() != int64(time.Millisecond) {
		t.Fatalf("histogram: count=%d sum=%d", st.count.Load(), st.sumNS.Load())
	}
	// Unreported episode: completion is the only emission point.
	st.complete(RoleProducer, -1, int64(2*time.Millisecond), false)
	if st.events.Load() != 2 {
		t.Fatalf("events = %d after unreported completion", st.events.Load())
	}
	// Sub-threshold completions leave no trace.
	st.complete(RoleProducer, -1, 10, false)
	if st.events.Load() != 2 || st.count.Load() != 2 {
		t.Fatal("sub-threshold completion recorded")
	}

	evs := st.recent(0)
	if len(evs) != 2 {
		t.Fatalf("recent = %d events", len(evs))
	}
	// Newest first.
	if evs[0].Role != RoleProducer || evs[0].Rank != -1 || evs[1].Role != RoleConsumer || evs[1].Rank != 7 {
		t.Fatalf("recent order/content wrong: %+v", evs)
	}
	if evs[0].UnixNano == 0 || evs[0].DurationNS != int64(2*time.Millisecond) {
		t.Fatalf("event fields: %+v", evs[0])
	}
}

// TestStallRingWrap overflows a small ring and checks the counter keeps
// the true total while recent returns only the newest window.
func TestStallRingWrap(t *testing.T) {
	st := newStall(time.Nanosecond, 4)
	for i := 0; i < 10; i++ {
		st.emit(RoleConsumer, int64(i), int64(i+1))
	}
	if st.events.Load() != 10 {
		t.Fatalf("events = %d", st.events.Load())
	}
	evs := st.recent(0)
	if len(evs) != 4 {
		t.Fatalf("recent = %d, want full ring of 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(9 - i); ev.Rank != want {
			t.Fatalf("recent[%d].Rank = %d, want %d", i, ev.Rank, want)
		}
	}
	if got := st.recent(2); len(got) != 2 || got[0].Rank != 9 {
		t.Fatalf("recent(2) = %+v", got)
	}
}

// TestStallEventJSON round-trips the event encoding, including the
// textual role names.
func TestStallEventJSON(t *testing.T) {
	in := StallEvent{Role: RoleProducer, Rank: 42, DurationNS: 1e6, UnixNano: 123}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out StallEvent
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v -> %s -> %+v", in, b, out)
	}
}

// TestStallConcurrentEmitRecent races writers against readers: the ring
// must stay torn-read free (the race detector checks the seqlock
// protocol's memory claims, the seq validation its logic).
func TestStallConcurrentEmitRecent(t *testing.T) {
	st := newStall(time.Nanosecond, 8)
	const writers = 4
	const per = 5_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, ev := range st.recent(0) {
					if ev.UnixNano == 0 {
						t.Error("torn read: zero timestamp escaped validation")
						return
					}
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				st.emit(RoleConsumer, int64(w), int64(i+1))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := st.events.Load(); got != writers*per {
		t.Fatalf("events = %d, want %d", got, writers*per)
	}
	if st.dropped.Load() > st.events.Load() {
		t.Fatal("dropped exceeds emitted")
	}
}

// TestRecorderStallSnapshot checks the Recorder-level plumbing: the
// snapshot carries the armed threshold, counters, histogram, and the
// recent-event tail; Sub yields window deltas.
func TestRecorderStallSnapshot(t *testing.T) {
	r := NewRecorder().EnableStallWatchdog(time.Microsecond, 8)
	start := time.Now().Add(-time.Millisecond)
	reported := false
	for spins := 0; spins <= stallCheckMask+1; spins++ {
		reported = r.StallCheck(RoleConsumer, 3, start, spins, reported)
	}
	if !reported {
		t.Fatal("StallCheck never fired on a clock-read iteration")
	}
	r.EndWait(RoleConsumer, 3, time.Millisecond, reported)
	s := r.Snapshot()
	if s.StallThresholdNS != int64(time.Microsecond) {
		t.Fatalf("threshold = %d", s.StallThresholdNS)
	}
	if s.StallEvents != 1 || s.StallCount != 1 || s.StallSumNS != int64(time.Millisecond) {
		t.Fatalf("stall counters: %+v", s)
	}
	if len(s.RecentStalls) != 1 || s.RecentStalls[0].Rank != 3 {
		t.Fatalf("recent stalls: %+v", s.RecentStalls)
	}
	if s.MeanStall() != time.Millisecond {
		t.Fatalf("mean stall = %v", s.MeanStall())
	}

	prev := s
	r.EndWait(RoleProducer, -1, 2*time.Millisecond, false)
	d := r.Snapshot().Sub(prev)
	if d.StallEvents != 1 || d.StallCount != 1 || d.StallSumNS != int64(2*time.Millisecond) {
		t.Fatalf("stall delta: events=%d count=%d sum=%d", d.StallEvents, d.StallCount, d.StallSumNS)
	}
}

// TestRecorderOpLatency checks the per-op extension end to end at the
// Recorder level: OpStart reads the clock only when armed, and the
// Done hooks land in the right histogram.
func TestRecorderOpLatency(t *testing.T) {
	bare := NewRecorder()
	if !bare.OpStart().IsZero() {
		t.Fatal("OpStart read the clock without the latency extension")
	}
	bare.EnqueueDone(time.Time{})
	bare.DequeueDone(time.Time{})
	if s := bare.Snapshot(); s.EnqLatency != nil || s.DeqLatency != nil {
		t.Fatal("latency snapshots on a bare recorder")
	}

	r := NewRecorder().EnableOpLatency()
	for i := 0; i < 10; i++ {
		r.EnqueueDone(r.OpStart())
	}
	r.DequeueDone(r.OpStart())
	s := r.Snapshot()
	if s.EnqLatency == nil || s.EnqLatency.Count != 10 {
		t.Fatalf("enq latency: %v", s.EnqLatency)
	}
	if s.DeqLatency == nil || s.DeqLatency.Count != 1 {
		t.Fatalf("deq latency: %v", s.DeqLatency)
	}
	if s.EnqLatency.MaxNS <= 0 {
		t.Fatal("recorded op latency not positive")
	}
}
