package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// High-resolution operation-latency histograms. The wait histogram in
// obs.go answers "how long did blocked operations stall"; these answer
// the Jiffy-style question "what does the full per-op latency
// distribution look like", which needs more resolution than whole
// powers of two: at log2 granularity p99 = 1µs and p99 = 2µs are the
// same bucket. The layout is HDR-style — log2 major buckets, each
// split into 2^LatSubBits linear sub-buckets — giving a bounded
// relative error of 2^-LatSubBits (6.25%) at any magnitude for the
// cost of a fixed 8KiB counter array.
//
// Recording is lock-free: one atomic add on the value's bucket plus
// the sum/max updates, with no locks anywhere, so a Snapshot can run
// concurrently with recording (it observes a monitoring-consistent,
// not point-consistent, view — the usual counter contract). Harnesses
// that want contention-free recording give each goroutine its own
// LatencyHist and merge the snapshots afterwards; queues share the
// Recorder-attached pair behind the same nil-recorder gate as every
// other instrument.

// LatSubBits is the HDR sub-bucket resolution: every power-of-two
// range splits into 2^LatSubBits linear sub-buckets, bounding the
// relative quantile error at 2^-LatSubBits (6.25%).
const LatSubBits = 4

// latSubCount is the number of linear sub-buckets per log2 group.
const latSubCount = 1 << LatSubBits

// latGroups covers the full positive int64 range: values below
// latSubCount form group 0 (exact); a value with most-significant bit
// m >= LatSubBits lands in group m-LatSubBits+1, and the largest
// positive int64 has m = 62.
const latGroups = 62 - LatSubBits + 2

// NumLatBuckets is the total bucket count of a LatencyHist.
const NumLatBuckets = latGroups * latSubCount

// latIndex maps a non-negative nanosecond value to its bucket index.
//
//ffq:hotpath
func latIndex(ns int64) int {
	v := uint64(ns)
	if v < latSubCount {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	g := msb - LatSubBits + 1
	sub := int(v>>uint(msb-LatSubBits)) & (latSubCount - 1)
	return g*latSubCount + sub
}

// LatBucketLow returns the inclusive lower bound, in nanoseconds, of
// bucket i.
func LatBucketLow(i int) int64 {
	g, sub := i/latSubCount, int64(i%latSubCount)
	if g == 0 {
		return sub
	}
	return (latSubCount + sub) << uint(g-1)
}

// LatBucketHigh returns the inclusive upper bound, in nanoseconds, of
// bucket i.
func LatBucketHigh(i int) int64 {
	g := i / latSubCount
	if g == 0 {
		return LatBucketLow(i)
	}
	return LatBucketLow(i) + (1 << uint(g-1)) - 1
}

// LatencyHist is a lock-free HDR-style latency histogram. The zero
// value is ready to use. Record may be called from any number of
// goroutines concurrently with Snapshot.
type LatencyHist struct {
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumLatBuckets]atomic.Int64
}

// Record adds one observation of ns nanoseconds (negative values clamp
// to zero).
//
//ffq:hotpath
func (h *LatencyHist) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(ns)
	//ffq:ignore spin-backoff monotonic-max CAS: a failed swap means another recorder published a larger maximum, which is progress
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[latIndex(ns)].Add(1)
}

// Snapshot freezes the histogram into a LatencySnapshot with the
// percentile fields computed.
func (h *LatencyHist) Snapshot() *LatencySnapshot {
	s := &LatencySnapshot{
		SumNS:   h.sum.Load(),
		MaxNS:   h.max.Load(),
		Buckets: make([]int64, NumLatBuckets),
	}
	for i := range s.Buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.finalize()
	return s
}

// LatencySnapshot is a frozen LatencyHist: the raw buckets plus the
// derived count/sum/max and the standard percentile cuts. The bucket
// array is carried for merging (Add/Sub re-derive the percentiles) but
// stays out of JSON — reports serialize the derived fields only.
type LatencySnapshot struct {
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum_ns"`
	MaxNS   int64   `json:"max_ns"`
	P50NS   int64   `json:"p50_ns"`
	P95NS   int64   `json:"p95_ns"`
	P99NS   int64   `json:"p99_ns"`
	P999NS  int64   `json:"p999_ns"`
	Buckets []int64 `json:"-"`
}

// finalize recomputes Count (from the buckets, so the percentile walk
// and the total always agree) plus the percentile fields.
func (s *LatencySnapshot) finalize() {
	var n int64
	for _, c := range s.Buckets {
		n += c
	}
	s.Count = n
	s.P50NS = s.Quantile(0.50)
	s.P95NS = s.Quantile(0.95)
	s.P99NS = s.Quantile(0.99)
	s.P999NS = s.Quantile(0.999)
}

// Quantile returns a conservative upper bound for the q-quantile
// (0 <= q <= 1): the upper edge of the bucket holding the target rank,
// clamped to the recorded maximum. Zero when the snapshot is empty.
func (s *LatencySnapshot) Quantile(q float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			hi := LatBucketHigh(i)
			if s.MaxNS > 0 && hi > s.MaxNS {
				hi = s.MaxNS
			}
			return hi
		}
	}
	return s.MaxNS
}

// Mean returns the mean recorded latency.
func (s *LatencySnapshot) Mean() time.Duration {
	if s == nil || s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Max returns the largest recorded latency.
func (s *LatencySnapshot) Max() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.MaxNS)
}

// Add folds o into s (bucket-wise; the max is the larger of the two)
// and returns s with its derived fields recomputed. Either side may be
// nil; the merged result is returned in all cases (nil only when both
// are nil).
func (s *LatencySnapshot) Add(o *LatencySnapshot) *LatencySnapshot {
	if o == nil {
		return s
	}
	if s == nil {
		c := *o
		c.Buckets = append([]int64(nil), o.Buckets...)
		return &c
	}
	if len(s.Buckets) != NumLatBuckets {
		s.Buckets = make([]int64, NumLatBuckets)
	}
	if len(o.Buckets) == NumLatBuckets {
		for i := range s.Buckets {
			s.Buckets[i] += o.Buckets[i]
		}
	}
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	s.finalize()
	return s
}

// Sub subtracts prev bucket-wise, the delta window between two
// snapshots of the same histogram. The max is lifetime-monotonic, so
// the newer value stands (a window-local max is not recoverable from
// the buckets). Returns s recomputed; prev may be nil.
func (s *LatencySnapshot) Sub(prev *LatencySnapshot) *LatencySnapshot {
	if s == nil || prev == nil {
		return s
	}
	if len(s.Buckets) == NumLatBuckets && len(prev.Buckets) == NumLatBuckets {
		for i := range s.Buckets {
			s.Buckets[i] -= prev.Buckets[i]
		}
	}
	s.SumNS -= prev.SumNS
	s.finalize()
	return s
}

// Log2Buckets folds the HDR buckets down to the coarse log2 scheme of
// the wait histogram (bucket i counts values of roughly at most 2^i
// ns, see BucketBound), the granularity the Prometheus exposition
// uses. Each HDR bucket is assigned whole to the log2 bucket of its
// upper edge, so exact powers of two can shift one coarse bucket up —
// an approximation the 6.25%-error source data cannot distinguish
// anyway. Returns nil when the snapshot is empty.
func (s *LatencySnapshot) Log2Buckets() []int64 {
	if s == nil || s.Count == 0 || len(s.Buckets) != NumLatBuckets {
		return nil
	}
	out := make([]int64, HistBuckets)
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		b := bucketOf(LatBucketHigh(i))
		if b >= HistBuckets {
			b = HistBuckets - 1
		}
		out[b] += c
	}
	return out
}

// String renders the standard percentile cut.
func (s *LatencySnapshot) String() string {
	if s == nil || s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p95=%s p99=%s p999=%s max=%s",
		s.Count, time.Duration(s.P50NS), time.Duration(s.P95NS),
		time.Duration(s.P99NS), time.Duration(s.P999NS), time.Duration(s.MaxNS))
}

// Latency is the per-op latency extension of a Recorder: one histogram
// per direction, attached with Recorder.EnableOpLatency. The type is
// exported because the hotpath-purity checker sanctions blocks guarded
// by a nil-check of *Latency exactly as it does *Recorder — the
// timestamp reads live inside those guards.
type Latency struct {
	enq LatencyHist
	deq LatencyHist
}

// EnqSnapshot freezes the enqueue-op histogram.
func (l *Latency) EnqSnapshot() *LatencySnapshot { return l.enq.Snapshot() }

// DeqSnapshot freezes the dequeue-op histogram.
func (l *Latency) DeqSnapshot() *LatencySnapshot { return l.deq.Snapshot() }
