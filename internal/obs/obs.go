// Package obs is the per-queue instrumentation core of the module: a
// set of monotonic counters and a log2-bucketed wait-latency histogram
// that the FFQ hot loops update when — and only when — a Recorder is
// attached to the queue.
//
// # Zero overhead when off
//
// Queues hold a *Recorder field that is nil by default. Every fast
// path checks the field exactly once, so the disabled configuration
// costs one always-not-taken, perfectly predicted branch per
// operation; BenchmarkInstrumentation in the root package gates that
// claim. The slow paths (spin loops, gap handling) re-check the field,
// which is free relative to the spinning they instrument.
//
// # Counter semantics
//
// All counters are monotonic over the life of the Recorder:
//
//   - Enqueues / Dequeues: completed operations (a Dequeue that
//     returns ok=false after Close does not count).
//   - FullSpins: producer-side spin iterations executed because the
//     queue was full (every pass through an Enqueue retry loop).
//   - EmptySpins: consumer-side spin iterations executed because the
//     consumer's rank had not been published yet.
//   - ProducerYields / ConsumerYields: backoff iterations that gave
//     the processor to the Go scheduler instead of busy-waiting.
//   - GapsCreated: ranks a producer skipped because the target cell
//     still held an undequeued item (the paper's Section III-A gaps).
//   - GapsSkipped: skipped ranks consumers discarded by re-acquiring
//     a fresh rank.
//
// Producer-side and consumer-side counters live on separate cache
// lines so that instrumented producers and consumers do not false-share
// the Recorder itself — the exact failure mode the paper's Section IV-A
// layout study measures for queue cells.
//
// A single Recorder may be shared by several queues (for example one
// Recorder per queue pool); counters then aggregate across the pool.
package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// cacheLine is the coherence granularity assumed for padding. Matches
// core.CacheLineSize (not imported to keep obs dependency-free).
const cacheLine = 64

// HistBuckets is the number of log2 wait-time buckets. Bucket i counts
// waits with ceil(log2(ns)) == i, so bucket 0 is <=1ns and bucket 63
// covers everything beyond ~292 years; in practice buckets 8..30
// (256ns..1s) carry the signal.
const HistBuckets = 64

// prodLine groups the producer-side counters on their own cache lines.
type prodLine struct {
	enqueues       atomic.Int64
	fullSpins      atomic.Int64
	producerYields atomic.Int64
	gapsCreated    atomic.Int64
	_              [cacheLine - 32%cacheLine]byte
}

// consLine groups the consumer-side counters on their own cache lines.
type consLine struct {
	dequeues       atomic.Int64
	emptySpins     atomic.Int64
	consumerYields atomic.Int64
	gapsSkipped    atomic.Int64
	_              [cacheLine - 32%cacheLine]byte
}

// waitLine holds the blocking-wait histogram: counts per log2(ns)
// bucket plus the running sum and count that exposition formats need.
// Waits are recorded by consumers (and producers on the full-queue
// path), so the line sits after the consumer counters.
type waitLine struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [HistBuckets]atomic.Int64
	_       [cacheLine - (16+8*HistBuckets)%cacheLine]byte
}

// BatchHistBuckets is the number of log2 batch-size buckets. Bucket i
// counts batches of ceil(log2(n)) == i items, so bucket 0 is single
// operations and bucket 15 covers batches up to 32768 items — far
// beyond any sensible batch (a batch is bounded by the segment size).
const BatchHistBuckets = 16

// batchLine holds the batch-size histogram of the segmented queues'
// EnqueueBatch/DequeueBatch operations, plus the running count and
// item sum.
type batchLine struct {
	count    atomic.Int64
	sumItems atomic.Int64
	buckets  [BatchHistBuckets]atomic.Int64
	_        [cacheLine - (16+8*BatchHistBuckets)%cacheLine]byte
}

// Recorder accumulates instrumentation for one queue (or one shared
// pool of queues). The zero value is ready to use; a nil *Recorder is
// the "instrumentation off" state and every method is safe to skip
// behind a nil check.
//
// The producer-side and consumer-side counter groups each occupy their
// own cache lines (see the package comment); the nested line structs
// are what records that grouping, so only Recorder itself carries the
// padding marker.
//
//ffq:padded
type Recorder struct {
	prod  prodLine
	cons  consLine
	wait  waitLine
	batch batchLine
	// lat and stall are the optional per-op latency and stall-watchdog
	// extensions; nil (the default) keeps their hot-path cost at one
	// predicted branch. Both must be attached via EnableOpLatency /
	// EnableStallWatchdog before the Recorder is shared with queues —
	// the fields are read without synchronization afterwards.
	lat   *Latency
	stall *Stall
	_     [cacheLine - 16]byte
}

// NewRecorder returns a fresh Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// EnableOpLatency attaches the per-op latency histograms: every
// completed Enqueue/Dequeue on an instrumented queue then records its
// full operation latency (two clock reads per op — enable it for
// latency runs, not throughput baselines). Must be called before the
// Recorder is shared. Returns r for chaining.
func (r *Recorder) EnableOpLatency() *Recorder {
	if r.lat == nil {
		r.lat = &Latency{}
	}
	return r
}

// EnableStallWatchdog attaches the stall watchdog with the given
// threshold and event-ring size (<= 0 selects DefaultStallThreshold /
// DefaultStallRing). Must be called before the Recorder is shared.
// Returns r for chaining.
func (r *Recorder) EnableStallWatchdog(threshold time.Duration, ring int) *Recorder {
	if r.stall == nil {
		r.stall = newStall(threshold, ring)
	}
	return r
}

// OpLatency returns the attached latency extension, or nil.
func (r *Recorder) OpLatency() *Latency {
	if r == nil {
		return nil
	}
	return r.lat
}

// StallWatchdog returns the attached watchdog, or nil.
func (r *Recorder) StallWatchdog() *Stall {
	if r == nil {
		return nil
	}
	return r.stall
}

// Enqueue records one completed enqueue.
//
//ffq:hotpath
func (r *Recorder) Enqueue() { r.prod.enqueues.Add(1) }

// EnqueueN records n completed enqueues in one addition (the batch
// paths of the segmented queues).
//
//ffq:hotpath
func (r *Recorder) EnqueueN(n int) { r.prod.enqueues.Add(int64(n)) }

// Dequeue records one completed dequeue.
//
//ffq:hotpath
func (r *Recorder) Dequeue() { r.cons.dequeues.Add(1) }

// DequeueN records n completed dequeues in one addition (the batch
// paths of the segmented and bounded queues).
//
//ffq:hotpath
func (r *Recorder) DequeueN(n int) { r.cons.dequeues.Add(int64(n)) }

// FullSpin records one producer spin iteration on a full queue.
//
//ffq:hotpath
func (r *Recorder) FullSpin() { r.prod.fullSpins.Add(1) }

// EmptySpin records one consumer spin iteration on an empty rank.
//
//ffq:hotpath
func (r *Recorder) EmptySpin() { r.cons.emptySpins.Add(1) }

// ProducerYield records a producer backoff that yielded the processor.
//
//ffq:hotpath
func (r *Recorder) ProducerYield() { r.prod.producerYields.Add(1) }

// ConsumerYield records a consumer backoff that yielded the processor.
//
//ffq:hotpath
func (r *Recorder) ConsumerYield() { r.cons.consumerYields.Add(1) }

// GapCreated records a rank skipped by a producer.
//
//ffq:hotpath
func (r *Recorder) GapCreated() { r.prod.gapsCreated.Add(1) }

// GapSkipped records a skipped rank discarded by a consumer.
//
//ffq:hotpath
func (r *Recorder) GapSkipped() { r.cons.gapsSkipped.Add(1) }

// ObserveWait records the duration of one blocking wait (time spent
// spinning before an operation could complete).
//
//ffq:hotpath
func (r *Recorder) ObserveWait(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	r.wait.count.Add(1)
	r.wait.sumNS.Add(ns)
	r.wait.buckets[bucketOf(ns)].Add(1)
}

// EndWait records the completion of one blocking wait: the duration
// lands in the wait histogram, and — when the stall watchdog is
// attached — waits at or beyond the threshold land in the
// stall-duration histogram, emitting the stall event if the in-loop
// StallCheck calls never reported it (reported=false).
//
//ffq:hotpath
func (r *Recorder) EndWait(role Role, rank int64, d time.Duration, reported bool) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	r.wait.count.Add(1)
	r.wait.sumNS.Add(ns)
	r.wait.buckets[bucketOf(ns)].Add(1)
	st := r.stall
	if st != nil {
		st.complete(role, rank, ns, reported)
	}
}

// StallCheck is called from inside blocking spin loops (within the
// instrumentation guard) with the loop's spin counter and the state of
// any earlier report. One iteration in stallCheckMask+1 reads the
// clock; a wait that has crossed the watchdog threshold emits its
// stall event exactly once per episode. The return value is the new
// reported state — callers thread it back in on the next iteration.
//
//ffq:hotpath
func (r *Recorder) StallCheck(role Role, rank int64, waitStart time.Time, spins int, reported bool) bool {
	if reported || spins&stallCheckMask != 0 {
		return reported
	}
	st := r.stall
	if st != nil {
		return st.check(role, rank, waitStart)
	}
	return false
}

// OpStart returns the operation start timestamp when per-op latency
// recording is enabled, and the zero time (one predicted branch, no
// clock read) otherwise. Call at the top of an instrumented operation
// and hand the result to EnqueueDone/DequeueDone.
//
//ffq:hotpath
func (r *Recorder) OpStart() time.Time {
	if r.lat != nil {
		return time.Now()
	}
	var zero time.Time
	return zero
}

// EnqueueDone records the full latency of one completed enqueue when
// per-op latency recording is enabled (start from OpStart).
//
//ffq:hotpath
func (r *Recorder) EnqueueDone(start time.Time) {
	if r.lat != nil && !start.IsZero() {
		r.lat.enq.Record(int64(time.Since(start)))
	}
}

// DequeueDone records the full latency of one completed dequeue when
// per-op latency recording is enabled (start from OpStart).
//
//ffq:hotpath
func (r *Recorder) DequeueDone(start time.Time) {
	if r.lat != nil && !start.IsZero() {
		r.lat.deq.Record(int64(time.Since(start)))
	}
}

// ObserveBatch records one batch operation of n items (an
// EnqueueBatch or DequeueBatch call on a segmented queue). n <= 0 is
// ignored.
//
//ffq:hotpath
func (r *Recorder) ObserveBatch(n int) {
	if n <= 0 {
		return
	}
	r.batch.count.Add(1)
	r.batch.sumItems.Add(int64(n))
	b := bucketOf(int64(n))
	if b >= BatchHistBuckets {
		b = BatchHistBuckets - 1
	}
	r.batch.buckets[b].Add(1)
}

// bucketOf maps a nanosecond wait to its log2 bucket index.
//
//ffq:hotpath
func bucketOf(ns int64) int {
	if ns <= 1 {
		return 0
	}
	return bits.Len64(uint64(ns - 1)) // ceil(log2(ns))
}

// BucketBound returns the inclusive upper bound, in nanoseconds, of
// histogram bucket i (2^i ns).
func BucketBound(i int) int64 {
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return 1 << uint(i)
}

// Stats is a point-in-time snapshot of a Recorder. See the package
// comment for the semantics of each counter.
type Stats struct {
	Enqueues       int64 `json:"enqueues"`
	Dequeues       int64 `json:"dequeues"`
	FullSpins      int64 `json:"full_spins"`
	EmptySpins     int64 `json:"empty_spins"`
	ProducerYields int64 `json:"producer_yields"`
	ConsumerYields int64 `json:"consumer_yields"`
	GapsCreated    int64 `json:"gaps_created"`
	GapsSkipped    int64 `json:"gaps_skipped"`
	// WaitCount and WaitSumNS summarize the blocking-wait histogram.
	WaitCount int64 `json:"wait_count"`
	WaitSumNS int64 `json:"wait_sum_ns"`
	// WaitBuckets[i] counts waits of at most 2^i nanoseconds (see
	// BucketBound). Omitted from JSON when all-zero.
	WaitBuckets []int64 `json:"wait_buckets,omitempty"`

	// Segment counters (segmented/unbounded queues only; always zero
	// for the bounded variants). SegsAllocated counts fresh segment
	// allocations, SegsRecycled reuses from the recycling pool,
	// SegsRetired drained segments returned to the pool (or dropped to
	// the GC when the pool was full). SegsLive is the instantaneous
	// number of linked segments — a gauge, not a monotonic counter, so
	// Sub/Add treat it like one (Sub keeps the newer value).
	SegsAllocated int64 `json:"segs_allocated,omitempty"`
	SegsRecycled  int64 `json:"segs_recycled,omitempty"`
	SegsRetired   int64 `json:"segs_retired,omitempty"`
	SegsLive      int64 `json:"segs_live,omitempty"`

	// BatchCount and BatchSumItems summarize the batch-size histogram
	// of EnqueueBatch/DequeueBatch calls; BatchBuckets[i] counts
	// batches of at most 2^i items. Omitted from JSON when unused.
	BatchCount    int64   `json:"batch_count,omitempty"`
	BatchSumItems int64   `json:"batch_sum_items,omitempty"`
	BatchBuckets  []int64 `json:"batch_buckets,omitempty"`

	// EnqLatency and DeqLatency are the per-op latency distributions;
	// nil unless the Recorder had EnableOpLatency.
	EnqLatency *LatencySnapshot `json:"enq_latency,omitempty"`
	DeqLatency *LatencySnapshot `json:"deq_latency,omitempty"`

	// Stall watchdog aggregates; populated only when the Recorder had
	// EnableStallWatchdog. StallEvents counts detected stall episodes
	// (including in-progress ones), StallCount/StallSumNS/StallBuckets
	// summarize the log2 duration histogram of *completed* stalls, and
	// RecentStalls is the newest-first tail of the event ring.
	// StallThresholdNS is the configured threshold (a setting, not a
	// counter: Sub/Add keep the newer / first non-zero value).
	StallEvents      int64        `json:"stall_events,omitempty"`
	StallCount       int64        `json:"stall_count,omitempty"`
	StallSumNS       int64        `json:"stall_sum_ns,omitempty"`
	StallBuckets     []int64      `json:"stall_buckets,omitempty"`
	StallThresholdNS int64        `json:"stall_threshold_ns,omitempty"`
	RecentStalls     []StallEvent `json:"recent_stalls,omitempty"`
}

// Snapshot returns the current counter values. Each counter is read
// atomically; the set as a whole is not a consistent cut (counters may
// advance between reads), which is the usual contract for monitoring
// counters. Snapshot on a nil Recorder returns zero Stats.
func (r *Recorder) Snapshot() Stats {
	if r == nil {
		return Stats{}
	}
	s := Stats{
		Enqueues:       r.prod.enqueues.Load(),
		Dequeues:       r.cons.dequeues.Load(),
		FullSpins:      r.prod.fullSpins.Load(),
		EmptySpins:     r.cons.emptySpins.Load(),
		ProducerYields: r.prod.producerYields.Load(),
		ConsumerYields: r.cons.consumerYields.Load(),
		GapsCreated:    r.prod.gapsCreated.Load(),
		GapsSkipped:    r.cons.gapsSkipped.Load(),
		WaitCount:      r.wait.count.Load(),
		WaitSumNS:      r.wait.sumNS.Load(),
		BatchCount:     r.batch.count.Load(),
		BatchSumItems:  r.batch.sumItems.Load(),
	}
	if s.WaitCount > 0 {
		s.WaitBuckets = make([]int64, HistBuckets)
		for i := range s.WaitBuckets {
			s.WaitBuckets[i] = r.wait.buckets[i].Load()
		}
	}
	if s.BatchCount > 0 {
		s.BatchBuckets = make([]int64, BatchHistBuckets)
		for i := range s.BatchBuckets {
			s.BatchBuckets[i] = r.batch.buckets[i].Load()
		}
	}
	if lat := r.lat; lat != nil {
		s.EnqLatency = lat.EnqSnapshot()
		s.DeqLatency = lat.DeqSnapshot()
	}
	if st := r.stall; st != nil {
		s.StallEvents = st.events.Load()
		s.StallCount = st.count.Load()
		s.StallSumNS = st.sumNS.Load()
		s.StallThresholdNS = st.thresholdNS
		if s.StallCount > 0 {
			s.StallBuckets = make([]int64, HistBuckets)
			for i := range s.StallBuckets {
				s.StallBuckets[i] = st.buckets[i].Load()
			}
		}
		s.RecentStalls = st.recent(0)
	}
	return s
}

// Sub returns s - prev counter-wise, the rate window between two
// snapshots. Bucket slices are subtracted element-wise when both are
// present.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Enqueues:       s.Enqueues - prev.Enqueues,
		Dequeues:       s.Dequeues - prev.Dequeues,
		FullSpins:      s.FullSpins - prev.FullSpins,
		EmptySpins:     s.EmptySpins - prev.EmptySpins,
		ProducerYields: s.ProducerYields - prev.ProducerYields,
		ConsumerYields: s.ConsumerYields - prev.ConsumerYields,
		GapsCreated:    s.GapsCreated - prev.GapsCreated,
		GapsSkipped:    s.GapsSkipped - prev.GapsSkipped,
		WaitCount:      s.WaitCount - prev.WaitCount,
		WaitSumNS:      s.WaitSumNS - prev.WaitSumNS,
		SegsAllocated:  s.SegsAllocated - prev.SegsAllocated,
		SegsRecycled:   s.SegsRecycled - prev.SegsRecycled,
		SegsRetired:    s.SegsRetired - prev.SegsRetired,
		SegsLive:       s.SegsLive, // gauge: the newer value stands
		BatchCount:     s.BatchCount - prev.BatchCount,
		BatchSumItems:  s.BatchSumItems - prev.BatchSumItems,

		StallEvents:      s.StallEvents - prev.StallEvents,
		StallCount:       s.StallCount - prev.StallCount,
		StallSumNS:       s.StallSumNS - prev.StallSumNS,
		StallThresholdNS: s.StallThresholdNS, // setting: the newer value stands
		RecentStalls:     s.RecentStalls,     // newest tail: the newer view stands
	}
	d.WaitBuckets = subBuckets(s.WaitBuckets, prev.WaitBuckets, HistBuckets)
	d.BatchBuckets = subBuckets(s.BatchBuckets, prev.BatchBuckets, BatchHistBuckets)
	d.StallBuckets = subBuckets(s.StallBuckets, prev.StallBuckets, HistBuckets)
	d.EnqLatency = cloneLatency(s.EnqLatency).Sub(prev.EnqLatency)
	d.DeqLatency = cloneLatency(s.DeqLatency).Sub(prev.DeqLatency)
	return d
}

// cloneLatency deep-copies a snapshot so Sub/Add on Stats values never
// mutate the operands' shared bucket slices. Nil stays nil.
func cloneLatency(s *LatencySnapshot) *LatencySnapshot {
	if s == nil {
		return nil
	}
	c := *s
	c.Buckets = append([]int64(nil), s.Buckets...)
	return &c
}

// subBuckets subtracts prev from cur element-wise when cur is present.
func subBuckets(cur, prev []int64, n int) []int64 {
	if len(cur) != n {
		return nil
	}
	d := make([]int64, n)
	for i, v := range cur {
		d[i] = v
		if len(prev) == n {
			d[i] -= prev[i]
		}
	}
	return d
}

// addBuckets sums two bucket slices, tolerating either being absent.
func addBuckets(a, b []int64, n int) []int64 {
	if len(a) != n && len(b) != n {
		return nil
	}
	t := make([]int64, n)
	for i := range t {
		if len(a) == n {
			t[i] += a[i]
		}
		if len(b) == n {
			t[i] += b[i]
		}
	}
	return t
}

// Add returns s + o counter-wise, for aggregating per-queue snapshots
// into pool totals.
func (s Stats) Add(o Stats) Stats {
	t := Stats{
		Enqueues:       s.Enqueues + o.Enqueues,
		Dequeues:       s.Dequeues + o.Dequeues,
		FullSpins:      s.FullSpins + o.FullSpins,
		EmptySpins:     s.EmptySpins + o.EmptySpins,
		ProducerYields: s.ProducerYields + o.ProducerYields,
		ConsumerYields: s.ConsumerYields + o.ConsumerYields,
		GapsCreated:    s.GapsCreated + o.GapsCreated,
		GapsSkipped:    s.GapsSkipped + o.GapsSkipped,
		WaitCount:      s.WaitCount + o.WaitCount,
		WaitSumNS:      s.WaitSumNS + o.WaitSumNS,
		SegsAllocated:  s.SegsAllocated + o.SegsAllocated,
		SegsRecycled:   s.SegsRecycled + o.SegsRecycled,
		SegsRetired:    s.SegsRetired + o.SegsRetired,
		SegsLive:       s.SegsLive + o.SegsLive,
		BatchCount:     s.BatchCount + o.BatchCount,
		BatchSumItems:  s.BatchSumItems + o.BatchSumItems,

		StallEvents: s.StallEvents + o.StallEvents,
		StallCount:  s.StallCount + o.StallCount,
		StallSumNS:  s.StallSumNS + o.StallSumNS,
	}
	t.StallThresholdNS = s.StallThresholdNS
	if t.StallThresholdNS == 0 {
		t.StallThresholdNS = o.StallThresholdNS
	}
	t.RecentStalls = append(append([]StallEvent(nil), s.RecentStalls...), o.RecentStalls...)
	if len(t.RecentStalls) > DefaultStallRing {
		t.RecentStalls = t.RecentStalls[:DefaultStallRing]
	}
	if len(t.RecentStalls) == 0 {
		t.RecentStalls = nil
	}
	t.WaitBuckets = addBuckets(s.WaitBuckets, o.WaitBuckets, HistBuckets)
	t.BatchBuckets = addBuckets(s.BatchBuckets, o.BatchBuckets, BatchHistBuckets)
	t.StallBuckets = addBuckets(s.StallBuckets, o.StallBuckets, HistBuckets)
	t.EnqLatency = cloneLatency(s.EnqLatency).Add(o.EnqLatency)
	t.DeqLatency = cloneLatency(s.DeqLatency).Add(o.DeqLatency)
	return t
}

// SpinRatio returns spin iterations (both sides) per completed
// operation — the "wasted work" figure of merit for a queue sized too
// small (full spins) or drained too aggressively (empty spins).
func (s Stats) SpinRatio() float64 {
	ops := s.Enqueues + s.Dequeues
	if ops == 0 {
		return 0
	}
	return float64(s.FullSpins+s.EmptySpins) / float64(ops)
}

// MeanWait returns the mean blocking wait, or 0 when nothing blocked.
func (s Stats) MeanWait() time.Duration {
	if s.WaitCount == 0 {
		return 0
	}
	return time.Duration(s.WaitSumNS / s.WaitCount)
}

// MeanBatch returns the mean items per batch operation, or 0 when no
// batch operation was recorded.
func (s Stats) MeanBatch() float64 {
	if s.BatchCount == 0 {
		return 0
	}
	return float64(s.BatchSumItems) / float64(s.BatchCount)
}

// String renders the snapshot as a compact one-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "enq=%d deq=%d spins=%d/%d yields=%d/%d gaps=%d/%d",
		s.Enqueues, s.Dequeues, s.FullSpins, s.EmptySpins,
		s.ProducerYields, s.ConsumerYields, s.GapsCreated, s.GapsSkipped)
	if s.WaitCount > 0 {
		fmt.Fprintf(&b, " waits=%d mean=%s", s.WaitCount, s.MeanWait())
	}
	if s.SegsAllocated > 0 || s.SegsLive > 0 {
		fmt.Fprintf(&b, " segs=%d live (%d alloc, %d recycled, %d retired)",
			s.SegsLive, s.SegsAllocated, s.SegsRecycled, s.SegsRetired)
	}
	if s.BatchCount > 0 {
		fmt.Fprintf(&b, " batches=%d mean=%.1f", s.BatchCount, s.MeanBatch())
	}
	if s.DeqLatency != nil && s.DeqLatency.Count > 0 {
		fmt.Fprintf(&b, " deq_lat[%s]", s.DeqLatency)
	}
	if s.EnqLatency != nil && s.EnqLatency.Count > 0 {
		fmt.Fprintf(&b, " enq_lat[%s]", s.EnqLatency)
	}
	if s.StallEvents > 0 {
		fmt.Fprintf(&b, " stalls=%d mean=%s", s.StallEvents, s.MeanStall())
	}
	return b.String()
}

// MeanStall returns the mean completed-stall duration, or 0 when no
// stall completed.
func (s Stats) MeanStall() time.Duration {
	if s.StallCount == 0 {
		return 0
	}
	return time.Duration(s.StallSumNS / s.StallCount)
}
