package obs

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"testing"
)

// TestLatBucketBoundsRoundTrip checks the HDR bucket geometry: every
// bucket's bounds map back to that bucket, buckets tile the int64 range
// without holes, and the relative width never exceeds 2^-LatSubBits.
func TestLatBucketBoundsRoundTrip(t *testing.T) {
	for i := 0; i < NumLatBuckets; i++ {
		low, high := LatBucketLow(i), LatBucketHigh(i)
		if low > high {
			t.Fatalf("bucket %d: low %d > high %d", i, low, high)
		}
		if got := latIndex(low); got != i {
			t.Fatalf("latIndex(low=%d) = %d, want %d", low, got, i)
		}
		if got := latIndex(high); got != i {
			t.Fatalf("latIndex(high=%d) = %d, want %d", high, got, i)
		}
		if i > 0 && high != math.MaxInt64 {
			if next := LatBucketLow(i + 1); next != high+1 {
				t.Fatalf("bucket %d high %d, bucket %d low %d: hole or overlap", i, high, i+1, next)
			}
		}
		// Relative width bound: the quantile error guarantee.
		if width := high - low; low >= latSubCount && width > low>>LatSubBits {
			t.Fatalf("bucket %d: width %d exceeds %d>>%d", i, width, low, LatSubBits)
		}
	}
	if got := LatBucketHigh(NumLatBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("last bucket high = %d, want MaxInt64", got)
	}
	if latIndex(math.MaxInt64) != NumLatBuckets-1 {
		t.Fatalf("latIndex(MaxInt64) = %d", latIndex(math.MaxInt64))
	}
}

// TestLatencyHistBasics records a known set and checks the derived
// fields, the conservative quantile contract, and negative clamping.
func TestLatencyHistBasics(t *testing.T) {
	var h LatencyHist
	vals := []int64{0, 1, 15, 16, 17, 100, 1000, 10_000, 1_000_000, -5}
	var sum int64
	for _, v := range vals {
		h.Record(v)
		if v < 0 {
			v = 0
		}
		sum += v
	}
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if s.SumNS != sum {
		t.Fatalf("sum = %d, want %d", s.SumNS, sum)
	}
	if s.MaxNS != 1_000_000 {
		t.Fatalf("max = %d", s.MaxNS)
	}
	if s.Quantile(0) == 0 && s.Count > 0 && s.Buckets[0] == 0 {
		t.Fatal("Quantile(0) should clamp to rank 1")
	}
	if got := s.Quantile(1); got != s.MaxNS {
		t.Fatalf("Quantile(1) = %d, want max %d", got, s.MaxNS)
	}
	if s.P50NS < 16 || s.P50NS > 110 {
		t.Fatalf("p50 = %d, want near the middle of %v", s.P50NS, vals)
	}
	if s.String() == "" || s.Mean() <= 0 || s.Max() <= 0 {
		t.Fatal("degenerate formatting accessors")
	}
}

// TestLatencySnapshotAddSub checks delta and merge algebra.
func TestLatencySnapshotAddSub(t *testing.T) {
	var a, b LatencyHist
	for i := int64(1); i <= 100; i++ {
		a.Record(i * 10)
	}
	for i := int64(1); i <= 50; i++ {
		b.Record(i * 1000)
	}
	merged := a.Snapshot().Add(b.Snapshot())
	if merged.Count != 150 {
		t.Fatalf("merged count = %d", merged.Count)
	}
	if merged.MaxNS != 50_000 {
		t.Fatalf("merged max = %d", merged.MaxNS)
	}
	// Merging must equal recording everything into one histogram.
	var both LatencyHist
	for i := int64(1); i <= 100; i++ {
		both.Record(i * 10)
	}
	for i := int64(1); i <= 50; i++ {
		both.Record(i * 1000)
	}
	want := both.Snapshot()
	if merged.P50NS != want.P50NS || merged.P999NS != want.P999NS || merged.SumNS != want.SumNS {
		t.Fatalf("merge mismatch: %v vs %v", merged, want)
	}

	// Delta window: snapshot, record more, subtract.
	prev := a.Snapshot()
	for i := int64(1); i <= 10; i++ {
		a.Record(1 << 20)
	}
	delta := a.Snapshot().Sub(prev)
	if delta.Count != 10 {
		t.Fatalf("delta count = %d", delta.Count)
	}
	if delta.P50NS < 1<<20 || delta.P50NS > (1<<20)+(1<<16) {
		t.Fatalf("delta p50 = %d, want ~2^20", delta.P50NS)
	}
	// nil handling
	if got := (*LatencySnapshot)(nil).Add(prev); got == nil || got.Count != prev.Count {
		t.Fatal("nil.Add(x) should clone x")
	}
	if (*LatencySnapshot)(nil).Quantile(0.5) != 0 {
		t.Fatal("nil quantile should be 0")
	}
}

// TestLatencyConcurrentRecordSnapshot hammers Record from several
// goroutines while snapshots run concurrently: the race detector guards
// the lock-free claim, and the final snapshot must account for every
// observation.
func TestLatencyConcurrentRecordSnapshot(t *testing.T) {
	var h LatencyHist
	const workers = 4
	const per = 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count > 0 && s.P999NS > s.MaxNS {
					t.Error("p999 above max in live snapshot")
					return
				}
			}
		}
	}()
	var rw sync.WaitGroup
	for w := 0; w < workers; w++ {
		rw.Add(1)
		go func(w int) {
			defer rw.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*per + i))
			}
		}(w)
	}
	rw.Wait()
	close(stop)
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("final count = %d, want %d", s.Count, workers*per)
	}
}

// FuzzLatencyOracle cross-checks Quantile against a sorted-slice oracle
// on arbitrary inputs: the histogram answer must be at least the true
// order statistic and within the documented 2^-LatSubBits relative
// error above it. It also verifies that merging two halves reproduces
// the whole.
func FuzzLatencyOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<40))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		var vals []int64
		var whole, left, right LatencyHist
		for i := 0; i+8 <= len(data) && len(vals) < 512; i += 8 {
			v := int64(binary.LittleEndian.Uint64(data[i : i+8]))
			if v < 0 {
				v = 0 // Record clamps; mirror it in the oracle.
			}
			whole.Record(v)
			if len(vals)%2 == 0 {
				left.Record(v)
			} else {
				right.Record(v)
			}
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := whole.Snapshot()
		for _, q := range []float64{0.5, 0.95, 0.99, 0.999, 1} {
			target := int64(q * float64(len(vals)))
			if target < 1 {
				target = 1
			}
			truth := vals[target-1]
			got := s.Quantile(q)
			if got < truth {
				t.Fatalf("q=%v: estimate %d below true order statistic %d", q, got, truth)
			}
			// Compare as a difference: truth*(1+2^-LatSubBits) can
			// overflow int64 near the top of the range.
			if got-truth > truth>>LatSubBits+1 {
				t.Fatalf("q=%v: estimate %d exceeds %d by more than %.2f%%", q, got, truth, 100/float64(int64(1)<<LatSubBits))
			}
		}
		merged := left.Snapshot().Add(right.Snapshot())
		if merged.Count != s.Count || merged.SumNS != s.SumNS || merged.MaxNS != s.MaxNS {
			t.Fatalf("merge totals diverge: %v vs %v", merged, s)
		}
		for i := range s.Buckets {
			if merged.Buckets[i] != s.Buckets[i] {
				t.Fatalf("merge bucket %d: %d vs %d", i, merged.Buckets[i], s.Buckets[i])
			}
		}
	})
}
