package obs

import (
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestNilRecorderSnapshot(t *testing.T) {
	var r *Recorder
	s := r.Snapshot()
	if s.Enqueues != 0 || s.Dequeues != 0 || s.WaitCount != 0 || s.WaitBuckets != nil {
		t.Fatalf("nil recorder snapshot not zero: %+v", s)
	}
}

func TestCountersRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Enqueue()
	r.Enqueue()
	r.Dequeue()
	r.FullSpin()
	r.EmptySpin()
	r.EmptySpin()
	r.EmptySpin()
	r.ProducerYield()
	r.ConsumerYield()
	r.GapCreated()
	r.GapSkipped()
	s := r.Snapshot()
	if s.Enqueues != 2 || s.Dequeues != 1 || s.FullSpins != 1 ||
		s.EmptySpins != 3 || s.ProducerYields != 1 || s.ConsumerYields != 1 ||
		s.GapsCreated != 1 || s.GapsSkipped != 1 {
		t.Fatalf("unexpected snapshot: %+v", s)
	}
}

func TestPaddingSeparatesProducerAndConsumerLines(t *testing.T) {
	var r Recorder
	p := unsafe.Offsetof(r.prod)
	c := unsafe.Offsetof(r.cons)
	w := unsafe.Offsetof(r.wait)
	if c-p < cacheLine {
		t.Fatalf("producer and consumer counters share a cache line: offsets %d, %d", p, c)
	}
	if w-c < cacheLine {
		t.Fatalf("consumer counters and wait histogram share a cache line: offsets %d, %d", c, w)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{255, 8}, {256, 8}, {257, 9}, {1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's bound must land in its own bucket.
	for i := 0; i < 63; i++ {
		if got := bucketOf(BucketBound(i)); got != i {
			t.Errorf("bucketOf(BucketBound(%d)=%d) = %d", i, BucketBound(i), got)
		}
	}
}

func TestObserveWait(t *testing.T) {
	r := NewRecorder()
	r.ObserveWait(100 * time.Nanosecond)
	r.ObserveWait(100 * time.Nanosecond)
	r.ObserveWait(1 * time.Millisecond)
	r.ObserveWait(-5) // clamped, not a crash
	s := r.Snapshot()
	if s.WaitCount != 4 {
		t.Fatalf("WaitCount = %d, want 4", s.WaitCount)
	}
	if want := int64(200 + 1e6); s.WaitSumNS != want {
		t.Fatalf("WaitSumNS = %d, want %d", s.WaitSumNS, want)
	}
	if len(s.WaitBuckets) != HistBuckets {
		t.Fatalf("WaitBuckets length %d", len(s.WaitBuckets))
	}
	if s.WaitBuckets[bucketOf(100)] != 2 {
		t.Fatalf("100ns bucket = %d, want 2", s.WaitBuckets[bucketOf(100)])
	}
	var total int64
	for _, b := range s.WaitBuckets {
		total += b
	}
	if total != 4 {
		t.Fatalf("bucket sum %d != count 4", total)
	}
	if got := s.MeanWait(); got != time.Duration((200+1e6)/4) {
		t.Fatalf("MeanWait = %v", got)
	}
}

func TestSubAndAdd(t *testing.T) {
	r := NewRecorder()
	r.Enqueue()
	r.ObserveWait(10)
	a := r.Snapshot()
	r.Enqueue()
	r.Dequeue()
	r.ObserveWait(10)
	b := r.Snapshot()
	d := b.Sub(a)
	if d.Enqueues != 1 || d.Dequeues != 1 || d.WaitCount != 1 {
		t.Fatalf("Sub wrong: %+v", d)
	}
	if d.WaitBuckets[bucketOf(10)] != 1 {
		t.Fatalf("Sub bucket wrong: %v", d.WaitBuckets[bucketOf(10)])
	}
	sum := a.Add(d)
	if sum.Enqueues != b.Enqueues || sum.WaitCount != b.WaitCount ||
		sum.WaitBuckets[bucketOf(10)] != b.WaitBuckets[bucketOf(10)] {
		t.Fatalf("Add(Sub) does not invert: %+v vs %+v", sum, b)
	}
}

func TestObserveBatch(t *testing.T) {
	r := NewRecorder()
	r.ObserveBatch(1)
	r.ObserveBatch(8)
	r.ObserveBatch(64)
	r.ObserveBatch(0)  // ignored
	r.ObserveBatch(-3) // ignored
	s := r.Snapshot()
	if s.BatchCount != 3 || s.BatchSumItems != 73 {
		t.Fatalf("batch summary wrong: %+v", s)
	}
	if len(s.BatchBuckets) != BatchHistBuckets {
		t.Fatalf("BatchBuckets length %d", len(s.BatchBuckets))
	}
	if s.BatchBuckets[0] != 1 || s.BatchBuckets[3] != 1 || s.BatchBuckets[6] != 1 {
		t.Fatalf("batch buckets wrong: %v", s.BatchBuckets)
	}
	if got := s.MeanBatch(); got < 24.3 || got > 24.4 {
		t.Fatalf("MeanBatch = %v", got)
	}
	// Oversized batches clamp into the last bucket instead of panicking.
	r.ObserveBatch(1 << 20)
	if b := r.Snapshot().BatchBuckets[BatchHistBuckets-1]; b != 1 {
		t.Fatalf("oversized batch bucket = %d, want 1", b)
	}
}

func TestSegAndBatchSubAdd(t *testing.T) {
	a := Stats{SegsAllocated: 2, SegsRecycled: 1, SegsRetired: 1, SegsLive: 2, BatchCount: 1, BatchSumItems: 8}
	b := Stats{SegsAllocated: 5, SegsRecycled: 4, SegsRetired: 6, SegsLive: 3, BatchCount: 3, BatchSumItems: 40}
	d := b.Sub(a)
	if d.SegsAllocated != 3 || d.SegsRecycled != 3 || d.SegsRetired != 5 || d.BatchCount != 2 || d.BatchSumItems != 32 {
		t.Fatalf("Sub wrong: %+v", d)
	}
	if d.SegsLive != 3 {
		t.Fatalf("SegsLive is a gauge; Sub should keep the newer value, got %d", d.SegsLive)
	}
	sum := a.Add(b)
	if sum.SegsAllocated != 7 || sum.BatchSumItems != 48 {
		t.Fatalf("Add wrong: %+v", sum)
	}
}

func TestSpinRatio(t *testing.T) {
	var s Stats
	if s.SpinRatio() != 0 {
		t.Fatal("zero stats SpinRatio != 0")
	}
	s = Stats{Enqueues: 2, Dequeues: 2, FullSpins: 1, EmptySpins: 3}
	if got := s.SpinRatio(); got != 1.0 {
		t.Fatalf("SpinRatio = %v, want 1.0", got)
	}
}

// TestConcurrentRecording exercises every counter from many goroutines
// under -race.
func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Enqueue()
				r.Dequeue()
				r.FullSpin()
				r.EmptySpin()
				r.ProducerYield()
				r.ConsumerYield()
				r.GapCreated()
				r.GapSkipped()
				r.ObserveWait(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	const want = workers * per
	if s.Enqueues != want || s.Dequeues != want || s.WaitCount != want {
		t.Fatalf("lost updates: %+v", s)
	}
}
