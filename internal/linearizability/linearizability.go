// Package linearizability checks concurrent FIFO-queue histories for
// linearizability (Herlihy & Wing), in the spirit of the Wing & Gong
// search as refined by Lowe: a depth-first enumeration of
// linearization orders, pruned by real-time precedence and memoized on
// (linearized-set, queue-state) pairs.
//
// The paper's Proposition 3 states that FFQ is linearizable and omits
// the proof; this package provides the testing-side counterpart — any
// recorded concurrent history of the implementation must admit a
// legal sequential FIFO ordering. Histories are small (the search is
// exponential in the worst case); the queue tests record many small
// windows rather than one large one.
package linearizability

import (
	"fmt"
	"hash/maphash"
	"sync/atomic"
)

// Kind is the type of a recorded operation.
type Kind uint8

// Operation kinds.
const (
	// Enqueue of Op.Value.
	Enqueue Kind = iota
	// DequeueOK: a dequeue that returned Op.Value.
	DequeueOK
	// DequeueEmpty: a dequeue that reported an empty queue.
	DequeueEmpty
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Enqueue:
		return "enq"
	case DequeueOK:
		return "deq"
	case DequeueEmpty:
		return "deq-empty"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one completed operation with its real-time interval. Start and
// End come from a shared logical clock: Op A precedes Op B iff
// A.End < B.Start.
type Op struct {
	Kind       Kind
	Value      uint64
	Start, End int64
}

func (o Op) String() string {
	if o.Kind == DequeueEmpty {
		return fmt.Sprintf("%s[%d,%d]", o.Kind, o.Start, o.End)
	}
	return fmt.Sprintf("%s(%d)[%d,%d]", o.Kind, o.Value, o.Start, o.End)
}

// MaxOps bounds the history size the checker accepts (the linearized
// set is a 64-bit mask).
const MaxOps = 64

// CheckFIFO reports whether the history is linearizable with respect
// to a sequential FIFO queue. Enqueue values must be pairwise distinct
// (the recorder below guarantees it). Histories longer than MaxOps are
// rejected with ok=false and a non-nil error.
func CheckFIFO(history []Op) (bool, error) {
	if len(history) > MaxOps {
		return false, fmt.Errorf("linearizability: history of %d ops exceeds the %d-op limit", len(history), MaxOps)
	}
	seenVals := map[uint64]int{}
	for _, o := range history {
		if o.Kind == Enqueue {
			seenVals[o.Value]++
			if seenVals[o.Value] > 1 {
				return false, fmt.Errorf("linearizability: duplicate enqueue value %d", o.Value)
			}
		}
		if o.End < o.Start {
			return false, fmt.Errorf("linearizability: op %v ends before it starts", o)
		}
	}
	c := &checker{history: history, memo: map[memoKey]bool{}}
	return c.search(0, nil), nil
}

type memoKey struct {
	mask  uint64
	qhash uint64
}

type checker struct {
	history []Op
	memo    map[memoKey]bool
	seed    maphash.Seed
	seeded  bool
}

func (c *checker) hashQueue(q []uint64) uint64 {
	if !c.seeded {
		c.seed = maphash.MakeSeed()
		c.seeded = true
	}
	var h maphash.Hash
	h.SetSeed(c.seed)
	for _, v := range q {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// search tries to linearize the remaining operations given the mask of
// already-linearized ones and the current queue content.
func (c *checker) search(mask uint64, queue []uint64) bool {
	full := uint64(1)<<len(c.history) - 1
	if mask == full {
		return true
	}
	key := memoKey{mask, c.hashQueue(queue)}
	if done, ok := c.memo[key]; ok {
		return done
	}
	// An un-linearized op o is a candidate iff no other un-linearized
	// op strictly precedes it in real time (p.End < o.Start would force
	// p to linearize first).
	for i, o := range c.history {
		bit := uint64(1) << i
		if mask&bit != 0 {
			continue
		}
		minimal := true
		for j, p := range c.history {
			if i == j || mask&(uint64(1)<<j) != 0 {
				continue
			}
			if p.End < o.Start {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		// Apply o to the sequential FIFO model.
		switch o.Kind {
		case Enqueue:
			if c.search(mask|bit, append(queue[:len(queue):len(queue)], o.Value)) {
				c.memo[key] = true
				return true
			}
		case DequeueOK:
			if len(queue) > 0 && queue[0] == o.Value {
				if c.search(mask|bit, queue[1:]) {
					c.memo[key] = true
					return true
				}
			}
		case DequeueEmpty:
			if len(queue) == 0 {
				if c.search(mask|bit, queue) {
					c.memo[key] = true
					return true
				}
			}
		}
	}
	c.memo[key] = false
	return false
}

// Recorder collects a concurrent history with a shared logical clock.
// Each worker obtains a Session (its private op buffer); Merge gathers
// everything once the workers are done.
type Recorder struct {
	clock atomic.Int64
}

// Session is one goroutine's private recording buffer.
type Session struct {
	r   *Recorder
	ops []Op
}

// NewSession returns a private session for one worker goroutine.
func (r *Recorder) NewSession() *Session {
	return &Session{r: r}
}

// Begin stamps the start of an operation.
func (s *Session) Begin() int64 {
	return s.r.clock.Add(1)
}

// EndEnqueue records a completed enqueue.
func (s *Session) EndEnqueue(start int64, v uint64) {
	s.ops = append(s.ops, Op{Kind: Enqueue, Value: v, Start: start, End: s.r.clock.Add(1)})
}

// EndDequeue records a completed dequeue (ok=false means it reported
// empty).
func (s *Session) EndDequeue(start int64, v uint64, ok bool) {
	k := DequeueOK
	if !ok {
		k = DequeueEmpty
	}
	s.ops = append(s.ops, Op{Kind: k, Value: v, Start: start, End: s.r.clock.Add(1)})
}

// Merge concatenates the sessions' histories. Call only after every
// worker has finished.
func Merge(sessions ...*Session) []Op {
	var out []Op
	for _, s := range sessions {
		out = append(out, s.ops...)
	}
	return out
}
