package linearizability

import (
	"sync"
	"testing"

	"ffq/internal/core"
)

// seq builds a strictly sequential history from (kind, value) pairs.
func seq(ops ...Op) []Op {
	t := int64(0)
	out := make([]Op, len(ops))
	for i, o := range ops {
		t++
		o.Start = t
		t++
		o.End = t
		out[i] = o
	}
	return out
}

func mustCheck(t *testing.T, h []Op) bool {
	t.Helper()
	ok, err := CheckFIFO(h)
	if err != nil {
		t.Fatalf("CheckFIFO: %v", err)
	}
	return ok
}

func TestSequentialValid(t *testing.T) {
	h := seq(
		Op{Kind: Enqueue, Value: 1},
		Op{Kind: Enqueue, Value: 2},
		Op{Kind: DequeueOK, Value: 1},
		Op{Kind: DequeueOK, Value: 2},
		Op{Kind: DequeueEmpty},
	)
	if !mustCheck(t, h) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestSequentialFIFOViolation(t *testing.T) {
	h := seq(
		Op{Kind: Enqueue, Value: 1},
		Op{Kind: Enqueue, Value: 2},
		Op{Kind: DequeueOK, Value: 2}, // LIFO, not FIFO
	)
	if mustCheck(t, h) {
		t.Fatal("LIFO history accepted as FIFO")
	}
}

func TestDequeueOfPhantomValue(t *testing.T) {
	h := seq(
		Op{Kind: Enqueue, Value: 1},
		Op{Kind: DequeueOK, Value: 9},
	)
	if mustCheck(t, h) {
		t.Fatal("phantom dequeue accepted")
	}
}

func TestEmptyWhileFull(t *testing.T) {
	h := seq(
		Op{Kind: Enqueue, Value: 1},
		Op{Kind: DequeueEmpty}, // strictly after the enqueue completed
	)
	if mustCheck(t, h) {
		t.Fatal("empty observation after completed enqueue accepted")
	}
}

// Overlapping operations may be reordered: a dequeue that starts
// before a concurrent enqueue completes may legally return its value.
func TestConcurrentReorderingAllowed(t *testing.T) {
	h := []Op{
		{Kind: Enqueue, Value: 1, Start: 1, End: 10},
		{Kind: DequeueOK, Value: 1, Start: 2, End: 9},
	}
	if !mustCheck(t, h) {
		t.Fatal("legal concurrent overlap rejected")
	}
	// And a concurrent empty observation is also legal.
	h2 := []Op{
		{Kind: Enqueue, Value: 1, Start: 1, End: 10},
		{Kind: DequeueEmpty, Start: 2, End: 9},
		{Kind: DequeueOK, Value: 1, Start: 11, End: 12},
	}
	if !mustCheck(t, h2) {
		t.Fatal("legal concurrent empty rejected")
	}
}

// Two concurrent enqueues can land in either order, but both orders
// must agree with the dequeues that follow.
func TestConcurrentEnqueueOrders(t *testing.T) {
	base := []Op{
		{Kind: Enqueue, Value: 1, Start: 1, End: 5},
		{Kind: Enqueue, Value: 2, Start: 2, End: 6},
	}
	ok1 := append(append([]Op{}, base...),
		Op{Kind: DequeueOK, Value: 2, Start: 7, End: 8},
		Op{Kind: DequeueOK, Value: 1, Start: 9, End: 10})
	if !mustCheck(t, ok1) {
		t.Fatal("2-then-1 rejected despite concurrent enqueues")
	}
	bad := append(append([]Op{}, base...),
		Op{Kind: DequeueOK, Value: 2, Start: 7, End: 8},
		Op{Kind: DequeueOK, Value: 2, Start: 9, End: 10}) // duplicate delivery
	if mustCheck(t, bad) {
		t.Fatal("duplicate delivery accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := CheckFIFO(make([]Op, MaxOps+1)); err == nil {
		t.Error("oversized history accepted")
	}
	dup := seq(Op{Kind: Enqueue, Value: 5}, Op{Kind: Enqueue, Value: 5})
	if _, err := CheckFIFO(dup); err == nil {
		t.Error("duplicate enqueue values accepted")
	}
	rev := []Op{{Kind: Enqueue, Value: 1, Start: 5, End: 2}}
	if _, err := CheckFIFO(rev); err == nil {
		t.Error("inverted interval accepted")
	}
}

// Recorded histories of the real FFQ implementations must always be
// linearizable (the testing-side half of the paper's Proposition 3).
func TestFFQMPMCHistoriesLinearizable(t *testing.T) {
	const rounds = 40
	for r := 0; r < rounds; r++ {
		q, err := core.NewMPMC[uint64](4)
		if err != nil {
			t.Fatal(err)
		}
		var rec Recorder
		const workers = 3
		const perWorker = 4
		sessions := make([]*Session, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			sessions[w] = rec.NewSession()
			wg.Add(1)
			go func(w int, s *Session) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					v := uint64(w*perWorker + i + 1)
					st := s.Begin()
					q.Enqueue(v)
					s.EndEnqueue(st, v)
					st = s.Begin()
					got, _ := q.Dequeue() // blocking: always ok
					s.EndDequeue(st, got, true)
				}
			}(w, sessions[w])
		}
		wg.Wait()
		h := Merge(sessions...)
		ok, err := CheckFIFO(h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("round %d: non-linearizable history:\n%v", r, h)
		}
	}
}

func TestFFQSPMCHistoriesLinearizable(t *testing.T) {
	const rounds = 40
	for r := 0; r < rounds; r++ {
		q, err := core.NewSPMC[uint64](8)
		if err != nil {
			t.Fatal(err)
		}
		var rec Recorder
		prod := rec.NewSession()
		const consumers = 3
		const items = 9
		sessions := []*Session{prod}
		var wg sync.WaitGroup
		consSessions := make([]*Session, consumers)
		for c := 0; c < consumers; c++ {
			consSessions[c] = rec.NewSession()
			sessions = append(sessions, consSessions[c])
			wg.Add(1)
			go func(s *Session) {
				defer wg.Done()
				for i := 0; i < items/consumers; i++ {
					st := s.Begin()
					v, _ := q.Dequeue()
					s.EndDequeue(st, v, true)
				}
			}(consSessions[c])
		}
		for i := 1; i <= items; i++ {
			st := prod.Begin()
			q.Enqueue(uint64(i))
			prod.EndEnqueue(st, uint64(i))
		}
		wg.Wait()
		ok, err := CheckFIFO(Merge(sessions...))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("round %d: non-linearizable SPMC history", r)
		}
	}
}

func TestKindString(t *testing.T) {
	if Enqueue.String() != "enq" || DequeueOK.String() != "deq" || DequeueEmpty.String() != "deq-empty" {
		t.Error("kind names")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind")
	}
}
