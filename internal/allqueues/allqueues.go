// Package allqueues adapts every queue implementation in this module
// to the common benchmarking interface of internal/queue and exposes
// the registry the comparative harness (the paper's Figure 8) sweeps
// over.
package allqueues

import (
	"fmt"

	"ffq/internal/ccqueue"
	"ffq/internal/chanq"
	"ffq/internal/core"
	"ffq/internal/htmqueue"
	"ffq/internal/lcrq"
	"ffq/internal/msqueue"
	"ffq/internal/queue"
	"ffq/internal/segq"
	"ffq/internal/vyukov"
	"ffq/internal/wfqueue"
)

// ffqMPMCAdapter drops the ok result of the FFQ dequeue (it blocks
// rather than reporting empty; see queue.Queue's contract).
type ffqMPMCAdapter struct{ q *core.MPMC[uint64] }

func (a ffqMPMCAdapter) Enqueue(v uint64) { a.q.Enqueue(v) }
func (a ffqMPMCAdapter) Dequeue() (uint64, bool) {
	return a.q.Dequeue()
}
func (a ffqMPMCAdapter) TryDequeue() (uint64, bool)            { return a.q.TryDequeue() }
func (a ffqMPMCAdapter) EnqueueBatch(vs []uint64)              { a.q.EnqueueBatch(vs) }
func (a ffqMPMCAdapter) DequeueBatch(dst []uint64) (int, bool) { return a.q.DequeueBatch(dst) }
func (a ffqMPMCAdapter) Close()                                { a.q.Close() }

type ffqSPMCAdapter struct{ q *core.SPMC[uint64] }

func (a ffqSPMCAdapter) Enqueue(v uint64) { a.q.Enqueue(v) }
func (a ffqSPMCAdapter) Dequeue() (uint64, bool) {
	return a.q.Dequeue()
}
func (a ffqSPMCAdapter) TryDequeue() (uint64, bool)            { return a.q.TryDequeue() }
func (a ffqSPMCAdapter) EnqueueBatch(vs []uint64)              { a.q.EnqueueBatch(vs) }
func (a ffqSPMCAdapter) DequeueBatch(dst []uint64) (int, bool) { return a.q.DequeueBatch(dst) }
func (a ffqSPMCAdapter) Close()                                { a.q.Close() }

type ffqSPSCAdapter struct{ q *core.SPSC[uint64] }

func (a ffqSPSCAdapter) Enqueue(v uint64) { a.q.Enqueue(v) }
func (a ffqSPSCAdapter) Dequeue() (uint64, bool) {
	return a.q.TryDequeue()
}
func (a ffqSPSCAdapter) TryDequeue() (uint64, bool) { return a.q.TryDequeue() }

// ffqLineAdapter maps Dequeue to the non-blocking poll like the scalar
// SPSC adapter (one consumer owns the head; an empty queue reserves
// nothing) and exposes the native whole-line batch ops.
type ffqLineAdapter struct{ q *core.LineSPSC[uint64] }

func (a ffqLineAdapter) Enqueue(v uint64) { a.q.Enqueue(v) }
func (a ffqLineAdapter) Dequeue() (uint64, bool) {
	return a.q.TryDequeue()
}
func (a ffqLineAdapter) TryDequeue() (uint64, bool)            { return a.q.TryDequeue() }
func (a ffqLineAdapter) EnqueueBatch(vs []uint64)              { a.q.EnqueueBatch(vs) }
func (a ffqLineAdapter) DequeueBatch(dst []uint64) (int, bool) { return a.q.DequeueBatch(dst) }
func (a ffqLineAdapter) Close()                                { a.q.Close() }

type segSPMCAdapter struct{ q *segq.SPMC[uint64] }

func (a segSPMCAdapter) Enqueue(v uint64)                      { a.q.Enqueue(v) }
func (a segSPMCAdapter) Dequeue() (uint64, bool)               { return a.q.Dequeue() }
func (a segSPMCAdapter) TryDequeue() (uint64, bool)            { return a.q.TryDequeue() }
func (a segSPMCAdapter) EnqueueBatch(vs []uint64)              { a.q.EnqueueBatch(vs) }
func (a segSPMCAdapter) DequeueBatch(dst []uint64) (int, bool) { return a.q.DequeueBatch(dst) }
func (a segSPMCAdapter) Close()                                { a.q.Close() }

type segMPMCAdapter struct{ q *segq.MPMC[uint64] }

func (a segMPMCAdapter) Enqueue(v uint64)                      { a.q.Enqueue(v) }
func (a segMPMCAdapter) Dequeue() (uint64, bool)               { return a.q.Dequeue() }
func (a segMPMCAdapter) TryDequeue() (uint64, bool)            { return a.q.TryDequeue() }
func (a segMPMCAdapter) EnqueueBatch(vs []uint64)              { a.q.EnqueueBatch(vs) }
func (a segMPMCAdapter) DequeueBatch(dst []uint64) (int, bool) { return a.q.DequeueBatch(dst) }
func (a segMPMCAdapter) Close()                                { a.q.Close() }

type wfAdapter struct{ q *wfqueue.Queue }

func (a wfAdapter) Register() queue.Queue { return a.q.Register() }

type ccAdapter struct{ q *ccqueue.Queue }

func (a ccAdapter) Register() queue.Queue { return a.q.Register() }

// shardedShared hands every registering worker its own producer lane
// (the sharded queue's intended deployment: one wait-free FFQ^s
// enqueue path per producer). Workers beyond the lane count fall back
// to the transient-claim shared path.
type shardedShared struct{ q *core.Sharded[uint64] }

func (s *shardedShared) Register() queue.Queue {
	if p, ok := s.q.Acquire(); ok {
		return shardedLaneView{q: s.q, p: p}
	}
	return shardedSharedView{q: s.q}
}

type shardedLaneView struct {
	q *core.Sharded[uint64]
	p *core.Producer[uint64]
}

func (v shardedLaneView) Enqueue(x uint64)                      { v.p.Enqueue(x) }
func (v shardedLaneView) Dequeue() (uint64, bool)               { return v.q.TryDequeue() }
func (v shardedLaneView) TryDequeue() (uint64, bool)            { return v.q.TryDequeue() }
func (v shardedLaneView) EnqueueBatch(vs []uint64)              { v.p.EnqueueBatch(vs) }
func (v shardedLaneView) DequeueBatch(dst []uint64) (int, bool) { return v.q.DequeueBatch(dst) }
func (v shardedLaneView) Close()                                { v.q.Close() }

type shardedSharedView struct{ q *core.Sharded[uint64] }

func (v shardedSharedView) Enqueue(x uint64)           { v.q.Enqueue(x) }
func (v shardedSharedView) Dequeue() (uint64, bool)    { return v.q.TryDequeue() }
func (v shardedSharedView) TryDequeue() (uint64, bool) { return v.q.TryDequeue() }

// EnqueueBatch on the fallback view claims a lane per item; workers
// that need the amortized path should hold a lane (register while
// lanes are free).
func (v shardedSharedView) EnqueueBatch(vs []uint64) {
	for _, x := range vs {
		v.q.Enqueue(x)
	}
}
func (v shardedSharedView) DequeueBatch(dst []uint64) (int, bool) { return v.q.DequeueBatch(dst) }
func (v shardedSharedView) Close()                                { v.q.Close() }

// laneCapFor splits a total capacity hint over n lanes, rounding each
// lane up to the next power of two (minimum 2) so the sharded queue
// holds at least the requested total.
func laneCapFor(capacity, n int) int {
	per := (capacity + n - 1) / n
	c := 2
	for c < per {
		c <<= 1
	}
	return c
}

// mustLayout builds FFQ queues with the paper's best all-round layout
// (dedicated cache lines).
var ffqLayout = core.WithLayout(core.LayoutPadded)

// Factories returns the full queue registry. Entries whose MaxThreads
// is non-zero are only meaningful up to that many workers (the FFQ
// SPSC/SPMC variants appear in the paper's Figure 8 as single-threaded
// marks).
func Factories() []Named {
	return []Named{
		{
			Factory: queue.Factory{
				Name:  "ffq-mpmc",
				Brief: "FFQ^m, this paper (packed-word DCAS port)",
				New: func(capacity, _ int) queue.Shared {
					q, err := core.NewMPMC[uint64](capacity, ffqLayout)
					check(err)
					return queue.SelfRegistering{Q: ffqMPMCAdapter{q}}
				},
				Bounded: true,
			},
		},
		{
			Factory: queue.Factory{
				Name:  "ffq-sharded",
				Brief: "sharded FFQ^s lanes, one per producer (no producer CAS)",
				New: func(capacity, nthreads int) queue.Shared {
					if nthreads < 1 {
						nthreads = 1
					}
					// nthreads+1 lanes: Acquire grants at most lanes-1
					// exclusive handles (one lane stays open to the shared
					// fallback), so every worker gets its own lane.
					q, err := core.NewSharded[uint64](nthreads+1, laneCapFor(capacity, nthreads), ffqLayout)
					check(err)
					return &shardedShared{q: q}
				},
				Bounded: true,
			},
		},
		{
			MaxThreads: 1,
			Factory: queue.Factory{
				Name:  "ffq-spmc",
				Brief: "FFQ^s, this paper (single producer)",
				New: func(capacity, _ int) queue.Shared {
					q, err := core.NewSPMC[uint64](capacity, ffqLayout)
					check(err)
					return queue.SelfRegistering{Q: ffqSPMCAdapter{q}}
				},
				Bounded: true,
			},
		},
		{
			MaxThreads: 1,
			Factory: queue.Factory{
				Name:  "ffq-spsc",
				Brief: "FFQ SPSC variant (no consumer FAA)",
				New: func(capacity, _ int) queue.Shared {
					q, err := core.NewSPSC[uint64](capacity, ffqLayout)
					check(err)
					return queue.SelfRegistering{Q: ffqSPSCAdapter{q}}
				},
				Bounded: true,
			},
		},
		{
			MaxThreads: 1,
			Factory: queue.Factory{
				Name:  "ffq-line",
				Brief: "FFQ SPSC with multi-value cache-line cells (7 values/line)",
				New: func(capacity, _ int) queue.Shared {
					q, err := core.NewLineSPSC[uint64](capacity)
					check(err)
					return queue.SelfRegistering{Q: ffqLineAdapter{q}}
				},
				Bounded: true,
			},
		},
		{
			MaxThreads: 1,
			Factory: queue.Factory{
				Name:  "ffq-useg",
				Brief: "unbounded segmented FFQ^s (linked rings, recycling pool)",
				New: func(capacity, _ int) queue.Shared {
					// The capacity hint becomes the segment size, so the
					// sweep's capacity axis doubles as a segment-size axis.
					q, err := segq.NewSPMC[uint64](core.ResolveOptions(ffqLayout, core.WithSegmentSize(capacity)))
					check(err)
					return queue.SelfRegistering{Q: segSPMCAdapter{q}}
				},
			},
		},
		{
			Factory: queue.Factory{
				Name:  "ffq-useg-mpmc",
				Brief: "unbounded segmented FFQ, multi-producer (FAA rank claim)",
				New: func(capacity, _ int) queue.Shared {
					q, err := segq.NewMPMC[uint64](core.ResolveOptions(ffqLayout, core.WithSegmentSize(capacity)))
					check(err)
					return queue.SelfRegistering{Q: segMPMCAdapter{q}}
				},
			},
		},
		{
			Factory: queue.Factory{
				Name:  "wfqueue",
				Brief: "Yang & Mellor-Crummey wait-free queue (WF-10)",
				New: func(_, _ int) queue.Shared {
					return wfAdapter{wfqueue.New()}
				},
			},
		},
		{
			Factory: queue.Factory{
				Name:  "lcrq",
				Brief: "Morrison & Afek LCRQ (packed-cell port)",
				New: func(capacity, _ int) queue.Shared {
					q, err := lcrq.New(capacity)
					check(err)
					return queue.SelfRegistering{Q: q}
				},
			},
		},
		{
			Factory: queue.Factory{
				Name:  "ccqueue",
				Brief: "Fatourou & Kallimanis CC-Queue (CC-Synch combining)",
				New: func(_, _ int) queue.Shared {
					return ccAdapter{ccqueue.New()}
				},
			},
		},
		{
			Factory: queue.Factory{
				Name:  "msqueue",
				Brief: "Michael & Scott lock-free queue",
				New: func(_, _ int) queue.Shared {
					return queue.SelfRegistering{Q: msqueue.New()}
				},
			},
		},
		{
			Factory: queue.Factory{
				Name:  "htm",
				Brief: "circular buffer in (emulated) HTM transactions",
				New: func(capacity, _ int) queue.Shared {
					q, err := htmqueue.New(capacity)
					check(err)
					return queue.SelfRegistering{Q: htmAdapter{q}}
				},
				Bounded: true,
			},
		},
		{
			Factory: queue.Factory{
				Name:  "chan",
				Brief: "buffered Go channel (not in the paper)",
				New: func(capacity, _ int) queue.Shared {
					return queue.SelfRegistering{Q: chanAdapter{chanq.New(capacity)}}
				},
				Bounded: true,
			},
		},
		{
			Factory: queue.Factory{
				Name:  "vyukov",
				Brief: "Vyukov bounded MPMC (the paper's external-queue baseline)",
				New: func(capacity, _ int) queue.Shared {
					q, err := vyukov.New(capacity)
					check(err)
					return queue.SelfRegistering{Q: vyukovAdapter{q}}
				},
				Bounded: true,
			},
		},
	}
}

type htmAdapter struct{ q *htmqueue.Queue }

func (a htmAdapter) Enqueue(v uint64)        { a.q.Enqueue(v) }
func (a htmAdapter) Dequeue() (uint64, bool) { return a.q.Dequeue() }

type chanAdapter struct{ q *chanq.Queue }

func (a chanAdapter) Enqueue(v uint64)        { a.q.Enqueue(v) }
func (a chanAdapter) Dequeue() (uint64, bool) { return a.q.Dequeue() }

type vyukovAdapter struct{ q *vyukov.Queue }

func (a vyukovAdapter) Enqueue(v uint64)        { a.q.Enqueue(v) }
func (a vyukovAdapter) Dequeue() (uint64, bool) { return a.q.Dequeue() }

// Named couples a Factory with registry metadata.
type Named struct {
	queue.Factory
	// MaxThreads restricts the entry to runs with at most this many
	// workers (0 = unrestricted).
	MaxThreads int
}

// ByName returns the named factory or an error listing the valid names.
func ByName(name string) (Named, error) {
	fs := Factories()
	for _, f := range fs {
		if f.Name == name {
			return f, nil
		}
	}
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return Named{}, fmt.Errorf("unknown queue %q (have %v)", name, names)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
