package allqueues_test

import (
	"testing"

	"ffq/internal/allqueues"
	"ffq/internal/queuetest"
)

// Every registry entry must pass the conformance suite through the
// exact adapter the benchmarks use.
func TestRegistryConformance(t *testing.T) {
	for _, f := range allqueues.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			opts := queuetest.DefaultOptions()
			opts.Capacity = 1024
			opts.ItemsPerProducer = 2000
			opts.Blocking = f.Name == "ffq-mpmc" || f.Name == "ffq-spmc"
			if f.MaxThreads == 1 {
				opts.Producers = 1
				if f.Name == "ffq-spsc" {
					opts.Consumers = 1
				}
			}
			queuetest.Sequential(t, f.Factory, opts)
			queuetest.Concurrent(t, f.Factory, opts)
		})
	}
}

func TestByName(t *testing.T) {
	f, err := allqueues.ByName("ffq-mpmc")
	if err != nil || f.Name != "ffq-mpmc" {
		t.Fatalf("ByName: %v, %+v", err, f)
	}
	if _, err := allqueues.ByName("nonesuch"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestFactoryMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range allqueues.Factories() {
		if f.Name == "" || f.Brief == "" || f.New == nil {
			t.Errorf("incomplete factory %+v", f)
		}
		if seen[f.Name] {
			t.Errorf("duplicate factory name %q", f.Name)
		}
		seen[f.Name] = true
	}
	for _, want := range []string{"ffq-mpmc", "ffq-spmc", "ffq-spsc", "wfqueue", "lcrq", "ccqueue", "msqueue", "htm", "vyukov", "chan"} {
		if !seen[want] {
			t.Errorf("registry is missing %q", want)
		}
	}
}

// Every registry queue's concurrent histories must be linearizable
// with respect to a sequential FIFO queue.
func TestRegistryLinearizable(t *testing.T) {
	for _, f := range allqueues.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			opts := queuetest.DefaultOptions()
			opts.Blocking = f.Name == "ffq-mpmc" || f.Name == "ffq-spmc"
			if f.MaxThreads == 1 {
				opts.Producers = 1
				if f.Name == "ffq-spsc" {
					opts.Consumers = 1
				}
			}
			queuetest.Linearizable(t, f.Factory, opts, 25)
		})
	}
}
