package allqueues_test

import (
	"testing"

	"ffq/internal/allqueues"
	"ffq/internal/queuetest"
)

// blocking names the registry entries whose Dequeue blocks on empty
// instead of reporting it (the FFQ family: a reserved rank cannot be
// abandoned).
func blocking(name string) bool {
	switch name {
	case "ffq-mpmc", "ffq-spmc", "ffq-useg", "ffq-useg-mpmc":
		return true
	}
	return false
}

// batcher names the registry entries whose adapters expose the batch
// interface (contiguous-run claims on the FFQ cores and segmented
// queues; per-lane runs on the sharded queue).
func batcher(name string) bool {
	switch name {
	case "ffq-mpmc", "ffq-spmc", "ffq-sharded", "ffq-useg", "ffq-useg-mpmc", "ffq-line":
		return true
	}
	return false
}

// tryDequeuer names the registry entries whose adapters expose the
// non-blocking TryDequeue poll (the FFQ family).
func tryDequeuer(name string) bool {
	switch name {
	case "ffq-mpmc", "ffq-spmc", "ffq-spsc", "ffq-sharded", "ffq-useg", "ffq-useg-mpmc", "ffq-line":
		return true
	}
	return false
}

// singleConsumer names the strictly one-producer/one-consumer entries:
// the conformance runs must not fan their dequeues out.
func singleConsumer(name string) bool {
	return name == "ffq-spsc" || name == "ffq-line"
}

// Every registry entry must pass the conformance suite through the
// exact adapter the benchmarks use. Unbounded entries additionally
// must absorb a burst far beyond the capacity hint with no consumer
// running.
func TestRegistryConformance(t *testing.T) {
	for _, f := range allqueues.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			opts := queuetest.DefaultOptions()
			opts.Capacity = 1024
			opts.ItemsPerProducer = 2000
			opts.Blocking = blocking(f.Name)
			if f.MaxThreads == 1 {
				opts.Producers = 1
				if singleConsumer(f.Name) {
					opts.Consumers = 1
				}
			}
			queuetest.Sequential(t, f.Factory, opts)
			queuetest.Concurrent(t, f.Factory, opts)
			if tryDequeuer(f.Name) {
				queuetest.TryDequeue(t, f.Factory, opts)
			}
			if batcher(f.Name) {
				queuetest.BatchFIFO(t, f.Factory, opts)
				queuetest.BatchPartial(t, f.Factory, opts)
				queuetest.BatchExactlyOnce(t, f.Factory, opts)
			}
			if !f.Bounded {
				growth := opts
				growth.Capacity = 16 // segmented queues: 16-cell segments, 64 segment links
				queuetest.UnboundedGrowth(t, f.Factory, growth)
			}
		})
	}
}

func TestByName(t *testing.T) {
	f, err := allqueues.ByName("ffq-mpmc")
	if err != nil || f.Name != "ffq-mpmc" {
		t.Fatalf("ByName: %v, %+v", err, f)
	}
	if _, err := allqueues.ByName("nonesuch"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestFactoryMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range allqueues.Factories() {
		if f.Name == "" || f.Brief == "" || f.New == nil {
			t.Errorf("incomplete factory %+v", f)
		}
		if seen[f.Name] {
			t.Errorf("duplicate factory name %q", f.Name)
		}
		seen[f.Name] = true
	}
	for _, want := range []string{"ffq-mpmc", "ffq-spmc", "ffq-spsc", "ffq-line", "ffq-sharded", "ffq-useg", "ffq-useg-mpmc", "wfqueue", "lcrq", "ccqueue", "msqueue", "htm", "vyukov", "chan"} {
		if !seen[want] {
			t.Errorf("registry is missing %q", want)
		}
	}
}

// Every registry queue's concurrent histories must be linearizable
// with respect to a sequential FIFO queue.
func TestRegistryLinearizable(t *testing.T) {
	for _, f := range allqueues.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if f.Name == "ffq-sharded" {
				// By construction the sharded queue orders items per
				// producer lane only: an item enqueued strictly after
				// another producer's item may still be dequeued first,
				// so its histories do not linearize to one sequential
				// FIFO. Its ordering contract (exactly-once delivery,
				// per-producer FIFO) is covered by the conformance and
				// batch suites instead.
				t.Skip("sharded queue guarantees per-producer FIFO, not single-FIFO linearizability")
			}
			opts := queuetest.DefaultOptions()
			opts.Blocking = blocking(f.Name)
			if f.MaxThreads == 1 {
				opts.Producers = 1
				if singleConsumer(f.Name) {
					opts.Consumers = 1
				}
			}
			queuetest.Linearizable(t, f.Factory, opts, 25)
		})
	}
}
