// Package core implements the FFQ family of concurrent FIFO queues from
//
//	S. Arnautov, C. Fetzer, B. Trach, P. Felber:
//	"FFQ: A Fast Single-Producer/Multiple-Consumer Concurrent FIFO Queue",
//	IPDPS 2017.
//
// Three variants are provided:
//
//   - SPSC: single producer, single consumer. The head counter is owned
//     by the one consumer, so dequeue needs no atomic read-modify-write.
//   - SPMC (the paper's FFQ^s, Algorithm 1): single producer, multiple
//     consumers. Enqueue is wait-free while the queue is not full;
//     dequeue is lock-free while the queue is not empty.
//   - MPMC (the paper's FFQ^m, Algorithm 2): multiple producers and
//     consumers. The paper's 128-bit double-compare-and-set over the
//     adjacent (rank, gap) cell fields is emulated here by packing both
//     fields, as 32-bit lap numbers, into a single 64-bit word that is
//     updated with CompareAndSwapUint64 (see mpmc.go).
//
// # Ranks, gaps and cells
//
// A queue of capacity N is a circular array of cells. The head and tail
// counters are monotonically increasing ranks; the item with rank k
// lives in cell (k mod N). A cell stores the rank of the item it holds
// (or -1 when free) and a gap announcement: when the producer finds the
// tail cell still occupied by a slow consumer, it skips that rank and
// records it in the cell's gap field so consumers know to move on.
//
// # Memory layout options
//
// Section IV-A of the paper evaluates four cell layouts; all four are
// supported through the Layout constructor option:
//
//   - LayoutCompact: cells are packed back to back.
//   - LayoutPadded: a stride keeps any two logical cells on distinct
//     cache lines ("dedicated cache lines" in the paper).
//   - LayoutRandomized: the low index bits are rotated by 4, placing
//     consecutive ranks 16 slots apart ("address randomization").
//   - LayoutPaddedRandomized: both of the above.
//
// # Instrumentation
//
// WithInstrumentation (or WithRecorder for a shared aggregate) attaches
// an obs.Recorder to a queue: completed operations, full-/empty-queue
// spin iterations, scheduler yields, gap creation/skip counts and a
// log2 histogram of blocking-path wait times are then counted, and
// snapshotted by the Stats method. The recorder field is nil by
// default and every path checks it before recording, so the disabled
// configuration costs one predicted branch per operation
// (BenchmarkInstrumentation in the root package gates this).
//
// # Memory model
//
// The reference C implementation orders the data and rank stores with
// release/acquire fences. Go's sync/atomic operations are sequentially
// consistent, which is strictly stronger, so the data field itself can
// be a plain (non-atomic) field: it is only ever accessed by the thread
// that owns the cell between the publishing rank store and the consuming
// rank reset. All queues in this package are race-detector clean.
package core
