package core

// Option configures a queue at construction time.
type Option func(*config)

type config struct {
	layout Layout
}

func defaultConfig() config {
	return config{layout: LayoutCompact}
}

// WithLayout selects the memory layout of the cell array. The default
// is LayoutCompact. See the Layout constants for the four
// configurations evaluated in the paper's Figure 2.
func WithLayout(l Layout) Option {
	return func(c *config) { c.layout = l }
}
