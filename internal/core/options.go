package core

import (
	"time"

	"ffq/internal/obs"
)

// Option configures a queue at construction time.
type Option func(*config)

type config struct {
	layout  Layout
	rec     *obs.Recorder
	yieldTh int
	segSize int
	opLat   bool
	stallTh time.Duration
}

// recorder materializes the configured Recorder: latency recording or
// a stall watchdog force one into existence even when neither
// WithInstrumentation nor WithRecorder was given, and the requested
// extensions are attached before the Recorder is shared with a queue.
func (c *config) recorder() *obs.Recorder {
	r := c.rec
	if r == nil && (c.opLat || c.stallTh != 0) {
		r = obs.NewRecorder()
	}
	if r != nil {
		if c.opLat {
			r.EnableOpLatency()
		}
		if c.stallTh != 0 {
			r.EnableStallWatchdog(c.stallTh, 0)
		}
	}
	return r
}

func defaultConfig() config {
	return config{layout: LayoutCompact, yieldTh: defaultYieldThreshold, segSize: DefaultSegmentSize}
}

// DefaultSegmentSize is the per-segment ring capacity the unbounded
// (segmented) queues use when WithSegmentSize was not given. 1024
// cells amortizes one segment hand-off across 1024 operations while
// keeping a drained segment's memory (~16KiB for 8-byte payloads)
// small enough to park in the recycling pool without bloat.
const DefaultSegmentSize = 1 << 10

// WithSegmentSize sets the per-segment ring capacity of the unbounded
// (segmented) queues; n must be a power of two >= 2. Bounded queues
// ignore it — their capacity is the NewXXX argument. Larger segments
// amortize segment hand-off further and reduce pool churn; smaller
// segments bound the memory a bursty producer strands ahead of slow
// consumers. n <= 0 restores the default.
func WithSegmentSize(n int) Option {
	return func(c *config) {
		if n <= 0 {
			n = DefaultSegmentSize
		}
		c.segSize = n
	}
}

// Resolved is the outcome of applying a list of Options, exported so
// sibling queue packages (internal/segq) can honor the same options
// the bounded core variants take without duplicating the option type.
type Resolved struct {
	Layout         Layout
	Recorder       *obs.Recorder
	YieldThreshold int
	SegmentSize    int
}

// ResolveOptions applies opts over the defaults and returns the
// resolved configuration.
func ResolveOptions(opts ...Option) Resolved {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return Resolved{Layout: cfg.layout, Recorder: cfg.recorder(), YieldThreshold: cfg.yieldTh, SegmentSize: cfg.segSize}
}

// WithLayout selects the memory layout of the cell array. The default
// is LayoutCompact. See the Layout constants for the four
// configurations evaluated in the paper's Figure 2.
func WithLayout(l Layout) Option {
	return func(c *config) { c.layout = l }
}

// WithInstrumentation attaches a fresh obs.Recorder to the queue:
// operations, spins, yields, gaps and blocking-wait latencies are
// counted from then on, readable through the queue's Stats and
// Recorder methods. Without this option (the default) the queue keeps
// no per-operation metrics and the hot paths pay only a single
// predicted nil-check branch.
func WithInstrumentation() Option {
	return WithRecorder(obs.NewRecorder())
}

// WithRecorder attaches a specific Recorder, letting several queues
// share one aggregate (for example a whole pool of per-producer SPMC
// queues). A nil r disables instrumentation.
func WithRecorder(r *obs.Recorder) Option {
	return func(c *config) { c.rec = r }
}

// WithOpLatency enables per-operation latency recording: every
// completed blocking Enqueue/Dequeue records its full latency (two
// clock reads per op) into HDR-style histograms readable via the
// queue's Stats (EnqLatency/DeqLatency percentile snapshots). Implies
// an attached Recorder: one is created if no WithInstrumentation /
// WithRecorder option supplies it. Enable for latency runs, not
// throughput baselines.
func WithOpLatency() Option {
	return func(c *config) { c.opLat = true }
}

// WithStallWatchdog arms the stall watchdog: blocking waits that cross
// threshold emit timestamped stall events (role, rank, duration) into
// a lock-free event ring and a stall-duration histogram, readable via
// the queue's Stats (StallEvents, RecentStalls, StallBuckets). The
// in-loop elapsed check reads the clock once per 64 spin iterations,
// so an armed-but-quiet watchdog costs nothing measurable. threshold
// <= 0 selects obs.DefaultStallThreshold. Implies an attached Recorder
// (as WithOpLatency).
func WithStallWatchdog(threshold time.Duration) Option {
	return func(c *config) {
		if threshold <= 0 {
			threshold = obs.DefaultStallThreshold
		}
		c.stallTh = threshold
	}
}

// WithYieldThreshold overrides the number of consecutive failed polls
// after which a spinning goroutine yields to the Go scheduler instead
// of busy-waiting. The default is 64 on multiprocessors and 1 on a
// uniprocessor. Lower values trade latency for CPU time on
// oversubscribed machines; n <= 0 resets to the default. Mostly a
// demonstration and testing knob (ffq-top uses it to exaggerate yield
// behavior).
func WithYieldThreshold(n int) Option {
	return func(c *config) {
		if n <= 0 {
			n = defaultYieldThreshold
		}
		c.yieldTh = n
	}
}
