package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewSPMCValidation(t *testing.T) {
	if _, err := NewSPMC[int](0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewSPMC[int](100); err == nil {
		t.Error("non-power-of-two capacity accepted")
	}
	q, err := NewSPMC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 64 {
		t.Errorf("Cap = %d, want 64", q.Cap())
	}
	if q.Layout() != LayoutCompact {
		t.Errorf("default layout = %v, want compact", q.Layout())
	}
	if q.Len() != 0 {
		t.Errorf("Len of empty queue = %d", q.Len())
	}
	if q.Closed() {
		t.Error("new queue reports closed")
	}
}

func TestSPMCSequentialFIFO(t *testing.T) {
	for _, layout := range Layouts {
		q, err := NewSPMC[int](16, WithLayout(layout))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			for i := 0; i < 16; i++ {
				q.Enqueue(round*100 + i)
			}
			if q.Len() != 16 {
				t.Fatalf("%v: Len=%d, want 16", layout, q.Len())
			}
			for i := 0; i < 16; i++ {
				v, ok := q.Dequeue()
				if !ok || v != round*100+i {
					t.Fatalf("%v: Dequeue = %d,%v, want %d,true", layout, v, ok, round*100+i)
				}
			}
		}
	}
}

func TestSPMCTryEnqueue(t *testing.T) {
	q, err := NewSPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !q.TryEnqueue(i) {
			t.Fatalf("TryEnqueue(%d) failed on non-full queue", i)
		}
	}
	if q.TryEnqueue(4) {
		t.Error("TryEnqueue succeeded on full queue")
	}
	if v, ok := q.Dequeue(); !ok || v != 0 {
		t.Fatalf("Dequeue = %d,%v", v, ok)
	}
	if !q.TryEnqueue(4) {
		t.Error("TryEnqueue failed after a slot was freed")
	}
}

func TestSPMCCloseDrains(t *testing.T) {
	q, err := NewSPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(1)
	q.Enqueue(2)
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = %d,%v, want 1,true", v, ok)
	}
	if v, ok := q.Dequeue(); !ok || v != 2 {
		t.Fatalf("Dequeue = %d,%v, want 2,true", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on closed+drained queue returned ok")
	}
	// Subsequent calls keep returning false.
	if _, ok := q.Dequeue(); ok {
		t.Fatal("second drained Dequeue returned ok")
	}
}

// A slow consumer holds a cell across a producer wrap-around; the
// producer must skip the rank, announce the gap, and consumers must
// hop over it (the core gap mechanism of Algorithm 1). The stuck
// consumer is simulated white-box by abandoning rank 0.
func TestSPMCGapSkip(t *testing.T) {
	q, err := NewSPMC[string](4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"A", "B", "C", "D"} {
		q.Enqueue(s)
	}
	// Simulate a consumer that acquired rank 0 but stalled before
	// resetting the cell: skip the head past it.
	q.head.Store(1)
	for _, want := range []string{"B", "C", "D"} {
		if v, ok := q.Dequeue(); !ok || v != want {
			t.Fatalf("Dequeue = %q,%v, want %q", v, ok, want)
		}
	}
	// Cell 0 still holds "A" (rank 0). The producer must skip rank 4.
	q.Enqueue("E") // lands at rank 5, cell 1
	c0 := &q.cells[q.ix.Phys(0)]
	if g := c0.gap.Load(); g != 4 {
		t.Fatalf("cell 0 gap = %d, want 4", g)
	}
	if r := c0.rank.Load(); r != 0 {
		t.Fatalf("cell 0 rank = %d, want 0 (still occupied)", r)
	}
	// A consumer drawing rank 4 must observe the gap and hop to 5.
	if v, ok := q.Dequeue(); !ok || v != "E" {
		t.Fatalf("Dequeue = %q,%v, want E", v, ok)
	}
	if h := q.head.Load(); h != 6 {
		t.Fatalf("head = %d, want 6 (rank 4 skipped)", h)
	}
	// The stalled consumer finally finishes: the cell is recycled and
	// the producer can use it again.
	c0.rank.Store(freeRank)
	q.Enqueue("F")
	q.Enqueue("G")
	if v, ok := q.Dequeue(); !ok || v != "F" {
		t.Fatalf("Dequeue = %q,%v, want F", v, ok)
	}
	if v, ok := q.Dequeue(); !ok || v != "G" {
		t.Fatalf("Dequeue = %q,%v, want G", v, ok)
	}
}

// The same cell can be skipped multiple times; gap must hold the most
// recent skipped rank.
func TestSPMCRepeatedGap(t *testing.T) {
	q, err := NewSPMC[int](2)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(10) // rank 0, cell 0
	q.Enqueue(11) // rank 1, cell 1
	q.head.Store(1)
	if v, ok := q.Dequeue(); !ok || v != 11 {
		t.Fatalf("got %d,%v", v, ok)
	}
	// Cell 0 stuck. Each pair of enqueues wraps past it once.
	q.Enqueue(12) // skips rank 2 (cell 0, gap=2), lands rank 3 cell 1
	c0 := &q.cells[q.ix.Phys(0)]
	if g := c0.gap.Load(); g != 2 {
		t.Fatalf("gap = %d, want 2", g)
	}
	if v, ok := q.Dequeue(); !ok || v != 12 { // consumes rank 2 gap then 3
		t.Fatalf("got %d,%v", v, ok)
	}
	q.Enqueue(13) // skips rank 4 (gap=4), lands rank 5 cell 1
	if g := c0.gap.Load(); g != 4 {
		t.Fatalf("gap = %d, want 4", g)
	}
	if v, ok := q.Dequeue(); !ok || v != 13 {
		t.Fatalf("got %d,%v", v, ok)
	}
}

func TestSPMCPointerDataCleared(t *testing.T) {
	q, err := NewSPMC[*int](4)
	if err != nil {
		t.Fatal(err)
	}
	x := 42
	q.Enqueue(&x)
	if v, ok := q.Dequeue(); !ok || *v != 42 {
		t.Fatal("round-trip failed")
	}
	// The consumed cell must not pin the pointer.
	for i := range q.cells {
		if q.cells[i].data != nil {
			t.Fatalf("cell %d still references dequeued data", i)
		}
	}
}

// concurrent exactly-once delivery: one producer, many consumers, every
// item delivered exactly once, and delivery order is FIFO per observer
// window (global order across consumers is not defined, but the
// producer's sequence must arrive without loss or duplication).
func TestSPMCConcurrentExactlyOnce(t *testing.T) {
	const (
		consumers = 8
		items     = 50000
	)
	for _, layout := range Layouts {
		q, err := NewSPMC[int](256, WithLayout(layout))
		if err != nil {
			t.Fatal(err)
		}
		var got = make([]atomic.Int32, items)
		var wg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				prev := -1
				for {
					v, ok := q.Dequeue()
					if !ok {
						return
					}
					if v <= prev {
						// Ranks are handed out in order, and a single
						// consumer's draws are monotonic.
						t.Errorf("%v: consumer saw %d after %d", layout, v, prev)
						return
					}
					prev = v
					got[v].Add(1)
				}
			}()
		}
		for i := 0; i < items; i++ {
			q.Enqueue(i)
		}
		q.Close()
		wg.Wait()
		for i := range got {
			if n := got[i].Load(); n != 1 {
				t.Fatalf("%v: item %d delivered %d times", layout, i, n)
			}
		}
	}
}

// Hammer the queue with a tiny capacity so wrap-arounds and gaps are
// frequent; run with -race to verify the publication protocol.
func TestSPMCTinyCapacityStress(t *testing.T) {
	q, err := NewSPMC[int](2)
	if err != nil {
		t.Fatal(err)
	}
	const items = 20000
	var sum atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					return
				}
				sum.Add(int64(v))
			}
		}()
	}
	for i := 1; i <= items; i++ {
		q.Enqueue(i)
	}
	q.Close()
	wg.Wait()
	want := int64(items) * (items + 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

// Gap statistics: zero in slack operation, positive once the producer
// wraps onto an unconsumed cell.
func TestSPMCGapCounter(t *testing.T) {
	q, err := NewSPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		q.Enqueue(round)
		if _, ok := q.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	}
	if g := q.Gaps(); g != 0 {
		t.Fatalf("Gaps = %d in slack operation", g)
	}
	// Force a skip on a fresh queue: fill it, abandon rank 0, drain
	// the rest, then wrap.
	q2, err := NewSPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		q2.Enqueue(i)
	}
	q2.head.Store(1)
	for i := 1; i < 8; i++ {
		q2.Dequeue()
	}
	q2.Enqueue(100) // must skip the stuck cell 0
	if g := q2.Gaps(); g != 1 {
		t.Fatalf("Gaps = %d after one forced skip", g)
	}
}
