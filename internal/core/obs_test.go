package core

import (
	"runtime"
	"sync"
	"testing"

	"ffq/internal/obs"
)

// TestInstrumentedSPSCCounts checks exact op counts on the
// single-threaded variant.
func TestInstrumentedSPSCCounts(t *testing.T) {
	q, err := NewSPSC[int](8, WithInstrumentation())
	if err != nil {
		t.Fatal(err)
	}
	if q.Recorder() == nil {
		t.Fatal("WithInstrumentation did not attach a recorder")
	}
	for i := 0; i < 5; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.TryDequeue(); !ok {
			t.Fatal("TryDequeue failed on non-empty queue")
		}
	}
	s := q.Stats()
	if s.Enqueues != 5 || s.Dequeues != 3 {
		t.Fatalf("stats = %+v, want enq=5 deq=3", s)
	}
	if got := s.Enqueues - s.Dequeues; got != int64(q.Len()) {
		t.Fatalf("Enqueues-Dequeues = %d, Len = %d", got, q.Len())
	}
}

// TestUninstrumentedStats checks the default path: nil recorder, zero
// Stats except the always-on gap counter.
func TestUninstrumentedStats(t *testing.T) {
	q, err := NewSPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Recorder() != nil {
		t.Fatal("default queue has a recorder attached")
	}
	q.Enqueue(1)
	s := q.Stats()
	if s.Enqueues != 0 || s.Dequeues != 0 {
		t.Fatalf("uninstrumented stats should not count ops: %+v", s)
	}
}

// TestSharedRecorder aggregates two queues into one Recorder.
func TestSharedRecorder(t *testing.T) {
	rec := obs.NewRecorder()
	a, err := NewSPSC[int](4, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSPSC[int](4, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	a.Enqueue(1)
	b.Enqueue(2)
	if got := rec.Snapshot().Enqueues; got != 2 {
		t.Fatalf("shared recorder enqueues = %d, want 2", got)
	}
}

// TestInstrumentedGapCounters forces the SPMC producer to skip ranks
// (full queue, stalled consumer) and checks that both gap counters and
// the wait histogram fire.
func TestInstrumentedGapCounters(t *testing.T) {
	q, err := NewSPMC[int](2, WithInstrumentation())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue, then TryEnqueue must fail without burning ranks.
	q.Enqueue(0)
	q.Enqueue(1)
	if q.TryEnqueue(2) {
		t.Fatal("TryEnqueue succeeded on a full queue")
	}
	// A blocking Enqueue on the full queue skips ranks until a consumer
	// frees a cell.
	done := make(chan struct{})
	go func() {
		q.Enqueue(2)
		close(done)
	}()
	// Let the producer start skipping, then free a slot.
	for q.Stats().GapsCreated == 0 {
		runtime.Gosched()
	}
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("Dequeue failed")
	}
	<-done
	s := q.Stats()
	if s.GapsCreated == 0 || s.FullSpins == 0 {
		t.Fatalf("full-queue enqueue recorded no gaps/spins: %+v", s)
	}
	if s.WaitCount == 0 {
		t.Fatalf("blocked enqueue recorded no wait: %+v", s)
	}
	if s.GapsCreated != q.Gaps() {
		t.Fatalf("recorder gaps %d != queue gaps %d", s.GapsCreated, q.Gaps())
	}
	// Drain: consumers must skip the ranks the producer burnt.
	q.Close()
	seen := 0
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("drained %d items, want 2", seen)
	}
	if got := q.Stats().GapsSkipped; got == 0 {
		t.Fatalf("consumers skipped no gaps (created %d)", q.Stats().GapsCreated)
	}
}

// TestMPMCGapCounters drives FFQ^m through its gap machinery with a
// deliberately tiny queue and checks created/skipped counters.
func TestMPMCGapCounters(t *testing.T) {
	q, err := NewMPMC[int](2, WithInstrumentation())
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(0)
	q.Enqueue(1)
	done := make(chan struct{})
	go func() {
		q.Enqueue(2)
		close(done)
	}()
	for q.Stats().GapsCreated == 0 {
		runtime.Gosched()
	}
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("Dequeue failed")
	}
	<-done
	q.Close()
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
	}
	s := q.Stats()
	if s.GapsCreated == 0 || s.GapsSkipped == 0 {
		t.Fatalf("MPMC gap counters silent: %+v", s)
	}
	if s.GapsCreated != q.Gaps() {
		t.Fatalf("recorder gaps %d != queue gaps %d", s.GapsCreated, q.Gaps())
	}
}

// quiescentLenProperty drains concurrency out of a queue and asserts
// the satellite property: Enqueues - Dequeues == Len at quiescence.
func quiescentLenProperty(t *testing.T, stats func() obs.Stats, length func() int) {
	t.Helper()
	s := stats()
	if got, want := s.Enqueues-s.Dequeues, int64(length()); got != want {
		t.Fatalf("Enqueues-Dequeues = %d, Len = %d (stats %+v)", got, want, s)
	}
}

// TestPropertyEnqMinusDeqEqualsLen runs an instrumented
// produce/consume burst on every variant under concurrency, pauses at
// quiescence, and checks the counter/Len identity.
func TestPropertyEnqMinusDeqEqualsLen(t *testing.T) {
	const items = 2000
	const consumers = 4

	t.Run("spsc", func(t *testing.T) {
		q, err := NewSPSC[int](1<<8, WithInstrumentation())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < items; i++ {
				if _, ok := q.Dequeue(); !ok {
					return
				}
			}
		}()
		for i := 0; i < items; i++ {
			q.Enqueue(i)
		}
		wg.Wait()
		quiescentLenProperty(t, q.Stats, q.Len)
		// Leave a residue and re-check.
		q.Enqueue(1)
		q.Enqueue(2)
		quiescentLenProperty(t, q.Stats, q.Len)
	})

	t.Run("spmc", func(t *testing.T) {
		q, err := NewSPMC[int](1<<8, WithInstrumentation())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, ok := q.Dequeue(); !ok {
						return
					}
				}
			}()
		}
		for i := 0; i < items; i++ {
			q.Enqueue(i)
		}
		q.Close()
		wg.Wait()
		quiescentLenProperty(t, q.Stats, q.Len)
	})

	t.Run("mpmc", func(t *testing.T) {
		q, err := NewMPMC[int](1<<8, WithInstrumentation())
		if err != nil {
			t.Fatal(err)
		}
		var prod, cons sync.WaitGroup
		for p := 0; p < 2; p++ {
			prod.Add(1)
			go func() {
				defer prod.Done()
				for i := 0; i < items; i++ {
					q.Enqueue(i)
				}
			}()
		}
		for c := 0; c < consumers; c++ {
			cons.Add(1)
			go func() {
				defer cons.Done()
				for {
					if _, ok := q.Dequeue(); !ok {
						return
					}
				}
			}()
		}
		prod.Wait()
		q.Close()
		cons.Wait()
		quiescentLenProperty(t, q.Stats, q.Len)
		s := q.Stats()
		if s.Enqueues != 2*items || s.Dequeues != 2*items {
			t.Fatalf("op counts wrong at quiescence: %+v", s)
		}
	})
}

// TestYieldThresholdOption checks the per-queue override plumbing and
// that a threshold of 1 produces scheduler yields immediately.
func TestYieldThresholdOption(t *testing.T) {
	q, err := NewSPMC[int](4, WithInstrumentation(), WithYieldThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if q.yieldTh != 1 {
		t.Fatalf("yieldTh = %d, want 1", q.yieldTh)
	}
	// Default restored for n <= 0.
	qd, err := NewSPMC[int](4, WithYieldThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	if qd.yieldTh != defaultYieldThreshold {
		t.Fatalf("yieldTh = %d, want default %d", qd.yieldTh, defaultYieldThreshold)
	}
	// With threshold 1, the very first backoff of a blocked consumer
	// must be a yield.
	done := make(chan struct{})
	go func() {
		q.Dequeue()
		close(done)
	}()
	for q.Stats().EmptySpins == 0 {
		runtime.Gosched()
	}
	q.Enqueue(1)
	<-done
	s := q.Stats()
	if s.ConsumerYields == 0 {
		t.Fatalf("threshold-1 consumer never yielded: %+v", s)
	}
	if s.ConsumerYields != s.EmptySpins {
		t.Fatalf("threshold 1 must yield on every spin: %+v", s)
	}
}

// TestBackoffThreshold pins the backoff yield decision itself.
func TestBackoffThreshold(t *testing.T) {
	if backoff(1, 2) {
		t.Fatal("backoff yielded below threshold")
	}
	if !backoff(2, 2) {
		t.Fatal("backoff busy-waited at threshold")
	}
}
