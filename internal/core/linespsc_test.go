package core

import (
	"testing"
	"unsafe"
)

// TestLineCellGeometry pins the layout the whole design hangs on: with
// an 8-byte payload a line cell is exactly one cache line.
func TestLineCellGeometry(t *testing.T) {
	if s := unsafe.Sizeof(lineCell[uint64]{}); s != CacheLineSize {
		t.Fatalf("lineCell[uint64] is %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(lineCell[int]{}); s != CacheLineSize {
		t.Fatalf("lineCell[int] is %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(LineSPSC[uint64]{}); s%CacheLineSize != 0 {
		t.Fatalf("LineSPSC[uint64] is %d bytes, not a cache-line multiple", s)
	}
}

func TestNewLineSPSCValidation(t *testing.T) {
	if _, err := NewLineSPSC[int](0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewLineSPSC[int](1<<30 + 1); err == nil {
		t.Fatal("over-limit capacity accepted")
	}
	q, err := NewLineSPSC[int](100)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() < 100 {
		t.Fatalf("Cap() = %d, below requested capacity 100", q.Cap())
	}
	if q.Cap()%LineVals != 0 {
		t.Fatalf("Cap() = %d, not a whole number of lines", q.Cap())
	}
}

func TestLineSPSCSequentialFIFO(t *testing.T) {
	q, err := NewLineSPSC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave singles and partial/overfull batches so lines are
	// filled across call boundaries.
	next := 0
	emit := func(n int) {
		if n == 1 {
			q.Enqueue(next)
			next++
			return
		}
		vs := make([]int, n)
		for i := range vs {
			vs[i] = next
			next++
		}
		q.EnqueueBatch(vs)
	}
	want := 0
	take := func(n int) {
		if n == 1 {
			v, ok := q.TryDequeue()
			if !ok {
				t.Fatalf("TryDequeue empty at %d", want)
			}
			if v != want {
				t.Fatalf("got %d, want %d", v, want)
			}
			want++
			return
		}
		dst := make([]int, n)
		got, ok := q.DequeueBatch(dst)
		if !ok {
			t.Fatalf("DequeueBatch closed at %d", want)
		}
		for i := 0; i < got; i++ {
			if dst[i] != want {
				t.Fatalf("got %d, want %d", dst[i], want)
			}
			want++
		}
	}
	emit(1)
	emit(3)  // line 0 now holds 4
	emit(10) // completes line 0, fills line 1, starts line 2
	take(2)
	take(1)
	emit(1)
	take(12) // drain everything published so far, across lines
	if want != next {
		t.Fatalf("consumed %d of %d published", want, next)
	}
	if n := q.Len(); n != 0 {
		t.Fatalf("Len() = %d on drained queue", n)
	}
}

func TestLineSPSCTryEnqueueFull(t *testing.T) {
	q, err := NewLineSPSC[int](1) // rounds up to 2 lines = 14 values
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for q.TryEnqueue(n) {
		n++
		if n > q.Cap() {
			t.Fatalf("TryEnqueue accepted %d values into a %d-cap ring", n, q.Cap())
		}
	}
	if n != q.Cap() {
		t.Fatalf("TryEnqueue filled %d values, want %d", n, q.Cap())
	}
	// Draining one full line frees exactly one line's worth of space.
	for i := 0; i < LineVals; i++ {
		v, ok := q.TryDequeue()
		if !ok || v != i {
			t.Fatalf("TryDequeue = %d,%v, want %d,true", v, ok, i)
		}
	}
	for i := 0; i < LineVals; i++ {
		if !q.TryEnqueue(n + i) {
			t.Fatalf("TryEnqueue refused with a freed line (slot %d)", i)
		}
	}
	if q.TryEnqueue(-1) {
		t.Fatal("TryEnqueue accepted into a full ring")
	}
}

// TestLineSPSCPartialLineVisible pins the eager-publish contract: a
// single Enqueue is dequeueable immediately, with no batch flush.
func TestLineSPSCPartialLineVisible(t *testing.T) {
	q, err := NewLineSPSC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(42)
	if v, ok := q.TryDequeue(); !ok || v != 42 {
		t.Fatalf("TryDequeue = %d,%v after a single Enqueue", v, ok)
	}
}

// TestLineSPSCCloseFlushesPartialLine is the close-semantics half of
// the conformance satellite: values sitting in a partially filled line
// at Close are delivered before ok=false.
func TestLineSPSCCloseFlushesPartialLine(t *testing.T) {
	q, err := NewLineSPSC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	// 10 values: one full line plus a 3-value partial line.
	vs := make([]int, 10)
	for i := range vs {
		vs[i] = i
	}
	q.EnqueueBatch(vs)
	q.Close()
	dst := make([]int, 32)
	got := 0
	for {
		n, ok := q.DequeueBatch(dst[got:])
		got += n
		if !ok {
			break
		}
	}
	if got != len(vs) {
		t.Fatalf("drained %d values after Close, want %d", got, len(vs))
	}
	for i := 0; i < got; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue returned a value from a closed drained queue")
	}
	if n, ok := q.DequeueBatch(dst); n != 0 || ok {
		t.Fatalf("DequeueBatch = %d,%v on a closed drained queue", n, ok)
	}
}

func TestLineSPSCZeroSizedBatch(t *testing.T) {
	q, err := NewLineSPSC[int](16)
	if err != nil {
		t.Fatal(err)
	}
	q.EnqueueBatch(nil)
	if n, ok := q.DequeueBatch(nil); n != 0 || !ok {
		t.Fatalf("DequeueBatch(nil) = %d,%v, want 0,true", n, ok)
	}
	if n := q.TryDequeueBatch(nil); n != 0 {
		t.Fatalf("TryDequeueBatch(nil) = %d", n)
	}
}

// TestLineSPSCPointerPayload checks that consumed slots drop their
// references (the consumer zeroes each taken value) and that non-8-byte
// payloads round-trip.
func TestLineSPSCPointerPayload(t *testing.T) {
	q, err := NewLineSPSC[*int](16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v := new(int)
		*v = i
		q.Enqueue(v)
		got, ok := q.Dequeue()
		if !ok || *got != i {
			t.Fatalf("round-trip %d failed", i)
		}
	}
	// After draining, no cell may still hold a pointer.
	for i := range q.cells {
		for j, p := range q.cells[i].vals {
			if p != nil {
				t.Fatalf("cell %d slot %d retains a consumed pointer", i, j)
			}
		}
	}
}

// TestLineSPSCStress is the 1M-item -race stress the ISSUE asks for:
// a producer mixing singles and ragged batches against a consumer
// mixing all three dequeue forms, ending with Close flushing a partial
// line.
func TestLineSPSCStress(t *testing.T) {
	const total = 1_000_000
	q, err := NewLineSPSC[int](512)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := 0
		buf := make([]int, 23) // deliberately not a multiple of LineVals
		for next < total {
			switch next % 5 {
			case 0:
				q.Enqueue(next)
				next++
			case 1, 2:
				n := len(buf)
				if total-next < n {
					n = total - next
				}
				for i := 0; i < n; i++ {
					buf[i] = next + i
				}
				q.EnqueueBatch(buf[:n])
				next += n
			default:
				if q.TryEnqueue(next) {
					next++
				}
			}
		}
		// One trailing value lands in a fresh partial line right
		// before Close, exercising the flush-on-close path.
		q.Enqueue(total)
		q.Close()
	}()
	want := 0
	dst := make([]int, 31)
	for {
		var got int
		var ok bool
		switch want % 3 {
		case 0:
			var v int
			v, ok = q.Dequeue()
			if ok {
				dst[0] = v
				got = 1
			}
		case 1:
			got, ok = q.DequeueBatch(dst)
		default:
			got = q.TryDequeueBatch(dst)
			ok = got > 0 || !q.Closed()
			if got == 0 && q.Closed() {
				// Closed and possibly drained: one blocking call
				// settles it.
				got, ok = q.DequeueBatch(dst)
			}
		}
		if !ok && got == 0 {
			break
		}
		for i := 0; i < got; i++ {
			if dst[i] != want {
				t.Fatalf("got %d, want %d", dst[i], want)
			}
			want++
		}
	}
	if want != total+1 {
		t.Fatalf("consumed %d values, want %d", want, total+1)
	}
	<-done
}

// TestLineSPSCInstrumented checks the recorder wiring: op counts and
// batch observations land in Stats.
func TestLineSPSCInstrumented(t *testing.T) {
	q, err := NewLineSPSC[int](64, WithInstrumentation())
	if err != nil {
		t.Fatal(err)
	}
	vs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	q.EnqueueBatch(vs)
	q.Enqueue(10)
	dst := make([]int, 16)
	n, ok := q.DequeueBatch(dst)
	if !ok || n != 10 {
		t.Fatalf("DequeueBatch = %d,%v", n, ok)
	}
	st := q.Stats()
	if st.Enqueues != 10 || st.Dequeues != 10 {
		t.Fatalf("Stats counts = %d enq / %d deq, want 10/10", st.Enqueues, st.Dequeues)
	}
}
