package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSPSCValidation(t *testing.T) {
	if _, err := NewSPSC[int](3); err == nil {
		t.Error("non-power-of-two capacity accepted")
	}
	q, err := NewSPSC[int](8, WithLayout(LayoutPadded))
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 || q.Layout() != LayoutPadded {
		t.Errorf("Cap=%d Layout=%v", q.Cap(), q.Layout())
	}
}

func TestSPSCSequentialFIFO(t *testing.T) {
	for _, layout := range Layouts {
		q, err := NewSPSC[uint64](32, WithLayout(layout))
		if err != nil {
			t.Fatal(err)
		}
		var next uint64 // next value expected out
		for i := uint64(0); i < 1000; i++ {
			q.Enqueue(i)
			if i%3 == 0 {
				continue // let the queue fill a little
			}
			for q.Len() > 0 {
				v, ok := q.TryDequeue()
				if !ok {
					t.Fatalf("%v: TryDequeue failed with Len=%d", layout, q.Len())
				}
				if v != next {
					t.Fatalf("%v: got %d, want %d", layout, v, next)
				}
				next++
			}
		}
	}
}

func TestSPSCTryDequeueEmpty(t *testing.T) {
	q, err := NewSPSC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.TryDequeue(); ok {
		t.Error("TryDequeue on empty queue returned ok")
	}
	q.Enqueue(7)
	if v, ok := q.TryDequeue(); !ok || v != 7 {
		t.Errorf("TryDequeue = %d,%v", v, ok)
	}
	if _, ok := q.TryDequeue(); ok {
		t.Error("TryDequeue after drain returned ok")
	}
}

func TestSPSCTryEnqueueFull(t *testing.T) {
	q, err := NewSPSC[int](2)
	if err != nil {
		t.Fatal(err)
	}
	if !q.TryEnqueue(1) || !q.TryEnqueue(2) {
		t.Fatal("TryEnqueue failed on empty queue")
	}
	if q.TryEnqueue(3) {
		t.Fatal("TryEnqueue succeeded on full queue")
	}
}

func TestSPSCCloseDrains(t *testing.T) {
	q, err := NewSPSC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(5)
	q.Close()
	if v, ok := q.Dequeue(); !ok || v != 5 {
		t.Fatalf("Dequeue = %d,%v", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue after close+drain returned ok")
	}
}

// Model-based property test: an arbitrary interleaving of enqueues and
// try-dequeues must match a slice-backed reference queue.
func TestSPSCModelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		q, err := NewSPSC[uint64](16)
		if err != nil {
			return false
		}
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%3 != 0 { // bias toward enqueue to exercise fullness
				if q.TryEnqueue(next) {
					model = append(model, next)
				} else if len(model) < q.Cap() {
					return false // queue claimed full while model is not
				}
				next++
			} else {
				v, ok := q.TryDequeue()
				if ok {
					if len(model) == 0 || model[0] != v {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false // queue claimed empty while model is not
				}
			}
		}
		// Drain and compare the remainder.
		for _, want := range model {
			v, ok := q.TryDequeue()
			if !ok || v != want {
				return false
			}
		}
		_, ok := q.TryDequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSPSCConcurrentTransfer(t *testing.T) {
	for _, layout := range Layouts {
		for _, capacity := range []int{2, 8, 1024} {
			q, err := NewSPSC[uint64](capacity, WithLayout(layout))
			if err != nil {
				t.Fatal(err)
			}
			const items = 100000
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				var expect uint64
				for {
					v, ok := q.Dequeue()
					if !ok {
						break
					}
					if v != expect {
						t.Errorf("layout=%v cap=%d: got %d, want %d", layout, capacity, v, expect)
						return
					}
					expect++
				}
				if expect != items {
					t.Errorf("layout=%v cap=%d: received %d items, want %d", layout, capacity, expect, items)
				}
			}()
			for i := uint64(0); i < items; i++ {
				q.Enqueue(i)
			}
			q.Close()
			wg.Wait()
		}
	}
}

// The SPSC gap path: a stalled dequeue (simulated by abandoning rank 0
// with a manual head bump) must not wedge the queue.
func TestSPSCGapSkip(t *testing.T) {
	q, err := NewSPSC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		q.Enqueue(i)
	}
	q.head.Store(1) // abandon rank 0; cell 0 stays occupied
	for want := 1; want < 4; want++ {
		if v, ok := q.TryDequeue(); !ok || v != want {
			t.Fatalf("got %d,%v want %d", v, ok, want)
		}
	}
	q.Enqueue(100) // must skip rank 4 (cell 0 occupied) and land at rank 5
	if v, ok := q.TryDequeue(); !ok || v != 100 {
		t.Fatalf("got %d,%v want 100", v, ok)
	}
}

func TestSPSCGapCounter(t *testing.T) {
	q, err := NewSPSC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(0)
	q.TryDequeue()
	if g := q.Gaps(); g != 0 {
		t.Fatalf("Gaps = %d in slack operation", g)
	}
	q2, err := NewSPSC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		q2.Enqueue(i)
	}
	q2.head.Store(1)
	for i := 1; i < 4; i++ {
		q2.TryDequeue()
	}
	q2.Enqueue(100)
	if g := q2.Gaps(); g != 1 {
		t.Fatalf("Gaps = %d after one forced skip", g)
	}
}
