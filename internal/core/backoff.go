package core

import "runtime"

// defaultYieldThreshold is the number of failed polls after which a
// spinning thread starts yielding its processor to the Go scheduler.
// Below the threshold the thread busy-waits, which matches the paper's
// "back off and wait for a few nanoseconds" (Algorithm 1, line 32);
// above it the thread is likely waiting on a descheduled peer, and
// yielding lets that peer run. On a uniprocessor spinning can never
// help — the peer needs this CPU — so the threshold drops to 1, the
// same reasoning the Go runtime applies to mutex spinning.
//
// WithYieldThreshold overrides the value per queue.
var defaultYieldThreshold = func() int {
	if runtime.NumCPU() > 1 {
		return 64
	}
	return 1
}()

// DefaultYieldThreshold returns the yield threshold queues use when
// WithYieldThreshold was not given (64 on multiprocessors, 1 on a
// uniprocessor). Exported for sibling queue packages (internal/segq)
// that share the spin/yield policy.
func DefaultYieldThreshold() int { return defaultYieldThreshold }

// Backoff is the exported face of backoff for sibling queue packages
// (internal/segq) so that every FFQ variant shares one spin/yield
// policy. See backoff.
func Backoff(spins, threshold int) bool { return backoff(spins, threshold) }

// backoff delays a spinning thread and reports whether it yielded the
// processor (rather than busy-waiting), so instrumented callers can
// count scheduler round-trips. spins counts consecutive failed polls
// of the same cell; threshold is the queue's yield threshold.
func backoff(spins, threshold int) bool {
	if spins < threshold {
		cpuRelax()
		return false
	}
	runtime.Gosched()
	return true
}

// cpuRelax burns a few cycles without touching shared memory. Go does
// not expose a PAUSE intrinsic; the gc compiler does not eliminate
// counted empty loops, so this stands in for it.
//
//go:noinline
func cpuRelax() {
	for i := 0; i < 32; i++ {
	}
}
