package core

import (
	"sync/atomic"
	"time"
	"unsafe"

	"ffq/internal/obs"
)

// SPSC is the single-producer/single-consumer FFQ variant discussed in
// Section V-G of the paper: because only one consumer exists, the head
// counter is owned by that consumer and dequeue needs no atomic
// fetch-and-increment. This is the variant whose single-threaded mark
// appears as "SPSC" in the paper's Figure 8 and the variant used for
// the response queues of the syscall framework (Section V-A).
//
// Exactly one goroutine may enqueue and exactly one (possibly
// different) goroutine may dequeue.
//
//ffq:padded
type SPSC[T any] struct {
	ix      Indexer
	cells   []cell[T]
	layout  Layout
	yieldTh int
	// rec is nil unless WithInstrumentation/WithRecorder was given;
	// every path checks it before recording, so the disabled queue
	// pays one predicted branch per operation.
	rec    *obs.Recorder
	_      [CacheLineSize]byte
	head   atomic.Int64 // written by the consumer only
	_      [CacheLineSize]byte
	tail   atomic.Int64 // written by the producer only
	_      [CacheLineSize]byte
	closed atomic.Bool
	_      [CacheLineSize - 4]byte
	// gaps counts skipped ranks; see SPMC.Gaps.
	gaps atomic.Int64
	// 32 extra bytes round the struct to a whole number of lines (the
	// header fields above the first pad are not line-sized).
	_ [CacheLineSize - 8 + 32]byte
}

// NewSPSC returns an SPSC queue with the given power-of-two capacity.
func NewSPSC[T any](capacity int, opts ...Option) (*SPSC[T], error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.rec = cfg.recorder()
	ix, err := NewIndexer(capacity, cfg.layout, unsafe.Sizeof(cell[T]{}))
	if err != nil {
		return nil, err
	}
	q := &SPSC[T]{ix: ix, layout: cfg.layout, yieldTh: cfg.yieldTh, rec: cfg.rec, cells: make([]cell[T], ix.Slots())}
	for i := range q.cells {
		q.cells[i].rank.Store(freeRank)
		q.cells[i].gap.Store(noGap)
	}
	return q, nil
}

// Cap returns the logical capacity of the queue.
func (q *SPSC[T]) Cap() int { return q.ix.Capacity() }

// Layout returns the memory layout the queue was built with.
func (q *SPSC[T]) Layout() Layout { return q.layout }

// Len returns an instantaneous approximation of the number of enqueued
// items.
func (q *SPSC[T]) Len() int {
	n := q.tail.Load() - q.head.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Enqueue inserts v at the tail, wait-free while a slot is free.
// Producer goroutine only.
//
//ffq:hotpath
func (q *SPSC[T]) Enqueue(v T) {
	t := q.tail.Load()
	skips := 0
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for {
		c := &q.cells[q.ix.Phys(t)]
		if c.rank.Load() >= 0 {
			c.gap.Store(t)
			t++
			q.tail.Store(t)
			q.gaps.Add(1)
			// Consecutive skips mean the queue is full; back off so
			// the consumer can drain instead of chasing burnt ranks.
			skips++
			if q.rec != nil {
				if skips == 1 {
					waitStart = time.Now()
				}
				q.rec.GapCreated()
				q.rec.FullSpin()
				stalled = q.rec.StallCheck(obs.RoleProducer, t, waitStart, skips, stalled)
				if backoff(skips<<4, q.yieldTh) {
					q.rec.ProducerYield()
				}
			} else {
				backoff(skips<<4, q.yieldTh)
			}
			continue
		}
		c.data = v
		c.rank.Store(t)
		q.tail.Store(t + 1)
		if q.rec != nil {
			q.rec.Enqueue()
			if skips > 0 {
				q.rec.EndWait(obs.RoleProducer, t, time.Since(waitStart), stalled)
			}
			q.rec.EnqueueDone(opStart)
		}
		return
	}
}

// TryEnqueue inserts v if the tail cell is free and reports whether it
// did. Producer goroutine only.
//
//ffq:hotpath
func (q *SPSC[T]) TryEnqueue(v T) bool {
	t := q.tail.Load()
	c := &q.cells[q.ix.Phys(t)]
	if c.rank.Load() >= 0 {
		return false
	}
	c.data = v
	c.rank.Store(t)
	q.tail.Store(t + 1)
	if q.rec != nil {
		q.rec.Enqueue()
	}
	return true
}

// TryDequeue removes the head item if one is ready. Unlike the SPMC
// variant this is a true non-blocking poll: the head counter is private
// to the consumer, so an empty queue costs nothing and reserves no
// rank. Consumer goroutine only.
//
//ffq:hotpath
func (q *SPSC[T]) TryDequeue() (v T, ok bool) {
	h := q.head.Load()
	//ffq:ignore spin-backoff every iteration either consumes, advances the private head past a gap, or returns empty
	for {
		c := &q.cells[q.ix.Phys(h)]
		if c.rank.Load() == h {
			v = c.data
			var zero T
			c.data = zero
			c.rank.Store(freeRank)
			q.head.Store(h + 1)
			if q.rec != nil {
				q.rec.Dequeue()
			}
			return v, true
		}
		if c.gap.Load() >= h && c.rank.Load() != h {
			// Rank h was skipped by the producer; advance past it.
			h++
			q.head.Store(h)
			if q.rec != nil {
				q.rec.GapSkipped()
			}
			continue
		}
		var zero T
		return zero, false
	}
}

// Dequeue removes and returns the head item, blocking while the queue
// is empty. It returns ok=false only once the queue is closed and
// drained. Consumer goroutine only.
//
//ffq:hotpath
func (q *SPSC[T]) Dequeue() (v T, ok bool) {
	spins := 0
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for {
		if v, ok = q.TryDequeue(); ok {
			if q.rec != nil {
				if spins > 0 {
					q.rec.EndWait(obs.RoleConsumer, q.head.Load()-1, time.Since(waitStart), stalled)
				}
				q.rec.DequeueDone(opStart)
			}
			return v, true
		}
		if q.closed.Load() && q.head.Load() >= q.tail.Load() {
			var zero T
			return zero, false
		}
		spins++
		if q.rec != nil {
			if spins == 1 {
				waitStart = time.Now()
			}
			q.rec.EmptySpin()
			stalled = q.rec.StallCheck(obs.RoleConsumer, q.head.Load(), waitStart, spins, stalled)
			if backoff(spins, q.yieldTh) {
				q.rec.ConsumerYield()
			}
		} else {
			backoff(spins, q.yieldTh)
		}
	}
}

// Gaps returns the number of ranks the producer has skipped; see
// SPMC.Gaps.
func (q *SPSC[T]) Gaps() int64 { return q.gaps.Load() }

// Recorder returns the queue's attached metrics recorder, or nil when
// the queue was built without instrumentation.
func (q *SPSC[T]) Recorder() *obs.Recorder { return q.rec }

// Stats snapshots the queue's instrumentation counters. Without
// instrumentation only the always-on gap counter is populated.
func (q *SPSC[T]) Stats() obs.Stats {
	s := q.rec.Snapshot()
	if q.rec == nil {
		s.GapsCreated = q.gaps.Load()
	}
	return s
}

// Close marks the queue closed; see SPMC.Close.
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }
