package core

import (
	"sync/atomic"
	"unsafe"
)

// SPSC is the single-producer/single-consumer FFQ variant discussed in
// Section V-G of the paper: because only one consumer exists, the head
// counter is owned by that consumer and dequeue needs no atomic
// fetch-and-increment. This is the variant whose single-threaded mark
// appears as "SPSC" in the paper's Figure 8 and the variant used for
// the response queues of the syscall framework (Section V-A).
//
// Exactly one goroutine may enqueue and exactly one (possibly
// different) goroutine may dequeue.
type SPSC[T any] struct {
	ix     indexer
	cells  []cell[T]
	layout Layout
	_      [CacheLineSize]byte
	head   atomic.Int64 // written by the consumer only
	_      [CacheLineSize]byte
	tail   atomic.Int64 // written by the producer only
	_      [CacheLineSize]byte
	closed atomic.Bool
	// gaps counts skipped ranks; see SPMC.Gaps.
	gaps atomic.Int64
}

// NewSPSC returns an SPSC queue with the given power-of-two capacity.
func NewSPSC[T any](capacity int, opts ...Option) (*SPSC[T], error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	ix, err := newIndexer(capacity, cfg.layout, unsafe.Sizeof(cell[T]{}))
	if err != nil {
		return nil, err
	}
	q := &SPSC[T]{ix: ix, layout: cfg.layout, cells: make([]cell[T], ix.slots())}
	for i := range q.cells {
		q.cells[i].rank.Store(freeRank)
		q.cells[i].gap.Store(noGap)
	}
	return q, nil
}

// Cap returns the logical capacity of the queue.
func (q *SPSC[T]) Cap() int { return q.ix.capacity() }

// Layout returns the memory layout the queue was built with.
func (q *SPSC[T]) Layout() Layout { return q.layout }

// Len returns an instantaneous approximation of the number of enqueued
// items.
func (q *SPSC[T]) Len() int {
	n := q.tail.Load() - q.head.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Enqueue inserts v at the tail, wait-free while a slot is free.
// Producer goroutine only.
func (q *SPSC[T]) Enqueue(v T) {
	t := q.tail.Load()
	skips := 0
	for {
		c := &q.cells[q.ix.phys(t)]
		if c.rank.Load() >= 0 {
			c.gap.Store(t)
			t++
			q.tail.Store(t)
			q.gaps.Add(1)
			// Consecutive skips mean the queue is full; back off so
			// the consumer can drain instead of chasing burnt ranks.
			skips++
			backoff(skips << 4)
			continue
		}
		c.data = v
		c.rank.Store(t)
		q.tail.Store(t + 1)
		return
	}
}

// TryEnqueue inserts v if the tail cell is free and reports whether it
// did. Producer goroutine only.
func (q *SPSC[T]) TryEnqueue(v T) bool {
	t := q.tail.Load()
	c := &q.cells[q.ix.phys(t)]
	if c.rank.Load() >= 0 {
		return false
	}
	c.data = v
	c.rank.Store(t)
	q.tail.Store(t + 1)
	return true
}

// TryDequeue removes the head item if one is ready. Unlike the SPMC
// variant this is a true non-blocking poll: the head counter is private
// to the consumer, so an empty queue costs nothing and reserves no
// rank. Consumer goroutine only.
func (q *SPSC[T]) TryDequeue() (v T, ok bool) {
	h := q.head.Load()
	for {
		c := &q.cells[q.ix.phys(h)]
		if c.rank.Load() == h {
			v = c.data
			var zero T
			c.data = zero
			c.rank.Store(freeRank)
			q.head.Store(h + 1)
			return v, true
		}
		if c.gap.Load() >= h && c.rank.Load() != h {
			// Rank h was skipped by the producer; advance past it.
			h++
			q.head.Store(h)
			continue
		}
		var zero T
		return zero, false
	}
}

// Dequeue removes and returns the head item, blocking while the queue
// is empty. It returns ok=false only once the queue is closed and
// drained. Consumer goroutine only.
func (q *SPSC[T]) Dequeue() (v T, ok bool) {
	spins := 0
	for {
		if v, ok = q.TryDequeue(); ok {
			return v, true
		}
		if q.closed.Load() && q.head.Load() >= q.tail.Load() {
			var zero T
			return zero, false
		}
		spins++
		backoff(spins)
	}
}

// Gaps returns the number of ranks the producer has skipped; see
// SPMC.Gaps.
func (q *SPSC[T]) Gaps() int64 { return q.gaps.Load() }

// Close marks the queue closed; see SPMC.Close.
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }
