package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"ffq/internal/obs"
)

// LineVals is the number of values carried per line cell. With an
// 8-byte payload a cell is exactly one 64-byte cache line: seven
// values plus the 8-byte sequence word, the layout of smelt-consensus
// ff_queue.h transplanted onto the FFQ rank protocol.
const LineVals = 7

const (
	// lineSeqShift splits the sequence word: the high bits carry the
	// line rank, the low nibble the publication state.
	lineSeqShift = 4
	// lineStateMask extracts the publication state: 1..LineVals values
	// published, or lineFree.
	lineStateMask = (1 << lineSeqShift) - 1
	// lineFree marks a cell writable for the rank in the high bits. It
	// is outside 1..LineVals, so a free cell can never be mistaken for
	// a published one of the same rank.
	lineFree = lineStateMask
	// lineSlipSpins bounds the temporal-slipping stand-off in
	// DequeueBatch (see the comment there).
	lineSlipSpins = 64
)

// lineSeq packs a line rank and a publication state into one sequence
// word.
//
//ffq:hotpath
func lineSeq(rank, state uint64) uint64 { return rank<<lineSeqShift | state }

// lineCell is one multi-value ring cell. Cross-thread synchronization
// happens only through seq: the producer's release store of
// (rank<<4)|count publishes vals[0:count], the consumer's release
// store of ((rank+lines)<<4)|lineFree returns the drained line.
//
// The struct is deliberately not //ffq:padded: the padding checker
// cannot size [LineVals]T for a type parameter. The concrete shape is
// lint-enforced through the padding corpus (packedline cases), and
// TestLineCellGeometry pins the 64-byte instantiation.
type lineCell[T any] struct {
	seq  atomic.Uint64
	vals [LineVals]T
}

// LineSPSC is a bounded single-producer/single-consumer queue whose
// ring cells are whole cache lines holding LineVals values plus one
// sequence word (SNIPPETS.md snippet 2, smelt-consensus ff_queue.h).
// Where the scalar SPSC pays one flag-word store per value, this
// variant pays one release store per publish call — up to LineVals
// values move per synchronization point when batched — and the
// consumer hands a fully drained line back with a single store.
//
// Single-value Enqueue still publishes eagerly: each call release-
// stores the line's incremented fill count, so a value is visible the
// moment Enqueue returns and a partial line can never wedge the
// consumer. Batch calls amortize that store over the whole line.
//
// Exactly one goroutine may enqueue and exactly one (possibly
// different) goroutine may dequeue.
//
//ffq:padded
type LineSPSC[T any] struct {
	cells   []lineCell[T]
	mask    uint64
	lines   uint64
	yieldTh int
	// rec is nil unless WithInstrumentation/WithRecorder was given;
	// every path checks it before recording.
	rec *obs.Recorder
	_   [CacheLineSize - 56]byte

	// Producer-private words. enq is published by the producer once
	// per call (not per value) so Len stays approximate but cheap; it
	// shares the producer's line because nothing else writes it.
	ptail    uint64 // line rank being filled
	pcount   int    // values already published into the current line
	enqTotal int64
	enq      atomic.Int64
	_        [CacheLineSize - 32]byte

	// Consumer-private words, mirrored layout.
	chead    uint64 // line rank being drained
	coff     int    // values already consumed from the head line
	ccount   int    // cached published count of the head line
	deqTotal int64
	deq      atomic.Int64
	_        [CacheLineSize - 40]byte

	closed atomic.Bool
	_      [CacheLineSize - 4]byte
}

// NewLineSPSC returns a line-granular SPSC queue holding at least
// capacity values. The ring is organized as a power-of-two number of
// LineVals-value lines, so the effective capacity (Cap) rounds up.
func NewLineSPSC[T any](capacity int, opts ...Option) (*LineSPSC[T], error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.rec = cfg.recorder()
	if capacity < 1 {
		return nil, fmt.Errorf("ffq: capacity %d too small (minimum 1)", capacity)
	}
	if capacity > 1<<30 {
		return nil, fmt.Errorf("ffq: capacity %d exceeds the 2^30 maximum", capacity)
	}
	lines := uint64(2)
	for int(lines)*LineVals < capacity {
		lines <<= 1
	}
	q := &LineSPSC[T]{
		cells:   make([]lineCell[T], lines),
		mask:    lines - 1,
		lines:   lines,
		yieldTh: cfg.yieldTh,
		rec:     cfg.rec,
	}
	for i := range q.cells {
		q.cells[i].seq.Store(lineSeq(uint64(i), lineFree))
	}
	return q, nil
}

// Cap returns the number of values the ring can hold: a power-of-two
// line count times LineVals.
func (q *LineSPSC[T]) Cap() int { return int(q.lines) * LineVals }

// Len returns an instantaneous approximation of the number of queued
// values. The underlying counters advance once per operation call (not
// per value), so a batch in flight appears all at once.
func (q *LineSPSC[T]) Len() int {
	n := q.enq.Load() - q.deq.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// waitLineFree spins until the producer's current line has been handed
// back by the consumer. Producer goroutine only.
func (q *LineSPSC[T]) waitLineFree(c *lineCell[T]) {
	want := lineSeq(q.ptail, lineFree)
	if c.seq.Load() == want {
		return
	}
	spins := 0
	stalled := false
	var waitStart time.Time
	if q.rec != nil {
		waitStart = time.Now()
	}
	for c.seq.Load() != want {
		spins++
		if q.rec != nil {
			q.rec.FullSpin()
			stalled = q.rec.StallCheck(obs.RoleProducer, int64(q.ptail), waitStart, spins, stalled)
			if backoff(spins<<4, q.yieldTh) {
				q.rec.ProducerYield()
			}
		} else {
			backoff(spins<<4, q.yieldTh)
		}
	}
	if q.rec != nil {
		q.rec.EndWait(obs.RoleProducer, int64(q.ptail), time.Since(waitStart), stalled)
	}
}

// publish appends the producer's staged fill count to the current
// line with one release store and advances to the next line when full.
// Producer goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) publish(c *lineCell[T]) {
	c.seq.Store(lineSeq(q.ptail, uint64(q.pcount)))
	if q.pcount == LineVals {
		q.ptail++
		q.pcount = 0
	}
}

// Enqueue inserts v at the tail, blocking while the ring is full.
// Producer goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) Enqueue(v T) {
	var opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	c := &q.cells[q.ptail&q.mask]
	if q.pcount == 0 {
		q.waitLineFree(c)
	}
	c.vals[q.pcount] = v
	q.pcount++
	q.publish(c)
	q.enqTotal++
	q.enq.Store(q.enqTotal)
	if q.rec != nil {
		q.rec.Enqueue()
		q.rec.EnqueueDone(opStart)
	}
}

// TryEnqueue inserts v if the ring has space and reports whether it
// did. Space can only be missing at a line boundary: mid-line the
// producer always owns the remaining slots. Producer goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) TryEnqueue(v T) bool {
	c := &q.cells[q.ptail&q.mask]
	if q.pcount == 0 && c.seq.Load() != lineSeq(q.ptail, lineFree) {
		return false
	}
	c.vals[q.pcount] = v
	q.pcount++
	q.publish(c)
	q.enqTotal++
	q.enq.Store(q.enqTotal)
	if q.rec != nil {
		q.rec.Enqueue()
	}
	return true
}

// EnqueueBatch inserts all of vs in order, blocking while the ring is
// full. This is the line-granular fast path: each full line costs one
// release store for LineVals values. Producer goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) EnqueueBatch(vs []T) {
	if len(vs) == 0 {
		return
	}
	var opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	total := len(vs)
	for len(vs) > 0 {
		c := &q.cells[q.ptail&q.mask]
		if q.pcount == 0 {
			q.waitLineFree(c)
		}
		n := copy(c.vals[q.pcount:], vs)
		q.pcount += n
		vs = vs[n:]
		q.publish(c)
	}
	q.enqTotal += int64(total)
	q.enq.Store(q.enqTotal)
	if q.rec != nil {
		q.rec.EnqueueN(total)
		q.rec.ObserveBatch(total)
		q.rec.EnqueueDone(opStart)
	}
}

// refill refreshes the consumer's cached view of the head line and
// reports whether at least one unconsumed value is visible. Consumer
// goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) refill() bool {
	if q.coff < q.ccount {
		return true
	}
	c := &q.cells[q.chead&q.mask]
	s := c.seq.Load()
	// The head cell's rank bits always equal chead here (the consumer
	// returns a line before advancing past it), so only the state
	// matters: lineFree or a count not beyond what we already took.
	st := s & lineStateMask
	if s>>lineSeqShift != q.chead || st == lineFree || int(st) <= q.coff {
		return false
	}
	q.ccount = int(st)
	return true
}

// takeOne pops the next value from the consumer's cached window and,
// on draining the line's last slot, returns the whole line to the
// producer with a single release store. Callers must ensure
// q.coff < q.ccount. Consumer goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) takeOne() T {
	c := &q.cells[q.chead&q.mask]
	v := c.vals[q.coff]
	var zero T
	c.vals[q.coff] = zero
	q.coff++
	q.deqTotal++
	if q.coff == LineVals {
		c.seq.Store(lineSeq(q.chead+q.lines, lineFree))
		q.chead++
		q.coff = 0
		q.ccount = 0
	}
	return v
}

// TryDequeue removes the head value if one is published. Consumer
// goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) TryDequeue() (v T, ok bool) {
	if !q.refill() {
		var zero T
		return zero, false
	}
	v = q.takeOne()
	q.deq.Store(q.deqTotal)
	if q.rec != nil {
		q.rec.Dequeue()
	}
	return v, true
}

// Dequeue removes and returns the head value, blocking while the queue
// is empty. It returns ok=false only once the queue is closed and
// drained. Consumer goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) Dequeue() (v T, ok bool) {
	spins := 0
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for {
		if q.refill() {
			v = q.takeOne()
			q.deq.Store(q.deqTotal)
			if q.rec != nil {
				if spins > 0 {
					q.rec.EndWait(obs.RoleConsumer, int64(q.chead), time.Since(waitStart), stalled)
				}
				q.rec.Dequeue()
				q.rec.DequeueDone(opStart)
			}
			return v, true
		}
		if q.closed.Load() {
			// Publishes happen-before Close in the producer, so one
			// more refill catches a value published between the poll
			// above and the closed load.
			if q.refill() {
				continue
			}
			var zero T
			return zero, false
		}
		spins++
		if q.rec != nil {
			if spins == 1 {
				waitStart = time.Now()
			}
			q.rec.EmptySpin()
			stalled = q.rec.StallCheck(obs.RoleConsumer, int64(q.chead), waitStart, spins, stalled)
			if backoff(spins, q.yieldTh) {
				q.rec.ConsumerYield()
			}
		} else {
			backoff(spins, q.yieldTh)
		}
	}
}

// DequeueBatch fills dst with up to len(dst) values, blocking until at
// least one is available. It returns n=0, ok=false only once the queue
// is closed and drained; a partial line left by Close is delivered
// (with ok=true) before that.
//
// When the head line is the producer's active, partially filled line,
// the consumer applies temporal slipping (Torquati): instead of
// chasing the producer value by value — which trades the cell's cache
// line back and forth on every store — it stands off for a bounded
// number of relax rounds to let the producer finish the line, then
// drains it whole. Consumer goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) DequeueBatch(dst []T) (n int, ok bool) {
	if len(dst) == 0 {
		return 0, true
	}
	spins, slip := 0, 0
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for {
		for q.coff < q.ccount && n < len(dst) {
			dst[n] = q.takeOne()
			n++
		}
		if n == len(dst) {
			break
		}
		c := &q.cells[q.chead&q.mask]
		s := c.seq.Load()
		st := int(s & lineStateMask)
		if s>>lineSeqShift == q.chead && st != lineFree && st > q.coff {
			if n == 0 && st < LineVals && slip < lineSlipSpins && !q.closed.Load() {
				slip++
				cpuRelax()
				continue
			}
			q.ccount = st
			continue
		}
		if n > 0 {
			break
		}
		if q.closed.Load() {
			// Re-check after the closed load; see Dequeue.
			s = c.seq.Load()
			st = int(s & lineStateMask)
			if s>>lineSeqShift == q.chead && st != lineFree && st > q.coff {
				q.ccount = st
				continue
			}
			return 0, false
		}
		spins++
		if q.rec != nil {
			if spins == 1 {
				waitStart = time.Now()
			}
			q.rec.EmptySpin()
			stalled = q.rec.StallCheck(obs.RoleConsumer, int64(q.chead), waitStart, spins, stalled)
			if backoff(spins, q.yieldTh) {
				q.rec.ConsumerYield()
			}
		} else {
			backoff(spins, q.yieldTh)
		}
	}
	q.deq.Store(q.deqTotal)
	if q.rec != nil {
		q.rec.DequeueN(n)
		q.rec.ObserveBatch(n)
		if spins > 0 {
			q.rec.EndWait(obs.RoleConsumer, int64(q.chead), time.Since(waitStart), stalled)
		}
		q.rec.DequeueDone(opStart)
	}
	return n, true
}

// TryDequeueBatch fills dst with whatever is published right now and
// returns the count; it never blocks and never slips. Consumer
// goroutine only.
//
//ffq:hotpath
func (q *LineSPSC[T]) TryDequeueBatch(dst []T) int {
	n := 0
	for n < len(dst) && q.refill() {
		dst[n] = q.takeOne()
		n++
	}
	if n > 0 {
		q.deq.Store(q.deqTotal)
		if q.rec != nil {
			q.rec.DequeueN(n)
			q.rec.ObserveBatch(n)
		}
	}
	return n
}

// Close marks the queue closed. Values already published — including a
// partial line — remain dequeueable; blocked Dequeue/DequeueBatch
// calls return ok=false once the ring drains. Producer goroutine only
// (Close is a producer-side operation, like the scalar variants).
func (q *LineSPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
func (q *LineSPSC[T]) Closed() bool { return q.closed.Load() }

// Recorder returns the queue's attached metrics recorder, or nil when
// the queue was built without instrumentation.
func (q *LineSPSC[T]) Recorder() *obs.Recorder { return q.rec }

// Stats snapshots the queue's instrumentation counters.
func (q *LineSPSC[T]) Stats() obs.Stats { return q.rec.Snapshot() }
