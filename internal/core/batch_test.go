package core

import (
	"sync"
	"testing"
)

// TestSPMCEnqueueBatchFIFO checks single-threaded batch round-trips,
// including ring wrap-around across several laps.
func TestSPMCEnqueueBatchFIFO(t *testing.T) {
	for _, layout := range []Layout{LayoutCompact, LayoutPadded} {
		q, err := NewSPMC[uint64](64, WithLayout(layout))
		if err != nil {
			t.Fatal(err)
		}
		next := uint64(0)
		want := uint64(0)
		buf := make([]uint64, 48)
		out := make([]uint64, 48)
		for round := 0; round < 20; round++ {
			vs := buf[:16+round%33]
			for i := range vs {
				vs[i] = next
				next++
			}
			q.EnqueueBatch(vs)
			got := 0
			for got < len(vs) {
				n, ok := q.DequeueBatch(out[:len(vs)-got])
				if !ok {
					t.Fatalf("layout %v: DequeueBatch reported closed", layout)
				}
				for i := 0; i < n; i++ {
					if out[i] != want {
						t.Fatalf("layout %v: got %d want %d", layout, out[i], want)
					}
					want++
				}
				got += n
			}
		}
		if v, ok := q.TryDequeue(); ok {
			t.Fatalf("layout %v: queue not drained, got %d", layout, v)
		}
	}
}

// TestSPMCTryDequeueBatch checks the non-blocking claim: it must take
// only resolved ranks and return 0 on empty without parking a rank.
func TestSPMCTryDequeueBatch(t *testing.T) {
	q, err := NewSPMC[uint64](32)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 8)
	if n := q.TryDequeueBatch(out); n != 0 {
		t.Fatalf("empty queue: got %d items", n)
	}
	for i := uint64(0); i < 5; i++ {
		q.Enqueue(i)
	}
	// A TryDequeueBatch after an empty probe must still see rank 0:
	// the probe may not have consumed a rank.
	n := q.TryDequeueBatch(out)
	if n != 5 {
		t.Fatalf("got %d items, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if out[i] != uint64(i) {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i)
		}
	}
	// Larger dst than available: partial fill.
	q.Enqueue(99)
	if n := q.TryDequeueBatch(out); n != 1 || out[0] != 99 {
		t.Fatalf("got n=%d out[0]=%d, want 1/99", n, out[0])
	}
}

// TestSPMCDequeueBatchGapPartial forces producer gap-skips and checks
// that a batch claim spanning gaps returns partial with ok=true and
// loses no items. White-box: it simulates a stalled consumer (the only
// source of gaps) by claiming a rank without consuming its cell.
func TestSPMCDequeueBatchGapPartial(t *testing.T) {
	q, err := NewSPMC[uint64](8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		q.Enqueue(i)
	}
	// Stalled consumer: claim rank 0, leave cell 0 occupied.
	if r := q.head.Add(1) - 1; r != 0 {
		t.Fatalf("claimed rank %d, want 0", r)
	}
	out := make([]uint64, 8)
	if n, ok := q.DequeueBatch(out[:7]); !ok || n != 7 || out[0] != 1 {
		t.Fatalf("drain ranks 1..7: n=%d ok=%v out[0]=%d", n, ok, out[0])
	}
	// The producer wraps: rank 8 maps to the still-occupied cell 0 and
	// is announced as a gap; 8..11 land on cells 1..4.
	q.EnqueueBatch([]uint64{8, 9, 10, 11})
	n, ok := q.DequeueBatch(out[:4])
	if !ok || n != 3 {
		t.Fatalf("claim across gap: n=%d ok=%v, want 3,true", n, ok)
	}
	for i, want := range []uint64{8, 9, 10} {
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	// The stalled consumer finishes rank 0.
	c := &q.cells[q.ix.Phys(0)]
	if c.rank.Load() != 0 {
		t.Fatalf("cell 0 rank = %d, want 0", c.rank.Load())
	}
	if c.data != 0 {
		t.Fatalf("cell 0 data = %d, want 0", c.data)
	}
	c.rank.Store(freeRank)
	// Rank 12 (value 11) is still pending.
	if n, ok := q.DequeueBatch(out[:1]); !ok || n != 1 || out[0] != 11 {
		t.Fatalf("tail item: n=%d ok=%v out[0]=%d", n, ok, out[0])
	}
}

// TestBatchClosedDrain checks the (n, false) contract: a batch claim
// crossing the final tail returns the live prefix and ok=false.
func TestBatchClosedDrain(t *testing.T) {
	q, err := NewSPMC[uint64](16)
	if err != nil {
		t.Fatal(err)
	}
	q.EnqueueBatch([]uint64{1, 2, 3})
	q.Close()
	out := make([]uint64, 8)
	n, ok := q.DequeueBatch(out)
	if ok || n != 3 {
		t.Fatalf("got n=%d ok=%v, want 3,false", n, ok)
	}
	for i, want := range []uint64{1, 2, 3} {
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	if n, ok := q.DequeueBatch(out); ok || n != 0 {
		t.Fatalf("drained queue: got n=%d ok=%v", n, ok)
	}

	m, err := NewMPMC[uint64](16)
	if err != nil {
		t.Fatal(err)
	}
	m.EnqueueBatch([]uint64{7, 8})
	m.Close()
	n, ok = m.DequeueBatch(out)
	if ok || n != 2 || out[0] != 7 || out[1] != 8 {
		t.Fatalf("mpmc: got n=%d ok=%v out=%v", n, ok, out[:2])
	}
}

// TestMPMCEnqueueBatchFIFO checks single-threaded MPMC batch
// round-trips across laps.
func TestMPMCEnqueueBatchFIFO(t *testing.T) {
	q, err := NewMPMC[uint64](32)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0)
	want := uint64(0)
	out := make([]uint64, 32)
	for round := 0; round < 30; round++ {
		vs := make([]uint64, 1+round%17)
		for i := range vs {
			vs[i] = next
			next++
		}
		q.EnqueueBatch(vs)
		got := 0
		for got < len(vs) {
			n, ok := q.DequeueBatch(out[:len(vs)-got])
			if !ok {
				t.Fatal("DequeueBatch reported closed")
			}
			for i := 0; i < n; i++ {
				if out[i] != want {
					t.Fatalf("got %d want %d", out[i], want)
				}
				want++
			}
			got += n
		}
	}
}

// TestBatchConcurrentExactlyOnce runs batch producers against batch
// consumers on the MPMC core and checks every item arrives exactly
// once with per-producer FIFO order.
func TestBatchConcurrentExactlyOnce(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 20000
		batch     = 16
	)
	q, err := NewMPMC[uint64](256)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			vs := make([]uint64, batch)
			for s := 0; s < perProd; s += batch {
				k := batch
				if perProd-s < k {
					k = perProd - s
				}
				for i := 0; i < k; i++ {
					vs[i] = uint64(p)<<32 | uint64(s+i)
				}
				q.EnqueueBatch(vs[:k])
			}
		}(p)
	}
	results := make([][]uint64, consumers)
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			buf := make([]uint64, batch)
			for {
				n, ok := q.DequeueBatch(buf)
				results[c] = append(results[c], buf[:n]...)
				if !ok {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	q.Close()
	cwg.Wait()

	seen := make(map[uint64]int, producers*perProd)
	lastSeq := make([][]int, consumers)
	for c, rs := range results {
		lastSeq[c] = make([]int, producers)
		for i := range lastSeq[c] {
			lastSeq[c][i] = -1
		}
		for _, v := range rs {
			seen[v]++
			p := int(v >> 32)
			s := int(v & 0xFFFFFFFF)
			// Within one consumer, each producer's items must ascend:
			// batch claims are contiguous runs, and EnqueueBatch keeps
			// per-producer order even when re-claiming leftovers.
			if s <= lastSeq[c][p] {
				t.Fatalf("consumer %d: producer %d seq %d after %d", c, p, s, lastSeq[c][p])
			}
			lastSeq[c][p] = s
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("got %d distinct items, want %d", len(seen), producers*perProd)
	}
	for v, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("item %#x seen %d times", v, cnt)
		}
	}
}

// TestSPMCBatchConcurrent mixes TryDequeueBatch consumers against the
// single batch producer and checks exactly-once delivery.
func TestSPMCBatchConcurrent(t *testing.T) {
	const (
		consumers = 4
		total     = 100000
		batch     = 32
	)
	q, err := NewSPMC[uint64](256)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		vs := make([]uint64, batch)
		for s := 0; s < total; s += batch {
			k := batch
			if total-s < k {
				k = total - s
			}
			for i := 0; i < k; i++ {
				vs[i] = uint64(s + i)
			}
			q.EnqueueBatch(vs[:k])
		}
		q.Close()
	}()
	results := make([][]uint64, consumers)
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			buf := make([]uint64, batch)
			idle := 0
			for {
				n := q.TryDequeueBatch(buf)
				results[c] = append(results[c], buf[:n]...)
				if n == 0 {
					if q.Closed() && q.Len() == 0 {
						return
					}
					idle++
					if idle%64 == 0 {
						// Nothing resolved yet; yield to the producer.
						n, ok := q.DequeueBatch(buf[:1])
						results[c] = append(results[c], buf[:n]...)
						if !ok {
							return
						}
					}
					continue
				}
				idle = 0
			}
		}(c)
	}
	cwg.Wait()
	seen := make(map[uint64]int, total)
	for _, rs := range results {
		for _, v := range rs {
			seen[v]++
		}
	}
	if len(seen) != total {
		t.Fatalf("got %d distinct items, want %d", len(seen), total)
	}
	for v, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("item %d seen %d times", v, cnt)
		}
	}
}
