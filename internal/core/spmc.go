package core

import (
	"sync/atomic"
	"time"
	"unsafe"

	"ffq/internal/obs"
)

// freeRank marks a cell that holds no item (the paper's special
// negative rank value, Algorithm 1 line 3).
const freeRank = -1

// noGap is the initial value of a cell's gap field: no rank has ever
// been skipped at this cell.
const noGap = -1

// cell is one slot of the SPSC/SPMC circular arrays (Figure 1 of the
// paper). rank holds the rank of the stored item, or freeRank when the
// cell is empty. gap holds the highest rank that was skipped at this
// cell, or noGap. data is plain: the rank protocol guarantees exclusive
// access between the publishing rank store and the consuming reset.
//
// For a T of 8 bytes the cell occupies 24 bytes, matching the paper's
// "not aligned" configuration.
type cell[T any] struct {
	rank atomic.Int64
	gap  atomic.Int64
	data T
}

// SPMC is the paper's FFQ^s (Algorithm 1): a bounded FIFO queue with a
// single producer and any number of consumers.
//
// Progress: Enqueue is wait-free as long as the queue has a free slot
// (it degrades to spinning-with-skips when consumers fall behind, as
// footnote 2 of the paper describes). Dequeue is lock-free as long as
// the queue is non-empty.
//
// Exactly one goroutine may call Enqueue, TryEnqueue and Close; any
// number of goroutines may call Dequeue concurrently.
//
//ffq:padded
type SPMC[T any] struct {
	ix      Indexer
	cells   []cell[T]
	layout  Layout
	yieldTh int
	// rec is nil unless WithInstrumentation/WithRecorder was given;
	// every path checks it before recording, so the disabled queue
	// pays one predicted branch per operation.
	rec    *obs.Recorder
	_      [CacheLineSize]byte
	head   atomic.Int64 // shared: fetch-and-incremented by consumers
	_      [CacheLineSize]byte
	tail   atomic.Int64 // written by the producer only
	_      [CacheLineSize]byte
	closed atomic.Bool
	_      [CacheLineSize - 4]byte
	// gaps counts ranks the producer skipped (Section III-A). Updated
	// on the skip path only, which is never taken while the queue has
	// slack, so the counter is free in normal operation.
	gaps atomic.Int64
	// 32 extra bytes round the struct to a whole number of lines (the
	// header fields above the first pad are not line-sized).
	_ [CacheLineSize - 8 + 32]byte
}

// NewSPMC returns an SPMC queue with the given capacity, which must be
// a power of two (the rank-to-cell mapping is a mask, Section III-A).
func NewSPMC[T any](capacity int, opts ...Option) (*SPMC[T], error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.rec = cfg.recorder()
	q := &SPMC[T]{}
	if err := initSPMC(q, capacity, cfg); err != nil {
		return nil, err
	}
	return q, nil
}

// initSPMC initializes q in place. The sharded queue embeds SPMC lanes
// by value inside a lane array (one allocation, no pointer chasing on
// the scan path); in-place init is required because a constructed SPMC
// must never be copied (its atomics pin it to one address).
func initSPMC[T any](q *SPMC[T], capacity int, cfg config) error {
	ix, err := NewIndexer(capacity, cfg.layout, unsafe.Sizeof(cell[T]{}))
	if err != nil {
		return err
	}
	q.ix = ix
	q.layout = cfg.layout
	q.yieldTh = cfg.yieldTh
	q.rec = cfg.rec
	q.cells = make([]cell[T], ix.Slots())
	for i := range q.cells {
		q.cells[i].rank.Store(freeRank)
		q.cells[i].gap.Store(noGap)
	}
	return nil
}

// Cap returns the logical capacity of the queue.
func (q *SPMC[T]) Cap() int { return q.ix.Capacity() }

// Layout returns the memory layout the queue was built with.
func (q *SPMC[T]) Layout() Layout { return q.layout }

// Len returns an instantaneous approximation of the number of enqueued
// items (skipped ranks are counted until consumers pass them).
func (q *SPMC[T]) Len() int {
	n := q.tail.Load() - q.head.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Enqueue inserts v at the tail of the queue. It is wait-free while
// the queue has an empty slot; if every cell is occupied it spins,
// skipping ranks, until a consumer frees one.
//
// Must be called by the single producer goroutine only.
//
//ffq:hotpath
func (q *SPMC[T]) Enqueue(v T) {
	t := q.tail.Load()
	skips := 0
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for {
		c := &q.cells[q.ix.Phys(t)]
		if c.rank.Load() >= 0 {
			// The cell still holds an older item: a slow consumer has
			// not finished dequeuing it. Skip this rank and announce
			// the gap (Algorithm 1, line 14).
			c.gap.Store(t)
			t++
			q.tail.Store(t)
			q.gaps.Add(1)
			// Consecutive skips mean the queue is full; back off so
			// consumers can drain instead of chasing burnt ranks.
			skips++
			if q.rec != nil {
				if skips == 1 {
					waitStart = time.Now()
				}
				q.rec.GapCreated()
				q.rec.FullSpin()
				stalled = q.rec.StallCheck(obs.RoleProducer, t, waitStart, skips, stalled)
				if backoff(skips<<4, q.yieldTh) {
					q.rec.ProducerYield()
				}
			} else {
				backoff(skips<<4, q.yieldTh)
			}
			continue
		}
		// Publish: data first, then the rank store, which is the
		// linearization point (Algorithm 1, lines 16-17).
		c.data = v
		c.rank.Store(t)
		q.tail.Store(t + 1)
		if q.rec != nil {
			q.rec.Enqueue()
			if skips > 0 {
				q.rec.EndWait(obs.RoleProducer, t, time.Since(waitStart), stalled)
			}
			q.rec.EnqueueDone(opStart)
		}
		return
	}
}

// TryEnqueue inserts v if the tail cell is free and reports whether it
// did. A false return means the tail cell is still occupied by an
// undequeued item; unlike Enqueue it does not skip ranks, so it never
// burns rank numbers on a full queue.
//
//ffq:hotpath
func (q *SPMC[T]) TryEnqueue(v T) bool {
	t := q.tail.Load()
	c := &q.cells[q.ix.Phys(t)]
	if c.rank.Load() >= 0 {
		return false
	}
	c.data = v
	c.rank.Store(t)
	q.tail.Store(t + 1)
	if q.rec != nil {
		q.rec.Enqueue()
	}
	return true
}

// Dequeue removes and returns the item at the head of the queue,
// blocking (spinning, then yielding) while the queue is empty. It
// returns ok=false only after Close has been called and every
// remaining item has been handed to some consumer.
//
// Safe for concurrent use by any number of consumers.
//
//ffq:hotpath
func (q *SPMC[T]) Dequeue() (v T, ok bool) {
	// Acquire a unique rank (Algorithm 1, line 21).
	rank := q.head.Add(1) - 1
	c := &q.cells[q.ix.Phys(rank)]
	spins := 0
	waited := false
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for {
		if c.rank.Load() == rank {
			// The cell holds our item; consume it and recycle the
			// cell. The rank reset is the linearization point
			// (Algorithm 1, lines 26-27).
			v = c.data
			var zero T
			c.data = zero
			c.rank.Store(freeRank)
			if q.rec != nil {
				q.rec.Dequeue()
				if waited {
					q.rec.EndWait(obs.RoleConsumer, rank, time.Since(waitStart), stalled)
				}
				q.rec.DequeueDone(opStart)
			}
			return v, true
		}
		// The rank may have been skipped. Re-check the cell's rank
		// after reading the gap: the producer might have published our
		// item in between (the line 29 re-check in the paper).
		if c.gap.Load() >= rank && c.rank.Load() != rank {
			rank = q.head.Add(1) - 1
			c = &q.cells[q.ix.Phys(rank)]
			spins = 0
			if q.rec != nil {
				q.rec.GapSkipped()
			}
			continue
		}
		// The producer has not reached this rank yet.
		if q.closed.Load() && rank >= q.tail.Load() {
			// The queue is closed and this rank is beyond the final
			// tail: no item will ever be published here.
			var zero T
			return zero, false
		}
		spins++
		if q.rec != nil {
			if !waited {
				waited = true
				waitStart = time.Now()
			}
			q.rec.EmptySpin()
			stalled = q.rec.StallCheck(obs.RoleConsumer, rank, waitStart, spins, stalled)
			if backoff(spins, q.yieldTh) {
				q.rec.ConsumerYield()
			}
		} else {
			backoff(spins, q.yieldTh)
		}
	}
}

// TryDequeue removes the head item if one is ready, without blocking
// and without burning a rank. Where Dequeue reserves a rank with an
// unconditional fetch-and-add (and therefore cannot abandon it on an
// empty queue), TryDequeue advances the head counter with a
// compare-and-swap only once the head cell is known to hold its item
// or to have been skipped, so a false return leaves no claim behind.
// ok=false means no item was ready: the queue may be empty, still
// filling, or closed and drained. Safe for any number of concurrent
// consumers, mixed freely with Dequeue.
//
//ffq:hotpath
func (q *SPMC[T]) TryDequeue() (v T, ok bool) {
	//ffq:ignore spin-backoff every iteration either returns or advances head past a rank another consumer settled or the producer skipped
	for {
		h := q.head.Load()
		c := &q.cells[q.ix.Phys(h)]
		if c.rank.Load() == h {
			if !q.head.CompareAndSwap(h, h+1) {
				continue // another consumer claimed rank h first
			}
			// Winning the CAS makes rank h exclusively ours, and the
			// cell held rank h at the load above: consuming h first
			// would require owning it (head past h), which the
			// successful CAS rules out, and the producer never rewrites
			// an occupied cell. Consume exactly as Dequeue does.
			v = c.data
			var zero T
			c.data = zero
			c.rank.Store(freeRank)
			if q.rec != nil {
				q.rec.Dequeue()
			}
			return v, true
		}
		// The head rank may have been skipped by the producer; discard
		// it (the CAS-guarded analogue of Dequeue's re-acquisition) and
		// inspect the next rank. The rank re-check mirrors Algorithm 1
		// line 29: the producer might have published h in between.
		if c.gap.Load() >= h && c.rank.Load() != h {
			if q.head.CompareAndSwap(h, h+1) {
				if q.rec != nil {
					q.rec.GapSkipped()
				}
			}
			continue
		}
		var zero T
		return zero, false
	}
}

// Gaps returns the number of ranks the producer has skipped because a
// slow consumer still held the target cell. A non-zero value means the
// queue ran full at some point (consider a larger capacity).
func (q *SPMC[T]) Gaps() int64 { return q.gaps.Load() }

// Recorder returns the queue's attached metrics recorder, or nil when
// the queue was built without instrumentation.
func (q *SPMC[T]) Recorder() *obs.Recorder { return q.rec }

// Stats snapshots the queue's instrumentation counters. Without
// instrumentation only the always-on gap counter is populated.
func (q *SPMC[T]) Stats() obs.Stats {
	s := q.rec.Snapshot()
	if q.rec == nil {
		s.GapsCreated = q.gaps.Load()
	}
	return s
}

// Close marks the queue closed. Consumers blocked in Dequeue return
// ok=false once every published item has been consumed. Close must be
// called by the producer after its final Enqueue; Enqueue after Close
// is a caller bug (items may never be delivered to spinning consumers
// that already observed the closed state).
func (q *SPMC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
func (q *SPMC[T]) Closed() bool { return q.closed.Load() }
