package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMPMCPackUnpackProperty(t *testing.T) {
	f := func(r, g uint32) bool {
		r2, g2 := mpmcUnpack(mpmcPack(r, g))
		return r2 == r && g2 == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewMPMCValidation(t *testing.T) {
	if _, err := NewMPMC[int](7); err == nil {
		t.Error("non-power-of-two capacity accepted")
	}
	q, err := NewMPMC[int](16, WithLayout(LayoutPaddedRandomized))
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 16 || q.Layout() != LayoutPaddedRandomized {
		t.Errorf("Cap=%d Layout=%v", q.Cap(), q.Layout())
	}
	if q.Len() != 0 || q.Closed() {
		t.Error("fresh queue not empty/open")
	}
}

func TestMPMCLapEncoding(t *testing.T) {
	q, err := NewMPMC[int](8) // logN = 3
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rank int64
		lap  uint32
	}{
		{0, 1}, {7, 1}, {8, 2}, {15, 2}, {16, 3}, {8 * 1000, 1001},
	}
	for _, c := range cases {
		if got := q.lapOf(c.rank); got != c.lap {
			t.Errorf("lapOf(%d) = %d, want %d", c.rank, got, c.lap)
		}
	}
}

func TestMPMCLapExhaustionPanics(t *testing.T) {
	q, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on lap exhaustion")
		}
	}()
	q.lapOf(int64(mpmcMaxLap) * 8)
}

func TestMPMCSequentialFIFO(t *testing.T) {
	for _, layout := range Layouts {
		q, err := NewMPMC[int](16, WithLayout(layout))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 20; round++ { // several laps
			for i := 0; i < 16; i++ {
				q.Enqueue(round*16 + i)
			}
			for i := 0; i < 16; i++ {
				v, ok := q.Dequeue()
				if !ok || v != round*16+i {
					t.Fatalf("%v: Dequeue = %d,%v, want %d", layout, v, ok, round*16+i)
				}
			}
		}
	}
}

func TestMPMCCloseDrains(t *testing.T) {
	q, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(1)
	q.Enqueue(2)
	q.Close()
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("got %d,%v", v, ok)
	}
	if v, ok := q.Dequeue(); !ok || v != 2 {
		t.Fatalf("got %d,%v", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained closed queue returned ok")
	}
}

// White-box: a producer must skip a cell still occupied by an older
// item, and the gap announcement must divert the matching consumer.
func TestMPMCGapSkip(t *testing.T) {
	q, err := NewMPMC[string](4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"A", "B", "C", "D"} {
		q.Enqueue(s)
	}
	q.head.Store(1) // abandon rank 0 (simulated stalled consumer)
	for _, want := range []string{"B", "C", "D"} {
		if v, ok := q.Dequeue(); !ok || v != want {
			t.Fatalf("got %q,%v want %q", v, ok, want)
		}
	}
	q.Enqueue("E") // rank 4 hits occupied cell 0, gap lap 2 announced; E at rank 5
	c0 := &q.cells[q.ix.Phys(0)]
	r32, g32 := mpmcUnpack(c0.state.Load())
	if r32 != 1 { // lap of rank 0, offset by one
		t.Fatalf("cell 0 rank lap = %d, want 1", r32)
	}
	if g32 != 2 { // lap of rank 4, offset by one
		t.Fatalf("cell 0 gap lap = %d, want 2", g32)
	}
	if v, ok := q.Dequeue(); !ok || v != "E" {
		t.Fatalf("got %q,%v want E", v, ok)
	}
	if h := q.head.Load(); h != 6 {
		t.Fatalf("head = %d, want 6", h)
	}
	// Release the stalled cell; the producer can reuse it.
	c0.state.Store(mpmcPack(mpmcLapFree, g32))
	q.Enqueue("F")
	if v, ok := q.Dequeue(); !ok || v != "F" {
		t.Fatalf("got %q,%v want F", v, ok)
	}
}

// White-box: a producer must not enqueue "in the past". If the gap of
// the cell has been raised at or beyond the producer's rank, the claim
// must fail and the producer must take a fresh rank (the second race
// of Section III-B).
func TestMPMCNoEnqueueInThePast(t *testing.T) {
	q, err := NewMPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-announce a gap at lap 3 on cell 0 (as if a faster producer
	// skipped rank 8 there) while the cell is free.
	c0 := &q.cells[q.ix.Phys(0)]
	c0.state.Store(mpmcPack(mpmcLapFree, 3))
	// The producer acquiring rank 0 (lap 1) must refuse cell 0 and
	// retry with rank 1: value 42 must land at rank 1 / cell 1.
	q.Enqueue(42)
	if r32, _ := mpmcUnpack(c0.state.Load()); r32 != mpmcLapFree {
		t.Fatalf("cell 0 was claimed in the past (rank lap %d)", r32)
	}
	c1 := &q.cells[q.ix.Phys(1)]
	if r32, _ := mpmcUnpack(c1.state.Load()); r32 != 1 {
		t.Fatalf("cell 1 rank lap = %d, want 1", r32)
	}
	// A consumer drawing rank 0 must skip it via the gap and get 42.
	if v, ok := q.Dequeue(); !ok || v != 42 {
		t.Fatalf("got %d,%v want 42", v, ok)
	}
}

// White-box: consumers must wait (not consume, not skip) while a
// producer holds a cell claimed (the -2 state).
func TestMPMCClaimBlocksConsumer(t *testing.T) {
	q, err := NewMPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	c0 := &q.cells[q.ix.Phys(0)]
	c0.state.Store(mpmcPack(mpmcLapClaim, mpmcNoGap)) // simulated stalled producer
	done := make(chan int, 1)
	go func() {
		v, _ := q.Dequeue() // rank 0: must block until publish
		done <- v
	}()
	time.Sleep(20 * time.Millisecond) // give the consumer time to misbehave
	select {
	case v := <-done:
		t.Fatalf("Dequeue returned %d while cell was claimed", v)
	default:
	}
	// Publish, completing the stalled producer's protocol.
	c0.data = 99
	c0.state.Store(mpmcPack(1, mpmcNoGap))
	if v := <-done; v != 99 {
		t.Fatalf("got %d, want 99", v)
	}
}

func TestMPMCConcurrentExactlyOnce(t *testing.T) {
	const (
		producers = 4
		consumers = 4
	)
	for _, layout := range Layouts {
		for _, capacity := range []int{4, 64, 1024} {
			perProd := 10000
			if capacity < 64 {
				// A full queue is the algorithm's pathological regime
				// (producers burn ranks); keep the tiny-capacity case
				// small so the suite stays fast on small machines.
				perProd = 1000
			}
			q, err := NewMPMC[uint64](capacity, WithLayout(layout))
			if err != nil {
				t.Fatal(err)
			}
			got := make([]atomic.Int32, producers*perProd)
			var prodWG, consWG sync.WaitGroup
			// lastSeen[c][p] checks per-producer FIFO order at each consumer.
			lastSeen := make([][]int64, consumers)
			for c := range lastSeen {
				lastSeen[c] = make([]int64, producers)
				for p := range lastSeen[c] {
					lastSeen[c][p] = -1
				}
			}
			for c := 0; c < consumers; c++ {
				consWG.Add(1)
				go func(c int) {
					defer consWG.Done()
					for {
						v, ok := q.Dequeue()
						if !ok {
							return
						}
						p := int(v / uint64(perProd))
						seq := int64(v % uint64(perProd))
						if p >= producers {
							t.Errorf("bogus value %d", v)
							return
						}
						if seq <= lastSeen[c][p] {
							t.Errorf("consumer %d saw producer %d seq %d after %d", c, p, seq, lastSeen[c][p])
							return
						}
						lastSeen[c][p] = seq
						got[v].Add(1)
					}
				}(c)
			}
			for p := 0; p < producers; p++ {
				prodWG.Add(1)
				go func(p int) {
					defer prodWG.Done()
					base := uint64(p) * uint64(perProd)
					for i := 0; i < perProd; i++ {
						q.Enqueue(base + uint64(i))
					}
				}(p)
			}
			prodWG.Wait()
			q.Close()
			consWG.Wait()
			for i := range got {
				if n := got[i].Load(); n != 1 {
					t.Fatalf("%v cap=%d: item %d delivered %d times", layout, capacity, i, n)
				}
			}
		}
	}
}

// Single producer through the MPMC interface must preserve total FIFO
// order at a single consumer.
func TestMPMCSingleProducerOrder(t *testing.T) {
	q, err := NewMPMC[int](8)
	if err != nil {
		t.Fatal(err)
	}
	const items = 50000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		expect := 0
		for {
			v, ok := q.Dequeue()
			if !ok {
				break
			}
			if v != expect {
				t.Errorf("got %d, want %d", v, expect)
				return
			}
			expect++
		}
		if expect != items {
			t.Errorf("received %d, want %d", expect, items)
		}
	}()
	for i := 0; i < items; i++ {
		q.Enqueue(i)
	}
	q.Close()
	wg.Wait()
}

func TestMPMCGapCounter(t *testing.T) {
	q, err := NewMPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		q.Enqueue(round)
		q.Dequeue()
	}
	if g := q.Gaps(); g != 0 {
		t.Fatalf("Gaps = %d in slack operation", g)
	}
	q2, err := NewMPMC[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		q2.Enqueue(i)
	}
	q2.head.Store(1)
	for i := 1; i < 4; i++ {
		q2.Dequeue()
	}
	q2.Enqueue(100)
	if g := q2.Gaps(); g != 1 {
		t.Fatalf("Gaps = %d after one forced skip", g)
	}
}
