package core

import (
	"fmt"
	"math/bits"
)

// CacheLineSize is the coherence granularity assumed by the padded
// layouts. 64 bytes matches every x86-64 and POWER8 part the paper
// evaluates on (POWER8 lines are 128 bytes; padding to 64 still keeps
// logical cells from sharing a 64-byte sector, which is what matters
// for the false-sharing experiments here).
const CacheLineSize = 64

// rotBits is the index rotation amount used by the randomized layouts.
// The paper rotates the index bits by 4, "effectively placing two
// consecutive cells 16 positions apart in memory" (Section IV-A).
const rotBits = 4

// Layout selects how logical cells are placed in memory. It reproduces
// the four configurations of the paper's false-sharing study (Fig. 2).
type Layout uint8

const (
	// LayoutCompact packs cells back to back ("not aligned").
	LayoutCompact Layout = iota
	// LayoutPadded gives every logical cell its own cache line
	// ("aligned" / dedicated cache lines).
	LayoutPadded
	// LayoutRandomized keeps cells compact but rotates the low index
	// bits by 4 so that consecutive ranks map to cells 16 slots apart
	// ("randomized").
	LayoutRandomized
	// LayoutPaddedRandomized combines padding and randomization
	// ("both").
	LayoutPaddedRandomized
)

// Layouts lists all supported layouts in the order the paper's Figure 2
// presents them.
var Layouts = []Layout{LayoutCompact, LayoutPadded, LayoutRandomized, LayoutPaddedRandomized}

// String returns the paper's name for the layout.
func (l Layout) String() string {
	switch l {
	case LayoutCompact:
		return "not-aligned"
	case LayoutPadded:
		return "aligned"
	case LayoutRandomized:
		return "randomized"
	case LayoutPaddedRandomized:
		return "both"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

func (l Layout) padded() bool {
	return l == LayoutPadded || l == LayoutPaddedRandomized
}

func (l Layout) randomized() bool {
	return l == LayoutRandomized || l == LayoutPaddedRandomized
}

// Indexer maps a rank to the physical slot index of its cell. The
// logical index is rank mod N; the physical index applies the optional
// bit rotation and padding stride on top. All operations are branch-
// predictable shifts and masks so the hot paths stay cheap.
type Indexer struct {
	mask   uint64 // N - 1
	logN   uint   // log2(N)
	rot    uint   // rotation amount (0 = no randomization)
	stride uint64 // physical slots per logical cell (1 = compact)
}

// NewIndexer validates capacity and builds the rank-to-slot mapping.
// cellSize is the in-memory size of one cell, used to compute the
// padding stride so that no two logical cells share a cache line.
func NewIndexer(capacity int, layout Layout, cellSize uintptr) (Indexer, error) {
	if capacity < 2 {
		return Indexer{}, fmt.Errorf("ffq: capacity %d too small (minimum 2)", capacity)
	}
	if capacity&(capacity-1) != 0 {
		return Indexer{}, fmt.Errorf("ffq: capacity %d is not a power of two", capacity)
	}
	if capacity > 1<<30 {
		return Indexer{}, fmt.Errorf("ffq: capacity %d exceeds the 2^30 maximum", capacity)
	}
	ix := Indexer{
		mask:   uint64(capacity - 1),
		logN:   uint(bits.TrailingZeros64(uint64(capacity))),
		stride: 1,
	}
	if layout.randomized() && ix.logN > rotBits {
		ix.rot = rotBits
	}
	if layout.padded() {
		// Two cells with start-to-start distance D and size s can share
		// an aligned cache line iff D < CacheLineSize + s (a line can
		// start after the first cell's head and still reach past the
		// second cell's start). Go gives no alignment guarantee for the
		// backing array, so the stride must satisfy the inequality for
		// any base offset: stride*s >= CacheLineSize + s.
		ix.stride = uint64((CacheLineSize+cellSize-1)/cellSize) + 1
	}
	return ix, nil
}

// slots returns the number of physical cell slots to allocate.
func (ix Indexer) Slots() int {
	return int((ix.mask + 1) * ix.stride)
}

// capacity returns the logical capacity N.
func (ix Indexer) Capacity() int {
	return int(ix.mask + 1)
}

// phys maps a rank to its physical slot index.
//
//ffq:hotpath
func (ix Indexer) Phys(rank int64) uint64 {
	i := uint64(rank) & ix.mask
	if ix.rot != 0 {
		i = ((i << ix.rot) | (i >> (ix.logN - ix.rot))) & ix.mask
	}
	return i * ix.stride
}
