package core

import (
	"testing"
)

// FuzzSPSCModel drives an SPSC queue with an arbitrary single-threaded
// op tape and cross-checks every result against a slice model. Byte
// semantics: low 2 bits select the op (0,1 = TryEnqueue, 2 =
// TryDequeue, 3 = blocking-enqueue-with-room-check skipped to keep the
// tape total), remaining bits feed the capacity choice on byte 0.
func FuzzSPSCModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 2, 2})
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2})
	f.Add([]byte{255, 0, 2, 0, 2, 0, 2, 0, 2, 0, 2})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) == 0 {
			return
		}
		capacities := []int{2, 4, 16, 64}
		capacity := capacities[int(tape[0])%len(capacities)]
		layout := Layouts[int(tape[0]>>4)%len(Layouts)]
		q, err := NewSPSC[uint64](capacity, WithLayout(layout))
		if err != nil {
			t.Fatal(err)
		}
		var model []uint64
		next := uint64(1)
		for _, b := range tape[1:] {
			switch b % 4 {
			case 0, 1, 3:
				if q.TryEnqueue(next) {
					model = append(model, next)
				} else if len(model) < capacity {
					t.Fatalf("cap=%d layout=%v: full with %d/%d items", capacity, layout, len(model), capacity)
				}
				next++
			case 2:
				v, ok := q.TryDequeue()
				if ok {
					if len(model) == 0 {
						t.Fatalf("cap=%d layout=%v: phantom item %d", capacity, layout, v)
					}
					if model[0] != v {
						t.Fatalf("cap=%d layout=%v: got %d, want %d", capacity, layout, v, model[0])
					}
					model = model[1:]
				} else if len(model) != 0 {
					t.Fatalf("cap=%d layout=%v: empty with %d items in model", capacity, layout, len(model))
				}
			}
		}
		if q.Len() != len(model) {
			t.Fatalf("cap=%d layout=%v: Len=%d model=%d", capacity, layout, q.Len(), len(model))
		}
	})
}

// FuzzMPMCSequentialModel does the same single-threaded cross-check
// against the MPMC variant (whose packed-word state machine has more
// transitions to get wrong). Only blocking ops exist on MPMC, so the
// tape is balanced: a dequeue is only issued when the model is
// non-empty, an enqueue only below capacity.
func FuzzMPMCSequentialModel(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 1})
	f.Add([]byte{3, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) == 0 {
			return
		}
		capacities := []int{2, 4, 16}
		capacity := capacities[int(tape[0])%len(capacities)]
		q, err := NewMPMC[uint64](capacity)
		if err != nil {
			t.Fatal(err)
		}
		var model []uint64
		next := uint64(1)
		for _, b := range tape[1:] {
			if b%2 == 0 {
				if len(model) >= capacity {
					continue // full: a blocking enqueue would spin
				}
				q.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				if len(model) == 0 {
					continue // empty: a blocking dequeue would spin
				}
				v, ok := q.Dequeue()
				if !ok || v != model[0] {
					t.Fatalf("cap=%d: got %d,%v want %d", capacity, v, ok, model[0])
				}
				model = model[1:]
			}
		}
		if q.Len() != len(model) {
			t.Fatalf("cap=%d: Len=%d model=%d", capacity, q.Len(), len(model))
		}
	})
}
