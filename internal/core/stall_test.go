package core

import (
	"sync"
	"testing"
	"time"

	"ffq/internal/obs"
)

// TestStallWatchdogDetectsStalledProducer parks a consumer on an empty
// queue behind a slow producer: the wait crosses the watchdog
// threshold, so the stats must carry the stall counters, the duration
// histogram entry, and the event in the recent tail.
func TestStallWatchdogDetectsStalledProducer(t *testing.T) {
	q, err := NewSPMC[int](8, WithStallWatchdog(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		v, _ := q.Dequeue()
		done <- v
	}()
	time.Sleep(10 * time.Millisecond) // the consumer spins past the threshold
	q.Enqueue(42)
	if v := <-done; v != 42 {
		t.Fatalf("dequeued %d", v)
	}
	s := q.Stats()
	if s.StallThresholdNS != int64(time.Millisecond) {
		t.Fatalf("threshold = %d", s.StallThresholdNS)
	}
	if s.StallEvents < 1 {
		t.Fatalf("no stall events: %+v", s)
	}
	if s.StallCount < 1 || s.StallSumNS < int64(time.Millisecond) {
		t.Fatalf("completed-stall histogram empty: count=%d sum=%d", s.StallCount, s.StallSumNS)
	}
	if len(s.RecentStalls) == 0 {
		t.Fatal("recent stall tail empty")
	}
	ev := s.RecentStalls[0]
	if ev.Role != obs.RoleConsumer || ev.Rank != 0 || ev.DurationNS < int64(time.Millisecond) {
		t.Fatalf("stall event: %+v", ev)
	}
	// A wait that never crosses the threshold leaves no new events.
	before := s.StallEvents
	q.Enqueue(1)
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	if s2 := q.Stats(); s2.StallEvents != before {
		t.Fatalf("fast op emitted a stall: %d -> %d", before, s2.StallEvents)
	}
}

// TestStallWatchdogConcurrent races stalled consumers, a late producer,
// and stats snapshots under the race detector: the watchdog's ring and
// counters must tolerate concurrent EndWait/StallCheck/Snapshot.
func TestStallWatchdogConcurrent(t *testing.T) {
	q, err := NewMPMC[int](64, WithStallWatchdog(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	const consumers = 4
	const items = 2000
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := q.Dequeue(); !ok {
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = q.Stats()
			}
		}
	}()
	// Produce in bursts with gaps longer than the threshold, so
	// consumers repeatedly stall and recover while stats are read.
	for i := 0; i < items; i++ {
		if i%500 == 0 {
			time.Sleep(time.Millisecond)
		}
		q.Enqueue(i)
	}
	q.Close()
	close(stop)
	wg.Wait()
	s := q.Stats()
	if s.StallEvents < 1 {
		t.Fatalf("bursty producer never stalled a consumer: %+v", s)
	}
	if s.Dequeues != items {
		t.Fatalf("dequeues = %d, want %d", s.Dequeues, items)
	}
}

// TestOpLatencyOption checks WithOpLatency end to end on each bounded
// variant: every completed op lands in the right histogram.
func TestOpLatencyOption(t *testing.T) {
	check := func(name string, stats obs.Stats, ops int64) {
		t.Helper()
		if stats.EnqLatency == nil || stats.EnqLatency.Count != ops {
			t.Fatalf("%s: enq latency %v, want count %d", name, stats.EnqLatency, ops)
		}
		if stats.DeqLatency == nil || stats.DeqLatency.Count != ops {
			t.Fatalf("%s: deq latency %v, want count %d", name, stats.DeqLatency, ops)
		}
		if stats.EnqLatency.P999NS < stats.EnqLatency.P50NS {
			t.Fatalf("%s: inverted percentiles %v", name, stats.EnqLatency)
		}
	}
	const ops = 100
	spsc, _ := NewSPSC[int](128, WithOpLatency())
	spmc, _ := NewSPMC[int](128, WithOpLatency())
	mpmc, _ := NewMPMC[int](128, WithOpLatency())
	for i := 0; i < ops; i++ {
		spsc.Enqueue(i)
		spsc.Dequeue()
		spmc.Enqueue(i)
		spmc.Dequeue()
		mpmc.Enqueue(i)
		mpmc.Dequeue()
	}
	check("spsc", spsc.Stats(), ops)
	check("spmc", spmc.Stats(), ops)
	check("mpmc", mpmc.Stats(), ops)

	// Sharded: the facade-level option reaches every lane through the
	// shared recorder.
	sh, err := NewSharded[int](2, 64, WithOpLatency())
	if err != nil {
		t.Fatal(err)
	}
	h, ok := sh.Acquire()
	if !ok {
		t.Fatal("no lane")
	}
	for i := 0; i < ops; i++ {
		h.Enqueue(i)
		if _, ok := sh.Dequeue(); !ok {
			t.Fatal("sharded dequeue failed")
		}
	}
	h.Release()
	check("sharded", sh.Stats(), ops)

	// Batch ops are one sample per batch, not per item: the clock reads
	// amortize with the batch exactly like the tail publication.
	bq, _ := NewSPMC[int](128, WithOpLatency())
	bq.EnqueueBatch([]int{1, 2, 3, 4})
	dst := make([]int, 4)
	if n := bq.TryDequeueBatch(dst); n != 4 {
		t.Fatalf("batch dequeue took %d items", n)
	}
	bs := bq.Stats()
	if bs.EnqLatency.Count != 1 || bs.DeqLatency.Count != 1 {
		t.Fatalf("batch ops recorded enq=%d deq=%d samples, want 1 each",
			bs.EnqLatency.Count, bs.DeqLatency.Count)
	}
}
