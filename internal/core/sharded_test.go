package core

import (
	"sync"
	"testing"
)

func TestShardedBasic(t *testing.T) {
	s, err := NewSharded[uint64](4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lanes() != 4 || s.LaneCap() != 16 || s.Cap() != 64 {
		t.Fatalf("geometry: lanes=%d laneCap=%d cap=%d", s.Lanes(), s.LaneCap(), s.Cap())
	}
	p, ok := s.Acquire()
	if !ok {
		t.Fatal("Acquire failed on fresh queue")
	}
	for i := uint64(0); i < 10; i++ {
		p.Enqueue(i)
	}
	if s.Len() != 10 || s.LaneLen(p.Lane()) != 10 {
		t.Fatalf("Len=%d LaneLen=%d, want 10", s.Len(), s.LaneLen(p.Lane()))
	}
	for i := uint64(0); i < 10; i++ {
		v, ok := s.Dequeue()
		if !ok || v != i {
			t.Fatalf("got %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := s.TryDequeue(); ok {
		t.Fatal("TryDequeue on empty queue succeeded")
	}
	p.Release()
	s.Close()
	if _, ok := s.Dequeue(); ok {
		t.Fatal("Dequeue after close+drain succeeded")
	}
}

func TestShardedAcquireExhaustion(t *testing.T) {
	// 3 lanes grant at most 2 exclusive handles: lane 0 always stays
	// with the shared fallback Enqueue.
	s, err := NewSharded[int](3, 4)
	if err != nil {
		t.Fatal(err)
	}
	p1, ok1 := s.Acquire()
	p2, ok2 := s.Acquire()
	if !ok1 || !ok2 {
		t.Fatal("could not acquire two handles from three lanes")
	}
	if p1.Lane() == p2.Lane() || p1.Lane() == 0 || p2.Lane() == 0 {
		t.Fatalf("bad handle lanes %d, %d (lane 0 is the fallback lane)", p1.Lane(), p2.Lane())
	}
	if _, ok := s.Acquire(); ok {
		t.Fatal("acquired a third handle from three lanes (none left for the fallback path)")
	}
	p1.Release()
	p3, ok := s.Acquire()
	if !ok {
		t.Fatal("re-acquire after release failed")
	}
	if p3.Lane() != 1 {
		t.Fatalf("re-acquired lane %d, want 1", p3.Lane())
	}
	p2.Release()
	p3.Release()

	// A single-lane queue never grants handles: every producer must use
	// the shared fallback.
	s1, err := NewSharded[int](1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s1.Acquire(); ok {
		t.Fatal("single-lane queue granted an exclusive handle")
	}
}

// TestShardedFallbackEnqueue exercises the shared-lane fallback
// producer path with more producers than lanes: exactly-once delivery
// and per-producer FIFO must both hold (the fallback funnels every
// producer through lane 0, so each producer's items stay ordered).
func TestShardedFallbackEnqueue(t *testing.T) {
	const (
		producers = 6
		perProd   = 5000
	)
	s, err := NewSharded[uint64](2, 64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				s.Enqueue(uint64(p)<<32 | uint64(i))
			}
		}(p)
	}
	seen := make(map[uint64]bool, producers*perProd)
	last := make([]int64, producers)
	for p := range last {
		last[p] = -1
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(seen) < producers*perProd {
			if v, ok := s.Dequeue(); ok {
				if seen[v] {
					panic("duplicate item")
				}
				seen[v] = true
				p, sq := int(v>>32), int64(v&0xFFFFFFFF)
				if sq <= last[p] {
					panic("per-producer FIFO violated on the fallback path")
				}
				last[p] = sq
			}
		}
	}()
	wg.Wait()
	<-done
	if s.Len() != 0 {
		t.Fatalf("queue not drained: Len=%d", s.Len())
	}
}

// TestShardedConcurrent runs P handle producers against C batch
// consumers, checking exactly-once delivery and per-producer FIFO
// within each consumer's stream of batch runs.
func TestShardedConcurrent(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 50000
		batch     = 32
	)
	// producers+1 lanes: Acquire grants at most lanes-1 handles, so
	// every producer gets its own lane.
	s, err := NewSharded[uint64](producers+1, 128)
	if err != nil {
		t.Fatal(err)
	}
	var remaining sync.WaitGroup
	for p := 0; p < producers; p++ {
		remaining.Add(1)
		go func(p int) {
			defer remaining.Done()
			h, ok := s.Acquire()
			if !ok {
				panic("acquire failed with lanes == producers")
			}
			defer h.Release()
			vs := make([]uint64, batch)
			for sq := 0; sq < perProd; sq += batch {
				k := batch
				if perProd-sq < k {
					k = perProd - sq
				}
				for i := 0; i < k; i++ {
					vs[i] = uint64(p)<<32 | uint64(sq+i)
				}
				h.EnqueueBatch(vs[:k])
			}
		}(p)
	}
	go func() {
		remaining.Wait()
		s.Close()
	}()
	results := make([][]uint64, consumers)
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			buf := make([]uint64, batch)
			for {
				n, ok := s.DequeueBatch(buf)
				results[c] = append(results[c], buf[:n]...)
				if !ok {
					return
				}
			}
		}(c)
	}
	cwg.Wait()
	seen := make(map[uint64]int, producers*perProd)
	for c := range results {
		last := make([]int, producers)
		for i := range last {
			last[i] = -1
		}
		for _, v := range results[c] {
			seen[v]++
			p := int(v >> 32)
			sq := int(v & 0xFFFFFFFF)
			// Each lane run is contiguous FIFO; a consumer never sees a
			// producer's items out of order.
			if sq <= last[p] {
				t.Fatalf("consumer %d: producer %d seq %d after %d", c, p, sq, last[p])
			}
			last[p] = sq
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("got %d distinct items, want %d", len(seen), producers*perProd)
	}
	for v, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("item %#x seen %d times", v, cnt)
		}
	}
}

// TestShardedStress is the -race stress for the sharded queue: 4
// exclusive-lane producers plus one fallback producer against 4
// consumers mixing single and batch dequeues, >= 1M items total.
// Checks exactly-once delivery and per-producer ordering across the
// merged consumer streams.
func TestShardedStress(t *testing.T) {
	perProd := 250_000
	if testing.Short() {
		perProd = 10_000
	}
	const (
		producers = 4 // exclusive lanes; producer 4 uses the fallback path
		consumers = 4
		batch     = 16
	)
	s, err := NewSharded[uint64](producers+1, 256)
	if err != nil {
		t.Fatal(err)
	}
	var remaining sync.WaitGroup
	for p := 0; p < producers; p++ {
		remaining.Add(1)
		go func(p int) {
			defer remaining.Done()
			h, ok := s.Acquire()
			if !ok {
				panic("acquire failed with lanes == producers+1")
			}
			defer h.Release()
			vs := make([]uint64, batch)
			for sq := 0; sq < perProd; {
				if sq%3 == 0 { // mix single and batch enqueues
					h.Enqueue(uint64(p)<<32 | uint64(sq))
					sq++
					continue
				}
				k := batch
				if perProd-sq < k {
					k = perProd - sq
				}
				for i := 0; i < k; i++ {
					vs[i] = uint64(p)<<32 | uint64(sq+i)
				}
				h.EnqueueBatch(vs[:k])
				sq += k
			}
		}(p)
	}
	// One extra producer on the shared fallback lane (no handle).
	remaining.Add(1)
	go func() {
		defer remaining.Done()
		for sq := 0; sq < perProd; sq++ {
			s.Enqueue(uint64(producers)<<32 | uint64(sq))
		}
	}()
	go func() {
		remaining.Wait()
		s.Close()
	}()
	results := make([][]uint64, consumers)
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			buf := make([]uint64, batch)
			for n := 0; ; n++ {
				if n%2 == 0 { // mix single and batch dequeues
					v, ok := s.Dequeue()
					if !ok {
						return
					}
					results[c] = append(results[c], v)
					continue
				}
				k, ok := s.DequeueBatch(buf)
				results[c] = append(results[c], buf[:k]...)
				if !ok {
					return
				}
			}
		}(c)
	}
	cwg.Wait()
	total := (producers + 1) * perProd
	seen := make(map[uint64]int, total)
	for c := range results {
		last := make([]int, producers+1)
		for i := range last {
			last[i] = -1
		}
		for _, v := range results[c] {
			seen[v]++
			p := int(v >> 32)
			sq := int(v & 0xFFFFFFFF)
			if sq <= last[p] {
				t.Fatalf("consumer %d: producer %d seq %d after %d", c, p, sq, last[p])
			}
			last[p] = sq
		}
	}
	if len(seen) != total {
		t.Fatalf("got %d distinct items, want %d", len(seen), total)
	}
	for v, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("item %#x seen %d times", v, cnt)
		}
	}
}
