package core

import (
	"testing"
	"testing/quick"
)

func TestLayoutString(t *testing.T) {
	want := map[Layout]string{
		LayoutCompact:          "not-aligned",
		LayoutPadded:           "aligned",
		LayoutRandomized:       "randomized",
		LayoutPaddedRandomized: "both",
		Layout(200):            "Layout(200)",
	}
	for l, s := range want {
		if got := l.String(); got != s {
			t.Errorf("Layout(%d).String() = %q, want %q", l, got, s)
		}
	}
}

func TestLayoutPredicates(t *testing.T) {
	cases := []struct {
		l            Layout
		padded, rand bool
	}{
		{LayoutCompact, false, false},
		{LayoutPadded, true, false},
		{LayoutRandomized, false, true},
		{LayoutPaddedRandomized, true, true},
	}
	for _, c := range cases {
		if c.l.padded() != c.padded || c.l.randomized() != c.rand {
			t.Errorf("%v: padded=%v randomized=%v, want %v/%v",
				c.l, c.l.padded(), c.l.randomized(), c.padded, c.rand)
		}
	}
}

func TestNewIndexerErrors(t *testing.T) {
	for _, capacity := range []int{-1, 0, 1, 3, 5, 6, 7, 100, 1<<30 + 1, 1 << 31} {
		if _, err := NewIndexer(capacity, LayoutCompact, 24); err == nil {
			t.Errorf("NewIndexer(%d) succeeded, want error", capacity)
		}
	}
	for _, capacity := range []int{2, 4, 8, 64, 1024, 1 << 20, 1 << 30} {
		if _, err := NewIndexer(capacity, LayoutCompact, 24); err != nil {
			t.Errorf("NewIndexer(%d): %v", capacity, err)
		}
	}
}

func TestIndexerStride(t *testing.T) {
	cases := []struct {
		layout   Layout
		cellSize uintptr
		stride   uint64
	}{
		{LayoutCompact, 24, 1},
		{LayoutRandomized, 24, 1},
		{LayoutPadded, 24, 4},  // 4*24 = 96 >= 64+24: base-independent
		{LayoutPadded, 16, 5},  // 5*16 = 80 >= 64+16
		{LayoutPadded, 64, 2},  // 128 >= 64+64
		{LayoutPadded, 128, 2}, // 256 >= 64+128
		{LayoutPaddedRandomized, 24, 4},
	}
	for _, c := range cases {
		ix, err := NewIndexer(64, c.layout, c.cellSize)
		if err != nil {
			t.Fatalf("NewIndexer: %v", err)
		}
		if ix.stride != c.stride {
			t.Errorf("%v cellSize=%d: stride=%d, want %d", c.layout, c.cellSize, ix.stride, c.stride)
		}
		if got := ix.Slots(); got != 64*int(c.stride) {
			t.Errorf("%v cellSize=%d: slots=%d, want %d", c.layout, c.cellSize, got, 64*int(c.stride))
		}
		if ix.Capacity() != 64 {
			t.Errorf("capacity = %d, want 64", ix.Capacity())
		}
	}
}

// Padded layouts must never place two distinct logical cells on the
// same cache line, regardless of how the allocator aligned the array.
func TestIndexerPaddingSeparation(t *testing.T) {
	const cellSize = 24
	for _, layout := range []Layout{LayoutPadded, LayoutPaddedRandomized} {
		ix, err := NewIndexer(256, layout, cellSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range []uint64{0, 8, 16, 40, 56} { // any 8-aligned base
			lines := make(map[uint64]int64)
			for r := int64(0); r < 256; r++ {
				byteOff := base + ix.Phys(r)*cellSize
				first := byteOff / CacheLineSize
				last := (byteOff + cellSize - 1) / CacheLineSize
				for line := first; line <= last; line++ {
					if prev, dup := lines[line]; dup {
						t.Fatalf("%v base=%d: ranks %d and %d share cache line %d",
							layout, base, prev, r, line)
					}
					lines[line] = r
				}
			}
		}
	}
}

// The physical mapping must be a bijection over one lap for every
// layout and capacity: no two ranks within a lap may collide, and every
// slot group must be hit.
func TestIndexerBijection(t *testing.T) {
	for _, layout := range Layouts {
		for _, capacity := range []int{2, 4, 16, 32, 64, 256, 4096} {
			ix, err := NewIndexer(capacity, layout, 24)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[uint64]bool, capacity)
			for r := int64(0); r < int64(capacity); r++ {
				p := ix.Phys(r)
				if p >= uint64(ix.Slots()) {
					t.Fatalf("%v cap=%d: phys(%d)=%d out of range %d", layout, capacity, r, p, ix.Slots())
				}
				if p%ix.stride != 0 {
					t.Fatalf("%v cap=%d: phys(%d)=%d not stride-aligned", layout, capacity, r, p)
				}
				if seen[p] {
					t.Fatalf("%v cap=%d: phys collision at rank %d (slot %d)", layout, capacity, r, p)
				}
				seen[p] = true
			}
		}
	}
}

// Property: phys is lap-periodic — ranks N apart map to the same slot.
func TestIndexerLapPeriodicProperty(t *testing.T) {
	for _, layout := range Layouts {
		ix, err := NewIndexer(1024, layout, 24)
		if err != nil {
			t.Fatal(err)
		}
		f := func(rank uint32, laps uint8) bool {
			r := int64(rank)
			return ix.Phys(r) == ix.Phys(r+int64(laps)*1024)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", layout, err)
		}
	}
}

// The randomized layout must actually separate consecutive ranks: the
// paper wants consecutive cells 16 positions apart.
func TestIndexerRandomizationSeparates(t *testing.T) {
	ix, err := NewIndexer(1024, LayoutRandomized, 24)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 64; r++ {
		a, b := ix.Phys(r), ix.Phys(r+1)
		d := int64(b) - int64(a)
		if d < 0 {
			d = -d
		}
		if d < 16 && int64(b) != 0 { // wrap-around steps are fine
			t.Errorf("ranks %d,%d map to slots %d,%d (distance %d < 16)", r, r+1, a, b, d)
		}
	}
}

// Tiny capacities cannot rotate meaningfully; the randomized layout
// must degrade to the identity mapping rather than corrupt indexes.
func TestIndexerRandomizedTinyCapacity(t *testing.T) {
	for _, capacity := range []int{2, 4, 8, 16} {
		ix, err := NewIndexer(capacity, LayoutRandomized, 24)
		if err != nil {
			t.Fatal(err)
		}
		if ix.rot != 0 {
			t.Errorf("cap=%d: rot=%d, want 0", capacity, ix.rot)
		}
	}
	ix, err := NewIndexer(32, LayoutRandomized, 24)
	if err != nil {
		t.Fatal(err)
	}
	if ix.rot != rotBits {
		t.Errorf("cap=32: rot=%d, want %d", ix.rot, rotBits)
	}
}
