package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"ffq/internal/obs"
	"ffq/internal/spin"
)

// lane is one producer shard of the Sharded queue: an SPMC queue
// embedded by value (the lane array is a single allocation; a scan
// walks contiguous memory instead of chasing pointers) plus the
// ownership word producers claim it with. The trailing pad keeps the
// owner word off the next lane's first line.
//
//ffq:padded
type lane[T any] struct {
	q     SPMC[T]
	owner atomic.Int32 // 0 free, 1 held by a producer
	_     [CacheLineSize - 4]byte
}

// Sharded composes P per-producer FFQ^s lanes into an MPMC queue, the
// paper's Section III-C design point: instead of serializing all
// producers through one FFQ^m tail (a CAS state machine per cell), each
// producer owns a lane and keeps the wait-free single-producer enqueue
// path — no compare-and-swap, no shared tail, one plain store pair per
// item. Consumers scan the lanes from a rotating start index and claim
// resolved runs with TryDequeueBatch's single CAS per batch.
//
// Ordering: items from one producer (one lane) are FIFO; items from
// different producers are unordered relative to each other, exactly the
// guarantee a multi-producer queue's linearization order gives a
// consumer that cannot observe which producer enqueued first.
//
// Producers that want the fast path call Acquire for an exclusive lane
// handle; Enqueue on the queue itself funnels through the shared
// fallback lane (lane 0, never granted exclusively) with a transient
// owner claim per item — slower, but any number of producers can use
// it, and each still gets per-producer FIFO because all of its items
// travel the same lane.
//
//ffq:padded
type Sharded[T any] struct {
	lanes   []lane[T]
	laneCap int
	yieldTh int
	rec     *obs.Recorder
	// 48 bytes of read-only header above; pad to one full line.
	_ [CacheLineSize - 48]byte
	// rotor spreads consumers across lanes: each scan starts at the
	// next index, so lane 0 is not everyone's first stop. One
	// uncontended add per scan, amortized over the whole batch a scan
	// claims.
	rotor atomic.Uint64
	_     [CacheLineSize - 8]byte
	// held counts outstanding exclusive handles. Acquire caps it at
	// lanes-1 (lane 0 is never granted): with every lane exclusively
	// (hence indefinitely) held, the fallback Enqueue could never make
	// progress. Keeping lane 0 out of exclusive reach makes the
	// fallback deadlock-free no matter how long handles live, and
	// gives fallback producers a stable lane, which is what preserves
	// their per-producer FIFO order.
	held atomic.Int32
	_    [CacheLineSize - 4]byte
}

// NewSharded returns a queue of `lanes` shards holding laneCap items
// each (laneCap must be a power of two >= 2). Total capacity is
// lanes*laneCap. The options apply to every lane; an instrumentation
// recorder is shared by all lanes, so Stats aggregates the queue.
func NewSharded[T any](lanes, laneCap int, opts ...Option) (*Sharded[T], error) {
	if lanes < 1 {
		return nil, fmt.Errorf("core: sharded queue needs at least one lane, got %d", lanes)
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.rec = cfg.recorder()
	s := &Sharded[T]{lanes: make([]lane[T], lanes), laneCap: laneCap, yieldTh: cfg.yieldTh, rec: cfg.rec}
	for i := range s.lanes {
		if err := initSPMC(&s.lanes[i].q, laneCap, cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Lanes returns the number of producer lanes.
func (s *Sharded[T]) Lanes() int { return len(s.lanes) }

// LaneCap returns the capacity of one lane.
func (s *Sharded[T]) LaneCap() int { return s.laneCap }

// Cap returns the total capacity across all lanes.
func (s *Sharded[T]) Cap() int { return s.laneCap * len(s.lanes) }

// Len sums the instantaneous lengths of all lanes.
func (s *Sharded[T]) Len() int {
	n := 0
	for i := range s.lanes {
		n += s.lanes[i].q.Len()
	}
	return n
}

// LaneLen returns the instantaneous length of lane i.
func (s *Sharded[T]) LaneLen(i int) int { return s.lanes[i].q.Len() }

// LaneLens appends the per-lane depths to dst and returns it (a
// cold-path convenience for inspectors and reports).
func (s *Sharded[T]) LaneLens(dst []int) []int {
	for i := range s.lanes {
		dst = append(dst, s.lanes[i].q.Len())
	}
	return dst
}

// Gaps sums the skipped ranks across all lanes.
func (s *Sharded[T]) Gaps() int64 {
	var n int64
	for i := range s.lanes {
		n += s.lanes[i].q.Gaps()
	}
	return n
}

// Recorder returns the shared metrics recorder, or nil when the queue
// was built without instrumentation.
func (s *Sharded[T]) Recorder() *obs.Recorder { return s.rec }

// Stats snapshots the queue's aggregate instrumentation counters.
func (s *Sharded[T]) Stats() obs.Stats {
	st := s.rec.Snapshot()
	if s.rec == nil {
		st.GapsCreated = s.Gaps()
	}
	return st
}

// Producer is an exclusive handle on one lane: while held, Enqueue and
// EnqueueBatch run the wait-free single-producer path with no atomic
// read-modify-write at all. A handle must be used by one goroutine at
// a time; Release returns the lane to the pool (using a released
// handle panics).
type Producer[T any] struct {
	s  *Sharded[T]
	ln *lane[T]
	id int
}

// Acquire claims a free lane and returns its producer handle, or
// ok=false when no lane can be exclusively claimed. Lane 0 is never
// granted — it is the shared fallback Enqueue's lane, which would
// starve behind an indefinitely-held handle — so at most lanes-1
// handles are outstanding at once and a single-lane queue never grants
// any. Handles may be re-acquired after Release; the owner word's
// release/acquire pair orders the old holder's enqueues before the new
// holder's.
func (s *Sharded[T]) Acquire() (p *Producer[T], ok bool) {
	if int(s.held.Add(1)) >= len(s.lanes) {
		s.held.Add(-1)
		return nil, false
	}
	//ffq:ignore spin-backoff single bounded pass over the lane array; a failed CAS moves on to the next lane and the loop exits either way
	for i := 1; i < len(s.lanes); i++ {
		ln := &s.lanes[i]
		if ln.owner.CompareAndSwap(0, 1) {
			return &Producer[T]{s: s, ln: ln, id: i}, true
		}
	}
	// Every grantable owner word was (at least transiently) taken
	// during the scan; give the reservation back rather than spin.
	s.held.Add(-1)
	return nil, false
}

// Lane returns the index of the lane this handle owns.
func (p *Producer[T]) Lane() int { return p.id }

// Release returns the lane to the pool. The handle is dead afterwards.
func (p *Producer[T]) Release() {
	ln := p.ln
	s := p.s
	p.ln = nil
	ln.owner.Store(0)
	s.held.Add(-1)
}

// Enqueue inserts v on the owned lane (wait-free while the lane has a
// free slot).
//
//ffq:hotpath
func (p *Producer[T]) Enqueue(v T) { p.ln.q.Enqueue(v) }

// TryEnqueue inserts v if the owned lane's tail cell is free.
//
//ffq:hotpath
func (p *Producer[T]) TryEnqueue(v T) bool { return p.ln.q.TryEnqueue(v) }

// EnqueueBatch inserts every element of vs on the owned lane with one
// tail publication.
//
//ffq:hotpath
func (p *Producer[T]) EnqueueBatch(vs []T) { p.ln.q.EnqueueBatch(vs) }

// Enqueue inserts v through the shared fallback lane (lane 0, which
// Acquire never grants): the producer path when no exclusive handle is
// held. Each item costs one owner-word CAS (against other fallback
// producers only — never against consumers) around a TryEnqueue.
// Always using the same lane is what preserves per-producer FIFO for
// fallback producers — an item sent to whichever lane happened to be
// free could be dequeued before an earlier item still sitting in
// another lane. The claim wraps a TryEnqueue, not an Enqueue: a
// transient producer must not sit on the owner word rank-burning a
// full lane (that would both starve the other fallback producers and
// grow a gap run consumers then have to chase through); a full lane
// just means yield and let the consumers catch up.
//
//ffq:hotpath
func (s *Sharded[T]) Enqueue(v T) {
	ln := &s.lanes[0]
	waited := false
	stalled := false
	var waitStart, opStart time.Time
	if s.rec != nil {
		opStart = s.rec.OpStart()
	}
	for spins := 0; ; spins++ {
		if ln.owner.CompareAndSwap(0, 1) {
			ok := ln.q.TryEnqueue(v)
			ln.owner.Store(0)
			if ok {
				if s.rec != nil {
					if waited {
						s.rec.EndWait(obs.RoleProducer, -1, time.Since(waitStart), stalled)
					}
					s.rec.EnqueueDone(opStart)
				}
				return
			}
		}
		if s.rec != nil {
			if !waited {
				waited = true
				waitStart = time.Now()
			}
			s.rec.FullSpin()
			stalled = s.rec.StallCheck(obs.RoleProducer, -1, waitStart, spins+1, stalled)
		}
		spin.RetryYieldEvery(spins, s.yieldTh)
	}
}

// Dequeue removes an item from any lane, blocking (spinning, then
// yielding) while all lanes are empty. It returns ok=false only after
// Close, once every published item has been handed to some consumer.
// Safe for any number of concurrent consumers.
//
//ffq:hotpath
func (s *Sharded[T]) Dequeue() (v T, ok bool) {
	waited := false
	stalled := false
	var waitStart, opStart time.Time
	if s.rec != nil {
		opStart = s.rec.OpStart()
	}
	for spins := 0; ; spins++ {
		// Read closed before scanning: if it was set before an all-empty
		// scan, no lane can receive items during the scan, so all-empty
		// means drained (or raced items went to other consumers).
		closed := s.Closed()
		start := int(s.rotor.Add(1))
		for i := 0; i < len(s.lanes); i++ {
			ln := &s.lanes[(start+i)%len(s.lanes)]
			if v, ok := ln.q.TryDequeue(); ok {
				if s.rec != nil {
					if waited {
						s.rec.EndWait(obs.RoleConsumer, -1, time.Since(waitStart), stalled)
					}
					s.rec.DequeueDone(opStart)
				}
				return v, true
			}
		}
		if closed {
			var zero T
			return zero, false
		}
		if s.rec != nil {
			if !waited {
				waited = true
				waitStart = time.Now()
			}
			s.rec.EmptySpin()
			stalled = s.rec.StallCheck(obs.RoleConsumer, -1, waitStart, spins+1, stalled)
		}
		spin.RetryYieldEvery(spins, s.yieldTh)
	}
}

// TryDequeue removes an item from the first non-empty lane of one scan
// round, without blocking and without parking a rank anywhere (each
// lane probe is the claim-on-proof TryDequeue). ok=false means every
// lane was observed empty.
//
//ffq:hotpath
func (s *Sharded[T]) TryDequeue() (v T, ok bool) {
	start := int(s.rotor.Add(1))
	for i := 0; i < len(s.lanes); i++ {
		ln := &s.lanes[(start+i)%len(s.lanes)]
		if v, ok := ln.q.TryDequeue(); ok {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// DequeueBatch fills dst from the lanes, blocking until at least one
// item arrives or the queue is closed and drained (then 0, false —
// sharding has no claimed-run to cut short, so the closed return
// carries no items). One scan may take items from several lanes; each
// lane's contribution is one contiguous FIFO run.
//
//ffq:hotpath
func (s *Sharded[T]) DequeueBatch(dst []T) (n int, ok bool) {
	if len(dst) == 0 {
		return 0, true
	}
	waited := false
	stalled := false
	var waitStart time.Time
	for spins := 0; ; spins++ {
		closed := s.Closed()
		if n := s.scanBatch(dst); n > 0 {
			if s.rec != nil && waited {
				s.rec.EndWait(obs.RoleConsumer, -1, time.Since(waitStart), stalled)
			}
			return n, true
		}
		if closed {
			return 0, false
		}
		if s.rec != nil {
			if !waited {
				waited = true
				waitStart = time.Now()
			}
			s.rec.EmptySpin()
			stalled = s.rec.StallCheck(obs.RoleConsumer, -1, waitStart, spins+1, stalled)
		}
		spin.RetryYieldEvery(spins, s.yieldTh)
	}
}

// TryDequeueBatch fills dst from one scan round over the lanes without
// blocking, returning the number of items taken (0 when every lane was
// observed empty).
//
//ffq:hotpath
func (s *Sharded[T]) TryDequeueBatch(dst []T) int { return s.scanBatch(dst) }

// scanBatch walks all lanes once from the rotating start index,
// claiming a resolved run from each (one CAS per non-empty lane) until
// dst is full.
//
//ffq:hotpath
func (s *Sharded[T]) scanBatch(dst []T) int {
	start := int(s.rotor.Add(1))
	n := 0
	for i := 0; i < len(s.lanes) && n < len(dst); i++ {
		ln := &s.lanes[(start+i)%len(s.lanes)]
		n += ln.q.TryDequeueBatch(dst[n:])
	}
	return n
}

// Close marks every lane closed. Consumers blocked in Dequeue or
// DequeueBatch return ok=false once the queue drains. As with the
// single-lane queue, Close must happen after the final Enqueue on
// every lane (release all handles, or otherwise order the producers'
// last operations before the close).
func (s *Sharded[T]) Close() {
	for i := range s.lanes {
		s.lanes[i].q.Close()
	}
}

// Closed reports whether every lane is closed.
func (s *Sharded[T]) Closed() bool {
	for i := range s.lanes {
		if !s.lanes[i].q.Closed() {
			return false
		}
	}
	return true
}
