package core

import (
	"time"

	"ffq/internal/obs"
)

// Batch operations on the bounded queues. The consumer side mirrors
// the segmented queues' contiguous-run semantics: one head.Add(k)
// claims k consecutive ranks, amortizing the only consumer-side atomic
// read-modify-write across the whole batch. Unlike segq, the bounded
// rank space has gaps (a producer skips ranks whose cell is still
// occupied), so a claimed run may resolve to fewer than k items: ranks
// that were gap-skipped simply contribute nothing and the batch comes
// back partial with ok=true. ok=false keeps segq's meaning — the queue
// is closed and the run hit ranks beyond the final tail (closed and
// drained); the n items before that point are still delivered.

// EnqueueBatch inserts every element of vs in order, equivalent to a
// loop of Enqueue but publishing the tail index once per batch instead
// of once per item (consumers handshake on the cells' rank fields, so
// deferring the tail store hides nothing from them; only the
// tail-bounded TryDequeueBatch sees items a batch late, which merely
// understates availability). Must be called by the single producer
// goroutine only. With WithOpLatency the whole batch is one sample in
// the enqueue histogram — batching amortizes the clock reads exactly
// like it amortizes the tail publication.
//
//ffq:hotpath
func (q *SPMC[T]) EnqueueBatch(vs []T) {
	if len(vs) == 0 {
		return
	}
	t := q.tail.Load()
	skips := 0
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for i := 0; i < len(vs); {
		c := &q.cells[q.ix.Phys(t)]
		if c.rank.Load() >= 0 {
			// Occupied by an undequeued item: skip the rank and announce
			// the gap, exactly as Enqueue. The tail store stays on this
			// path so closed-queue dead-rank checks see skipped ranks.
			c.gap.Store(t)
			t++
			q.tail.Store(t)
			q.gaps.Add(1)
			skips++
			if q.rec != nil {
				if skips == 1 {
					waitStart = time.Now()
				}
				q.rec.GapCreated()
				q.rec.FullSpin()
				stalled = q.rec.StallCheck(obs.RoleProducer, t, waitStart, skips, stalled)
				if backoff(skips<<4, q.yieldTh) {
					q.rec.ProducerYield()
				}
			} else {
				backoff(skips<<4, q.yieldTh)
			}
			continue
		}
		c.data = vs[i]
		c.rank.Store(t)
		t++
		i++
	}
	q.tail.Store(t)
	if q.rec != nil {
		q.rec.EnqueueN(len(vs))
		q.rec.ObserveBatch(len(vs))
		if skips > 0 {
			q.rec.EndWait(obs.RoleProducer, t, time.Since(waitStart), stalled)
		}
		q.rec.EnqueueDone(opStart)
	}
}

// DequeueBatch removes up to len(dst) items in one rank reservation: a
// single fetch-and-add claims the contiguous run [head, head+k). Every
// rank of the run is resolved in order — published ranks deliver their
// item (blocking for the producer exactly like Dequeue), gap-skipped
// ranks deliver nothing, so n < len(dst) with ok=true means the run
// crossed gaps. ok=false keeps the segq contract: the queue is closed
// and the run reached ranks beyond the final tail; the n items claimed
// before that point are still returned. Safe for any number of
// concurrent consumers, but a batch claims its ranks immediately: a
// batch blocking on a slow producer delays later-ranked consumers.
//
//ffq:hotpath
func (q *SPMC[T]) DequeueBatch(dst []T) (n int, ok bool) {
	k := int64(len(dst))
	if k == 0 {
		return 0, true
	}
	start := q.head.Add(k) - k
	waited := false
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for r := start; r < start+k; r++ {
		c := &q.cells[q.ix.Phys(r)]
		spins := 0
		for {
			if c.rank.Load() == r {
				// Our rank: consume exactly as Dequeue does.
				dst[n] = c.data
				var zero T
				c.data = zero
				c.rank.Store(freeRank)
				n++
				break
			}
			if c.gap.Load() >= r && c.rank.Load() != r {
				// The producer skipped this rank; the run shrinks by one
				// (no re-acquisition: the claim is already contiguous).
				if q.rec != nil {
					q.rec.GapSkipped()
				}
				break
			}
			if q.closed.Load() && r >= q.tail.Load() {
				// Dead rank: the final tail is behind it, so every
				// remaining rank of the run is dead too.
				q.finishBatch(n, waited, waitStart, stalled, opStart)
				return n, false
			}
			spins++
			if q.rec != nil {
				if !waited {
					waited = true
					waitStart = time.Now()
				}
				q.rec.EmptySpin()
				stalled = q.rec.StallCheck(obs.RoleConsumer, r, waitStart, spins, stalled)
				if backoff(spins, q.yieldTh) {
					q.rec.ConsumerYield()
				}
			} else {
				backoff(spins, q.yieldTh)
			}
		}
	}
	q.finishBatch(n, waited, waitStart, stalled, opStart)
	return n, true
}

// finishBatch records the consumer-side batch counters; a batch that
// delivered items is one sample in the dequeue-latency histogram.
//
//ffq:hotpath
func (q *SPMC[T]) finishBatch(n int, waited bool, waitStart time.Time, stalled bool, opStart time.Time) {
	if q.rec != nil {
		q.rec.DequeueN(n)
		q.rec.ObserveBatch(n)
		if waited {
			q.rec.EndWait(obs.RoleConsumer, -1, time.Since(waitStart), stalled)
		}
		if n > 0 {
			q.rec.DequeueDone(opStart)
		}
	}
}

// TryDequeueBatch removes up to len(dst) ready items without blocking,
// claiming a whole resolved run with one compare-and-swap. The
// producer stores the tail index only after the cell at each prior
// rank is resolved (published or gap-marked), so every rank below the
// loaded tail is settled: the CAS head -> head+m claims m ranks that
// can be consumed without any waiting, and a failed CAS leaves no
// claim behind. Returns the number of items delivered; 0 means the
// queue was empty (nothing below the tail remained unclaimed). A run
// that resolves to gaps only is retried rather than reported as empty:
// a producer that circled a full queue leaves long gap runs between
// the head and its items, and a 0 return here would make callers back
// off exactly when they must chase the head through those gaps at full
// speed. Safe for any number of concurrent consumers, mixed freely
// with Dequeue, TryDequeue and DequeueBatch. This is the lane-scan
// primitive of the sharded MPMC queue: a consumer probing an idle lane
// must not park a rank there the way Dequeue's unconditional
// fetch-and-add would.
//
//ffq:hotpath
func (q *SPMC[T]) TryDequeueBatch(dst []T) int {
	k := int64(len(dst))
	if k == 0 {
		return 0
	}
	var opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	//ffq:ignore spin-backoff every iteration advances head past claimed ranks (ours or another consumer's), which is global progress
	for {
		h := q.head.Load()
		avail := q.tail.Load() - h
		if avail <= 0 {
			return 0
		}
		m := avail
		if k < m {
			m = k
		}
		if !q.head.CompareAndSwap(h, h+m) {
			continue
		}
		n := 0
		//ffq:ignore spin-backoff bounded walk over the m claimed ranks; every rank below tail is already resolved, so no iteration waits
		for r := h; r < h+m; r++ {
			c := &q.cells[q.ix.Phys(r)]
			if c.rank.Load() == r {
				dst[n] = c.data
				var zero T
				c.data = zero
				c.rank.Store(freeRank)
				n++
				continue
			}
			// Resolved as a gap before the tail passed it (the producer
			// never rewrites a published cell, and only this claim may
			// consume rank r, so a non-matching rank can only mean the
			// rank was skipped).
			if q.rec != nil {
				q.rec.GapSkipped()
			}
		}
		if n > 0 {
			if q.rec != nil {
				q.rec.DequeueN(n)
				q.rec.ObserveBatch(n)
				q.rec.DequeueDone(opStart)
			}
			return n
		}
		// The whole run was gaps: keep claiming toward the items behind
		// them instead of reporting empty.
	}
}

// EnqueueBatch inserts every element of vs, claiming len(vs)
// contiguous ranks with a single tail.Add and publishing each with the
// usual per-cell protocol. Ranks that die under the claim (a gap
// announcement overtook them — only possible when the queue runs full)
// leave their items pending, and the leftover suffix is re-claimed as
// a new contiguous run, so per-producer FIFO order is preserved; only
// contiguity in the global rank order is lost, and only under a full
// queue. Safe for any number of concurrent producers.
//
//ffq:hotpath
func (q *MPMC[T]) EnqueueBatch(vs []T) {
	if len(vs) == 0 {
		return
	}
	next := 0 // vs[:next] is published; vs[next:] still needs a rank
	rounds := 0
	waited := false
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for next < len(vs) {
		if rounds > 0 {
			// The previous run lost ranks to gaps: the queue is full or
			// nearly so. Back off before burning more ranks (see Enqueue).
			if q.rec != nil {
				if !waited {
					waited = true
					waitStart = time.Now()
				}
				q.rec.FullSpin()
				stalled = q.rec.StallCheck(obs.RoleProducer, -1, waitStart, rounds, stalled)
				if backoff(rounds<<4, q.yieldTh) {
					q.rec.ProducerYield()
				}
			} else {
				backoff(rounds<<4, q.yieldTh)
			}
		}
		k := int64(len(vs) - next)
		start := q.tail.Add(k) - k
	ranks:
		for r := start; r < start+k; r++ {
			c := &q.cells[q.ix.Phys(r)]
			my := q.lapOf(r)
			spins := 0
			for {
				s := c.state.Load()
				r32, g32 := mpmcUnpack(s)
				if g32 >= my {
					// Rank r is dead; vs[next] stays pending and the next
					// rank of the run tries to take it (order preserved:
					// pending items only ever move to later ranks).
					continue ranks
				}
				switch {
				case r32 == mpmcLapFree:
					if c.state.CompareAndSwap(s, mpmcPack(mpmcLapClaim, g32)) {
						c.data = vs[next]
						c.state.Store(mpmcPack(my, g32))
						next++
						continue ranks
					}
				case r32 == mpmcLapClaim:
					// Another producer is mid-publish on an older rank.
					spins++
					if q.rec != nil {
						if !waited {
							waited = true
							waitStart = time.Now()
						}
						q.rec.FullSpin()
						stalled = q.rec.StallCheck(obs.RoleProducer, r, waitStart, spins, stalled)
						if backoff(spins, q.yieldTh) {
							q.rec.ProducerYield()
						}
					} else {
						backoff(spins, q.yieldTh)
					}
				default:
					// Occupied: announce the gap, killing our own rank
					// (Algorithm 2, line 8); the g32 >= my re-check exits.
					if c.state.CompareAndSwap(s, mpmcPack(r32, my)) {
						q.gaps.Add(1)
						if q.rec != nil {
							q.rec.GapCreated()
						}
					}
				}
			}
		}
		rounds++
	}
	if q.rec != nil {
		q.rec.EnqueueN(len(vs))
		q.rec.ObserveBatch(len(vs))
		if waited {
			q.rec.EndWait(obs.RoleProducer, -1, time.Since(waitStart), stalled)
		}
		q.rec.EnqueueDone(opStart)
	}
}

// DequeueBatch removes up to len(dst) items in one rank reservation;
// the contract is SPMC.DequeueBatch's: one head.Add claims the run,
// gap-skipped ranks shrink the batch (ok=true), and ok=false means
// closed and drained with the n prior items still delivered. Safe for
// any number of concurrent consumers.
//
//ffq:hotpath
func (q *MPMC[T]) DequeueBatch(dst []T) (n int, ok bool) {
	k := int64(len(dst))
	if k == 0 {
		return 0, true
	}
	start := q.head.Add(k) - k
	waited := false
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for r := start; r < start+k; r++ {
		c := &q.cells[q.ix.Phys(r)]
		my := q.lapOf(r)
		spins := 0
		for {
			s := c.state.Load()
			r32, g32 := mpmcUnpack(s)
			if r32 == my {
				// Our item: read, then release preserving the gap half
				// (a producer may be announcing a gap concurrently).
				v := c.data
				var zero T
				c.data = zero
				//ffq:ignore spin-backoff a failed release CAS means a producer just wrote the gap half; interference is bounded by one concurrent gap announcement
				for !c.state.CompareAndSwap(s, mpmcPack(mpmcLapFree, g32)) {
					s = c.state.Load()
					_, g32 = mpmcUnpack(s)
				}
				dst[n] = v
				n++
				break
			}
			if g32 >= my {
				// Skipped rank: the run shrinks by one.
				if q.rec != nil {
					q.rec.GapSkipped()
				}
				break
			}
			if q.closed.Load() && r >= q.tail.Load() {
				q.finishBatch(n, waited, waitStart, stalled, opStart)
				return n, false
			}
			spins++
			if q.rec != nil {
				if !waited {
					waited = true
					waitStart = time.Now()
				}
				q.rec.EmptySpin()
				stalled = q.rec.StallCheck(obs.RoleConsumer, r, waitStart, spins, stalled)
				if backoff(spins, q.yieldTh) {
					q.rec.ConsumerYield()
				}
			} else {
				backoff(spins, q.yieldTh)
			}
		}
	}
	q.finishBatch(n, waited, waitStart, stalled, opStart)
	return n, true
}

// finishBatch records the consumer-side batch counters; a batch that
// delivered items is one sample in the dequeue-latency histogram.
//
//ffq:hotpath
func (q *MPMC[T]) finishBatch(n int, waited bool, waitStart time.Time, stalled bool, opStart time.Time) {
	if q.rec != nil {
		q.rec.DequeueN(n)
		q.rec.ObserveBatch(n)
		if waited {
			q.rec.EndWait(obs.RoleConsumer, -1, time.Since(waitStart), stalled)
		}
		if n > 0 {
			q.rec.DequeueDone(opStart)
		}
	}
}
