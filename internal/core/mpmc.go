package core

import (
	"sync/atomic"
	"time"
	"unsafe"

	"ffq/internal/obs"
)

// FFQ^m (Algorithm 2) updates the cell's rank and gap fields with a
// 128-bit double-compare-and-set. Go has no 128-bit CAS, so we emulate
// it exactly by shrinking both fields to 32 bits and packing them into
// one uint64 updated with CompareAndSwapUint64.
//
// The shrink is lossless for the algorithm: a cell at index i is only
// ever visited by ranks r with r mod N == i, so storing the lap number
// r / N (= r >> logN) preserves every comparison Algorithm 2 performs
// (they are always between ranks that map to the same cell). Laps are
// stored offset by +1 so that 0 can serve as "no gap"; the two largest
// 32-bit values encode the paper's special rank values -1 (free) and
// -2 (claimed by a producer that has not yet published its data).
//
// The packed word is [rank lap : 32][gap lap : 32].
const (
	mpmcLapFree  = 0xFFFFFFFF // rank field: cell holds no item (paper's -1)
	mpmcLapClaim = 0xFFFFFFFE // rank field: producer mid-publish (paper's -2)
	mpmcMaxLap   = 0xFFFFFFFD // largest storable lap+1 value
	mpmcNoGap    = 0          // gap field: no rank skipped here yet
)

// mpmcPack builds the packed state word from its two lap halves.
//
//ffq:packhelper
func mpmcPack(rank32, gap32 uint32) uint64 {
	return uint64(rank32)<<32 | uint64(gap32)
}

// mpmcUnpack splits the packed state word into its two lap halves.
//
//ffq:packhelper
func mpmcUnpack(s uint64) (rank32, gap32 uint32) {
	return uint32(s >> 32), uint32(s)
}

// mcell is one slot of the MPMC array: the packed (rank, gap) state
// word plus the plain data field.
type mcell[T any] struct {
	state atomic.Uint64
	data  T
}

// MPMC is the paper's FFQ^m (Algorithm 2): a bounded FIFO queue for
// multiple producers and multiple consumers.
//
// Progress: both operations are lock-free under the paper's
// assumptions (the queue has free slots; no producer stalls forever
// between claiming a cell and publishing into it). A producer that
// stops mid-publish blocks consumers of that rank, exactly as the
// paper discusses at the end of Section III-B.
//
// The queue supports at most 2^32-3 laps, i.e. (2^32-3) x capacity
// operations over its lifetime; exceeding that panics. At one billion
// operations per second on a 4096-entry queue that is ~500 hours.
//
//ffq:padded
type MPMC[T any] struct {
	ix      Indexer
	logN    uint
	layout  Layout
	yieldTh int
	// rec is nil unless WithInstrumentation/WithRecorder was given;
	// every path checks it before recording, so the disabled queue
	// pays one predicted branch per operation.
	rec    *obs.Recorder
	cells  []mcell[T]
	_      [CacheLineSize]byte
	head   atomic.Int64
	_      [CacheLineSize]byte
	tail   atomic.Int64
	_      [CacheLineSize]byte
	closed atomic.Bool
	_      [CacheLineSize - 4]byte
	// gaps counts successful gap announcements; see SPMC.Gaps.
	gaps atomic.Int64
	// 24 extra bytes round the struct to a whole number of lines (the
	// header fields above the first pad are not line-sized).
	_ [CacheLineSize - 8 + 24]byte
}

// NewMPMC returns an MPMC queue with the given power-of-two capacity.
func NewMPMC[T any](capacity int, opts ...Option) (*MPMC[T], error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.rec = cfg.recorder()
	ix, err := NewIndexer(capacity, cfg.layout, unsafe.Sizeof(mcell[T]{}))
	if err != nil {
		return nil, err
	}
	q := &MPMC[T]{ix: ix, logN: ix.logN, layout: cfg.layout, yieldTh: cfg.yieldTh, rec: cfg.rec, cells: make([]mcell[T], ix.Slots())}
	init := mpmcPack(mpmcLapFree, mpmcNoGap)
	for i := range q.cells {
		q.cells[i].state.Store(init)
	}
	return q, nil
}

// lapOf maps a rank to its stored (offset-by-one) lap number.
func (q *MPMC[T]) lapOf(rank int64) uint32 {
	lap := uint64(rank) >> q.logN
	if lap >= mpmcMaxLap {
		panic("ffq: MPMC rank space exhausted (2^32-3 laps)")
	}
	return uint32(lap) + 1
}

// Cap returns the logical capacity of the queue.
func (q *MPMC[T]) Cap() int { return q.ix.Capacity() }

// Layout returns the memory layout the queue was built with.
func (q *MPMC[T]) Layout() Layout { return q.layout }

// Len returns an instantaneous approximation of the number of enqueued
// items.
func (q *MPMC[T]) Len() int {
	n := q.tail.Load() - q.head.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Enqueue inserts v at the tail of the queue. Safe for concurrent use
// by any number of producers. Lock-free while the queue has free
// slots; spins when full.
//
//ffq:hotpath
func (q *MPMC[T]) Enqueue(v T) {
	skips := 0
	waited := false
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for {
		if skips > 0 {
			// The previous rank died (the cell was occupied or a gap
			// overtook us): the queue is full or nearly so. Back off
			// before burning another rank, otherwise producers create
			// dead ranks at fetch-and-add speed and consumers, which
			// must skip each dead rank individually, can never catch
			// up. This path is never taken while the queue has slack,
			// so it does not affect the fast path the paper measures.
			if q.rec != nil {
				q.rec.FullSpin()
				stalled = q.rec.StallCheck(obs.RoleProducer, -1, waitStart, skips, stalled)
				if backoff(skips<<4, q.yieldTh) {
					q.rec.ProducerYield()
				}
			} else {
				backoff(skips<<4, q.yieldTh)
			}
		}
		// Acquire a unique rank (Algorithm 2, line 4).
		rank := q.tail.Add(1) - 1
		c := &q.cells[q.ix.Phys(rank)]
		my := q.lapOf(rank)
		spins := 0
		for {
			s := c.state.Load()
			r32, g32 := mpmcUnpack(s)
			if g32 >= my {
				// A gap at or after our rank was announced: our rank
				// is dead, acquire a new one (line 6 exit).
				skips++
				if q.rec != nil && !waited {
					waited = true
					waitStart = time.Now()
				}
				break
			}
			switch {
			case r32 == mpmcLapFree:
				// Free cell: claim it with the emulated DCAS so that
				// no concurrent gap announcement slips past us
				// (Algorithm 2, line 9: <-1,g> -> <-2,g>).
				if c.state.CompareAndSwap(s, mpmcPack(mpmcLapClaim, g32)) {
					c.data = v
					// Publish. A plain store is sufficient: producers
					// only write the gap half of cells whose rank is
					// >= 0, and no consumer matches lap -2, so nobody
					// else writes this word while we hold the claim.
					c.state.Store(mpmcPack(my, g32))
					if q.rec != nil {
						q.rec.Enqueue()
						if waited {
							q.rec.EndWait(obs.RoleProducer, rank, time.Since(waitStart), stalled)
						}
						q.rec.EnqueueDone(opStart)
					}
					return
				}
			case r32 == mpmcLapClaim:
				// Another producer is mid-publish on an older rank;
				// wait for it (this is why FFQ^m is not wait-free).
				spins++
				if q.rec != nil {
					if !waited {
						waited = true
						waitStart = time.Now()
					}
					q.rec.FullSpin()
					stalled = q.rec.StallCheck(obs.RoleProducer, rank, waitStart, spins, stalled)
					if backoff(spins, q.yieldTh) {
						q.rec.ProducerYield()
					}
				} else {
					backoff(spins, q.yieldTh)
				}
			default:
				// Occupied by an undequeued item: skip our rank by
				// announcing the gap, preserving the rank half
				// (Algorithm 2, line 8: <r,g> -> <r,rank>). Success
				// makes g32 >= my on the next iteration, which exits
				// the inner loop; failure re-reads and retries.
				if c.state.CompareAndSwap(s, mpmcPack(r32, my)) {
					q.gaps.Add(1)
					if q.rec != nil {
						q.rec.GapCreated()
					}
				}
			}
		}
	}
}

// Dequeue removes and returns the item at the head of the queue,
// blocking while it is empty. It returns ok=false only after Close has
// been called and all items have been handed out. Safe for concurrent
// use by any number of consumers.
//
//ffq:hotpath
func (q *MPMC[T]) Dequeue() (v T, ok bool) {
	rank := q.head.Add(1) - 1
	c := &q.cells[q.ix.Phys(rank)]
	my := q.lapOf(rank)
	spins := 0
	waited := false
	stalled := false
	var waitStart, opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	for {
		s := c.state.Load()
		r32, g32 := mpmcUnpack(s)
		if r32 == my {
			// Our item. Read the data, then release the cell with a
			// CAS that preserves the gap half (a producer may be
			// concurrently announcing a gap in it).
			v = c.data
			var zero T
			c.data = zero
			//ffq:ignore spin-backoff a failed release CAS means a producer just wrote the gap half; interference is bounded by one concurrent gap announcement
			for !c.state.CompareAndSwap(s, mpmcPack(mpmcLapFree, g32)) {
				s = c.state.Load()
				_, g32 = mpmcUnpack(s)
			}
			if q.rec != nil {
				q.rec.Dequeue()
				if waited {
					q.rec.EndWait(obs.RoleConsumer, rank, time.Since(waitStart), stalled)
				}
				q.rec.DequeueDone(opStart)
			}
			return v, true
		}
		if g32 >= my {
			// The packed load is an atomic snapshot of (rank, gap), so
			// r32 != my here is already guaranteed: this rank was
			// skipped. Acquire a new one (Algorithm 1, lines 29-31).
			rank = q.head.Add(1) - 1
			c = &q.cells[q.ix.Phys(rank)]
			my = q.lapOf(rank)
			spins = 0
			if q.rec != nil {
				q.rec.GapSkipped()
			}
			continue
		}
		if q.closed.Load() && rank >= q.tail.Load() {
			var zero T
			return zero, false
		}
		spins++
		if q.rec != nil {
			if !waited {
				waited = true
				waitStart = time.Now()
			}
			q.rec.EmptySpin()
			stalled = q.rec.StallCheck(obs.RoleConsumer, rank, waitStart, spins, stalled)
			if backoff(spins, q.yieldTh) {
				q.rec.ConsumerYield()
			}
		} else {
			backoff(spins, q.yieldTh)
		}
	}
}

// TryDequeue removes the head item if one is ready, without blocking
// and without burning a rank: the head counter is advanced with a
// compare-and-swap only once the head cell is known to hold its item
// or to have been gap-skipped, so a false return leaves no claim
// behind. ok=false means no item was ready (empty, a producer is
// mid-publish on the head rank, or closed and drained). Safe for any
// number of concurrent consumers, mixed freely with Dequeue.
//
//ffq:hotpath
func (q *MPMC[T]) TryDequeue() (v T, ok bool) {
	//ffq:ignore spin-backoff every iteration either returns or retries after another consumer advanced head, which is global progress
	for {
		h := q.head.Load()
		c := &q.cells[q.ix.Phys(h)]
		my := q.lapOf(h)
		s := c.state.Load()
		r32, g32 := mpmcUnpack(s)
		if r32 == my {
			if !q.head.CompareAndSwap(h, h+1) {
				continue // another consumer claimed rank h first
			}
			// Winning the CAS makes rank h exclusively ours (head is
			// monotonic, so nobody consumed h before us), and the cell
			// held our lap at the load above; producers never rewrite a
			// published cell. Consume and release exactly as Dequeue
			// does, preserving the gap half.
			v = c.data
			var zero T
			c.data = zero
			//ffq:ignore spin-backoff a failed release CAS means a producer just wrote the gap half; interference is bounded by one concurrent gap announcement
			for !c.state.CompareAndSwap(s, mpmcPack(mpmcLapFree, g32)) {
				s = c.state.Load()
				_, g32 = mpmcUnpack(s)
			}
			if q.rec != nil {
				q.rec.Dequeue()
			}
			return v, true
		}
		if g32 >= my {
			// Rank h was skipped by a producer (the packed load is an
			// atomic snapshot, so r32 != my is already guaranteed).
			// Discard it and inspect the next rank.
			if q.head.CompareAndSwap(h, h+1) {
				if q.rec != nil {
					q.rec.GapSkipped()
				}
			}
			continue
		}
		// Not published yet (free, or a producer holds the claim mark
		// mid-publish): nothing ready at the head.
		var zero T
		return zero, false
	}
}

// Gaps returns the number of successful gap announcements made by
// producers; see SPMC.Gaps.
func (q *MPMC[T]) Gaps() int64 { return q.gaps.Load() }

// Recorder returns the queue's attached metrics recorder, or nil when
// the queue was built without instrumentation.
func (q *MPMC[T]) Recorder() *obs.Recorder { return q.rec }

// Stats snapshots the queue's instrumentation counters. Without
// instrumentation only the always-on gap counter is populated.
func (q *MPMC[T]) Stats() obs.Stats {
	s := q.rec.Snapshot()
	if q.rec == nil {
		s.GapsCreated = q.gaps.Load()
	}
	return s
}

// Close marks the queue closed. It must be called only after every
// producer's final Enqueue has returned; consumers then drain the
// remaining items and receive ok=false.
func (q *MPMC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
func (q *MPMC[T]) Closed() bool { return q.closed.Load() }
