// Package chanq wraps a buffered Go channel in the module's common
// queue interface. It is not a baseline from the paper; it is included
// because a Go reader's first question about any Go queue library is
// "how does it compare to a channel?".
package chanq

// Queue is a bounded MPMC FIFO queue backed by a buffered channel.
type Queue struct {
	ch chan uint64
}

// New returns a queue with the given capacity.
func New(capacity int) *Queue {
	return &Queue{ch: make(chan uint64, capacity)}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return cap(q.ch) }

// Enqueue inserts v, blocking while the queue is full.
func (q *Queue) Enqueue(v uint64) { q.ch <- v }

// TryEnqueue inserts v, reporting false if the queue is full.
func (q *Queue) TryEnqueue(v uint64) bool {
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// Dequeue removes the head item; ok=false if the queue was observed
// empty.
func (q *Queue) Dequeue() (uint64, bool) {
	select {
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}
