package chanq_test

import (
	"testing"

	"ffq/internal/chanq"
	"ffq/internal/queue"
	"ffq/internal/queuetest"
)

func factory() queue.Factory {
	return queue.Factory{
		Name: "chan",
		New: func(capacity, _ int) queue.Shared {
			return queue.SelfRegistering{Q: chanq.New(capacity)}
		},
	}
}

func TestSequential(t *testing.T) {
	queuetest.Sequential(t, factory(), queuetest.DefaultOptions())
}

func TestEmpty(t *testing.T) {
	queuetest.EmptyBehaviour(t, factory())
}

func TestConcurrent(t *testing.T) {
	queuetest.Concurrent(t, factory(), queuetest.DefaultOptions())
}

func TestCapAndTryEnqueue(t *testing.T) {
	q := chanq.New(2)
	if q.Cap() != 2 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	if !q.TryEnqueue(1) || !q.TryEnqueue(2) {
		t.Fatal("TryEnqueue failed below capacity")
	}
	if q.TryEnqueue(3) {
		t.Fatal("TryEnqueue succeeded on full queue")
	}
}
