// Package shm carries the line-granular SPSC protocol of
// internal/core (DESIGN.md §4.10) across process boundaries: a
// single-producer/single-consumer ring of multi-value cells living in
// an mmap-backed file, addressed entirely by offsets so the two
// processes need not share an address-space layout.
//
// A segment file is one page of header plus the cell array. The
// header's static half (magic, version, geometry, topic) is written
// once at Create, protected by a CRC32, and validated fail-closed at
// Attach: any mismatch — truncation, wrong magic or version, absurd
// geometry, checksum damage — refuses the segment rather than mapping
// it. The mutable half holds the producer/consumer heartbeat PIDs, the
// closed flag and the approximate fill counters; peers poll each
// other's PID liveness while blocked, so a SIGKILLed partner is
// detected without any extra watchdog process.
//
// Synchronization is exactly the in-process line protocol: each cell
// is a 64-byte-aligned block of one 8-byte sequence word plus
// valsPerLine fixed-size slots; the producer's release store of
// (rank<<4)|count publishes count filled slots, the consumer's store
// of ((rank+lines)<<4)|free returns the drained cell. Payloads are
// length-prefixed byte strings of up to slotSize bytes.
package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Magic identifies segment files: "FFQSHM01" read as a little-endian
// u64.
const Magic = 0x31304d4853514646

// Version is the header format version this package reads and writes.
const Version = 1

const (
	// headerBytes is the size of the header page; the cell array
	// starts at this offset.
	headerBytes = 4096
	// crcRegion is the extent of the static header covered by the
	// checksum (with the CRC field itself zeroed).
	crcRegion = 256
	// maxTopicLen bounds the embedded topic name.
	maxTopicLen = 128
	// maxSlotSize bounds a single payload.
	maxSlotSize = 1 << 20
	// maxLines bounds the ring so absurd-geometry headers cannot make
	// Attach map gigantic regions.
	maxLines = 1 << 22

	// Static header field offsets.
	offMagic       = 0  // u64
	offVersion     = 8  // u32
	offCRC         = 12 // u32
	offSlotSize    = 16 // u32
	offSlotStride  = 20 // u32
	offValsPerLine = 24 // u32
	offTopicLen    = 28 // u32
	offLines       = 32 // u64
	offCellStride  = 40 // u64
	offDataOff     = 48 // u64
	offTotalSize   = 56 // u64
	offTopic       = 64 // [maxTopicLen]byte

	// Mutable header words (not covered by the CRC). The fill
	// counters get their own cache lines: each is written by exactly
	// one side, hot, and must not false-share with the other.
	offProdPID  = 256 // u64, heartbeat PID of the producer
	offConsPID  = 320 // u64, heartbeat PID of the consumer
	offClosed   = 384 // u64, set to 1 by Producer.Close
	offEnqCount = 448 // u64, values published (updated per call)
	offDeqCount = 512 // u64, values consumed (updated per call)
)

// Line-protocol sequence-word encoding, identical to internal/core.
const (
	seqShift  = 4
	stateMask = (1 << seqShift) - 1
	stateFree = stateMask
)

// Errors. ErrBadSegment wraps every fail-closed Attach refusal.
var (
	ErrBadSegment = errors.New("shm: bad segment")
	ErrClosed     = errors.New("shm: segment closed and drained")
	ErrPeerDead   = errors.New("shm: peer process died")
	ErrTooLarge   = errors.New("shm: payload exceeds slot size")
	ErrBusy       = errors.New("shm: segment already has a live consumer")
	// ErrTruncated is returned by dequeues given an undersized buffer.
	// The value WAS consumed (only its tail is lost); callers must not
	// treat it as retryable.
	ErrTruncated = errors.New("shm: payload truncated into undersized buffer")
)

// Geometry describes a segment's cell layout.
type Geometry struct {
	// SlotSize is the maximum payload length in bytes.
	SlotSize int
	// SlotStride is the 8-byte-aligned size of one slot: a u32 length
	// prefix plus SlotSize payload bytes.
	SlotStride int
	// ValsPerLine is the number of slots per cell (1..14; small slots
	// pack several per 64-byte line like the in-process queue).
	ValsPerLine int
	// Lines is the power-of-two cell count.
	Lines uint64
	// CellStride is the 64-byte-aligned size of one cell.
	CellStride uint64
	// TotalSize is the file size: header page plus cell array.
	TotalSize uint64
}

// Cap returns the ring capacity in values.
func (g Geometry) Cap() int { return int(g.Lines) * g.ValsPerLine }

func align(n, to uint64) uint64 { return (n + to - 1) &^ (to - 1) }

// geometryFor derives the cell layout for a payload size and a
// capacity hint (values), mirroring core.NewLineSPSC's rounding.
func geometryFor(slotSize, capacity int) (Geometry, error) {
	if slotSize < 1 || slotSize > maxSlotSize {
		return Geometry{}, fmt.Errorf("shm: slot size %d out of range [1,%d]", slotSize, maxSlotSize)
	}
	if capacity < 1 {
		return Geometry{}, fmt.Errorf("shm: capacity %d too small (minimum 1)", capacity)
	}
	g := Geometry{SlotSize: slotSize}
	g.SlotStride = int(align(uint64(4+slotSize), 8))
	// Pack as many slots per cell as fit beside the sequence word in
	// one cache line; one slot per cell once payloads outgrow it. The
	// nibble encoding caps a cell at stateFree-1 slots.
	g.ValsPerLine = (64 - 8) / g.SlotStride
	if g.ValsPerLine < 1 {
		g.ValsPerLine = 1
	}
	if g.ValsPerLine > stateFree-1 {
		g.ValsPerLine = stateFree - 1
	}
	g.CellStride = align(8+uint64(g.ValsPerLine)*uint64(g.SlotStride), 64)
	g.Lines = 2
	for int(g.Lines)*g.ValsPerLine < capacity {
		g.Lines <<= 1
		if g.Lines > maxLines {
			return Geometry{}, fmt.Errorf("shm: capacity %d needs more than %d lines", capacity, maxLines)
		}
	}
	g.TotalSize = headerBytes + g.Lines*g.CellStride
	return g, nil
}

// segment is one mapped file, shared by Producer and Consumer.
type segment struct {
	f     *os.File
	mem   []byte
	geo   Geometry
	topic string
}

// word returns the atomic u64 at a header offset. The mapping is
// page-aligned, so any 8-aligned offset is atomically addressable.
func (s *segment) word(off uintptr) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&s.mem[off]))
}

// cellSeq returns the sequence word of cell i.
func (s *segment) cellSeq(i uint64) *atomic.Uint64 {
	return s.word(uintptr(headerBytes + i*s.geo.CellStride))
}

// slot returns the full stride of slot idx in cell i (length prefix
// included).
func (s *segment) slot(i uint64, idx int) []byte {
	off := headerBytes + i*s.geo.CellStride + 8 + uint64(idx*s.geo.SlotStride)
	return s.mem[off : off+uint64(s.geo.SlotStride)]
}

func (s *segment) detach() error {
	mem := s.mem
	s.mem = nil
	var err error
	if mem != nil {
		err = syscall.Munmap(mem)
	}
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// processAlive reports whether pid exists (signal 0 probe; EPERM means
// it exists under another uid).
func processAlive(pid uint64) bool {
	if pid == 0 || pid > 1<<31 {
		return false
	}
	err := syscall.Kill(int(pid), 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

// headerCRC computes the static-header checksum: CRC32 (IEEE) over the
// first crcRegion bytes with the CRC field zeroed.
func headerCRC(hdr []byte) uint32 {
	var scratch [crcRegion]byte
	copy(scratch[:], hdr[:crcRegion])
	binary.LittleEndian.PutUint32(scratch[offCRC:], 0)
	return crc32.ChecksumIEEE(scratch[:])
}

// writeHeader fills in the static header for a fresh segment.
func writeHeader(hdr []byte, g Geometry, topic string) {
	binary.LittleEndian.PutUint64(hdr[offMagic:], Magic)
	binary.LittleEndian.PutUint32(hdr[offVersion:], Version)
	binary.LittleEndian.PutUint32(hdr[offSlotSize:], uint32(g.SlotSize))
	binary.LittleEndian.PutUint32(hdr[offSlotStride:], uint32(g.SlotStride))
	binary.LittleEndian.PutUint32(hdr[offValsPerLine:], uint32(g.ValsPerLine))
	binary.LittleEndian.PutUint32(hdr[offTopicLen:], uint32(len(topic)))
	binary.LittleEndian.PutUint64(hdr[offLines:], g.Lines)
	binary.LittleEndian.PutUint64(hdr[offCellStride:], g.CellStride)
	binary.LittleEndian.PutUint64(hdr[offDataOff:], headerBytes)
	binary.LittleEndian.PutUint64(hdr[offTotalSize:], g.TotalSize)
	copy(hdr[offTopic:offTopic+maxTopicLen], topic)
	binary.LittleEndian.PutUint32(hdr[offCRC:], headerCRC(hdr))
}

// parseHeader validates a static header fail-closed and returns the
// decoded geometry and topic. size is the actual file size.
func parseHeader(hdr []byte, size int64) (Geometry, string, error) {
	fail := func(format string, args ...any) (Geometry, string, error) {
		return Geometry{}, "", fmt.Errorf("%w: %s", ErrBadSegment, fmt.Sprintf(format, args...))
	}
	if len(hdr) < crcRegion {
		return fail("header truncated at %d bytes", len(hdr))
	}
	if m := binary.LittleEndian.Uint64(hdr[offMagic:]); m != Magic {
		return fail("magic %#x, want %#x", m, uint64(Magic))
	}
	if v := binary.LittleEndian.Uint32(hdr[offVersion:]); v != Version {
		return fail("version %d, want %d", v, Version)
	}
	if crc := binary.LittleEndian.Uint32(hdr[offCRC:]); crc != headerCRC(hdr) {
		return fail("header checksum %#x does not match %#x", crc, headerCRC(hdr))
	}
	var g Geometry
	g.SlotSize = int(binary.LittleEndian.Uint32(hdr[offSlotSize:]))
	g.SlotStride = int(binary.LittleEndian.Uint32(hdr[offSlotStride:]))
	g.ValsPerLine = int(binary.LittleEndian.Uint32(hdr[offValsPerLine:]))
	topicLen := int(binary.LittleEndian.Uint32(hdr[offTopicLen:]))
	g.Lines = binary.LittleEndian.Uint64(hdr[offLines:])
	g.CellStride = binary.LittleEndian.Uint64(hdr[offCellStride:])
	dataOff := binary.LittleEndian.Uint64(hdr[offDataOff:])
	g.TotalSize = binary.LittleEndian.Uint64(hdr[offTotalSize:])

	if g.SlotSize < 1 || g.SlotSize > maxSlotSize {
		return fail("slot size %d out of range [1,%d]", g.SlotSize, maxSlotSize)
	}
	if g.SlotStride != int(align(uint64(4+g.SlotSize), 8)) {
		return fail("slot stride %d inconsistent with slot size %d", g.SlotStride, g.SlotSize)
	}
	if g.ValsPerLine < 1 || g.ValsPerLine > stateFree-1 {
		return fail("%d values per line out of range [1,%d]", g.ValsPerLine, stateFree-1)
	}
	if g.Lines < 2 || g.Lines > maxLines || g.Lines&(g.Lines-1) != 0 {
		return fail("line count %d is not a power of two in [2,%d]", g.Lines, maxLines)
	}
	want := align(8+uint64(g.ValsPerLine)*uint64(g.SlotStride), 64)
	if g.CellStride != want {
		return fail("cell stride %d inconsistent with geometry (want %d)", g.CellStride, want)
	}
	if dataOff != headerBytes {
		return fail("data offset %d, want %d", dataOff, headerBytes)
	}
	if g.TotalSize != headerBytes+g.Lines*g.CellStride {
		return fail("total size %d inconsistent with geometry (want %d)", g.TotalSize, headerBytes+g.Lines*g.CellStride)
	}
	if size >= 0 && uint64(size) != g.TotalSize {
		return fail("file is %d bytes, header claims %d", size, g.TotalSize)
	}
	if topicLen < 0 || topicLen > maxTopicLen {
		return fail("topic length %d out of range [0,%d]", topicLen, maxTopicLen)
	}
	topic := string(hdr[offTopic : offTopic+topicLen])
	return g, topic, nil
}

// ValidateHeader parses and validates a raw static header without
// mapping anything; the fuzzer drives Attach's decoding through it.
// size < 0 skips the file-size cross-check.
func ValidateHeader(hdr []byte, size int64) error {
	_, _, err := parseHeader(hdr, size)
	return err
}

// openAndMap opens path, validates its header fail-closed, and maps
// the whole segment read-write.
func openAndMap(path string) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < headerBytes {
		f.Close()
		return nil, fmt.Errorf("%w: file is %d bytes, smaller than the %d-byte header", ErrBadSegment, st.Size(), headerBytes)
	}
	hdr := make([]byte, crcRegion+maxTopicLen)
	if _, err := f.ReadAt(hdr[:crcRegion], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadSegment, err)
	}
	geo, topic, err := parseHeader(hdr[:crcRegion], st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(geo.TotalSize), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: mmap %s: %w", path, err)
	}
	return &segment{f: f, mem: mem, geo: geo, topic: topic}, nil
}

// PeekDepth reads a segment's topic and approximate unconsumed depth
// without attaching: a plain read of the header page, for metrics
// scrapes that must not disturb the live consumer. The counter reads
// are not atomic with each other, so the depth is approximate — fine
// for a gauge.
func PeekDepth(path string) (topic string, depth int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return "", 0, err
	}
	hdr := make([]byte, offDeqCount+8)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return "", 0, fmt.Errorf("%w: reading header: %v", ErrBadSegment, err)
	}
	_, topic, err = parseHeader(hdr[:crcRegion], st.Size())
	if err != nil {
		return "", 0, err
	}
	depth = int64(binary.LittleEndian.Uint64(hdr[offEnqCount:])) -
		int64(binary.LittleEndian.Uint64(hdr[offDeqCount:]))
	if depth < 0 {
		depth = 0
	}
	return topic, depth, nil
}
