package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestGeometry(t *testing.T) {
	cases := []struct {
		slot, capacity int
		wantVals       int
		wantCellStride uint64
	}{
		{4, 100, 7, 64},    // 8-byte slots: seven beside the seq word, like core
		{8, 100, 3, 64},    // 16-byte slots: three per line
		{52, 100, 1, 64},   // 56-byte slot stride: exactly one per line
		{256, 100, 1, 320}, // big payloads: one slot, stride rounds to 64
	}
	for _, c := range cases {
		g, err := geometryFor(c.slot, c.capacity)
		if err != nil {
			t.Fatalf("slot=%d: %v", c.slot, err)
		}
		if g.ValsPerLine != c.wantVals || g.CellStride != c.wantCellStride {
			t.Errorf("slot=%d: vals=%d stride=%d, want %d/%d",
				c.slot, g.ValsPerLine, g.CellStride, c.wantVals, c.wantCellStride)
		}
		if g.Cap() < c.capacity {
			t.Errorf("slot=%d: Cap=%d below requested %d", c.slot, g.Cap(), c.capacity)
		}
		if g.Lines&(g.Lines-1) != 0 {
			t.Errorf("slot=%d: %d lines not a power of two", c.slot, g.Lines)
		}
	}
	if _, err := geometryFor(0, 1); err == nil {
		t.Error("slot size 0 accepted")
	}
	if _, err := geometryFor(maxSlotSize+1, 1); err == nil {
		t.Error("oversized slot accepted")
	}
	if _, err := geometryFor(1<<20, 1<<30); err == nil {
		t.Error("absurd capacity accepted")
	}
}

// TestShmRoundTripInProcess drives the full protocol with both ends
// mapped in one process: ragged batches, wrap-around, exactly-once in
// order, Close draining the partial line.
func TestShmRoundTripInProcess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	p, err := Create(path, "orders", 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Detach()
	c, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	if c.Topic() != "orders" {
		t.Fatalf("Topic = %q", c.Topic())
	}

	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([][]byte, 0, 9)
		for i := 0; i < total; {
			batch = batch[:0]
			n := i%9 + 1
			for j := 0; j < n && i < total; j++ {
				batch = append(batch, []byte(fmt.Sprintf("m-%d", i)))
				i++
			}
			if len(batch) == 1 {
				if err := p.Enqueue(batch[0]); err != nil {
					t.Error(err)
					return
				}
				continue
			}
			if err := p.EnqueueBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
		p.Close()
	}()

	buf := make([]byte, c.Geometry().SlotSize)
	want := 0
	for {
		n, err := c.Next(buf)
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if got, expect := string(buf[:n]), fmt.Sprintf("m-%d", want); got != expect {
			t.Fatalf("message %d: got %q", want, got)
		}
		want++
	}
	if want != total {
		t.Fatalf("drained %d messages, want %d", want, total)
	}
	// Join before the deferred Detach: the mmap atomics that ordered
	// the transfer are invisible to the race detector.
	wg.Wait()
}

func TestShmTooLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	p, err := Create(path, "t", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Detach()
	if err := p.Enqueue(make([]byte, 9)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Enqueue oversized = %v", err)
	}
	if err := p.EnqueueBatch([][]byte{{1}, make([]byte, 9)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("EnqueueBatch oversized = %v", err)
	}
	// The failed batch must not have published its valid prefix.
	c, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	if n, ok, _ := c.TryDequeue(make([]byte, 8)); ok {
		t.Fatalf("rejected batch leaked a %d-byte payload", n)
	}
}

func TestShmAttachRefusesLiveConsumer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	p, err := Create(path, "t", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Detach()
	c1, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same PID re-attach is allowed (it is our own registration), so
	// fake a different live consumer: PID 1 always exists.
	c1.seg.word(offConsPID).Store(1)
	if _, err := Attach(path); !errors.Is(err, ErrBusy) {
		t.Fatalf("Attach with live consumer = %v, want ErrBusy", err)
	}
	// A dead consumer's registration is taken over.
	c1.seg.word(offConsPID).Store(1 << 30) // no such process
	c2, err := Attach(path)
	if err != nil {
		t.Fatalf("takeover of dead consumer: %v", err)
	}
	c2.Detach()
	c1.seg.detach()
}

// TestShmConsumerCrashResume kills the consumer state mid-stream (by
// dropping the Consumer and re-attaching) and checks the successor
// resumes without losing unconsumed values.
func TestShmConsumerCrashResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	p, err := Create(path, "t", 8, 14)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Detach()
	for i := 0; i < 10; i++ {
		if err := p.Enqueue([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c1, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i := 0; i < 4; i++ {
		if n, err := c1.Next(buf); err != nil || n != 1 || buf[0] != byte(i) {
			t.Fatalf("first consumer read %d: n=%d err=%v val=%d", i, n, err, buf[0])
		}
	}
	// Simulate a crash: unmap without Detach's PID handoff, then mark
	// the registration dead so the successor can take over.
	c1.seg.word(offConsPID).Store(1 << 30)
	c1.seg.detach()
	c2, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Detach()
	for i := 4; i < 10; i++ {
		if n, err := c2.Next(buf); err != nil || n != 1 || buf[0] != byte(i) {
			t.Fatalf("successor read %d: n=%d err=%v val=%d", i, n, err, buf[0])
		}
	}
}

// TestShmConsumerCrashResumeMultiLine is the regression test for the
// broker-pump crash shape: one TryDrain call hands back several lines
// before its single counter store, so a successor attaching after a
// SIGKILL at that point must walk past ALL of them, not just one —
// otherwise it resumes on a handed-back line whose rank never matches
// and wedges forever.
func TestShmConsumerCrashResumeMultiLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	p, err := Create(path, "t", 4, 56) // 7 values/line, 8 lines
	if err != nil {
		t.Fatal(err)
	}
	defer p.Detach()
	if v := p.Geometry().ValsPerLine; v != 7 {
		t.Fatalf("ValsPerLine = %d, want 7", v)
	}
	const total = 40
	buf4 := make([]byte, 4)
	for i := 0; i < total; i++ {
		binary.LittleEndian.PutUint32(buf4, uint32(i))
		if err := p.Enqueue(buf4); err != nil {
			t.Fatal(err)
		}
	}
	c1, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drain three full lines in one call, then roll the shared counter
	// back to its pre-drain value: exactly the shared-memory state a
	// SIGKILL between TryDrain's line hand-backs and its counter store
	// leaves behind.
	drained, err := c1.TryDrain(nil, 21)
	if err != nil || len(drained) != 21 {
		t.Fatalf("TryDrain = %d payloads, err %v", len(drained), err)
	}
	c1.seg.word(offDeqCount).Store(0)
	c1.seg.word(offConsPID).Store(1 << 30) // registration looks dead
	c1.seg.detach()

	c2, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Detach()
	buf := make([]byte, c2.Geometry().SlotSize)
	for i := 21; i < total; i++ {
		n, err := c2.Next(buf)
		if err != nil || n != 4 {
			t.Fatalf("successor read %d: n=%d err=%v", i, n, err)
		}
		if got := binary.LittleEndian.Uint32(buf); got != uint32(i) {
			t.Fatalf("successor read %d: got value %d", i, got)
		}
	}
	// The producer must not be wedged either: the reconciled counter
	// freed three lines' worth of space.
	for i := 0; i < 21; i++ {
		if ok, err := p.TryEnqueue(buf4); err != nil || !ok {
			t.Fatalf("producer enqueue %d after reconciliation: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestShmTryDequeueTruncated: an undersized buffer consumes the value
// and must say so — ok=true with ErrTruncated — so a caller retrying
// on !ok cannot mistake the loss for "nothing ready".
func TestShmTryDequeueTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	p, err := Create(path, "t", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Detach()
	if err := p.Enqueue([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue([]byte("second")); err != nil {
		t.Fatal(err)
	}
	c, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	small := make([]byte, 4)
	n, ok, err := c.TryDequeue(small)
	if !ok || !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated TryDequeue: n=%d ok=%v err=%v, want ok=true ErrTruncated", n, ok, err)
	}
	if n != 4 || string(small) != "abcd" {
		t.Fatalf("truncated TryDequeue copied %d bytes %q", n, small[:n])
	}
	// The truncated value is gone; the next dequeue yields the second.
	buf := make([]byte, c.Geometry().SlotSize)
	n, ok, err = c.TryDequeue(buf)
	if err != nil || !ok || string(buf[:n]) != "second" {
		t.Fatalf("dequeue after truncation: n=%d ok=%v err=%v payload=%q", n, ok, err, buf[:n])
	}
}

// TestShmCreateClearsStaleTmp: a crashed producer's leftover tmp file
// must not wedge recreation at the same path with EEXIST.
func TestShmCreateClearsStaleTmp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	if err := os.WriteFile(path+".tmp", []byte("half-built wreckage"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Create(path, "t", 8, 16)
	if err != nil {
		t.Fatalf("Create over stale tmp: %v", err)
	}
	defer p.Detach()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("tmp file still present after Create: %v", err)
	}
	c, err := Attach(path)
	if err != nil {
		t.Fatalf("Attach recreated segment: %v", err)
	}
	c.Detach()
}

// --- two-process tests -------------------------------------------------

// TestShmHelperProducer is not a test: it is the child process of the
// two-process tests below, selected by FFQ_SHM_HELPER. It creates the
// segment (the real deployment order: producers create, the broker
// scanner attaches), publishes messages "m-0".."m-N", then either
// closes cleanly or hangs to be SIGKILLed.
func TestShmHelperProducer(t *testing.T) {
	mode := os.Getenv("FFQ_SHM_HELPER")
	if mode == "" {
		t.Skip("helper process entry point")
	}
	path := os.Getenv("FFQ_SHM_PATH")
	p, err := Create(path, "twoproc", 32, 128)
	if err != nil {
		t.Fatalf("helper create: %v", err)
	}
	// Kill mode publishes fewer messages than the ring holds so the
	// whole stream is in shared memory before the parent attaches;
	// clean mode streams 1000 and overlaps the parent's drain.
	n := 1000
	if mode == "kill" {
		n = 100
	}
	for i := 0; i < n; i++ {
		if err := p.Enqueue([]byte(fmt.Sprintf("m-%d", i))); err != nil {
			t.Fatalf("helper enqueue %d: %v", i, err)
		}
	}
	switch mode {
	case "clean":
		p.Close()
	case "kill":
		// Signal readiness by touching a sentinel file, then hang
		// until the parent SIGKILLs us.
		os.WriteFile(path+".ready", nil, 0o644)
		select {}
	}
}

func spawnHelper(t *testing.T, mode, path string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestShmHelperProducer$", "-test.v")
	cmd.Env = append(os.Environ(), "FFQ_SHM_HELPER="+mode, "FFQ_SHM_PATH="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func waitForFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("file %s never appeared", path)
}

// TestShmTwoProcess round-trips 1000 messages from a forked child
// producer through the mmap segment, exactly once, in order.
func TestShmTwoProcess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	cmd := spawnHelper(t, "clean", path)
	defer cmd.Wait()
	waitForFile(t, path)
	c, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	buf := make([]byte, c.Geometry().SlotSize)
	want := 0
	for {
		n, err := c.Next(buf)
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if got, expect := string(buf[:n]), fmt.Sprintf("m-%d", want); got != expect {
			t.Fatalf("message %d: got %q", want, got)
		}
		want++
	}
	if want != 1000 {
		t.Fatalf("drained %d messages, want 1000", want)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper exited with %v", err)
	}
}

// TestShmProducerKilled SIGKILLs the producer process and checks the
// consumer drains everything it published, then unblocks with
// ErrPeerDead via the heartbeat probe instead of spinning forever.
func TestShmProducerKilled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.ffq")
	cmd := spawnHelper(t, "kill", path)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	waitForFile(t, path+".ready") // all 1000 messages published
	c, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	buf := make([]byte, c.Geometry().SlotSize)
	// The helper published all 100 messages before touching .ready.
	// Consume half while it is alive, kill it, then drain the rest.
	want := 0
	for want < 50 {
		n, err := c.Next(buf)
		if err != nil {
			t.Fatalf("read %d: %v", want, err)
		}
		if got, expect := string(buf[:n]), fmt.Sprintf("m-%d", want); got != expect {
			t.Fatalf("message %d: got %q", want, got)
		}
		want++
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	// Everything already published must still drain; then the dead
	// peer is detected.
	for {
		n, err := c.Next(buf)
		if errors.Is(err, ErrPeerDead) {
			break
		}
		if errors.Is(err, ErrClosed) {
			t.Fatal("segment reported closed; producer never called Close")
		}
		if err != nil {
			t.Fatal(err)
		}
		if got, expect := string(buf[:n]), fmt.Sprintf("m-%d", want); got != expect {
			t.Fatalf("message %d: got %q", want, got)
		}
		want++
	}
	if want != 100 {
		t.Fatalf("drained %d published messages before ErrPeerDead, want 100", want)
	}
	if c.ProducerAlive() {
		t.Fatal("ProducerAlive still true after SIGKILL")
	}
}

// --- header validation -------------------------------------------------

func validHeaderBytes(t *testing.T) ([]byte, int64) {
	t.Helper()
	g, err := geometryFor(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, crcRegion)
	writeHeader(hdr, g, "valid")
	return hdr, int64(g.TotalSize)
}

func TestAttachFailClosed(t *testing.T) {
	hdr, size := validHeaderBytes(t)
	if err := ValidateHeader(hdr, size); err != nil {
		t.Fatalf("valid header refused: %v", err)
	}
	corrupt := func(name string, mutate func(h []byte) ([]byte, int64)) {
		h := make([]byte, len(hdr))
		copy(h, hdr)
		mutated, sz := mutate(h)
		if err := ValidateHeader(mutated, sz); !errors.Is(err, ErrBadSegment) {
			t.Errorf("%s: ValidateHeader = %v, want ErrBadSegment", name, err)
		}
	}
	corrupt("truncated", func(h []byte) ([]byte, int64) { return h[:40], size })
	corrupt("bad magic", func(h []byte) ([]byte, int64) {
		binary.LittleEndian.PutUint64(h[offMagic:], 0xdeadbeef)
		return h, size
	})
	corrupt("wrong version", func(h []byte) ([]byte, int64) {
		binary.LittleEndian.PutUint32(h[offVersion:], Version+1)
		binary.LittleEndian.PutUint32(h[offCRC:], headerCRC(h))
		return h, size
	})
	corrupt("checksum damage", func(h []byte) ([]byte, int64) {
		h[offTopic]++
		return h, size
	})
	corrupt("lines not a power of two", func(h []byte) ([]byte, int64) {
		binary.LittleEndian.PutUint64(h[offLines:], 3)
		binary.LittleEndian.PutUint32(h[offCRC:], headerCRC(h))
		return h, size
	})
	corrupt("absurd line count", func(h []byte) ([]byte, int64) {
		binary.LittleEndian.PutUint64(h[offLines:], 1<<40)
		binary.LittleEndian.PutUint32(h[offCRC:], headerCRC(h))
		return h, size
	})
	corrupt("stride mismatch", func(h []byte) ([]byte, int64) {
		binary.LittleEndian.PutUint64(h[offCellStride:], 128)
		binary.LittleEndian.PutUint32(h[offCRC:], headerCRC(h))
		return h, size
	})
	corrupt("size mismatch", func(h []byte) ([]byte, int64) { return h, size - 64 })
	corrupt("oversized topic", func(h []byte) ([]byte, int64) {
		binary.LittleEndian.PutUint32(h[offTopicLen:], maxTopicLen+1)
		binary.LittleEndian.PutUint32(h[offCRC:], headerCRC(h))
		return h, size
	})
}

// TestAttachRefusesGarbageFiles exercises the real Attach path (not
// just ValidateHeader) against on-disk garbage.
func TestAttachRefusesGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Attach(write("tiny.ffq", []byte("hello"))); !errors.Is(err, ErrBadSegment) {
		t.Errorf("tiny file: %v", err)
	}
	junk := make([]byte, headerBytes+64)
	for i := range junk {
		junk[i] = byte(i)
	}
	if _, err := Attach(write("junk.ffq", junk)); !errors.Is(err, ErrBadSegment) {
		t.Errorf("junk file: %v", err)
	}
	// A valid header over a file of the wrong length must be refused
	// before mmap.
	hdr, _ := validHeaderBytes(t)
	short := make([]byte, headerBytes+128)
	copy(short, hdr)
	if _, err := Attach(write("short.ffq", short)); !errors.Is(err, ErrBadSegment) {
		t.Errorf("short file: %v", err)
	}
}
