package shm

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
)

// spinWait yields to the scheduler after a short spin; cross-process
// peers are OS-scheduled, so burning a full quantum busy-waiting on a
// descheduled partner helps nobody.
func spinWait(spins int) {
	if spins > 64 {
		runtime.Gosched()
	}
}

// livenessInterval is how many failed spin iterations a blocked side
// waits between PID-liveness probes of its peer.
const livenessInterval = 1024

// Producer is the producing side of a segment. It creates the file,
// owns the tail, and is the only process that may call these methods
// (one goroutine at a time).
type Producer struct {
	seg      *segment
	ptail    uint64 // line rank being filled
	pcount   int    // slots already published into the current line
	enqTotal uint64
}

// Create builds a fresh segment file at path for payloads of up to
// slotSize bytes and a ring of at least capacity values, and returns
// its Producer. The file appears atomically: it is populated under a
// temporary name and renamed into place only after the header, cell
// sequence words and producer heartbeat PID are all written, so a
// scanner can never attach a half-built segment.
func Create(path, topic string, slotSize, capacity int) (*Producer, error) {
	if len(topic) == 0 || len(topic) > maxTopicLen {
		return nil, fmt.Errorf("shm: topic length %d out of range [1,%d]", len(topic), maxTopicLen)
	}
	g, err := geometryFor(slotSize, capacity)
	if err != nil {
		return nil, err
	}
	tmp := path + ".tmp"
	// A producer that crashed between OpenFile and Rename leaves a stale
	// tmp behind; clear it so recreation at the same path cannot wedge
	// on EEXIST. (Two live producers sharing one path is already a
	// protocol violation — the rename would clobber regardless.)
	os.Remove(tmp)
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Producer, error) {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Truncate(int64(g.TotalSize)); err != nil {
		return fail(err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(g.TotalSize), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fail(fmt.Errorf("shm: mmap %s: %w", tmp, err))
	}
	s := &segment{f: f, mem: mem, geo: g, topic: topic}
	writeHeader(s.mem[:headerBytes], g, topic)
	for i := uint64(0); i < g.Lines; i++ {
		s.cellSeq(i).Store(i<<seqShift | stateFree)
	}
	s.word(offProdPID).Store(uint64(os.Getpid()))
	if err := os.Rename(tmp, path); err != nil {
		s.detach()
		os.Remove(tmp)
		return nil, err
	}
	return &Producer{seg: s}, nil
}

// Topic returns the topic name embedded in the header.
func (p *Producer) Topic() string { return p.seg.topic }

// Geometry returns the segment's cell layout.
func (p *Producer) Geometry() Geometry { return p.seg.geo }

// waitLineFree blocks until the current line has been handed back,
// probing the consumer's liveness while it waits. A dead consumer
// unblocks the producer with ErrPeerDead instead of wedging it on a
// ring nobody will ever drain.
func (p *Producer) waitLineFree(seq *atomic.Uint64) error {
	want := p.ptail<<seqShift | stateFree
	spins := 0
	for seq.Load() != want {
		spins++
		if spins%livenessInterval == 0 {
			if pid := p.seg.word(offConsPID).Load(); pid != 0 && !processAlive(pid) {
				return ErrPeerDead
			}
		}
		spinWait(spins)
	}
	return nil
}

// writeSlot fills the next slot of the current line (length prefix
// plus payload) without publishing it.
func (p *Producer) writeSlot(payload []byte) {
	slot := p.seg.slot(p.ptail&(p.seg.geo.Lines-1), p.pcount)
	binary.LittleEndian.PutUint32(slot, uint32(len(payload)))
	copy(slot[4:], payload)
	p.pcount++
}

// publish release-stores the line's fill count and advances to the
// next line when full, exactly the in-process protocol.
func (p *Producer) publish(seq *atomic.Uint64) {
	seq.Store(p.ptail<<seqShift | uint64(p.pcount))
	if p.pcount == p.seg.geo.ValsPerLine {
		p.ptail++
		p.pcount = 0
	}
}

// Enqueue appends one payload, blocking while the ring is full. It
// returns ErrTooLarge for oversized payloads and ErrPeerDead when the
// attached consumer has died.
func (p *Producer) Enqueue(payload []byte) error {
	if len(payload) > p.seg.geo.SlotSize {
		return ErrTooLarge
	}
	seq := p.seg.cellSeq(p.ptail & (p.seg.geo.Lines - 1))
	if p.pcount == 0 {
		if err := p.waitLineFree(seq); err != nil {
			return err
		}
	}
	p.writeSlot(payload)
	p.publish(seq)
	p.enqTotal++
	p.seg.word(offEnqCount).Store(p.enqTotal)
	return nil
}

// TryEnqueue appends one payload if the ring has space, reporting
// whether it did. Space can only be missing at a line boundary.
func (p *Producer) TryEnqueue(payload []byte) (bool, error) {
	if len(payload) > p.seg.geo.SlotSize {
		return false, ErrTooLarge
	}
	seq := p.seg.cellSeq(p.ptail & (p.seg.geo.Lines - 1))
	if p.pcount == 0 && seq.Load() != p.ptail<<seqShift|stateFree {
		return false, nil
	}
	p.writeSlot(payload)
	p.publish(seq)
	p.enqTotal++
	p.seg.word(offEnqCount).Store(p.enqTotal)
	return true, nil
}

// EnqueueBatch appends every payload in order, publishing each filled
// line with a single release store.
func (p *Producer) EnqueueBatch(payloads [][]byte) error {
	for _, pl := range payloads {
		if len(pl) > p.seg.geo.SlotSize {
			return ErrTooLarge
		}
	}
	i := 0
	for i < len(payloads) {
		seq := p.seg.cellSeq(p.ptail & (p.seg.geo.Lines - 1))
		if p.pcount == 0 {
			if err := p.waitLineFree(seq); err != nil {
				return err
			}
		}
		for p.pcount < p.seg.geo.ValsPerLine && i < len(payloads) {
			p.writeSlot(payloads[i])
			i++
		}
		p.publish(seq)
	}
	p.enqTotal += uint64(len(payloads))
	p.seg.word(offEnqCount).Store(p.enqTotal)
	return nil
}

// Close marks the segment closed. Values already published — including
// a partial line — stay consumable; the consumer sees ErrClosed once
// drained.
func (p *Producer) Close() error {
	if p.seg.mem == nil {
		return nil
	}
	p.seg.word(offClosed).Store(1)
	return nil
}

// Detach unmaps the segment and closes the file. The segment file
// itself is left for the consumer (it is removed by the draining side
// once closed or dead).
func (p *Producer) Detach() error { return p.seg.detach() }
