package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// Consumer is the draining side of a segment. Exactly one live process
// may hold it (Attach enforces this through the heartbeat PID), and
// one goroutine at a time may call its methods.
type Consumer struct {
	seg      *segment
	chead    uint64 // line rank being drained
	coff     int    // slots already consumed from the head line
	ccount   int    // cached published count of the head line
	deqTotal uint64
}

// Attach maps the segment at path, validating its header fail-closed
// (any truncation, bad magic/version, checksum damage or inconsistent
// geometry is refused), and registers this process as the consumer. A
// segment whose registered consumer is still alive yields ErrBusy; a
// dead consumer's registration is taken over, resuming at its recorded
// position (re-delivering at most the values of one call whose counter
// update the crash swallowed).
func Attach(path string) (*Consumer, error) {
	s, err := openAndMap(path)
	if err != nil {
		return nil, err
	}
	self := uint64(os.Getpid())
	pidWord := s.word(offConsPID)
	//ffq:ignore spin-backoff claim CAS races only with a concurrent attacher; one side wins each round so the loop is bounded by contender count
	for {
		old := pidWord.Load()
		if old != 0 && old != self && processAlive(old) {
			s.detach()
			return nil, ErrBusy
		}
		if pidWord.CompareAndSwap(old, self) {
			break
		}
	}
	c := &Consumer{seg: s}
	c.deqTotal = s.word(offDeqCount).Load()
	v := uint64(s.geo.ValsPerLine)
	c.chead = c.deqTotal / v
	c.coff = int(c.deqTotal % v)
	c.ccount = c.coff
	// Crash reconciliation: while the derived head line was already
	// handed back (its sequence word carries next lap's rank, whether
	// still free or re-published by the producer), every value in it
	// was consumed before the counter update was lost — skip past it.
	// A single drain call hands back many lines before its one counter
	// store, so this must walk forward until a line the predecessor did
	// not finish. It terminates at latest at the producer's tail, whose
	// lines still carry the current lap's rank.
	advanced := false
	//ffq:ignore spin-backoff not a wait loop: each iteration advances chead one line and it stops at the producer tail, so it runs at most one lap
	for {
		seq := s.cellSeq(c.chead & (s.geo.Lines - 1)).Load()
		if seq>>seqShift != c.chead+s.geo.Lines {
			break
		}
		c.chead++
		c.coff, c.ccount = 0, 0
		c.deqTotal = c.chead * v
		advanced = true
	}
	if advanced {
		s.word(offDeqCount).Store(c.deqTotal)
	}
	return c, nil
}

// Topic returns the topic name embedded in the header.
func (c *Consumer) Topic() string { return c.seg.topic }

// Geometry returns the segment's cell layout.
func (c *Consumer) Geometry() Geometry { return c.seg.geo }

// Depth returns the approximate number of unconsumed values.
func (c *Consumer) Depth() int64 {
	d := int64(c.seg.word(offEnqCount).Load()) - int64(c.seg.word(offDeqCount).Load())
	if d < 0 {
		return 0
	}
	return d
}

// CloseRequested reports whether the producer has called Close. Values
// may still be pending; drain until ErrClosed.
func (c *Consumer) CloseRequested() bool { return c.seg.word(offClosed).Load() != 0 }

// ProducerAlive probes the producer's heartbeat PID.
func (c *Consumer) ProducerAlive() bool { return processAlive(c.seg.word(offProdPID).Load()) }

// ProducerPID returns the producer's registered PID.
func (c *Consumer) ProducerPID() int { return int(c.seg.word(offProdPID).Load()) }

// refill refreshes the cached published count of the head line and
// reports whether an unconsumed value is visible.
func (c *Consumer) refill() bool {
	if c.coff < c.ccount {
		return true
	}
	s := c.seg.cellSeq(c.chead & (c.seg.geo.Lines - 1)).Load()
	st := s & stateMask
	if s>>seqShift != c.chead || st == stateFree || int(st) <= c.coff {
		return false
	}
	c.ccount = int(st)
	return true
}

// take copies the head slot's payload into buf and advances, handing a
// fully drained line back with one release store. The caller must have
// seen refill() == true. A slot whose length prefix exceeds the slot
// size means the mapping was corrupted underneath us; that is reported
// as ErrBadSegment rather than read out of bounds.
func (c *Consumer) take(buf []byte) (int, error) {
	line := c.chead & (c.seg.geo.Lines - 1)
	slot := c.seg.slot(line, c.coff)
	n := int(binary.LittleEndian.Uint32(slot))
	if n > c.seg.geo.SlotSize {
		return 0, fmt.Errorf("%w: slot length %d exceeds slot size %d", ErrBadSegment, n, c.seg.geo.SlotSize)
	}
	copied := copy(buf, slot[4:4+n])
	c.coff++
	c.deqTotal++
	if c.coff == c.seg.geo.ValsPerLine {
		c.seg.cellSeq(line).Store((c.chead+c.seg.geo.Lines)<<seqShift | stateFree)
		c.chead++
		c.coff, c.ccount = 0, 0
	}
	if copied < n {
		return copied, fmt.Errorf("%w: %d-byte payload into %d-byte buffer", ErrTruncated, n, len(buf))
	}
	return n, nil
}

// TryDequeue copies the next payload into buf if one is published,
// returning its length. ok reports whether a value was consumed, so it
// is true even on ErrTruncated — the value is gone either way (size buf
// at Geometry().SlotSize to never truncate). ok=false with a nil error
// means nothing is ready.
func (c *Consumer) TryDequeue(buf []byte) (n int, ok bool, err error) {
	if !c.refill() {
		return 0, false, nil
	}
	n, err = c.take(buf)
	c.seg.word(offDeqCount).Store(c.deqTotal)
	return n, err == nil || errors.Is(err, ErrTruncated), err
}

// Next copies the next payload into buf, blocking until one is
// published. It returns ErrClosed once the producer closed the segment
// and everything published has been drained, and ErrPeerDead when the
// producer died — after draining what it published before dying.
func (c *Consumer) Next(buf []byte) (int, error) {
	spins := 0
	for {
		if c.refill() {
			n, err := c.take(buf)
			c.seg.word(offDeqCount).Store(c.deqTotal)
			return n, err
		}
		if c.CloseRequested() {
			// Publishes precede the closed store; one more poll
			// catches a value raced with Close.
			if c.refill() {
				continue
			}
			return 0, ErrClosed
		}
		spins++
		if spins%livenessInterval == 0 && !c.ProducerAlive() {
			if c.refill() {
				continue
			}
			return 0, ErrPeerDead
		}
		spinWait(spins)
	}
}

// TryDrain appends up to max freshly allocated payload copies to dst
// and returns it, never blocking. An empty return with a nil error
// just means nothing was published.
func (c *Consumer) TryDrain(dst [][]byte, max int) ([][]byte, error) {
	for len(dst) < max && c.refill() {
		line := c.chead & (c.seg.geo.Lines - 1)
		slot := c.seg.slot(line, c.coff)
		n := int(binary.LittleEndian.Uint32(slot))
		if n > c.seg.geo.SlotSize {
			return dst, fmt.Errorf("%w: slot length %d exceeds slot size %d", ErrBadSegment, n, c.seg.geo.SlotSize)
		}
		payload := make([]byte, n)
		copy(payload, slot[4:4+n])
		dst = append(dst, payload)
		c.coff++
		c.deqTotal++
		if c.coff == c.seg.geo.ValsPerLine {
			c.seg.cellSeq(line).Store((c.chead+c.seg.geo.Lines)<<seqShift | stateFree)
			c.chead++
			c.coff, c.ccount = 0, 0
		}
	}
	if len(dst) > 0 {
		c.seg.word(offDeqCount).Store(c.deqTotal)
	}
	return dst, nil
}

// Detach unregisters this consumer (clearing the heartbeat PID so a
// successor may attach) and unmaps the segment.
func (c *Consumer) Detach() error {
	if c.seg.mem == nil {
		return nil
	}
	c.seg.word(offConsPID).CompareAndSwap(uint64(os.Getpid()), 0)
	return c.seg.detach()
}
