package shm

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzShmAttach throws arbitrary bytes at the header decoder with an
// attacker-chosen file size. The property is fail-closed: the decoder
// must never panic, and any header it accepts must describe a segment
// whose geometry is internally consistent and within the hard caps —
// otherwise Attach would mmap and index out of bounds on garbage.
func FuzzShmAttach(f *testing.F) {
	g, err := geometryFor(32, 64)
	if err != nil {
		f.Fatal(err)
	}
	valid := make([]byte, crcRegion)
	writeHeader(valid, g, "seed-topic")
	f.Add(valid, int64(g.TotalSize))
	f.Add(valid[:40], int64(g.TotalSize)) // truncated
	f.Add([]byte{}, int64(0))

	badMagic := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(badMagic[offMagic:], 0x746f6e2d716666)
	f.Add(badMagic, int64(g.TotalSize))

	badVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVersion[offVersion:], Version+9)
	binary.LittleEndian.PutUint32(badVersion[offCRC:], headerCRC(badVersion))
	f.Add(badVersion, int64(g.TotalSize))

	absurd := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(absurd[offLines:], 1<<60)
	binary.LittleEndian.PutUint64(absurd[offTotalSize:], 1<<62)
	binary.LittleEndian.PutUint32(absurd[offCRC:], headerCRC(absurd))
	f.Add(absurd, int64(1<<62))

	flipped := append([]byte(nil), valid...)
	flipped[offTopic+3] ^= 0x40 // CRC now stale
	f.Add(flipped, int64(g.TotalSize))

	f.Fuzz(func(t *testing.T, hdr []byte, size int64) {
		err := ValidateHeader(hdr, size)
		if err != nil {
			return
		}
		// Accepted: every figure the consumer will index with must be
		// in range and mutually consistent.
		lines := binary.LittleEndian.Uint64(hdr[offLines:])
		stride := binary.LittleEndian.Uint64(hdr[offCellStride:])
		vals := binary.LittleEndian.Uint32(hdr[offValsPerLine:])
		total := binary.LittleEndian.Uint64(hdr[offTotalSize:])
		if lines == 0 || lines&(lines-1) != 0 || lines > maxLines {
			t.Fatalf("accepted %d lines", lines)
		}
		if vals == 0 || int(vals) > stateFree-1 {
			t.Fatalf("accepted %d vals/line", vals)
		}
		if total != headerBytes+lines*stride {
			t.Fatalf("accepted total %d != header+%d*%d", total, lines, stride)
		}
		if size >= 0 && uint64(size) != total {
			t.Fatalf("accepted file size %d for total %d", size, total)
		}
	})
}

// TestAttachOnFuzzedFiles replays the fuzzer's seed shapes through the
// real Attach path (mmap and all) to prove the same inputs are refused
// end to end, not just by ValidateHeader.
func TestAttachOnFuzzedFiles(t *testing.T) {
	g, err := geometryFor(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cases := []struct {
		name   string
		mutate func(hdr []byte) ([]byte, int64)
	}{
		{"truncated", func(h []byte) ([]byte, int64) { return h[:40], 40 }},
		{"zero magic", func(h []byte) ([]byte, int64) {
			binary.LittleEndian.PutUint64(h[offMagic:], 0)
			return h, int64(g.TotalSize)
		}},
		{"stale crc", func(h []byte) ([]byte, int64) {
			h[offSlotSize]++
			return h, int64(g.TotalSize)
		}},
		{"short file", func(h []byte) ([]byte, int64) { return h, int64(g.TotalSize) - 8 }},
	}
	for _, tc := range cases {
		hdr := make([]byte, crcRegion)
		writeHeader(hdr, g, "seed-topic")
		mutated, size := tc.mutate(hdr)
		data := make([]byte, size)
		copy(data, mutated)
		p := filepath.Join(dir, tc.name+".ffq")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Attach(p); err == nil {
			t.Errorf("%s: Attach accepted a corrupt segment", tc.name)
		}
	}
}
