package workload

import (
	"testing"

	"ffq/internal/affinity"
	"ffq/internal/core"
)

// TestRunMicroSharded drives the shared-queue sharded variant: P
// producers on exclusive lanes, a pooled consumer side, responses
// routed back by the producer tag.
func TestRunMicroSharded(t *testing.T) {
	for _, batch := range []int{1, 8} {
		res, err := RunMicro(MicroConfig{
			Variant:              VariantSharded,
			Layout:               core.LayoutPadded,
			Producers:            3,
			ConsumersPerProducer: 2,
			ItemsPerProducer:     4000,
			QueueSize:            1 << 8,
			Batch:                batch,
			Policy:               affinity.NoAffinity,
			Instrument:           true,
		})
		if err != nil {
			t.Fatalf("RunMicro(batch=%d): %v", batch, err)
		}
		if res.Items != 3*4000 {
			t.Fatalf("batch=%d: Items = %d, want %d", batch, res.Items, 3*4000)
		}
		if res.Lanes != 4 || res.LaneCap != 1<<8 {
			t.Fatalf("batch=%d: lanes=%d laneCap=%d, want 4 and %d", batch, res.Lanes, res.LaneCap, 1<<8)
		}
		if res.Stats == nil {
			t.Fatalf("batch=%d: no stats despite Instrument", batch)
		}
		// Every item crosses the shared queue exactly once.
		if got := res.Stats.Dequeues; got != int64(res.Items) {
			t.Fatalf("batch=%d: %d dequeues recorded, want %d", batch, got, res.Items)
		}
	}
}
