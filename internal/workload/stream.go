package workload

import (
	"runtime"
	"sync"
	"time"

	"ffq/internal/spscqueues"
)

// StreamConfig parameterizes the SPSC streaming transfer benchmark:
// one producer pushes Items values through the queue to one consumer
// as fast as possible (the workload FastForward, MCRingBuffer,
// BatchQueue and B-Queue were designed for; Section II of the paper).
type StreamConfig struct {
	// Factory builds the queue under test.
	Factory spscqueues.Factory
	// Items to transfer.
	Items int
	// Capacity of the queue (power of two).
	Capacity int
	// PinProducer/PinConsumer optionally pin the two threads.
	PinProducer, PinConsumer []int
}

// StreamResult is the outcome of one streaming run.
type StreamResult struct {
	// Items transferred.
	Items int
	// Elapsed wall time.
	Elapsed time.Duration
}

// MopsPerSec returns items transferred per second, in millions.
func (r StreamResult) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds() / 1e6
}

// RunStream executes the streaming transfer once.
func RunStream(cfg StreamConfig) (StreamResult, error) {
	if cfg.Items < 1 {
		cfg.Items = 1
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 1 << 12
	}
	q, err := cfg.Factory.New(cfg.Capacity)
	if err != nil {
		return StreamResult{}, err
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	ready := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		undo, _ := pin(cfg.PinConsumer)
		defer undo()
		close(ready)
		<-start
		expect := uint64(0)
		for expect < uint64(cfg.Items) {
			v, ok := q.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			_ = v
			expect++
		}
	}()
	<-ready
	undo, _ := pin(cfg.PinProducer)
	defer undo()
	t0 := time.Now()
	close(start)
	for i := uint64(0); i < uint64(cfg.Items); i++ {
		q.Enqueue(i)
	}
	q.Flush()
	wg.Wait()
	return StreamResult{Items: cfg.Items, Elapsed: time.Since(t0)}, nil
}
