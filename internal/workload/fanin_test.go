package workload

import (
	"runtime"
	"testing"

	"ffq/internal/core"
)

// TestRunFanIn checks exactly-once delivery through the shared queue
// for both fan-in variants.
func TestRunFanIn(t *testing.T) {
	for _, v := range []Variant{VariantMPMC, VariantSharded} {
		res, err := RunFanIn(FanInConfig{
			Variant:          v,
			Producers:        3,
			Consumers:        2,
			ItemsPerProducer: 5000,
			QueueSize:        1 << 8,
			Layout:           core.LayoutPadded,
			Instrument:       true,
		})
		if err != nil {
			t.Fatalf("RunFanIn(%v): %v", v, err)
		}
		if res.Items != 3*5000 {
			t.Fatalf("%v: Items = %d, want %d", v, res.Items, 3*5000)
		}
		if res.Stats == nil {
			t.Fatalf("%v: no stats despite Instrument", v)
		}
		if got := res.Stats.Dequeues; got != int64(res.Items) {
			t.Fatalf("%v: %d dequeues recorded, want %d", v, got, res.Items)
		}
	}
}

// TestRunFanIn_RejectsVariant checks that the per-producer-queue
// variants are refused (they have no shared-queue shape).
func TestRunFanIn_RejectsVariant(t *testing.T) {
	_, err := RunFanIn(FanInConfig{
		Variant:          VariantSPMC,
		Producers:        1,
		Consumers:        1,
		ItemsPerProducer: 10,
	})
	if err == nil {
		t.Fatal("RunFanIn(spmc) succeeded, want error")
	}
}

// TestShardedBeatsMPMC is the acceptance gate of the sharding issue:
// on the contended fan-in shape (4 producers, 4 consumers, one shared
// queue), the sharded per-producer-lane queue must beat a single
// FFQ^m by at least 1.5x. The win comes from removing the shared tail
// FAA and the CAS-per-cell state machine from the producer path; it
// only materializes when the producers actually run in parallel, so
// the gate requires >= 4 CPUs (the "CI hardware" of the issue) and is
// meaningless on smaller hosts.
func TestShardedBeatsMPMC(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate; skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("throughput gate needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	run := func(v Variant) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			res, err := RunFanIn(FanInConfig{
				Variant:          v,
				Producers:        4,
				Consumers:        4,
				ItemsPerProducer: 250_000,
				QueueSize:        1 << 12,
				Layout:           core.LayoutPadded,
			})
			if err != nil {
				t.Fatalf("RunFanIn(%v): %v", v, err)
			}
			if m := res.MopsPerSec(); m > best {
				best = m
			}
		}
		return best
	}
	mpmc := run(VariantMPMC)
	sharded := run(VariantSharded)
	t.Logf("mpmc %.2f Mops/s, sharded %.2f Mops/s (%.2fx)", mpmc, sharded, sharded/mpmc)
	if sharded < 1.5*mpmc {
		t.Fatalf("sharded speedup %.2fx, want >= 1.5x (sharded %.2f vs mpmc %.2f Mops/s)",
			sharded/mpmc, sharded, mpmc)
	}
}
