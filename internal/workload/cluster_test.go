package workload

import "testing"

// TestClusterReplicationSmoke runs the clustered workload end to end:
// a 3-node 8-partition replication-2 in-process cluster takes keyed
// publishes routed to per-partition owners, every message is acked,
// and RunCluster itself fails unless every follower cursor converges
// to its owner's head — so a pass means the async replication drained
// to zero lag. The reported rates feed EXPERIMENTS.md.
func TestClusterReplicationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-broker workload; skipped in -short")
	}
	res, err := RunCluster(ClusterConfig{
		Nodes:          3,
		Partitions:     8,
		Replication:    2,
		Keys:           64,
		MessagesPerKey: 100,
		MaxBatch:       64,
		DataDir:        t.TempDir(),
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if res.Messages != 64*100 {
		t.Fatalf("messages = %d, want %d", res.Messages, 64*100)
	}
	t.Logf("keyed publish %.0f msgs/s (%d msgs in %s), replication catch-up %s after last ack",
		res.PublishMsgsPerSec(), res.Messages, res.Publish.Round(0), res.Catchup)
}

// BenchmarkClusterPublish reports keyed acked-publish throughput and
// replication catch-up for the in-process cluster, next to the
// single-broker numbers from BenchmarkDurablePublish.
func BenchmarkClusterPublish(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunCluster(ClusterConfig{
			Nodes:          3,
			Partitions:     8,
			Replication:    2,
			Keys:           256,
			MessagesPerKey: 100,
			MaxBatch:       64,
			DataDir:        b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PublishMsgsPerSec(), "msgs/s")
		b.ReportMetric(res.Catchup.Seconds()*1000, "catchup-ms")
	}
}
