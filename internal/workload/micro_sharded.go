package workload

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"ffq/internal/affinity"
	"ffq/internal/core"
	"ffq/internal/obs"
)

// The sharded microbenchmark differs structurally from the other
// variants: instead of one submission queue per producer, every
// producer shares ONE core.Sharded queue and holds an exclusive lane
// handle on it — the deployment the sharding exists for. Consumers
// are a single pool draining the shared queue, so an item dequeued by
// consumer c may belong to any producer; the producer index is
// encoded in the item's high bits and the consumer routes the echo
// into the response queue it owns for that producer. Each (consumer,
// producer) pair has its own SPSC response queue, keeping every
// response path single-producer/single-consumer.

// shardedSeqBits is the value-encoding split: low bits carry the
// sequence number, high bits the producer index.
const shardedSeqBits = 48

// shardedRespClamp bounds the per-producer outstanding window (and
// with it the response-queue capacity). The other variants let the
// window grow with the queue size; here the response plane is P*C*P
// queues, so an unbounded window would turn the large-lane sweep
// points into allocation benchmarks.
const shardedRespClamp = 8192

// runMicroSharded executes the microbenchmark for VariantSharded.
// cfg.QueueSize is the per-lane capacity; the queue has Producers+1
// lanes, so every producer holds an exclusive wait-free lane and lane
// 0 stays open for the shared fallback path (unused here, but the
// layout matches production use).
func runMicroSharded(cfg MicroConfig, top *affinity.Topology, rec *obs.Recorder) (MicroResult, error) {
	if cfg.ItemsPerProducer >= 1<<shardedSeqBits {
		return MicroResult{}, fmt.Errorf("workload: sharded variant encodes the sequence in %d bits, got %d items", shardedSeqBits, cfg.ItemsPerProducer)
	}
	lanes := cfg.Producers + 1
	q, err := core.NewSharded[uint64](lanes, cfg.QueueSize,
		core.WithLayout(cfg.Layout), core.WithRecorder(rec))
	if err != nil {
		return MicroResult{}, err
	}

	maxOutstanding := cfg.QueueSize / 2
	if maxOutstanding > shardedRespClamp {
		maxOutstanding = shardedRespClamp
	}
	if maxOutstanding < 1 {
		maxOutstanding = 1
	}
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	if batch > maxOutstanding {
		batch = maxOutstanding
	}
	if rem := cfg.ItemsPerProducer % batch; rem != 0 {
		cfg.ItemsPerProducer += batch - rem
	}
	respCap := 2
	for respCap < maxOutstanding {
		respCap <<= 1
	}

	// resps[ci][p] carries producer p's items echoed by consumer ci.
	consumers := cfg.Producers * cfg.ConsumersPerProducer
	resps := make([][]*core.SPSC[uint64], consumers)
	for ci := range resps {
		resps[ci] = make([]*core.SPSC[uint64], cfg.Producers)
		for p := range resps[ci] {
			rq, err := core.NewSPSC[uint64](respCap, core.WithLayout(cfg.Layout))
			if err != nil {
				return MicroResult{}, err
			}
			resps[ci][p] = rq
		}
	}

	var ready, prodDone, done sync.WaitGroup
	start := make(chan struct{})

	for ci := 0; ci < consumers; ci++ {
		ready.Add(1)
		done.Add(1)
		go func(ci int) {
			defer done.Done()
			pprof.Do(context.Background(), pprof.Labels(
				"ffq_role", "consumer",
				"ffq_queue", "sharded",
			), func(context.Context) {
				undo, _ := affinity.Pin(top.Assign(cfg.Policy, ci%cfg.Producers).Consumer)
				defer undo()
				ready.Done()
				<-start
				route := func(v uint64) {
					resps[ci][v>>shardedSeqBits].Enqueue(v)
				}
				// Stall injection targets consumer 0 of the shared pool
				// (the sharded items carry no timestamps — their high
				// bits encode the producer — so latency mode here means
				// per-op recorder histograms plus this disturbance).
				stallN := 0
				if ci == 0 {
					stallN = cfg.StallEvery
				}
				processed := 0
				if batch > 1 {
					buf := make([]uint64, batch)
					for {
						n, ok := q.DequeueBatch(buf)
						for i := 0; i < n; i++ {
							route(buf[i])
						}
						if !ok {
							return
						}
						if stallN > 0 {
							if processed += n; processed >= stallN {
								processed = 0
								time.Sleep(cfg.StallDuration)
							}
						}
					}
				}
				for {
					v, ok := q.Dequeue()
					if !ok {
						return
					}
					route(v)
					if stallN > 0 {
						if processed++; processed >= stallN {
							processed = 0
							time.Sleep(cfg.StallDuration)
						}
					}
				}
			})
		}(ci)
	}

	for p := 0; p < cfg.Producers; p++ {
		ready.Add(1)
		prodDone.Add(1)
		done.Add(1)
		go func(p int) {
			defer done.Done()
			defer prodDone.Done()
			pprof.Do(context.Background(), pprof.Labels(
				"ffq_role", "producer",
				"ffq_queue", strconv.Itoa(p),
			), func(context.Context) {
				undo, _ := affinity.Pin(top.Assign(cfg.Policy, p).Producer)
				defer undo()
				h, ok := q.Acquire()
				if !ok {
					// Producers+1 lanes guarantee a lane per producer.
					panic("workload: sharded lane acquisition failed")
				}
				defer h.Release()
				ready.Done()
				<-start
				tag := uint64(p) << shardedSeqBits
				sent, received, outstanding := 0, 0, 0
				var batchBuf []uint64
				if batch > 1 {
					batchBuf = make([]uint64, batch)
				}
				for received < cfg.ItemsPerProducer {
					if batch > 1 {
						for sent < cfg.ItemsPerProducer && outstanding+batch <= maxOutstanding {
							for i := range batchBuf {
								batchBuf[i] = tag | uint64(sent+i+1)
							}
							h.EnqueueBatch(batchBuf)
							sent += batch
							outstanding += batch
						}
					} else {
						for sent < cfg.ItemsPerProducer && outstanding < maxOutstanding {
							h.Enqueue(tag | uint64(sent+1))
							sent++
							outstanding++
						}
					}
					drained := false
					for ci := 0; ci < consumers; ci++ {
						if _, ok := resps[ci][p].TryDequeue(); ok {
							received++
							outstanding--
							drained = true
						}
					}
					if !drained {
						runtime.Gosched()
					}
				}
			})
		}(p)
	}
	// Close once every producer released its lane: the sharded Close
	// contract requires all final enqueues ordered before it.
	go func() {
		prodDone.Wait()
		q.Close()
	}()

	ready.Wait()
	t0 := time.Now()
	close(start)
	done.Wait()
	res := MicroResult{
		Items:   cfg.Producers * cfg.ItemsPerProducer,
		Elapsed: time.Since(t0),
		Lanes:   q.Lanes(),
		LaneCap: q.LaneCap(),
	}
	if rec != nil {
		s := rec.Snapshot()
		res.Stats = &s
	}
	return res, nil
}
