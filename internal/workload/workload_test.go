package workload

import (
	"testing"

	"ffq/internal/affinity"
	"ffq/internal/allqueues"
	"ffq/internal/core"
	"ffq/internal/spscqueues"
)

func TestRunPairsSmoke(t *testing.T) {
	f, err := allqueues.ByName("ffq-mpmc")
	if err != nil {
		t.Fatal(err)
	}
	res := RunPairs(PairsConfig{
		Factory:    f.Factory,
		Threads:    2,
		TotalPairs: 2000,
		Capacity:   1 << 10,
		DelayMinNS: 0,
		DelayMaxNS: 0,
	})
	if res.Ops != 4000 {
		t.Fatalf("Ops = %d, want 4000", res.Ops)
	}
	if res.MopsPerSec() <= 0 {
		t.Fatalf("throughput %v", res.MopsPerSec())
	}
}

func TestRunPairsEveryQueue(t *testing.T) {
	for _, f := range allqueues.Factories() {
		threads := 2
		if f.MaxThreads == 1 {
			threads = 1
		}
		res := RunPairs(PairsConfig{
			Factory:    f.Factory,
			Threads:    threads,
			TotalPairs: 500,
			Capacity:   1 << 10,
		})
		if res.MopsPerSec() <= 0 {
			t.Errorf("%s: zero throughput", f.Name)
		}
	}
}

func TestRunPairsDefaultsClamp(t *testing.T) {
	f, _ := allqueues.ByName("msqueue")
	res := RunPairs(PairsConfig{Factory: f.Factory, Threads: 0, TotalPairs: 10})
	if res.Ops < 2 {
		t.Fatalf("Ops = %d", res.Ops)
	}
}

func TestVariantString(t *testing.T) {
	if VariantSPMC.String() != "spmc" || VariantMPMC.String() != "mpmc" || VariantSPSC.String() != "spsc" {
		t.Error("variant names")
	}
	if VariantUnbounded.String() != "unbounded" || VariantUnboundedMPMC.String() != "unbounded-mpmc" {
		t.Error("unbounded variant names")
	}
}

func TestRunMicroValidation(t *testing.T) {
	if _, err := RunMicro(MicroConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	_, err := RunMicro(MicroConfig{
		Variant: VariantSPSC, Producers: 1, ConsumersPerProducer: 2, ItemsPerProducer: 10,
	})
	if err == nil {
		t.Error("SPSC with 2 consumers accepted")
	}
}

func TestRunMicroAllVariants(t *testing.T) {
	for _, v := range []Variant{VariantSPMC, VariantMPMC, VariantSPSC, VariantUnbounded, VariantUnboundedMPMC} {
		consumers := 2
		if v == VariantSPSC {
			consumers = 1
		}
		res, err := RunMicro(MicroConfig{
			Variant:              v,
			Layout:               core.LayoutPadded,
			Producers:            1,
			ConsumersPerProducer: consumers,
			ItemsPerProducer:     3000,
			QueueSize:            256,
			Policy:               affinity.NoAffinity,
		})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Items != 3000 || res.MopsPerSec() <= 0 {
			t.Fatalf("%v: %+v", v, res)
		}
	}
}

// TestRunMicroBatch runs the unbounded variants with batched
// submission at several batch sizes, including one that does not
// divide the item count (rounded up internally) and one larger than
// the outstanding allowance (clamped internally).
func TestRunMicroBatch(t *testing.T) {
	for _, v := range []Variant{VariantUnbounded, VariantUnboundedMPMC} {
		for _, batch := range []int{1, 8, 64, 7, 1 << 20} {
			res, err := RunMicro(MicroConfig{
				Variant:              v,
				Producers:            1,
				ConsumersPerProducer: 2,
				ItemsPerProducer:     3000,
				QueueSize:            64, // segment size for these variants
				Batch:                batch,
				Policy:               affinity.NoAffinity,
			})
			if err != nil {
				t.Fatalf("%v batch=%d: %v", v, batch, err)
			}
			if res.Items < 3000 || res.MopsPerSec() <= 0 {
				t.Fatalf("%v batch=%d: %+v", v, batch, res)
			}
		}
	}
	// Bounded variants run batches through the software-loop fallback.
	res, err := RunMicro(MicroConfig{
		Variant:              VariantSPMC,
		Producers:            1,
		ConsumersPerProducer: 2,
		ItemsPerProducer:     2000,
		QueueSize:            256,
		Batch:                16,
		Policy:               affinity.NoAffinity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items < 2000 {
		t.Fatalf("Items = %d", res.Items)
	}
}

func TestRunMicroMultiProducer(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Variant:              VariantMPMC,
		Producers:            2,
		ConsumersPerProducer: 2,
		ItemsPerProducer:     2000,
		QueueSize:            128,
		Policy:               affinity.SiblingHT, // exercises pinning paths
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != 4000 {
		t.Fatalf("Items = %d", res.Items)
	}
}

func TestRunMicroAllLayouts(t *testing.T) {
	for _, l := range core.Layouts {
		res, err := RunMicro(MicroConfig{
			Variant:              VariantSPMC,
			Layout:               l,
			Producers:            1,
			ConsumersPerProducer: 1,
			ItemsPerProducer:     2000,
			QueueSize:            64,
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if res.Items != 2000 {
			t.Fatalf("%v: %+v", l, res)
		}
	}
}

func TestRunStreamEveryQueue(t *testing.T) {
	for _, f := range spscqueues.Factories() {
		res, err := RunStream(StreamConfig{Factory: f, Items: 50000, Capacity: 256})
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if res.Items != 50000 || res.MopsPerSec() <= 0 {
			t.Errorf("%s: %+v", f.Name, res)
		}
	}
}

func TestRunStreamDefaults(t *testing.T) {
	f, err := spscqueues.ByName("ffq-spsc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStream(StreamConfig{Factory: f})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != 1 {
		t.Fatalf("Items = %d", res.Items)
	}
}

func TestRunPairsLatency(t *testing.T) {
	f, err := allqueues.ByName("ffq-mpmc")
	if err != nil {
		t.Fatal(err)
	}
	res := RunPairs(PairsConfig{
		Factory:        f.Factory,
		Threads:        2,
		TotalPairs:     2000,
		Capacity:       1 << 10,
		MeasureLatency: true,
	})
	if res.EnqueueNS == nil || res.DequeueNS == nil {
		t.Fatal("latency histograms missing")
	}
	if res.EnqueueNS.Total() != 2000 || res.DequeueNS.Total() != 2000 {
		t.Fatalf("histogram totals: enq=%d deq=%d", res.EnqueueNS.Total(), res.DequeueNS.Total())
	}
	if res.EnqueueNS.Mean() <= 0 || res.DequeueNS.Quantile(0.99) <= 0 {
		t.Fatal("degenerate latency stats")
	}
	// Without the flag the histograms stay nil.
	res2 := RunPairs(PairsConfig{Factory: f.Factory, Threads: 1, TotalPairs: 10})
	if res2.EnqueueNS != nil || res2.DequeueNS != nil {
		t.Fatal("histograms allocated without MeasureLatency")
	}
}

// TestRunMicroInstrumented checks the Instrument plumbing: the result
// carries an aggregate submission-queue snapshot whose op counts match
// the items moved.
func TestRunMicroInstrumented(t *testing.T) {
	for _, v := range []Variant{VariantSPSC, VariantSPMC, VariantMPMC} {
		consumers := 2
		if v == VariantSPSC {
			consumers = 1
		}
		res, err := RunMicro(MicroConfig{
			Variant:              v,
			Producers:            2,
			ConsumersPerProducer: consumers,
			ItemsPerProducer:     500,
			QueueSize:            1 << 6,
			Instrument:           true,
		})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Stats == nil {
			t.Fatalf("%v: Instrument set but Stats nil", v)
		}
		if got := res.Stats.Enqueues; got != 1000 {
			t.Errorf("%v: enqueues = %d, want 1000", v, got)
		}
		if got := res.Stats.Dequeues; got != 1000 {
			t.Errorf("%v: dequeues = %d, want 1000", v, got)
		}
	}
}

// TestRunMicroUninstrumented checks the default keeps Stats nil.
func TestRunMicroUninstrumented(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Variant:              VariantSPMC,
		Producers:            1,
		ConsumersPerProducer: 1,
		ItemsPerProducer:     100,
		QueueSize:            1 << 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil {
		t.Fatalf("uninstrumented run returned stats %+v", res.Stats)
	}
}
