package workload

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ffq/internal/core"
	"ffq/internal/obs"
)

// FanInConfig drives P producers into ONE shared queue drained by a
// pool of C consumers — the contended multi-producer shape on which
// the paper's evaluation (Section V) shows FFQ^m paying its
// CAS-per-cell penalty. This is the workload behind the
// sharded-vs-MPMC comparison: identical thread counts and item
// volume, only the queue in the middle changes.
type FanInConfig struct {
	// Variant selects the shared queue: VariantMPMC (one FFQ^m, all
	// producers on one tail word) or VariantSharded (per-producer
	// FFQ^s lanes, each producer holding an exclusive handle).
	Variant Variant
	// Producers and Consumers are the thread counts on each side.
	Producers int
	Consumers int
	// ItemsPerProducer is how many items each producer pushes.
	ItemsPerProducer int
	// QueueSize is the MPMC capacity, or the per-lane capacity for
	// the sharded variant (so the aggregate capacity scales with P
	// exactly as a deployment's would). Power of two; 0 = 1<<12.
	QueueSize int
	// Layout is the cell memory layout.
	Layout core.Layout
	// Instrument attaches a shared recorder and returns its snapshot.
	Instrument bool
}

// FanInResult is the outcome of one fan-in run.
type FanInResult struct {
	// Items is the number of items that crossed the queue.
	Items int
	// Elapsed is the wall time from the start signal until the last
	// consumer finished draining.
	Elapsed time.Duration
	// Gaps is the queue's always-on skipped-rank counter.
	Gaps int64
	// Stats is the instrumentation snapshot; nil unless Instrument.
	Stats *obs.Stats
}

// MopsPerSec returns items through the queue per second, in millions.
func (r FanInResult) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds() / 1e6
}

// fanInQueue is the face the two variants share: a per-producer
// enqueue function, the pooled dequeue, and close-after-producers.
type fanInQueue interface {
	enqueuer(p int) (func(uint64), func())
	dequeue() (uint64, bool)
	close()
	gaps() int64
}

type fanInMPMC struct{ q *core.MPMC[uint64] }

func (f fanInMPMC) enqueuer(int) (func(uint64), func()) {
	return func(v uint64) { f.q.Enqueue(v) }, func() {}
}
func (f fanInMPMC) dequeue() (uint64, bool) { return f.q.Dequeue() }
func (f fanInMPMC) close()                  { f.q.Close() }
func (f fanInMPMC) gaps() int64             { return f.q.Gaps() }

type fanInSharded struct{ q *core.Sharded[uint64] }

func (f fanInSharded) enqueuer(int) (func(uint64), func()) {
	h, ok := f.q.Acquire()
	if !ok {
		// lanes = Producers+1 guarantees a lane per producer.
		panic("workload: fan-in lane acquisition failed")
	}
	return func(v uint64) { h.Enqueue(v) }, h.Release
}
func (f fanInSharded) dequeue() (uint64, bool) { return f.q.Dequeue() }
func (f fanInSharded) close()                  { f.q.Close() }
func (f fanInSharded) gaps() int64             { return f.q.Gaps() }

// RunFanIn executes the fan-in workload once.
func RunFanIn(cfg FanInConfig) (FanInResult, error) {
	if cfg.Producers < 1 || cfg.Consumers < 1 || cfg.ItemsPerProducer < 1 {
		return FanInResult{}, fmt.Errorf("workload: non-positive fan-in config %+v", cfg)
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1 << 12
	}
	var rec *obs.Recorder
	if cfg.Instrument {
		rec = obs.NewRecorder()
	}
	opts := []core.Option{core.WithLayout(cfg.Layout), core.WithRecorder(rec)}

	var q fanInQueue
	switch cfg.Variant {
	case VariantMPMC:
		m, err := core.NewMPMC[uint64](cfg.QueueSize, opts...)
		if err != nil {
			return FanInResult{}, err
		}
		q = fanInMPMC{m}
	case VariantSharded:
		s, err := core.NewSharded[uint64](cfg.Producers+1, cfg.QueueSize, opts...)
		if err != nil {
			return FanInResult{}, err
		}
		q = fanInSharded{s}
	default:
		return FanInResult{}, fmt.Errorf("workload: fan-in supports mpmc and sharded, not %v", cfg.Variant)
	}

	var ready, prodDone, done sync.WaitGroup
	start := make(chan struct{})
	var consumed atomic.Int64

	for c := 0; c < cfg.Consumers; c++ {
		ready.Add(1)
		done.Add(1)
		go func(c int) {
			defer done.Done()
			pprof.Do(context.Background(), pprof.Labels(
				"ffq_role", "consumer", "ffq_worker", strconv.Itoa(c),
			), func(context.Context) {
				ready.Done()
				<-start
				n := int64(0)
				for {
					if _, ok := q.dequeue(); !ok {
						consumed.Add(n)
						return
					}
					n++
				}
			})
		}(c)
	}
	for p := 0; p < cfg.Producers; p++ {
		ready.Add(1)
		prodDone.Add(1)
		done.Add(1)
		go func(p int) {
			defer done.Done()
			defer prodDone.Done()
			pprof.Do(context.Background(), pprof.Labels(
				"ffq_role", "producer", "ffq_worker", strconv.Itoa(p),
			), func(context.Context) {
				enq, release := q.enqueuer(p)
				defer release()
				ready.Done()
				<-start
				tag := uint64(p) << shardedSeqBits
				for i := 0; i < cfg.ItemsPerProducer; i++ {
					enq(tag | uint64(i+1))
				}
			})
		}(p)
	}
	go func() {
		prodDone.Wait()
		q.close()
	}()

	ready.Wait()
	t0 := time.Now()
	close(start)
	done.Wait()
	res := FanInResult{
		Items:   int(consumed.Load()),
		Elapsed: time.Since(t0),
		Gaps:    q.gaps(),
	}
	if rec != nil {
		s := rec.Snapshot()
		res.Stats = &s
	}
	if want := cfg.Producers * cfg.ItemsPerProducer; res.Items != want {
		return res, fmt.Errorf("workload: fan-in consumed %d of %d items", res.Items, want)
	}
	return res, nil
}
