package workload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"ffq/internal/shm"
)

// ShmConfig describes one shared-memory SPSC transport run: a producer
// (in-process goroutine, or a separate process via Spawn) streams Items
// fixed-size payloads through an mmap segment to a consumer in this
// process, which validates the sequence numbers stamped into them.
type ShmConfig struct {
	// Dir is where the segment file is created; empty means a fresh
	// temporary directory.
	Dir string
	// SlotSize is the payload size in bytes (>= 8: each payload leads
	// with its sequence number).
	SlotSize int
	// Capacity is the ring's minimum capacity in payloads.
	Capacity int
	// Items is the number of payloads to move.
	Items int
	// Batch is the producer's EnqueueBatch size; <= 1 publishes
	// singles.
	Batch int
	// Spawn, when set, starts the producer as a separate process: it
	// is called with the segment path the producer must create, and
	// returns a wait function that reaps the producer. nil runs the
	// producer as a goroutine — same protocol, no process isolation.
	Spawn func(path string) (wait func() error, err error)
}

// ShmResult is the outcome of RunShm.
type ShmResult struct {
	// Items and Bytes are the payloads and payload bytes moved.
	Items int
	Bytes int64
	// Elapsed is consumer wall time, attach to last payload.
	Elapsed time.Duration
	// TwoProcess records whether the producer ran as its own process.
	TwoProcess bool
}

// NsPerElement is the per-payload cost in nanoseconds.
func (r ShmResult) NsPerElement() float64 {
	if r.Items == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Items)
}

// MsgsPerSec is the realized payload rate.
func (r ShmResult) MsgsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds()
}

var shmRunSeq atomic.Uint64

// ShmProduce is the producer half of the workload: create the segment
// at path and stream items slotSize-byte payloads, each stamped with
// its sequence number, in batches of batch. The ffq-micro child
// process calls it; RunShm uses it in-process when Spawn is nil.
func ShmProduce(path string, slotSize, capacity, items, batch int) error {
	p, err := shm.Create(path, "micro", slotSize, capacity)
	if err != nil {
		return err
	}
	defer p.Detach()
	if batch < 1 {
		batch = 1
	}
	payloads := make([][]byte, batch)
	backing := make([]byte, batch*slotSize)
	for i := range payloads {
		payloads[i] = backing[i*slotSize : (i+1)*slotSize]
	}
	for seq := 0; seq < items; {
		n := batch
		if left := items - seq; left < n {
			n = left
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(payloads[i], uint64(seq+i))
		}
		if n == 1 {
			err = p.Enqueue(payloads[0])
		} else {
			err = p.EnqueueBatch(payloads[:n])
		}
		if err != nil {
			return err
		}
		seq += n
	}
	return p.Close()
}

// RunShm executes one shared-memory transport run and reports the
// consumer-side throughput. Every payload's sequence stamp is checked,
// so the result also certifies exactly-once in-order delivery.
func RunShm(cfg ShmConfig) (ShmResult, error) {
	if cfg.SlotSize < 8 {
		return ShmResult{}, errors.New("workload: shm SlotSize must be >= 8 (payloads carry a sequence stamp)")
	}
	if cfg.Items <= 0 {
		return ShmResult{}, errors.New("workload: shm Items must be positive")
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ffq-shm-micro")
		if err != nil {
			return ShmResult{}, err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, fmt.Sprintf("micro-%d-%d.ffq", os.Getpid(), shmRunSeq.Add(1)))
	defer os.Remove(path)

	var wait func() error
	prodErr := make(chan error, 1)
	if cfg.Spawn != nil {
		w, err := cfg.Spawn(path)
		if err != nil {
			return ShmResult{}, err
		}
		wait = w
	} else {
		go func() {
			prodErr <- ShmProduce(path, cfg.SlotSize, cfg.Capacity, cfg.Items, cfg.Batch)
		}()
	}

	// The producer creates the segment (atomic rename); wait for it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return ShmResult{}, errors.New("workload: shm segment never appeared")
		}
		time.Sleep(200 * time.Microsecond)
	}
	c, err := shm.Attach(path)
	if err != nil {
		return ShmResult{}, err
	}
	defer c.Detach()

	buf := make([]byte, c.Geometry().SlotSize)
	start := time.Now()
	var bytes int64
	for seq := 0; seq < cfg.Items; seq++ {
		n, err := c.Next(buf)
		if err != nil {
			return ShmResult{}, fmt.Errorf("workload: shm consumer at %d/%d: %w", seq, cfg.Items, err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != uint64(seq) {
			return ShmResult{}, fmt.Errorf("workload: shm payload %d carries sequence %d", seq, got)
		}
		bytes += int64(n)
	}
	elapsed := time.Since(start)
	if _, err := c.Next(buf); !errors.Is(err, shm.ErrClosed) {
		return ShmResult{}, fmt.Errorf("workload: shm stream did not end cleanly: %v", err)
	}
	if wait != nil {
		if err := wait(); err != nil {
			return ShmResult{}, fmt.Errorf("workload: shm producer process: %w", err)
		}
	} else if err := <-prodErr; err != nil {
		return ShmResult{}, fmt.Errorf("workload: shm producer: %w", err)
	}
	return ShmResult{
		Items:      cfg.Items,
		Bytes:      bytes,
		Elapsed:    elapsed,
		TwoProcess: cfg.Spawn != nil,
	}, nil
}
