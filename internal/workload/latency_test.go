package workload

import (
	"testing"
	"time"
)

// TestRunMicroLatencyMode checks the latency-mode plumbing: the sojourn
// histogram covers every item, the recorder carries per-op percentile
// snapshots, and a plain run allocates none of it.
func TestRunMicroLatencyMode(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Variant:              VariantSPMC,
		Producers:            2,
		ConsumersPerProducer: 2,
		ItemsPerProducer:     2000,
		QueueSize:            1 << 8,
		MeasureLatency:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sojourn == nil {
		t.Fatal("MeasureLatency set but Sojourn nil")
	}
	if res.Sojourn.Count != int64(res.Items) {
		t.Fatalf("sojourn count = %d, want %d", res.Sojourn.Count, res.Items)
	}
	if res.Sojourn.P50NS <= 0 || res.Sojourn.P999NS < res.Sojourn.P50NS || res.Sojourn.MaxNS < res.Sojourn.P999NS {
		t.Fatalf("degenerate sojourn percentiles: %v", res.Sojourn)
	}
	if res.Stats == nil || res.Stats.EnqLatency == nil || res.Stats.DeqLatency == nil {
		t.Fatalf("per-op latency snapshots missing: %+v", res.Stats)
	}
	if res.Stats.EnqLatency.Count != int64(res.Items) {
		t.Fatalf("enq latency count = %d, want %d", res.Stats.EnqLatency.Count, res.Items)
	}

	plain, err := RunMicro(MicroConfig{
		Variant:              VariantSPMC,
		Producers:            1,
		ConsumersPerProducer: 1,
		ItemsPerProducer:     100,
		QueueSize:            1 << 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sojourn != nil || plain.Stats != nil {
		t.Fatal("plain run allocated latency state")
	}
}

// TestRunMicroLatencySharded checks latency mode on the sharded
// variant: items carry the producer tag in their high bits, so there is
// no sojourn stamp — but the recorder's per-op histograms still work.
func TestRunMicroLatencySharded(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Variant:              VariantSharded,
		Producers:            2,
		ConsumersPerProducer: 1,
		ItemsPerProducer:     1000,
		QueueSize:            1 << 8,
		MeasureLatency:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sojourn != nil {
		t.Fatal("sharded variant cannot stamp items, Sojourn should be nil")
	}
	if res.Stats == nil || res.Stats.EnqLatency == nil || res.Stats.DeqLatency == nil {
		t.Fatalf("per-op latency snapshots missing: %+v", res.Stats)
	}
	if res.Stats.DeqLatency.Count != int64(res.Items) {
		t.Fatalf("deq latency count = %d, want %d", res.Stats.DeqLatency.Count, res.Items)
	}
}

// tailGate is the p999 sojourn bound the stalled run must trip. The
// injected disturbance parks the only consumer for ~500us several
// times, so roughly a flow-control window of items per stall waits the
// full sleep — orders of magnitude above the gate.
const tailGate = 100 * time.Microsecond

// TestTailLatencyGate is the demonstration the ROADMAP's tail-latency
// item asks for: a deliberately stalled consumer is invisible to the
// mean-throughput gates (the run completes within ~10% of baseline)
// but trips the p999 sojourn gate. Each side takes the best of three
// runs so scheduler noise on a loaded machine cannot fake a stall.
func TestTailLatencyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("latency gate needs full-size runs")
	}
	base := MicroConfig{
		Variant:              VariantSPMC,
		Producers:            1,
		ConsumersPerProducer: 1,
		ItemsPerProducer:     400_000,
		QueueSize:            1 << 10,
		// A small response queue bounds the flow-control window to 32
		// outstanding items: the baseline sojourn is then queueing
		// delay over a short queue (a few us), keeping its p999 well
		// under the gate so the stall contrast is clean.
		RespQueueSize:  64,
		MeasureLatency: true,
	}
	stalled := base
	// 20 stalls x ~a window of delayed items each = ~0.16% of items
	// held for the full sleep — above the 0.1% tail the p999 reads,
	// below anything a mean gate can see.
	stalled.StallEvery = 20_000
	stalled.StallDuration = 500 * time.Microsecond
	stalled.StallThreshold = tailGate

	best := func(cfg MicroConfig) MicroResult {
		var bestRes MicroResult
		for i := 0; i < 3; i++ {
			res, err := RunMicro(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if bestRes.Elapsed == 0 || res.Elapsed < bestRes.Elapsed {
				bestRes = res
			}
		}
		return bestRes
	}
	b := best(base)
	s := best(stalled)

	if s.Sojourn.P999NS < tailGate.Nanoseconds() {
		t.Errorf("stalled run p999 = %v, gate %v not tripped (sojourn %v)",
			time.Duration(s.Sojourn.P999NS), tailGate, s.Sojourn)
	}
	if b.Sojourn.P999NS >= tailGate.Nanoseconds() {
		// A clean baseline sits far below the gate; a loaded CI machine
		// can push it over, which voids the contrast but not the gate.
		t.Logf("baseline p999 %v already above gate (noisy machine)", time.Duration(b.Sojourn.P999NS))
	} else if s.Sojourn.P999NS < 4*b.Sojourn.P999NS {
		t.Errorf("stalled p999 %v not clearly above baseline p999 %v",
			time.Duration(s.Sojourn.P999NS), time.Duration(b.Sojourn.P999NS))
	}

	// The same disturbance is invisible to a mean-throughput gate: the
	// total injected sleep is ~2ms against a run tens of ms long. Allow
	// slack beyond the nominal 10% for machine noise.
	if ratio := s.MopsPerSec() / b.MopsPerSec(); ratio < 0.75 {
		t.Errorf("stalled throughput fell to %.0f%% of baseline; stall should be a tail effect, not a mean effect", ratio*100)
	} else {
		t.Logf("throughput ratio %.2f, baseline p999 %v, stalled p999 %v",
			ratio, time.Duration(b.Sojourn.P999NS), time.Duration(s.Sojourn.P999NS))
	}
}
