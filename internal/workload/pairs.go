// Package workload implements the two benchmark workloads of the
// paper's evaluation:
//
//   - Pairs: the comparative benchmark of Section V-G (from Yang &
//     Mellor-Crummey's framework): every thread repeatedly performs an
//     enqueue/dequeue pair on one shared queue, with a 50-150 ns
//     random think time between operations, for a fixed total number
//     of pairs partitioned evenly among threads.
//   - Micro: the SPMC asynchronous-system-call microbenchmark of
//     Section V-A: producers own a submission queue and per-consumer
//     SPSC response queues; consumers echo every submission back.
package workload

import (
	"runtime"
	"sync"
	"time"

	"ffq/internal/queue"
	"ffq/internal/spin"
	"ffq/internal/stats"
)

// PairsConfig parameterizes the comparative pairs benchmark.
type PairsConfig struct {
	// Factory builds the queue under test.
	Factory queue.Factory
	// Threads is the number of workers (the paper sweeps 1..2x cores).
	Threads int
	// TotalPairs is the total number of enqueue/dequeue pairs,
	// partitioned evenly (the paper uses 10^7).
	TotalPairs int
	// Capacity for bounded queues. The paper sizes bounded rings so
	// they never fill in this workload.
	Capacity int
	// DelayMinNS/DelayMaxNS bound the random think time between
	// operations (the paper uses 50 and 150).
	DelayMinNS, DelayMaxNS int64
	// PinCPUs, when non-nil, pins worker i to PinCPUs[i%len].
	PinCPUs [][]int
	// MeasureLatency also records per-operation latency histograms.
	// Timing every operation costs two clock reads per op, so
	// throughput results from latency runs are reported separately.
	MeasureLatency bool
}

// PairsResult is the outcome of one pairs run.
type PairsResult struct {
	// Ops is the number of queue operations performed (2 per pair).
	Ops int
	// Elapsed is the measured wall time of the parallel phase.
	Elapsed time.Duration
	// EnqueueNS and DequeueNS hold per-operation latency histograms
	// when MeasureLatency was set (nil otherwise). DequeueNS includes
	// empty-retry time: it measures "time to obtain an item", the
	// end-to-end quantity an adopter cares about.
	EnqueueNS, DequeueNS *stats.Histogram
}

// MopsPerSec returns throughput in million operations per second, the
// unit of the paper's Figure 8.
func (r PairsResult) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// RunPairs executes the benchmark once and returns its throughput.
func RunPairs(cfg PairsConfig) PairsResult {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 1 << 16
	}
	shared := cfg.Factory.New(cfg.Capacity, cfg.Threads)
	perThread := cfg.TotalPairs / cfg.Threads
	if perThread < 1 {
		perThread = 1
	}

	var ready, done sync.WaitGroup
	start := make(chan struct{})
	ready.Add(cfg.Threads)
	done.Add(cfg.Threads)
	enqHists := make([]*stats.Histogram, cfg.Threads)
	deqHists := make([]*stats.Histogram, cfg.Threads)
	for w := 0; w < cfg.Threads; w++ {
		go func(w int) {
			defer done.Done()
			if cfg.PinCPUs != nil {
				undo, _ := pin(cfg.PinCPUs[w%len(cfg.PinCPUs)])
				defer undo()
			}
			q := shared.Register()
			delay := spin.NewDelayer(cfg.DelayMinNS, cfg.DelayMaxNS, uint64(w)*2654435761+1)
			var enqH, deqH *stats.Histogram
			if cfg.MeasureLatency {
				enqH, deqH = new(stats.Histogram), new(stats.Histogram)
				enqHists[w], deqHists[w] = enqH, deqH
			}
			ready.Done()
			<-start
			v := uint64(w + 1)
			for i := 0; i < perThread; i++ {
				if enqH != nil {
					t0 := time.Now()
					q.Enqueue(v)
					enqH.Add(float64(time.Since(t0).Nanoseconds()))
				} else {
					q.Enqueue(v)
				}
				delay.Wait()
				var t0 time.Time
				if deqH != nil {
					t0 = time.Now()
				}
				_, ok := q.Dequeue()
				for r := 0; !ok; r++ {
					if r >= 64 {
						runtime.Gosched()
					}
					_, ok = q.Dequeue()
				}
				if deqH != nil {
					deqH.Add(float64(time.Since(t0).Nanoseconds()))
				}
				delay.Wait()
			}
		}(w)
	}
	ready.Wait()
	t0 := time.Now()
	close(start)
	done.Wait()
	res := PairsResult{Ops: 2 * perThread * cfg.Threads, Elapsed: time.Since(t0)}
	if cfg.MeasureLatency {
		res.EnqueueNS, res.DequeueNS = mergeHists(enqHists), mergeHists(deqHists)
	}
	return res
}

// mergeHists folds per-worker histograms into one.
func mergeHists(hs []*stats.Histogram) *stats.Histogram {
	out := new(stats.Histogram)
	for _, h := range hs {
		out.Merge(h)
	}
	return out
}
