package workload

import (
	"os"
	"os/exec"
	"testing"
)

func TestRunShmInProcess(t *testing.T) {
	for _, batch := range []int{1, 8} {
		res, err := RunShm(ShmConfig{
			SlotSize: 32,
			Capacity: 256,
			Items:    20000,
			Batch:    batch,
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if res.Items != 20000 || res.TwoProcess {
			t.Fatalf("batch=%d: result %+v", batch, res)
		}
		if res.Bytes != 20000*32 {
			t.Fatalf("batch=%d: moved %d bytes", batch, res.Bytes)
		}
		if res.NsPerElement() <= 0 || res.MsgsPerSec() <= 0 {
			t.Fatalf("batch=%d: degenerate rates %+v", batch, res)
		}
	}
}

func TestRunShmValidation(t *testing.T) {
	if _, err := RunShm(ShmConfig{SlotSize: 4, Capacity: 16, Items: 10}); err == nil {
		t.Error("slot size below the sequence stamp accepted")
	}
	if _, err := RunShm(ShmConfig{SlotSize: 32, Capacity: 16, Items: 0}); err == nil {
		t.Error("zero items accepted")
	}
}

// TestShmWorkloadHelper is the producer child of TestRunShmTwoProcess.
func TestShmWorkloadHelper(t *testing.T) {
	path := os.Getenv("FFQ_SHM_WORKLOAD_PATH")
	if path == "" {
		t.Skip("helper process entry point")
	}
	if err := ShmProduce(path, 32, 256, 20000, 16); err != nil {
		t.Fatalf("helper produce: %v", err)
	}
}

// TestRunShmTwoProcess runs the workload with the producer re-exec'd
// as a real separate process — the configuration ffq-micro's
// -variant shm sweep uses.
func TestRunShmTwoProcess(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunShm(ShmConfig{
		SlotSize: 32,
		Capacity: 256,
		Items:    20000,
		Batch:    16,
		Spawn: func(path string) (func() error, error) {
			cmd := exec.Command(exe, "-test.run=TestShmWorkloadHelper$", "-test.v")
			cmd.Env = append(os.Environ(), "FFQ_SHM_WORKLOAD_PATH="+path)
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			return cmd.Wait, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != 20000 || !res.TwoProcess {
		t.Fatalf("result %+v", res)
	}
}
