package workload

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"ffq/internal/affinity"
	"ffq/internal/core"
	"ffq/internal/obs"
)

// Variant selects which FFQ implementation serves as the submission
// queue of the microbenchmark.
type Variant uint8

const (
	// VariantSPMC is the paper's default (FFQ^s submission queues).
	VariantSPMC Variant = iota
	// VariantMPMC uses FFQ^m (the configuration of Figure 2).
	VariantMPMC
	// VariantSPSC uses the SPSC queue; requires exactly one consumer
	// per producer.
	VariantSPSC
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantSPMC:
		return "spmc"
	case VariantMPMC:
		return "mpmc"
	case VariantSPSC:
		return "spsc"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// MicroConfig parameterizes the submission/response microbenchmark of
// Section V-A. Each producer owns one submission queue consumed by
// ConsumersPerProducer consumers; every consumer echoes each item into
// its own SPSC response queue, which the producer drains.
type MicroConfig struct {
	// Variant selects the submission queue implementation.
	Variant Variant
	// Layout is the cell memory layout for all queues.
	Layout core.Layout
	// Producers is the number of producer threads, each with its own
	// submission queue (the paper's Figure 2 uses 1 and 8).
	Producers int
	// ConsumersPerProducer (>= 1).
	ConsumersPerProducer int
	// ItemsPerProducer is the number of round-trips each producer
	// completes.
	ItemsPerProducer int
	// QueueSize is the submission queue capacity (power of two).
	QueueSize int
	// RespQueueSize is the response queue capacity (defaults to
	// QueueSize when 0; always at least 2).
	RespQueueSize int
	// Policy places producer/consumer pairs on CPUs.
	Policy affinity.Policy
	// Topology used for placement (Detect() when nil).
	Topology *affinity.Topology
	// Instrument attaches one shared obs.Recorder to every submission
	// queue; the aggregate snapshot is returned in MicroResult.Stats.
	// Off by default so throughput runs measure the uninstrumented
	// fast path.
	Instrument bool
}

// MicroResult is the outcome of one microbenchmark run.
type MicroResult struct {
	// Items is the number of completed round-trips.
	Items int
	// Elapsed is the wall time of the parallel phase.
	Elapsed time.Duration
	// Stats aggregates the submission queues' instrumentation
	// counters; nil unless MicroConfig.Instrument was set.
	Stats *obs.Stats
}

// MopsPerSec returns round-trips per second in millions.
func (r MicroResult) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds() / 1e6
}

// submission abstracts the three FFQ variants behind one face.
type submission interface {
	enqueue(v uint64)
	dequeue() (uint64, bool)
	close()
}

type spmcSub struct{ q *core.SPMC[uint64] }

func (s spmcSub) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s spmcSub) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s spmcSub) close()                  { s.q.Close() }

type mpmcSub struct{ q *core.MPMC[uint64] }

func (s mpmcSub) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s mpmcSub) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s mpmcSub) close()                  { s.q.Close() }

type spscSub struct{ q *core.SPSC[uint64] }

func (s spscSub) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s spscSub) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s spscSub) close()                  { s.q.Close() }

func newSubmission(cfg MicroConfig, rec *obs.Recorder) (submission, error) {
	opts := []core.Option{core.WithLayout(cfg.Layout), core.WithRecorder(rec)}
	switch cfg.Variant {
	case VariantSPMC:
		q, err := core.NewSPMC[uint64](cfg.QueueSize, opts...)
		return spmcSub{q}, err
	case VariantMPMC:
		q, err := core.NewMPMC[uint64](cfg.QueueSize, opts...)
		return mpmcSub{q}, err
	case VariantSPSC:
		if cfg.ConsumersPerProducer != 1 {
			return nil, fmt.Errorf("workload: SPSC variant requires exactly 1 consumer, got %d", cfg.ConsumersPerProducer)
		}
		q, err := core.NewSPSC[uint64](cfg.QueueSize, opts...)
		return spscSub{q}, err
	default:
		return nil, fmt.Errorf("workload: unknown variant %v", cfg.Variant)
	}
}

// RunMicro executes the microbenchmark once.
func RunMicro(cfg MicroConfig) (MicroResult, error) {
	if cfg.Producers < 1 || cfg.ConsumersPerProducer < 1 || cfg.ItemsPerProducer < 1 {
		return MicroResult{}, fmt.Errorf("workload: non-positive micro config %+v", cfg)
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1 << 10
	}
	if cfg.RespQueueSize == 0 {
		cfg.RespQueueSize = cfg.QueueSize
	}
	if cfg.RespQueueSize < 2 {
		cfg.RespQueueSize = 2
	}
	top := cfg.Topology
	if top == nil {
		top = affinity.Detect()
	}

	var rec *obs.Recorder
	if cfg.Instrument {
		rec = obs.NewRecorder()
	}

	type producerState struct {
		sub   submission
		resps []*core.SPSC[uint64]
	}
	states := make([]*producerState, cfg.Producers)
	for p := range states {
		sub, err := newSubmission(cfg, rec)
		if err != nil {
			return MicroResult{}, err
		}
		st := &producerState{sub: sub}
		for c := 0; c < cfg.ConsumersPerProducer; c++ {
			rq, err := core.NewSPSC[uint64](cfg.RespQueueSize, core.WithLayout(cfg.Layout))
			if err != nil {
				return MicroResult{}, err
			}
			st.resps = append(st.resps, rq)
		}
		states[p] = st
	}

	var ready, done sync.WaitGroup
	start := make(chan struct{})

	// maxOutstanding bounds in-flight items so the FFQ "always an
	// empty slot" assumption holds by construction (the paper's
	// implicit flow control, Section I observation 2).
	maxOutstanding := cfg.QueueSize / 2
	if m := cfg.RespQueueSize / 2 * cfg.ConsumersPerProducer; m < maxOutstanding {
		maxOutstanding = m
	}
	if maxOutstanding < 1 {
		maxOutstanding = 1
	}

	for p, st := range states {
		asn := top.Assign(cfg.Policy, p)
		// Consumers.
		for c := 0; c < cfg.ConsumersPerProducer; c++ {
			ready.Add(1)
			done.Add(1)
			go func(st *producerState, p, c int) {
				defer done.Done()
				// Goroutine labels make the consumer pool attributable
				// in CPU and goroutine profiles (pprof -tagfocus).
				pprof.Do(context.Background(), pprof.Labels(
					"ffq_role", "consumer",
					"ffq_queue", strconv.Itoa(p),
				), func(context.Context) {
					undo, _ := affinity.Pin(asn.Consumer)
					defer undo()
					ready.Done()
					<-start
					rq := st.resps[c]
					for {
						v, ok := st.sub.dequeue()
						if !ok {
							rq.Close()
							return
						}
						rq.Enqueue(v)
					}
				})
			}(st, p, c)
		}
		// Producer.
		ready.Add(1)
		done.Add(1)
		go func(st *producerState, p int) {
			defer done.Done()
			pprof.Do(context.Background(), pprof.Labels(
				"ffq_role", "producer",
				"ffq_queue", strconv.Itoa(p),
			), func(context.Context) {
				undo, _ := affinity.Pin(asn.Producer)
				defer undo()
				ready.Done()
				<-start
				sent, received, outstanding := 0, 0, 0
				for received < cfg.ItemsPerProducer {
					for sent < cfg.ItemsPerProducer && outstanding < maxOutstanding {
						st.sub.enqueue(uint64(sent + 1))
						sent++
						outstanding++
					}
					drained := false
					for _, rq := range st.resps {
						if _, ok := rq.TryDequeue(); ok {
							received++
							outstanding--
							drained = true
						}
					}
					if !drained {
						runtime.Gosched()
					}
				}
				st.sub.close()
			})
		}(st, p)
	}

	ready.Wait()
	t0 := time.Now()
	close(start)
	done.Wait()
	res := MicroResult{Items: cfg.Producers * cfg.ItemsPerProducer, Elapsed: time.Since(t0)}
	if rec != nil {
		s := rec.Snapshot()
		res.Stats = &s
	}
	return res, nil
}

// pin is a tiny affinity shim for workloads that carry raw CPU lists.
func pin(cpus []int) (func(), error) {
	return affinity.Pin(cpus)
}
