package workload

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"ffq/internal/affinity"
	"ffq/internal/core"
	"ffq/internal/obs"
	"ffq/internal/segq"
)

// Variant selects which FFQ implementation serves as the submission
// queue of the microbenchmark.
type Variant uint8

const (
	// VariantSPMC is the paper's default (FFQ^s submission queues).
	VariantSPMC Variant = iota
	// VariantMPMC uses FFQ^m (the configuration of Figure 2).
	VariantMPMC
	// VariantSPSC uses the SPSC queue; requires exactly one consumer
	// per producer.
	VariantSPSC
	// VariantUnbounded uses the unbounded segmented SPMC queue
	// (internal/segq); QueueSize becomes the segment size.
	VariantUnbounded
	// VariantUnboundedMPMC uses the unbounded segmented MPMC queue.
	VariantUnboundedMPMC
	// VariantSharded uses one shared core.Sharded queue for ALL
	// producers (per-producer FFQ^s lanes, one exclusive lane handle
	// each) with a single consumer pool of
	// Producers*ConsumersPerProducer workers — unlike the other
	// variants, which give each producer its own queue. QueueSize is
	// the per-lane capacity; RespQueueSize is ignored (the response
	// plane is sized from the outstanding window).
	VariantSharded
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantSPMC:
		return "spmc"
	case VariantMPMC:
		return "mpmc"
	case VariantSPSC:
		return "spsc"
	case VariantUnbounded:
		return "unbounded"
	case VariantUnboundedMPMC:
		return "unbounded-mpmc"
	case VariantSharded:
		return "sharded"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// MicroConfig parameterizes the submission/response microbenchmark of
// Section V-A. Each producer owns one submission queue consumed by
// ConsumersPerProducer consumers; every consumer echoes each item into
// its own SPSC response queue, which the producer drains.
type MicroConfig struct {
	// Variant selects the submission queue implementation.
	Variant Variant
	// Layout is the cell memory layout for all queues.
	Layout core.Layout
	// Producers is the number of producer threads, each with its own
	// submission queue (the paper's Figure 2 uses 1 and 8).
	Producers int
	// ConsumersPerProducer (>= 1).
	ConsumersPerProducer int
	// ItemsPerProducer is the number of round-trips each producer
	// completes.
	ItemsPerProducer int
	// QueueSize is the submission queue capacity (power of two). For
	// the unbounded variants it is the segment size instead.
	QueueSize int
	// Batch > 1 moves items through the submission queue in batches of
	// that size. The unbounded variants use their native
	// EnqueueBatch/DequeueBatch; the bounded ones loop singles on the
	// enqueue side and stay single-item on the dequeue side (a bounded
	// consumer holding a partial batch would deadlock the round-trip).
	// ItemsPerProducer is rounded up to a multiple of the batch so
	// every blocking batch claim can be filled. 0 or 1 means
	// single-item operations.
	Batch int
	// RespQueueSize is the response queue capacity (defaults to
	// QueueSize when 0; always at least 2).
	RespQueueSize int
	// Policy places producer/consumer pairs on CPUs.
	Policy affinity.Policy
	// Topology used for placement (Detect() when nil).
	Topology *affinity.Topology
	// Instrument attaches one shared obs.Recorder to every submission
	// queue; the aggregate snapshot is returned in MicroResult.Stats.
	// Off by default so throughput runs measure the uninstrumented
	// fast path.
	Instrument bool
	// MeasureLatency switches the run into latency mode: it implies
	// Instrument, enables per-op latency histograms on the recorder
	// (Stats.EnqLatency/DeqLatency), and — for every variant except
	// VariantSharded, whose items carry the producer index in their
	// high bits — stamps each item with its submission time so the
	// queue sojourn (enqueue start to dequeue completion) is recorded
	// into MicroResult.Sojourn.
	MeasureLatency bool
	// StallThreshold arms the recorder's stall watchdog (implies
	// Instrument); waits longer than this surface in
	// Stats.StallEvents/RecentStalls.
	StallThreshold time.Duration
	// StallEvery injects an artificial stall on the first consumer of
	// each submission queue: after every StallEvery items it sleeps for
	// StallDuration. 0 disables injection. Used to validate the stall
	// watchdog and tail-latency gates against a known disturbance.
	StallEvery int
	// StallDuration is the injected sleep (DefaultStallDuration when 0
	// and StallEvery > 0).
	StallDuration time.Duration
}

// DefaultStallDuration is the injected consumer stall length when
// MicroConfig.StallEvery is set without an explicit duration.
const DefaultStallDuration = 500 * time.Microsecond

// MicroResult is the outcome of one microbenchmark run.
type MicroResult struct {
	// Items is the number of completed round-trips.
	Items int
	// Elapsed is the wall time of the parallel phase.
	Elapsed time.Duration
	// Stats aggregates the submission queues' instrumentation
	// counters; nil unless MicroConfig.Instrument (or a latency-mode
	// field that implies it) was set.
	Stats *obs.Stats
	// Sojourn is the end-to-end submission-queue sojourn distribution
	// (item stamped at enqueue start, recorded at dequeue completion);
	// nil unless MicroConfig.MeasureLatency was set on a non-sharded
	// variant.
	Sojourn *obs.LatencySnapshot
	// Lanes and LaneCap describe the shared queue's shard layout;
	// zero except for VariantSharded.
	Lanes   int
	LaneCap int
}

// MopsPerSec returns round-trips per second in millions.
func (r MicroResult) MopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Items) / r.Elapsed.Seconds() / 1e6
}

// submission abstracts the FFQ variants behind one face. The batch
// methods let the unbounded variants use their native contiguous-run
// reservations; bounded variants fall back to a loop of singles
// (loopBatch).
type submission interface {
	enqueue(v uint64)
	dequeue() (uint64, bool)
	enqueueBatch(vs []uint64)
	dequeueBatch(dst []uint64) (int, bool)
	close()
}

// singleOps is the per-item subset the bounded queues provide.
type singleOps interface {
	enqueue(v uint64)
	dequeue() (uint64, bool)
	close()
}

// loopBatch lifts a single-op queue to the submission interface with
// software-loop batch methods.
type loopBatch struct{ singleOps }

func (l loopBatch) enqueueBatch(vs []uint64) {
	for _, v := range vs {
		l.enqueue(v)
	}
}

func (l loopBatch) dequeueBatch(dst []uint64) (int, bool) {
	// One blocking single per call. The bounded queues have no
	// contiguous-run claim, so filling a multi-item buffer here could
	// strand already-dequeued items in this consumer's buffer while the
	// producer waits for their responses before sending more (deadlock
	// whenever >1 consumer splits the final items unevenly).
	v, ok := l.dequeue()
	if !ok {
		return 0, false
	}
	dst[0] = v
	return 1, true
}

type spmcSub struct{ q *core.SPMC[uint64] }

func (s spmcSub) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s spmcSub) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s spmcSub) close()                  { s.q.Close() }

type mpmcSub struct{ q *core.MPMC[uint64] }

func (s mpmcSub) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s mpmcSub) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s mpmcSub) close()                  { s.q.Close() }

type spscSub struct{ q *core.SPSC[uint64] }

func (s spscSub) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s spscSub) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s spscSub) close()                  { s.q.Close() }

// segStatser is implemented by the unbounded submissions; RunMicro
// folds these always-on segment counters into the instrumented
// aggregate (they live on the queue, not the shared recorder).
type segStatser interface {
	segStats() obs.Stats
}

type usegSub struct{ q *segq.SPMC[uint64] }

func (s usegSub) enqueue(v uint64)                      { s.q.Enqueue(v) }
func (s usegSub) dequeue() (uint64, bool)               { return s.q.Dequeue() }
func (s usegSub) enqueueBatch(vs []uint64)              { s.q.EnqueueBatch(vs) }
func (s usegSub) dequeueBatch(dst []uint64) (int, bool) { return s.q.DequeueBatch(dst) }
func (s usegSub) close()                                { s.q.Close() }
func (s usegSub) segStats() obs.Stats                   { return s.q.SegStats() }

type usegMPMCSub struct{ q *segq.MPMC[uint64] }

func (s usegMPMCSub) enqueue(v uint64)                      { s.q.Enqueue(v) }
func (s usegMPMCSub) dequeue() (uint64, bool)               { return s.q.Dequeue() }
func (s usegMPMCSub) enqueueBatch(vs []uint64)              { s.q.EnqueueBatch(vs) }
func (s usegMPMCSub) dequeueBatch(dst []uint64) (int, bool) { return s.q.DequeueBatch(dst) }
func (s usegMPMCSub) close()                                { s.q.Close() }
func (s usegMPMCSub) segStats() obs.Stats                   { return s.q.SegStats() }

func newSubmission(cfg MicroConfig, rec *obs.Recorder) (submission, error) {
	opts := []core.Option{core.WithLayout(cfg.Layout), core.WithRecorder(rec)}
	switch cfg.Variant {
	case VariantSPMC:
		q, err := core.NewSPMC[uint64](cfg.QueueSize, opts...)
		return loopBatch{spmcSub{q}}, err
	case VariantMPMC:
		q, err := core.NewMPMC[uint64](cfg.QueueSize, opts...)
		return loopBatch{mpmcSub{q}}, err
	case VariantSPSC:
		if cfg.ConsumersPerProducer != 1 {
			return nil, fmt.Errorf("workload: SPSC variant requires exactly 1 consumer, got %d", cfg.ConsumersPerProducer)
		}
		q, err := core.NewSPSC[uint64](cfg.QueueSize, opts...)
		return loopBatch{spscSub{q}}, err
	case VariantUnbounded:
		q, err := segq.NewSPMC[uint64](core.ResolveOptions(append(opts, core.WithSegmentSize(cfg.QueueSize))...))
		return usegSub{q}, err
	case VariantUnboundedMPMC:
		q, err := segq.NewMPMC[uint64](core.ResolveOptions(append(opts, core.WithSegmentSize(cfg.QueueSize))...))
		return usegMPMCSub{q}, err
	default:
		return nil, fmt.Errorf("workload: unknown variant %v", cfg.Variant)
	}
}

// RunMicro executes the microbenchmark once.
func RunMicro(cfg MicroConfig) (MicroResult, error) {
	if cfg.Producers < 1 || cfg.ConsumersPerProducer < 1 || cfg.ItemsPerProducer < 1 {
		return MicroResult{}, fmt.Errorf("workload: non-positive micro config %+v", cfg)
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 1 << 10
	}
	if cfg.RespQueueSize == 0 {
		cfg.RespQueueSize = cfg.QueueSize
	}
	if cfg.RespQueueSize < 2 {
		cfg.RespQueueSize = 2
	}
	top := cfg.Topology
	if top == nil {
		top = affinity.Detect()
	}

	if cfg.StallEvery > 0 && cfg.StallDuration <= 0 {
		cfg.StallDuration = DefaultStallDuration
	}
	var rec *obs.Recorder
	if cfg.Instrument || cfg.MeasureLatency || cfg.StallThreshold > 0 {
		rec = obs.NewRecorder()
		if cfg.MeasureLatency {
			rec.EnableOpLatency()
		}
		if cfg.StallThreshold > 0 {
			rec.EnableStallWatchdog(cfg.StallThreshold, 0)
		}
	}

	if cfg.Variant == VariantSharded {
		return runMicroSharded(cfg, top, rec)
	}

	// Latency mode replaces the item payload with the submission
	// timestamp; every consumer records into one shared lock-free
	// histogram.
	var sojourn *obs.LatencyHist
	if cfg.MeasureLatency {
		sojourn = &obs.LatencyHist{}
	}

	type producerState struct {
		sub   submission
		resps []*core.SPSC[uint64]
	}
	states := make([]*producerState, cfg.Producers)
	for p := range states {
		sub, err := newSubmission(cfg, rec)
		if err != nil {
			return MicroResult{}, err
		}
		st := &producerState{sub: sub}
		for c := 0; c < cfg.ConsumersPerProducer; c++ {
			rq, err := core.NewSPSC[uint64](cfg.RespQueueSize, core.WithLayout(cfg.Layout))
			if err != nil {
				return MicroResult{}, err
			}
			st.resps = append(st.resps, rq)
		}
		states[p] = st
	}

	var ready, done sync.WaitGroup
	start := make(chan struct{})

	// maxOutstanding bounds in-flight items so the FFQ "always an
	// empty slot" assumption holds by construction (the paper's
	// implicit flow control, Section I observation 2).
	maxOutstanding := cfg.QueueSize / 2
	if m := cfg.RespQueueSize / 2 * cfg.ConsumersPerProducer; m < maxOutstanding {
		maxOutstanding = m
	}
	if maxOutstanding < 1 {
		maxOutstanding = 1
	}

	// Batch mode. A blocking batch claim is only ever filled if the
	// producer's outstanding allowance covers at least one whole batch
	// and the item count divides into whole batches, so clamp and
	// round accordingly.
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	if batch > maxOutstanding {
		batch = maxOutstanding
	}
	if rem := cfg.ItemsPerProducer % batch; rem != 0 {
		cfg.ItemsPerProducer += batch - rem
	}

	for p, st := range states {
		asn := top.Assign(cfg.Policy, p)
		// Consumers.
		for c := 0; c < cfg.ConsumersPerProducer; c++ {
			ready.Add(1)
			done.Add(1)
			go func(st *producerState, p, c int) {
				defer done.Done()
				// Goroutine labels make the consumer pool attributable
				// in CPU and goroutine profiles (pprof -tagfocus).
				pprof.Do(context.Background(), pprof.Labels(
					"ffq_role", "consumer",
					"ffq_queue", strconv.Itoa(p),
				), func(context.Context) {
					undo, _ := affinity.Pin(asn.Consumer)
					defer undo()
					ready.Done()
					<-start
					rq := st.resps[c]
					// Stall injection targets the first consumer only, so
					// the disturbance is a single slow participant rather
					// than a uniformly slower pool.
					stallN := 0
					if c == 0 {
						stallN = cfg.StallEvery
					}
					processed := 0
					if batch > 1 {
						buf := make([]uint64, batch)
						for {
							n, ok := st.sub.dequeueBatch(buf)
							if sojourn != nil && n > 0 {
								now := time.Now().UnixNano()
								for i := 0; i < n; i++ {
									sojourn.Record(now - int64(buf[i]))
								}
							}
							for i := 0; i < n; i++ {
								rq.Enqueue(buf[i])
							}
							if !ok {
								rq.Close()
								return
							}
							if stallN > 0 {
								if processed += n; processed >= stallN {
									processed = 0
									time.Sleep(cfg.StallDuration)
								}
							}
						}
					}
					for {
						v, ok := st.sub.dequeue()
						if !ok {
							rq.Close()
							return
						}
						if sojourn != nil {
							sojourn.Record(time.Now().UnixNano() - int64(v))
						}
						rq.Enqueue(v)
						if stallN > 0 {
							if processed++; processed >= stallN {
								processed = 0
								time.Sleep(cfg.StallDuration)
							}
						}
					}
				})
			}(st, p, c)
		}
		// Producer.
		ready.Add(1)
		done.Add(1)
		go func(st *producerState, p int) {
			defer done.Done()
			pprof.Do(context.Background(), pprof.Labels(
				"ffq_role", "producer",
				"ffq_queue", strconv.Itoa(p),
			), func(context.Context) {
				undo, _ := affinity.Pin(asn.Producer)
				defer undo()
				ready.Done()
				<-start
				sent, received, outstanding := 0, 0, 0
				var batchBuf []uint64
				if batch > 1 {
					batchBuf = make([]uint64, batch)
				}
				for received < cfg.ItemsPerProducer {
					if batch > 1 {
						for sent < cfg.ItemsPerProducer && outstanding+batch <= maxOutstanding {
							if sojourn != nil {
								now := uint64(time.Now().UnixNano())
								for i := range batchBuf {
									batchBuf[i] = now
								}
							} else {
								for i := range batchBuf {
									batchBuf[i] = uint64(sent + i + 1)
								}
							}
							st.sub.enqueueBatch(batchBuf)
							sent += batch
							outstanding += batch
						}
					} else {
						for sent < cfg.ItemsPerProducer && outstanding < maxOutstanding {
							if sojourn != nil {
								st.sub.enqueue(uint64(time.Now().UnixNano()))
							} else {
								st.sub.enqueue(uint64(sent + 1))
							}
							sent++
							outstanding++
						}
					}
					drained := false
					for _, rq := range st.resps {
						if _, ok := rq.TryDequeue(); ok {
							received++
							outstanding--
							drained = true
						}
					}
					if !drained {
						runtime.Gosched()
					}
				}
				st.sub.close()
			})
		}(st, p)
	}

	ready.Wait()
	t0 := time.Now()
	close(start)
	done.Wait()
	res := MicroResult{Items: cfg.Producers * cfg.ItemsPerProducer, Elapsed: time.Since(t0)}
	if rec != nil {
		s := rec.Snapshot()
		for _, st := range states {
			if ss, ok := st.sub.(segStatser); ok {
				s = s.Add(ss.segStats())
			}
		}
		res.Stats = &s
	}
	if sojourn != nil {
		res.Sojourn = sojourn.Snapshot()
	}
	return res, nil
}

// pin is a tiny affinity shim for workloads that carry raw CPU lists.
func pin(cpus []int) (func(), error) {
	return affinity.Pin(cpus)
}
