package workload

import "testing"

// TestRunBrokerPipe moves a small volume through the pipe transport.
func TestRunBrokerPipe(t *testing.T) {
	res, err := RunBroker(BrokerConfig{
		Transport:           "pipe",
		Producers:           2,
		Consumers:           2,
		MessagesPerProducer: 2000,
		MaxBatch:            16,
	})
	if err != nil {
		t.Fatalf("RunBroker: %v", err)
	}
	if res.Messages != 4000 {
		t.Fatalf("Messages = %d, want 4000", res.Messages)
	}
	if res.MsgsPerSec() <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
}

// TestRunBrokerTCP does the same over loopback TCP, unbatched.
func TestRunBrokerTCP(t *testing.T) {
	res, err := RunBroker(BrokerConfig{
		Transport:           "tcp",
		Producers:           1,
		Consumers:           2,
		MessagesPerProducer: 2000,
		MaxBatch:            1,
	})
	if err != nil {
		t.Fatalf("RunBroker: %v", err)
	}
	if res.Messages != 2000 {
		t.Fatalf("Messages = %d, want 2000", res.Messages)
	}
}

// TestBrokerBatchingWins is the loopback smoke gate from the broker
// issue: client auto-batching must beat the one-frame-per-message
// baseline by at least 3x on the pipe transport. The margin in
// practice is far larger (one frame per 64 messages versus one frame
// each), so 3x keeps the gate meaningful without making it flaky on
// loaded CI machines.
func TestBrokerBatchingWins(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate; skipped in -short")
	}
	run := func(maxBatch int) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			res, err := RunBroker(BrokerConfig{
				Transport:           "pipe",
				Producers:           1,
				Consumers:           2,
				MessagesPerProducer: 30000,
				MaxBatch:            maxBatch,
			})
			if err != nil {
				t.Fatalf("RunBroker(batch=%d): %v", maxBatch, err)
			}
			if mps := res.MsgsPerSec(); mps > best {
				best = mps
			}
		}
		return best
	}
	unbatched := run(1)
	batched := run(64)
	t.Logf("unbatched %.0f msgs/s, batched %.0f msgs/s (%.1fx)", unbatched, batched, batched/unbatched)
	if batched < 3*unbatched {
		t.Fatalf("auto-batching speedup %.2fx, want >= 3x (batched %.0f vs unbatched %.0f msgs/s)",
			batched/unbatched, batched, unbatched)
	}
}
