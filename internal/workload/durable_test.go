package workload

import (
	"testing"

	"ffq/internal/wal"
)

// durableRun drives the standard broker workload with a WAL attached
// (or not, when dir is empty) and returns the best of three runs, the
// same way the batching gate measures.
func durableRun(t testing.TB, dir string, pol wal.SyncPolicy, msgs int) float64 {
	best := 0.0
	for i := 0; i < 3; i++ {
		res, err := RunBroker(BrokerConfig{
			Transport:           "pipe",
			Producers:           1,
			Consumers:           2,
			MessagesPerProducer: msgs,
			MaxBatch:            64,
			DataDir:             dir,
			Fsync:               pol,
		})
		if err != nil {
			t.Fatalf("RunBroker(durable=%v): %v", dir != "", err)
		}
		if mps := res.MsgsPerSec(); mps > best {
			best = mps
		}
	}
	return best
}

// TestDurablePublishGate is the durable-overhead gate from the issue:
// with fsync off and client batching at 64, the WAL append is one
// buffered write per PRODUCE frame, amortized over the batch — so
// durable throughput must stay within 1.3x of the in-memory path per
// element (durable >= 1/1.3 ~ 0.77x memory). A regression here means
// the append path grew per-message work (allocation, extra syscalls,
// lock traffic) rather than per-batch work.
func TestDurablePublishGate(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate; skipped in -short")
	}
	const msgs = 30000
	memory := durableRun(t, "", wal.SyncOff, msgs)
	durable := durableRun(t, t.TempDir(), wal.SyncOff, msgs)
	ratio := durable / memory
	t.Logf("memory %.0f msgs/s, durable(fsync=off) %.0f msgs/s (%.2fx)", memory, durable, ratio)
	if ratio < 1/1.3 {
		t.Fatalf("durable publish %.2fx of in-memory, want >= %.2fx (durable %.0f vs memory %.0f msgs/s)",
			ratio, 1/1.3, durable, memory)
	}
}

// BenchmarkDurablePublish reports end-to-end broker throughput per
// fsync policy next to the in-memory baseline. Run with -benchtime on
// the wall-clock-heavy policies; each iteration moves msgs messages
// through the full wire path.
func BenchmarkDurablePublish(b *testing.B) {
	const msgs = 20000
	bench := func(b *testing.B, dir string, pol wal.SyncPolicy) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := RunBroker(BrokerConfig{
				Transport:           "pipe",
				Producers:           1,
				Consumers:           2,
				MessagesPerProducer: msgs,
				MaxBatch:            64,
				DataDir:             dir,
				Fsync:               pol,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MsgsPerSec(), "msgs/s")
		}
	}
	b.Run("memory", func(b *testing.B) { bench(b, "", wal.SyncOff) })
	b.Run("durable-fsync-off", func(b *testing.B) { bench(b, b.TempDir(), wal.SyncOff) })
	b.Run("durable-fsync-interval", func(b *testing.B) { bench(b, b.TempDir(), wal.SyncInterval) })
	b.Run("durable-fsync-always", func(b *testing.B) { bench(b, b.TempDir(), wal.SyncAlways) })
}
