package workload

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ffq/internal/broker"
	"ffq/internal/broker/client"
	"ffq/internal/wal"
)

// BrokerConfig parameterizes the broker round-trip workload: N
// producer connections publish into one topic, M consumer connections
// drain it competitively, and the measured quantity is end-to-end
// messages per second through the full wire path (encode → socket →
// ingress SPSC → topic queue → delivery → decode).
type BrokerConfig struct {
	// Transport is "pipe" (in-process net.Pipe, no kernel sockets) or
	// "tcp" (real loopback TCP).
	Transport string
	// Producers and Consumers are connection counts (>= 1 each).
	Producers int
	Consumers int
	// MessagesPerProducer is how many messages each producer publishes.
	MessagesPerProducer int
	// PayloadSize is the message body size in bytes (>= 1).
	PayloadSize int
	// MaxBatch is the client-side auto-batch limit; 1 sends one
	// PRODUCE frame per message (the unbatched baseline).
	MaxBatch int
	// Window is the pipelining/credit window (0 = client default).
	Window int
	// DataDir, when non-empty, makes every topic durable: the broker
	// appends each PRODUCE batch to a per-topic write-ahead log before
	// acknowledging it. Fsync picks the log's durability policy
	// (default wal.SyncOff: the log rides the OS page cache).
	DataDir string
	Fsync   wal.SyncPolicy
}

// BrokerResult is the outcome of one broker workload run.
type BrokerResult struct {
	// Messages is the number of messages delivered end to end.
	Messages int
	// Elapsed is the wall time from first publish to last delivery.
	Elapsed time.Duration
}

// MsgsPerSec returns end-to-end delivered messages per second.
func (r BrokerResult) MsgsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Messages) / r.Elapsed.Seconds()
}

// RunBroker executes the broker workload once: start a broker, connect
// the producer and consumer clients over the chosen transport, move
// every message through the topic, then drain the broker down.
func RunBroker(cfg BrokerConfig) (BrokerResult, error) {
	if cfg.Producers < 1 || cfg.Consumers < 1 || cfg.MessagesPerProducer < 1 {
		return BrokerResult{}, fmt.Errorf("workload: non-positive broker config %+v", cfg)
	}
	if cfg.PayloadSize < 1 {
		cfg.PayloadSize = 16
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}

	b, err := broker.New(broker.Options{DataDir: cfg.DataDir, Fsync: cfg.Fsync})
	if err != nil {
		return BrokerResult{}, err
	}
	copts := client.Options{MaxBatch: cfg.MaxBatch, Window: cfg.Window}

	// connect returns a client over the configured transport.
	var connect func() (*client.Client, error)
	var serveErr chan error // non-nil only for the tcp transport
	switch cfg.Transport {
	case "", "pipe":
		connect = func() (*client.Client, error) {
			srv, cli := net.Pipe()
			b.ServeConn(srv)
			return client.New(cli, copts), nil
		}
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return BrokerResult{}, err
		}
		serveErr = make(chan error, 1)
		go func() { serveErr <- b.Serve(ln) }()
		addr := ln.Addr().String()
		connect = func() (*client.Client, error) { return client.Dial(addr, copts) }
	default:
		return BrokerResult{}, fmt.Errorf("workload: unknown broker transport %q (have pipe, tcp)", cfg.Transport)
	}

	total := cfg.Producers * cfg.MessagesPerProducer
	var received atomic.Int64
	allDelivered := make(chan struct{})

	consumers := make([]*client.Client, cfg.Consumers)
	var consumerWG sync.WaitGroup
	for i := range consumers {
		c, err := connect()
		if err != nil {
			return BrokerResult{}, err
		}
		consumers[i] = c
		sub, err := c.Subscribe("bench", cfg.Window)
		if err != nil {
			return BrokerResult{}, err
		}
		consumerWG.Add(1)
		go func() {
			defer consumerWG.Done()
			for {
				if _, ok := sub.Recv(); !ok {
					return
				}
				if received.Add(1) == int64(total) {
					close(allDelivered)
				}
			}
		}()
	}

	producers := make([]*client.Client, cfg.Producers)
	for i := range producers {
		c, err := connect()
		if err != nil {
			return BrokerResult{}, err
		}
		producers[i] = c
	}

	payload := make([]byte, cfg.PayloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	t0 := time.Now()
	var producerWG sync.WaitGroup
	errs := make(chan error, cfg.Producers)
	for _, c := range producers {
		producerWG.Add(1)
		go func(c *client.Client) {
			defer producerWG.Done()
			for m := 0; m < cfg.MessagesPerProducer; m++ {
				if err := c.Publish("bench", payload); err != nil {
					errs <- err
					return
				}
			}
			if err := c.Drain(); err != nil {
				errs <- err
			}
		}(c)
	}
	producerWG.Wait()
	select {
	case err := <-errs:
		return BrokerResult{}, err
	default:
	}
	<-allDelivered
	elapsed := time.Since(t0)

	// Tear down: drain the broker (empty by now), which ends every
	// subscription; then close the client connections.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		return BrokerResult{}, fmt.Errorf("workload: broker shutdown: %w", err)
	}
	consumerWG.Wait()
	// Shutdown closed the listener, so Serve has returned; join the
	// accept loop and surface any error it swallowed.
	if serveErr != nil {
		if err := <-serveErr; err != nil {
			return BrokerResult{}, fmt.Errorf("workload: broker serve: %w", err)
		}
	}
	for _, c := range append(producers, consumers...) {
		c.Close()
	}
	return BrokerResult{Messages: total, Elapsed: elapsed}, nil
}
