package workload

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"ffq/internal/broker"
	"ffq/internal/broker/client"
	"ffq/internal/cluster"
)

// ClusterConfig parameterizes the clustered workload: a static
// in-process cluster of durable brokers takes keyed publishes routed
// to per-partition owners, and the measured quantities are keyed
// publish throughput and the async replication catch-up — how long
// after the last ACK every follower cursor reaches its owner's head.
type ClusterConfig struct {
	// Nodes is the member count (>= 2).
	Nodes int
	// Partitions and Replication are the cluster shape (replication
	// includes the owner, so 2 means one follower per partition).
	Partitions  uint32
	Replication uint32
	// Keys is the routing-key population; each key hashes to one
	// partition and keeps FIFO order within it.
	Keys int
	// MessagesPerKey is how many messages each key publishes.
	MessagesPerKey int
	// PayloadSize is the message body size in bytes (>= 1).
	PayloadSize int
	// MaxBatch and Window are the client knobs, as in BrokerConfig.
	MaxBatch int
	Window   int
	// DataDir is the scratch root; every node gets its own WAL
	// directory inside it. Required — cluster mode is durable-only.
	DataDir string
}

// ClusterResult is the outcome of one clustered workload run.
type ClusterResult struct {
	// Messages is the number of keyed messages published and acked.
	Messages int
	// Publish is first publish to last ACK across all owners.
	Publish time.Duration
	// Catchup is last ACK to every follower cursor reaching its
	// owner's log head — the async replication lag drained to zero.
	Catchup time.Duration
}

// PublishMsgsPerSec returns acked keyed-publish throughput.
func (r ClusterResult) PublishMsgsPerSec() float64 {
	if r.Publish <= 0 {
		return 0
	}
	return float64(r.Messages) / r.Publish.Seconds()
}

// RunCluster executes the clustered workload once: start the cluster,
// route every keyed message to its partition owner, wait for acks,
// then wait for every replica to catch up.
func RunCluster(cfg ClusterConfig) (ClusterResult, error) {
	if cfg.Nodes < 2 || cfg.Partitions < 1 || cfg.Replication < 2 ||
		cfg.Keys < 1 || cfg.MessagesPerKey < 1 {
		return ClusterResult{}, fmt.Errorf("workload: bad cluster config %+v", cfg)
	}
	if cfg.DataDir == "" {
		return ClusterResult{}, fmt.Errorf("workload: cluster workload needs a DataDir")
	}
	if cfg.PayloadSize < 1 {
		cfg.PayloadSize = 16
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 64
	}
	const topic = "bench"

	// Listeners first: the peer list needs every address.
	lns := make([]net.Listener, cfg.Nodes)
	peers := make([]cluster.Peer, cfg.Nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return ClusterResult{}, err
		}
		defer ln.Close()
		lns[i] = ln
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i+1), Addr: ln.Addr().String()}
	}

	brokers := make([]*broker.Broker, cfg.Nodes)
	nodes := make([]*cluster.Node, cfg.Nodes)
	configs := make([]*cluster.Config, cfg.Nodes)
	serveErr := make(chan error, cfg.Nodes)
	serving := 0
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, b := range brokers {
			if b != nil {
				b.Shutdown(ctx)
			}
		}
		// Shutdown closed the listeners, so every accept loop returns;
		// join them all.
		for i := 0; i < serving; i++ {
			<-serveErr
		}
	}()
	for i := range brokers {
		ccfg := &cluster.Config{
			NodeID:      peers[i].ID,
			Peers:       peers,
			Partitions:  cfg.Partitions,
			Replication: cfg.Replication,
		}
		configs[i] = ccfg
		b, err := broker.New(broker.Options{
			DataDir: filepath.Join(cfg.DataDir, ccfg.NodeID),
			Cluster: ccfg,
		})
		if err != nil {
			return ClusterResult{}, err
		}
		brokers[i] = b
		go func(b *broker.Broker, ln net.Listener) { serveErr <- b.Serve(ln) }(b, lns[i])
		serving++
		n, err := cluster.StartNode(cluster.NodeOptions{
			Config: ccfg,
			OpenLog: func(topic string, part uint32) (cluster.LocalLog, error) {
				return b.PartitionLog(topic, part)
			},
			PollInterval: 25 * time.Millisecond,
			Window:       1024,
		})
		if err != nil {
			return ClusterResult{}, err
		}
		nodes[i] = n
	}

	// One publishing client per node; keys route to partition owners.
	// The sink join is registered before the client-close defer: LIFO
	// runs the closes first, which is what ends the sink subscriptions.
	var sinkWG sync.WaitGroup
	defer sinkWG.Wait()
	copts := client.Options{MaxBatch: cfg.MaxBatch, Window: cfg.Window}
	clients := make(map[string]*client.Client, cfg.Nodes)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for _, p := range peers {
		c, err := client.Dial(p.Addr, copts)
		if err != nil {
			return ClusterResult{}, err
		}
		clients[p.ID] = c
	}
	routing := configs[0]
	partOf := make([]uint32, cfg.Keys)
	perPart := make([]int, cfg.Partitions)
	for k := range partOf {
		partOf[k] = cluster.PartitionForKey([]byte(fmt.Sprintf("key-%06d", k)), cfg.Partitions)
		perPart[partOf[k]] += cfg.MessagesPerKey
	}
	owner := make([]*client.Client, cfg.Partitions)
	for p := range owner {
		owner[p] = clients[routing.Owner(topic, uint32(p)).ID]
	}

	// Live sinks: replication follows the WAL, not the live pool, so
	// without a live consumer each partition's bounded topic queue
	// fills and pushes back on the pump. Drain every partition's live
	// fan-out at its owner, like a real consumer-group deployment.
	for p := uint32(0); p < cfg.Partitions; p++ {
		sub, err := owner[p].SubscribePart(topic, p, 4096)
		if err != nil {
			return ClusterResult{}, err
		}
		sinkWG.Add(1)
		go func(sub *client.Subscription) {
			defer sinkWG.Done()
			for {
				if _, ok := sub.Recv(); !ok {
					return
				}
			}
		}(sub)
	}

	payload := make([]byte, cfg.PayloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	total := cfg.Keys * cfg.MessagesPerKey

	t0 := time.Now()
	for seq := 0; seq < cfg.MessagesPerKey; seq++ {
		for k := 0; k < cfg.Keys; k++ {
			part := partOf[k]
			if err := owner[part].PublishPart(topic, part, payload); err != nil {
				return ClusterResult{}, err
			}
		}
	}
	for _, c := range clients {
		if err := c.Drain(); err != nil {
			return ClusterResult{}, err
		}
	}
	publish := time.Since(t0)

	// Replication catch-up: the owner's __replica/<id> cursor is the
	// follower's ack — wait until every one reaches the log head.
	t1 := time.Now()
	deadline := t1.Add(60 * time.Second)
	for part := uint32(0); part < cfg.Partitions; part++ {
		if perPart[part] == 0 {
			continue
		}
		placed := routing.Assign(topic, part)[:cfg.Replication]
		oc := clients[placed[0].ID]
		for _, replica := range placed[1:] {
			for {
				_, next, cursor, err := oc.OffsetsPart(topic, part, cluster.ReplicaGroup(replica.ID))
				if err != nil {
					return ClusterResult{}, err
				}
				if next != uint64(perPart[part]) {
					return ClusterResult{}, fmt.Errorf("workload: partition %d head %d, want %d", part, next, perPart[part])
				}
				if cursor == next {
					break
				}
				if time.Now().After(deadline) {
					return ClusterResult{}, fmt.Errorf("workload: replica %s of partition %d stuck at %d of %d",
						replica.ID, part, cursor, next)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	return ClusterResult{Messages: total, Publish: publish, Catchup: time.Since(t1)}, nil
}
