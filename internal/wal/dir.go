package wal

// DirName maps a topic name to a filesystem-safe directory name, so a
// data dir holds one subdirectory per durable topic regardless of what
// bytes the topic contains. Letters, digits, '.', '_' and '-' pass
// through; everything else becomes %XX. The mapping is injective, so
// two distinct topics never share a directory, and names that would
// collide with path syntax ("." / "..") get their dots escaped.
func DirName(topic string) string {
	if topic == "." || topic == ".." {
		// All-dots names are path syntax; escape them entirely.
		out := make([]byte, 0, 3*len(topic))
		for i := 0; i < len(topic); i++ {
			out = appendEscaped(out, topic[i])
		}
		return string(out)
	}
	safe := true
	for i := 0; i < len(topic); i++ {
		if !safeByte(topic[i]) {
			safe = false
			break
		}
	}
	if safe && topic != "" {
		return topic
	}
	out := make([]byte, 0, 3*len(topic))
	for i := 0; i < len(topic); i++ {
		c := topic[i]
		if safeByte(c) {
			out = append(out, c)
		} else {
			out = appendEscaped(out, c)
		}
	}
	if len(out) == 0 {
		return "%empty"
	}
	return string(out)
}

func safeByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '.' || c == '_' || c == '-'
}

const hexDigits = "0123456789ABCDEF"

func appendEscaped(out []byte, c byte) []byte {
	return append(out, '%', hexDigits[c>>4], hexDigits[c&0xf])
}
