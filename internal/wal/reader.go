package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"ffq/internal/wire"
)

// Reader replays a log's messages in offset order. It holds its own
// file handle per segment, so reads are positional (pread) and never
// contend with the appender beyond the index lookup; a handle on a
// retention-deleted segment keeps working until the Reader moves past
// it. A Reader is single-consumer; many Readers can share one Log.
type Reader struct {
	l   *Log
	off uint64
	f   *os.File
	// fBase identifies the segment f is open on; fOpen distinguishes
	// "no file yet" from segment 0.
	fBase uint64
	fOpen bool
	buf   []byte
	msgs  [][]byte
}

// NewReader returns a reader positioned at offset from, clamped into
// the retained range [OldestOffset, NextOffset].
func (l *Log) NewReader(from uint64) *Reader {
	l.mu.Lock()
	if from < l.oldest {
		from = l.oldest
	}
	if from > l.next {
		from = l.next
	}
	l.mu.Unlock()
	return &Reader{l: l, off: from}
}

// Offset returns the offset the next Next call will yield first.
func (r *Reader) Offset() uint64 { return r.off }

// recRef locates the record holding offset off: which segment file,
// the record's byte range, and its base offset. Called under l.mu.
func (l *Log) recRef(off uint64) (segBase uint64, pos, size int64, err error) {
	var index []recIdx
	var segEnd int64
	if off >= l.activeBase {
		segBase, index, segEnd = l.activeBase, l.activeIdx, l.activeSize
	} else {
		// Binary search the sealed segments for the one covering off.
		lo, hi := 0, len(l.segs)
		for lo < hi {
			mid := (lo + hi) / 2
			if l.segs[mid].end <= off {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(l.segs) || l.segs[lo].base > off {
			return 0, 0, 0, fmt.Errorf("%w: no segment covers offset %d", ErrCorrupt, off)
		}
		s := &l.segs[lo]
		segBase, index, segEnd = s.base, s.index, s.size
	}
	// Largest index entry with entry.off <= off.
	lo, hi := 0, len(index)
	for lo < hi {
		mid := (lo + hi) / 2
		if index[mid].off <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, 0, 0, fmt.Errorf("%w: offset %d below segment index", ErrCorrupt, off)
	}
	e := index[lo-1]
	end := segEnd
	if lo < len(index) {
		end = index[lo].pos
	}
	return segBase, e.pos, end - e.pos, nil
}

// Next yields up to max messages starting at the reader's offset.
// base is the offset of msgs[0] (msgs[i] has offset base+i); when the
// reader is caught up with the log it returns (Offset(), nil, nil) —
// park on WaitAppend(base) and retry. If retention overtook the
// reader, base jumps forward past the dropped range. The returned
// payloads alias the reader's buffer and are valid until the next
// call.
func (r *Reader) Next(max int) (base uint64, msgs [][]byte, err error) {
	if max <= 0 {
		return r.off, nil, nil
	}
	for {
		l := r.l
		l.mu.Lock()
		if r.off >= l.next {
			off := l.next
			l.mu.Unlock()
			r.off = off
			return off, nil, nil
		}
		if r.off < l.oldest {
			r.off = l.oldest // retention dropped our position
		}
		segBase, pos, size, err := l.recRef(r.off)
		l.mu.Unlock()
		if err != nil {
			return 0, nil, err
		}

		if !r.fOpen || r.fBase != segBase {
			f, err := os.Open(l.segPath(segBase))
			if err != nil {
				if os.IsNotExist(err) {
					// Retention deleted the segment between the lookup
					// and the open; re-clamp and retry.
					continue
				}
				return 0, nil, err
			}
			if r.f != nil {
				r.f.Close()
			}
			r.f, r.fBase, r.fOpen = f, segBase, true
		}

		if cap(r.buf) < int(size) {
			r.buf = make([]byte, size)
		}
		rec := r.buf[:size]
		if _, err := r.f.ReadAt(rec, pos); err != nil {
			return 0, nil, fmt.Errorf("%w: short read at %d+%d: %v", ErrCorrupt, segBase, pos, err)
		}
		return r.yield(rec, max)
	}
}

// yield validates one raw record and extracts the messages from the
// reader's offset onward, up to max.
func (r *Reader) yield(rec []byte, max int) (uint64, [][]byte, error) {
	if len(rec) < recHeader {
		return 0, nil, fmt.Errorf("%w: record shorter than header", ErrCorrupt)
	}
	recSize := int64(binary.BigEndian.Uint32(rec[0:]))
	if recSize != int64(len(rec))-4 {
		return 0, nil, fmt.Errorf("%w: size field %d != record %d", ErrCorrupt, recSize, len(rec)-4)
	}
	crc := crc32.ChecksumIEEE(rec[8:])
	if crc != binary.BigEndian.Uint32(rec[4:]) {
		return 0, nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	recBase := binary.BigEndian.Uint64(rec[8:])
	b, err := wire.ParseBatch(rec[recHeader:])
	if err != nil {
		return 0, nil, fmt.Errorf("%w: bad batch body: %v", ErrCorrupt, err)
	}
	if r.off < recBase || r.off >= recBase+uint64(b.N) {
		return 0, nil, fmt.Errorf("%w: record [%d,%d) does not cover offset %d",
			ErrCorrupt, recBase, recBase+uint64(b.N), r.off)
	}
	for skip := r.off - recBase; skip > 0; skip-- {
		b.Next()
	}
	r.msgs = r.msgs[:0]
	for len(r.msgs) < max {
		m, ok := b.Next()
		if !ok {
			break
		}
		r.msgs = append(r.msgs, m)
	}
	base := r.off
	r.off += uint64(len(r.msgs))
	return base, r.msgs, nil
}

// Close releases the reader's file handle.
func (r *Reader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
		r.fOpen = false
	}
}
