package wal

import (
	"errors"
	"testing"
)

// TestAppendAt covers the replication follower's append: offsets are
// reproduced, not assigned, and any gap fails closed.
func TestAppendAt(t *testing.T) {
	l, dir := testOpen(t, Options{SegmentBytes: 1 << 10})
	defer l.Close()

	if err := l.AppendAt(0, [][]byte{payload(0), payload(1)}); err != nil {
		t.Fatalf("AppendAt(0): %v", err)
	}
	if err := l.AppendAt(2, [][]byte{payload(2)}); err != nil {
		t.Fatalf("AppendAt(2): %v", err)
	}
	// A gap (missed records) and a replayed duplicate both fail closed.
	if err := l.AppendAt(5, [][]byte{payload(5)}); !errors.Is(err, ErrOffsetGap) {
		t.Fatalf("gap append: %v", err)
	}
	if err := l.AppendAt(1, [][]byte{payload(1)}); !errors.Is(err, ErrOffsetGap) {
		t.Fatalf("duplicate append: %v", err)
	}
	if got := l.NextOffset(); got != 3 {
		t.Fatalf("NextOffset = %d, want 3", got)
	}
	// An empty batch is a no-op, never a gap check.
	if err := l.AppendAt(99, nil); err != nil {
		t.Fatalf("empty AppendAt: %v", err)
	}

	// The copied log recovers like any other.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	r := l2.NewReader(0)
	defer r.Close()
	if first, count := readAll(t, l2, r, 8); first != 0 || count != 3 {
		t.Fatalf("recovered replay: got [%d, %d), want [0, 3)", first, first+count)
	}
}

// TestResetTo covers the follower resync: the local copy is discarded
// and the offset chain restarts at the owner's oldest live offset.
func TestResetTo(t *testing.T) {
	l, dir := testOpen(t, Options{SegmentBytes: 1 << 10})
	defer l.Close()

	appendN(t, l, 0, 300, 5) // several segments at the 1KiB roll

	const base = 1000
	if err := l.ResetTo(base); err != nil {
		t.Fatalf("ResetTo: %v", err)
	}
	if got := l.NextOffset(); got != base {
		t.Fatalf("NextOffset = %d, want %d", got, base)
	}
	if got := l.OldestOffset(); got != base {
		t.Fatalf("OldestOffset = %d, want %d", got, base)
	}
	st := l.Stats()
	if st.Segments != 1 || st.Bytes != 0 {
		t.Fatalf("post-reset stats: %+v", st)
	}

	// The chain continues from the new base and survives recovery.
	if err := l.AppendAt(base, [][]byte{payload(base), payload(base + 1)}); err != nil {
		t.Fatalf("AppendAt after reset: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.OldestOffset(); got != base {
		t.Fatalf("recovered OldestOffset = %d, want %d", got, base)
	}
	r := l2.NewReader(base)
	defer r.Close()
	if first, count := readAll(t, l2, r, 8); first != base || count != 2 {
		t.Fatalf("recovered replay: got [%d, %d), want [%d, %d)", first, first+count, base, base+2)
	}
}
