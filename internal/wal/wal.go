// Package wal is ffqd's per-topic write-ahead log: durable topics
// persist every PRODUCE batch to an append-only segment log before it
// is acknowledged, so a broker restart replays instead of forgetting.
//
// # Log layout
//
// One Log is one directory of fixed-roll segment files plus a cursor
// file:
//
//	<dir>/00000000000000000000.seg   records for offsets [0, n1)
//	<dir>/000000000000000n1.seg      records for offsets [n1, n2)
//	...                              (filename = decimal base offset)
//	<dir>/cursors                    consumer-group cursors
//
// Each record is one appended batch:
//
//	uint32  size   (bytes after this field: crc + base + batch body)
//	uint32  crc    (IEEE CRC32 of everything after this field)
//	uint64  base   (offset of the batch's first message)
//	batch          (wire batch body: uint32 count + count × (uint32 len | payload))
//
// The batch body is byte-identical to the payload section of a wire
// PRODUCE frame — internal/wire's EncodeBatch/ParseBatch are the
// single codec for both, so the disk hot path reuses the protocol's
// allocation-free encoder and fail-closed decoder.
//
// # Offsets and the index
//
// Offsets are assigned by Append under the log's lock: record base
// offsets strictly increase and file order equals offset order, which
// is the total order replay reproduces. The offset index is two-level:
// segment filenames map an offset to its file, and an in-memory
// per-segment record index (built at append time, rebuilt by the open
// scan) maps it to the byte position of its record, so a reader seeks
// without scanning.
//
// # Recovery invariants
//
// Open scans every segment record by record, CRC-checking each one,
// and truncates at the first record that is torn (size out of range,
// short body, CRC mismatch, base offset out of sequence) — everything
// after a torn record is unreachable and is discarded, including any
// later segment files. The result is always a consistent prefix of
// what was appended: a record is either fully present with a valid
// CRC or gone, never partially visible. Offsets never regress across
// a crash because the active segment file (whose name pins its base
// offset) is itself never deleted by retention.
//
// # Durability policies
//
// SyncOff never calls fsync (the OS flushes on its own schedule);
// SyncInterval runs a background fsync every Interval; SyncSegment
// syncs each segment as it rolls; SyncAlways syncs every append
// before it returns. Data written but not yet fsynced survives a
// process kill but not a machine crash — the recovery scan handles
// both identically.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"ffq/internal/obs"
	"ffq/internal/wire"
)

// SyncPolicy selects when the log fsyncs.
type SyncPolicy int

const (
	// SyncOff never fsyncs; the OS writes back on its own schedule.
	SyncOff SyncPolicy = iota
	// SyncInterval fsyncs dirty segments every Options.SyncInterval.
	SyncInterval
	// SyncSegment fsyncs each segment when it rolls (and at Seal).
	SyncSegment
	// SyncAlways fsyncs before every Append returns: an acknowledged
	// batch is on stable storage.
	SyncAlways
)

// ParseSyncPolicy maps the ffqd -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "interval":
		return SyncInterval, nil
	case "segment":
		return SyncSegment, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (have off, interval, segment, always)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncOff:
		return "off"
	case SyncInterval:
		return "interval"
	case SyncSegment:
		return "segment"
	case SyncAlways:
		return "always"
	}
	return "unknown"
}

// Defaults for Options zero values.
const (
	DefaultSegmentBytes = 64 << 20
	DefaultSyncInterval = 100 * time.Millisecond
)

// Record framing constants.
const (
	// recHeader is the fixed prefix: size + crc + base.
	recHeader = 16
	// minRecSize is the smallest valid size field: crc excluded, so
	// base (8) + an empty batch body (4).
	minRecSize = 12 + 4
	// maxRecSize bounds the size field; a scanned value above it is a
	// torn record, not a huge batch (appends can never produce one:
	// the batch body is wire-bounded by MaxFrame).
	maxRecSize = wire.MaxFrame + 16
)

// Log errors.
var (
	// ErrSealed is returned by Append after Seal/Close.
	ErrSealed = errors.New("wal: log is sealed")
	// ErrCorrupt is returned by readers that hit an invalid record in
	// the retained log body (the open scan repairs only the tail).
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrOffsetGap is returned by AppendAt when the batch's base offset
	// is not the log's next offset: the follower missed records (or
	// replayed old ones) and must resync rather than write a hole.
	ErrOffsetGap = errors.New("wal: append base is not the next offset")
)

// Options configures a Log.
type Options struct {
	// SegmentBytes is the roll threshold: a record that would push the
	// active segment past it starts a new one. 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval.
	// 0 means DefaultSyncInterval.
	SyncInterval time.Duration
	// RetentionBytes bounds the log's total size: rolling a segment
	// drops the oldest sealed segments while the total exceeds it.
	// 0 means unbounded. The active segment is never dropped.
	RetentionBytes int64
	// RetentionAge drops sealed segments whose newest record is older
	// than this, checked at each roll and at EnforceRetention. 0 means
	// unbounded.
	RetentionAge time.Duration
	// FsyncHist, when non-nil, records each fsync's latency in
	// nanoseconds (exported by the broker as ffqd_wal_fsync_ns).
	FsyncHist *obs.LatencyHist
}

// recIdx is one offset-index entry: the record holding offset `off`
// starts at byte `pos` of its segment file.
type recIdx struct {
	off uint64
	pos int64
}

// segment is one sealed (non-active) segment file.
type segment struct {
	base, end uint64 // offset range [base, end)
	size      int64
	sealedAt  time.Time // roll time; age retention measures from here
	index     []recIdx
}

// Stats is a point-in-time summary of a Log, for metrics.
type Stats struct {
	// Oldest is the oldest retained offset, Next the next offset to be
	// assigned; Next-Oldest messages are readable.
	Oldest, Next uint64
	// Bytes is the on-disk size of all retained segments.
	Bytes int64
	// Segments counts retained segment files (including the active one).
	Segments int
}

// Log is one topic's append-only segment log. Append/Seal/Close and
// the read-side lookups are safe for concurrent use; each Reader is
// single-consumer.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	active *os.File
	// activeBase/activeSize/activeIdx describe the segment being
	// appended to; segs holds the sealed ones in offset order.
	activeBase uint64
	activeSize int64
	activeIdx  []recIdx
	segs       []segment
	next       uint64
	oldest     uint64
	total      int64 // on-disk bytes, sealed + active
	dirty      bool  // bytes written since the last fsync
	sealed     bool
	closed     bool
	// notify is closed and replaced on every append and at Seal, so
	// head followers can wait without polling.
	notify chan struct{}
	enc    []byte // record scratch buffer

	stopSync chan struct{}
	syncWG   sync.WaitGroup
}

// Open opens (creating or recovering) the log directory. Recovery
// scans every segment, truncates a torn tail, and discards anything
// beyond it; see the package comment for the invariants.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		notify:   make(chan struct{}),
		stopSync: make(chan struct{}),
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.syncWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// segPath returns the segment filename for a base offset.
func (l *Log) segPath(base uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%020d.seg", base))
}

// recover builds the in-memory state from the directory: list the
// segment files, scan them in offset order, truncate the torn tail,
// and open the last one for appending.
func (l *Log) recover() error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var bases []uint64
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) != ".seg" {
			continue
		}
		base, err := strconv.ParseUint(name[:len(name)-4], 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	if len(bases) == 0 {
		f, err := os.OpenFile(l.segPath(0), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		l.active = f
		return nil
	}

	l.oldest = bases[0]
	expect := bases[0]
	scanned := false
	for i, base := range bases {
		if base != expect {
			// A gap in the offset chain: everything from here on is
			// unreachable by replay. Treat it like a torn tail.
			for _, b := range bases[i:] {
				os.Remove(l.segPath(b))
			}
			break
		}
		end, size, index, intact, err := scanSegment(l.segPath(base), base)
		if err != nil {
			return err
		}
		if scanned {
			// The previous candidate is not the last file: seal it.
			l.segs = append(l.segs, segment{
				base: l.activeBase, end: l.next,
				size: l.activeSize, sealedAt: time.Now(), index: l.activeIdx,
			})
		}
		l.activeBase, l.next = base, end
		l.activeSize = size
		l.activeIdx = index
		l.total += size
		scanned = true
		if !intact {
			// Torn record: truncate this segment to its valid prefix
			// and drop every later segment.
			if err := os.Truncate(l.segPath(base), size); err != nil {
				return err
			}
			for _, b := range bases[i+1:] {
				os.Remove(l.segPath(b))
			}
			break
		}
		expect = end
	}
	return l.openActive()
}

// openActive opens the last scanned segment for appending.
func (l *Log) openActive() error {
	f, err := os.OpenFile(l.segPath(l.activeBase), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(l.activeSize, 0); err != nil {
		f.Close()
		return err
	}
	l.active = f
	return nil
}

// scanSegment walks one segment file record by record, CRC-checking
// each, and returns the end offset, valid byte prefix and record
// index. intact=false means a torn record was found at `size`.
func scanSegment(path string, base uint64) (end uint64, size int64, index []recIdx, intact bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, false, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, nil, false, err
	}
	fileSize := info.Size()

	var hdr [recHeader]byte
	var body []byte
	end = base
	for size < fileSize {
		if fileSize-size < recHeader {
			return end, size, index, false, nil
		}
		if _, err := f.ReadAt(hdr[:], size); err != nil {
			return end, size, index, false, nil
		}
		recSize := int64(binary.BigEndian.Uint32(hdr[0:]))
		if recSize < minRecSize || recSize > maxRecSize || recSize > fileSize-size-4 {
			return end, size, index, false, nil
		}
		recBase := binary.BigEndian.Uint64(hdr[8:])
		if recBase != end {
			return end, size, index, false, nil
		}
		bodyLen := int(recSize) - 12 // batch body after crc+base
		if cap(body) < bodyLen {
			body = make([]byte, bodyLen)
		}
		body = body[:bodyLen]
		if _, err := f.ReadAt(body, size+recHeader); err != nil {
			return end, size, index, false, nil
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[8:]) // base
		crc.Write(body)
		if crc.Sum32() != binary.BigEndian.Uint32(hdr[4:]) {
			return end, size, index, false, nil
		}
		b, err := wire.ParseBatch(body)
		if err != nil || b.N == 0 {
			return end, size, index, false, nil
		}
		index = append(index, recIdx{off: end, pos: size})
		end += uint64(b.N)
		size += 4 + recSize
	}
	return end, size, index, true, nil
}

// Append writes one batch as a single record, assigns its offsets and
// returns the first one. The write and the offset assignment happen
// under one lock, so file order is offset order even with concurrent
// appenders. The returned base is the offset of payloads[0];
// payloads[i] gets base+i.
func (l *Log) Append(payloads [][]byte) (base uint64, err error) {
	if len(payloads) == 0 {
		l.mu.Lock()
		base = l.next
		l.mu.Unlock()
		return base, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return 0, ErrSealed
	}
	return l.appendLocked(payloads)
}

// AppendAt writes one batch whose first message must land exactly at
// offset base — the replication follower's append: offsets are
// assigned by the partition owner and reproduced here, never invented.
// A base behind or ahead of the log's next offset is ErrOffsetGap; the
// caller resyncs instead of creating a hole or a duplicate.
func (l *Log) AppendAt(base uint64, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return ErrSealed
	}
	if base != l.next {
		return fmt.Errorf("%w: log next %d, batch base %d", ErrOffsetGap, l.next, base)
	}
	_, err := l.appendLocked(payloads)
	return err
}

// appendLocked encodes and writes one batch record at l.next. Callers
// hold l.mu and have checked sealed.
func (l *Log) appendLocked(payloads [][]byte) (base uint64, err error) {
	bodyLen := wire.BatchSize(payloads)
	recLen := recHeader + bodyLen
	if cap(l.enc) < recLen {
		l.enc = make([]byte, recLen)
	}
	rec := l.enc[:recLen]
	binary.BigEndian.PutUint32(rec[0:], uint32(12+bodyLen))
	binary.BigEndian.PutUint64(rec[8:], l.next)
	wire.EncodeBatch(rec[recHeader:], payloads)
	crc := crc32.NewIEEE()
	crc.Write(rec[8:])
	binary.BigEndian.PutUint32(rec[4:], crc.Sum32())

	if l.activeSize > 0 && l.activeSize+int64(recLen) > l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := l.active.Write(rec); err != nil {
		return 0, err
	}
	base = l.next
	l.activeIdx = append(l.activeIdx, recIdx{off: base, pos: l.activeSize})
	l.activeSize += int64(recLen)
	l.total += int64(recLen)
	l.next += uint64(len(payloads))
	l.dirty = true

	if l.opts.Sync == SyncAlways {
		if err := l.fsyncLocked(); err != nil {
			return 0, err
		}
	}
	close(l.notify)
	l.notify = make(chan struct{})
	return base, nil
}

// rollLocked seals the active segment and starts a new one at the
// current next offset, then enforces retention. Callers hold l.mu.
func (l *Log) rollLocked() error {
	if l.opts.Sync == SyncSegment || l.opts.Sync == SyncAlways {
		if err := l.fsyncLocked(); err != nil {
			return err
		}
	}
	// Open the successor before sealing the current segment: if the
	// open fails, l.active must still be the live, open handle —
	// closing first would wedge the log on a closed file and leave the
	// sealed segment double-accounted in l.segs.
	f, err := os.OpenFile(l.segPath(l.next), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		f.Close()
		os.Remove(l.segPath(l.next))
		return err
	}
	l.segs = append(l.segs, segment{
		base: l.activeBase, end: l.next,
		size: l.activeSize, sealedAt: time.Now(), index: l.activeIdx,
	})
	l.active = f
	l.activeBase = l.next
	l.activeSize = 0
	l.activeIdx = nil
	l.dirty = false
	l.enforceRetentionLocked()
	return nil
}

// fsyncLocked syncs the active segment, timing it into FsyncHist.
// Callers hold l.mu.
func (l *Log) fsyncLocked() error {
	start := time.Now()
	err := l.active.Sync()
	if h := l.opts.FsyncHist; h != nil {
		h.Record(time.Since(start).Nanoseconds())
	}
	if err == nil {
		l.dirty = false
	}
	return err
}

// enforceRetentionLocked drops the oldest sealed segments that exceed
// the size or age bounds. The active segment survives unconditionally:
// its filename pins the offset chain across restarts.
func (l *Log) enforceRetentionLocked() {
	for len(l.segs) > 0 {
		s := l.segs[0]
		drop := false
		if l.opts.RetentionBytes > 0 && l.total > l.opts.RetentionBytes {
			drop = true
		}
		if l.opts.RetentionAge > 0 && time.Since(s.sealedAt) > l.opts.RetentionAge {
			drop = true
		}
		if !drop {
			return
		}
		os.Remove(l.segPath(s.base))
		l.total -= s.size
		l.oldest = s.end
		l.segs = l.segs[1:]
	}
}

// EnforceRetention applies the retention bounds now (age-based
// retention otherwise only runs when a segment rolls).
func (l *Log) EnforceRetention() {
	l.mu.Lock()
	l.enforceRetentionLocked()
	l.mu.Unlock()
}

// ResetTo discards every retained record and restarts the offset chain
// at base — the replication follower's resync after the owner's
// retention overtook it (the records below base are gone at the source,
// so a contiguous local copy can only start there). The caller must
// ensure no concurrent reader depends on the discarded records; open
// Readers hold their own file handles and will surface read errors.
func (l *Log) ResetTo(base uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return ErrSealed
	}
	for _, s := range l.segs {
		os.Remove(l.segPath(s.base))
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	os.Remove(l.segPath(l.activeBase))
	f, err := os.OpenFile(l.segPath(base), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	l.active = f
	l.activeBase = base
	l.activeSize = 0
	l.activeIdx = nil
	l.segs = nil
	l.next = base
	l.oldest = base
	l.total = 0
	l.dirty = false
	close(l.notify)
	l.notify = make(chan struct{})
	return nil
}

// syncLoop is the SyncInterval policy's background fsync.
func (l *Log) syncLoop() {
	defer l.syncWG.Done()
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				l.fsyncLocked() // best effort; Append surfaces hard errors
			}
			l.mu.Unlock()
		}
	}
}

// Seal ends the append phase: no more Appends succeed, the active
// segment is flushed to stable storage, and head followers are woken
// so they can finish at the current end. Readers keep working after
// Seal. Idempotent.
func (l *Log) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return nil
	}
	l.sealed = true
	var err error
	if l.active != nil {
		err = l.fsyncLocked()
	}
	close(l.notify)
	l.notify = make(chan struct{})
	return err
}

// Close seals the log and releases the append-side file handle. Open
// Readers hold their own handles and keep working.
func (l *Log) Close() error {
	err := l.Seal()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return err
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stopSync)
	l.syncWG.Wait()
	l.mu.Lock()
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	l.mu.Unlock()
	return err
}

// Sync fsyncs the active segment now, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	return l.fsyncLocked()
}

// NextOffset returns the next offset Append will assign.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// OldestOffset returns the oldest retained offset.
func (l *Log) OldestOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oldest
}

// Stats returns a point-in-time summary for metrics.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Oldest:   l.oldest,
		Next:     l.next,
		Bytes:    l.total,
		Segments: len(l.segs) + 1,
	}
}

// Sealed reports whether the log has been sealed (no more appends).
func (l *Log) Sealed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed
}

// WaitAppend returns a channel that is closed once the log grows past
// off or is sealed — the head follower's park/wake primitive. When the
// condition already holds, the returned channel is already closed.
func (l *Log) WaitAppend(off uint64) <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next > off || l.sealed {
		return closedChan
	}
	return l.notify
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()
