package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecover damages a real log — truncating the tail, flipping a
// byte, or appending garbage at a fuzz-chosen position — reopens it,
// and checks the recovery contract: Open never fails or panics, the
// recovered log is a consistent prefix of what was appended (every
// surviving message is byte-identical at its original offset, with no
// gaps), and a subsequent append continues the offset sequence
// cleanly.
func FuzzWALRecover(f *testing.F) {
	f.Add(uint16(3), uint16(0), uint8(0), uint8(0))
	f.Add(uint16(40), uint16(5), uint8(1), uint8(0xff))
	f.Add(uint16(200), uint16(1000), uint8(2), uint8(1))
	f.Add(uint16(64), uint16(17), uint8(1), uint8(0x80))

	f.Fuzz(func(t *testing.T, nMsgs, damagePos uint16, mode, bit uint8) {
		n := int(nMsgs)%256 + 1
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		// Build the reference log: n messages in irregular batches.
		want := make([][]byte, 0, n)
		batch := make([][]byte, 0, 8)
		for off := 0; off < n; {
			batch = batch[:0]
			k := (off+int(bit))%7 + 1
			for j := 0; j < k && off < n; j++ {
				m := []byte(fmt.Sprintf("m-%04d-%02x", off, bit))
				batch = append(batch, m)
				want = append(want, m)
				off++
			}
			if _, err := l.Append(batch); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Damage one of the segment files at the fuzz-chosen position.
		segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments: %v", err)
		}
		victim := segs[len(segs)-1-int(damagePos)%len(segs)]
		data, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		switch mode % 3 {
		case 0: // truncate
			if len(data) > 0 {
				data = data[:int(damagePos)%len(data)]
			}
		case 1: // flip a byte
			if len(data) > 0 {
				data[int(damagePos)%len(data)] ^= bit | 1
			}
		case 2: // append garbage
			data = append(data, bytes.Repeat([]byte{bit}, int(damagePos)%64+1)...)
		}
		if err := os.WriteFile(victim, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Recovery must always succeed and yield a consistent prefix.
		l2, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatalf("reopen after damage: %v", err)
		}
		defer l2.Close()
		next := l2.NextOffset()
		if next > uint64(n) {
			t.Fatalf("recovered next %d beyond appended %d", next, n)
		}
		r := l2.NewReader(0)
		defer r.Close()
		read := uint64(0)
		for {
			base, msgs, err := r.Next(16)
			if err != nil {
				t.Fatalf("replay after recovery: %v", err)
			}
			if len(msgs) == 0 {
				break
			}
			if base != read {
				t.Fatalf("offset gap in recovered log: got %d, want %d", base, read)
			}
			for i, m := range msgs {
				if !bytes.Equal(m, want[base+uint64(i)]) {
					t.Fatalf("offset %d: recovered %q, appended %q", base+uint64(i), m, want[base+uint64(i)])
				}
			}
			read += uint64(len(msgs))
		}
		if read != next {
			t.Fatalf("replay read %d messages, log claims %d", read, next)
		}

		// The repaired log must accept appends continuing the sequence.
		base, err := l2.Append([][]byte{[]byte("after-recovery")})
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if base != next {
			t.Fatalf("post-recovery append at %d, want %d", base, next)
		}

		// And survive a clean reopen to the same state.
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatalf("third open: %v", err)
		}
		if got := l3.NextOffset(); got != next+1 {
			t.Fatalf("third open next = %d, want %d", got, next+1)
		}
		if errors.Is(l3.Close(), ErrCorrupt) {
			t.Fatal("clean close reported corruption")
		}
	})
}
