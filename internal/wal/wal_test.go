package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testOpen opens a log in a fresh temp dir with small segments so
// tests exercise rolling without writing megabytes.
func testOpen(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, dir
}

// payload builds a recognizable per-offset payload so reads can verify
// both content and position.
func payload(off uint64) []byte {
	return []byte(fmt.Sprintf("msg-%06d", off))
}

// appendN appends n messages in batches of batch, verifying the
// returned base offsets are the assigned sequence.
func appendN(t *testing.T, l *Log, start uint64, n, batch int) {
	t.Helper()
	for i := 0; i < n; i += batch {
		k := batch
		if i+k > n {
			k = n - i
		}
		msgs := make([][]byte, k)
		for j := 0; j < k; j++ {
			msgs[j] = payload(start + uint64(i+j))
		}
		base, err := l.Append(msgs)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if want := start + uint64(i); base != want {
			t.Fatalf("Append base = %d, want %d", base, want)
		}
	}
}

// readAll drains a reader from its position to the log head, checking
// every payload against its offset.
func readAll(t *testing.T, l *Log, r *Reader, max int) (first, count uint64) {
	t.Helper()
	first = r.Offset()
	next := first
	started := false
	for {
		base, msgs, err := r.Next(max)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(msgs) == 0 {
			return first, next - first
		}
		if !started {
			first, next = base, base
			started = true
		}
		if base != next {
			t.Fatalf("offset gap: got base %d, want %d", base, next)
		}
		for i, m := range msgs {
			if want := payload(base + uint64(i)); string(m) != string(want) {
				t.Fatalf("offset %d: payload %q, want %q", base+uint64(i), m, want)
			}
		}
		next = base + uint64(len(msgs))
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, _ := testOpen(t, Options{SegmentBytes: 1 << 10})
	defer l.Close()

	const n = 500
	appendN(t, l, 0, n, 7)
	if got := l.NextOffset(); got != n {
		t.Fatalf("NextOffset = %d, want %d", got, n)
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments at 1KiB roll, got %d", st.Segments)
	}

	// Full replay from 0.
	r := l.NewReader(0)
	defer r.Close()
	if first, count := readAll(t, l, r, 16); first != 0 || count != n {
		t.Fatalf("replay from 0: got [%d, %d), want [0, %d)", first, first+count, n)
	}

	// Replay from the middle, with a max smaller and larger than the
	// append batch so record-straddling reads are exercised both ways.
	for _, max := range []int{3, 64} {
		r := l.NewReader(123)
		if first, count := readAll(t, l, r, max); first != 123 || count != n-123 {
			t.Fatalf("replay from 123 (max=%d): got [%d, %d)", max, first, first+count)
		}
		r.Close()
	}

	// A reader past the head clamps to the head and reports caught-up.
	r2 := l.NewReader(1 << 40)
	defer r2.Close()
	if base, msgs, err := r2.Next(8); err != nil || len(msgs) != 0 || base != n {
		t.Fatalf("past-head read: base=%d msgs=%d err=%v, want caught-up at %d", base, len(msgs), err, n)
	}
}

func TestReopenContinues(t *testing.T) {
	l, dir := testOpen(t, Options{SegmentBytes: 1 << 10})
	appendN(t, l, 0, 100, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.NextOffset(); got != 100 {
		t.Fatalf("NextOffset after reopen = %d, want 100", got)
	}
	appendN(t, l2, 100, 50, 5)
	r := l2.NewReader(0)
	defer r.Close()
	if first, count := readAll(t, l2, r, 16); first != 0 || count != 150 {
		t.Fatalf("after reopen+append: got [%d, %d), want [0, 150)", first, first+count)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mangle func(t *testing.T, path string)
	}{
		{"truncate-mid-record", func(t *testing.T, path string) {
			info, _ := os.Stat(path)
			if err := os.Truncate(path, info.Size()-5); err != nil {
				t.Fatal(err)
			}
		}},
		{"flip-tail-byte", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-3] ^= 0xff
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, dir := testOpen(t, Options{SegmentBytes: 1 << 20})
			appendN(t, l, 0, 90, 10)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			tc.mangle(t, filepath.Join(dir, fmt.Sprintf("%020d.seg", 0)))

			l2, err := Open(dir, Options{SegmentBytes: 1 << 20})
			if err != nil {
				t.Fatalf("reopen after mangle: %v", err)
			}
			defer l2.Close()
			// The last batch (offsets 80..89) was damaged: recovery must
			// keep exactly the 8 intact batches before it.
			if got := l2.NextOffset(); got != 80 {
				t.Fatalf("NextOffset after recovery = %d, want 80", got)
			}
			r := l2.NewReader(0)
			defer r.Close()
			if first, count := readAll(t, l2, r, 16); first != 0 || count != 80 {
				t.Fatalf("recovered replay: got [%d, %d), want [0, 80)", first, first+count)
			}
			// The log must accept appends again, continuing the sequence.
			appendN(t, l2, 80, 10, 10)
			if got := l2.NextOffset(); got != 90 {
				t.Fatalf("NextOffset after repair+append = %d, want 90", got)
			}
		})
	}
}

func TestTornTailDropsLaterSegments(t *testing.T) {
	l, dir := testOpen(t, Options{SegmentBytes: 1 << 10})
	appendN(t, l, 0, 300, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(ents) < 3 {
		t.Fatalf("want >=3 segments, got %d (err %v)", len(ents), err)
	}
	// Corrupt the middle of the SECOND segment: recovery must keep
	// segment 1 whole, the valid prefix of segment 2, and delete the
	// rest.
	b, err := os.ReadFile(ents[1])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(ents[1], b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	next := l2.NextOffset()
	if next == 0 || next >= 300 {
		t.Fatalf("recovered NextOffset = %d, want a strict prefix > 0", next)
	}
	r := l2.NewReader(0)
	defer r.Close()
	if first, count := readAll(t, l2, r, 16); first != 0 || count != next {
		t.Fatalf("recovered replay: got [%d, %d), want [0, %d)", first, first+count, next)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(left) > 2 {
		t.Fatalf("later segments not deleted: %v", left)
	}
}

func TestRetentionBySize(t *testing.T) {
	l, dir := testOpen(t, Options{SegmentBytes: 1 << 10, RetentionBytes: 3 << 10})
	defer l.Close()
	appendN(t, l, 0, 2000, 10)

	st := l.Stats()
	if st.Oldest == 0 {
		t.Fatal("retention never advanced the oldest offset")
	}
	// Total size may exceed the bound by up to one active segment, but
	// sealed segments beyond it must be gone.
	if st.Bytes > (3<<10)+(1<<10)+512 {
		t.Fatalf("retained %d bytes, bound is %d", st.Bytes, 3<<10)
	}
	ents, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(ents) != st.Segments {
		t.Fatalf("on disk %d segment files, Stats says %d", len(ents), st.Segments)
	}

	// A reader from 0 clamps to the oldest retained offset and reads a
	// contiguous suffix.
	r := l.NewReader(0)
	defer r.Close()
	first, count := readAll(t, l, r, 32)
	if first != st.Oldest {
		t.Fatalf("replay started at %d, oldest is %d", first, st.Oldest)
	}
	if first+count != 2000 {
		t.Fatalf("replay ended at %d, want 2000", first+count)
	}
}

func TestRetentionByAge(t *testing.T) {
	l, _ := testOpen(t, Options{SegmentBytes: 1 << 10, RetentionAge: time.Millisecond})
	defer l.Close()
	appendN(t, l, 0, 500, 10)
	time.Sleep(5 * time.Millisecond)
	l.EnforceRetention()
	st := l.Stats()
	if st.Oldest == 0 {
		t.Fatal("age retention never advanced the oldest offset")
	}
	if st.Segments != 1 {
		t.Fatalf("age retention left %d segments, want just the active one", st.Segments)
	}
	// The active segment must survive even though it is old.
	r := l.NewReader(0)
	defer r.Close()
	if first, count := readAll(t, l, r, 32); first+count != 500 {
		t.Fatalf("suffix replay ended at %d, want 500", first+count)
	}
}

func TestSealStopsAppends(t *testing.T) {
	l, _ := testOpen(t, Options{})
	defer l.Close()
	appendN(t, l, 0, 10, 10)
	if err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := l.Append([][]byte{[]byte("x")}); err != ErrSealed {
		t.Fatalf("Append after Seal: err = %v, want ErrSealed", err)
	}
	// Readers keep working after Seal.
	r := l.NewReader(0)
	defer r.Close()
	if first, count := readAll(t, l, r, 4); first != 0 || count != 10 {
		t.Fatalf("post-Seal replay: got [%d, %d)", first, first+count)
	}
	// WaitAppend resolves immediately once sealed.
	select {
	case <-l.WaitAppend(999):
	default:
		t.Fatal("WaitAppend not resolved on a sealed log")
	}
}

func TestWaitAppendWakesFollower(t *testing.T) {
	l, _ := testOpen(t, Options{})
	defer l.Close()
	appendN(t, l, 0, 3, 3)

	// Caught-up: the wait channel must block until the next append.
	ch := l.WaitAppend(2) // offset 2 exists, so already resolved
	select {
	case <-ch:
	default:
		t.Fatal("WaitAppend(2) should be resolved: offset 2 was appended")
	}
	ch = l.WaitAppend(3)
	select {
	case <-ch:
		t.Fatal("WaitAppend(3) resolved before offset 3 exists")
	default:
	}

	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	appendN(t, l, 3, 1, 1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("append did not wake the follower")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncOff, SyncInterval, SyncSegment, SyncAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			l, _ := testOpen(t, Options{
				SegmentBytes: 1 << 10,
				Sync:         pol,
				SyncInterval: time.Millisecond,
			})
			appendN(t, l, 0, 200, 8)
			if err := l.Close(); err != nil {
				t.Fatalf("Close under %v: %v", pol, err)
			}
		})
	}
	if _, err := ParseSyncPolicy("nope"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
	for _, s := range []string{"off", "interval", "segment", "always"} {
		p, err := ParseSyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, p, err)
		}
	}
}

func TestCursors(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCursors(dir, true)
	if err != nil {
		t.Fatalf("OpenCursors: %v", err)
	}
	if _, ok := c.Get("g1"); ok {
		t.Fatal("empty store returned a cursor")
	}
	if err := c.Commit("g1", 42); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := c.Commit("g with spaces\n", 7); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Stale commits are ignored.
	if err := c.Commit("g1", 10); err != nil {
		t.Fatal(err)
	}
	if off, _ := c.Get("g1"); off != 42 {
		t.Fatalf("cursor regressed to %d", off)
	}

	// Reopen: cursors survive, including the awkward group name.
	c2, err := OpenCursors(dir, true)
	if err != nil {
		t.Fatalf("reopen cursors: %v", err)
	}
	if off, ok := c2.Get("g1"); !ok || off != 42 {
		t.Fatalf("g1 after reopen = %d, %v", off, ok)
	}
	if off, ok := c2.Get("g with spaces\n"); !ok || off != 7 {
		t.Fatalf("quoted group after reopen = %d, %v", off, ok)
	}
	if gs := c2.Groups(); len(gs) != 2 {
		t.Fatalf("Groups = %v", gs)
	}

	// A damaged line drops that cursor but not the store.
	path := filepath.Join(dir, cursorsFile)
	if err := os.WriteFile(path, []byte("garbage line\n99 \"ok\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenCursors(dir, false)
	if err != nil {
		t.Fatalf("open with damaged line: %v", err)
	}
	if off, ok := c3.Get("ok"); !ok || off != 99 {
		t.Fatalf("surviving cursor = %d, %v", off, ok)
	}
	if _, ok := c3.Get("garbage"); ok {
		t.Fatal("damaged line produced a cursor")
	}
}

func TestDirName(t *testing.T) {
	cases := map[string]string{
		"orders":      "orders",
		"a.b_c-D9":    "a.b_c-D9",
		"":            "%empty",
		".":           "%2E",
		"..":          "%2E%2E",
		"a/b":         "a%2Fb",
		"sp ace":      "sp%20ace",
		"pct%41":      "pct%2541",
		"\x00\xff":    "%00%FF",
		"...":         "...",
		"normal.name": "normal.name",
	}
	seen := map[string]string{}
	for in, want := range cases {
		got := DirName(in)
		if got != want {
			t.Errorf("DirName(%q) = %q, want %q", in, got, want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("collision: %q and %q both map to %q", prev, in, got)
		}
		seen[got] = in
	}
}

func TestEmptyAppendIsNoop(t *testing.T) {
	l, _ := testOpen(t, Options{})
	defer l.Close()
	appendN(t, l, 0, 5, 5)
	base, err := l.Append(nil)
	if err != nil || base != 5 {
		t.Fatalf("empty append: base=%d err=%v", base, err)
	}
	if got := l.NextOffset(); got != 5 {
		t.Fatalf("empty append advanced the log to %d", got)
	}
}
