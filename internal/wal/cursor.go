package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Cursors is a topic's consumer-group cursor store: one tiny text file
// ("cursors" in the topic's log directory) mapping each group name to
// its committed cursor — the first offset the group has NOT processed.
// Commits are monotonic (a stale commit is ignored) and persist via
// write-to-temp + rename, so the file on disk is always a complete,
// parseable snapshot; a crash between commits loses at most the last
// few commits, which replay then re-delivers (at-least-once, deduped
// downstream by offset).
type Cursors struct {
	mu   sync.Mutex
	path string
	m    map[string]uint64
	// syncOnCommit fsyncs the renamed file; wired to the log's policy
	// (off ⇒ false).
	syncOnCommit bool
	buf          []byte
}

// cursorsFile is the store's filename inside a topic's log directory.
const cursorsFile = "cursors"

// OpenCursors loads (or creates) the cursor store in dir. Unparseable
// lines are dropped rather than failing the open: a torn cursor write
// cannot happen (rename is atomic), but a damaged file only costs
// replay, never availability.
func OpenCursors(dir string, syncOnCommit bool) (*Cursors, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cursors{
		path:         filepath.Join(dir, cursorsFile),
		m:            make(map[string]uint64),
		syncOnCommit: syncOnCommit,
	}
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		// Line format: `<offset> <quoted group>`.
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		off, err := strconv.ParseUint(line[:sp], 10, 64)
		if err != nil {
			continue
		}
		group, err := strconv.Unquote(line[sp+1:])
		if err != nil {
			continue
		}
		c.m[group] = off
	}
	return c, sc.Err()
}

// Get returns a group's committed cursor and whether one exists.
func (c *Cursors) Get(group string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	off, ok := c.m[group]
	return off, ok
}

// Groups returns the known group names, sorted.
func (c *Cursors) Groups() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for g := range c.m {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Commit advances a group's cursor to off (first unprocessed offset)
// and persists the store. A commit at or below the current cursor is a
// no-op: cursors only move forward.
func (c *Cursors) Commit(group string, off uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.m[group]; ok && off <= cur {
		return nil
	}
	c.m[group] = off
	return c.flushLocked()
}

// flushLocked rewrites the cursor file atomically. Callers hold c.mu.
func (c *Cursors) flushLocked() error {
	c.buf = c.buf[:0]
	for g, off := range c.m {
		c.buf = strconv.AppendUint(c.buf, off, 10)
		c.buf = append(c.buf, ' ')
		c.buf = strconv.AppendQuote(c.buf, g)
		c.buf = append(c.buf, '\n')
	}
	tmp := c.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(c.buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if c.syncOnCommit {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("wal: persist cursors: %w", err)
	}
	return nil
}

// Flush persists the current cursor map (used at shutdown; Commit
// already persists on every call).
func (c *Cursors) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}
