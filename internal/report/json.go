package report

import (
	"encoding/json"
	"io"
	"time"

	"ffq/internal/obs"
)

// QueueStats is one queue's instrumentation snapshot inside a Record:
// the obs counters plus the identifying name and sizing gauges.
type QueueStats struct {
	// Name identifies the queue within the run ("submission", "q0"...).
	Name string `json:"name"`
	// Depth and Capacity are gauges sampled when the record was built.
	Depth    int `json:"depth,omitempty"`
	Capacity int `json:"capacity,omitempty"`
	obs.Stats
}

// Record is one benchmark result in the module's JSON form (the
// BENCH_*.json files). Alongside the headline metrics it carries the
// per-queue instrumentation counters, so stored results document not
// just how fast a configuration ran but how hard it spun and how many
// gaps it burnt doing so.
type Record struct {
	// Name identifies the experiment ("fig3/entries=1024").
	Name string `json:"name"`
	// Timestamp is when the run finished.
	Timestamp time.Time `json:"timestamp,omitempty"`
	// Params are the experiment's configuration knobs.
	Params map[string]any `json:"params,omitempty"`
	// Metrics are the headline results (e.g. "mops_per_sec").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Queues are the per-queue instrumentation snapshots, present when
	// the run was instrumented.
	Queues []QueueStats `json:"queues,omitempty"`
}

// WriteJSON writes records as one indented JSON array, the layout of
// the BENCH_*.json files.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// ReadJSON decodes a BENCH_*.json array.
func ReadJSON(r io.Reader) ([]Record, error) {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, err
	}
	return recs, nil
}
