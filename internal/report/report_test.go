package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Figure X: sample",
		Note:    "a note",
		Columns: []string{"queue", "threads", "Mops/s"},
	}
	t.AddRow("ffq-mpmc", 4, 12.5)
	t.AddRow("msqueue", 4, 0.75)
	t.AddRow("weird,name", 1, float32(2.0))
	return t
}

func TestFprintAligned(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "## Figure X: sample") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "a note") {
		t.Error("missing note")
	}
	lines := strings.Split(out, "\n")
	var header, sep string
	for i, l := range lines {
		if strings.HasPrefix(l, "queue") {
			header, sep = l, lines[i+1]
			break
		}
	}
	if header == "" || !strings.HasPrefix(sep, "---") {
		t.Fatalf("bad header/separator:\n%s", out)
	}
	// Numbers are right-aligned under their columns: the Mops column
	// values end at the same offset.
	var ends []int
	for _, l := range lines {
		if strings.HasPrefix(l, "ffq-mpmc") || strings.HasPrefix(l, "msqueue") {
			ends = append(ends, len(l))
		}
	}
	if len(ends) != 2 || ends[0] != ends[1] {
		t.Errorf("misaligned numeric column: %v\n%s", ends, out)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "queue,threads,Mops/s" {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(out, `"weird,name"`) {
		t.Error("comma-containing cell not quoted")
	}
}

func TestFloatFormatting(t *testing.T) {
	var tb Table
	tb.AddRow(0.0, 1234.5678, 42.4242, 3.14159)
	row := tb.Rows[0]
	want := []string{"0", "1235", "42.42", "3.1416"}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("cell %d = %q, want %q", i, row[i], w)
		}
	}
}

func TestRaggedRows(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("x")
	tb.AddRow("y", 1, 2) // wider than the header
	out := tb.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "y") {
		t.Fatalf("rows lost:\n%s", out)
	}
}
