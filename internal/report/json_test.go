package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ffq/internal/obs"
)

func TestJSONRoundTrip(t *testing.T) {
	in := []Record{
		{
			Name:      "fig3/entries=1024",
			Timestamp: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
			Params:    map[string]any{"variant": "spmc", "consumers": float64(4)},
			Metrics:   map[string]float64{"mops_per_sec": 12.5},
			Queues: []QueueStats{{
				Name:     "submission",
				Depth:    3,
				Capacity: 1024,
				Stats: obs.Stats{
					Enqueues:    1000,
					Dequeues:    997,
					FullSpins:   12,
					GapsCreated: 2,
					GapsSkipped: 2,
					WaitCount:   5,
					WaitSumNS:   12345,
				},
			}},
		},
		{Name: "fig3/entries=4096", Metrics: map[string]float64{"mops_per_sec": 14.0}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Spin/gap counters must appear by their stable JSON names.
	for _, key := range []string{`"full_spins"`, `"gaps_created"`, `"gaps_skipped"`, `"wait_sum_ns"`, `"mops_per_sec"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing %s:\n%s", key, buf.String())
		}
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d records", len(out))
	}
	got := out[0]
	if got.Name != in[0].Name || !got.Timestamp.Equal(in[0].Timestamp) {
		t.Fatalf("identity fields mangled: %+v", got)
	}
	if got.Metrics["mops_per_sec"] != 12.5 {
		t.Fatalf("metrics mangled: %+v", got.Metrics)
	}
	q := got.Queues[0]
	if q.Name != "submission" || q.Capacity != 1024 || q.Enqueues != 1000 ||
		q.GapsCreated != 2 || q.WaitSumNS != 12345 {
		t.Fatalf("queue stats mangled: %+v", q)
	}
}
