// Package report formats experiment results as aligned text tables
// and CSV, the two output forms of every cmd tool in this module. A
// Table corresponds to one figure (or one panel of a figure) of the
// paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of results.
type Table struct {
	// Title names the table ("Figure 3: throughput vs queue size").
	Title string
	// Note is an optional free-form annotation printed under the title.
	Note string
	// Columns are header labels.
	Columns []string
	// Rows hold the cells, row-major; ragged rows are padded blank.
	Rows [][]string
}

// AddRow appends a row built from Sprint-formatted values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   %s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				// Left-align the first (label) column.
				b.WriteString(cell + strings.Repeat(" ", width-len(cell)))
			} else {
				b.WriteString(strings.Repeat(" ", width-len(cell)) + cell)
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if len(t.Columns) > 0 {
		if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
			return err
		}
		total := 0
		for _, width := range widths {
			total += width + 2
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if len(t.Columns) > 0 {
		if err := writeRow(t.Columns); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}
