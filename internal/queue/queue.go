// Package queue defines the uniform interface through which the
// comparative benchmark (the paper's Figure 8, built on the framework
// of Yang & Mellor-Crummey [21]) drives every queue implementation.
//
// All implementations move uint64 payloads. Queues that need
// thread-local state (wfqueue handles, ccqueue combining nodes) hand
// each worker goroutine its own view through Shared.Register; queues
// without per-thread state return themselves. Driving every queue
// through the same interface keeps the dynamic-dispatch overhead equal
// across implementations, which is what makes the comparison fair.
package queue

// Queue is a per-goroutine view of a concurrent FIFO queue.
type Queue interface {
	// Enqueue inserts v. Implementations may reserve sentinel values;
	// all queues in this module accept values in [1, 2^36-2], which the
	// benchmarks stay within.
	Enqueue(v uint64)
	// Dequeue removes the item at the head. ok=false means the queue
	// was observed empty; callers retry. Blocking implementations (the
	// FFQ family reserves a rank per dequeue and therefore cannot
	// abandon one) may block instead of returning false; under the
	// benchmark workloads every reserved rank is eventually filled.
	Dequeue() (v uint64, ok bool)
}

// Shared is a queue instance shared by all workers of a benchmark run.
type Shared interface {
	// Register returns the calling goroutine's view of the queue. It is
	// called exactly once per worker, before the measured phase.
	Register() Queue
}

// Factory constructs queue instances for benchmark runs.
type Factory struct {
	// Name identifies the implementation in reports ("ffq-mpmc",
	// "wfqueue", ...).
	Name string
	// Brief is a one-line description for report headers.
	Brief string
	// New builds a shared instance. capacity is a power of two; bounded
	// queues must hold at least capacity items, unbounded queues may
	// ignore it. nthreads is the number of workers that will Register.
	New func(capacity, nthreads int) Shared
	// Bounded reports whether the queue can refuse enqueues when full.
	Bounded bool
}

// SelfRegistering adapts a Queue with no per-thread state to Shared.
type SelfRegistering struct{ Q Queue }

// Register returns the underlying queue itself.
func (s SelfRegistering) Register() Queue { return s.Q }

// MaxValue is the largest payload every implementation in this module
// can carry (the LCRQ port packs values into 36 bits).
const MaxValue = 1<<36 - 2
