package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ffq/internal/broker/client"
)

// ReplicaGroupPrefix namespaces the consumer groups replication
// followers commit under on the owner: "__replica/<nodeID>". The
// owner's cursor store thereby doubles as the replication lag table —
// OFFSETS with this group reports how far a given replica has acked.
const ReplicaGroupPrefix = "__replica/"

// ReplicaGroup returns the follower cursor group for a node.
func ReplicaGroup(nodeID string) string { return ReplicaGroupPrefix + nodeID }

// LocalLog is the slice of a write-ahead log the follower needs:
// offsets are reproduced from the owner, never assigned locally.
// *wal.Log satisfies it.
type LocalLog interface {
	// NextOffset is where the local copy ends — the resume point.
	NextOffset() uint64
	// AppendAt appends a batch whose first message has the given
	// offset; it fails on any gap or overlap (wal.ErrOffsetGap).
	AppendAt(base uint64, payloads [][]byte) error
	// ResetTo discards the local copy and restarts the chain at base
	// (the owner's oldest retained offset after truncation).
	ResetTo(base uint64) error
}

// NodeOptions configures the follower manager.
type NodeOptions struct {
	// Config is the validated static cluster shape.
	Config *Config
	// OpenLog returns the local log for a partition this node
	// replicates (the broker's PartitionLog, adapted).
	OpenLog func(topic string, part uint32) (LocalLog, error)
	// Dial connects to a peer address. nil means client.Dial over TCP.
	Dial func(addr string) (*client.Client, error)
	// PollInterval is the topic-discovery period: how often peers'
	// METADATA is polled for partitioned topics this node should be
	// following. 0 means DefaultPollInterval.
	PollInterval time.Duration
	// Window is the follower's replay credit window in messages.
	// 0 means DefaultFollowWindow.
	Window int
	// Logf reports follower errors (reconnects, resyncs). nil means
	// silent.
	Logf func(format string, args ...any)
}

// Defaults for NodeOptions zero values.
const (
	DefaultPollInterval = 2 * time.Second
	DefaultFollowWindow = 1024
)

// Node is the replication side of a cluster member: it discovers
// partitioned topics by polling peers' METADATA, and for every
// partition this node replicates, runs a follower that strict-replays
// the owner's log into a local one.
//
// The follower is a plain wire client — CONSUME+FlagOffset with
// FlagStrict under the node's __replica/<id> group — so replication
// exercises exactly the path ordinary durable consumers use. Each
// received batch is AppendAt'ed to the local log at the owner's
// offsets and acked back as a cursor commit; a typed
// ErrOffsetTruncated from the owner (retention outran the replica)
// triggers ResetTo(oldest) and a fresh subscription. Followers
// reconnect with backoff for as long as the node runs: a dead owner
// just means the replica holds what it copied and retries.
type Node struct {
	opts NodeOptions

	stop chan struct{}
	wg   sync.WaitGroup

	mu        sync.Mutex
	stopped   bool
	followers map[topicPart]bool
	clients   map[*client.Client]bool
}

// topicPart keys one follower.
type topicPart struct {
	topic string
	part  uint32
}

// StartNode validates the options and starts the discovery loop.
func StartNode(opts NodeOptions) (*Node, error) {
	if opts.Config == nil {
		return nil, errors.New("cluster: node needs a config")
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.OpenLog == nil {
		return nil, errors.New("cluster: node needs an OpenLog hook")
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = DefaultPollInterval
	}
	if opts.Window <= 0 {
		opts.Window = DefaultFollowWindow
	}
	n := &Node{
		opts:      opts,
		stop:      make(chan struct{}),
		followers: map[topicPart]bool{},
		clients:   map[*client.Client]bool{},
	}
	n.wg.Add(1)
	go n.pollLoop()
	return n, nil
}

// Close stops discovery and every follower, then waits for them.
func (n *Node) Close() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	clients := make([]*client.Client, 0, len(n.clients))
	for c := range n.clients {
		clients = append(clients, c)
	}
	n.mu.Unlock()
	close(n.stop)
	// Closing the connections unblocks followers parked in Recv.
	for _, c := range clients {
		c.Close()
	}
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Logf != nil {
		n.opts.Logf(format, args...)
	}
}

// dial connects to a peer and tracks the client so Close can unblock
// its receiver.
func (n *Node) dial(addr string) (*client.Client, error) {
	var c *client.Client
	var err error
	if n.opts.Dial != nil {
		c, err = n.opts.Dial(addr)
	} else {
		c, err = client.Dial(addr, client.Options{})
	}
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		c.Close()
		return nil, errors.New("cluster: node closed")
	}
	n.clients[c] = true
	n.mu.Unlock()
	return c, nil
}

func (n *Node) release(c *client.Client) {
	c.Close()
	n.mu.Lock()
	delete(n.clients, c)
	n.mu.Unlock()
}

// pollLoop discovers partitioned topics: every peer's METADATA lists
// the topics it holds, and any partition of any of them that this
// node replicates gets a follower. Discovery is idempotent — a
// follower, once started, lives until Close.
func (n *Node) pollLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.PollInterval)
	defer t.Stop()
	for {
		n.pollOnce()
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
	}
}

func (n *Node) pollOnce() {
	cfg := n.opts.Config
	for _, p := range cfg.Peers {
		if p.ID == cfg.NodeID {
			continue
		}
		select {
		case <-n.stop:
			return
		default:
		}
		c, err := n.dial(p.Addr)
		if err != nil {
			continue // peer down; next poll retries
		}
		meta, err := c.Meta()
		n.release(c)
		if err != nil {
			continue
		}
		for _, topic := range meta.Topics {
			for part := uint32(0); part < cfg.Partitions; part++ {
				if cfg.Replicates(topic, part) {
					n.ensureFollower(topic, part)
				}
			}
		}
	}
}

// ensureFollower starts the follower for (topic, part) once.
func (n *Node) ensureFollower(topic string, part uint32) {
	key := topicPart{topic, part}
	n.mu.Lock()
	if n.stopped || n.followers[key] {
		n.mu.Unlock()
		return
	}
	n.followers[key] = true
	n.wg.Add(1)
	n.mu.Unlock()
	go n.runFollower(topic, part)
}

// runFollower keeps one partition's local copy in sync with its
// owner, reconnecting with capped backoff until Close.
func (n *Node) runFollower(topic string, part uint32) {
	defer n.wg.Done()
	owner := n.opts.Config.Owner(topic, part)
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		err := n.followOnce(topic, part, owner)
		select {
		case <-n.stop:
			return
		default:
		}
		if err != nil {
			n.logf("cluster: follower %s@%d (owner %s): %v", topic, part, owner.ID, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// followOnce runs one follower session: subscribe strictly at the
// local log's next offset, append every received batch at the owner's
// offsets, commit the follower cursor, and on a truncation error
// resync the local copy to the owner's oldest retained offset.
func (n *Node) followOnce(topic string, part uint32, owner Peer) error {
	log, err := n.opts.OpenLog(topic, part)
	if err != nil {
		return err
	}
	c, err := n.dial(owner.Addr)
	if err != nil {
		return err
	}
	defer n.release(c)
	from := log.NextOffset()
	sub, err := c.SubscribeFromPart(topic, part, n.opts.Window, from, ReplicaGroup(n.opts.Config.NodeID), true)
	if err != nil {
		return err
	}
	payloads := make([][]byte, 0, n.opts.Window)
	for {
		msgs, ok := sub.RecvMsgBatch(n.opts.Window)
		if !ok {
			err := c.Err()
			var trunc *client.ErrOffsetTruncated
			if errors.As(err, &trunc) {
				// The owner dropped offsets we have not copied yet; the
				// local chain cannot be continued, only restarted at the
				// owner's oldest live offset.
				if rerr := log.ResetTo(trunc.Oldest); rerr != nil {
					return rerr
				}
				n.logf("cluster: follower %s@%d resync to %d after truncation", topic, part, trunc.Oldest)
			}
			return err
		}
		base := msgs[0].Offset
		payloads = payloads[:0]
		for i, m := range msgs {
			if m.Offset != base+uint64(i) {
				return fmt.Errorf("cluster: replay stream gap at %d (batch base %d)", m.Offset, base)
			}
			payloads = append(payloads, m.Payload)
		}
		if err := log.AppendAt(base, payloads); err != nil {
			return err
		}
		// The commit is the replication ack: the owner's cursor table
		// records the first offset this replica does NOT yet hold.
		if err := sub.Commit(base + uint64(len(msgs))); err != nil {
			return err
		}
	}
}
