// Cluster node tests live in an external test package: they wire real
// brokers to replication Nodes, and internal/broker imports
// internal/cluster for placement, so "package cluster" here would be
// an import cycle.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"ffq/internal/broker"
	"ffq/internal/broker/client"
	"ffq/internal/cluster"
)

// testNode is one in-process cluster member: a durable broker serving
// loopback TCP plus its replication Node.
type testNode struct {
	id   string
	addr string
	cfg  *cluster.Config
	b    *broker.Broker
	node *cluster.Node
}

// startCluster brings up n brokers that agree on one peer list. The
// listeners come first — peer addresses must exist before any config —
// then each broker starts with its own data dir and a fast-polling
// replication Node.
func startCluster(t *testing.T, n int, partitions, replication uint32) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { ln.Close() })
		lns[i] = ln
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i+1), Addr: ln.Addr().String()}
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		cfg := &cluster.Config{
			NodeID:      peers[i].ID,
			Peers:       peers,
			Partitions:  partitions,
			Replication: replication,
		}
		b, err := broker.New(broker.Options{
			DataDir:      t.TempDir(),
			SegmentBytes: 4 << 10,
			Cluster:      cfg,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", cfg.NodeID, err)
		}
		//ffq:detached test broker serves until its listener closes at cleanup
		go b.Serve(lns[i])
		nd, err := cluster.StartNode(cluster.NodeOptions{
			Config: cfg,
			OpenLog: func(topic string, part uint32) (cluster.LocalLog, error) {
				return b.PartitionLog(topic, part)
			},
			PollInterval: 25 * time.Millisecond,
			Window:       64,
		})
		if err != nil {
			t.Fatalf("StartNode(%s): %v", cfg.NodeID, err)
		}
		t.Cleanup(func() {
			nd.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			b.Shutdown(ctx)
		})
		nodes[i] = &testNode{id: cfg.NodeID, addr: peers[i].Addr, cfg: cfg, b: b, node: nd}
	}
	return nodes
}

// byID finds a member by node id.
func byID(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	t.Fatalf("no node %s", id)
	return nil
}

// TestFollowerReplicatesPartitions is the subsystem's end-to-end check
// in-process: keyed publishes land on per-partition owners, and every
// replica's local WAL converges to a byte-identical copy at the
// owner's offsets, with the replica's cursor on the owner recording
// its progress.
func TestFollowerReplicatesPartitions(t *testing.T) {
	const (
		topic      = "orders"
		partitions = 4
		perPart    = 50
	)
	nodes := startCluster(t, 3, partitions, 2)
	cfg := nodes[0].cfg

	// One client per owner address, reused across partitions.
	clients := map[string]*client.Client{}
	t.Cleanup(func() {
		for _, c := range clients {
			c.Close()
		}
	})
	dial := func(addr string) *client.Client {
		if c := clients[addr]; c != nil {
			return c
		}
		c, err := client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		clients[addr] = c
		return c
	}

	want := map[uint32][]string{}
	for part := uint32(0); part < partitions; part++ {
		c := dial(cfg.Owner(topic, part).Addr)
		for seq := 0; seq < perPart; seq++ {
			msg := fmt.Sprintf("p%d-%d", part, seq)
			if err := c.PublishPart(topic, part, []byte(msg)); err != nil {
				t.Fatalf("publish %s@%d: %v", topic, part, err)
			}
			want[part] = append(want[part], msg)
		}
	}
	for _, c := range clients {
		if err := c.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}

	// Every partition has exactly one replica under replication=2; wait
	// for each replica log to reach the owner's next offset.
	deadline := time.Now().Add(15 * time.Second)
	for part := uint32(0); part < partitions; part++ {
		placed := cfg.Assign(topic, part)[:2]
		owner, replica := byID(t, nodes, placed[0].ID), byID(t, nodes, placed[1].ID)
		ownerLog, err := owner.b.PartitionLog(topic, part)
		if err != nil {
			t.Fatalf("owner log %d: %v", part, err)
		}
		if got := ownerLog.NextOffset(); got != perPart {
			t.Fatalf("owner %s@%d next offset = %d, want %d", topic, part, got, perPart)
		}
		for {
			replLog, err := replica.b.PartitionLog(topic, part)
			if err == nil && replLog.NextOffset() >= perPart {
				break
			}
			if time.Now().After(deadline) {
				next := uint64(0)
				if err == nil {
					next = replLog.NextOffset()
				}
				t.Fatalf("replica %s of %s@%d stuck at offset %d (open err %v)", replica.id, topic, part, next, err)
			}
			time.Sleep(10 * time.Millisecond)
		}

		// Byte-identical copy at the owner's offsets.
		replLog, err := replica.b.PartitionLog(topic, part)
		if err != nil {
			t.Fatalf("replica log %d: %v", part, err)
		}
		r := replLog.NewReader(0)
		off := 0
		for off < perPart {
			base, msgs, err := r.Next(perPart)
			if err != nil {
				t.Fatalf("replica read %s@%d: %v", topic, part, err)
			}
			if len(msgs) == 0 {
				t.Fatalf("replica read %s@%d: caught up at %d of %d", topic, part, base, perPart)
			}
			if base != uint64(off) {
				t.Fatalf("replica read %s@%d: base %d, want %d", topic, part, base, off)
			}
			for i, m := range msgs {
				if string(m) != want[part][off+i] {
					t.Fatalf("replica %s@%d offset %d = %q, want %q", topic, part, off+i, m, want[part][off+i])
				}
			}
			off += len(msgs)
		}
		r.Close()

		// The follower's commit is its replication ack: the owner's
		// cursor for __replica/<id> converges to the log end.
		oc := dial(owner.addr)
		for {
			_, _, cursor, err := oc.OffsetsPart(topic, part, cluster.ReplicaGroup(replica.id))
			if err != nil {
				t.Fatalf("offsets %s@%d: %v", topic, part, err)
			}
			if cursor == perPart {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica cursor for %s@%d stuck at %d, want %d", topic, part, cursor, perPart)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestProduceToNonOwnerRejected checks ownership enforcement end to
// end: a partitioned PRODUCE at a node that merely replicates (or
// doesn't hold) the partition must fail the connection with the typed
// not-owner error, so a misrouted producer learns its map is stale
// instead of forking the log.
func TestProduceToNonOwnerRejected(t *testing.T) {
	const topic = "orders"
	nodes := startCluster(t, 3, 4, 2)
	cfg := nodes[0].cfg

	owner := cfg.Owner(topic, 0)
	var wrong *testNode
	for _, n := range nodes {
		if n.id != owner.ID {
			wrong = n
			break
		}
	}

	c, err := client.Dial(wrong.addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.PublishPart(topic, 0, []byte("misrouted")); err != nil {
		t.Fatalf("buffered publish: %v", err)
	}
	err = c.Flush()
	if err == nil {
		// The error can surface on the next read; wait for the broker
		// to cut the connection.
		deadline := time.Now().Add(5 * time.Second)
		for err == nil && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			err = c.Err()
		}
	}
	var notOwner *client.ErrNotOwner
	if !errors.As(err, &notOwner) {
		t.Fatalf("produce at non-owner: err = %v, want ErrNotOwner", err)
	}
	if notOwner.Part != 0 {
		t.Fatalf("ErrNotOwner.Part = %d, want 0", notOwner.Part)
	}
}

// TestOutOfRangePartitionRejected checks the fail-closed bound: a
// partition index at or past the configured count is a typed
// bad-partition error carrying the count.
func TestOutOfRangePartitionRejected(t *testing.T) {
	nodes := startCluster(t, 3, 4, 2)

	c, err := client.Dial(nodes[0].addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.PublishPart("orders", 4, []byte("out of range")); err != nil {
		t.Fatalf("buffered publish: %v", err)
	}
	err = c.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for err == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		err = c.Err()
	}
	if err == nil {
		t.Fatalf("produce with partition 4 of 4 succeeded")
	}
}
