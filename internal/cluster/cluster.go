// Package cluster is ffqd's partition-addressed layer: a static node
// list, a fixed per-topic partition count, and a deterministic map
// from (topic, partition) to an owner plus R−1 replicas.
//
// # Partitioning
//
// A partitioned topic is N independent (topic, partition) streams,
// each backed by one broker lane group and its own WAL. Producers
// route a message by key: FNV-1a (64-bit) over the key, modulo the
// partition count. The hash is computed client-side and only the
// resulting partition id travels on the wire, so every client
// implementation that follows this definition routes a key to the
// same partition — per-key FIFO holds within a partition with a
// single producer per key, never across partitions.
//
// # Placement: rendezvous hashing
//
// Each (topic, partition) is placed by highest-random-weight
// (rendezvous) hashing: every node is scored with
// FNV-1a(nodeID ‖ 0x00 ‖ topic ‖ 0x00 ‖ partition), nodes sort by
// descending score, the first is the owner and the next R−1 are
// replicas. Rendezvous placement needs no coordination or stored
// assignment table — any party with the node list computes the same
// map — and removing one node reassigns only that node's partitions.
//
// # Replication
//
// Replication is asynchronous log following (see Node in node.go): a
// replica subscribes to the owner's partition WAL over the ordinary
// strict CONSUME+FlagOffset wire path, copies records into a local
// WAL at the same offsets, and commits its progress as a follower
// cursor on the owner. There is no consensus machinery: acked
// messages are on the owner's log, replicas trail by their lag, and
// failover is an operator decision, not an automatic election.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Validation errors, wrapped with detail by Config.Validate.
var (
	ErrNoNodeID         = errors.New("cluster: node id is empty")
	ErrUnknownNodeID    = errors.New("cluster: node id is not in the peer list")
	ErrNoPeers          = errors.New("cluster: peer list is empty")
	ErrDuplicatePeer    = errors.New("cluster: duplicate peer id or address")
	ErrBadPartitions    = errors.New("cluster: partition count must be at least 1")
	ErrBadReplication   = errors.New("cluster: replication factor must be between 1 and the node count")
	ErrBadPeerSyntax    = errors.New("cluster: peer must be id=host:port")
	ErrReservedPeerName = errors.New("cluster: peer id may not contain '=', ',' or whitespace")
)

// Peer is one static cluster member.
type Peer struct {
	ID   string
	Addr string
}

// Config is the static cluster shape every node and client agrees on.
type Config struct {
	// NodeID names this node; it must appear in Peers.
	NodeID string
	// Peers is the full member list, including this node.
	Peers []Peer
	// Partitions is the per-topic partition count.
	Partitions uint32
	// Replication is the number of nodes holding each partition: one
	// owner plus Replication−1 followers.
	Replication uint32
}

// ParsePeers parses the -peers flag syntax: comma-separated
// `id=host:port` entries.
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, addr, ok := strings.Cut(ent, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadPeerSyntax, ent)
		}
		if strings.ContainsAny(id, "=, \t") {
			return nil, fmt.Errorf("%w: %q", ErrReservedPeerName, id)
		}
		peers = append(peers, Peer{ID: id, Addr: addr})
	}
	if len(peers) == 0 {
		return nil, ErrNoPeers
	}
	return peers, nil
}

// Validate checks the config for internal consistency and returns a
// typed error (one of the Err* sentinels, wrapped) on the first
// violation.
func (c *Config) Validate() error {
	if c.NodeID == "" {
		return ErrNoNodeID
	}
	if len(c.Peers) == 0 {
		return ErrNoPeers
	}
	ids := make(map[string]bool, len(c.Peers))
	addrs := make(map[string]bool, len(c.Peers))
	self := false
	for _, p := range c.Peers {
		if p.ID == "" || p.Addr == "" {
			return fmt.Errorf("%w: %q=%q", ErrBadPeerSyntax, p.ID, p.Addr)
		}
		if ids[p.ID] || addrs[p.Addr] {
			return fmt.Errorf("%w: %q=%q", ErrDuplicatePeer, p.ID, p.Addr)
		}
		ids[p.ID] = true
		addrs[p.Addr] = true
		if p.ID == c.NodeID {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("%w: %q", ErrUnknownNodeID, c.NodeID)
	}
	if c.Partitions < 1 {
		return fmt.Errorf("%w: %d", ErrBadPartitions, c.Partitions)
	}
	if c.Replication < 1 || int(c.Replication) > len(c.Peers) {
		return fmt.Errorf("%w: %d of %d nodes", ErrBadReplication, c.Replication, len(c.Peers))
	}
	return nil
}

// Self returns this node's Peer entry. Valid only after Validate.
func (c *Config) Self() Peer {
	for _, p := range c.Peers {
		if p.ID == c.NodeID {
			return p
		}
	}
	return Peer{}
}

// PeerByID returns the named peer.
func (c *Config) PeerByID(id string) (Peer, bool) {
	for _, p := range c.Peers {
		if p.ID == id {
			return p, true
		}
	}
	return Peer{}, false
}

// FNV-1a 64-bit parameters; the routing and placement hash is pinned
// to this exact algorithm so independent implementations agree.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a folds b into a running FNV-1a 64-bit hash.
func fnv1a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// PartitionForKey routes a message key to a partition: FNV-1a 64-bit
// over the key, modulo the partition count. A nil/empty key hashes
// like any other byte string (constant), so keyless traffic should
// pick a partition by other means (see client.go's round-robin).
func PartitionForKey(key []byte, partitions uint32) uint32 {
	return uint32(fnv1a(fnvOffset64, key) % uint64(partitions))
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection over
// uint64. Raw FNV-1a is not avalanching — two ids differing in one
// trailing byte produce hashes differing by a tiny multiple of the
// FNV prime, so their rank order would be decided by a couple of low
// bits and barely move across partitions. The finalizer spreads every
// input bit over the whole word, which is what rendezvous ranking
// actually needs.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// score is the rendezvous weight of node id for (topic, part):
// mix64(FNV-1a(topic ‖ 0x00 ‖ partition-be32 ‖ id)). The 0x00
// separator keeps topic/id concatenation from aliasing. Pinned — any
// party recomputing the partition map must use exactly this function.
func score(id, topic string, part uint32) uint64 {
	h := fnv1a(fnvOffset64, []byte(topic))
	h = fnv1a(h, []byte{0, byte(part >> 24), byte(part >> 16), byte(part >> 8), byte(part)})
	return mix64(fnv1a(h, []byte(id)))
}

// Assign returns the nodes holding (topic, part) in rank order: the
// owner first, then the Replication−1 followers. Deterministic in the
// config alone — every node and client computes the same assignment.
func (c *Config) Assign(topic string, part uint32) []Peer {
	ranked := make([]Peer, len(c.Peers))
	copy(ranked, c.Peers)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := score(ranked[i].ID, topic, part), score(ranked[j].ID, topic, part)
		if si != sj {
			return si > sj
		}
		return ranked[i].ID < ranked[j].ID // total order even on score ties
	})
	n := int(c.Replication)
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

// Owner returns the node owning (topic, part).
func (c *Config) Owner(topic string, part uint32) Peer {
	return c.Assign(topic, part)[0]
}

// Owns reports whether this node owns (topic, part).
func (c *Config) Owns(topic string, part uint32) bool {
	return c.Owner(topic, part).ID == c.NodeID
}

// Replicates reports whether this node holds (topic, part) as a
// non-owner follower.
func (c *Config) Replicates(topic string, part uint32) bool {
	for i, p := range c.Assign(topic, part) {
		if p.ID == c.NodeID {
			return i > 0
		}
	}
	return false
}

// Holds reports whether this node holds (topic, part) at all (owner
// or follower).
func (c *Config) Holds(topic string, part uint32) bool {
	for _, p := range c.Assign(topic, part) {
		if p.ID == c.NodeID {
			return true
		}
	}
	return false
}
