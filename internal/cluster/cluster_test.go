package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"
)

func testConfig(nodes, partitions, replication int) *Config {
	c := &Config{
		NodeID:      "n1",
		Partitions:  uint32(partitions),
		Replication: uint32(replication),
	}
	for i := 1; i <= nodes; i++ {
		c.Peers = append(c.Peers, Peer{
			ID:   fmt.Sprintf("n%d", i),
			Addr: fmt.Sprintf("127.0.0.1:%d", 7076+i),
		})
	}
	return c
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n1=127.0.0.1:7077, n2=127.0.0.1:7078,n3=host:7079,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{
		{ID: "n1", Addr: "127.0.0.1:7077"},
		{ID: "n2", Addr: "127.0.0.1:7078"},
		{ID: "n3", Addr: "host:7079"},
	}
	if len(peers) != len(want) {
		t.Fatalf("got %d peers", len(peers))
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peer %d: %+v want %+v", i, peers[i], want[i])
		}
	}
	for _, bad := range []string{"", "n1", "=addr", "n1=", "n 1=addr"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) passed", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(3, 8, 2).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
		want error
	}{
		{"empty-node-id", func(c *Config) { c.NodeID = "" }, ErrNoNodeID},
		{"unknown-node-id", func(c *Config) { c.NodeID = "ghost" }, ErrUnknownNodeID},
		{"no-peers", func(c *Config) { c.Peers = nil }, ErrNoPeers},
		{"dup-id", func(c *Config) { c.Peers[1].ID = "n1" }, ErrDuplicatePeer},
		{"dup-addr", func(c *Config) { c.Peers[1].Addr = c.Peers[0].Addr }, ErrDuplicatePeer},
		{"zero-partitions", func(c *Config) { c.Partitions = 0 }, ErrBadPartitions},
		{"zero-replication", func(c *Config) { c.Replication = 0 }, ErrBadReplication},
		{"replication-over-nodes", func(c *Config) { c.Replication = 4 }, ErrBadReplication},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testConfig(3, 8, 2)
			tc.mut(c)
			if err := c.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestPartitionForKeyIsFNV1a pins the routing hash to standard FNV-1a
// 64: any client that implements the documented algorithm routes keys
// identically.
func TestPartitionForKeyIsFNV1a(t *testing.T) {
	keys := [][]byte{nil, {}, []byte("a"), []byte("order-12345"), []byte{0, 1, 2, 255}}
	for _, k := range keys {
		h := fnv.New64a()
		h.Write(k)
		want := uint32(h.Sum64() % 8)
		if got := PartitionForKey(k, 8); got != want {
			t.Fatalf("key %q: partition %d, want %d", k, got, want)
		}
	}
	// Keys spread: 1000 distinct keys over 8 partitions must hit all 8.
	seen := make(map[uint32]int)
	for i := 0; i < 1000; i++ {
		seen[PartitionForKey([]byte(fmt.Sprintf("key-%d", i)), 8)]++
	}
	if len(seen) != 8 {
		t.Fatalf("1000 keys hit only %d of 8 partitions: %v", len(seen), seen)
	}
}

// TestRendezvousAssign checks the placement properties: determinism,
// distinct replicas, owner spread across nodes, and minimal
// disruption when a node is removed.
func TestRendezvousAssign(t *testing.T) {
	c := testConfig(3, 8, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	owners := make(map[string]int)
	for part := uint32(0); part < 8; part++ {
		a := c.Assign("orders", part)
		if len(a) != 2 {
			t.Fatalf("part %d: %d assignees", part, len(a))
		}
		if a[0].ID == a[1].ID {
			t.Fatalf("part %d: owner repeated as replica", part)
		}
		// Deterministic across calls and consistent with the views.
		b := c.Assign("orders", part)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("part %d: assignment not deterministic", part)
		}
		if c.Owner("orders", part) != a[0] {
			t.Fatalf("part %d: Owner disagrees with Assign", part)
		}
		owners[a[0].ID]++

		// Every peer agrees on the full map.
		for _, peer := range c.Peers {
			view := &Config{NodeID: peer.ID, Peers: c.Peers, Partitions: c.Partitions, Replication: c.Replication}
			va := view.Assign("orders", part)
			if va[0] != a[0] || va[1] != a[1] {
				t.Fatalf("part %d: node %s computes a different assignment", part, peer.ID)
			}
			holds := peer.ID == a[0].ID || peer.ID == a[1].ID
			if view.Holds("orders", part) != holds {
				t.Fatalf("part %d: Holds wrong on %s", part, peer.ID)
			}
			if view.Owns("orders", part) != (peer.ID == a[0].ID) {
				t.Fatalf("part %d: Owns wrong on %s", part, peer.ID)
			}
			if view.Replicates("orders", part) != (peer.ID == a[1].ID) {
				t.Fatalf("part %d: Replicates wrong on %s", part, peer.ID)
			}
		}
	}
	// 8 partitions over 3 nodes: no node may own everything, and with a
	// sane hash every node owns something. (Deterministic, not flaky.)
	if len(owners) < 2 {
		t.Fatalf("ownership collapsed onto %v", owners)
	}

	// Removing n3 must not move any partition whose assignment didn't
	// involve n3 — rendezvous minimal disruption.
	two := &Config{NodeID: "n1", Peers: c.Peers[:2], Partitions: 8, Replication: 2}
	for part := uint32(0); part < 8; part++ {
		before := c.Assign("orders", part)
		after := two.Assign("orders", part)
		if before[0].ID != "n3" && after[0] != before[0] {
			t.Fatalf("part %d: owner moved from %s to %s without n3 involved", part, before[0].ID, after[0].ID)
		}
	}

	// Different topics shuffle placement independently.
	same := true
	for part := uint32(0); part < 8; part++ {
		if c.Owner("orders", part) != c.Owner("audit", part) {
			same = false
		}
	}
	if same {
		t.Fatal("placement identical across topics; topic not hashed")
	}
}
