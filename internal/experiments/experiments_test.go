package experiments

import (
	"strings"
	"testing"

	"ffq/internal/affinity"
	"ffq/internal/workload"
)

// micro returns per-test options small enough for CI.
func micro() Options {
	return Options{
		Runs:       1,
		Scale:      0.002,
		MaxThreads: 2,
		MinSizeExp: 6,
		MaxSizeExp: 8,
		Topology:   affinity.Synthetic(4, 2),
	}
}

func TestFig2Shape(t *testing.T) {
	tbl, err := Fig2(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 configurations", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 5 {
			t.Fatalf("row %v has %d cells", row, len(row))
		}
		if row[1] != "1.0000" { // normalized baseline
			t.Fatalf("baseline cell = %q", row[1])
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tbl, err := Fig3(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // 2^6..2^8
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Columns[0] != "entries" {
		t.Fatalf("columns = %v", tbl.Columns)
	}
}

func TestFig4Fig5Shape(t *testing.T) {
	o := micro()
	t4, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	t5, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 3 * len(affinity.Policies)
	if len(t4.Rows) != wantRows || len(t5.Rows) != wantRows {
		t.Fatalf("rows = %d/%d, want %d", len(t4.Rows), len(t5.Rows), wantRows)
	}
	if !strings.Contains(t4.Note, "substitution") || !strings.Contains(t5.Note, "substitution") {
		t.Error("simulated figures must disclose the substitution")
	}
}

func TestFig6Shape(t *testing.T) {
	tbl, err := Fig6(micro(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if len(tbl.Columns) != 5 {
		t.Fatalf("columns = %v", tbl.Columns)
	}
}

func TestFig7Shapes(t *testing.T) {
	o := micro()
	thr, err := Fig7Throughput(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(thr.Rows) != o.MaxThreads {
		t.Fatalf("throughput rows = %d", len(thr.Rows))
	}
	lat, err := Fig7Latency(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) != 3 {
		t.Fatalf("latency rows = %d", len(lat.Rows))
	}
}

func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 8 {
		t.Fatalf("rows = %d, want one per registry queue", len(tbl.Rows))
	}
	// Single-thread-only variants must be dashed out beyond t=1.
	foundDash := false
	for _, row := range tbl.Rows {
		if row[0] == "ffq-spsc" && len(row) > 2 && row[2] == "-" {
			foundDash = true
		}
	}
	if !foundDash {
		t.Error("spsc mark not restricted to one thread")
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	tables, err := All(micro(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 9 { // figures 2-8 (7 is two panels) + SPSC lineage
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tbl := range tables {
		if tbl.Title == "" || len(tbl.Rows) == 0 {
			t.Errorf("empty table %q", tbl.Title)
		}
	}
}

func TestDefaultAndQuickOptions(t *testing.T) {
	d := DefaultOptions()
	if d.Runs != 10 || d.Scale != 1.0 {
		t.Errorf("default options %+v", d)
	}
	q := QuickOptions()
	if q.Scale >= d.Scale {
		t.Errorf("quick options not smaller: %+v", q)
	}
	var o Options
	o.fill()
	if o.Runs < 1 || o.MaxThreads < 1 || o.Topology == nil {
		t.Errorf("fill left zeroes: %+v", o)
	}
}

func TestPairsLatencyShape(t *testing.T) {
	tbl, err := PairsLatency(micro(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if len(tbl.Columns) != 5 {
		t.Fatalf("columns = %v", tbl.Columns)
	}
}

func TestStatsSweep(t *testing.T) {
	o := QuickOptions()
	o.Runs = 1
	o.MinSizeExp = 6
	o.MaxSizeExp = 7
	recs, err := StatsSweep(o, workload.VariantSPMC, 1, 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if len(r.Queues) != 1 || r.Queues[0].Name != "submission" {
			t.Fatalf("record %q has no submission queue stats: %+v", r.Name, r.Queues)
		}
		if r.Queues[0].Enqueues == 0 || r.Queues[0].Dequeues == 0 {
			t.Fatalf("record %q has zero op counters: %+v", r.Name, r.Queues[0].Stats)
		}
		if r.Metrics["mops_per_sec_mean"] <= 0 {
			t.Fatalf("record %q has no throughput metric", r.Name)
		}
	}
}

// TestStatsSweepLatency: latency mode adds the sojourn and per-op
// percentile metrics to every record, and a plain sweep carries none
// of them.
func TestStatsSweepLatency(t *testing.T) {
	o := QuickOptions()
	o.Runs = 1
	o.MinSizeExp = 6
	o.MaxSizeExp = 6
	recs, err := StatsSweep(o, workload.VariantSPMC, 1, 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	for _, key := range []string{
		"sojourn_p50_ns", "sojourn_p999_ns", "sojourn_max_ns", "sojourn_count",
		"enq_p99_ns", "deq_p99_ns", "enq_mean_ns", "deq_mean_ns",
	} {
		if r.Metrics[key] <= 0 {
			t.Errorf("latency metric %q missing or zero: %v", key, r.Metrics)
		}
	}
	if r.Metrics["sojourn_p50_ns"] > r.Metrics["sojourn_p999_ns"] {
		t.Errorf("inverted sojourn percentiles: %v", r.Metrics)
	}
	if r.Params["measure_latency"] != true {
		t.Errorf("measure_latency param missing: %v", r.Params)
	}

	plain, err := StatsSweep(o, workload.VariantSPMC, 1, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain[0].Metrics["sojourn_p50_ns"]; ok {
		t.Error("plain sweep leaked latency metrics")
	}
}

// TestStatsSweepUnboundedBatch: the unbounded variant sweeps with a
// batch size and the records carry segment counters and the batch
// histogram.
func TestStatsSweepUnboundedBatch(t *testing.T) {
	o := QuickOptions()
	o.Runs = 1
	o.MinSizeExp = 6
	o.MaxSizeExp = 6
	recs, err := StatsSweep(o, workload.VariantUnbounded, 1, 2, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Params["batch"] != 8 {
		t.Fatalf("batch param missing: %+v", r.Params)
	}
	if !strings.Contains(r.Name, "/batch=8") {
		t.Fatalf("record name %q lacks batch suffix", r.Name)
	}
	qs := r.Queues[0]
	if qs.SegsAllocated == 0 || qs.BatchCount == 0 || qs.BatchSumItems == 0 {
		t.Fatalf("segment/batch counters missing: %+v", qs.Stats)
	}
}

// TestStatsSweepSharded: the sharded variant sweeps the producer-count
// axis on one shared queue and the records carry the lane layout.
func TestStatsSweepSharded(t *testing.T) {
	o := QuickOptions()
	o.Runs = 1
	o.MinSizeExp = 6
	o.MaxSizeExp = 6
	recs, err := StatsSweep(o, workload.VariantSharded, 3, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if !strings.Contains(r.Name, "/p=3") {
		t.Fatalf("record name %q lacks producer suffix", r.Name)
	}
	if r.Params["producers"] != 3 || r.Params["lanes"] != 4 || r.Params["lane_depth"] != 64 {
		t.Fatalf("lane params missing: %+v", r.Params)
	}
	if r.Metrics["mops_per_sec_mean"] <= 0 {
		t.Fatalf("record %q has no throughput metric", r.Name)
	}
	if r.Queues[0].Dequeues == 0 {
		t.Fatalf("record %q has zero dequeues: %+v", r.Name, r.Queues[0].Stats)
	}
}

// TestShardedVsMPMC: the fan-in comparison emits one record per
// variant and the sharded record carries the speedup ratio.
func TestShardedVsMPMC(t *testing.T) {
	o := QuickOptions()
	o.Runs = 1
	recs, err := ShardedVsMPMC(o, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if !strings.Contains(recs[0].Name, "fanin/mpmc") || !strings.Contains(recs[1].Name, "fanin/sharded") {
		t.Fatalf("unexpected record names %q, %q", recs[0].Name, recs[1].Name)
	}
	for _, r := range recs {
		if r.Metrics["mops_per_sec_mean"] <= 0 {
			t.Fatalf("record %q has no throughput metric", r.Name)
		}
		if r.Queues[0].Dequeues == 0 {
			t.Fatalf("record %q has zero dequeues: %+v", r.Name, r.Queues[0].Stats)
		}
	}
	sharded := recs[1]
	if sharded.Metrics["speedup_vs_mpmc"] <= 0 {
		t.Fatalf("sharded record lacks speedup metric: %+v", sharded.Metrics)
	}
	if sharded.Params["lanes"] != 3 || sharded.Params["lane_depth"] != 1<<12 {
		t.Fatalf("sharded record lacks lane params: %+v", sharded.Params)
	}
}
