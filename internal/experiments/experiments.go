// Package experiments regenerates every figure of the paper's
// evaluation (Figures 2-8; the paper has no numbered tables). Each
// FigN function runs the corresponding experiment at a configurable
// scale and returns a report.Table whose rows are the figure's data
// series. The cmd/ tools and the repository-level benchmarks are thin
// wrappers around this package; EXPERIMENTS.md records one full-scale
// output of each function next to the paper's reported shape.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"ffq/internal/affinity"
	"ffq/internal/allqueues"
	"ffq/internal/cachesim"
	"ffq/internal/core"
	"ffq/internal/enclave"
	"ffq/internal/harness"
	"ffq/internal/obs"
	"ffq/internal/perfmodel"
	"ffq/internal/report"
	"ffq/internal/spscqueues"
	"ffq/internal/syscalls"
	"ffq/internal/workload"
)

// Options scales and parameterizes the experiment suite.
type Options struct {
	// Runs is the repetition count per data point (the paper uses 10).
	Runs int
	// Scale multiplies all item counts; 1.0 approximates the paper's
	// volumes, tests use ~0.01.
	Scale float64
	// MaxThreads caps sweep width (0 = 2x NumCPU).
	MaxThreads int
	// MinSizeExp/MaxSizeExp bound the queue-size sweeps (Figures 3-6)
	// as exponents of two.
	MinSizeExp, MaxSizeExp int
	// Topology for affinity placement (Detect() when nil).
	Topology *affinity.Topology
	// Cache selects the simulated hierarchy for Figures 4-5 (Skylake
	// when nil); see cachesim.ServerConfig.
	Cache *cachesim.Config
}

// DefaultOptions matches the paper's methodology at full scale.
func DefaultOptions() Options {
	return Options{
		Runs:       10,
		Scale:      1.0,
		MinSizeExp: 6,
		MaxSizeExp: 20,
	}
}

// QuickOptions is a CI-sized configuration (every experiment in
// seconds, shapes still visible).
func QuickOptions() Options {
	return Options{
		Runs:       2,
		Scale:      0.02,
		MinSizeExp: 6,
		MaxSizeExp: 14,
	}
}

func (o *Options) fill() {
	if o.Runs < 1 {
		o.Runs = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.MaxThreads == 0 {
		o.MaxThreads = runtime.NumCPU()
	}
	if o.MinSizeExp == 0 {
		o.MinSizeExp = 6
	}
	if o.MaxSizeExp == 0 {
		o.MaxSizeExp = 20
	}
	if o.Topology == nil {
		o.Topology = affinity.Detect()
	}
}

// Fig2 reproduces the false-sharing study: FFQ^m throughput under the
// four cell layouts for 1p/1c, 1p/8c and 8p/8c-per-producer,
// normalized to the not-aligned layout (Figure 2).
func Fig2(o Options) (*report.Table, error) {
	o.fill()
	items := harness.ScaleInt(500_000, o.Scale, 2000)
	t := &report.Table{
		Title:   "Figure 2: impact of alignment and randomization (MPMC variant, normalized to not-aligned)",
		Note:    fmt.Sprintf("runs=%d items/producer=%d", o.Runs, items),
		Columns: []string{"config", "not-aligned", "aligned", "randomized", "both"},
	}
	cases := []struct {
		name                 string
		producers, consumers int
	}{
		{"1 prod / 1 cons", 1, 1},
		{"1 prod / 8 cons", 1, 8},
		{"8 prod / 8 cons each", 8, 8},
	}
	for _, c := range cases {
		var mops [4]float64
		for i, layout := range core.Layouts {
			sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
				res, err := workload.RunMicro(workload.MicroConfig{
					Variant:              workload.VariantMPMC,
					Layout:               layout,
					Producers:            c.producers,
					ConsumersPerProducer: c.consumers,
					ItemsPerProducer:     items,
					QueueSize:            1 << 10,
					Policy:               affinity.NoAffinity,
					Topology:             o.Topology,
				})
				if err != nil {
					return 0, err
				}
				return res.MopsPerSec(), nil
			})
			if err != nil {
				return nil, err
			}
			mops[i] = sum.Mean
		}
		base := mops[0]
		if base == 0 {
			base = 1
		}
		t.AddRow(c.name, 1.0, mops[1]/base, mops[2]/base, mops[3]/base)
	}
	return t, nil
}

// Fig3 reproduces the queue-size sweep: single-producer/single-consumer
// FFQ throughput as a function of queue size (Figure 3).
func Fig3(o Options) (*report.Table, error) {
	o.fill()
	items := harness.ScaleInt(2_000_000, o.Scale, 5000)
	t := &report.Table{
		Title:   "Figure 3: throughput vs queue size (SPMC queue, 1 producer / 1 consumer)",
		Note:    fmt.Sprintf("runs=%d items=%d layout=aligned", o.Runs, items),
		Columns: []string{"entries", "Mops/s", "sd"},
	}
	for _, size := range harness.PowersOfTwo(o.MinSizeExp, o.MaxSizeExp) {
		size := size
		sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
			res, err := workload.RunMicro(workload.MicroConfig{
				Variant:              workload.VariantSPMC,
				Layout:               core.LayoutPadded,
				Producers:            1,
				ConsumersPerProducer: 1,
				ItemsPerProducer:     items,
				QueueSize:            size,
				Policy:               affinity.NoAffinity,
				Topology:             o.Topology,
			})
			if err != nil {
				return 0, err
			}
			return res.MopsPerSec(), nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(size, sum.Mean, sum.Stddev)
	}
	return t, nil
}

// simSweep runs the perfmodel for every (size, policy) pair.
func simSweep(o Options, f func(t *report.Table, size int, policy affinity.Policy, r perfmodel.Result)) (*report.Table, error) {
	o.fill()
	items := harness.ScaleInt(400_000, o.Scale, 20_000)
	t := &report.Table{}
	for _, size := range harness.PowersOfTwo(o.MinSizeExp, o.MaxSizeExp) {
		for _, policy := range affinity.Policies {
			cfg := perfmodel.DefaultConfig()
			cfg.QueueEntries = size
			cfg.Items = items
			cfg.Policy = policy
			if o.Cache != nil {
				cfg.Cache = *o.Cache
				if cfg.Cache.LineSize > cfg.CellBytes {
					cfg.CellBytes = cfg.Cache.LineSize // one aligned cell per line
				}
			}
			res, err := perfmodel.Run(cfg)
			if err != nil {
				return nil, err
			}
			f(t, size, policy, res)
		}
	}
	return t, nil
}

// Fig4 reproduces the IPC and L2-hit-ratio panels of Figure 4 from the
// cache simulation (substitution #3: simulated counters, not PCM).
func Fig4(o Options) (*report.Table, error) {
	t, err := simSweep(o, func(t *report.Table, size int, policy affinity.Policy, r perfmodel.Result) {
		t.AddRow(size, policy.String(), r.IPC, r.L2HitRatio, r.ThroughputMops)
	})
	if err != nil {
		return nil, err
	}
	t.Title = "Figure 4 (simulated): IPC and L2 hit ratio vs queue size per affinity policy"
	t.Note = "counters from the cachesim hierarchy, not hardware PCM (DESIGN.md substitution #3)"
	t.Columns = []string{"entries", "policy", "IPC", "L2-hit", "Mops/s"}
	return t, nil
}

// Fig5 reproduces the L3-hit-ratio / L3-miss / memory-bandwidth panels
// of Figure 5 from the cache simulation.
func Fig5(o Options) (*report.Table, error) {
	t, err := simSweep(o, func(t *report.Table, size int, policy affinity.Policy, r perfmodel.Result) {
		t.AddRow(size, policy.String(), r.L3HitRatio, int(r.L3Misses), r.MemBandwidthGBs)
	})
	if err != nil {
		return nil, err
	}
	t.Title = "Figure 5 (simulated): L3 hit ratio, L3 misses, memory bandwidth vs queue size"
	t.Note = "counters from the cachesim hierarchy, not hardware PCM (DESIGN.md substitution #3)"
	t.Columns = []string{"entries", "policy", "L3-hit", "L3-misses", "mem-GB/s"}
	return t, nil
}

// Fig6 reproduces the throughput-vs-queue-size-and-affinity study on
// the real queues with real thread pinning (Figure 6).
func Fig6(o Options, pairs int) (*report.Table, error) {
	o.fill()
	if pairs < 1 {
		pairs = 1
	}
	items := harness.ScaleInt(1_000_000, o.Scale, 5000)
	t := &report.Table{
		Title: fmt.Sprintf("Figure 6: throughput vs queue size and affinity (%d producer/consumer pair(s))", pairs),
		Note: fmt.Sprintf("runs=%d items/producer=%d pinning-supported=%v",
			o.Runs, items, affinity.Supported()),
		Columns: []string{"entries", "sibling-HT", "same-HT", "other-core", "no-affinity"},
	}
	for _, size := range harness.PowersOfTwo(o.MinSizeExp, o.MaxSizeExp) {
		row := []any{size}
		for _, policy := range affinity.Policies {
			sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
				res, err := workload.RunMicro(workload.MicroConfig{
					Variant:              workload.VariantSPMC,
					Layout:               core.LayoutPadded,
					Producers:            pairs,
					ConsumersPerProducer: 1,
					ItemsPerProducer:     items,
					QueueSize:            size,
					Policy:               policy,
					Topology:             o.Topology,
				})
				if err != nil {
					return 0, err
				}
				return res.MopsPerSec(), nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, sum.Mean)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig7Throughput reproduces the left panel of Figure 7: getppid
// throughput of the three framework variants as available cores grow.
func Fig7Throughput(o Options) (*report.Table, error) {
	o.fill()
	calls := harness.ScaleInt(200_000, o.Scale, 1000)
	t := &report.Table{
		Title:   "Figure 7 (left): syscall throughput vs cores (simulated enclave, getppid)",
		Note:    fmt.Sprintf("runs=%d calls/app-thread=%d app-threads/OS-thread=4 workers/OS-thread=2", o.Runs, calls),
		Columns: []string{"cores", "native", "ffq", "mpmc"},
	}
	maxCores := o.MaxThreads
	if maxCores < 1 {
		maxCores = 1
	}
	for cores := 1; cores <= maxCores; cores++ {
		row := []any{cores}
		for _, v := range enclave.Variants {
			v := v
			sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
				res, err := enclave.RunThroughput(enclave.Config{
					Variant:         v,
					OSThreads:       cores,
					AppThreadsPerOS: 4,
					WorkersPerOS:    2,
					Call:            syscalls.GetPPID,
				}, calls)
				if err != nil {
					return 0, err
				}
				return res.CallsPerSec() / 1e6, nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, sum.Mean)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig7Latency reproduces the right panel of Figure 7: single-thread
// end-to-end getppid latency per variant.
func Fig7Latency(o Options) (*report.Table, error) {
	o.fill()
	samples := harness.ScaleInt(100_000, o.Scale, 500)
	t := &report.Table{
		Title:   "Figure 7 (right): getppid latency by variant (single application thread)",
		Note:    fmt.Sprintf("samples=%d; ns end-to-end", samples),
		Columns: []string{"variant", "mean-ns", "min-ns", "max-ns"},
	}
	for _, v := range enclave.Variants {
		sum, err := enclave.MeasureLatency(enclave.Config{
			Variant:         v,
			OSThreads:       1,
			AppThreadsPerOS: 1,
			WorkersPerOS:    1,
			Call:            syscalls.GetPPID,
		}, samples)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.String(), sum.Mean, sum.Min, sum.Max)
	}
	return t, nil
}

// Fig8 reproduces the comparative study: throughput of every queue in
// the registry under the pairs workload across a thread sweep
// (Figure 8; one panel, this host).
func Fig8(o Options) (*report.Table, error) {
	o.fill()
	totalPairs := harness.ScaleInt(10_000_000, o.Scale, 2000)
	t := &report.Table{
		Title: "Figure 8: comparative throughput, pairs benchmark (this host)",
		Note: fmt.Sprintf("runs=%d total-pairs=%d delay=50-150ns capacity=2^16; spsc/spmc are single-thread marks",
			o.Runs, totalPairs),
	}
	threads := harness.ThreadSweep(o.MaxThreads)
	t.Columns = append([]string{"queue"}, func() []string {
		var cols []string
		for _, th := range threads {
			cols = append(cols, fmt.Sprintf("t=%d", th))
		}
		return cols
	}()...)
	for _, f := range allqueues.Factories() {
		row := []any{f.Name}
		for _, th := range threads {
			if f.MaxThreads != 0 && th > f.MaxThreads {
				row = append(row, "-")
				continue
			}
			th := th
			fac := f.Factory
			sum := harness.Repeat(o.Runs, func() float64 {
				return workload.RunPairs(workload.PairsConfig{
					Factory:    fac,
					Threads:    th,
					TotalPairs: totalPairs,
					Capacity:   1 << 16,
					DelayMinNS: 50,
					DelayMaxNS: 150,
				}).MopsPerSec()
			})
			row = append(row, sum.Mean)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// All runs every figure at the given options, returning the tables in
// paper order. pairs6 sets the pair count for Figure 6.
func All(o Options, pairs6 int) ([]*report.Table, error) {
	type gen struct {
		name string
		fn   func() (*report.Table, error)
	}
	gens := []gen{
		{"fig2", func() (*report.Table, error) { return Fig2(o) }},
		{"fig3", func() (*report.Table, error) { return Fig3(o) }},
		{"fig4", func() (*report.Table, error) { return Fig4(o) }},
		{"fig5", func() (*report.Table, error) { return Fig5(o) }},
		{"fig6", func() (*report.Table, error) { return Fig6(o, pairs6) }},
		{"fig7-throughput", func() (*report.Table, error) { return Fig7Throughput(o) }},
		{"fig7-latency", func() (*report.Table, error) { return Fig7Latency(o) }},
		{"fig8", func() (*report.Table, error) { return Fig8(o) }},
		{"spsc-lineage", func() (*report.Table, error) { return SPSCLineage(o) }},
	}
	var out []*report.Table
	for _, g := range gens {
		tbl, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// SPSCLineage benchmarks the related-work SPSC queues of Section II
// (Lamport, FastForward, MCRingBuffer, BatchQueue, B-Queue) against
// the FFQ SPSC variant on a streaming transfer workload. Not a paper
// figure; it substantiates the Section II comparisons.
func SPSCLineage(o Options) (*report.Table, error) {
	o.fill()
	items := harness.ScaleInt(2_000_000, o.Scale, 5000)
	sizes := harness.PowersOfTwo(o.MinSizeExp, minInt(o.MaxSizeExp, 16))
	t := &report.Table{
		Title: "SPSC lineage (Section II): streaming transfer throughput, Mops/s",
		Note:  fmt.Sprintf("runs=%d items=%d", o.Runs, items),
	}
	t.Columns = append([]string{"queue"}, func() []string {
		var cols []string
		for _, s := range sizes {
			cols = append(cols, fmt.Sprintf("cap=%d", s))
		}
		return cols
	}()...)
	for _, f := range spscqueues.Factories() {
		row := []any{f.Name}
		for _, size := range sizes {
			f, size := f, size
			sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
				res, err := workload.RunStream(workload.StreamConfig{
					Factory:  f,
					Items:    items,
					Capacity: size,
				})
				if err != nil {
					return 0, err
				}
				return res.MopsPerSec(), nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, sum.Mean)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PairsLatency measures per-operation latency percentiles for every
// queue in the registry under the pairs workload at a fixed thread
// count. Not a paper figure; it complements Figure 8's throughput
// ranking with the tail behaviour an adopter cares about.
func PairsLatency(o Options, threads int) (*report.Table, error) {
	o.fill()
	if threads < 1 {
		threads = 1
	}
	totalPairs := harness.ScaleInt(1_000_000, o.Scale, 2000)
	t := &report.Table{
		Title: fmt.Sprintf("Pairs latency (extra): per-op latency at %d threads, ns", threads),
		Note: fmt.Sprintf("total-pairs=%d delay=50-150ns; quantiles at power-of-two bucket resolution",
			totalPairs),
		Columns: []string{"queue", "enq-mean", "enq-p99", "deq-mean", "deq-p99"},
	}
	for _, f := range allqueues.Factories() {
		if f.MaxThreads != 0 && threads > f.MaxThreads {
			continue
		}
		res := workload.RunPairs(workload.PairsConfig{
			Factory:        f.Factory,
			Threads:        threads,
			TotalPairs:     totalPairs,
			Capacity:       1 << 16,
			DelayMinNS:     50,
			DelayMaxNS:     150,
			MeasureLatency: true,
		})
		t.AddRow(f.Name,
			res.EnqueueNS.Mean(), res.EnqueueNS.Quantile(0.99),
			res.DequeueNS.Mean(), res.DequeueNS.Quantile(0.99))
	}
	return t, nil
}

// StatsSweep runs the instrumented microbenchmark across the queue-size
// sweep and returns JSON records that pair each configuration's
// throughput with the spin, yield, gap and wait counters of its
// submission queues. This is the exporter behind `ffq-micro -json`:
// stored BENCH_*.json files carry the queue-internals trajectory of a
// run, not just its headline Mops/s. batch > 1 moves items in batches
// of that size (native contiguous-run reservations on the unbounded
// variants); the per-run batch-size histogram then lands in the
// record's queue stats. producers > 1 is the multi-producer axis: each
// producer gets its own submission queue — except VariantSharded,
// where all of them share one sharded queue (a lane each) and the
// record additionally carries the lane count and per-lane depth.
// latency switches the runs into latency mode: items are stamped at
// submission, and every record gains sojourn_* percentile metrics (the
// ingress-to-dequeue distribution) plus enq_/deq_ per-op percentiles
// from the recorder histograms — the fields the CI latency smoke gate
// and EXPERIMENTS.md's methodology section read.
func StatsSweep(o Options, variant workload.Variant, producers, consumers, batch int, latency bool) ([]report.Record, error) {
	o.fill()
	if producers < 1 {
		producers = 1
	}
	if consumers < 1 {
		consumers = 1
	}
	if batch < 1 {
		batch = 1
	}
	items := harness.ScaleInt(500_000, o.Scale, 2000) / producers
	if items < 1000 {
		items = 1000
	}
	var recs []report.Record
	for _, size := range harness.PowersOfTwo(o.MinSizeExp, o.MaxSizeExp) {
		var agg obs.Stats
		var sojourn *obs.LatencySnapshot
		lanes, laneCap := 0, 0
		sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
			res, err := workload.RunMicro(workload.MicroConfig{
				Variant:              variant,
				Layout:               core.LayoutPadded,
				Producers:            producers,
				ConsumersPerProducer: consumers,
				ItemsPerProducer:     items,
				QueueSize:            size,
				Batch:                batch,
				Policy:               affinity.NoAffinity,
				Topology:             o.Topology,
				Instrument:           true,
				MeasureLatency:       latency,
			})
			if err != nil {
				return 0, err
			}
			if res.Stats != nil {
				agg = agg.Add(*res.Stats)
			}
			sojourn = sojourn.Add(res.Sojourn)
			lanes, laneCap = res.Lanes, res.LaneCap
			return res.MopsPerSec(), nil
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("micro/%s/entries=%d", variant, size)
		if producers > 1 {
			name += fmt.Sprintf("/p=%d", producers)
		}
		if batch > 1 {
			name += fmt.Sprintf("/batch=%d", batch)
		}
		params := map[string]any{
			"variant":            variant.String(),
			"producers":          producers,
			"consumers":          consumers,
			"queue_size":         size,
			"batch":              batch,
			"runs":               o.Runs,
			"items_per_producer": items,
		}
		if lanes > 0 {
			params["lanes"] = lanes
			params["lane_depth"] = laneCap
		}
		metrics := map[string]float64{
			"mops_per_sec_mean":   sum.Mean,
			"mops_per_sec_stddev": sum.Stddev,
			"mops_per_sec_min":    sum.Min,
			"mops_per_sec_max":    sum.Max,
		}
		if latency {
			params["measure_latency"] = true
			addLatencyMetrics(metrics, "sojourn_", sojourn)
			addLatencyMetrics(metrics, "enq_", agg.EnqLatency)
			addLatencyMetrics(metrics, "deq_", agg.DeqLatency)
		}
		recs = append(recs, report.Record{
			Name:      name,
			Timestamp: time.Now(),
			Params:    params,
			Metrics:   metrics,
			Queues: []report.QueueStats{{
				Name:     "submission",
				Capacity: size,
				Stats:    agg,
			}},
		})
	}
	return recs, nil
}

// addLatencyMetrics flattens a latency snapshot into prefixed metric
// fields (count, mean and the percentile cut). A nil or empty snapshot
// contributes nothing, so records stay free of zero-valued noise.
func addLatencyMetrics(m map[string]float64, prefix string, s *obs.LatencySnapshot) {
	if s == nil || s.Count == 0 {
		return
	}
	m[prefix+"count"] = float64(s.Count)
	m[prefix+"mean_ns"] = float64(s.SumNS) / float64(s.Count)
	m[prefix+"p50_ns"] = float64(s.P50NS)
	m[prefix+"p95_ns"] = float64(s.P95NS)
	m[prefix+"p99_ns"] = float64(s.P99NS)
	m[prefix+"p999_ns"] = float64(s.P999NS)
	m[prefix+"max_ns"] = float64(s.MaxNS)
}

// ShardedVsMPMC measures the fan-in comparison the sharded queue
// exists for: P producers pushing into ONE shared queue drained by C
// consumers, once with a single FFQ^m (every producer contending on
// one tail word and CASing cell states) and once with the sharded
// per-producer-lane queue (wait-free FFQ^s enqueues, consumers
// FAA-claiming per lane). Both runs move the same item volume through
// the same thread counts under the padded layout; the sharded record
// carries the speedup ratio. This is the exporter behind
// `ffq-micro -sharded-compare -json` and the data behind the
// BenchmarkShardedVsMPMC CI gate.
func ShardedVsMPMC(o Options, producers, consumers int) ([]report.Record, error) {
	o.fill()
	if producers < 1 {
		producers = 1
	}
	if consumers < 1 {
		consumers = 1
	}
	items := harness.ScaleInt(500_000, o.Scale, 2000) / producers
	if items < 1000 {
		items = 1000
	}
	const size = 1 << 12 // MPMC capacity; per-lane capacity for sharded
	variants := []workload.Variant{workload.VariantMPMC, workload.VariantSharded}
	recs := make([]report.Record, 0, len(variants))
	means := make(map[workload.Variant]float64, len(variants))
	for _, v := range variants {
		v := v
		var agg obs.Stats
		var gaps int64
		sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
			res, err := workload.RunFanIn(workload.FanInConfig{
				Variant:          v,
				Producers:        producers,
				Consumers:        consumers,
				ItemsPerProducer: items,
				QueueSize:        size,
				Layout:           core.LayoutPadded,
				Instrument:       true,
			})
			if err != nil {
				return 0, err
			}
			if res.Stats != nil {
				agg = agg.Add(*res.Stats)
			}
			gaps += res.Gaps
			return res.MopsPerSec(), nil
		})
		if err != nil {
			return nil, err
		}
		means[v] = sum.Mean
		params := map[string]any{
			"variant":            v.String(),
			"producers":          producers,
			"consumers":          consumers,
			"queue_size":         size,
			"runs":               o.Runs,
			"items_per_producer": items,
		}
		if v == workload.VariantSharded {
			params["lanes"] = producers + 1
			params["lane_depth"] = size
		}
		metrics := map[string]float64{
			"mops_per_sec_mean":   sum.Mean,
			"mops_per_sec_stddev": sum.Stddev,
			"mops_per_sec_min":    sum.Min,
			"mops_per_sec_max":    sum.Max,
			"gaps_total":          float64(gaps),
		}
		if v == workload.VariantSharded && means[workload.VariantMPMC] > 0 {
			metrics["speedup_vs_mpmc"] = sum.Mean / means[workload.VariantMPMC]
		}
		recs = append(recs, report.Record{
			Name:      fmt.Sprintf("fanin/%s/p=%d/c=%d", v, producers, consumers),
			Timestamp: time.Now(),
			Params:    params,
			Metrics:   metrics,
			Queues: []report.QueueStats{{
				Name:     "shared",
				Capacity: size,
				Stats:    agg,
			}},
		})
	}
	return recs, nil
}

// BrokerSweep measures the ffqd broker's end-to-end loopback
// throughput across client auto-batch sizes: each point publishes the
// same message volume through one topic with the client's MaxBatch set
// to the given batch size, so the sweep isolates what frame batching
// buys on the wire path (one frame = one arena copy, one ingress slot
// and one contiguous EnqueueBatch rank reservation, whatever the batch
// size). This is the exporter behind `ffq-micro -broker -json`.
func BrokerSweep(o Options, transport string, producers, consumers int, batches []int) ([]report.Record, error) {
	o.fill()
	if producers < 1 {
		producers = 1
	}
	if consumers < 1 {
		consumers = 1
	}
	if len(batches) == 0 {
		batches = []int{1, 8, 64}
	}
	msgs := harness.ScaleInt(200_000, o.Scale, 2000)
	var recs []report.Record
	for _, batch := range batches {
		sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
			res, err := workload.RunBroker(workload.BrokerConfig{
				Transport:           transport,
				Producers:           producers,
				Consumers:           consumers,
				MessagesPerProducer: msgs / producers,
				MaxBatch:            batch,
			})
			if err != nil {
				return 0, err
			}
			return res.MsgsPerSec(), nil
		})
		if err != nil {
			return nil, err
		}
		recs = append(recs, report.Record{
			Name:      fmt.Sprintf("broker/%s/batch=%d", transport, batch),
			Timestamp: time.Now(),
			Params: map[string]any{
				"transport":             transport,
				"producers":             producers,
				"consumers":             consumers,
				"batch":                 batch,
				"runs":                  o.Runs,
				"messages_per_producer": msgs / producers,
			},
			Metrics: map[string]float64{
				"msgs_per_sec_mean":   sum.Mean,
				"msgs_per_sec_stddev": sum.Stddev,
				"msgs_per_sec_min":    sum.Min,
				"msgs_per_sec_max":    sum.Max,
			},
		})
	}
	return recs, nil
}
