package experiments

import (
	"fmt"
	"time"

	"ffq/internal/harness"
	"ffq/internal/report"
	"ffq/internal/workload"
)

// ShmSweepItems is the per-run payload count ShmSweep moves; the
// ffq-micro child process must publish exactly this many, so the flag
// wiring reads it from here.
func ShmSweepItems(o Options) int {
	o.fill()
	return harness.ScaleInt(1_000_000, o.Scale, 5000)
}

// ShmSweep measures the shared-memory SPSC transport (internal/shm)
// across producer batch sizes: per-element nanoseconds and payload
// rate, consumer side. spawn is handed through to workload.RunShm —
// ffq-micro passes a re-exec of itself so the producer is a real
// separate process; nil keeps the producer in-process (tests).
func ShmSweep(o Options, slotSize, capacity int, batches []int, spawn func(batch int) func(path string) (func() error, error)) ([]report.Record, error) {
	o.fill()
	if slotSize < 8 {
		slotSize = 64
	}
	if capacity < 1 {
		capacity = 1 << 12
	}
	if len(batches) == 0 {
		batches = []int{1, 8, 64}
	}
	items := ShmSweepItems(o)
	twoProcess := spawn != nil
	var recs []report.Record
	for _, batch := range batches {
		var lastNS float64
		sum, err := harness.RepeatErr(o.Runs, func() (float64, error) {
			cfg := workload.ShmConfig{
				SlotSize: slotSize,
				Capacity: capacity,
				Items:    items,
				Batch:    batch,
			}
			if spawn != nil {
				cfg.Spawn = spawn(batch)
			}
			res, err := workload.RunShm(cfg)
			if err != nil {
				return 0, err
			}
			lastNS = res.NsPerElement()
			return res.MsgsPerSec(), nil
		})
		if err != nil {
			return nil, err
		}
		recs = append(recs, report.Record{
			Name:      fmt.Sprintf("shm/batch=%d", batch),
			Timestamp: time.Now(),
			Params: map[string]any{
				"slot_size":   slotSize,
				"capacity":    capacity,
				"batch":       batch,
				"items":       items,
				"runs":        o.Runs,
				"two_process": twoProcess,
			},
			Metrics: map[string]float64{
				"msgs_per_sec_mean":   sum.Mean,
				"msgs_per_sec_stddev": sum.Stddev,
				"msgs_per_sec_min":    sum.Min,
				"msgs_per_sec_max":    sum.Max,
				"ns_per_element":      lastNS,
			},
		})
	}
	return recs, nil
}
