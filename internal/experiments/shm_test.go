package experiments

import "testing"

func TestShmSweepShape(t *testing.T) {
	recs, err := ShmSweep(micro(), 32, 256, []int{1, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Metrics["msgs_per_sec_mean"] <= 0 {
			t.Errorf("%s: non-positive rate", r.Name)
		}
		if r.Metrics["ns_per_element"] <= 0 {
			t.Errorf("%s: non-positive per-element cost", r.Name)
		}
		if r.Params["two_process"] != false {
			t.Errorf("%s: in-process run flagged two_process", r.Name)
		}
	}
	if recs[0].Name != "shm/batch=1" || recs[1].Name != "shm/batch=8" {
		t.Errorf("record names: %s, %s", recs[0].Name, recs[1].Name)
	}
}
