package enclave

import (
	"runtime"
	"testing"

	"ffq/internal/syscalls"
)

// zeroCost removes all modeled delays so tests measure only
// correctness, not the cost model.
func zeroCost() *syscalls.CostModel {
	return &syscalls.CostModel{}
}

func TestPackUnpackReq(t *testing.T) {
	for _, app := range []uint32{0, 1, 7, 65535} {
		for _, call := range []syscalls.Number{syscalls.GetPPID, syscalls.GetPID, syscalls.Write64} {
			a, c := unpackReq(packReq(app, call))
			if a != app || c != call {
				t.Fatalf("roundtrip (%d,%v) -> (%d,%v)", app, call, a, c)
			}
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 2, 1: 2, 2: 2, 3: 4, 1024: 1024, 3072: 4096}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestVariantString(t *testing.T) {
	if Native.String() != "native" || FFQVariant.String() != "ffq" || MPMCVariant.String() != "mpmc" {
		t.Error("variant names")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunThroughput(Config{}, 1); err == nil {
		t.Error("zero config accepted")
	}
	bad := Config{Variant: FFQVariant, OSThreads: 1, AppThreadsPerOS: 100, WorkersPerOS: 1, SubQueueSize: 64}
	if _, err := RunThroughput(bad, 1); err == nil {
		t.Error("undersized submission queue accepted")
	}
}

func TestThroughputAllVariants(t *testing.T) {
	for _, v := range Variants {
		cfg := Config{
			Variant:         v,
			OSThreads:       2,
			AppThreadsPerOS: 4,
			WorkersPerOS:    2,
			Call:            syscalls.GetPPID,
			Cost:            zeroCost(),
		}
		res, err := RunThroughput(cfg, 500)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Calls != 2*4*500 {
			t.Fatalf("%v: calls = %d", v, res.Calls)
		}
		if res.CallsPerSec() <= 0 {
			t.Fatalf("%v: throughput %v", v, res.CallsPerSec())
		}
	}
}

func TestThroughputSingleEverything(t *testing.T) {
	for _, v := range []Variant{FFQVariant, MPMCVariant} {
		res, err := RunThroughput(Config{
			Variant: v, OSThreads: 1, AppThreadsPerOS: 1, WorkersPerOS: 1,
			Cost: zeroCost(),
		}, 1000)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Calls != 1000 {
			t.Fatalf("%v: %d calls", v, res.Calls)
		}
	}
}

func TestThroughputOddOSThreads(t *testing.T) {
	// Exercises the next-power-of-two path of the shared MPMC ring.
	res, err := RunThroughput(Config{
		Variant: MPMCVariant, OSThreads: 3, AppThreadsPerOS: 2, WorkersPerOS: 1,
		Cost: zeroCost(),
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != 3*2*200 {
		t.Fatalf("calls = %d", res.Calls)
	}
}

func TestMeasureLatencyAllVariants(t *testing.T) {
	for _, v := range Variants {
		sum, err := MeasureLatency(Config{
			Variant: v, OSThreads: 4 /* overridden to 1 */, AppThreadsPerOS: 9,
			WorkersPerOS: 1, Cost: zeroCost(),
		}, 200)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if sum.N != 200 || sum.Mean <= 0 {
			t.Fatalf("%v: %+v", v, sum)
		}
	}
}

// The core claim of Figure 7: with several OS threads, the FFQ variant
// must outperform the shared-MPMC variant. That claim needs real
// parallelism — on an oversubscribed single CPU, a blocked FFQ worker
// holds its reserved rank until the scheduler wakes it, serializing
// handoffs, while MPMC lets any runnable worker steal any item. So the
// ranking is only asserted on hosts with enough cores; elsewhere this
// degrades to a completion smoke test (the quantitative reproduction
// lives in the recorded ffq-syscall outputs, see EXPERIMENTS.md).
func TestFFQBeatsMPMCWithParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative smoke test")
	}
	run := func(v Variant) float64 {
		res, err := RunThroughput(Config{
			Variant: v, OSThreads: 2, AppThreadsPerOS: 8, WorkersPerOS: 2,
			Cost: zeroCost(),
		}, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return res.CallsPerSec()
	}
	ffq := run(FFQVariant)
	mpmc := run(MPMCVariant)
	if ffq <= 0 || mpmc <= 0 {
		t.Fatalf("zero throughput: ffq=%.0f mpmc=%.0f", ffq, mpmc)
	}
	if runtime.NumCPU() >= 8 && ffq < mpmc {
		t.Errorf("ffq %.0f calls/s < mpmc %.0f with %d CPUs", ffq, mpmc, runtime.NumCPU())
	}
	t.Logf("ffq=%.0f calls/s, mpmc=%.0f calls/s (NumCPU=%d)", ffq, mpmc, runtime.NumCPU())
}
