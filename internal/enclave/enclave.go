// Package enclave simulates the secure-application framework that
// motivated FFQ (Sections I and V-F): application threads run "inside"
// an SGX enclave and must not exit it to issue system calls, so each
// enclave OS thread forwards calls through a submission FIFO to a pool
// of kernel-side worker threads, which push results back through
// per-worker response queues.
//
// This is substitution #4 of DESIGN.md. Real SGX is replaced by a cost
// model (internal/syscalls): requests pay an EPC-memory penalty per
// hop instead of hardware memory encryption, and the "native" baseline
// pays a trap cost instead of a real mode switch. What the substitution
// preserves is the property the paper measures: with transitions off
// the table, the submission queue is the bottleneck, so syscall
// throughput tracks queue throughput and the FFQ variant scales with
// cores while a shared MPMC queue does not.
//
// The m:n threading of the paper's framework (application threads
// multiplexed on enclave OS threads, Section I) is modeled exactly:
// each OS thread runs an event loop over its application threads'
// states, issuing at most one outstanding call per application thread
// — which is also what makes the FFQ "always an empty slot" assumption
// hold by construction.
package enclave

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ffq/internal/core"
	"ffq/internal/spin"
	"ffq/internal/stats"
	"ffq/internal/syscalls"
	"ffq/internal/vyukov"
)

// Variant selects the syscall path.
type Variant uint8

const (
	// Native: direct trap per call, no enclave (the glibc baseline).
	Native Variant = iota
	// FFQVariant: per-OS-thread FFQ SPMC submission queues and SPSC
	// response queues (the paper's design).
	FFQVariant
	// MPMCVariant: one shared bounded MPMC submission queue (the
	// paper's "external MPMC queue" baseline, i.e. the Vyukov ring).
	MPMCVariant
)

// String names the variant as in Figure 7.
func (v Variant) String() string {
	switch v {
	case Native:
		return "native"
	case FFQVariant:
		return "ffq"
	case MPMCVariant:
		return "mpmc"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Variants lists the three binaries of the paper's Figure 7.
var Variants = []Variant{Native, FFQVariant, MPMCVariant}

// Config describes one framework instance.
type Config struct {
	// Variant selects the syscall path.
	Variant Variant
	// OSThreads is the number of enclave-side OS threads (producers).
	OSThreads int
	// AppThreadsPerOS is the number of application threads multiplexed
	// on each OS thread.
	AppThreadsPerOS int
	// WorkersPerOS is the number of kernel-side executor threads per
	// submission queue (FFQ variant) or in total divided evenly
	// (MPMC variant uses OSThreads*WorkersPerOS workers on one queue).
	WorkersPerOS int
	// SubQueueSize and RespQueueSize are queue capacities (powers of
	// two; defaults 1024 / 256).
	SubQueueSize, RespQueueSize int
	// Call is the system call to benchmark (the paper uses getppid).
	Call syscalls.Number
	// Cost overrides the cost model (DefaultCostModel when zero).
	Cost *syscalls.CostModel
}

// Result of a throughput run.
type Result struct {
	// Calls completed.
	Calls int
	// Elapsed wall time.
	Elapsed time.Duration
}

// CallsPerSec returns the syscall throughput.
func (r Result) CallsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Calls) / r.Elapsed.Seconds()
}

// request packs (appThread, call) into a queue payload. App ids are
// local to one OS thread.
func packReq(app uint32, call syscalls.Number) uint64 {
	return uint64(app)<<16 | uint64(uint16(call)) + 1 // +1 keeps 0 reserved
}

func unpackReq(v uint64) (app uint32, call syscalls.Number) {
	v--
	return uint32(v >> 16), syscalls.Number(uint16(v))
}

// nextPow2 rounds n up to a power of two (the shared MPMC ring must
// hold every OS thread's outstanding requests).
func nextPow2(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

func (c *Config) defaults() error {
	if c.OSThreads < 1 || c.AppThreadsPerOS < 1 || c.WorkersPerOS < 1 {
		return fmt.Errorf("enclave: non-positive thread counts in %+v", *c)
	}
	if c.SubQueueSize == 0 {
		c.SubQueueSize = 1024
	}
	if c.RespQueueSize == 0 {
		c.RespQueueSize = 256
	}
	if c.SubQueueSize < 2*c.AppThreadsPerOS {
		// Implicit flow control: every app thread has at most one
		// outstanding call, so a queue of >= 2x app threads always has
		// an empty slot.
		return fmt.Errorf("enclave: submission queue %d too small for %d app threads",
			c.SubQueueSize, c.AppThreadsPerOS)
	}
	return nil
}

// RunThroughput executes callsPerAppThread system calls on every
// application thread and reports aggregate throughput.
func RunThroughput(cfg Config, callsPerAppThread int) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	cost := syscalls.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	kernel := syscalls.NewKernel(cost)
	totalCalls := cfg.OSThreads * cfg.AppThreadsPerOS * callsPerAppThread

	if cfg.Variant == Native {
		res := runNative(cfg, kernel, callsPerAppThread)
		return res, nil
	}

	f, err := newProxied(cfg, kernel)
	if err != nil {
		return Result{}, err
	}
	t0 := time.Now()
	f.run(callsPerAppThread)
	return Result{Calls: totalCalls, Elapsed: time.Since(t0)}, nil
}

// runNative: every application thread is a goroutine making direct
// (trap-cost) calls.
func runNative(cfg Config, kernel *syscalls.Kernel, calls int) Result {
	var wg sync.WaitGroup
	n := cfg.OSThreads * cfg.AppThreadsPerOS
	t0 := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < calls; c++ {
				kernel.ExecuteNative(cfg.Call, 0)
			}
		}()
	}
	wg.Wait()
	return Result{Calls: n * calls, Elapsed: time.Since(t0)}
}

// proxied is the queue-based framework (FFQ or MPMC variant).
type proxied struct {
	cfg    Config
	cost   syscalls.CostModel
	kernel *syscalls.Kernel

	// FFQ variant state: one submission queue and worker set per OS
	// thread.
	subFFQ []*core.SPMC[uint64]
	resps  [][]*core.SPSC[uint64] // [osThread][worker]

	// MPMC variant state: one shared submission queue; per-OS-thread
	// response rings (many workers produce into them).
	subMPMC  *vyukov.Queue
	respMPMC []*vyukov.Queue
}

func newProxied(cfg Config, kernel *syscalls.Kernel) (*proxied, error) {
	f := &proxied{cfg: cfg, cost: kernel.Cost(), kernel: kernel}
	switch cfg.Variant {
	case FFQVariant:
		for p := 0; p < cfg.OSThreads; p++ {
			q, err := core.NewSPMC[uint64](cfg.SubQueueSize, core.WithLayout(core.LayoutPadded))
			if err != nil {
				return nil, err
			}
			f.subFFQ = append(f.subFFQ, q)
			var rs []*core.SPSC[uint64]
			for w := 0; w < cfg.WorkersPerOS; w++ {
				r, err := core.NewSPSC[uint64](cfg.RespQueueSize, core.WithLayout(core.LayoutPadded))
				if err != nil {
					return nil, err
				}
				rs = append(rs, r)
			}
			f.resps = append(f.resps, rs)
		}
	case MPMCVariant:
		q, err := vyukov.New(nextPow2(cfg.SubQueueSize * cfg.OSThreads))
		if err != nil {
			return nil, err
		}
		f.subMPMC = q
		for p := 0; p < cfg.OSThreads; p++ {
			r, err := vyukov.New(cfg.RespQueueSize)
			if err != nil {
				return nil, err
			}
			f.respMPMC = append(f.respMPMC, r)
		}
	default:
		return nil, fmt.Errorf("enclave: %v is not a proxied variant", cfg.Variant)
	}
	return f, nil
}

// run drives all OS threads and workers until every application
// thread has completed `calls` calls.
func (f *proxied) run(calls int) {
	cfg := f.cfg
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Kernel-side workers.
	if cfg.Variant == FFQVariant {
		for p := 0; p < cfg.OSThreads; p++ {
			for w := 0; w < cfg.WorkersPerOS; w++ {
				wg.Add(1)
				go func(p, w int) {
					defer wg.Done()
					sub := f.subFFQ[p]
					resp := f.resps[p][w]
					for {
						v, ok := sub.Dequeue()
						if !ok {
							resp.Close()
							return
						}
						app, call := unpackReq(v)
						f.kernel.Execute(call, 0)
						resp.Enqueue(uint64(app) + 1)
					}
				}(p, w)
			}
		}
	} else {
		workers := cfg.OSThreads * cfg.WorkersPerOS
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					v, ok := f.subMPMC.TryDequeue()
					if !ok {
						select {
						case <-stop:
							return
						default:
							runtime.Gosched()
							continue
						}
					}
					// MPMC requests carry the OS thread id in the
					// upper bits so the response can be routed.
					os := int(v >> 48)
					app, call := unpackReq(v & (1<<48 - 1))
					f.kernel.Execute(call, 0)
					f.respMPMC[os].Enqueue(uint64(app) + 1)
				}
			}()
		}
	}

	// Enclave-side OS threads: each multiplexes its application
	// threads (cooperative m:n scheduling as in the paper).
	var osWG sync.WaitGroup
	for p := 0; p < cfg.OSThreads; p++ {
		osWG.Add(1)
		go func(p int) {
			defer osWG.Done()
			remaining := make([]int, cfg.AppThreadsPerOS)
			for i := range remaining {
				remaining[i] = calls
			}
			// Issue the first call of every app thread.
			for app := 0; app < cfg.AppThreadsPerOS; app++ {
				f.submit(p, uint32(app))
			}
			completedAll := 0
			for completedAll < cfg.AppThreadsPerOS {
				app, ok := f.pollResponse(p)
				if !ok {
					runtime.Gosched()
					continue
				}
				remaining[app]--
				if remaining[app] > 0 {
					f.submit(p, app)
				} else if remaining[app] == 0 {
					completedAll++
				}
			}
		}(p)
	}
	osWG.Wait()
	// Shut the workers down.
	if cfg.Variant == FFQVariant {
		for _, q := range f.subFFQ {
			q.Close()
		}
	} else {
		close(stop)
	}
	wg.Wait()
}

// submit enqueues one request from app thread `app` of OS thread p,
// paying the EPC write penalty.
func (f *proxied) submit(p int, app uint32) {
	spin.Nanoseconds(f.cost.EPCAccessNS)
	req := packReq(app, f.cfg.Call)
	if f.cfg.Variant == FFQVariant {
		f.subFFQ[p].Enqueue(req)
	} else {
		f.subMPMC.Enqueue(uint64(p)<<48 | req)
	}
}

// pollResponse checks p's response queues once, returning a completed
// app thread id.
func (f *proxied) pollResponse(p int) (uint32, bool) {
	if f.cfg.Variant == FFQVariant {
		for _, r := range f.resps[p] {
			if v, ok := r.TryDequeue(); ok {
				return uint32(v - 1), true
			}
		}
		return 0, false
	}
	if v, ok := f.respMPMC[p].TryDequeue(); ok {
		return uint32(v - 1), true
	}
	return 0, false
}

// MeasureLatency runs a single application thread for `samples` calls
// and returns the end-to-end per-call latency distribution in
// nanoseconds (the paper's Figure 7 right reports cycles; callers can
// convert with their clock).
func MeasureLatency(cfg Config, samples int) (stats.Summary, error) {
	cfg.OSThreads = 1
	cfg.AppThreadsPerOS = 1
	if err := cfg.defaults(); err != nil {
		return stats.Summary{}, err
	}
	cost := syscalls.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	kernel := syscalls.NewKernel(cost)

	var s stats.Stream
	if cfg.Variant == Native {
		for i := 0; i < samples; i++ {
			t0 := time.Now()
			kernel.ExecuteNative(cfg.Call, 0)
			s.Add(float64(time.Since(t0).Nanoseconds()))
		}
		return s.Summarize(), nil
	}

	f, err := newProxied(cfg, kernel)
	if err != nil {
		return stats.Summary{}, err
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One worker (ping/pong partner).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			var v uint64
			var ok bool
			if cfg.Variant == FFQVariant {
				v, ok = f.subFFQ[0].Dequeue()
				if !ok {
					return
				}
			} else {
				v, ok = f.subMPMC.TryDequeue()
				if !ok {
					select {
					case <-stop:
						return
					default:
						runtime.Gosched()
						continue
					}
				}
				v &= 1<<48 - 1
			}
			app, call := unpackReq(v)
			kernel.Execute(call, 0)
			if cfg.Variant == FFQVariant {
				f.resps[0][0].Enqueue(uint64(app) + 1)
			} else {
				f.respMPMC[0].Enqueue(uint64(app) + 1)
			}
		}
	}()
	for i := 0; i < samples; i++ {
		t0 := time.Now()
		f.submit(0, 0)
		for spins := 0; ; spins++ {
			if _, ok := f.pollResponse(0); ok {
				break
			}
			if spins >= 128 {
				// Oversubscribed host: the worker needs our CPU. This
				// inflates the absolute latency but keeps the relative
				// ordering of the variants.
				runtime.Gosched()
			}
		}
		s.Add(float64(time.Since(t0).Nanoseconds()))
	}
	if cfg.Variant == FFQVariant {
		f.subFFQ[0].Close()
	} else {
		close(stop)
	}
	wg.Wait()
	return s.Summarize(), nil
}
