package wfqueue_test

import (
	"sync"
	"testing"

	"ffq/internal/queue"
	"ffq/internal/queuetest"
	"ffq/internal/wfqueue"
)

type adapter struct{ q *wfqueue.Queue }

func (a adapter) Register() queue.Queue { return a.q.Register() }

func factory() queue.Factory {
	return queue.Factory{
		Name: "wfqueue",
		New: func(_, _ int) queue.Shared {
			return adapter{wfqueue.New()}
		},
	}
}

func TestSequential(t *testing.T) {
	queuetest.Sequential(t, factory(), queuetest.DefaultOptions())
}

func TestEmpty(t *testing.T) {
	queuetest.EmptyBehaviour(t, factory())
}

func TestSentinelsRejected(t *testing.T) {
	q := wfqueue.New()
	h := q.Register()
	for _, v := range []uint64{0, ^uint64(0), ^uint64(0) - 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("value %d accepted", v)
				}
			}()
			h.Enqueue(v)
		}()
	}
}

func TestCrossSegment(t *testing.T) {
	// Push enough items through one handle to cross several segment
	// boundaries and trigger cleanup.
	q := wfqueue.New()
	h := q.Register()
	const n = 5 * wfqueue.SegSize
	for i := uint64(1); i <= n; i++ {
		h.Enqueue(i)
	}
	for i := uint64(1); i <= n; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("drained queue returned an item")
	}
}

func TestConcurrent(t *testing.T) {
	queuetest.Concurrent(t, factory(), queuetest.DefaultOptions())
}

func TestConcurrentManyThreads(t *testing.T) {
	opts := queuetest.DefaultOptions()
	opts.Producers = 8
	opts.Consumers = 8
	opts.ItemsPerProducer = 3000
	queuetest.Concurrent(t, factory(), opts)
}

// Pairwise enqueue/dequeue from many threads (the Figure 8 workload
// shape) with per-thread handles.
func TestPairsWorkload(t *testing.T) {
	q := wfqueue.New()
	const threads = 6
	const pairs = 5000
	var wg sync.WaitGroup
	var sums = make([]uint64, threads)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := q.Register()
			var sum uint64
			for j := 0; j < pairs; j++ {
				h.Enqueue(uint64(j + 1))
				v, ok := h.Dequeue()
				for !ok {
					v, ok = h.Dequeue()
				}
				sum += v
			}
			sums[i] = sum
		}(i)
	}
	wg.Wait()
	var total uint64
	for _, s := range sums {
		total += s
	}
	want := uint64(threads) * uint64(pairs) * uint64(pairs+1) / 2
	if total != want {
		t.Fatalf("sum = %d, want %d", total, want)
	}
}
