package wfqueue

import (
	"sync"
	"testing"
)

// Force the enqueue slow path black-box style: every empty dequeue
// marks its cell TOP (help_enq CASes BOT->TOP when nothing arrives),
// so patience+1 empty dequeues leave a run of dead cells that defeats
// every fast-path attempt of the next enqueue.
func TestEnqueueSlowPathForced(t *testing.T) {
	q := New()
	h := q.Register()
	for i := 0; i <= patience+2; i++ {
		if _, ok := h.Dequeue(); ok {
			t.Fatal("empty queue delivered an item")
		}
	}
	// di is now ahead of ei with TOP-marked cells in between; this
	// enqueue must burn through them and take the slow path.
	h.Enqueue(42)
	if got := h.er.id.Load(); got >= 0 && got != 0 {
		t.Fatalf("slow-path record left pending: id=%d", got)
	}
	v, ok := h.Dequeue()
	if !ok || v != 42 {
		t.Fatalf("got %d,%v want 42", v, ok)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("phantom item after slow-path roundtrip")
	}
}

// The slow path must also work repeatedly and interleaved with fast
// operations.
func TestEnqueueSlowPathRepeated(t *testing.T) {
	q := New()
	h := q.Register()
	expect := uint64(1)
	for round := 0; round < 20; round++ {
		// Kill the next patience+2 cells.
		for i := 0; i <= patience+1; i++ {
			h.Dequeue()
		}
		h.Enqueue(expect)
		v, ok := h.Dequeue()
		if !ok || v != expect {
			t.Fatalf("round %d: got %d,%v want %d", round, v, ok, expect)
		}
		expect++
	}
}

// Two handles: one parks a slow-path enqueue request; the peer's
// dequeues must help complete it (the help_enq path through a peer's
// request record).
func TestPeerHelpingCompletesSlowEnqueue(t *testing.T) {
	q := New()
	h1 := q.Register()
	h2 := q.Register()
	// Dead cells so h1's enqueue goes slow.
	for i := 0; i <= patience+2; i++ {
		h1.Dequeue()
	}
	done := make(chan struct{})
	go func() {
		h1.Enqueue(7)
		close(done)
	}()
	// h2 dequeues until the item surfaces; its help_enq walks h1's
	// request record when it finds cells with parked requests.
	var got uint64
	for {
		v, ok := h2.Dequeue()
		if ok {
			got = v
			break
		}
	}
	<-done
	if got != 7 {
		t.Fatalf("got %d want 7", got)
	}
}

// Segment cleanup: after traversing several segments, the queue's head
// segment pointer must advance so the GC can reclaim old segments.
func TestSegmentCleanupAdvances(t *testing.T) {
	q := New()
	h := q.Register()
	const n = 6 * SegSize
	for i := uint64(1); i <= n; i++ {
		h.Enqueue(i)
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("roundtrip %d: %d,%v", i, v, ok)
		}
	}
	if id := q.hp.Load().id; id == 0 {
		t.Fatal("head segment never advanced; old segments are pinned")
	}
}

// Handle registration is concurrency-safe and every handle ends up in
// a ring reachable from every other.
func TestConcurrentRegistration(t *testing.T) {
	q := New()
	const n = 16
	handles := make([]*Handle, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i] = q.Register()
		}(i)
	}
	wg.Wait()
	// Walk the ring from handle 0: every registered handle must be
	// reachable within n steps.
	reach := map[*Handle]bool{}
	cur := handles[0]
	for i := 0; i < 4*n; i++ {
		reach[cur] = true
		cur = cur.next.Load()
	}
	for i, h := range handles {
		if !reach[h] {
			t.Fatalf("handle %d not reachable in the helping ring", i)
		}
	}
}
