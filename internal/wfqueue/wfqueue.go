// Package wfqueue is a Go port of Yang & Mellor-Crummey's wait-free
// MPMC FIFO queue [PPoPP'16], the strongest baseline in the paper's
// comparative study ("wfqueue", fast WF-10 version).
//
// The design pairs a fetch-and-add fast path with a helping slow path:
// an operation first tries PATIENCE times to claim a cell purely with
// FAA + a single CAS; failing that, it publishes a request record that
// every peer is obliged to help complete, which bounds the number of
// steps any operation can take (wait-freedom).
//
// # Port notes
//
//   - The original manages segment memory with hazard-pointer-style
//     epochs (Hi/Hp and per-handle hazard node ids). Under Go's
//     garbage collector a segment is reclaimed automatically once no
//     handle can reach it, so the port only advances the queue's head
//     segment pointer and drops the rest on the GC (a standard
//     simplification for Go ports of this algorithm; it removes the
//     use-after-free hazard the original code has to fight, without
//     changing the synchronization logic).
//   - Cell values are uint64 with two reserved sentinels (0 = BOT,
//     MaxUint64 = TOP), so payloads must lie in [1, 2^64-2]. The
//     benchmark harness stays within [1, 2^36-2] for comparability
//     with the LCRQ port.
package wfqueue

import (
	"math"
	"sync"
	"sync/atomic"
)

const (
	segShift = 10
	// SegSize is the number of cells per segment (2^10, as in the
	// reference implementation).
	SegSize = 1 << segShift
	// patience is the number of fast-path attempts before an operation
	// falls back to the helped slow path ("WF-10").
	patience = 10

	botVal = uint64(0)          // cell holds nothing yet
	topVal = math.MaxUint64     // cell abandoned for its lap
	empty  = math.MaxUint64 - 1 // dequeue result: queue empty
)

// enqReq is a slow-path enqueue request record.
type enqReq struct {
	id  atomic.Int64 // pending rank; negative once claimed (-cell id)
	val atomic.Uint64
}

// deqReq is a slow-path dequeue request record.
type deqReq struct {
	id  atomic.Int64
	idx atomic.Int64
}

// cell is one queue slot.
type cell struct {
	val atomic.Uint64
	enq atomic.Pointer[enqReq]
	deq atomic.Pointer[deqReq]
	_   [40]byte
}

// segment is a fixed-size block of cells in the unbounded list.
type segment struct {
	id    int64
	next  atomic.Pointer[segment]
	cells [SegSize]cell
}

// topEnq and topDeq are the sentinel request pointers (the original's
// TOP casts); nil plays the role of BOT.
var (
	topEnq = new(enqReq)
	topDeq = new(deqReq)
)

func newSegment(id int64) *segment {
	return &segment{id: id}
}

// Queue is the wait-free MPMC queue. Use New, then Register a Handle
// per goroutine.
type Queue struct {
	_  [64]byte
	ei atomic.Int64 // global enqueue index
	_  [64]byte
	di atomic.Int64 // global dequeue index
	_  [64]byte
	hp atomic.Pointer[segment] // head segment (for cleanup)

	handles  atomic.Pointer[handleList]
	regMu    sync.Mutex // serializes Register's ring splice
	cleaning atomic.Bool
}

type handleList struct {
	h    *Handle
	next *handleList
}

// Handle is a per-goroutine registration. Handles form a ring used for
// peer helping.
type Handle struct {
	q *Queue

	ep atomic.Pointer[segment] // enqueue segment cursor
	dp atomic.Pointer[segment] // dequeue segment cursor

	er enqReq
	dr deqReq

	// next links the helping ring. It is atomic because Register
	// splices new handles into the ring while peers traverse it on
	// their helping paths.
	next atomic.Pointer[Handle]

	eh *Handle // enqueue help peer cursor
	dh *Handle // dequeue help peer cursor

	// ei caches a peer enqueue request id this handle is watching
	// (the original's th->Ei).
	ei int64

	spare *segment // pre-allocated segment to avoid allocation storms

	deqCount int // dequeues since the last cleanup probe
}

// New returns an empty queue.
func New() *Queue {
	q := &Queue{}
	s := newSegment(0)
	q.hp.Store(s)
	return q
}

// Register creates a Handle for the calling goroutine and links it
// into the helping ring. Handles must not be shared across goroutines.
func (q *Queue) Register() *Handle {
	h := &Handle{q: q}
	h.er.id.Store(0)
	h.er.val.Store(botVal)
	h.dr.id.Store(0)
	h.dr.idx.Store(-1)
	seg := q.hp.Load()
	h.ep.Store(seg)
	h.dp.Store(seg)

	// Insert into the global handle list / helping ring. Registration
	// is rare (once per worker), so a mutex keeps the splice simple;
	// the ring links themselves stay atomic because peers traverse
	// them concurrently on their helping paths.
	q.regMu.Lock()
	old := q.handles.Load()
	q.handles.Store(&handleList{h: h, next: old})
	if old == nil {
		h.next.Store(h) // ring of one
	} else {
		h.next.Store(old.h.next.Load())
		old.h.next.Store(h)
	}
	q.regMu.Unlock()
	h.eh = h.next.Load()
	h.dh = h.next.Load()
	return h
}

// findCell walks (and extends) the segment list from *cur to the
// segment containing global index i and returns the cell.
func (h *Handle) findCell(cur *atomic.Pointer[segment], i int64) *cell {
	s := cur.Load()
	//ffq:ignore spin-backoff bounded walk: sid advances one segment per iteration toward a fixed target
	for sid := s.id; sid < i>>segShift; sid++ {
		next := s.next.Load()
		if next == nil {
			tmp := h.spare
			if tmp == nil {
				tmp = newSegment(sid + 1)
			} else {
				tmp.id = sid + 1
				h.spare = nil
			}
			if s.next.CompareAndSwap(nil, tmp) {
				next = tmp
			} else {
				next = s.next.Load()
				if tmp.next.Load() == nil {
					h.spare = tmp // recycle the unused segment
				}
			}
		}
		s = next
	}
	cur.Store(s)
	return &s.cells[i&(SegSize-1)]
}

// Enqueue inserts v (in [1, 2^64-2]). Wait-free.
func (h *Handle) Enqueue(v uint64) {
	if v == botVal || v >= empty {
		panic("wfqueue: value collides with a reserved sentinel")
	}
	var id int64
	ok := false
	for p := patience; p >= 0 && !ok; p-- {
		id, ok = h.enqFast(v)
	}
	if !ok {
		h.enqSlow(v, id)
	}
}

// enqFast is the FAA fast path; on failure it returns the rank it
// burned so that the slow path can start from there.
func (h *Handle) enqFast(v uint64) (int64, bool) {
	i := h.q.ei.Add(1) - 1
	c := h.findCell(&h.ep, i)
	if c.val.CompareAndSwap(botVal, v) {
		return 0, true
	}
	return i, false
}

// enqSlow publishes an enqueue request and keeps claiming cells until
// either it or a helper lands the value.
func (h *Handle) enqSlow(v uint64, id int64) {
	enq := &h.er
	enq.val.Store(v)
	enq.id.Store(id)

	var tail atomic.Pointer[segment]
	tail.Store(h.ep.Load())
	var i int64
	//ffq:ignore spin-backoff wait-free: every iteration claims a fresh cell index and a helper can complete the request for us
	for {
		i = h.q.ei.Add(1) - 1
		c := h.findCell(&tail, i)
		if c.enq.CompareAndSwap(nil, enq) && c.val.Load() != topVal {
			if enq.id.CompareAndSwap(id, -i) {
				// We claimed cell i for the request ourselves.
			}
			break
		}
		if enq.id.Load() <= 0 {
			break // a helper claimed a cell for us
		}
	}

	// The request's final cell index is -enq.id.
	id = -enq.id.Load()
	c := h.findCell(&h.ep, id)
	if id > i {
		// Our claimed cell is ahead of the last index we visited;
		// make sure the global counter has passed it so dequeuers
		// will visit the cell.
		ei := h.q.ei.Load()
		//ffq:ignore spin-backoff monotone counter catch-up: a failed CAS means another thread advanced the counter toward the exit condition
		for ei <= id && !h.q.ei.CompareAndSwap(ei, id+1) {
			ei = h.q.ei.Load()
		}
	}
	c.val.Store(v)
}

// helpEnq resolves the value of cell i: the value some enqueuer put
// (or will put) there, topVal if the cell is abandoned for this lap,
// or botVal if the queue side has not caught up (caller treats the
// dequeue as "empty" when appropriate).
func (h *Handle) helpEnq(c *cell, i int64) uint64 {
	// Spin briefly waiting for a fast-path enqueuer.
	v := c.val.Load()
	//ffq:ignore spin-backoff explicitly bounded to 512 iterations before falling through to helping
	for spins := 0; v == botVal && spins < 512; spins++ {
		v = c.val.Load()
	}
	if v != topVal && v != botVal {
		return v
	}
	if v == botVal && !c.val.CompareAndSwap(botVal, topVal) {
		v = c.val.Load()
		if v != topVal {
			return v
		}
	}
	// The cell is now TOP: no fast-path enqueue will land here. Help
	// slow-path enqueuers park their requests here.
	e := c.enq.Load()
	if e == nil {
		// Check a peer's pending request (round-robin helping).
		ph := h.eh
		pe := &ph.er
		id := pe.id.Load()
		if h.ei != 0 && h.ei != id {
			h.ei = 0
			h.eh = ph.next.Load()
			ph = h.eh
			pe = &ph.er
			id = pe.id.Load()
		}
		if id > 0 && id <= i && !c.enq.CompareAndSwap(nil, pe) {
			h.ei = id // request parked elsewhere; keep watching it
		} else {
			h.eh = ph.next.Load() // peer has no eligible request; move on
		}
		if c.enq.Load() == nil {
			c.enq.CompareAndSwap(nil, topEnq)
		}
		e = c.enq.Load()
	}
	if e == topEnq {
		if h.q.ei.Load() <= i {
			return botVal
		}
		return topVal
	}
	// A concrete request is parked on this cell: try to complete it.
	ei := e.id.Load()
	ev := e.val.Load()
	if ei > i {
		// The request was created after this cell; it cannot use it.
		if c.val.Load() == topVal && h.q.ei.Load() <= i {
			return botVal
		}
	} else {
		if (ei > 0 && e.id.CompareAndSwap(ei, -i)) ||
			(ei == -i && c.val.Load() == topVal) {
			eiNow := h.q.ei.Load()
			//ffq:ignore spin-backoff monotone counter catch-up: a failed CAS means another thread advanced the counter toward the exit condition
			for eiNow <= i && !h.q.ei.CompareAndSwap(eiNow, i+1) {
				eiNow = h.q.ei.Load()
			}
			c.val.Store(ev)
		}
	}
	return c.val.Load()
}

// Dequeue removes the head item; ok=false when the queue was observed
// empty. Wait-free.
func (h *Handle) Dequeue() (uint64, bool) {
	var v uint64
	var id int64
	ok := false
	for p := patience; p >= 0; p-- {
		v, id, ok = h.deqFast()
		if ok {
			break
		}
	}
	if !ok {
		v = h.deqSlow(id)
	}
	if v != empty {
		// Help one peer dequeue per successful operation.
		h.helpDeq(h.dh)
		h.dh = h.dh.next.Load()
	}
	h.maybeCleanup()
	if v == empty {
		return 0, false
	}
	return v, true
}

// deqFast is the FAA fast path. ok=false with v==empty means a
// definitive empty observation; ok=false otherwise means contention
// (the caller retries or goes slow with rank id).
func (h *Handle) deqFast() (uint64, int64, bool) {
	i := h.q.di.Add(1) - 1
	c := h.findCell(&h.dp, i)
	v := h.helpEnq(c, i)
	if v == botVal {
		return empty, 0, true // queue empty
	}
	if v != topVal && c.deq.CompareAndSwap(nil, topDeq) {
		return v, 0, true
	}
	return 0, i, false
}

// deqSlow publishes a dequeue request and helps itself.
func (h *Handle) deqSlow(id int64) uint64 {
	deq := &h.dr
	deq.id.Store(id)
	deq.idx.Store(id)

	h.helpDeq(h)

	i := -deq.idx.Load()
	c := h.findCell(&h.dp, i)
	v := c.val.Load()
	if v == topVal {
		return empty
	}
	return v
}

// helpDeq drives ph's pending dequeue request to completion.
func (h *Handle) helpDeq(ph *Handle) {
	deq := &ph.dr
	idx := deq.idx.Load()
	id := deq.id.Load()
	if idx < id {
		return // no pending request
	}

	var dp atomic.Pointer[segment]
	dp.Store(ph.dp.Load())
	idx = deq.idx.Load()

	i := id + 1
	old := id
	var newIdx int64
	//ffq:ignore spin-backoff wait-free helping: terminates once a candidate cell is found or another helper resolves the request
	for {
		var hseg atomic.Pointer[segment]
		hseg.Store(dp.Load())
		//ffq:ignore spin-backoff wait-free helping: each iteration visits a fresh cell index and another helper's progress terminates it
		for ; idx == old && newIdx == 0; i++ {
			c := h.findCell(&hseg, i)

			di := h.q.di.Load()
			//ffq:ignore spin-backoff monotone counter catch-up: a failed CAS means another thread advanced the counter toward the exit condition
			for di <= i && !h.q.di.CompareAndSwap(di, i+1) {
				di = h.q.di.Load()
			}

			v := h.helpEnq(c, i)
			if v == botVal || (v != topVal && c.deq.Load() == nil) {
				newIdx = i // candidate cell for the request
			} else {
				idx = deq.idx.Load()
			}
		}

		if newIdx != 0 {
			if deq.idx.CompareAndSwap(idx, newIdx) {
				idx = newIdx
			}
			if idx >= newIdx {
				newIdx = 0
			}
		}

		if idx < 0 || deq.id.Load() != id {
			break // request completed (or replaced)
		}

		c := h.findCell(&dp, idx)
		if c.val.Load() == topVal || c.deq.CompareAndSwap(nil, deq) || c.deq.Load() == deq {
			// The request owns this cell (or the cell is dead):
			// finalize by negating idx.
			deq.idx.CompareAndSwap(idx, -idx)
			break
		}

		old = idx
		if idx >= i {
			i = idx + 1
		}
	}
}

// maybeCleanup advances the queue's head segment past segments no
// handle can reach anymore, letting the GC reclaim them.
func (h *Handle) maybeCleanup() {
	h.deqCount++
	if h.deqCount < 2*SegSize {
		return
	}
	h.deqCount = 0
	q := h.q
	if !q.cleaning.CompareAndSwap(false, true) {
		return
	}
	defer q.cleaning.Store(false)

	head := q.hp.Load()
	minID := h.dp.Load().id
	if e := h.ep.Load().id; e < minID {
		minID = e
	}
	//ffq:ignore spin-backoff bounded scan over the finite registered-handle list
	for l := q.handles.Load(); l != nil; l = l.next {
		if d := l.h.dp.Load().id; d < minID {
			minID = d
		}
		if e := l.h.ep.Load().id; e < minID {
			minID = e
		}
	}
	if minID <= head.id {
		return
	}
	s := head
	//ffq:ignore spin-backoff bounded walk: s advances one segment per iteration up to a fixed minID
	for s.id < minID && s.next.Load() != nil {
		s = s.next.Load()
	}
	q.hp.CompareAndSwap(head, s)
}
