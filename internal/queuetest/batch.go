// Batch conformance: the contiguous-run batch operations shared by the
// segmented queues and the bounded cores (and, with per-lane runs, the
// sharded queue). The portable contract these tests pin down:
//
//   - EnqueueBatch(vs) is equivalent to enqueueing vs in order.
//   - DequeueBatch(dst) delivers n >= 1 items in claim order and
//     reports ok=true, or reports ok=false once the queue is closed
//     and drained (possibly delivering a final partial batch first —
//     rank-claiming queues cut a claimed run short at the final tail).
//   - A batch is FIFO within its claimed run: items of one producer
//     never appear out of order inside or across a consumer's batches.
//   - Partial returns (n < len(dst)) lose nothing: the shortfall is
//     either still queued or was never enqueued.
package queuetest

import (
	"sync"
	"sync/atomic"
	"testing"

	"ffq/internal/queue"
)

// BatchQueue is the optional batch interface a registered queue view
// may expose next to Enqueue/Dequeue. Close terminates consumers: it
// must be called once, after every producer's final enqueue.
type BatchQueue interface {
	EnqueueBatch(vs []uint64)
	DequeueBatch(dst []uint64) (n int, ok bool)
	Close()
}

// asBatch registers a view and asserts the batch interface.
func asBatch(t *testing.T, f queue.Factory, shared queue.Shared) BatchQueue {
	t.Helper()
	q, ok := shared.Register().(BatchQueue)
	if !ok {
		t.Fatalf("%s: registered view does not implement BatchQueue", f.Name)
	}
	return q
}

// BatchFIFO checks single-threaded batch round-trips: varying batch
// sizes, several capacity wrap-arounds, strict FIFO order within and
// across claimed runs.
func BatchFIFO(t *testing.T, f queue.Factory, opts Options) {
	t.Helper()
	const capacity = 32
	shared := f.New(capacity, 1)
	q := asBatch(t, f, shared)
	next, expect := uint64(1), uint64(1)
	buf := make([]uint64, capacity)
	out := make([]uint64, capacity)
	for round := 0; round < 12; round++ {
		vs := buf[:1+round%(capacity-1)]
		for i := range vs {
			vs[i] = next
			next++
		}
		q.EnqueueBatch(vs)
		// Never request more than is outstanding: with no closer racing
		// in, a rank-claiming DequeueBatch would block on the surplus.
		for got := 0; got < len(vs); {
			n, ok := q.DequeueBatch(out[:len(vs)-got])
			if !ok {
				t.Fatalf("%s: DequeueBatch reported closed", f.Name)
			}
			if n == 0 {
				t.Fatalf("%s: DequeueBatch returned 0 items on a non-empty open queue", f.Name)
			}
			for _, v := range out[:n] {
				if v != expect {
					t.Fatalf("%s: got %d, want %d", f.Name, v, expect)
				}
				expect++
			}
			got += n
		}
	}
}

// BatchPartial checks the near-empty contract: a batch request larger
// than the remaining items delivers exactly those items and then the
// closed signal, never blocking, fabricating or losing anything.
// Covers both cut-short styles: a claimed run truncated at the final
// tail (n > 0 with ok=false) and a drained scan (ok=false after the
// items came back with ok=true).
func BatchPartial(t *testing.T, f queue.Factory, opts Options) {
	t.Helper()
	const capacity = 32
	for _, items := range []int{0, 1, 5} {
		shared := f.New(capacity, 1)
		q := asBatch(t, f, shared)
		vs := make([]uint64, items)
		for i := range vs {
			vs[i] = uint64(i) + 1
		}
		q.EnqueueBatch(vs)
		q.Close()
		var drained []uint64
		out := make([]uint64, capacity) // always larger than items
		for {
			n, ok := q.DequeueBatch(out)
			drained = append(drained, out[:n]...)
			if !ok {
				break
			}
			if n == 0 {
				t.Fatalf("%s: ok=true with an empty batch on a closed drained queue", f.Name)
			}
		}
		if len(drained) != items {
			t.Fatalf("%s: drained %d items, want %d", f.Name, len(drained), items)
		}
		for i, v := range drained {
			if v != uint64(i)+1 {
				t.Fatalf("%s: drained[%d] = %d, want %d", f.Name, i, v, i+1)
			}
		}
	}
}

// BatchExactlyOnce runs opts.Producers batch producers against
// opts.Consumers batch consumers and checks exactly-once delivery and
// per-producer FIFO order within each consumer's stream (successive
// batch claims are ascending runs, so a consumer must never see one
// producer's items regress, within or across batches).
func BatchExactlyOnce(t *testing.T, f queue.Factory, opts Options) {
	t.Helper()
	const batch = 16
	total := opts.Producers * opts.ItemsPerProducer
	shared := f.New(opts.Capacity, opts.Producers+opts.Consumers)
	got := make([]atomic.Int32, total)

	var pwg sync.WaitGroup
	var closer BatchQueue
	var closerOnce sync.Once
	for p := 0; p < opts.Producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			q := asBatch(t, f, shared)
			closerOnce.Do(func() { closer = q })
			vs := make([]uint64, batch)
			base := p * opts.ItemsPerProducer
			for s := 0; s < opts.ItemsPerProducer; s += batch {
				k := batch
				if opts.ItemsPerProducer-s < k {
					k = opts.ItemsPerProducer - s
				}
				for i := 0; i < k; i++ {
					vs[i] = uint64(base+s+i) + 1
				}
				q.EnqueueBatch(vs[:k])
			}
		}(p)
	}
	var cwg sync.WaitGroup
	for c := 0; c < opts.Consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			q := asBatch(t, f, shared)
			lastSeen := make([]int, opts.Producers)
			for i := range lastSeen {
				lastSeen[i] = -1
			}
			buf := make([]uint64, batch)
			for {
				n, ok := q.DequeueBatch(buf)
				for _, v := range buf[:n] {
					v--
					p := int(v) / opts.ItemsPerProducer
					seq := int(v) % opts.ItemsPerProducer
					if p < 0 || p >= opts.Producers {
						t.Errorf("%s: bogus value %d", f.Name, v+1)
						return
					}
					if seq <= lastSeen[p] {
						t.Errorf("%s: producer %d order violated: %d after %d", f.Name, p, seq, lastSeen[p])
						return
					}
					lastSeen[p] = seq
					got[v].Add(1)
				}
				if !ok {
					return
				}
			}
		}()
	}
	pwg.Wait()
	closer.Close()
	cwg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("%s: item %d delivered %d times", f.Name, i+1, n)
		}
	}
}
