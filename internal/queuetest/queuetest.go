// Package queuetest provides reusable conformance tests for every
// queue implementation behind the internal/queue interface: FIFO order
// under a single thread, exactly-once delivery under concurrency, and
// per-producer order preservation. Each queue package's _test file
// instantiates these against its own factory.
package queuetest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ffq/internal/linearizability"
	"ffq/internal/queue"
)

// Options tunes the conformance run for a queue's properties.
type Options struct {
	// Producers and Consumers bound the concurrency (some queues are
	// single-producer or single-consumer).
	Producers, Consumers int
	// ItemsPerProducer is the number of items each producer sends.
	ItemsPerProducer int
	// Capacity passed to the factory.
	Capacity int
	// Blocking marks queues whose Dequeue blocks on empty instead of
	// returning ok=false (the FFQ family: a reserved rank cannot be
	// abandoned). Such queues must never be polled when provably
	// empty, so the kit claims a ticket before every dequeue.
	Blocking bool
}

// DefaultOptions is a moderate stress configuration.
func DefaultOptions() Options {
	return Options{Producers: 4, Consumers: 4, ItemsPerProducer: 5000, Capacity: 256}
}

// Sequential checks strict FIFO order single-threaded, including
// several wrap-arounds of bounded queues.
func Sequential(t *testing.T, f queue.Factory, opts Options) {
	t.Helper()
	const capacity = 16
	shared := f.New(capacity, 1)
	q := shared.Register()
	next := uint64(1)
	expect := uint64(1)
	for round := 0; round < 10; round++ {
		for i := 0; i < capacity; i++ {
			q.Enqueue(next)
			next++
		}
		for i := 0; i < capacity; i++ {
			v, ok := dequeueRetry(q)
			if !ok {
				t.Fatalf("%s: queue empty with %d items outstanding", f.Name, capacity-i)
			}
			if v != expect {
				t.Fatalf("%s: got %d, want %d", f.Name, v, expect)
			}
			expect++
		}
	}
	if !opts.Blocking {
		if v, ok := q.Dequeue(); ok {
			t.Fatalf("%s: drained queue returned %d", f.Name, v)
		}
	}
}

// Concurrent checks exactly-once delivery and per-producer FIFO order
// under opts' concurrency. Values are producer*Items+seq+1. Consumers
// claim tickets so that exactly as many dequeues are attempted as
// items exist; this keeps blocking queues from wedging on the last
// item.
func Concurrent(t *testing.T, f queue.Factory, opts Options) {
	t.Helper()
	total := int64(opts.Producers * opts.ItemsPerProducer)
	shared := f.New(opts.Capacity, opts.Producers+opts.Consumers)
	got := make([]atomic.Int32, total)
	var tickets atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < opts.Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			q := shared.Register()
			base := uint64(p * opts.ItemsPerProducer)
			for i := 0; i < opts.ItemsPerProducer; i++ {
				q.Enqueue(base + uint64(i) + 1)
			}
		}(p)
	}
	for c := 0; c < opts.Consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := shared.Register()
			lastSeen := make([]int64, opts.Producers)
			for i := range lastSeen {
				lastSeen[i] = -1
			}
			for tickets.Add(1) <= total {
				v, ok := q.Dequeue()
				for !ok {
					runtime.Gosched() // empty observation; let producers run
					v, ok = q.Dequeue()
				}
				v--
				p := int(v) / opts.ItemsPerProducer
				seq := int64(v) % int64(opts.ItemsPerProducer)
				if p < 0 || p >= opts.Producers {
					t.Errorf("%s: bogus value %d", f.Name, v+1)
					return
				}
				if seq <= lastSeen[p] {
					t.Errorf("%s: producer %d order violated: %d after %d", f.Name, p, seq, lastSeen[p])
					return
				}
				lastSeen[p] = seq
				got[v].Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("%s: item %d delivered %d times", f.Name, i+1, n)
		}
	}
}

// UnboundedGrowth checks behaviour only an unbounded queue can have:
// it absorbs a burst of many times the capacity hint with no consumer
// running at all (a bounded queue would block or refuse), and then
// delivers every item in FIFO order. With the capacity hint set to a
// segmented queue's segment size, the burst forces dozens of segment
// links and the drain forces the matching retirements, so running
// this under -race also exercises the reclamation path
// single-threaded end to end.
func UnboundedGrowth(t *testing.T, f queue.Factory, opts Options) {
	t.Helper()
	if f.Bounded {
		t.Fatalf("%s: UnboundedGrowth called for a bounded queue", f.Name)
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = 16
	}
	total := uint64(64 * capacity)
	shared := f.New(capacity, 2)
	q := shared.Register()
	for v := uint64(1); v <= total; v++ {
		q.Enqueue(v)
	}
	for v := uint64(1); v <= total; v++ {
		got, ok := dequeueRetry(q)
		if !ok {
			t.Fatalf("%s: empty with %d items outstanding", f.Name, total-v+1)
		}
		if got != v {
			t.Fatalf("%s: got %d, want %d", f.Name, got, v)
		}
	}
	if !opts.Blocking {
		if v, ok := q.Dequeue(); ok {
			t.Fatalf("%s: drained queue returned %d", f.Name, v)
		}
	}
}

// EmptyBehaviour checks that a fresh non-blocking queue reports empty
// and still works afterwards. Do not call it for Blocking queues.
func EmptyBehaviour(t *testing.T, f queue.Factory) {
	t.Helper()
	shared := f.New(16, 1)
	q := shared.Register()
	if v, ok := q.Dequeue(); ok {
		t.Fatalf("%s: empty queue returned %d", f.Name, v)
	}
	q.Enqueue(9)
	if v, ok := dequeueRetry(q); !ok || v != 9 {
		t.Fatalf("%s: got %d,%v after empty poll", f.Name, v, ok)
	}
}

// TryDequeuer is the optional non-blocking poll a queue adapter may
// expose next to Dequeue. The contract: ok=false means nothing was
// ready and nothing was reserved — the queue must behave as if the
// call never happened.
type TryDequeuer interface {
	TryDequeue() (uint64, bool)
}

// TryDequeue checks the non-blocking poll contract: empty polls return
// false without reserving anything (the queue still delivers in order
// afterwards), and a concurrent workload drained entirely through
// TryDequeue still sees exactly-once delivery and per-producer FIFO
// order. The factory's queues must implement TryDequeuer.
func TryDequeue(t *testing.T, f queue.Factory, opts Options) {
	t.Helper()

	// Phase 1: empty polls burn nothing, even interleaved with traffic.
	shared := f.New(16, 1)
	q := shared.Register()
	td, ok := q.(TryDequeuer)
	if !ok {
		t.Fatalf("%s: adapter does not implement TryDequeue", f.Name)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			if v, ok := td.TryDequeue(); ok {
				t.Fatalf("%s: empty TryDequeue returned %d", f.Name, v)
			}
		}
		lo, hi := uint64(round*2+1), uint64(round*2+2)
		q.Enqueue(lo)
		q.Enqueue(hi)
		for _, want := range []uint64{lo, hi} {
			v, ok := tryDequeueRetry(td)
			if !ok {
				t.Fatalf("%s: TryDequeue empty with %d queued", f.Name, want)
			}
			if v != want {
				t.Fatalf("%s: TryDequeue got %d, want %d", f.Name, v, want)
			}
		}
	}

	// Phase 2: concurrent drain through TryDequeue only. Consumers poll
	// until the shared consumption count covers every produced item, so
	// false returns (empty observations) are part of normal operation.
	total := int64(opts.Producers * opts.ItemsPerProducer)
	shared = f.New(opts.Capacity, opts.Producers+opts.Consumers)
	got := make([]atomic.Int32, total)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < opts.Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			q := shared.Register()
			base := uint64(p * opts.ItemsPerProducer)
			for i := 0; i < opts.ItemsPerProducer; i++ {
				q.Enqueue(base + uint64(i) + 1)
			}
		}(p)
	}
	for c := 0; c < opts.Consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			td := shared.Register().(TryDequeuer)
			lastSeen := make([]int64, opts.Producers)
			for i := range lastSeen {
				lastSeen[i] = -1
			}
			for consumed.Load() < total {
				v, ok := td.TryDequeue()
				if !ok {
					runtime.Gosched() // empty observation; let producers run
					continue
				}
				consumed.Add(1)
				v--
				p := int(v) / opts.ItemsPerProducer
				seq := int64(v) % int64(opts.ItemsPerProducer)
				if p < 0 || p >= opts.Producers {
					t.Errorf("%s: bogus value %d", f.Name, v+1)
					return
				}
				if seq <= lastSeen[p] {
					t.Errorf("%s: producer %d order violated: %d after %d", f.Name, p, seq, lastSeen[p])
					return
				}
				lastSeen[p] = seq
				got[v].Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("%s: item %d delivered %d times through TryDequeue", f.Name, i+1, n)
		}
	}
}

// tryDequeueRetry retries empty TryDequeue observations a bounded
// number of times (single-threaded callers settle immediately; the
// bound only guards against a broken implementation wedging the test).
func tryDequeueRetry(td TryDequeuer) (uint64, bool) {
	for i := 0; i < 1000; i++ {
		if v, ok := td.TryDequeue(); ok {
			return v, true
		}
	}
	return 0, false
}

// dequeueRetry retries empty observations a bounded number of times
// (single-threaded callers should never need many; helping-based
// queues settle within a few).
func dequeueRetry(q queue.Queue) (uint64, bool) {
	for i := 0; i < 1000; i++ {
		if v, ok := q.Dequeue(); ok {
			return v, true
		}
	}
	return 0, false
}

// Linearizable records small concurrent histories of the queue and
// verifies each against the sequential FIFO specification (the
// testing-side counterpart of the paper's Proposition 3). rounds
// windows of (2 producers x 3 ops, 2 consumers x 3 ops) keep the
// checker's search tractable while still interleaving heavily.
func Linearizable(t *testing.T, f queue.Factory, opts Options, rounds int) {
	t.Helper()
	producers, consumers := 2, 2
	if opts.Producers < producers {
		producers = opts.Producers
	}
	if opts.Consumers < consumers {
		consumers = opts.Consumers
	}
	const opsPerWorker = 3
	for r := 0; r < rounds; r++ {
		shared := f.New(64, producers+consumers)
		var rec linearizability.Recorder
		var sessions []*linearizability.Session
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			s := rec.NewSession()
			sessions = append(sessions, s)
			wg.Add(1)
			go func(p int, s *linearizability.Session) {
				defer wg.Done()
				q := shared.Register()
				for i := 0; i < opsPerWorker; i++ {
					v := uint64(p*opsPerWorker + i + 1)
					st := s.Begin()
					q.Enqueue(v)
					s.EndEnqueue(st, v)
				}
			}(p, s)
		}
		total := int64(producers * opsPerWorker)
		var tickets atomic.Int64
		for c := 0; c < consumers; c++ {
			s := rec.NewSession()
			sessions = append(sessions, s)
			wg.Add(1)
			go func(s *linearizability.Session) {
				defer wg.Done()
				q := shared.Register()
				for tickets.Add(1) <= total {
					st := s.Begin()
					v, ok := q.Dequeue()
					if !ok && opts.Blocking {
						t.Error("blocking queue reported empty")
						return
					}
					for !ok {
						// Record the empty observation, then retry
						// with a fresh interval.
						s.EndDequeue(st, 0, false)
						runtime.Gosched()
						st = s.Begin()
						v, ok = q.Dequeue()
					}
					s.EndDequeue(st, v, true)
				}
			}(s)
		}
		wg.Wait()
		h := linearizability.Merge(sessions...)
		if len(h) > linearizability.MaxOps {
			// An empty-retry storm blew past the checker's size cap;
			// dropping ops would be unsound, so skip this round.
			continue
		}
		ok, err := linearizability.CheckFIFO(h)
		if err != nil {
			t.Fatalf("%s: round %d: %v", f.Name, r, err)
		}
		if !ok {
			t.Fatalf("%s: round %d produced a non-linearizable history:\n%v", f.Name, r, h)
		}
	}
}
