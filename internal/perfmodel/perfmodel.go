// Package perfmodel reproduces the paper's cache-locality study
// (Section V-D, Figures 4-6) by simulation: it replays the memory
// access pattern of one FFQ producer/consumer pair — submission queue
// one way, response queue the other, exactly the microbenchmark of
// Section V-A — against the cache hierarchy of internal/cachesim, and
// derives the metrics the paper reads from Intel PCM: IPC, L2/L3 hit
// ratios, L3 misses, and memory bandwidth.
//
// This is substitution #3 of DESIGN.md: the real experiment needs
// model-specific registers; the simulation preserves the *shapes* the
// paper reports — hit ratios that climb with queue size and collapse
// once the working set spills out of L3, bandwidth exploding past that
// knee, and the crossovers between the thread-placement policies.
//
// The thread-placement policies map onto the simulation as:
//
//   - OtherCore / NoAffinity: producer and consumer run concurrently
//     on different simulated cores; every handoff of a cell line is a
//     coherence transfer. (The paper observes these two behave alike
//     because Linux spreads runnable threads across cores.)
//   - SiblingHT: both agents on one core, sharing its L1/L2, running
//     concurrently but paying an SMT issue-sharing penalty on
//     instruction throughput.
//   - SameHT: both agents time-share one hardware thread; execution
//     alternates in batches (the producer runs until the queue fills,
//     then the consumer drains it) with a context-switch cost per
//     swap. This is what an OS actually does with two runnable threads
//     on one CPU, and it is why large queues help this policy: fewer,
//     longer batches.
package perfmodel

import (
	"fmt"

	"ffq/internal/affinity"
	"ffq/internal/cachesim"
)

// Config parameterizes one simulated run.
type Config struct {
	// QueueEntries is the FFQ capacity (cells per direction).
	QueueEntries int
	// CellBytes is the in-memory footprint per cell (64 = the paper's
	// cache-aligned cells).
	CellBytes int
	// Items is the number of round-trips to simulate.
	Items int
	// Policy is the thread-placement policy under study.
	Policy affinity.Policy
	// Cache is the simulated hierarchy (SkylakeConfig() when zero).
	Cache cachesim.Config
	// FreqGHz converts cycles to seconds (Skylake: 3.6).
	FreqGHz float64
	// ProducerInstr/ConsumerInstr are the non-memory instruction counts
	// per operation (enqueue+response-poll / dequeue+response-write).
	ProducerInstr, ConsumerInstr int
	// BaseCPI is cycles per instruction apart from memory stalls.
	BaseCPI float64
	// SMTPenalty multiplies instruction cycles when two hardware
	// threads share a core (SiblingHT).
	SMTPenalty float64
	// SwitchCycles is the context-switch cost for SameHT batching.
	SwitchCycles int
}

// DefaultConfig returns Skylake-like parameters.
func DefaultConfig() Config {
	return Config{
		QueueEntries:  1 << 12,
		CellBytes:     64,
		Items:         200_000,
		Policy:        affinity.NoAffinity,
		Cache:         cachesim.SkylakeConfig(),
		FreqGHz:       3.6,
		ProducerInstr: 24,
		ConsumerInstr: 24,
		BaseCPI:       0.35,
		SMTPenalty:    1.45,
		SwitchCycles:  4000,
	}
}

// Result carries the derived counters for one run.
type Result struct {
	// ThroughputMops is completed round-trips per second, in millions.
	ThroughputMops float64
	// IPC is instructions per cycle over the busy agent(s).
	IPC float64
	// L2HitRatio and L3HitRatio follow the paper's definitions
	// (hits at the level / accesses reaching the level).
	L2HitRatio, L3HitRatio float64
	// L3Misses is the absolute number of L3 misses.
	L3Misses uint64
	// MemBandwidthGBs is DRAM traffic in GB/s.
	MemBandwidthGBs float64
	// Cycles is the simulated wall time in cycles.
	Cycles float64
	// Cache is the raw hierarchy counter snapshot.
	Cache cachesim.Stats
}

// agent is one simulated thread.
type agent struct {
	core  int
	time  float64 // virtual cycles
	instr uint64
}

// Run simulates the configured producer/consumer pair.
func Run(cfg Config) (Result, error) {
	if cfg.QueueEntries < 2 {
		return Result{}, fmt.Errorf("perfmodel: queue of %d entries", cfg.QueueEntries)
	}
	if cfg.Cache.Cores == 0 {
		cfg.Cache = cachesim.SkylakeConfig()
	}
	if cfg.FreqGHz == 0 {
		def := DefaultConfig()
		cfg.FreqGHz = def.FreqGHz
		cfg.ProducerInstr = def.ProducerInstr
		cfg.ConsumerInstr = def.ConsumerInstr
		cfg.BaseCPI = def.BaseCPI
		cfg.SMTPenalty = def.SMTPenalty
		cfg.SwitchCycles = def.SwitchCycles
	}
	h, err := cachesim.New(cfg.Cache)
	if err != nil {
		return Result{}, err
	}

	n := uint64(cfg.QueueEntries)
	cell := uint64(cfg.CellBytes)
	subBase := uint64(1) << 30  // arbitrary, line-aligned
	respBase := uint64(3) << 30 // disjoint region for the response queue

	prodCore, consCore := 0, 1
	smt := 1.0
	switch cfg.Policy {
	case affinity.SiblingHT:
		prodCore, consCore = 0, 0
		smt = cfg.SMTPenalty
	case affinity.SameHT:
		prodCore, consCore = 0, 0
	case affinity.OtherCore, affinity.NoAffinity:
		if cfg.Cache.Cores < 2 {
			return Result{}, fmt.Errorf("perfmodel: %v needs >= 2 simulated cores", cfg.Policy)
		}
	}

	prod := &agent{core: prodCore}
	cons := &agent{core: consCore}

	// producerOp: enqueue item i (write data+rank into the submission
	// cell, one rank re-read) and poll the response cell of an earlier
	// item (read rank+data, write rank reset).
	producerOp := func(i uint64) {
		addr := subBase + (i%n)*cell
		_, c1 := h.Access(prod.core, addr, false) // check cell free
		_, c2 := h.Access(prod.core, addr, true)  // data + rank stores
		cost := float64(c1 + c2)
		raddr := respBase + (i%n)*cell
		_, c3 := h.Access(prod.core, raddr, false) // poll response rank
		_, c4 := h.Access(prod.core, raddr, true)  // consume + reset
		cost += float64(c3 + c4)
		cost += float64(cfg.ProducerInstr) * cfg.BaseCPI * smt
		prod.time += cost
		prod.instr += uint64(cfg.ProducerInstr) + 4
	}
	// consumerOp: dequeue item i (read rank+data, write rank reset)
	// and write the response (write data+rank).
	consumerOp := func(i uint64) {
		addr := subBase + (i%n)*cell
		_, c1 := h.Access(cons.core, addr, false) // rank + data load
		_, c2 := h.Access(cons.core, addr, true)  // rank reset
		cost := float64(c1 + c2)
		raddr := respBase + (i%n)*cell
		_, c3 := h.Access(cons.core, raddr, true) // response store
		cost += float64(c3)
		cost += float64(cfg.ConsumerInstr) * cfg.BaseCPI * smt
		cons.time += cost
		cons.instr += uint64(cfg.ConsumerInstr) + 3
	}

	items := uint64(cfg.Items)
	var produced, consumed uint64

	// sim advances the simulation until `target` round-trips have
	// completed, preserving cache and queue state across calls.
	sim := func(target uint64) {
		if cfg.Policy == affinity.SameHT {
			// Batched time multiplexing on one hardware thread.
			now := prod.time
			if cons.time > now {
				now = cons.time
			}
			for consumed < target {
				// Producer batch: fill the queue (or finish).
				batch := n - (produced - consumed)
				if target-produced < batch {
					batch = target - produced
				}
				prod.time = now
				for k := uint64(0); k < batch; k++ {
					producerOp(produced)
					produced++
				}
				now = prod.time + float64(cfg.SwitchCycles)
				// Consumer batch: drain everything produced so far.
				cons.time = now
				for consumed < produced {
					consumerOp(consumed)
					consumed++
				}
				now = cons.time + float64(cfg.SwitchCycles)
			}
			prod.time, cons.time = now, now
			return
		}
		// Concurrent agents: interleave by virtual time, with queue
		// fullness/emptiness stalls.
		for consumed < target {
			inflight := produced - consumed
			canProduce := produced < target && inflight < n
			canConsume := inflight > 0
			switch {
			case canProduce && (!canConsume || prod.time <= cons.time):
				producerOp(produced)
				produced++
			case canConsume:
				if cons.time < prod.time && produced == consumed+1 {
					// The item it needs was just published; it cannot
					// be consumed before its production finished.
					cons.time = prod.time
				}
				consumerOp(consumed)
				consumed++
			default:
				// Queue empty and producer ahead in time: consumer
				// stalls until the producer catches up.
				cons.time = prod.time
			}
		}
	}

	// Warm up for one queue lap (bounded by the workload size) so the
	// measured phase reflects steady state, as hardware counters
	// sampled mid-run would; then reset every counter.
	warm := n
	if warm > items {
		warm = items
	}
	sim(warm)
	h.ResetStats()
	prod.time, prod.instr = 0, 0
	cons.time, cons.instr = 0, 0
	sim(warm + items)

	wallCycles := prod.time
	if cons.time > wallCycles {
		wallCycles = cons.time
	}

	st := h.Stats()
	seconds := wallCycles / (cfg.FreqGHz * 1e9)
	res := Result{
		L2HitRatio: st.L2Ratio(),
		L3HitRatio: st.L3Ratio(),
		L3Misses:   st.MemFills,
		Cycles:     wallCycles,
		Cache:      st,
	}
	// A level that no access ever reached never missed: report its hit
	// ratio as 1 (SiblingHT/SameHT serve everything from private
	// caches once warm).
	if st.Accesses-st.L1Hits == 0 {
		res.L2HitRatio = 1
	}
	if st.Accesses-st.L1Hits-st.L2Hits == 0 {
		res.L3HitRatio = 1
	}
	if seconds > 0 {
		res.ThroughputMops = float64(items) / seconds / 1e6
		res.MemBandwidthGBs = float64(st.MemBytes()) / seconds / 1e9
	}
	if wallCycles > 0 {
		res.IPC = float64(prod.instr+cons.instr) / wallCycles
	}
	return res, nil
}
