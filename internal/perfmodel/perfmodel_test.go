package perfmodel

import (
	"testing"

	"ffq/internal/affinity"
)

func cfgWith(policy affinity.Policy, entries, items int) Config {
	c := DefaultConfig()
	c.Policy = policy
	c.QueueEntries = entries
	c.Items = items
	return c
}

func TestValidation(t *testing.T) {
	if _, err := Run(cfgWith(affinity.NoAffinity, 1, 10)); err == nil {
		t.Error("queue of 1 entry accepted")
	}
	bad := cfgWith(affinity.OtherCore, 64, 10)
	bad.Cache.Cores = 1
	if _, err := Run(bad); err == nil {
		t.Error("other-core with one simulated core accepted")
	}
}

func TestRunProducesSaneNumbers(t *testing.T) {
	for _, p := range affinity.Policies {
		res, err := Run(cfgWith(p, 1<<10, 50_000))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.ThroughputMops <= 0 {
			t.Errorf("%v: throughput %v", p, res.ThroughputMops)
		}
		if res.IPC <= 0 || res.IPC > 8 {
			t.Errorf("%v: IPC %v", p, res.IPC)
		}
		if res.L2HitRatio < 0 || res.L2HitRatio > 1 || res.L3HitRatio < 0 || res.L3HitRatio > 1 {
			t.Errorf("%v: hit ratios %v %v", p, res.L2HitRatio, res.L3HitRatio)
		}
		if res.Cycles <= 0 {
			t.Errorf("%v: cycles %v", p, res.Cycles)
		}
	}
}

// The headline shape of Figure 5: once the two queues' working set
// exceeds the simulated L3, the L3 hit ratio collapses and memory
// bandwidth rises.
func TestL3KneeShape(t *testing.T) {
	small, err := Run(cfgWith(affinity.NoAffinity, 1<<12, 100_000)) // 2*4k*64B = 512 KiB
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(cfgWith(affinity.NoAffinity, 1<<18, 300_000)) // 2*256k*64B = 32 MiB >> 8 MiB L3
	if err != nil {
		t.Fatal(err)
	}
	if big.L3HitRatio >= small.L3HitRatio {
		t.Errorf("L3 ratio did not collapse past capacity: small=%.3f big=%.3f",
			small.L3HitRatio, big.L3HitRatio)
	}
	if big.MemBandwidthGBs <= small.MemBandwidthGBs {
		t.Errorf("memory bandwidth did not rise past capacity: small=%.3f big=%.3f",
			small.MemBandwidthGBs, big.MemBandwidthGBs)
	}
	if big.L3Misses <= small.L3Misses {
		t.Errorf("L3 misses did not rise: small=%d big=%d", small.L3Misses, big.L3Misses)
	}
}

// SiblingHT shares L1/L2, so for cache-resident queues it must show a
// better private hit profile than OtherCore, which pays a coherence
// transfer per line handoff.
func TestSiblingBeatsOtherCoreOnHits(t *testing.T) {
	sib, err := Run(cfgWith(affinity.SiblingHT, 1<<10, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	other, err := Run(cfgWith(affinity.OtherCore, 1<<10, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	sibPrivate := sib.Cache.L1Ratio()
	otherPrivate := other.Cache.L1Ratio()
	if sibPrivate <= otherPrivate {
		t.Errorf("sibling L1 ratio %.3f <= other-core %.3f", sibPrivate, otherPrivate)
	}
	if other.Cache.Transfers == 0 {
		t.Error("other-core produced no coherence transfers")
	}
}

// SameHT batching means the producer fills the whole queue before the
// consumer runs: with a queue far beyond L3 capacity, SameHT must be
// hurt more than SiblingHT (every batched line is evicted before its
// consumer arrives), matching Figure 6's large-size behaviour.
func TestSameHTLargeQueuePenalty(t *testing.T) {
	const entries = 1 << 18 // 32 MiB working set
	same, err := Run(cfgWith(affinity.SameHT, entries, 200_000))
	if err != nil {
		t.Fatal(err)
	}
	sib, err := Run(cfgWith(affinity.SiblingHT, entries, 200_000))
	if err != nil {
		t.Fatal(err)
	}
	if same.ThroughputMops >= sib.ThroughputMops {
		t.Errorf("sameHT %.2f Mops >= siblingHT %.2f Mops at 2^18 entries",
			same.ThroughputMops, sib.ThroughputMops)
	}
}

// NoAffinity and OtherCore must behave identically in the model (the
// paper observes "almost the same behaviour").
func TestNoAffinityMatchesOtherCore(t *testing.T) {
	a, err := Run(cfgWith(affinity.NoAffinity, 1<<12, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfgWith(affinity.OtherCore, 1<<12, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	if a.ThroughputMops != b.ThroughputMops {
		t.Errorf("no-affinity %.3f != other-core %.3f", a.ThroughputMops, b.ThroughputMops)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	res, err := Run(Config{QueueEntries: 256, CellBytes: 64, Items: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMops <= 0 {
		t.Error("defaults produced no throughput")
	}
}
