// Package vyukov implements Dmitry Vyukov's bounded MPMC queue
// (1024cores.net), the "external MPMC queue" the paper's application
// benchmark compares FFQ against (Section V-F, footnote 8).
//
// Each cell carries a sequence number; a producer may write cell i on
// lap k when seq == i + k*N, a consumer may read it when seq is one
// ahead. Producers and consumers each do one fetch-and-add-like CAS on
// their own counter, so the queue is fast but, unlike FFQ, a stalled
// thread that has claimed a cell blocks the counterpart side when the
// queue wraps to that cell.
package vyukov

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ffq/internal/spin"
)

type cell struct {
	seq  atomic.Uint64
	data uint64
	_    [48]byte // one cell per cache line, as in the reference code
}

// Queue is a bounded multi-producer/multi-consumer FIFO queue.
type Queue struct {
	mask  uint64
	cells []cell
	_     [64]byte
	enq   atomic.Uint64
	_     [64]byte
	deq   atomic.Uint64
	_     [64]byte
}

// New returns a queue with the given power-of-two capacity.
func New(capacity int) (*Queue, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("vyukov: capacity %d is not a power of two >= 2", capacity)
	}
	q := &Queue{mask: uint64(capacity - 1), cells: make([]cell, capacity)}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q, nil
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.cells) }

// TryEnqueue inserts v, reporting false if the queue is full.
func (q *Queue) TryEnqueue(v uint64) bool {
	pos := q.enq.Load()
	for spins := 0; ; spins++ {
		spin.RetryYield(spins)
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if q.enq.CompareAndSwap(pos, pos+1) {
				c.data = v
				c.seq.Store(pos + 1)
				return true
			}
			pos = q.enq.Load()
		case diff < 0:
			return false // full
		default:
			pos = q.enq.Load()
		}
	}
}

// TryDequeue removes the head item, reporting false if the queue is
// empty.
func (q *Queue) TryDequeue() (uint64, bool) {
	pos := q.deq.Load()
	for spins := 0; ; spins++ {
		spin.RetryYield(spins)
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if q.deq.CompareAndSwap(pos, pos+1) {
				v := c.data
				c.seq.Store(pos + q.mask + 1)
				return v, true
			}
			pos = q.deq.Load()
		case diff < 0:
			return 0, false // empty
		default:
			pos = q.deq.Load()
		}
	}
}

// Enqueue inserts v, spinning (and yielding) while the queue is full.
func (q *Queue) Enqueue(v uint64) {
	for spins := 0; !q.TryEnqueue(v); spins++ {
		if spins >= 16 {
			runtime.Gosched() // full: let consumers drain
		}
	}
}

// Dequeue removes the head item; ok=false if the queue was observed
// empty (callers retry).
func (q *Queue) Dequeue() (uint64, bool) {
	return q.TryDequeue()
}
