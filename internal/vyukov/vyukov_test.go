package vyukov_test

import (
	"testing"

	"ffq/internal/queue"
	"ffq/internal/queuetest"
	"ffq/internal/vyukov"
)

func factory() queue.Factory {
	return queue.Factory{
		Name: "vyukov",
		New: func(capacity, _ int) queue.Shared {
			q, err := vyukov.New(capacity)
			if err != nil {
				panic(err)
			}
			return queue.SelfRegistering{Q: adapter{q}}
		},
	}
}

type adapter struct{ q *vyukov.Queue }

func (a adapter) Enqueue(v uint64)        { a.q.Enqueue(v) }
func (a adapter) Dequeue() (uint64, bool) { return a.q.Dequeue() }

func TestValidation(t *testing.T) {
	for _, c := range []int{0, 1, 3, 100} {
		if _, err := vyukov.New(c); err == nil {
			t.Errorf("capacity %d accepted", c)
		}
	}
	q, err := vyukov.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 64 {
		t.Errorf("Cap = %d", q.Cap())
	}
}

func TestSequential(t *testing.T) {
	queuetest.Sequential(t, factory(), queuetest.DefaultOptions())
}

func TestEmpty(t *testing.T) {
	queuetest.EmptyBehaviour(t, factory())
}

func TestFull(t *testing.T) {
	q, _ := vyukov.New(4)
	for i := uint64(1); i <= 4; i++ {
		if !q.TryEnqueue(i) {
			t.Fatalf("TryEnqueue(%d) failed below capacity", i)
		}
	}
	if q.TryEnqueue(5) {
		t.Fatal("TryEnqueue succeeded on full queue")
	}
	if v, ok := q.TryDequeue(); !ok || v != 1 {
		t.Fatalf("got %d,%v", v, ok)
	}
	if !q.TryEnqueue(5) {
		t.Fatal("TryEnqueue failed after freeing a slot")
	}
}

func TestConcurrent(t *testing.T) {
	queuetest.Concurrent(t, factory(), queuetest.DefaultOptions())
}

func TestConcurrentTinyCapacity(t *testing.T) {
	opts := queuetest.DefaultOptions()
	opts.Capacity = 4
	opts.ItemsPerProducer = 2000
	queuetest.Concurrent(t, factory(), opts)
}
