package spscqueues

import "sync/atomic"

// Lamport is the classic single-producer/single-consumer ring buffer
// of Lamport [11]: a bounded array with shared, monotonically
// increasing head and tail counters. Correct without any
// read-modify-write operations, but every operation reads the other
// side's counter, so the two control cache lines ping-pong between
// the producer's and consumer's cores — the cost every later design
// in this package exists to remove.
type Lamport struct {
	mask uint64
	buf  []uint64
	_    [64]byte
	head atomic.Uint64 // consumer-owned
	_    [64]byte
	tail atomic.Uint64 // producer-owned
	_    [64]byte
}

// NewLamport returns a ring with the given power-of-two capacity.
func NewLamport(capacity int) (*Lamport, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	return &Lamport{mask: uint64(capacity - 1), buf: make([]uint64, capacity)}, nil
}

// Cap returns the capacity.
func (q *Lamport) Cap() int { return len(q.buf) }

// TryEnqueue inserts v, reporting false when full. Producer only.
func (q *Lamport) TryEnqueue(v uint64) bool {
	t := q.tail.Load()
	if t-q.head.Load() > q.mask {
		return false
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1) // release: publishes buf[t]
	return true
}

// Enqueue inserts v, spinning while full. Producer only.
func (q *Lamport) Enqueue(v uint64) {
	for spins := 0; !q.TryEnqueue(v); spins++ {
		spinWait(spins)
	}
}

// Dequeue removes the head item. Consumer only.
func (q *Lamport) Dequeue() (uint64, bool) {
	h := q.head.Load()
	if h == q.tail.Load() {
		return 0, false
	}
	v := q.buf[h&q.mask]
	q.head.Store(h + 1)
	return v, true
}

// Flush is a no-op: Lamport's ring publishes on every enqueue.
func (q *Lamport) Flush() {}
