package spscqueues

import "ffq/internal/core"

// FFQAdapter exposes the FFQ SPSC variant through this package's
// streaming interface, so the lineage comparison includes the paper's
// own design.
type FFQAdapter struct {
	q *core.SPSC[uint64]
}

// NewFFQAdapter returns an adapter over a padded-layout FFQ SPSC
// queue.
func NewFFQAdapter(capacity int) (*FFQAdapter, error) {
	q, err := core.NewSPSC[uint64](capacity, core.WithLayout(core.LayoutPadded))
	if err != nil {
		return nil, err
	}
	return &FFQAdapter{q: q}, nil
}

// Cap returns the capacity.
func (a *FFQAdapter) Cap() int { return a.q.Cap() }

// TryEnqueue inserts v if the tail cell is free. Producer only.
func (a *FFQAdapter) TryEnqueue(v uint64) bool { return a.q.TryEnqueue(v) }

// Enqueue inserts v, spinning while the queue is full. Producer only.
func (a *FFQAdapter) Enqueue(v uint64) { a.q.Enqueue(v) }

// Dequeue removes the head item; ok=false when empty. Consumer only.
func (a *FFQAdapter) Dequeue() (uint64, bool) { return a.q.TryDequeue() }

// Flush is a no-op: FFQ publishes on every enqueue.
func (a *FFQAdapter) Flush() {}
