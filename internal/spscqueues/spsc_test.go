package spscqueues

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegistry(t *testing.T) {
	fs := Factories()
	if len(fs) != 7 {
		t.Fatalf("registry has %d entries", len(fs))
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if f.Name == "" || f.Brief == "" || f.New == nil {
			t.Errorf("incomplete factory %+v", f)
		}
		if seen[f.Name] {
			t.Errorf("duplicate %q", f.Name)
		}
		seen[f.Name] = true
	}
	if _, err := ByName("lamport"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCapacityValidation(t *testing.T) {
	for _, f := range Factories() {
		for _, c := range []int{0, 1, 3, 100} {
			if _, err := f.New(c); err == nil {
				t.Errorf("%s: capacity %d accepted", f.Name, c)
			}
		}
		q, err := f.New(64)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if q.Cap() != 64 {
			t.Errorf("%s: Cap = %d", f.Name, q.Cap())
		}
	}
}

// Sequential FIFO with Flush at arbitrary points, across wraps.
func TestSequentialFIFO(t *testing.T) {
	for _, f := range Factories() {
		q, err := f.New(16)
		if err != nil {
			t.Fatal(err)
		}
		next, expect := uint64(0), uint64(0)
		for round := 0; round < 20; round++ {
			n := (round % 7) + 1
			for i := 0; i < n; i++ {
				q.Enqueue(next)
				next++
			}
			q.Flush()
			for i := 0; i < n; i++ {
				v, ok := q.Dequeue()
				if !ok {
					t.Fatalf("%s: empty with %d outstanding", f.Name, n-i)
				}
				if v != expect {
					t.Fatalf("%s: got %d, want %d", f.Name, v, expect)
				}
				expect++
			}
			if _, ok := q.Dequeue(); ok {
				t.Fatalf("%s: phantom item after drain", f.Name)
			}
		}
	}
}

// Full-queue behaviour: TryEnqueue must eventually report false and
// recover after a drain.
func TestFullness(t *testing.T) {
	for _, f := range Factories() {
		q, err := f.New(16)
		if err != nil {
			t.Fatal(err)
		}
		inserted := 0
		for i := 0; i < 64; i++ {
			if !q.TryEnqueue(uint64(i)) {
				break
			}
			inserted++
		}
		if inserted == 64 {
			t.Fatalf("%s: never reported full", f.Name)
		}
		if inserted == 0 {
			t.Fatalf("%s: could not insert into empty queue", f.Name)
		}
		q.Flush()
		for i := 0; i < inserted; i++ {
			v, ok := q.Dequeue()
			if !ok || v != uint64(i) {
				t.Fatalf("%s: item %d: got %d,%v", f.Name, i, v, ok)
			}
		}
		if !q.TryEnqueue(99) {
			t.Fatalf("%s: full after full drain", f.Name)
		}
	}
}

// Concurrent streaming transfer: every item arrives exactly once in
// order.
func TestConcurrentStream(t *testing.T) {
	const items = 200000
	for _, f := range Factories() {
		for _, capacity := range []int{4, 64, 4096} {
			q, err := f.New(capacity)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				expect := uint64(0)
				for expect < items {
					v, ok := q.Dequeue()
					if !ok {
						runtime.Gosched()
						continue
					}
					if v != expect {
						t.Errorf("%s cap=%d: got %d, want %d", f.Name, capacity, v, expect)
						return
					}
					expect++
				}
			}()
			for i := uint64(0); i < items; i++ {
				q.Enqueue(i)
			}
			q.Flush()
			wg.Wait()
		}
	}
}

// Property: any interleaving of try-enqueues/flushes/dequeues matches
// a model FIFO (single-threaded).
func TestModelProperty(t *testing.T) {
	for _, f := range Factories() {
		f := f
		prop := func(ops []uint8) bool {
			q, err := f.New(16)
			if err != nil {
				return false
			}
			var model []uint64
			visible := 0 // model items the consumer may see
			if !f.Batching {
				visible = -1 // everything visible immediately
			}
			next := uint64(1)
			for _, op := range ops {
				switch op % 4 {
				case 0, 1: // enqueue
					if q.TryEnqueue(next) {
						model = append(model, next)
						next++
					}
				case 2: // flush
					q.Flush()
					visible = len(model)
				case 3: // dequeue
					v, ok := q.Dequeue()
					if ok {
						if len(model) == 0 || model[0] != v {
							return false
						}
						model = model[1:]
						if visible > 0 {
							visible--
						}
					} else if !f.Batching && len(model) != 0 {
						return false // unbatched queues must deliver
					} else if f.Batching && visible > 0 {
						return false // flushed items must be visible
					}
				}
			}
			// Drain everything after a final flush.
			q.Flush()
			for _, want := range model {
				v, ok := q.Dequeue()
				if !ok || v != want {
					return false
				}
			}
			_, ok := q.Dequeue()
			return !ok
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestMCRingBatchClamp(t *testing.T) {
	q, err := NewMCRing(8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Batch clamped to capacity/2 = 4: after 4 enqueues items must be
	// visible without a flush.
	for i := uint64(0); i < 4; i++ {
		q.Enqueue(i)
	}
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("batch boundary did not publish")
	}
}

func TestBQueueBacktracking(t *testing.T) {
	q, err := NewBQueue(256) // batch = 64
	if err != nil {
		t.Fatal(err)
	}
	// A single item must be visible despite the 64-slot probe span.
	q.Enqueue(7)
	if v, ok := q.Dequeue(); !ok || v != 7 {
		t.Fatalf("got %d,%v", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("phantom item")
	}
}
