package spscqueues

import "sync/atomic"

// BatchQueue implements the two-section design of Preud'homme et al.
// [19]: the buffer is split into two halves; the producer fills one
// half privately and hands it to the consumer wholesale, then switches
// to the other half. Producer and consumer therefore never touch the
// same half concurrently (no false sharing by construction — the
// property the paper's Section II highlights), at the price of
// half-a-buffer visibility latency.
type BatchQueue struct {
	half int
	buf  []uint64

	// committed[h] = 0 while the producer owns half h, else the number
	// of items the consumer must drain from it.
	committed [2]atomic.Int64

	_     [64]byte
	pHalf int // producer-private
	pIdx  int
	_     [64]byte
	cHalf int // consumer-private
	cIdx  int
	_     [64]byte
}

// NewBatchQueue returns a queue with the given power-of-two capacity
// (split into two halves).
func NewBatchQueue(capacity int) (*BatchQueue, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	return &BatchQueue{half: capacity / 2, buf: make([]uint64, capacity)}, nil
}

// Cap returns the capacity.
func (q *BatchQueue) Cap() int { return len(q.buf) }

// TryEnqueue inserts v, reporting false when both halves are owned by
// the consumer. Producer only.
func (q *BatchQueue) TryEnqueue(v uint64) bool {
	if q.pIdx == 0 && q.committed[q.pHalf].Load() != 0 {
		return false // the consumer has not drained this half yet
	}
	q.buf[q.pHalf*q.half+q.pIdx] = v
	q.pIdx++
	if q.pIdx == q.half {
		q.committed[q.pHalf].Store(int64(q.half)) // hand over the half
		q.pHalf ^= 1
		q.pIdx = 0
	}
	return true
}

// Enqueue inserts v, spinning while both halves are full. Producer
// only.
func (q *BatchQueue) Enqueue(v uint64) {
	for spins := 0; !q.TryEnqueue(v); spins++ {
		spinWait(spins)
	}
}

// Dequeue removes the head item; ok=false when no committed half has
// items. Consumer only.
func (q *BatchQueue) Dequeue() (uint64, bool) {
	n := q.committed[q.cHalf].Load()
	if n == 0 {
		return 0, false
	}
	v := q.buf[q.cHalf*q.half+q.cIdx]
	q.cIdx++
	if int64(q.cIdx) == n {
		q.committed[q.cHalf].Store(0) // return the half to the producer
		q.cHalf ^= 1
		q.cIdx = 0
	}
	return v, true
}

// Flush commits the partially filled half so the consumer can see its
// items. Producer only.
func (q *BatchQueue) Flush() {
	if q.pIdx > 0 && q.committed[q.pHalf].Load() == 0 {
		q.committed[q.pHalf].Store(int64(q.pIdx))
		q.pHalf ^= 1
		q.pIdx = 0
	}
}
