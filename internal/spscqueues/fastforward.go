package spscqueues

import "sync/atomic"

// FastForward implements Giacomoni et al.'s queue [7]: the "empty"
// condition lives in the data slots themselves (an in-band marker),
// so producer and consumer never read each other's counter — the
// optimization FFQ's rank field generalizes to multiple consumers.
// The original also proposes "temporal slipping" to keep the two
// threads a cache line apart; slipping needs system-specific tuning
// (one of the paper's criticisms), so this port implements the core
// algorithm without it.
//
// Slot value 0 means empty; payloads are stored as v+1.
type FastForward struct {
	mask uint64
	buf  []atomic.Uint64
	_    [64]byte
	head uint64 // consumer-private
	_    [64]byte
	tail uint64 // producer-private
	_    [64]byte
}

// NewFastForward returns a queue with the given power-of-two capacity.
func NewFastForward(capacity int) (*FastForward, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	return &FastForward{mask: uint64(capacity - 1), buf: make([]atomic.Uint64, capacity)}, nil
}

// Cap returns the capacity.
func (q *FastForward) Cap() int { return len(q.buf) }

// TryEnqueue inserts v (< MaxUint64), reporting false when the next
// slot is still occupied. Producer only.
func (q *FastForward) TryEnqueue(v uint64) bool {
	s := &q.buf[q.tail&q.mask]
	if s.Load() != 0 {
		return false
	}
	s.Store(v + 1)
	q.tail++
	return true
}

// Enqueue inserts v, spinning while the slot is occupied. Producer
// only.
func (q *FastForward) Enqueue(v uint64) {
	for spins := 0; !q.TryEnqueue(v); spins++ {
		spinWait(spins)
	}
}

// Dequeue removes the head item. Consumer only.
func (q *FastForward) Dequeue() (uint64, bool) {
	s := &q.buf[q.head&q.mask]
	v := s.Load()
	if v == 0 {
		return 0, false
	}
	s.Store(0)
	q.head++
	return v - 1, true
}

// Flush is a no-op: every enqueue publishes its slot immediately.
func (q *FastForward) Flush() {}
