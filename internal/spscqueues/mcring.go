package spscqueues

import "sync/atomic"

// MCRing implements MCRingBuffer (Lee, Bu, Chandranmenon [13]):
// Lamport's ring with *batched* updates of the shared control
// variables. Each side works against a private copy of the other
// side's counter and refreshes it only when it runs out, and publishes
// its own counter only every batchSize operations — cutting the
// control-line coherence traffic by the batch factor. The price is
// visibility latency, which Flush bounds.
type MCRing struct {
	mask  uint64
	batch uint64
	buf   []uint64

	_     [64]byte
	read  atomic.Uint64 // shared: consumer's published position
	write atomic.Uint64 // shared: producer's published position

	_         [64]byte
	nextWrite uint64 // producer-private
	wBatch    uint64
	localRead uint64 // producer's cache of read

	_          [64]byte
	nextRead   uint64 // consumer-private
	rBatch     uint64
	localWrite uint64 // consumer's cache of write
	_          [64]byte
}

// DefaultMCRingBatch is the control-update batch size used when the
// caller passes 0 (the paper's evaluation uses sizes of this order).
const DefaultMCRingBatch = 32

// NewMCRing returns a queue with the given power-of-two capacity and
// control batch size (0 = DefaultMCRingBatch; clamped to capacity/2).
func NewMCRing(capacity int, batch int) (*MCRing, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	if batch <= 0 {
		batch = DefaultMCRingBatch
	}
	if batch > capacity/2 {
		batch = capacity / 2
	}
	return &MCRing{
		mask:  uint64(capacity - 1),
		batch: uint64(batch),
		buf:   make([]uint64, capacity),
	}, nil
}

// Cap returns the capacity.
func (q *MCRing) Cap() int { return len(q.buf) }

// TryEnqueue inserts v, reporting false when full. Producer only.
func (q *MCRing) TryEnqueue(v uint64) bool {
	if q.nextWrite-q.localRead > q.mask {
		q.localRead = q.read.Load() // refresh the cached counter
		if q.nextWrite-q.localRead > q.mask {
			return false
		}
	}
	q.buf[q.nextWrite&q.mask] = v
	q.nextWrite++
	q.wBatch++
	if q.wBatch >= q.batch {
		q.write.Store(q.nextWrite)
		q.wBatch = 0
	}
	return true
}

// Enqueue inserts v, flushing and spinning while full. Producer only.
func (q *MCRing) Enqueue(v uint64) {
	for spins := 0; !q.TryEnqueue(v); spins++ {
		q.Flush() // make room visible to the consumer
		spinWait(spins)
	}
}

// Dequeue removes the head item; ok=false when no published item is
// visible. Consumer only.
func (q *MCRing) Dequeue() (uint64, bool) {
	if q.nextRead == q.localWrite {
		q.localWrite = q.write.Load()
		if q.nextRead == q.localWrite {
			return 0, false
		}
	}
	v := q.buf[q.nextRead&q.mask]
	q.nextRead++
	q.rBatch++
	if q.rBatch >= q.batch {
		q.read.Store(q.nextRead)
		q.rBatch = 0
	}
	return v, true
}

// Flush publishes all enqueued items to the consumer. Producer only.
func (q *MCRing) Flush() {
	if q.wBatch > 0 {
		q.write.Store(q.nextWrite)
		q.wBatch = 0
	}
}
