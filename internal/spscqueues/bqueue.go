package spscqueues

import "sync/atomic"

// BQueue implements B-Queue (Wang, Zhang, Tang, Hua [20]):
// FastForward-style in-band slots, but each side probes a whole batch
// of slots at once so the common case touches the control state once
// per batch. The consumer *backtracks* — halving its probe distance
// until it finds a filled prefix — which removes the producer/consumer
// batch deadlock of earlier batching designs without any tuning
// parameter (the property the paper credits it for in Section II).
//
// Slot value 0 means empty; payloads are stored as v+1. Items are
// visible to the consumer as soon as they are written (the batching is
// in the probing, not in publication), so Flush is a no-op.
type BQueue struct {
	mask  uint64
	batch uint64
	buf   []atomic.Uint64

	_         [64]byte
	head      uint64 // producer-private: next slot to write
	batchHead uint64 // producer-private: end of the probed free span
	_         [64]byte
	tail      uint64 // consumer-private: next slot to read
	batchTail uint64 // consumer-private: end of the probed filled span
	_         [64]byte
}

// DefaultBQueueBatch is the probe span used when it fits the capacity.
const DefaultBQueueBatch = 64

// NewBQueue returns a queue with the given power-of-two capacity.
func NewBQueue(capacity int) (*BQueue, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	batch := uint64(DefaultBQueueBatch)
	if max := uint64(capacity / 2); batch > max {
		batch = max
	}
	if batch == 0 {
		batch = 1
	}
	return &BQueue{
		mask:  uint64(capacity - 1),
		batch: batch,
		buf:   make([]atomic.Uint64, capacity),
	}, nil
}

// Cap returns the capacity.
func (q *BQueue) Cap() int { return len(q.buf) }

// TryEnqueue inserts v (< MaxUint64); false when no free batch span is
// available. Producer only.
func (q *BQueue) TryEnqueue(v uint64) bool {
	if q.head == q.batchHead {
		// Probe: if the last slot of the next span is empty, the whole
		// span is (the single consumer empties slots in order).
		if q.buf[(q.head+q.batch-1)&q.mask].Load() != 0 {
			return false
		}
		q.batchHead = q.head + q.batch
	}
	q.buf[q.head&q.mask].Store(v + 1)
	q.head++
	return true
}

// Enqueue inserts v, spinning while no span is free. Producer only.
func (q *BQueue) Enqueue(v uint64) {
	for spins := 0; !q.TryEnqueue(v); spins++ {
		spinWait(spins)
	}
}

// Dequeue removes the head item; ok=false when the queue is empty.
// Consumer only.
func (q *BQueue) Dequeue() (uint64, bool) {
	if q.tail == q.batchTail {
		// Probe with backtracking: shrink the span until its last slot
		// is filled (then the whole prefix is), or give up at 0.
		b := q.batch
		//ffq:ignore spin-backoff backtracking probe: b halves every iteration, so the loop runs at most log2(batch) times
		for {
			if q.buf[(q.tail+b-1)&q.mask].Load() != 0 {
				q.batchTail = q.tail + b
				break
			}
			b >>= 1
			if b == 0 {
				return 0, false
			}
		}
	}
	v := q.buf[q.tail&q.mask].Load()
	if v == 0 {
		return 0, false
	}
	q.buf[q.tail&q.mask].Store(0)
	q.tail++
	return v - 1, true
}

// Flush is a no-op: slots publish in-band on every enqueue.
func (q *BQueue) Flush() {}
