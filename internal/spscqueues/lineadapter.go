package spscqueues

import "ffq/internal/core"

// LineAdapter exposes the line-granular FFQ SPSC variant (multi-value
// cache-line cells, DESIGN.md §4.10) through this package's streaming
// interface, so the lineage comparison shows what line-granular
// publication buys over the scalar cell protocol.
type LineAdapter struct {
	q *core.LineSPSC[uint64]
	// cap is the requested capacity. The ring itself rounds up to a
	// power-of-two number of 7-value lines, so it holds at least this
	// many values; the registry contract reports the requested figure.
	cap int
}

// NewLineAdapter returns an adapter over a line-granular SPSC queue
// holding at least capacity values (power of two, like every entry in
// this registry).
func NewLineAdapter(capacity int) (*LineAdapter, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	q, err := core.NewLineSPSC[uint64](capacity)
	if err != nil {
		return nil, err
	}
	return &LineAdapter{q: q, cap: capacity}, nil
}

// Cap returns the requested capacity.
func (a *LineAdapter) Cap() int { return a.cap }

// TryEnqueue inserts v if the ring has space. Producer only.
func (a *LineAdapter) TryEnqueue(v uint64) bool { return a.q.TryEnqueue(v) }

// Enqueue inserts v, spinning while the ring is full. Producer only.
func (a *LineAdapter) Enqueue(v uint64) { a.q.Enqueue(v) }

// Dequeue removes the head item; ok=false when empty. Consumer only.
func (a *LineAdapter) Dequeue() (uint64, bool) { return a.q.TryDequeue() }

// Flush is a no-op: every enqueue call release-stores the line's fill
// count, so values are never parked invisibly.
func (a *LineAdapter) Flush() {}
