// Package spscqueues implements the single-producer/single-consumer
// FIFO queues the FFQ paper builds on and discusses in its related
// work (Section II): Lamport's classic ring buffer, FastForward,
// MCRingBuffer, BatchQueue and B-Queue — alongside an adapter for the
// FFQ SPSC variant — behind one streaming interface, so the historical
// lineage the paper sketches can be measured head-to-head.
//
// # Interface notes
//
// Batching designs (MCRingBuffer, BatchQueue, B-Queue) deliberately
// delay visibility of enqueued items until a batch boundary; Flush
// makes everything enqueued so far visible. Streaming benchmarks call
// Flush when the producer finishes (and on the blocking-enqueue slow
// path); ping-pong workloads are the wrong shape for these queues,
// which is exactly the trade-off the paper points out when motivating
// an unbatched SPMC design.
//
// Payloads are uint64. Implementations that reserve an in-band "empty"
// marker (FastForward, B-Queue) store v+1 internally, so the full
// uint64 range except MaxUint64 is usable.
package spscqueues

import (
	"fmt"
	"runtime"
)

// Queue is a single-producer/single-consumer FIFO queue. Exactly one
// goroutine may call the producer methods (Enqueue, TryEnqueue, Flush)
// and exactly one the consumer methods (Dequeue).
type Queue interface {
	// TryEnqueue inserts v, reporting false when the queue is full.
	TryEnqueue(v uint64) bool
	// Enqueue inserts v, spinning (and yielding) while the queue is
	// full. Implementations flush pending batches before spinning so
	// the consumer can make room.
	Enqueue(v uint64)
	// Dequeue removes the head item; ok=false when no item is visible
	// (the queue is empty or items are parked in an unflushed batch).
	Dequeue() (v uint64, ok bool)
	// Flush publishes any batched items to the consumer. A no-op for
	// unbatched designs.
	Flush()
	// Cap returns the queue capacity.
	Cap() int
}

// Factory builds an SPSC queue implementation.
type Factory struct {
	// Name identifies the algorithm ("lamport", "fastforward", ...).
	Name string
	// Brief is a one-line description with the source citation.
	Brief string
	// Batching reports whether items may be invisible until Flush.
	Batching bool
	// New builds a queue with the given power-of-two capacity.
	New func(capacity int) (Queue, error)
}

// Factories returns the SPSC registry in the paper's Section II order,
// with FFQ's own SPSC variant last.
func Factories() []Factory {
	return []Factory{
		{
			Name:  "lamport",
			Brief: "Lamport's ring buffer [11]: shared head/tail counters",
			New:   func(c int) (Queue, error) { return NewLamport(c) },
		},
		{
			Name:  "fastforward",
			Brief: "FastForward [7]: in-band empty marker, no shared counters",
			New:   func(c int) (Queue, error) { return NewFastForward(c) },
		},
		{
			Name:     "mcring",
			Brief:    "MCRingBuffer [13]: Lamport with batched control updates",
			Batching: true,
			New:      func(c int) (Queue, error) { return NewMCRing(c, 0) },
		},
		{
			Name:     "batchqueue",
			Brief:    "BatchQueue [19]: two halves exchanged wholesale",
			Batching: true,
			New:      func(c int) (Queue, error) { return NewBatchQueue(c) },
		},
		{
			Name:  "bqueue",
			Brief: "B-Queue [20]: batch probing with backtracking",
			// Not marked Batching: publication is in-band per slot;
			// only the probing is batched.
			New: func(c int) (Queue, error) { return NewBQueue(c) },
		},
		{
			Name:  "ffq-spsc",
			Brief: "FFQ SPSC variant (this paper)",
			New:   func(c int) (Queue, error) { return NewFFQAdapter(c) },
		},
		{
			Name:  "ffq-line",
			Brief: "FFQ SPSC with multi-value cache-line cells (7 values/line)",
			// Not marked Batching: every enqueue release-stores the
			// line's fill count, so nothing waits for a Flush.
			New: func(c int) (Queue, error) { return NewLineAdapter(c) },
		},
	}
}

// ByName returns the named factory.
func ByName(name string) (Factory, error) {
	fs := Factories()
	for _, f := range fs {
		if f.Name == name {
			return f, nil
		}
	}
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return Factory{}, fmt.Errorf("spscqueues: unknown queue %q (have %v)", name, names)
}

// checkCapacity validates the shared power-of-two requirement.
func checkCapacity(c int) error {
	if c < 2 || c&(c-1) != 0 {
		return fmt.Errorf("spscqueues: capacity %d is not a power of two >= 2", c)
	}
	return nil
}

// spinWait yields after a short spin; used by all blocking enqueues.
func spinWait(spins int) {
	if spins > 16 || runtime.NumCPU() == 1 {
		runtime.Gosched()
	}
}
