// Package msqueue implements the classic Michael & Scott non-blocking
// unbounded MPMC FIFO queue [PODC'96], one of the baselines of the
// paper's comparative study (Section V-G). As the paper notes, it
// "does not scale well in practice due to contention on tail and head
// pointers": every operation is a CAS loop on one of two hot words.
//
// The Go port replaces the original's counted pointers (needed to
// defeat ABA under manual memory reuse) with garbage-collected nodes:
// a node address is never recycled while any thread still holds it, so
// plain atomic.Pointer CAS is ABA-safe.
package msqueue

import (
	"sync/atomic"

	"ffq/internal/spin"
)

type node struct {
	value uint64
	next  atomic.Pointer[node]
}

// Queue is an unbounded multi-producer/multi-consumer FIFO queue.
// The zero value is not usable; call New.
type Queue struct {
	_    [64]byte
	head atomic.Pointer[node]
	_    [64]byte
	tail atomic.Pointer[node]
	_    [64]byte
}

// New returns an empty queue.
func New() *Queue {
	q := &Queue{}
	dummy := &node{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue inserts v at the tail. Lock-free.
func (q *Queue) Enqueue(v uint64) {
	n := &node{value: v}
	for spins := 0; ; spins++ {
		spin.RetryYield(spins)
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; re-read
		}
		if next != nil {
			// Tail is lagging: help advance it, then retry.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			// Linearized. Swing tail (failure is fine: someone helped).
			q.tail.CompareAndSwap(tail, n)
			return
		}
	}
}

// Dequeue removes the item at the head. ok=false if the queue was
// observed empty. Lock-free.
func (q *Queue) Dequeue() (uint64, bool) {
	for spins := 0; ; spins++ {
		spin.RetryYield(spins)
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				return 0, false // empty
			}
			// Tail lagging behind an in-flight enqueue: help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.value
		if q.head.CompareAndSwap(head, next) {
			return v, true
		}
	}
}
