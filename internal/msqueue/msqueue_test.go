package msqueue_test

import (
	"testing"

	"ffq/internal/msqueue"
	"ffq/internal/queue"
	"ffq/internal/queuetest"
)

func factory() queue.Factory {
	return queue.Factory{
		Name: "msqueue",
		New: func(_, _ int) queue.Shared {
			return queue.SelfRegistering{Q: msqueue.New()}
		},
	}
}

func TestSequential(t *testing.T) {
	queuetest.Sequential(t, factory(), queuetest.DefaultOptions())
}

func TestEmpty(t *testing.T) {
	queuetest.EmptyBehaviour(t, factory())
}

func TestConcurrent(t *testing.T) {
	queuetest.Concurrent(t, factory(), queuetest.DefaultOptions())
}

func TestUnbounded(t *testing.T) {
	q := msqueue.New()
	const n = 100000
	for i := uint64(1); i <= n; i++ {
		q.Enqueue(i)
	}
	for i := uint64(1); i <= n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("got %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue not empty")
	}
}

func TestInterleavedEmpty(t *testing.T) {
	q := msqueue.New()
	for i := 0; i < 1000; i++ {
		if _, ok := q.Dequeue(); ok {
			t.Fatal("phantom item")
		}
		q.Enqueue(uint64(i + 1))
		if v, ok := q.Dequeue(); !ok || v != uint64(i+1) {
			t.Fatalf("round %d: got %d,%v", i, v, ok)
		}
	}
}
