// Package htmqueue implements the paper's HTM baseline (Section V-G):
// "a simple concurrent queue algorithm that uses hardware
// transactional memory ... based on a bounded circular buffer [that]
// simply executes the enqueue and dequeue operations inside hardware
// transactions."
//
// Go has no HTM intrinsics, so the transactions run on the software
// transactional memory of internal/stm (see that package and DESIGN.md
// substitution #2 for why the emulation preserves the comparison's
// shape: cheap uncontended, retry-collapse under contention).
package htmqueue

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ffq/internal/stm"
)

// maxRetries is the optimistic retry budget before an operation takes
// the fallback lock, mirroring common RTM retry loops.
const maxRetries = 8

// Memory word layout of the queue state.
const (
	wordHead = 0
	wordTail = 1
	wordBase = 2 // slots start here
)

// Queue is a bounded MPMC FIFO queue whose operations each run inside
// one (emulated) hardware transaction.
type Queue struct {
	mem     *stm.Memory
	mask    uint64
	retries int

	commits   atomic.Uint64
	aborts    atomic.Uint64
	fallbacks atomic.Uint64
}

// New returns a queue with the given power-of-two capacity and the
// default retry budget.
func New(capacity int) (*Queue, error) {
	return NewWithRetries(capacity, maxRetries)
}

// NewWithRetries returns a queue whose transactions retry
// optimistically `retries` times before taking the fallback lock
// (0 = fall back immediately; used by the retry-budget ablation).
func NewWithRetries(capacity, retries int) (*Queue, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("htmqueue: capacity %d is not a power of two >= 2", capacity)
	}
	if retries < 0 {
		return nil, fmt.Errorf("htmqueue: negative retry budget %d", retries)
	}
	return &Queue{
		mem:     stm.NewMemory(wordBase + capacity),
		mask:    uint64(capacity - 1),
		retries: retries,
	}, nil
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.mem.Len() - wordBase }

// TryEnqueue inserts v inside a transaction; false means full.
func (q *Queue) TryEnqueue(v uint64) bool {
	ok := false
	st := q.mem.Atomically(q.retries, func(tx *stm.Tx) {
		ok = false
		head := tx.Load(wordHead)
		tail := tx.Load(wordTail)
		if tx.Aborted() || tail-head > q.mask {
			return // full (or conflicted)
		}
		tx.Store(wordBase+int(tail&q.mask), v)
		tx.Store(wordTail, tail+1)
		ok = true
	})
	q.account(st)
	return ok
}

// TryDequeue removes the head item inside a transaction; false means
// empty.
func (q *Queue) TryDequeue() (uint64, bool) {
	var v uint64
	ok := false
	st := q.mem.Atomically(q.retries, func(tx *stm.Tx) {
		ok = false
		head := tx.Load(wordHead)
		tail := tx.Load(wordTail)
		if tx.Aborted() || head == tail {
			return // empty (or conflicted)
		}
		v = tx.Load(wordBase + int(head&q.mask))
		tx.Store(wordHead, head+1)
		ok = true
	})
	q.account(st)
	if !ok {
		return 0, false
	}
	return v, true
}

// Enqueue inserts v, spinning (and yielding) while the queue is full.
func (q *Queue) Enqueue(v uint64) {
	for spins := 0; !q.TryEnqueue(v); spins++ {
		if spins >= 4 {
			runtime.Gosched() // full: let consumers drain
		}
	}
}

// Dequeue removes the head item; ok=false if the queue was observed
// empty.
func (q *Queue) Dequeue() (uint64, bool) { return q.TryDequeue() }

func (q *Queue) account(st stm.Stats) {
	if st.Commits > 0 {
		q.commits.Add(st.Commits)
	}
	if st.Aborts > 0 {
		q.aborts.Add(st.Aborts)
	}
	if st.Fallbacks > 0 {
		q.fallbacks.Add(st.Fallbacks)
	}
}

// Stats returns cumulative transaction outcome counters.
func (q *Queue) Stats() (commits, aborts, fallbacks uint64) {
	return q.commits.Load(), q.aborts.Load(), q.fallbacks.Load()
}
