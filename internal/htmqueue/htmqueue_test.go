package htmqueue_test

import (
	"testing"

	"ffq/internal/htmqueue"
	"ffq/internal/queue"
	"ffq/internal/queuetest"
)

type adapter struct{ q *htmqueue.Queue }

func (a adapter) Enqueue(v uint64)        { a.q.Enqueue(v) }
func (a adapter) Dequeue() (uint64, bool) { return a.q.Dequeue() }

func factory() queue.Factory {
	return queue.Factory{
		Name: "htm",
		New: func(capacity, _ int) queue.Shared {
			q, err := htmqueue.New(capacity)
			if err != nil {
				panic(err)
			}
			return queue.SelfRegistering{Q: adapter{q}}
		},
	}
}

func TestValidation(t *testing.T) {
	for _, c := range []int{0, 1, 3, 100} {
		if _, err := htmqueue.New(c); err == nil {
			t.Errorf("capacity %d accepted", c)
		}
	}
	q, err := htmqueue.New(32)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 32 {
		t.Errorf("Cap = %d", q.Cap())
	}
}

func TestSequential(t *testing.T) {
	queuetest.Sequential(t, factory(), queuetest.DefaultOptions())
}

func TestEmpty(t *testing.T) {
	queuetest.EmptyBehaviour(t, factory())
}

func TestFull(t *testing.T) {
	q, _ := htmqueue.New(4)
	for i := uint64(1); i <= 4; i++ {
		if !q.TryEnqueue(i) {
			t.Fatalf("TryEnqueue(%d) failed below capacity", i)
		}
	}
	if q.TryEnqueue(5) {
		t.Fatal("TryEnqueue succeeded on full queue")
	}
	if v, ok := q.TryDequeue(); !ok || v != 1 {
		t.Fatalf("got %d,%v", v, ok)
	}
}

func TestConcurrent(t *testing.T) {
	opts := queuetest.DefaultOptions()
	opts.ItemsPerProducer = 2000 // STM transactions are slow; keep CI time sane
	queuetest.Concurrent(t, factory(), opts)
}

func TestStatsAdvance(t *testing.T) {
	q, _ := htmqueue.New(16)
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(i)
		if _, ok := q.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	}
	commits, _, _ := q.Stats()
	if commits < 200 {
		t.Fatalf("commits = %d, want >= 200", commits)
	}
}
