package syscalls

import (
	"os"
	"testing"
)

func TestNumberString(t *testing.T) {
	names := map[Number]string{
		GetPPID: "getppid", GetPID: "getpid", Nop: "nop", Write64: "write64",
		Number(99): "invalid",
	}
	for n, want := range names {
		if n.String() != want {
			t.Errorf("%d: %q want %q", n, n.String(), want)
		}
	}
}

func TestExecuteResults(t *testing.T) {
	k := NewKernel(CostModel{}) // zero costs: pure results
	if got := k.Execute(GetPPID, 0); got != uint64(os.Getppid()) {
		t.Errorf("getppid = %d, want %d", got, os.Getppid())
	}
	if got := k.Execute(GetPID, 0); got != uint64(os.Getpid()) {
		t.Errorf("getpid = %d", got)
	}
	if got := k.Execute(Write64, 77); got != 77 {
		t.Errorf("write64 = %d", got)
	}
	if got := k.Execute(Nop, 5); got != 0 {
		t.Errorf("nop = %d", got)
	}
	if got := k.Execute(Number(99), 5); got != 0 {
		t.Errorf("invalid call = %d", got)
	}
}

func TestCostModelApplied(t *testing.T) {
	cm := DefaultCostModel()
	k := NewKernel(cm)
	if k.Cost().TrapNS != cm.TrapNS {
		t.Error("cost model not stored")
	}
	// Native execution must return the right value and not hang.
	if got := k.ExecuteNative(GetPPID, 0); got != uint64(os.Getppid()) {
		t.Errorf("native getppid = %d", got)
	}
}

func TestDefaultCostModelSanity(t *testing.T) {
	cm := DefaultCostModel()
	if cm.TrapNS <= 0 || cm.EnclaveExitNS <= cm.TrapNS || cm.EPCAccessNS <= 0 {
		t.Errorf("implausible cost model %+v", cm)
	}
	if cm.KernelNS[GetPPID] <= 0 {
		t.Error("getppid kernel cost must be positive")
	}
}
