// Package syscalls simulates the kernel side of the paper's
// application benchmark (Section V-F): a table of system calls with
// calibrated in-kernel costs, plus the cost model for how a call
// reaches the kernel (native trap vs. enclave queue proxy).
//
// The paper benchmarks getppid(2) because it is nearly free in the
// kernel and copies no arguments, making the call *path* — trap or
// queue — the dominant cost; the simulation keeps that property.
package syscalls

import (
	"os"

	"ffq/internal/spin"
)

// Number identifies a simulated system call.
type Number uint32

// The simulated syscall table.
const (
	// GetPPID returns the parent process id (the paper's benchmark call).
	GetPPID Number = iota
	// GetPID returns the process id.
	GetPID
	// Nop does nothing in the kernel (pure path cost).
	Nop
	// Write64 pretends to write 64 bytes (adds copy cost).
	Write64
	numCalls
)

// String names the call.
func (n Number) String() string {
	switch n {
	case GetPPID:
		return "getppid"
	case GetPID:
		return "getpid"
	case Nop:
		return "nop"
	case Write64:
		return "write64"
	default:
		return "invalid"
	}
}

// CostModel holds the path costs in nanoseconds. Defaults approximate
// the paper's Skylake numbers.
type CostModel struct {
	// TrapNS is the user->kernel->user transition of a native syscall
	// (the glibc baseline pays this per call).
	TrapNS int64
	// KernelNS is the in-kernel work per call, by Number.
	KernelNS [numCalls]int64
	// EnclaveExitNS is a full SGX enclave exit+re-enter (what the
	// framework avoids; "up to 50,000 cycles" per Section II).
	EnclaveExitNS int64
	// EPCAccessNS is the added per-request cost of working on
	// encrypted enclave memory (queue cells living in the EPC).
	EPCAccessNS int64
}

// DefaultCostModel returns Skylake-flavoured costs (3.6 GHz: 1 ns ~=
// 3.6 cycles).
func DefaultCostModel() CostModel {
	return CostModel{
		TrapNS:        120,
		KernelNS:      [numCalls]int64{GetPPID: 15, GetPID: 15, Nop: 0, Write64: 80},
		EnclaveExitNS: 3500,
		EPCAccessNS:   60,
	}
}

// Kernel executes simulated system calls.
type Kernel struct {
	cost CostModel
	ppid uint64
	pid  uint64
}

// NewKernel returns a kernel with the given cost model.
func NewKernel(cost CostModel) *Kernel {
	return &Kernel{
		cost: cost,
		ppid: uint64(os.Getppid()),
		pid:  uint64(os.Getpid()),
	}
}

// Cost returns the kernel's cost model.
func (k *Kernel) Cost() CostModel { return k.cost }

// Execute performs the in-kernel work of call n (burning its modeled
// cost) and returns its result. It does not include any path cost.
func (k *Kernel) Execute(n Number, arg uint64) uint64 {
	if n < numCalls {
		spin.Nanoseconds(k.cost.KernelNS[n])
	}
	switch n {
	case GetPPID:
		return k.ppid
	case GetPID:
		return k.pid
	case Write64:
		return arg
	default:
		return 0
	}
}

// ExecuteNative performs a native syscall: trap cost plus kernel work.
func (k *Kernel) ExecuteNative(n Number, arg uint64) uint64 {
	spin.Nanoseconds(k.cost.TrapNS)
	return k.Execute(n, arg)
}
