// Package stm is a word-granularity software transactional memory in
// the style of TL2 (versioned stripe locks, lazy write-back). It
// exists to emulate the hardware transactional memory (Intel TSX /
// POWER8 HTM) that the paper's HTM-based queue baseline runs on
// (Section V-G): Go exposes no HTM intrinsics.
//
// The emulation preserves the behavioural shape that matters for the
// comparison: transactions are cheap when uncontended, abort and retry
// under conflicts, and fall back to a global lock after repeated
// aborts — exactly the execution profile of an RTM enqueue/dequeue
// with a lock fallback path. Absolute costs differ (software
// validation vs. hardware cache tracking), which DESIGN.md records as
// substitution #2.
//
// Transactions operate on a Memory: a fixed array of uint64 words,
// each guarded by a versioned lock. This confines the unsafe aliasing
// questions of address-based STMs away entirely.
package stm

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrAborted is returned by Atomically's callback plumbing when a
// transaction conflicts and must retry. User code inside a transaction
// never sees it; it is exported for tests and direct Tx users.
var ErrAborted = errors.New("stm: transaction aborted")

// lockedBit marks a stripe's version word as write-locked.
const lockedBit = uint64(1) << 63

// Memory is a transactional array of uint64 words.
type Memory struct {
	words []atomic.Uint64
	locks []atomic.Uint64 // versioned stripe locks, one per word
	clock atomic.Uint64   // global version clock

	// fallback serializes transactions that exceeded their retry
	// budget, mirroring an HTM lock fallback path.
	fallback sync.Mutex
	fbActive atomic.Int32
}

// NewMemory returns a transactional memory of n words, all zero.
func NewMemory(n int) *Memory {
	return &Memory{
		words: make([]atomic.Uint64, n),
		locks: make([]atomic.Uint64, n),
	}
}

// Len returns the number of words.
func (m *Memory) Len() int { return len(m.words) }

// ReadDirect reads word i non-transactionally (for tests/snapshots).
func (m *Memory) ReadDirect(i int) uint64 { return m.words[i].Load() }

// Tx is an in-flight transaction. A Tx is single-goroutine and must
// not outlive its Atomically call.
type Tx struct {
	m         *Memory
	readVer   uint64
	readSet   []int
	writeIdx  []int
	writeVal  []uint64
	aborted   bool
	cancelled bool
}

// Abort cancels the transaction: nothing will be committed and
// Atomically will not retry it. Subsequent reads return 0; callers
// inside Atomically should return promptly after calling Abort.
func (tx *Tx) Abort() {
	tx.aborted = true
	tx.cancelled = true
}

// Aborted reports whether the transaction has observed a conflict.
func (tx *Tx) Aborted() bool { return tx.aborted }

// Load transactionally reads word i.
func (tx *Tx) Load(i int) uint64 {
	if tx.aborted {
		return 0
	}
	// Write-set lookup first (read-your-writes).
	for k := len(tx.writeIdx) - 1; k >= 0; k-- {
		if tx.writeIdx[k] == i {
			return tx.writeVal[k]
		}
	}
	v1 := tx.m.locks[i].Load()
	val := tx.m.words[i].Load()
	v2 := tx.m.locks[i].Load()
	if v1 != v2 || v1&lockedBit != 0 || v1 > tx.readVer {
		tx.aborted = true
		return 0
	}
	tx.readSet = append(tx.readSet, i)
	return val
}

// Store transactionally writes word i (buffered until commit).
func (tx *Tx) Store(i int, v uint64) {
	if tx.aborted {
		return
	}
	for k := len(tx.writeIdx) - 1; k >= 0; k-- {
		if tx.writeIdx[k] == i {
			tx.writeVal[k] = v
			return
		}
	}
	tx.writeIdx = append(tx.writeIdx, i)
	tx.writeVal = append(tx.writeVal, v)
}

// commit attempts to publish the write set. It returns false on
// conflict.
func (tx *Tx) commit() bool {
	if tx.aborted {
		return false
	}
	if len(tx.writeIdx) == 0 {
		return true // read-only transactions validate on the fly
	}
	m := tx.m
	// Lock the write set in index order (deadlock freedom).
	order := append([]int(nil), tx.writeIdx...)
	insertionSort(order)
	locked := 0
	for _, i := range order {
		v := m.locks[i].Load()
		if v&lockedBit != 0 || v > tx.readVer || !m.locks[i].CompareAndSwap(v, v|lockedBit) {
			// Conflict: unlock what we hold and abort.
			for _, j := range order[:locked] {
				m.locks[j].Store(m.locks[j].Load() &^ lockedBit)
			}
			return false
		}
		locked++
	}
	// Validate the read set against the locked state.
	for _, i := range tx.readSet {
		v := m.locks[i].Load()
		if v&lockedBit != 0 && !tx.inWriteSet(i) {
			for _, j := range order {
				m.locks[j].Store(m.locks[j].Load() &^ lockedBit)
			}
			return false
		}
		if v&^lockedBit > tx.readVer {
			for _, j := range order {
				m.locks[j].Store(m.locks[j].Load() &^ lockedBit)
			}
			return false
		}
	}
	wv := m.clock.Add(1)
	for k, i := range tx.writeIdx {
		m.words[i].Store(tx.writeVal[k])
	}
	for _, i := range order {
		m.locks[i].Store(wv) // write version + unlock
	}
	return true
}

func (tx *Tx) inWriteSet(i int) bool {
	for _, j := range tx.writeIdx {
		if j == i {
			return true
		}
	}
	return false
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Stats counts transaction outcomes (monotonic, approximate under
// concurrency).
type Stats struct {
	Commits   uint64
	Aborts    uint64
	Fallbacks uint64
}

// Atomically runs fn as a transaction against m, retrying on conflict
// up to maxRetries times and then executing under the global fallback
// lock (the HTM lock-elision pattern). fn must confine its shared
// reads/writes to the Tx. It returns the retry statistics of this call.
func (m *Memory) Atomically(maxRetries int, fn func(tx *Tx)) Stats {
	var st Stats
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if m.fbActive.Load() != 0 {
			break // a fallback holder is running; don't fight it
		}
		tx := Tx{m: m, readVer: m.clock.Load()}
		fn(&tx)
		if tx.cancelled {
			return st // user-cancelled: commit nothing, do not retry
		}
		if tx.commit() {
			st.Commits++
			return st
		}
		st.Aborts++
		backoffSpin(attempt)
	}
	// Fallback: take the global lock and raise fbActive, which stops
	// new optimistic transactions from starting (the analogue of an
	// RTM fast path subscribing to the fallback lock). The operation
	// itself still runs as a fully validated transaction — in-flight
	// optimistic commits may land before it, making it retry — but
	// with no new competitors it wins in a bounded number of rounds.
	m.fallback.Lock()
	m.fbActive.Add(1)
	for {
		tx := Tx{m: m, readVer: m.clock.Load()}
		fn(&tx)
		if tx.cancelled || tx.commit() {
			break
		}
		st.Aborts++
		runtime.Gosched()
	}
	m.fbActive.Add(-1)
	m.fallback.Unlock()
	st.Fallbacks++
	return st
}

func backoffSpin(attempt int) {
	if attempt > 3 {
		runtime.Gosched()
		return
	}
	for i := 0; i < 16<<attempt; i++ {
	}
}
