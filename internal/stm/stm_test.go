package stm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSequentialReadWrite(t *testing.T) {
	m := NewMemory(8)
	st := m.Atomically(4, func(tx *Tx) {
		tx.Store(0, 10)
		tx.Store(1, 20)
	})
	if st.Commits != 1 || st.Aborts != 0 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	m.Atomically(4, func(tx *Tx) {
		if tx.Load(0) != 10 || tx.Load(1) != 20 {
			t.Error("reads do not observe prior commit")
		}
	})
	if m.ReadDirect(0) != 10 {
		t.Fatalf("ReadDirect(0) = %d", m.ReadDirect(0))
	}
}

func TestReadYourWrites(t *testing.T) {
	m := NewMemory(4)
	m.Atomically(4, func(tx *Tx) {
		tx.Store(2, 7)
		if tx.Load(2) != 7 {
			t.Error("write not visible to own read")
		}
		tx.Store(2, 8)
		if tx.Load(2) != 8 {
			t.Error("second write not visible")
		}
	})
	if m.ReadDirect(2) != 8 {
		t.Fatalf("committed %d, want 8", m.ReadDirect(2))
	}
}

func TestLenAndZeroInit(t *testing.T) {
	m := NewMemory(16)
	if m.Len() != 16 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 16; i++ {
		if m.ReadDirect(i) != 0 {
			t.Fatalf("word %d not zero", i)
		}
	}
}

// Transactional counter increments from many goroutines must not lose
// updates — the fundamental atomicity property.
func TestConcurrentCounter(t *testing.T) {
	m := NewMemory(1)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Atomically(8, func(tx *Tx) {
					tx.Store(0, tx.Load(0)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := m.ReadDirect(0); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// Two words updated together must never be observed torn.
func TestConcurrentInvariant(t *testing.T) {
	m := NewMemory(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Atomically(8, func(tx *Tx) {
				tx.Store(0, i)
				tx.Store(1, i)
			})
		}
	}()
	for i := 0; i < 5000; i++ {
		m.Atomically(8, func(tx *Tx) {
			a := tx.Load(0)
			b := tx.Load(1)
			if !tx.Aborted() && a != b {
				t.Errorf("torn read: %d != %d", a, b)
			}
		})
	}
	close(stop)
	wg.Wait()
}

// The fallback path must preserve atomicity: force it by exhausting
// the retry budget (maxRetries = 0 aborts optimism immediately under
// any concurrent writer).
func TestFallbackCounter(t *testing.T) {
	m := NewMemory(1)
	const goroutines = 4
	const perG = 1000
	var wg sync.WaitGroup
	var sawFallback sync.Once
	fallbackSeen := false
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				st := m.Atomically(0, func(tx *Tx) {
					tx.Store(0, tx.Load(0)+1)
				})
				if st.Fallbacks > 0 {
					sawFallback.Do(func() { fallbackSeen = true })
				}
			}
		}()
	}
	wg.Wait()
	if got := m.ReadDirect(0); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	_ = fallbackSeen // may or may not trigger on a single-CPU box; the count is the invariant
}

// Property: a random batch of stores commits all-or-nothing and reads
// back exactly.
func TestBatchStoreProperty(t *testing.T) {
	m := NewMemory(32)
	f := func(idxs []uint8, vals []uint64) bool {
		n := len(idxs)
		if len(vals) < n {
			n = len(vals)
		}
		want := make(map[int]uint64)
		m.Atomically(8, func(tx *Tx) {
			for k := 0; k < n; k++ {
				i := int(idxs[k]) % 32
				tx.Store(i, vals[k])
			}
		})
		// Recompute expected final values (last store per index wins).
		for k := 0; k < n; k++ {
			want[int(idxs[k])%32] = vals[k]
		}
		for i, v := range want {
			if m.ReadDirect(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := NewMemory(2)
	st := m.Atomically(3, func(tx *Tx) {
		tx.Store(0, 99)
		tx.Abort()
	})
	// An explicitly aborted transaction retries and ultimately goes to
	// the fallback, where it aborts again... the final state must not
	// contain the write. (Abort inside the fallback means the caller
	// really wants nothing committed; the loop breaks via commit()
	// returning false — guard against infinite loops by checking the
	// visible effect only.)
	_ = st
	if m.ReadDirect(0) == 99 {
		t.Fatal("aborted write became visible")
	}
}

// Classic STM invariant: concurrent random transfers between accounts
// preserve the total balance at every consistent snapshot.
func TestConcurrentTransfersPreserveSum(t *testing.T) {
	const accounts = 8
	const initial = 1000
	m := NewMemory(accounts)
	m.Atomically(4, func(tx *Tx) {
		for i := 0; i < accounts; i++ {
			tx.Store(i, initial)
		}
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(g + 1)
			for i := 0; i < 3000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				from := int(rng % accounts)
				to := int((rng >> 8) % accounts)
				amt := rng % 10
				m.Atomically(8, func(tx *Tx) {
					b := tx.Load(from)
					if tx.Aborted() || b < amt {
						return
					}
					tx.Store(from, b-amt)
					tx.Store(to, tx.Load(to)+amt)
				})
			}
		}(g)
	}
	// Concurrent auditor: transactional snapshots must always sum
	// exactly.
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum uint64
			aborted := false
			m.Atomically(8, func(tx *Tx) {
				sum = 0
				for i := 0; i < accounts; i++ {
					sum += tx.Load(i)
				}
				aborted = tx.Aborted()
			})
			if !aborted && sum != accounts*initial {
				t.Errorf("torn snapshot: sum=%d", sum)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-auditDone
	var sum uint64
	for i := 0; i < accounts; i++ {
		sum += m.ReadDirect(i)
	}
	if sum != accounts*initial {
		t.Fatalf("final sum = %d, want %d", sum, accounts*initial)
	}
}
