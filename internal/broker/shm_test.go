package broker_test

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ffq/internal/broker"
	"ffq/internal/broker/client"
)

// startDrain starts receiving in the background — the subscriber must
// run concurrently with publishing, since the shm ring, topic lane and
// credit window together buffer less than a full test stream — and
// returns a wait function that checks "m-0".."m-<count-1>" arrived in
// order, exactly once.
func startDrain(t *testing.T, sub *client.Subscription, count int) (wait func()) {
	t.Helper()
	want := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for want < count {
			m, ok := sub.Recv()
			if !ok {
				t.Errorf("stream ended after %d of %d messages", want, count)
				return
			}
			if got, expect := string(m), fmt.Sprintf("m-%d", want); got != expect {
				t.Errorf("message %d: got %q", want, got)
				return
			}
			want++
		}
	}()
	return func() {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out with %d of %d messages", want, count)
		}
	}
}

// TestShmIngress round-trips publishes through a shared-memory segment
// into a subscribed consumer: DialShm → mmap ring → scanner → pump →
// topic → DELIVER, exactly once, in order; the segment file is removed
// once closed and drained.
func TestShmIngress(t *testing.T) {
	dir := t.TempDir()
	b, addr := startBroker(t, broker.Options{
		ShmDir:          dir,
		ShmScanInterval: 2 * time.Millisecond,
	})

	cc, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	sub, err := cc.Subscribe("orders", 256)
	if err != nil {
		t.Fatal(err)
	}

	pub, err := client.DialShm(dir, "orders", 32, 256)
	if err != nil {
		t.Fatal(err)
	}
	const total = 2000
	wait := startDrain(t, sub, total)
	for i := 0; i < total; {
		if i%3 == 0 {
			if err := pub.Publish([]byte(fmt.Sprintf("m-%d", i))); err != nil {
				t.Fatal(err)
			}
			i++
			continue
		}
		batch := make([][]byte, 0, 8)
		for j := 0; j < 8 && i < total; j++ {
			batch = append(batch, []byte(fmt.Sprintf("m-%d", i)))
			i++
		}
		if err := pub.PublishBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	wait()
	if got := b.Metrics().ShmMsgs.Load(); got != total {
		t.Errorf("ShmMsgs = %d, want %d", got, total)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	// The pump notices the close and removes the drained segment.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(pub.Path()); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("closed and drained segment file never removed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShmIngressCloseRace closes each segment immediately after its
// last publish, while the pump is still draining — the window where a
// pump that observes CloseRequested must not drop the final values on
// the floor. Several short segments in sequence widen the window.
func TestShmIngressCloseRace(t *testing.T) {
	dir := t.TempDir()
	b, addr := startBroker(t, broker.Options{
		ShmDir:          dir,
		ShmScanInterval: 2 * time.Millisecond,
	})

	cc, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	sub, err := cc.Subscribe("orders", 256)
	if err != nil {
		t.Fatal(err)
	}

	const segments, perSeg = 8, 250
	wait := startDrain(t, sub, segments*perSeg)
	for s := 0; s < segments; s++ {
		pub, err := client.DialShm(dir, "orders", 32, 256)
		if err != nil {
			t.Fatal(err)
		}
		base := s * perSeg
		for i := 0; i < perSeg; {
			batch := make([][]byte, 0, 16)
			for j := 0; j < 16 && i < perSeg; j++ {
				batch = append(batch, []byte(fmt.Sprintf("m-%d", base+i)))
				i++
			}
			if err := pub.PublishBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		// Close with the stream still in flight; nothing may be lost.
		if err := pub.Close(); err != nil {
			t.Fatal(err)
		}
		// Wait out this segment's removal before starting the next:
		// it proves the pump drained it fully, and it keeps delivery
		// in global order (lanes of different segments don't order
		// against each other).
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := os.Stat(pub.Path()); os.IsNotExist(err) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("segment %d never drained and removed after close", s)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wait()
	if got := b.Metrics().ShmMsgs.Load(); got != segments*perSeg {
		t.Errorf("ShmMsgs = %d, want %d", got, segments*perSeg)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShmIngressHelper is the child process of TestShmIngressTwoProcess:
// it publishes 1500 messages through client.DialShm and exits.
func TestShmIngressHelper(t *testing.T) {
	if os.Getenv("FFQ_BROKER_SHM_HELPER") == "" {
		t.Skip("helper process entry point")
	}
	pub, err := client.DialShm(os.Getenv("FFQ_BROKER_SHM_DIR"), "orders", 32, 256)
	if err != nil {
		t.Fatalf("helper DialShm: %v", err)
	}
	for i := 0; i < 1500; {
		batch := make([][]byte, 0, 16)
		for j := 0; j < 16 && i < 1500; j++ {
			batch = append(batch, []byte(fmt.Sprintf("m-%d", i)))
			i++
		}
		if err := pub.PublishBatch(batch); err != nil {
			t.Fatalf("helper publish: %v", err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatalf("helper close: %v", err)
	}
}

// TestShmIngressTwoProcess is the acceptance round-trip: a separate
// producer process publishes through the mmap segment while this
// process runs the broker and a TCP subscriber — every message
// delivered exactly once, in order, and the segment cleaned up.
func TestShmIngressTwoProcess(t *testing.T) {
	dir := t.TempDir()
	b, addr := startBroker(t, broker.Options{
		ShmDir:          dir,
		ShmScanInterval: 2 * time.Millisecond,
	})

	cc, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	sub, err := cc.Subscribe("orders", 256)
	if err != nil {
		t.Fatal(err)
	}

	wait := startDrain(t, sub, 1500)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestShmIngressHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "FFQ_BROKER_SHM_HELPER=1", "FFQ_BROKER_SHM_DIR="+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper failed: %v\n%s", err, out)
	}
	wait()

	// Closed + drained ⇒ the pump deletes the segment file.
	deadline := time.Now().Add(10 * time.Second)
	for {
		left, err := filepath.Glob(filepath.Join(dir, "*.ffq"))
		if err != nil {
			t.Fatal(err)
		}
		if len(left) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("segment files never removed: %v", left)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShmIngressQuarantine drops a garbage .ffq file into the scan dir
// and checks the broker refuses it (fail-closed), counts the error,
// and keeps serving good segments from the same directory.
func TestShmIngressQuarantine(t *testing.T) {
	dir := t.TempDir()
	junk := make([]byte, 8192)
	for i := range junk {
		junk[i] = byte(i * 7)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.ffq"), junk, 0o644); err != nil {
		t.Fatal(err)
	}
	b, addr := startBroker(t, broker.Options{
		ShmDir:          dir,
		ShmScanInterval: 2 * time.Millisecond,
	})

	cc, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	sub, err := cc.Subscribe("orders", 64)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := client.DialShm(dir, "orders", 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	wait := startDrain(t, sub, 100)
	for i := 0; i < 100; i++ {
		if err := pub.Publish([]byte(fmt.Sprintf("m-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wait()
	pub.Close()
	if got := b.Metrics().ShmAttachErrors.Load(); got == 0 {
		t.Error("garbage segment attached without an attach error")
	}
	if _, err := os.Stat(filepath.Join(dir, "junk.ffq")); err != nil {
		t.Errorf("quarantined file should be left in place: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
