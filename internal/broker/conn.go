package broker

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ffq"
	"ffq/internal/wire"
)

// wireError is a protocol violation with a typed wire code: readLoop
// encodes it as a structured ERR frame (code + detail + text) so
// clients can react programmatically — a follower hitting
// ECodeTruncated resyncs to the detail offset instead of giving up.
type wireError struct {
	code   uint16
	detail uint64
	msg    string
}

func (e *wireError) Error() string { return e.msg }

// staged is one PRODUCE batch copied out of the reader's frame buffer
// and parked in the connection's ingress queue until the pump flushes
// it into the topic.
type staged struct {
	t    *topic
	msgs []msg
}

// conn is one accepted connection: reader + ingress SPSC + pump on the
// produce side, any number of subscriptions on the consume side, all
// sharing one serialized writer.
type conn struct {
	b  *Broker
	nc net.Conn
	id uint64

	// ingress stages PRODUCE batches from the reader (single producer)
	// for the pump (single consumer). Its bound is the backpressure:
	// a full queue stalls the reader, which stalls the socket.
	ingress *ffq.SPSC[staged]
	// wake signals the pump that the reader staged a batch (capacity 1;
	// a dropped send means a wakeup is already pending). The reader
	// closes it after closing ingress.
	wake chan struct{}

	// wmu serializes the writer between the pump (ACKs), subscriptions
	// (DELIVERs) and the reader (PONGs, ERRs); wbuf is the shared
	// encode buffer, reused so steady-state writes do not allocate.
	wmu  sync.Mutex
	wbuf wire.Buffer

	// dead flips when either side of the connection fails; every writer
	// checks it and every delivery loop exits on it.
	dead atomic.Bool

	// subs is the reader goroutine's subscription index (topic display
	// name → sub; one subscription per topic partition). Only the
	// reader touches it.
	subs map[string]*sub

	// lastTopic caches the previous PRODUCE frame's topic so the common
	// single-topic producer skips the broker map lookup.
	lastTopic *topic

	// walScratch is the pump's reusable payload-slice view of a staged
	// batch, handed to the topic's WAL appender (durable brokers only).
	walScratch [][]byte
}

func newConn(b *Broker, nc net.Conn) *conn {
	ingress, err := ffq.NewSPSC[staged](b.opts.IngressBuffer)
	if err != nil {
		// IngressBuffer defaults to a power of two; a bad custom value
		// is a configuration bug, caught on the first connection.
		panic("broker: invalid IngressBuffer: " + err.Error())
	}
	return &conn{
		b:       b,
		nc:      nc,
		id:      b.connID.Add(1),
		ingress: ingress,
		wake:    make(chan struct{}, 1),
		subs:    map[string]*sub{},
	}
}

// readLoop decodes frames until the peer goes away or a protocol
// error occurs. Shutdown's read-deadline wake does not end the loop:
// it switches it to drain mode, where PRODUCE is cut off (the pump
// must quiesce so topics can close) but CREDIT and PING keep flowing —
// the drain needs consumers replenishing their windows.
func (c *conn) readLoop() {
	defer c.b.readWG.Done()
	r := wire.NewReader(c.nc)
	drainMode := false
	//ffq:ignore spin-backoff not a spin loop: every iteration blocks in the socket read; the atomic load only classifies the error path
	for {
		f, err := r.Next()
		if err != nil {
			if !drainMode && c.b.closing.Load() && isTimeout(err) {
				// Shutdown's produce cutoff: stop staging so the pump
				// can exit, then keep reading without a deadline. The
				// socket close at the end of Shutdown ends the loop.
				drainMode = true
				c.ingress.Close()
				close(c.wake)
				c.nc.SetReadDeadline(time.Time{})
				continue
			}
			break
		}
		if err := c.handleFrame(f, drainMode); err != nil {
			c.b.m.ProtoErrors.Add(1)
			var we *wireError
			if errors.As(err, &we) {
				c.writeErrCode(we.code, we.detail, we.msg)
			} else {
				c.writeErrCode(wire.ECodeGeneric, 0, err.Error())
			}
			break
		}
	}
	if !drainMode {
		// Hand the pump its end-of-input: close the staging queue, then
		// the wake channel so a parked pump drains and exits.
		c.ingress.Close()
		close(c.wake)
		c.teardown()
		return
	}
	// In drain mode Shutdown owns the connection's lifecycle — but a
	// read error here means the peer is really gone, and its delivery
	// loops must not keep the drain waiting on credit that can never
	// arrive.
	c.dead.Store(true)
}

// handleFrame dispatches one decoded frame. A returned error is a
// protocol violation and terminal for the connection.
func (c *conn) handleFrame(f wire.Frame, drainMode bool) error {
	switch f.Type {
	case wire.TProduce:
		p, err := wire.ParseProduce(f)
		if err != nil {
			return err
		}
		if drainMode {
			// Past the produce cutoff: the frame is discarded and never
			// acknowledged — unacknowledged publishes were never
			// accepted, which is exactly what ACKs mean.
			c.b.m.MsgsDropped.Add(int64(p.N))
			return nil
		}
		t := c.lastTopic
		if t == nil || p.Part != t.part || !bytes.Equal(p.Topic, t.nameBytes) {
			// Ownership is static config, so checking once per cache miss
			// covers every frame the cache then serves.
			name := string(p.Topic)
			if err := c.b.checkPart(name, p.Part, true); err != nil {
				return err
			}
			t, err = c.b.getTopic(name, p.Part)
			if err != nil {
				return err
			}
			c.lastTopic = t
		}
		n := p.N
		payloads := wire.CopyMessages(&p.Batch)
		msgs := make([]msg, len(payloads))
		var stamp int64
		if t.lat != nil {
			stamp = time.Now().UnixNano()
		}
		for i, pl := range payloads {
			msgs[i] = msg{payload: pl, ingressNS: stamp}
		}
		c.ingress.Enqueue(staged{t: t, msgs: msgs})
		select {
		case c.wake <- struct{}{}:
		default: // a wakeup is already pending
		}
		c.b.m.MsgsIn.Add(int64(n))
		c.b.m.ProduceFrames.Add(1)
		return nil

	case wire.TConsume:
		if f.Flags&wire.FlagOffset != 0 {
			return c.handleConsumeFrom(f)
		}
		topicName, part, credit, err := wire.ParseConsume(f)
		if err != nil {
			return err
		}
		name := string(topicName)
		if err := c.b.checkPart(name, part, true); err != nil {
			return err
		}
		t, err := c.b.getTopic(name, part)
		if err != nil {
			return err
		}
		if _, dup := c.subs[t.display]; dup {
			return errors.New("broker: duplicate subscription to " + t.display)
		}
		s := &sub{c: c, t: t}
		s.credit.Store(int64(credit))
		c.subs[t.display] = s
		t.mu.Lock()
		t.subs[s] = struct{}{}
		t.mu.Unlock()
		c.b.deliverWG.Add(1)
		go s.run()
		return nil

	case wire.TAck:
		// The only client→broker ACK is the durable cursor commit.
		if f.Flags&wire.FlagOffset == 0 {
			return errors.New("broker: unexpected ACK from client")
		}
		topicName, part, off, err := wire.ParseAck(f)
		if err != nil {
			return err
		}
		s, ok := c.subs[topicKey{string(topicName), part}.display()]
		if !ok || !s.replay {
			return errors.New("broker: cursor commit without a replay subscription")
		}
		if s.group == "" {
			return errors.New("broker: cursor commit without a consumer group")
		}
		if err := s.t.cursors.Commit(s.group, off); err != nil {
			return err
		}
		return nil

	case wire.TOffsets:
		topicName, part, group, err := wire.ParseOffsetsReq(f)
		if err != nil {
			return err
		}
		name := string(topicName)
		// Offset queries are reads: replicas answer for partitions they
		// hold, reporting the range their follower has copied so far.
		if err := c.b.checkPart(name, part, false); err != nil {
			return err
		}
		t, err := c.b.getTopic(name, part)
		if err != nil {
			return err
		}
		if t.log == nil {
			return errors.New("broker: OFFSETS on a non-durable broker (no data dir)")
		}
		st := t.log.Stats()
		cursor := uint64(wire.OffsetCursor)
		if len(group) > 0 {
			if off, ok := t.cursors.Get(string(group)); ok {
				cursor = off
			}
		}
		c.writeOffsetsResp(t.nameBytes, t.part, st.Oldest, st.Next, cursor)
		return nil

	case wire.TCredit:
		topicName, part, n, err := wire.ParseCredit(f)
		if err != nil {
			return err
		}
		s, ok := c.subs[topicKey{string(topicName), part}.display()]
		if !ok {
			return errors.New("broker: CREDIT for unknown subscription")
		}
		s.credit.Add(int64(n))
		return nil

	case wire.TMeta:
		if err := wire.ParseMetaReq(f); err != nil {
			return err
		}
		c.writeMetaResp(c.b.meta())
		return nil

	case wire.TPing:
		token, err := wire.ParsePing(f)
		if err != nil {
			return err
		}
		c.writePing(token)
		return nil

	default:
		return errors.New("broker: unexpected frame type from client")
	}
}

// handleConsumeFrom opens a replay subscription: a log follower that
// streams the topic's WAL from the requested offset (or the consumer
// group's persisted cursor) and keeps following the log at the head.
func (c *conn) handleConsumeFrom(f wire.Frame) error {
	cf, err := wire.ParseConsumeFrom(f)
	if err != nil {
		return err
	}
	name := string(cf.Topic)
	// Replay reads are served by owners and replicas alike — a replica
	// streams whatever its follower has copied, which is how the
	// replication chain itself rides this path.
	if err := c.b.checkPart(name, cf.Part, false); err != nil {
		return err
	}
	t, err := c.b.getTopic(name, cf.Part)
	if err != nil {
		return err
	}
	if _, dup := c.subs[t.display]; dup {
		return errors.New("broker: duplicate subscription to " + t.display)
	}
	if t.log == nil {
		return errors.New("broker: replay subscription on a non-durable broker (no data dir)")
	}
	s := &sub{c: c, t: t, replay: true, group: string(cf.Group), from: cf.From, strict: cf.Strict}
	s.credit.Store(int64(cf.Credit))
	c.subs[t.display] = s
	t.mu.Lock()
	t.subs[s] = struct{}{}
	t.mu.Unlock()
	c.b.deliverWG.Add(1)
	go s.runReplay()
	return nil
}

// pumpLoop drains staged batches into their topics and acknowledges
// cumulatively. It exits when the reader closes the ingress queue,
// after flushing everything that was staged — which is what makes
// Shutdown lossless for accepted PRODUCE frames.
//
// The pump is a single goroutine, so it can hold an exclusive lane per
// topic: the first staged batch for a topic acquires a producer handle
// and every later batch runs the wait-free single-producer enqueue on
// that lane, CAS-free against the other connections. The handles are
// released when the pump exits so the lanes return to the pool.
func (c *conn) pumpLoop() {
	defer c.b.pumpWG.Done()
	seqs := map[*topic]uint64{}
	touched := make([]*topic, 0, 4)
	lanes := map[*topic]*ffq.ProducerHandle[msg]{}
	defer func() {
		for _, h := range lanes {
			if h != nil {
				h.Release()
			}
		}
	}()
	for {
		st, ok := c.ingress.TryDequeue()
		if !ok {
			if _, open := <-c.wake; open {
				continue
			}
			// Reader is gone; drain the leftovers and stop. The wake
			// channel only closes after ingress.Close, so everything the
			// reader staged is visible to TryDequeue by now.
			for {
				st, ok := c.ingress.TryDequeue()
				if !ok {
					return
				}
				c.pumpOne(st, seqs, &touched, lanes)
				c.flushAcks(seqs, &touched)
			}
		}
		// Opportunistically drain a run of staged batches, then send one
		// cumulative ACK per touched topic instead of one per frame.
		c.pumpOne(st, seqs, &touched, lanes)
		for {
			st, ok := c.ingress.TryDequeue()
			if !ok {
				break
			}
			c.pumpOne(st, seqs, &touched, lanes)
		}
		c.flushAcks(seqs, &touched)
	}
}

// pumpOne feeds one staged batch to the connection's lane of the
// topic's sharded queue. A nil map entry records a failed acquisition
// (more producing connections than lanes) so the shared-fallback-lane
// Enqueue is used without retrying the acquire on every batch.
//
// On a durable broker the batch goes to the topic's write-ahead log
// first — the ACK that follows the flush means "appended", so a batch
// the log rejects (disk failure) kills the connection unacknowledged
// instead of being enqueued as a ghost the log never saw.
func (c *conn) pumpOne(st staged, seqs map[*topic]uint64, touched *[]*topic, lanes map[*topic]*ffq.ProducerHandle[msg]) {
	if st.t.log != nil {
		c.walScratch = c.walScratch[:0]
		for _, m := range st.msgs {
			c.walScratch = append(c.walScratch, m.payload)
		}
		if _, err := st.t.log.Append(c.walScratch); err != nil {
			c.dead.Store(true)
			return
		}
	}
	h, seen := lanes[st.t]
	if !seen {
		h, _ = st.t.q.AcquireProducer()
		lanes[st.t] = h
	}
	if h != nil {
		h.EnqueueBatch(st.msgs)
	} else {
		for _, m := range st.msgs {
			st.t.q.Enqueue(m)
		}
	}
	seqs[st.t] += uint64(len(st.msgs))
	for _, t := range *touched {
		if t == st.t {
			return
		}
	}
	*touched = append(*touched, st.t)
}

// flushAcks writes one cumulative ACK per topic touched since the last
// flush.
func (c *conn) flushAcks(seqs map[*topic]uint64, touched *[]*topic) {
	for _, t := range *touched {
		c.writeAck(0, t.nameBytes, t.part, seqs[t])
		c.b.m.Acks.Add(1)
	}
	*touched = (*touched)[:0]
}

// teardown tears a failed/closed connection down: deliveries stop,
// the broker forgets the connection, the socket closes. The pump keeps
// running until the staged backlog is flushed — those messages were
// accepted and belong to their topics.
func (c *conn) teardown() {
	c.dead.Store(true)
	c.b.mu.Lock()
	_, tracked := c.b.conns[c]
	delete(c.b.conns, c)
	c.b.mu.Unlock()
	if tracked {
		c.b.m.ConnsOpen.Add(-1)
	}
	c.nc.Close()
}

// ---- serialized writer ----

// writeDeliver sends one DELIVER frame; false means the connection
// died (the claimed messages are lost — delivery is at-most-once once
// claimed, exactly like an in-process consumer crashing mid-handoff).
func (c *conn) writeDeliver(topic []byte, part uint32, msgs [][]byte) bool {
	if c.dead.Load() {
		return false
	}
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutProduce(wire.FlagDeliver, topic, part, msgs)
	err := c.flushLocked()
	c.wmu.Unlock()
	return c.writeOutcome(err)
}

// writeDeliverOffsets sends one replay DELIVER frame carrying the
// batch's base offset.
func (c *conn) writeDeliverOffsets(topic []byte, part uint32, base uint64, msgs [][]byte) bool {
	if c.dead.Load() {
		return false
	}
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutDeliverOffsets(topic, part, base, msgs)
	err := c.flushLocked()
	c.wmu.Unlock()
	return c.writeOutcome(err)
}

// writeOffsetsResp answers an OFFSETS query.
func (c *conn) writeOffsetsResp(topic []byte, part uint32, oldest, next, cursor uint64) bool {
	if c.dead.Load() {
		return false
	}
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutOffsetsResp(topic, part, oldest, next, cursor)
	err := c.flushLocked()
	c.wmu.Unlock()
	return c.writeOutcome(err)
}

// writeMetaResp answers a METADATA query.
func (c *conn) writeMetaResp(m wire.MetaResp) bool {
	if c.dead.Load() {
		return false
	}
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutMetaResp(m)
	err := c.flushLocked()
	c.wmu.Unlock()
	return c.writeOutcome(err)
}

// writeAck sends a cumulative ACK (or, with wire.FlagEnd, the
// subscription end-of-stream marker).
func (c *conn) writeAck(flags byte, topic []byte, part uint32, seq uint64) bool {
	if c.dead.Load() {
		return false
	}
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutAck(flags, topic, part, seq)
	err := c.flushLocked()
	c.wmu.Unlock()
	return c.writeOutcome(err)
}

// writePing answers a PING with its PONG.
func (c *conn) writePing(token uint64) bool {
	if c.dead.Load() {
		return false
	}
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutPing(token, true)
	err := c.flushLocked()
	c.wmu.Unlock()
	return c.writeOutcome(err)
}

// writeErrCode reports a typed protocol error to the peer (best
// effort; the connection is torn down right after).
func (c *conn) writeErrCode(code uint16, detail uint64, msg string) {
	if c.dead.Load() {
		return
	}
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutErrCode(code, detail, msg)
	c.flushLocked()
	c.wmu.Unlock()
}

// flushLocked writes the encode buffer to the socket. Callers hold wmu.
func (c *conn) flushLocked() error {
	_, err := c.nc.Write(c.wbuf.Bytes())
	return err
}

// writeOutcome marks the connection dead on a write error.
func (c *conn) writeOutcome(err error) bool {
	if err != nil {
		c.dead.Store(true)
		return false
	}
	return true
}

// ---- subscriptions ----

// sub is one (connection, topic) subscription: a delivery goroutine
// that claims messages from the topic with TryDequeue, gated by the
// client-granted credit window. A replay sub instead follows the
// topic's write-ahead log (runReplay), observing every message rather
// than competing for them.
type sub struct {
	c      *conn
	t      *topic
	credit atomic.Int64
	// stop force-stops the delivery goroutine (Shutdown deadline).
	stop atomic.Bool

	// replay marks a log-follower subscription; from is its requested
	// start offset (wire.OffsetCursor = the group's cursor) and group
	// the consumer group its ACK+FlagOffset commits apply to. strict
	// (wire.FlagStrict) turns silent retention clamps into typed
	// ECodeTruncated errors — replication followers must copy an exact
	// offset chain and need to resync deliberately, never skip.
	replay bool
	group  string
	from   uint64
	strict bool
}

// run is the delivery loop. The non-blocking TryDequeueBatch claim is
// essential here: a subscription without credit (or facing an empty
// topic) must not claim a rank, or it would hold messages hostage from
// the other subscribers — the broker-scale version of the paper's
// abandoned-rank problem. Batching the claim turns one CAS per message
// into one CAS per contiguous resolved run per lane.
func (s *sub) run() {
	defer s.c.b.deliverWG.Done()
	defer s.unlink()
	batch := make([]msg, 0, s.c.b.opts.DeliverBatch)
	payloads := make([][]byte, 0, s.c.b.opts.DeliverBatch)
	spins := 0
	for {
		if s.stop.Load() || s.c.dead.Load() {
			return
		}
		// End-of-stream is checked before the credit gate: sending the
		// marker costs no credit, and a credit-starved subscription must
		// still terminate when the topic drains (Shutdown would
		// otherwise wait forever on a consumer that went quiet).
		if s.t.q.Closed() && s.t.q.Len() == 0 {
			// Drained: every message this topic will ever carry has
			// been claimed by someone.
			s.c.writeAck(wire.FlagEnd, s.t.nameBytes, s.t.part, 0)
			return
		}
		cr := s.credit.Load()
		if cr <= 0 {
			spins++
			idleWait(spins)
			continue
		}
		// One batched claim up to the credit window: each non-empty lane
		// contributes a contiguous per-producer run with a single CAS.
		batch = batch[:min(int(cr), cap(batch))]
		batch = batch[:s.t.q.TryDequeueBatch(batch)]
		if len(batch) == 0 {
			spins++
			idleWait(spins)
			continue
		}
		spins = 0
		s.credit.Add(int64(-len(batch)))
		payloads = payloads[:0]
		for _, m := range batch {
			payloads = append(payloads, m.payload)
		}
		if lat := s.t.lat; lat != nil {
			// One clock read per DELIVER frame covers the whole batch.
			now := time.Now().UnixNano()
			for _, m := range batch {
				lat.Record(now - m.ingressNS)
			}
		}
		if !s.c.writeDeliver(s.t.nameBytes, s.t.part, payloads) {
			return
		}
		s.c.b.m.MsgsOut.Add(int64(len(batch)))
		s.c.b.m.DeliverFrames.Add(1)
	}
}

// runReplay is the log-follower delivery loop. It reads the topic's
// WAL from the subscription's start offset, streams DELIVER+FlagOffset
// batches under the same credit window as live subscriptions, and at
// the head parks on the log's append notification — tailing the log
// is just replay that caught up. It ends with ACK+FlagEnd when the log
// is sealed (shutdown) and fully delivered.
func (s *sub) runReplay() {
	defer s.c.b.deliverWG.Done()
	defer s.unlink()
	from := s.from
	if from == wire.OffsetCursor {
		// Resume from the group's committed cursor; a group with no
		// cursor (or no group at all) starts at the log's oldest offset.
		from = 0
		if s.group != "" {
			if off, ok := s.t.cursors.Get(s.group); ok {
				from = off
			}
		}
	}
	// A strict follower (replication) requires the exact offset chain:
	// if retention already dropped the requested start, tell it where
	// the live log begins — detail carries the oldest retained offset —
	// so it can ResetTo and resync instead of silently skipping a gap.
	if s.strict {
		if oldest := s.t.log.OldestOffset(); from < oldest {
			s.c.writeErrCode(wire.ECodeTruncated, oldest,
				"broker: strict replay of "+s.t.display+" from a truncated offset")
			s.c.dead.Store(true)
			return
		}
	}
	want := from
	r := s.t.log.NewReader(from)
	defer r.Close()
	spins := 0
	for {
		if s.stop.Load() || s.c.dead.Load() {
			return
		}
		// Like the live loop, end-of-stream is checked before the credit
		// gate: a credit-starved follower that has already delivered the
		// whole sealed log must still terminate, or Shutdown's drain
		// would wait on it forever.
		if s.t.log.Sealed() && r.Offset() >= s.t.log.NextOffset() {
			s.c.writeAck(wire.FlagEnd, s.t.nameBytes, s.t.part, 0)
			return
		}
		cr := s.credit.Load()
		if cr <= 0 {
			spins++
			idleWait(spins)
			continue
		}
		max := int(cr)
		if max > s.c.b.opts.DeliverBatch {
			max = s.c.b.opts.DeliverBatch
		}
		base, msgs, err := r.Next(max)
		if err != nil {
			// Corrupt retained log body: surface it instead of skipping
			// silently; the client sees ERR and the stream ends.
			s.c.writeErrCode(wire.ECodeGeneric, 0, "broker: replay failed: "+err.Error())
			s.c.dead.Store(true)
			return
		}
		if s.strict && len(msgs) > 0 && base != want {
			// Retention overtook the reader mid-stream (or the follower
			// asked past the head and the chain restarted lower): the
			// reader clamped, which a strict follower must not absorb.
			s.c.writeErrCode(wire.ECodeTruncated, base,
				"broker: strict replay of "+s.t.display+" hit a retention gap")
			s.c.dead.Store(true)
			return
		}
		if len(msgs) == 0 {
			if s.t.log.Sealed() {
				// Shutdown sealed the log and we delivered everything in
				// it: clean end of stream.
				s.c.writeAck(wire.FlagEnd, s.t.nameBytes, s.t.part, 0)
				return
			}
			// Caught up with the head: park until the next append (or
			// seal). The timeout bounds how long a dead connection's
			// follower lingers when the topic goes quiet.
			select {
			case <-s.t.log.WaitAppend(base):
			case <-time.After(250 * time.Millisecond):
			}
			spins = 0
			continue
		}
		spins = 0
		want = base + uint64(len(msgs))
		s.credit.Add(int64(-len(msgs)))
		if !s.c.writeDeliverOffsets(s.t.nameBytes, s.t.part, base, msgs) {
			return
		}
		s.c.b.m.MsgsOut.Add(int64(len(msgs)))
		s.c.b.m.DeliverFrames.Add(1)
	}
}

// unlink removes the subscription from its topic's accounting.
func (s *sub) unlink() {
	s.t.mu.Lock()
	delete(s.t.subs, s)
	s.t.mu.Unlock()
}

// idleWait is the delivery/credit idle backoff: yield briefly, then
// sleep with escalation up to 1ms. Subscriptions are not latency
// critical the way queue cells are — a parked subscription wakes at
// worst 1ms after traffic resumes, and an idle broker burns no CPU.
func idleWait(spins int) {
	switch {
	case spins < 16:
		runtime.Gosched()
	case spins < 64:
		time.Sleep(50 * time.Microsecond)
	default:
		time.Sleep(time.Millisecond)
	}
}

// isTimeout reports whether err is a deadline error (Shutdown's reader
// wake-up).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
