package broker_test

import (
	"context"
	"encoding/binary"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ffq/internal/broker"
	"ffq/internal/broker/client"
	"ffq/internal/obs/expvarx"
	"ffq/internal/wire"
)

// startBroker runs a broker on a loopback TCP listener and returns it
// with its address and a shutdown helper.
func startBroker(t *testing.T, opts broker.Options) (*broker.Broker, string) {
	t.Helper()
	b, err := broker.New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go b.Serve(ln)
	return b, ln.Addr().String()
}

// msg encodes (producer, seq) as a fixed 9-byte payload.
func msg(producer byte, seq uint64) []byte {
	m := make([]byte, 9)
	m[0] = producer
	binary.BigEndian.PutUint64(m[1:], seq)
	return m
}

// TestFanOutTCP is the end-to-end acceptance test: 4 producer
// connections × 4 consumer connections over real TCP, every message
// delivered exactly once, per-producer FIFO preserved at each
// consumer, and a graceful Shutdown that drains the backlog and ends
// every subscription with the end-of-stream marker.
func TestFanOutTCP(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	b, addr := startBroker(t, broker.Options{})

	// Consumers first, so deliveries start while producing is underway.
	type recvd struct {
		producer byte
		seq      uint64
	}
	got := make([][]recvd, consumers)
	var consumerWG sync.WaitGroup
	for ci := 0; ci < consumers; ci++ {
		c, err := client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatalf("consumer dial: %v", err)
		}
		defer c.Close()
		sub, err := c.Subscribe("orders", 256)
		if err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		consumerWG.Add(1)
		go func(ci int) {
			defer consumerWG.Done()
			for {
				m, ok := sub.Recv()
				if !ok {
					// A graceful drain ends with the FlagEnd marker; the
					// broker closing the socket afterwards is expected.
					if !sub.Ended() {
						t.Errorf("consumer %d: stream ended without end-of-stream marker: %v", ci, c.Err())
					}
					return
				}
				if len(m) != 9 {
					t.Errorf("consumer %d: bad payload length %d", ci, len(m))
					return
				}
				got[ci] = append(got[ci], recvd{m[0], binary.BigEndian.Uint64(m[1:])})
			}
		}(ci)
	}

	var producerWG sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		producerWG.Add(1)
		go func(pi int) {
			defer producerWG.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				t.Errorf("producer dial: %v", err)
				return
			}
			defer c.Close()
			for seq := uint64(0); seq < perProd; seq++ {
				if err := c.Publish("orders", msg(byte(pi), seq)); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
			// Drain guarantees the broker has accepted (ACKed) every
			// message before we allow Shutdown.
			if err := c.Drain(); err != nil {
				t.Errorf("drain: %v", err)
			}
		}(pi)
	}
	producerWG.Wait()

	// Shutdown drains: backlog flows to the consumers, then every
	// subscription sees end-of-stream, closing the Recv channels.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	consumerWG.Wait()

	// Exactly once, nothing lost.
	seen := make(map[recvd]int)
	total := 0
	for ci := range got {
		total += len(got[ci])
		for _, r := range got[ci] {
			seen[r]++
		}
	}
	if want := producers * perProd; total != want {
		t.Fatalf("delivered %d messages, want %d", total, want)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("message (producer %d, seq %d) delivered %d times", r.producer, r.seq, n)
		}
	}
	// Per-producer FIFO at each consumer.
	for ci := range got {
		last := map[byte]uint64{}
		for _, r := range got[ci] {
			if prev, ok := last[r.producer]; ok && r.seq <= prev {
				t.Fatalf("consumer %d: producer %d seq %d after %d", ci, r.producer, r.seq, prev)
			}
			last[r.producer] = r.seq
		}
	}
}

// TestLaneExhaustionFallback runs more producing connections than the
// topic has lanes, so some pumps lose the AcquireProducer race and take
// the transiently-claimed shared-lane path. Delivery must still be
// exactly-once with per-producer FIFO at every consumer.
func TestLaneExhaustionFallback(t *testing.T) {
	const (
		producers = 6
		consumers = 2
		perProd   = 2000
	)
	b, addr := startBroker(t, broker.Options{TopicLanes: 2, TopicLaneDepth: 64})

	type recvd struct {
		producer byte
		seq      uint64
	}
	got := make([][]recvd, consumers)
	var consumerWG sync.WaitGroup
	for ci := 0; ci < consumers; ci++ {
		c, err := client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatalf("consumer dial: %v", err)
		}
		defer c.Close()
		sub, err := c.Subscribe("narrow", 256)
		if err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		consumerWG.Add(1)
		go func(ci int) {
			defer consumerWG.Done()
			for {
				m, ok := sub.Recv()
				if !ok {
					if !sub.Ended() {
						t.Errorf("consumer %d: no end-of-stream marker: %v", ci, c.Err())
					}
					return
				}
				got[ci] = append(got[ci], recvd{m[0], binary.BigEndian.Uint64(m[1:])})
			}
		}(ci)
	}

	var producerWG sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		producerWG.Add(1)
		go func(pi int) {
			defer producerWG.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				t.Errorf("producer dial: %v", err)
				return
			}
			defer c.Close()
			for seq := uint64(0); seq < perProd; seq++ {
				if err := c.Publish("narrow", msg(byte(pi), seq)); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
			if err := c.Drain(); err != nil {
				t.Errorf("drain: %v", err)
			}
		}(pi)
	}
	producerWG.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	consumerWG.Wait()

	seen := make(map[recvd]int)
	total := 0
	for ci := range got {
		total += len(got[ci])
		for _, r := range got[ci] {
			seen[r]++
		}
	}
	if want := producers * perProd; total != want {
		t.Fatalf("delivered %d messages, want %d", total, want)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("message (producer %d, seq %d) delivered %d times", r.producer, r.seq, n)
		}
	}
	for ci := range got {
		last := map[byte]uint64{}
		for _, r := range got[ci] {
			if prev, ok := last[r.producer]; ok && r.seq <= prev {
				t.Fatalf("consumer %d: producer %d seq %d after %d", ci, r.producer, r.seq, prev)
			}
			last[r.producer] = r.seq
		}
	}
}

// TestCreditGatesDelivery drives the wire protocol directly: a
// subscription with credit 2 must receive exactly 2 of 10 queued
// messages, and the rest only after a CREDIT grant.
func TestCreditGatesDelivery(t *testing.T) {
	b, addr := startBroker(t, broker.Options{})
	defer b.Shutdown(context.Background())

	// Producer: queue 10 messages and wait for the cumulative ACK.
	prod, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer prod.Close()
	for i := 0; i < 10; i++ {
		if err := prod.Publish("gated", msg(0, uint64(i))); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	if err := prod.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Raw consumer with an initial credit of 2.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	var buf wire.Buffer
	buf.PutConsume([]byte("gated"), wire.NoPartition, 2)
	if _, err := nc.Write(buf.Bytes()); err != nil {
		t.Fatalf("write: %v", err)
	}

	r := wire.NewReader(nc)
	recv := func(deadline time.Duration) int {
		n := 0
		for {
			nc.SetReadDeadline(time.Now().Add(deadline))
			f, err := r.Next()
			if err != nil {
				return n // deadline: no more deliveries in flight
			}
			if f.Type != wire.TProduce || f.Flags&wire.FlagDeliver == 0 {
				t.Fatalf("unexpected frame type %d flags %d", f.Type, f.Flags)
			}
			p, err := wire.ParseProduce(f)
			if err != nil {
				t.Fatalf("ParseProduce: %v", err)
			}
			n += p.N
		}
	}
	if n := recv(time.Second); n != 2 {
		t.Fatalf("got %d messages with credit 2, want 2", n)
	}
	buf.Reset()
	buf.PutCredit([]byte("gated"), wire.NoPartition, 8)
	if _, err := nc.Write(buf.Bytes()); err != nil {
		t.Fatalf("write credit: %v", err)
	}
	if n := recv(time.Second); n != 8 {
		t.Fatalf("got %d messages after CREDIT 8, want 8", n)
	}
}

// TestPipeLoopback exercises ServeConn with net.Pipe ends — the
// transport the loopback benchmark uses — including PING round-trips.
func TestPipeLoopback(t *testing.T) {
	b, err := broker.New(broker.Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv, cli := net.Pipe()
	b.ServeConn(srv)
	c := client.New(cli, client.Options{MaxBatch: 8})

	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	sub, err := c.Subscribe("pipe", 64)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Publish("pipe", msg(1, uint64(i))); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < 100; i++ {
		m, ok := sub.Recv()
		if !ok {
			t.Fatalf("stream ended at message %d: %v", i, c.Err())
		}
		if got := binary.BigEndian.Uint64(m[1:]); got != uint64(i) {
			t.Fatalf("message %d out of order: got seq %d", i, got)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, ok := sub.Recv(); ok {
		t.Fatal("Recv delivered after end-of-stream")
	}
	c.Close()
}

// TestProtocolErrorTearsDownConn checks the fail-closed path: a bogus
// frame type gets an ERR frame back and the connection is dropped
// without taking the broker down.
func TestProtocolErrorTearsDownConn(t *testing.T) {
	b, addr := startBroker(t, broker.Options{})
	defer b.Shutdown(context.Background())

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// Frame type 99 is not a thing.
	if _, err := nc.Write([]byte{0, 0, 0, 2, 99, 0}); err != nil {
		t.Fatalf("write: %v", err)
	}
	r := wire.NewReader(nc)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := r.Next()
	if err != nil {
		t.Fatalf("expected ERR frame, got %v", err)
	}
	if f.Type != wire.TErr {
		t.Fatalf("expected TErr, got type %d", f.Type)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("connection still open after protocol error")
	}
	if n := b.Metrics().ProtoErrors.Load(); n != 1 {
		t.Fatalf("ProtoErrors = %d, want 1", n)
	}

	// The broker still serves new connections.
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial after error: %v", err)
	}
	defer c.Close()
	if err := c.Publish("still-alive", msg(0, 0)); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestMetricsExposition checks that an instrumented broker shows up in
// the Prometheus endpoint: its own ffqd_* families plus a per-topic
// queue registration.
func TestMetricsExposition(t *testing.T) {
	b, addr := startBroker(t, broker.Options{
		Instrument:    true,
		MetricsPrefix: "ffqd_test",
	})

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	sub, err := c.Subscribe("metrics", 32)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Publish("metrics", msg(0, uint64(i))); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := sub.Recv(); !ok {
			t.Fatalf("stream ended early: %v", c.Err())
		}
	}

	// MsgsOut is counted just after the DELIVER write, so it can trail
	// the client's Recv by an instant; poll briefly.
	wants := []string{
		"ffqd_connections 1",
		"ffqd_messages_in_total 10",
		"ffqd_messages_out_total 10",
		`ffqd_topic_subscribers{topic="metrics"} 1`,
		`ffq_enqueues_total{queue="ffqd_test/topic/metrics"}`,
		`ffq_lane_depth{queue="ffqd_test/topic/metrics",lane="0"}`,
	}
	var expo string
	deadline := time.Now().Add(5 * time.Second)
	for {
		expo = expvarx.Exposition()
		missing := false
		for _, want := range wants {
			if !strings.Contains(expo, want) {
				missing = true
			}
		}
		if !missing || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range wants {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Shutdown unregisters: the families disappear from the exposition.
	if expo := expvarx.Exposition(); strings.Contains(expo, "ffqd_test/topic/metrics") {
		t.Error("topic queue still registered after Shutdown")
	}
}

// TestLatencyMetricsExposition checks the tail-latency families end to
// end: an instrumented broker with OpLatency and the stall watchdog
// armed exports the per-topic residence-time histogram
// (ffqd_e2e_latency_ns), the topic queue's per-op histograms
// (ffq_op_latency_ns) and the stall counter — and the exposition
// round-trips through the parse-side quantile helper ffq-top -scrape
// uses.
func TestLatencyMetricsExposition(t *testing.T) {
	b, addr := startBroker(t, broker.Options{
		Instrument:     true,
		OpLatency:      true,
		StallThreshold: time.Microsecond,
		MetricsPrefix:  "ffqd_lat",
	})

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	sub, err := c.Subscribe("lat", 32)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Publish("lat", msg(0, uint64(i))); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := sub.Recv(); !ok {
			t.Fatalf("stream ended early: %v", c.Err())
		}
	}

	// The delivery-side stamp lands just before the DELIVER write, so it
	// can trail the client's Recv by an instant; poll briefly.
	wants := []string{
		`ffqd_e2e_latency_ns_count{topic="lat"} 10`,
		`ffq_op_latency_ns_bucket{queue="ffqd_lat/topic/lat",op="enqueue"`,
		`ffq_op_latency_ns_bucket{queue="ffqd_lat/topic/lat",op="dequeue"`,
		`ffq_stall_events_total{queue="ffqd_lat/topic/lat"}`,
	}
	var expo string
	deadline := time.Now().Add(5 * time.Second)
	for {
		expo = expvarx.Exposition()
		missing := false
		for _, want := range wants {
			if !strings.Contains(expo, want) {
				missing = true
			}
		}
		if !missing || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range wants {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Round-trip through the parser: the scrape side must recover a
	// usable residence-time percentile from the folded histogram.
	samples, err := expvarx.Parse(strings.NewReader(expo))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ss := expvarx.NewSampleSet(samples)
	if p99, ok := ss.HistQuantile("ffqd_e2e_latency_ns", map[string]string{"topic": "lat"}, 0.99); !ok || p99 <= 0 {
		t.Errorf("e2e p99 = %v ok=%v, want a positive quantile", p99, ok)
	}
	if _, ok := ss.HistQuantile("ffq_op_latency_ns",
		map[string]string{"queue": "ffqd_lat/topic/lat", "op": "dequeue"}, 0.999); !ok {
		t.Error("per-op dequeue histogram not recoverable from the exposition")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if expo := expvarx.Exposition(); strings.Contains(expo, "ffqd_lat") {
		t.Error("latency families still registered after Shutdown")
	}

	// An uninstrumented broker registers none of it.
	b2, addr2 := startBroker(t, broker.Options{MetricsPrefix: "ffqd_off"})
	c2, err := client.Dial(addr2, client.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c2.Publish("lat", msg(0, 0)); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := c2.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c2.Close()
	if expo := expvarx.Exposition(); strings.Contains(expo, "ffqd_off") {
		t.Error("uninstrumented broker leaked metrics registrations")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := b2.Shutdown(ctx2); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
