package broker

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ffq/internal/shm"
	"ffq/internal/wire"
)

// Shared-memory ingress: local producers that want to skip the TCP
// stack entirely create mmap segments (internal/shm) under
// Options.ShmDir, one per producer. A scanner goroutine notices new
// *.ffq files and starts a pump per segment:
//
//	producer process ──mmap SPSC──▶ shm pump ──EnqueueBatch──▶ topic
//
// which is the same shape as a connection's ingress lane — the segment
// replaces the reader+SPSC pair, and from the topic onward (per-pump
// producer lane, WAL append before enqueue on durable brokers, credit-
// gated fan-out) nothing changes. The pump removes a segment's file
// once its producer closed it and it is drained, or once the producer
// died (heartbeat PID); a broker shutdown leaves segments in place for
// the next run.

// DefaultShmScanInterval is how often the ShmDir scanner looks for new
// segment files.
const DefaultShmScanInterval = 50 * time.Millisecond

// shmDrainMax bounds the payloads a pump copies out of its segment per
// drain round (and so the EnqueueBatch size it feeds the topic lane).
const shmDrainMax = 256

// shmState tracks the segments being served. Quarantined paths failed
// to attach (corrupt headers and the like); they are skipped until the
// file is replaced, so one bad file cannot hot-loop the scanner.
type shmState struct {
	mu          sync.Mutex
	serving     map[string]struct{}
	quarantined map[string]struct{}
}

// scanShmDir starts pumps for segment files not already being served.
func (b *Broker) scanShmDir() {
	entries, err := os.ReadDir(b.opts.ShmDir)
	if err != nil {
		return // transient or misconfigured; next tick retries
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ffq") {
			continue
		}
		path := filepath.Join(b.opts.ShmDir, e.Name())
		b.shm.mu.Lock()
		_, busy := b.shm.serving[path]
		_, bad := b.shm.quarantined[path]
		if !busy && !bad {
			b.shm.serving[path] = struct{}{}
		}
		b.shm.mu.Unlock()
		if busy || bad {
			continue
		}
		c, err := shm.Attach(path)
		if err != nil {
			b.m.ShmAttachErrors.Add(1)
			b.shm.mu.Lock()
			delete(b.shm.serving, path)
			// ErrBusy means someone else holds the consumer end; that
			// can resolve, so retry it. Anything else is fail-closed
			// header rejection — quarantine the file.
			if err != shm.ErrBusy {
				b.shm.quarantined[path] = struct{}{}
			}
			b.shm.mu.Unlock()
			continue
		}
		b.m.ShmSegments.Add(1)
		b.shmWG.Add(1)
		go b.shmServe(path, c)
	}
}

// shmScanLoop polls ShmDir for new segments until Shutdown.
func (b *Broker) shmScanLoop() {
	defer b.shmWG.Done()
	t := time.NewTicker(b.opts.ShmScanInterval)
	defer t.Stop()
	b.scanShmDir()
	for {
		select {
		case <-b.draining:
			return
		case <-t.C:
			b.scanShmDir()
		}
	}
}

// shmServe pumps one segment into its topic until the segment ends or
// the broker drains. It mirrors a connection pump: exclusive producer
// lane on the topic, WAL append before enqueue when durable.
func (b *Broker) shmServe(path string, c *shm.Consumer) {
	defer b.shmWG.Done()
	removeFile := false
	defer func() {
		c.Detach()
		if removeFile {
			os.Remove(path)
		}
		b.m.ShmSegments.Add(-1)
		b.shm.mu.Lock()
		delete(b.shm.serving, path)
		b.shm.mu.Unlock()
	}()

	t, err := b.getTopic(c.Topic(), wire.NoPartition)
	if err != nil {
		return // only fails during shutdown; leave the segment for the next run
	}
	h, _ := t.q.AcquireProducer()
	if h != nil {
		defer h.Release()
	}

	payloads := make([][]byte, 0, shmDrainMax)
	walScratch := make([][]byte, 0, shmDrainMax)
	idle := 0
	finishing := false // Close/death observed; the next empty drain ends the segment
	for {
		payloads = payloads[:0]
		payloads, err = c.TryDrain(payloads, shmDrainMax)
		if err != nil {
			// Corrupted underneath us; stop serving, keep the file for
			// inspection and quarantine it against re-attach.
			b.m.ShmAttachErrors.Add(1)
			b.shm.mu.Lock()
			b.shm.quarantined[path] = struct{}{}
			b.shm.mu.Unlock()
			return
		}
		if len(payloads) > 0 {
			idle = 0
			if t.log != nil {
				walScratch = append(walScratch[:0], payloads...)
				if _, err := t.log.Append(walScratch); err != nil {
					return // disk failure: stop unacknowledged, like a conn pump
				}
			}
			msgs := make([]msg, len(payloads))
			var stamp int64
			if t.lat != nil {
				stamp = time.Now().UnixNano()
			}
			var bytes int64
			for i, pl := range payloads {
				msgs[i] = msg{payload: pl, ingressNS: stamp}
				bytes += int64(len(pl))
			}
			if h != nil {
				h.EnqueueBatch(msgs)
			} else {
				for _, m := range msgs {
					t.q.Enqueue(m)
				}
			}
			b.m.ShmMsgs.Add(int64(len(msgs)))
			b.m.ShmBytes.Add(bytes)
			continue
		}
		// Empty. Decide between exit conditions and a short idle sleep.
		select {
		case <-b.draining:
			return // leave the segment; unconsumed values survive the restart
		default:
		}
		if finishing {
			// This drain came up empty after Close/death was observed,
			// so every final publish racing with it has already gone
			// through the WAL+enqueue path above; the segment is garbage.
			removeFile = true
			return
		}
		if c.CloseRequested() || !c.ProducerAlive() {
			// Producer is done (or dead). Publishes precede the Close
			// store, so looping back for one more drain — through the
			// normal WAL+enqueue path, never consumed here — closes the
			// race with its final publishes.
			finishing = true
			continue
		}
		idle++
		if idle > 1 {
			time.Sleep(time.Millisecond)
		}
	}
}

// ShmTopicDepths reports the approximate unconsumed depth of every
// served segment, keyed by topic (summed over a topic's segments).
// Metrics collection uses it for the ffq_shm_depth gauge.
func (b *Broker) ShmTopicDepths() map[string]int64 {
	// Depth needs the Consumer, but pumps own their consumers
	// exclusively; instead of sharing them, read the counters straight
	// from the mapped headers of the files being served.
	b.shm.mu.Lock()
	paths := make([]string, 0, len(b.shm.serving))
	for p := range b.shm.serving {
		paths = append(paths, p)
	}
	b.shm.mu.Unlock()
	out := map[string]int64{}
	for _, p := range paths {
		topic, depth, err := shm.PeekDepth(p)
		if err != nil {
			continue
		}
		out[topic] += depth
	}
	return out
}

// initShm wires the shared-memory ingress into a new broker; called
// from New when Options.ShmDir is set.
func (b *Broker) initShm() {
	b.shm.serving = map[string]struct{}{}
	b.shm.quarantined = map[string]struct{}{}
	b.shmWG.Add(1)
	go b.shmScanLoop()
}
