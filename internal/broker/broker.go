// Package broker is ffqd's data plane: FFQ fan-out put on the network.
//
// # Architecture
//
// Every accepted connection gets a reader goroutine, a bounded SPSC
// ingress queue and a pump goroutine:
//
//	conn → reader ──SPSC──▶ pump ──EnqueueBatch──▶ topic (ShardedMPMC)
//	                               (own lane)         │ TryDequeueBatch
//	                                  subscription ◀──┘ (one per CONSUME)
//	                                       │ DELIVER frames, credit-gated
//	                                       ▼
//	                                     conn writer
//
// The reader decodes PRODUCE frames and stages each batch — one arena
// copy per frame — into its connection's SPSC queue (the paper's
// one-queue-per-producer shape). The SPSC queue is bounded, so a
// producer that outruns the broker stalls its own reader and the
// backpressure propagates into TCP, never into other connections.
//
// Topics are sharded MPMC queues of per-producer FFQ^s lanes: each
// connection's pump acquires its own lane per topic on first produce
// and EnqueueBatches into it with the wait-free single-producer path —
// no CAS against the other connections, one tail publication per
// staged batch. (At most lanes-1 handles are granted per topic;
// connections beyond that share the fallback lane, which still
// preserves their per-producer FIFO order.) The lanes are bounded; a pump facing a
// full lane spins until subscribers drain it, which stalls that
// connection's ingress queue and, through it, the producer's TCP
// stream — the same backpressure chain as before, now extending all
// the way to the topic. Cumulative ACKs per touched topic follow each
// pump flush.
//
// Fan-out is competitive-consumer: each subscription claims a batch of
// messages up to its credit window with one TryDequeueBatch scan (a
// single CAS per non-empty lane instead of one claim per message), so
// a message is delivered to exactly one subscriber and per-producer
// FIFO order is preserved per subscriber. The non-blocking claim is
// what keeps slow consumers from stalling the topic: a subscription
// with no credit simply does not claim — a blocking dequeue would park
// it on a rank and starve the other subscribers behind it.
//
// # Credit-window backpressure
//
// A CONSUME frame opens a subscription with an initial credit: the
// number of messages the broker may deliver before hearing CREDIT
// again. Deliveries debit the window before they claim; a window at
// zero pauses only that subscription. Credit therefore bounds the
// bytes in flight per subscriber and lets one stalled consumer idle
// while the rest of the pool keeps draining the topic.
//
// # Durable topics
//
// With Options.DataDir set every topic is durable: the pump appends
// each staged batch to the topic's write-ahead log (internal/wal)
// before enqueueing it for live fan-out, so the cumulative ACK a
// producer receives means "on the log", under whatever fsync policy
// the broker runs. The log assigns each message a monotonic per-topic
// offset at that append.
//
// The live fan-out path is unchanged — competitive consumers claim
// from the in-memory sharded queue exactly as before. What durability
// adds is the replay subscription (CONSUME+FlagOffset): a log
// follower that reads the WAL from a requested offset (or its
// consumer group's persisted cursor), streams DELIVER+FlagOffset
// batches carrying explicit offsets, and on reaching the head keeps
// following the log by parking on its append notification — replay
// and live tail are one code path over one source of truth. Followers
// observe every message (they never claim from the live queue, so
// they steal nothing from competitive subscribers), and commit their
// position with ACK+FlagOffset, which persists the group cursor.
//
// # Shutdown
//
// Shutdown drains rather than drops: stop accepting, cut PRODUCE off
// (readers stay up, still serving CREDIT so the drain can progress),
// let pumps flush staged batches into their topics, seal the
// write-ahead logs (flushing them to stable storage and persisting
// consumer cursors — nothing acknowledged is lost), close the topic
// queues (safe: all producers have exited), then let every
// subscription drain its topic — still credit-gated — and finish with
// an ACK+FlagEnd end-of-stream marker. A context bounds the wait;
// expiry force-stops the remaining subscriptions.
package broker

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ffq"
	"ffq/internal/cluster"
	"ffq/internal/obs"
	"ffq/internal/obs/expvarx"
	"ffq/internal/wal"
	"ffq/internal/wire"
)

// Defaults for Options zero values.
const (
	// DefaultIngressBuffer is the per-connection staging queue capacity
	// (staged PRODUCE batches, not messages).
	DefaultIngressBuffer = 256
	// DefaultDeliverBatch caps messages per DELIVER frame.
	DefaultDeliverBatch = 64
	// DefaultTopicLanes is the number of per-producer lanes in each
	// topic queue. Up to lanes-1 connections get an exclusive lane;
	// the rest share the remainder through transient claims.
	DefaultTopicLanes = 8
	// DefaultTopicLaneDepth is each lane's message capacity; a full
	// lane backpressures its producing connection.
	DefaultTopicLaneDepth = 1024
)

// Options configures a Broker.
type Options struct {
	// IngressBuffer is the per-connection SPSC staging capacity in
	// PRODUCE batches; must be a power of two. 0 means
	// DefaultIngressBuffer.
	IngressBuffer int
	// DeliverBatch caps the messages packed into one DELIVER frame.
	// 0 means DefaultDeliverBatch.
	DeliverBatch int
	// TopicLanes is the number of per-producer lanes in each topic
	// queue. Size it to the expected number of concurrently producing
	// connections per topic; 0 means DefaultTopicLanes.
	TopicLanes int
	// TopicLaneDepth is each lane's capacity in messages (a power of
	// two). A full lane stalls its producing connection's pump — the
	// broker's topic-level backpressure. 0 means DefaultTopicLaneDepth.
	TopicLaneDepth int
	// Instrument enables queue instrumentation on every topic and
	// registers the topics plus the broker's own counters with the
	// expvarx Prometheus endpoint.
	Instrument bool
	// OpLatency additionally records per-operation enqueue/dequeue
	// latency histograms on every topic queue (two clock reads per op;
	// exported as ffq_op_latency_ns). Implies instrumentation of the
	// topic queues but not the broker-level collectors — pair it with
	// Instrument to see the histograms on /metrics.
	OpLatency bool
	// StallThreshold arms the stall watchdog on every topic queue:
	// blocking waits past the threshold become timestamped stall
	// events (exported as ffq_stall_events_total / ffq_stall_seconds).
	// 0 leaves the watchdog off.
	StallThreshold time.Duration
	// MetricsPrefix namespaces the expvarx registrations (useful when
	// tests run several instrumented brokers in one process). Empty
	// means "ffqd".
	MetricsPrefix string

	// DataDir turns on durable topics: every topic gets a write-ahead
	// log under DataDir/<topic> and producers are only ACKed after
	// their batch is appended to it. Empty means in-memory only.
	DataDir string
	// Fsync is the WAL durability policy (see wal.SyncPolicy); only
	// meaningful with DataDir set.
	Fsync wal.SyncPolicy
	// FsyncInterval is the background fsync period under
	// wal.SyncInterval. 0 means wal.DefaultSyncInterval.
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment roll threshold. 0 means
	// wal.DefaultSegmentBytes.
	SegmentBytes int64
	// RetentionBytes/RetentionAge bound each topic's log (oldest
	// sealed segments are dropped past either limit); 0 means
	// unbounded.
	RetentionBytes int64
	RetentionAge   time.Duration

	// ShmDir turns on shared-memory ingress: the broker scans the
	// directory for mmap segment files (internal/shm) created by local
	// producers and pumps each into its topic. Empty means off.
	ShmDir string
	// ShmScanInterval is how often ShmDir is scanned for new segments.
	// 0 means DefaultShmScanInterval.
	ShmScanInterval time.Duration

	// Cluster puts the broker in cluster mode: partitioned frames are
	// checked against the static partition map (PRODUCE and live
	// CONSUME only on the partition's owner; replay and OFFSETS also on
	// its replicas) and METADATA answers carry the node list. Requires
	// DataDir — replication follows the write-ahead log. nil means
	// standalone, where any partition id is accepted as a plain
	// namespace.
	Cluster *cluster.Config
}

// Option validation errors; Validate wraps them with detail.
var (
	ErrNegativeOption          = errors.New("broker: option must not be negative")
	ErrBadIngressBuffer        = errors.New("broker: IngressBuffer must be a power of two")
	ErrBadLaneDepth            = errors.New("broker: TopicLaneDepth must be a power of two")
	ErrRetentionWithoutDataDir = errors.New("broker: retention options require DataDir")
	ErrFsyncWithoutDataDir     = errors.New("broker: fsync options require DataDir")
	ErrSegmentWithoutDataDir   = errors.New("broker: SegmentBytes requires DataDir")
	ErrClusterWithoutDataDir   = errors.New("broker: cluster mode requires DataDir (replication follows the WAL)")
)

// Validate checks the options for internal consistency and returns a
// typed error (one of the Err* sentinels, wrapped, or a
// cluster.Err* sentinel from the embedded cluster config) on the
// first violation. New validates automatically; cmd wiring calls it
// directly to reject bad flag combinations before any socket opens.
func (o *Options) Validate() error {
	for _, v := range []struct {
		name string
		val  int64
	}{
		{"IngressBuffer", int64(o.IngressBuffer)},
		{"DeliverBatch", int64(o.DeliverBatch)},
		{"TopicLanes", int64(o.TopicLanes)},
		{"TopicLaneDepth", int64(o.TopicLaneDepth)},
		{"SegmentBytes", o.SegmentBytes},
		{"RetentionBytes", o.RetentionBytes},
		{"RetentionAge", int64(o.RetentionAge)},
		{"FsyncInterval", int64(o.FsyncInterval)},
		{"StallThreshold", int64(o.StallThreshold)},
		{"ShmScanInterval", int64(o.ShmScanInterval)},
	} {
		if v.val < 0 {
			return fmt.Errorf("%w: %s = %d", ErrNegativeOption, v.name, v.val)
		}
	}
	if o.IngressBuffer != 0 && o.IngressBuffer&(o.IngressBuffer-1) != 0 {
		return fmt.Errorf("%w: %d", ErrBadIngressBuffer, o.IngressBuffer)
	}
	if o.TopicLaneDepth != 0 && o.TopicLaneDepth&(o.TopicLaneDepth-1) != 0 {
		return fmt.Errorf("%w: %d", ErrBadLaneDepth, o.TopicLaneDepth)
	}
	if o.DataDir == "" {
		if o.RetentionBytes != 0 || o.RetentionAge != 0 {
			return ErrRetentionWithoutDataDir
		}
		if o.Fsync != wal.SyncOff || o.FsyncInterval != 0 {
			return ErrFsyncWithoutDataDir
		}
		if o.SegmentBytes != 0 {
			return ErrSegmentWithoutDataDir
		}
		if o.Cluster != nil {
			return ErrClusterWithoutDataDir
		}
	}
	if o.Cluster != nil {
		if err := o.Cluster.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Broker accepts ffqd wire connections and routes PRODUCE batches into
// per-topic unbounded FFQ queues, fanning them out to credit-gated
// subscribers.
type Broker struct {
	opts Options

	mu     sync.Mutex
	topics map[topicKey]*topic
	conns  map[*conn]struct{}
	ln     net.Listener

	// draining closes when Shutdown begins; readers treat their read
	// deadline firing as "drain and exit" once it is closed.
	draining chan struct{}
	closing  atomic.Bool

	// readWG tracks reader goroutines, pumpWG the ingress pumps,
	// deliverWG the subscription delivery goroutines. Shutdown waits
	// for them in that order. shmWG tracks the shared-memory scanner
	// and its per-segment pumps (see shm.go).
	readWG    sync.WaitGroup
	pumpWG    sync.WaitGroup
	deliverWG sync.WaitGroup
	shmWG     sync.WaitGroup

	// shm tracks the shared-memory segments being served.
	shm shmState

	m      Metrics
	connID atomic.Uint64

	// fsyncLat aggregates WAL fsync latency across topics (nil unless
	// durable and instrumented).
	fsyncLat *obs.LatencyHist
	// retainWG tracks the age-retention sweeper (durable brokers with
	// RetentionAge only).
	retainWG sync.WaitGroup
}

// durable reports whether topics persist to a write-ahead log.
func (b *Broker) durable() bool { return b.opts.DataDir != "" }

// msg is one queued message: the payload plus the ingress timestamp
// stamped when its PRODUCE frame was decoded. The stamp is zero when
// the broker runs uninstrumented — end-to-end tracing costs one clock
// read per PRODUCE frame and one per DELIVER frame, never one per
// message.
type msg struct {
	payload   []byte
	ingressNS int64
}

// topicKey addresses one fan-out queue: a topic name plus a partition
// id (wire.NoPartition for classic unpartitioned topics). Every
// partition of a topic is an independent stream — its own lanes, its
// own WAL, its own offset space.
type topicKey struct {
	name string
	part uint32
}

// display is the human-readable form: "orders" for unpartitioned,
// "orders@3" for partition 3. Used for metrics labels, expvarx
// registration and subscription indexing; '@' cannot collide with an
// unpartitioned topic's WAL directory because wal.DirName escapes it.
func (k topicKey) display() string {
	if k.part == wire.NoPartition {
		return k.name
	}
	return k.name + "@" + strconv.FormatUint(uint64(k.part), 10)
}

// topic is one named fan-out queue plus its subscriber accounting.
type topic struct {
	name string
	// part is wire.NoPartition for classic topics.
	part uint32
	// display is topicKey.display(), computed once.
	display string
	// nameBytes is the wire form of the base name, encoded once.
	nameBytes []byte
	q         *ffq.ShardedMPMC[msg]

	// lat is the ingress-to-delivery latency histogram (nil unless
	// Options.Instrument): the full broker residence time of each
	// message, PRODUCE decode to DELIVER encode.
	lat *obs.LatencyHist

	// log and cursors are the topic's write-ahead log and consumer-
	// group cursor store (nil unless the broker is durable).
	log     *wal.Log
	cursors *wal.Cursors

	mu   sync.Mutex
	subs map[*sub]struct{}
}

// New returns a broker; Serve starts it.
func New(opts Options) (*Broker, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.IngressBuffer == 0 {
		opts.IngressBuffer = DefaultIngressBuffer
	}
	if opts.DeliverBatch == 0 {
		opts.DeliverBatch = DefaultDeliverBatch
	}
	if opts.TopicLanes == 0 {
		opts.TopicLanes = DefaultTopicLanes
	}
	if opts.TopicLaneDepth == 0 {
		opts.TopicLaneDepth = DefaultTopicLaneDepth
	}
	if opts.MetricsPrefix == "" {
		opts.MetricsPrefix = "ffqd"
	}
	if opts.ShmScanInterval == 0 {
		opts.ShmScanInterval = DefaultShmScanInterval
	}
	b := &Broker{
		opts:     opts,
		topics:   map[topicKey]*topic{},
		conns:    map[*conn]struct{}{},
		draining: make(chan struct{}),
	}
	if opts.Instrument {
		if err := expvarx.RegisterCollector(opts.MetricsPrefix, b.collect); err != nil {
			return nil, err
		}
	}
	if b.durable() {
		if opts.Instrument {
			b.fsyncLat = &obs.LatencyHist{}
		}
		if opts.RetentionAge > 0 {
			// Size retention runs at each segment roll; age retention
			// needs a clock, so a sweeper visits every log periodically.
			b.retainWG.Add(1)
			go b.retentionLoop()
		}
	}
	if opts.ShmDir != "" {
		b.initShm()
	}
	return b, nil
}

// retentionLoop enforces age-based retention on every durable topic's
// log until Shutdown.
func (b *Broker) retentionLoop() {
	defer b.retainWG.Done()
	period := b.opts.RetentionAge / 4
	if period > 10*time.Second {
		period = 10 * time.Second
	}
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-b.draining:
			return
		case <-t.C:
			b.mu.Lock()
			logs := make([]*wal.Log, 0, len(b.topics))
			for _, tp := range b.topics {
				if tp.log != nil {
					logs = append(logs, tp.log)
				}
			}
			b.mu.Unlock()
			for _, l := range logs {
				l.EnforceRetention()
			}
		}
	}
}

// Serve accepts connections on ln until Shutdown (or a listener
// error). It returns nil after a Shutdown-initiated stop.
func (b *Broker) Serve(ln net.Listener) error {
	b.mu.Lock()
	b.ln = ln
	b.mu.Unlock()
	//ffq:ignore spin-backoff not a spin loop: every iteration blocks in Accept; the atomic load only classifies the exit path
	for {
		nc, err := ln.Accept()
		if err != nil {
			if b.closing.Load() {
				return nil
			}
			return err
		}
		b.ServeConn(nc)
	}
}

// ServeConn adopts one established connection (real TCP or a
// net.Pipe end); Serve calls it for every accept. It returns
// immediately — the connection's goroutines run in the background.
func (b *Broker) ServeConn(nc net.Conn) {
	c := newConn(b, nc)
	b.mu.Lock()
	if b.closing.Load() {
		b.mu.Unlock()
		nc.Close()
		return
	}
	b.conns[c] = struct{}{}
	b.mu.Unlock()
	b.m.ConnsOpen.Add(1)
	b.m.ConnsTotal.Add(1)
	b.readWG.Add(1)
	b.pumpWG.Add(1)
	go c.readLoop()
	go c.pumpLoop()
}

// getTopic returns (creating on first use) the addressed topic
// partition (part = wire.NoPartition for classic topics).
func (b *Broker) getTopic(name string, part uint32) (*topic, error) {
	key := topicKey{name: name, part: part}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.topics[key]; ok {
		return t, nil
	}
	if b.closing.Load() {
		return nil, errors.New("broker: shutting down")
	}
	opts := []ffq.Option{}
	if b.opts.Instrument {
		opts = append(opts, ffq.WithInstrumentation())
	}
	if b.opts.OpLatency {
		opts = append(opts, ffq.WithOpLatency())
	}
	if b.opts.StallThreshold > 0 {
		opts = append(opts, ffq.WithStallWatchdog(b.opts.StallThreshold))
	}
	q, err := ffq.NewShardedMPMC[msg](b.opts.TopicLanes, b.opts.TopicLaneDepth, opts...)
	if err != nil {
		return nil, err
	}
	t := &topic{
		name:      name,
		part:      part,
		display:   key.display(),
		nameBytes: []byte(name),
		q:         q,
		subs:      map[*sub]struct{}{},
	}
	if b.durable() {
		// Partitions get their own directories: DirName escapes '@' in
		// topic names, so "orders@3" here can never alias a classic
		// topic literally named "orders@3".
		dirName := wal.DirName(name)
		if part != wire.NoPartition {
			dirName += "@" + strconv.FormatUint(uint64(part), 10)
		}
		dir := filepath.Join(b.opts.DataDir, dirName)
		t.log, err = wal.Open(dir, wal.Options{
			SegmentBytes:   b.opts.SegmentBytes,
			Sync:           b.opts.Fsync,
			SyncInterval:   b.opts.FsyncInterval,
			RetentionBytes: b.opts.RetentionBytes,
			RetentionAge:   b.opts.RetentionAge,
			FsyncHist:      b.fsyncLat,
		})
		if err != nil {
			return nil, err
		}
		t.cursors, err = wal.OpenCursors(dir, b.opts.Fsync != wal.SyncOff)
		if err != nil {
			t.log.Close()
			return nil, err
		}
	}
	if b.opts.Instrument {
		t.lat = &obs.LatencyHist{}
	}
	b.topics[key] = t
	if b.opts.Instrument {
		name := b.opts.MetricsPrefix + "/topic/" + t.display
		expvarx.Register(name, expvarx.QueueInfo{
			Stats:    q.Stats,
			Len:      q.Len,
			Cap:      q.Cap(),
			LaneLens: func() []int { return q.LaneLens(nil) },
		})
	}
	return t, nil
}

// Topics returns the current topic display names — "name" for classic
// topics, "name@part" per partition (for inspection; the set only
// grows until shutdown).
func (b *Broker) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.topics))
	for k := range b.topics {
		out = append(out, k.display())
	}
	return out
}

// PartitionedTopics returns the base names of topics that exist here
// in partitioned form, sorted. This is what METADATA advertises:
// replicas poll it off the owners to discover which partition logs
// they should be following.
func (b *Broker) PartitionedTopics() []string {
	b.mu.Lock()
	seen := map[string]bool{}
	for k := range b.topics {
		if k.part != wire.NoPartition {
			seen[k.name] = true
		}
	}
	b.mu.Unlock()
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PartitionLog returns (creating on first use) the write-ahead log
// backing (topic, part) on this node. It is the replication hook: the
// cluster follower copies the owner's records into this log with
// AppendAt, and local replay subscriptions serve from it. Requires a
// durable broker.
func (b *Broker) PartitionLog(topic string, part uint32) (*wal.Log, error) {
	if !b.durable() {
		return nil, errors.New("broker: partition logs require a data dir")
	}
	if part == wire.NoPartition {
		return nil, errors.New("broker: partition log needs an explicit partition")
	}
	t, err := b.getTopic(topic, part)
	if err != nil {
		return nil, err
	}
	return t.log, nil
}

// meta builds the METADATA answer: the static cluster shape (zero
// values when standalone) plus the partitioned topics present here.
func (b *Broker) meta() wire.MetaResp {
	var m wire.MetaResp
	if cl := b.opts.Cluster; cl != nil {
		m.NodeID = cl.NodeID
		m.Partitions = cl.Partitions
		m.Replication = cl.Replication
		m.Nodes = make([]wire.NodeMeta, len(cl.Peers))
		for i, p := range cl.Peers {
			m.Nodes[i] = wire.NodeMeta{ID: p.ID, Addr: p.Addr}
		}
	}
	m.Topics = b.PartitionedTopics()
	return m
}

// checkPart enforces cluster addressing on one partition-qualified
// frame. Unpartitioned frames always pass (the classic namespace
// stays node-local), as does everything on a standalone broker, where
// a partition id is just a namespace. On a clustered broker the
// partition must exist, and the node must hold it: as owner for
// produce and live consume (needOwner), as owner or replica for
// replay and offset queries — replicas serve reads of whatever their
// follower has copied so far.
func (b *Broker) checkPart(name string, part uint32, needOwner bool) error {
	cl := b.opts.Cluster
	if part == wire.NoPartition || cl == nil {
		return nil
	}
	if part >= cl.Partitions {
		return &wireError{
			code: wire.ECodeBadPartition, detail: uint64(cl.Partitions),
			msg: "broker: partition " + strconv.FormatUint(uint64(part), 10) +
				" out of range (" + strconv.FormatUint(uint64(cl.Partitions), 10) + " partitions)",
		}
	}
	if needOwner {
		if !cl.Owns(name, part) {
			return &wireError{
				code: wire.ECodeNotOwner, detail: uint64(part),
				msg: "broker: node " + cl.NodeID + " does not own " + topicKey{name, part}.display() +
					" (owner: " + cl.Owner(name, part).ID + ")",
			}
		}
	} else if !cl.Holds(name, part) {
		return &wireError{
			code: wire.ECodeNotOwner, detail: uint64(part),
			msg: "broker: node " + cl.NodeID + " does not hold " + topicKey{name, part}.display() +
				" (owner: " + cl.Owner(name, part).ID + ")",
		}
	}
	return nil
}

// Metrics returns a pointer to the broker's live counters.
func (b *Broker) Metrics() *Metrics { return &b.m }

// Shutdown drains the broker: no new connections, readers unblocked,
// staged batches flushed into their topics, topics closed, every
// subscription drained to its end-of-stream marker. ctx bounds the
// subscriber drain (slow or credit-starved consumers); on expiry the
// remaining subscriptions are force-stopped and ctx.Err() is returned.
func (b *Broker) Shutdown(ctx context.Context) error {
	if !b.closing.CompareAndSwap(false, true) {
		return nil
	}
	close(b.draining)

	b.mu.Lock()
	ln := b.ln
	conns := make([]*conn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	// Wake every reader; with closing set they switch to drain mode —
	// PRODUCE cut off (ingress closed), CREDIT and PING still served so
	// consumers can keep replenishing their windows during the drain.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}
	// Pumps flush the staged batches and exit; after this no producer
	// touches any topic queue or appends to any log. The shared-memory
	// scanner and segment pumps exit on the same draining signal —
	// their segments stay on disk with anything not yet pumped.
	b.pumpWG.Wait()
	b.shmWG.Wait()

	b.mu.Lock()
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	// Seal the write-ahead logs before closing the topics: everything
	// the pumps acknowledged reaches stable storage and the consumer
	// cursors are persisted, whatever the fsync policy — and sealing
	// wakes parked replay followers so the drain below can reach them.
	for _, t := range topics {
		if t.log != nil {
			t.log.Seal()
		}
		if t.cursors != nil {
			t.cursors.Flush()
		}
	}
	for _, t := range topics {
		t.q.Close()
	}

	// Subscriptions drain their topics (credit-gated) and finish with
	// ACK+FlagEnd; bound the wait with ctx.
	done := make(chan struct{})
	go func() {
		b.deliverWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		for _, t := range topics {
			t.mu.Lock()
			for s := range t.subs {
				s.stop.Store(true)
			}
			t.mu.Unlock()
		}
		<-done
	}

	// Closing the sockets ends the drain-mode readers.
	for _, c := range conns {
		c.nc.Close()
	}
	b.readWG.Wait()
	b.retainWG.Wait()
	for _, t := range topics {
		if t.log != nil {
			t.log.Close()
		}
	}
	if b.opts.Instrument {
		expvarx.UnregisterCollector(b.opts.MetricsPrefix)
		for _, t := range topics {
			expvarx.Unregister(b.opts.MetricsPrefix + "/topic/" + t.display)
		}
	}
	return err
}
