package broker_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ffq/internal/broker"
	"ffq/internal/broker/client"
	"ffq/internal/wal"
)

// durableOpts returns broker options persisting to dir with small
// segments so tests roll files without writing megabytes.
func durableOpts(dir string) broker.Options {
	return broker.Options{
		DataDir:      dir,
		SegmentBytes: 4 << 10,
	}
}

// TestDurableReplayFromZero publishes to a durable topic, then opens a
// replay subscription from offset 0 on a separate connection and
// checks every message arrives with its offset, in order, including
// messages published AFTER the replay caught up with the head (the
// follower keeps tailing the log).
func TestDurableReplayFromZero(t *testing.T) {
	dir := t.TempDir()
	b, addr := startBroker(t, durableOpts(dir))
	defer b.Shutdown(context.Background())

	prod, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	const firstHalf, total = 300, 600
	for i := 0; i < firstHalf; i++ {
		if err := prod.Publish("orders", []byte(fmt.Sprintf("m-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Drain(); err != nil {
		t.Fatal(err)
	}

	cons, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	sub, err := cons.SubscribeFrom("orders", 64, 0, "g1")
	if err != nil {
		t.Fatal(err)
	}

	// Read the existing half, then publish the rest and read it too:
	// the same subscription serves replay and live tail.
	done := make(chan error, 1)
	go func() {
		for want := uint64(0); want < total; want++ {
			m, ok := sub.RecvMsg()
			if !ok {
				done <- fmt.Errorf("stream ended at offset %d: %v", want, cons.Err())
				return
			}
			if m.Offset != want {
				done <- fmt.Errorf("offset %d, want %d", m.Offset, want)
				return
			}
			if got, expect := string(m.Payload), fmt.Sprintf("m-%04d", want); got != expect {
				done <- fmt.Errorf("offset %d: payload %q, want %q", want, got, expect)
				return
			}
		}
		done <- nil
	}()

	for i := firstHalf; i < total; i++ {
		if err := prod.Publish("orders", []byte(fmt.Sprintf("m-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Drain(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("replay consumer timed out")
	}
}

// TestDurableSurvivesRestart shuts a durable broker down cleanly,
// starts a new one on the same data dir, and checks the log and the
// committed cursor both survived: OFFSETS reports the old range and
// SubscribeFrom(FromCursor) resumes exactly where the group left off.
func TestDurableSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	b, addr := startBroker(t, durableOpts(dir))

	prod, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const total = 500
	for i := 0; i < total; i++ {
		if err := prod.Publish("orders", []byte(fmt.Sprintf("m-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Drain(); err != nil {
		t.Fatal(err)
	}

	// Consume a prefix and commit the cursor at 200.
	cons, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cons.SubscribeFrom("orders", 64, 0, "g1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		m, ok := sub.RecvMsg()
		if !ok {
			t.Fatalf("stream ended early: %v", cons.Err())
		}
		if m.Offset != uint64(i) {
			t.Fatalf("offset %d, want %d", m.Offset, i)
		}
	}
	if err := sub.Commit(200); err != nil {
		t.Fatal(err)
	}
	// The commit is a fire-and-forget frame; OFFSETS round-trips on the
	// same connection behind it, so a reply proves it was processed.
	if _, _, cursor, err := cons.Offsets("orders", "g1"); err != nil || cursor != 200 {
		t.Fatalf("cursor after commit = %d, %v; want 200", cursor, err)
	}
	prod.Close()
	cons.Close()
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// New broker, same data dir.
	b2, addr2 := startBroker(t, durableOpts(dir))
	defer b2.Shutdown(context.Background())
	c2, err := client.Dial(addr2, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	oldest, next, cursor, err := c2.Offsets("orders", "g1")
	if err != nil {
		t.Fatal(err)
	}
	if oldest != 0 || next != total || cursor != 200 {
		t.Fatalf("offsets after restart = (%d, %d, %d), want (0, %d, 200)", oldest, next, cursor, total)
	}

	sub2, err := c2.SubscribeFrom("orders", 64, client.FromCursor, "g1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 200; i < total; i++ {
		m, ok := sub2.RecvMsg()
		if !ok {
			t.Fatalf("resumed stream ended at %d: %v", i, c2.Err())
		}
		if m.Offset != uint64(i) {
			t.Fatalf("resumed at offset %d, want %d", m.Offset, i)
		}
		if got, expect := string(m.Payload), fmt.Sprintf("m-%04d", i); got != expect {
			t.Fatalf("offset %d: payload %q, want %q", i, got, expect)
		}
	}
}

// TestDurableLiveFanOutUnchanged checks that plain competitive
// subscriptions keep working on a durable broker (the WAL append is
// upstream of, not instead of, live fan-out).
func TestDurableLiveFanOutUnchanged(t *testing.T) {
	dir := t.TempDir()
	b, addr := startBroker(t, durableOpts(dir))

	cons, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	sub, err := cons.Subscribe("orders", 128)
	if err != nil {
		t.Fatal(err)
	}

	prod, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	const total = 400
	for i := 0; i < total; i++ {
		if err := prod.Publish("orders", msg(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Drain(); err != nil {
		t.Fatal(err)
	}

	go b.Shutdown(context.Background())
	got := 0
	for {
		_, ok := sub.Recv()
		if !ok {
			break
		}
		got++
	}
	if !sub.Ended() {
		t.Fatalf("subscription did not end cleanly: %v", cons.Err())
	}
	if got != total {
		t.Fatalf("live sub received %d of %d", got, total)
	}
}

// TestReplayRejectedWithoutDataDir checks the protocol error path: a
// replay subscription against an in-memory broker must fail the
// connection with a broker ERR, not silently hang.
func TestReplayRejectedWithoutDataDir(t *testing.T) {
	b, addr := startBroker(t, broker.Options{})
	defer b.Shutdown(context.Background())

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.SubscribeFrom("orders", 16, 0, "g")
	if err != nil {
		t.Fatal(err) // the write itself succeeds; the broker replies ERR
	}
	if _, ok := sub.RecvMsg(); ok {
		t.Fatal("replay delivered on a non-durable broker")
	}
	if c.Err() == nil {
		t.Fatal("expected a broker error, got a clean end")
	}
}

// TestDurableRetention rolls many small segments under a size bound
// and checks the broker-side log trims its tail: OFFSETS reports a
// non-zero oldest offset and a replay from 0 starts at that clamp.
func TestDurableRetention(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.SegmentBytes = 2 << 10
	opts.RetentionBytes = 8 << 10
	b, addr := startBroker(t, opts)
	defer b.Shutdown(context.Background())

	// The live queue is bounded; without a consumer its backpressure
	// would stall the producer long before retention has anything to
	// trim, so drain the live fan-out into the void.
	sink, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	sinkSub, err := sink.Subscribe("orders", 4096)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, ok := sinkSub.Recv(); !ok {
				return
			}
		}
	}()

	prod, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	const total = 4000
	for i := 0; i < total; i++ {
		if err := prod.Publish("orders", []byte(fmt.Sprintf("m-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Drain(); err != nil {
		t.Fatal(err)
	}

	oldest, next, _, err := prod.Offsets("orders", "")
	if err != nil {
		t.Fatal(err)
	}
	if next != total {
		t.Fatalf("next = %d, want %d", next, total)
	}
	if oldest == 0 {
		t.Fatal("retention never trimmed the log")
	}

	cons, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	sub, err := cons.SubscribeFrom("orders", 64, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := sub.RecvMsg()
	if !ok {
		t.Fatalf("replay ended: %v", cons.Err())
	}
	if m.Offset < oldest {
		t.Fatalf("replay started at %d, below oldest %d", m.Offset, oldest)
	}
	if got, expect := string(m.Payload), fmt.Sprintf("m-%05d", m.Offset); got != expect {
		t.Fatalf("clamped replay payload %q, want %q", got, expect)
	}
}

// TestSyncPolicyOptionThreading sanity-checks that every fsync policy
// string maps through broker options and survives a publish cycle.
func TestSyncPolicyOptionThreading(t *testing.T) {
	for _, polName := range []string{"off", "interval", "segment", "always"} {
		pol, err := wal.ParseSyncPolicy(polName)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		opts := durableOpts(dir)
		opts.Fsync = pol
		opts.FsyncInterval = 5 * time.Millisecond
		b, addr := startBroker(t, opts)
		c, err := client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := c.Publish("t", []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Drain(); err != nil {
			t.Fatalf("drain under %s: %v", polName, err)
		}
		c.Close()
		if err := b.Shutdown(context.Background()); err != nil {
			t.Fatalf("shutdown under %s: %v", polName, err)
		}
	}
}
