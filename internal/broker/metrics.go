package broker

import (
	"sync/atomic"

	"ffq/internal/obs/expvarx"
)

// Metrics is the broker's own counter set — the data plane above the
// queues, which have their own obs.Recorder instrumentation. All
// fields are live atomics; read them with Load.
type Metrics struct {
	// ConnsOpen is the current connection count; ConnsTotal counts
	// every connection ever accepted.
	ConnsOpen  atomic.Int64
	ConnsTotal atomic.Int64
	// MsgsIn counts messages accepted from PRODUCE frames, MsgsOut
	// messages sent in DELIVER frames.
	MsgsIn  atomic.Int64
	MsgsOut atomic.Int64
	// ProduceFrames and DeliverFrames count wire frames, so
	// MsgsIn/ProduceFrames is the realized ingress batch size and
	// MsgsOut/DeliverFrames the realized egress batch size.
	ProduceFrames atomic.Int64
	DeliverFrames atomic.Int64
	// Acks counts cumulative ACK frames written.
	Acks atomic.Int64
	// ProtoErrors counts connections dropped for protocol violations.
	ProtoErrors atomic.Int64
	// MsgsDropped counts messages from PRODUCE frames that arrived
	// after Shutdown's produce cutoff (discarded, never acknowledged).
	MsgsDropped atomic.Int64
	// ShmSegments is the number of shared-memory ingress segments
	// currently being served; ShmMsgs/ShmBytes count what the segment
	// pumps moved into topics; ShmAttachErrors counts segment files
	// refused by the fail-closed attach (or busy).
	ShmSegments     atomic.Int64
	ShmMsgs         atomic.Int64
	ShmBytes        atomic.Int64
	ShmAttachErrors atomic.Int64
}

// collect is the broker's expvarx.Collector: global counters plus
// per-topic gauges (subscriber count, outstanding credit, queue depth).
// The topic queues' own counters are exported separately through their
// expvarx.Register entries.
func (b *Broker) collect(emit func(expvarx.Sample)) {
	c := func(name, help string, v int64) {
		emit(expvarx.Sample{Name: name, Help: help, Type: "counter", Value: float64(v)})
	}
	emit(expvarx.Sample{
		Name: "ffqd_connections", Help: "Currently open broker connections.",
		Type: "gauge", Value: float64(b.m.ConnsOpen.Load()),
	})
	c("ffqd_connections_total", "Connections accepted since start.", b.m.ConnsTotal.Load())
	c("ffqd_messages_in_total", "Messages accepted from PRODUCE frames.", b.m.MsgsIn.Load())
	c("ffqd_messages_out_total", "Messages sent in DELIVER frames.", b.m.MsgsOut.Load())
	c("ffqd_produce_frames_total", "PRODUCE frames accepted.", b.m.ProduceFrames.Load())
	c("ffqd_deliver_frames_total", "DELIVER frames sent.", b.m.DeliverFrames.Load())
	c("ffqd_acks_total", "Cumulative ACK frames written.", b.m.Acks.Load())
	c("ffqd_protocol_errors_total", "Connections dropped for protocol violations.", b.m.ProtoErrors.Load())
	c("ffqd_messages_dropped_total", "Messages discarded after the shutdown produce cutoff.", b.m.MsgsDropped.Load())
	if b.opts.ShmDir != "" {
		emit(expvarx.Sample{
			Name: "ffq_shm_segments", Help: "Shared-memory ingress segments currently served.",
			Type: "gauge", Value: float64(b.m.ShmSegments.Load()),
		})
		c("ffq_shm_messages_total", "Messages pumped from shared-memory segments into topics.", b.m.ShmMsgs.Load())
		c("ffq_shm_bytes_total", "Payload bytes pumped from shared-memory segments.", b.m.ShmBytes.Load())
		c("ffq_shm_attach_errors_total", "Segment files refused by the fail-closed attach.", b.m.ShmAttachErrors.Load())
		for topic, depth := range b.ShmTopicDepths() {
			emit(expvarx.Sample{
				Name: "ffq_shm_depth", Help: "Approximate unconsumed values per shared-memory segment topic.",
				Type: "gauge", Labels: map[string]string{"topic": topic}, Value: float64(depth),
			})
		}
	}

	b.mu.Lock()
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	emit(expvarx.Sample{
		Name: "ffqd_topics", Help: "Topics created since start.",
		Type: "gauge", Value: float64(len(topics)),
	})
	for _, t := range topics {
		var credit int64
		t.mu.Lock()
		subs := len(t.subs)
		for s := range t.subs {
			credit += s.credit.Load()
		}
		t.mu.Unlock()
		labels := map[string]string{"topic": t.display}
		emit(expvarx.Sample{
			Name: "ffqd_topic_subscribers", Help: "Active subscriptions per topic.",
			Type: "gauge", Labels: labels, Value: float64(subs),
		})
		emit(expvarx.Sample{
			Name: "ffqd_topic_credit", Help: "Outstanding delivery credit per topic (sum over subscriptions).",
			Type: "gauge", Labels: labels, Value: float64(credit),
		})
		emit(expvarx.Sample{
			Name: "ffqd_topic_depth", Help: "Messages queued per topic.",
			Type: "gauge", Labels: labels, Value: float64(t.q.Len()),
		})
		if t.lat != nil {
			expvarx.EmitLatencySamples(emit, "ffqd_e2e_latency_ns",
				"Broker residence time per message, PRODUCE decode to DELIVER encode, in nanoseconds.",
				labels, t.lat.Snapshot())
		}
		if t.log != nil {
			st := t.log.Stats()
			emit(expvarx.Sample{
				Name: "ffqd_wal_bytes", Help: "On-disk size of the topic's write-ahead log.",
				Type: "gauge", Labels: labels, Value: float64(st.Bytes),
			})
			emit(expvarx.Sample{
				Name: "ffqd_wal_oldest_offset", Help: "Oldest offset still retained in the topic's log.",
				Type: "gauge", Labels: labels, Value: float64(st.Oldest),
			})
			emit(expvarx.Sample{
				Name: "ffqd_wal_next_offset", Help: "Next offset the topic's log will assign.",
				Type: "gauge", Labels: labels, Value: float64(st.Next),
			})
			emit(expvarx.Sample{
				Name: "ffqd_wal_segments", Help: "Segment files retained in the topic's log.",
				Type: "gauge", Labels: labels, Value: float64(st.Segments),
			})
		}
	}
	if b.fsyncLat != nil {
		expvarx.EmitLatencySamples(emit, "ffqd_wal_fsync_ns",
			"WAL fsync latency in nanoseconds, aggregated over all topics.",
			nil, b.fsyncLat.Snapshot())
	}
}
