// Package client is the Go client for the ffqd wire protocol:
// auto-batching pipelined producers, credit-window subscriptions, and
// PING round-trips, over any net.Conn.
//
// # Producer side
//
// Publish appends to a per-topic buffer; a full buffer (MaxBatch) or
// the flush timer (FlushInterval) turns it into one PRODUCE frame.
// Batching is what the broker's ingress path is built around — one
// frame is one arena copy, one SPSC staging slot and one
// EnqueueBatch rank reservation, regardless of message count. The
// pipeline keeps at most Window unacknowledged messages in flight per
// topic; Publish blocks (backpressure) beyond that.
//
// # Consumer side
//
// Subscribe opens a credit window; the broker delivers at most that
// many messages beyond what Recv has consumed, so the Subscription's
// buffered channel can never block the client's read loop. Recv
// replenishes credit in half-window chunks. The channel closes after
// the broker's end-of-stream marker (sent when the topic is drained
// on shutdown) or on connection failure — check Err to tell the two
// apart.
//
// # Durable topics
//
// Against a durable broker (-data-dir), SubscribeFrom opens a replay
// subscription: a log follower that receives every message of the
// topic from a chosen offset (or FromCursor, the consumer group's
// persisted position) with its offset attached — RecvMsg instead of
// Recv. Commit persists the group's cursor (the first offset NOT yet
// processed); after a crash, SubscribeFrom(FromCursor) resumes there,
// so a consumer that commits after side-effecting gets at-least-once
// delivery, deduplicable by offset. Offsets queries a topic's
// retained range and a group's cursor.
package client

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ffq/internal/wire"
)

// Defaults for Options zero values.
const (
	DefaultMaxBatch      = 64
	DefaultFlushInterval = time.Millisecond
	DefaultWindow        = 1024
)

// Options configures a Client.
type Options struct {
	// MaxBatch is the flush threshold in messages per topic; a Publish
	// that fills the buffer flushes synchronously. 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// FlushInterval bounds how long a message may sit in the batch
	// buffer before a timer flushes it. 0 means DefaultFlushInterval.
	FlushInterval time.Duration
	// Window is the per-topic pipelining bound: the maximum number of
	// published-but-unacknowledged messages before Publish blocks.
	// 0 means DefaultWindow.
	Window int
}

// Client is one ffqd connection. All methods are safe for concurrent
// use; each Subscription's Recv is single-consumer.
type Client struct {
	nc   net.Conn
	opts Options

	// wmu serializes frame writes; wbuf is the shared encode buffer.
	wmu  sync.Mutex
	wbuf wire.Buffer

	mu     sync.Mutex
	pubs   map[string]*pub
	subs   map[string]*Subscription
	pings  map[uint64]chan struct{}
	pingID uint64
	// offsets holds pending Offsets queries per topic, answered in
	// FIFO order (the broker replies in request order per connection).
	offsets map[string][]chan offsetsReply
	err     error

	// done closes when the connection dies (peer close, protocol or
	// socket error).
	done chan struct{}
}

// Dial connects to an ffqd broker over TCP.
func Dial(addr string, opts Options) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(nc, opts), nil
}

// New adopts an established connection (TCP or a net.Pipe end) and
// starts the read loop.
func New(nc net.Conn, opts Options) *Client {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	c := &Client{
		nc:      nc,
		opts:    opts,
		pubs:    map[string]*pub{},
		subs:    map[string]*Subscription{},
		pings:   map[uint64]chan struct{}{},
		offsets: map[string][]chan offsetsReply{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Err returns the terminal connection error, or nil while the
// connection is healthy. A clean Close reports net.ErrClosed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fail records the terminal error once and unblocks everything:
// publishers waiting on window space, subscriptions waiting on Recv,
// pings waiting on pongs.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	pubs := make([]*pub, 0, len(c.pubs))
	for _, p := range c.pubs {
		pubs = append(pubs, p)
	}
	subs := make([]*Subscription, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.mu.Unlock()

	close(c.done)
	c.nc.Close()
	for _, p := range pubs {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	for _, s := range subs {
		s.closeCh()
	}
}

// readLoop dispatches broker frames: DELIVERs to subscriptions, ACKs
// to publisher windows (or, with FlagEnd, subscription end-of-stream),
// PONGs to waiting Pings.
func (c *Client) readLoop() {
	r := wire.NewReader(c.nc)
	for {
		f, err := r.Next()
		if err != nil {
			c.fail(err)
			return
		}
		switch f.Type {
		case wire.TProduce:
			if f.Flags&wire.FlagDeliver == 0 {
				c.fail(errors.New("client: PRODUCE without DELIVER flag from broker"))
				return
			}
			if f.Flags&wire.FlagOffset != 0 {
				topic, base, b, err := wire.ParseDeliverOffsets(f)
				if err != nil {
					c.fail(err)
					return
				}
				c.mu.Lock()
				s := c.subs[string(topic)]
				c.mu.Unlock()
				msgs := wire.CopyMessages(&b)
				if s == nil || s.mch == nil {
					continue // subscription raced away; drop
				}
				for i, m := range msgs {
					s.mch <- Msg{Offset: base + uint64(i), Payload: m}
				}
				continue
			}
			p, err := wire.ParseProduce(f)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			s := c.subs[string(p.Topic)]
			c.mu.Unlock()
			msgs := wire.CopyMessages(&p.Batch)
			if s == nil {
				continue // subscription raced away; drop
			}
			for _, m := range msgs {
				s.ch <- m
			}
		case wire.TAck:
			topic, seq, err := wire.ParseAck(f)
			if err != nil {
				c.fail(err)
				return
			}
			if f.Flags&wire.FlagEnd != 0 {
				c.mu.Lock()
				s := c.subs[string(topic)]
				c.mu.Unlock()
				if s != nil {
					s.ended.Store(true)
					s.closeCh()
				}
				continue
			}
			c.mu.Lock()
			p := c.pubs[string(topic)]
			c.mu.Unlock()
			if p != nil {
				p.mu.Lock()
				if seq > p.acked {
					p.acked = seq
					p.cond.Broadcast()
				}
				p.mu.Unlock()
			}
		case wire.TOffsets:
			topic, oldest, next, cursor, err := wire.ParseOffsetsResp(f)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			var ch chan offsetsReply
			if q := c.offsets[string(topic)]; len(q) > 0 {
				ch = q[0]
				c.offsets[string(topic)] = q[1:]
			}
			c.mu.Unlock()
			if ch != nil {
				ch <- offsetsReply{oldest: oldest, next: next, cursor: cursor}
			}

		case wire.TPing:
			token, err := wire.ParsePing(f)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			ch := c.pings[token]
			delete(c.pings, token)
			c.mu.Unlock()
			if ch != nil {
				ch <- struct{}{}
			}
		case wire.TErr:
			msg, err := wire.ParseErr(f)
			if err != nil {
				c.fail(err)
				return
			}
			c.fail(errors.New("client: broker error: " + msg))
			return
		default:
			c.fail(errors.New("client: unexpected frame type from broker"))
			return
		}
	}
}

// ---- producer side ----

// pub is the per-topic publish state: batch buffer + pipeline window.
type pub struct {
	c     *Client
	topic []byte

	mu      sync.Mutex
	cond    *sync.Cond
	pending [][]byte
	// sent/acked track the pipeline window in messages; acked is the
	// broker's cumulative ACK.
	sent, acked uint64
	timerArmed  bool
}

// pub returns (creating) the publish state for topic.
func (c *Client) pub(topic string) *pub {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pubs[topic]
	if !ok {
		p = &pub{c: c, topic: []byte(topic)}
		p.cond = sync.NewCond(&p.mu)
		c.pubs[topic] = p
	}
	return p
}

// Publish queues msg for topic (the bytes are copied). It flushes
// synchronously when the batch buffer reaches MaxBatch and blocks when
// the pipeline window is full; otherwise it returns immediately and
// the flush timer picks the batch up.
func (c *Client) Publish(topic string, msg []byte) error {
	p := c.pub(topic)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := c.Err(); err != nil {
		return err
	}
	p.pending = append(p.pending, append([]byte(nil), msg...))
	if len(p.pending) >= c.opts.MaxBatch {
		return p.flushLocked()
	}
	if !p.timerArmed {
		p.timerArmed = true
		time.AfterFunc(c.opts.FlushInterval, p.timerFlush)
	}
	return nil
}

// timerFlush is the FlushInterval callback.
func (p *pub) timerFlush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timerArmed = false
	if len(p.pending) > 0 && p.c.Err() == nil {
		p.flushLocked() // best effort; errors surface on the next Publish
	}
}

// flushLocked sends the pending batch as PRODUCE frames, waiting for
// window space as needed. Callers hold p.mu.
//
// The socket write happens with p.mu RELEASED (wmu alone orders the
// frames): the read loop takes p.mu to process ACKs, and on a
// synchronous transport (net.Pipe) a write can only complete once the
// peer's reads progress — holding p.mu across the write would deadlock
// the window against its own acknowledgements.
func (p *pub) flushLocked() error {
	c := p.c
	for len(p.pending) > 0 {
		for c.Err() == nil && p.sent-p.acked >= uint64(c.opts.Window) {
			p.cond.Wait()
		}
		if err := c.Err(); err != nil {
			return err
		}
		room := c.opts.Window - int(p.sent-p.acked)
		n := min(len(p.pending), c.opts.MaxBatch, room)
		// Copy the slice headers: the pending buffer is compacted (and
		// refilled by concurrent Publishes) once p.mu is released.
		batch := make([][]byte, n)
		copy(batch, p.pending[:n])
		p.sent += uint64(n)
		p.pending = append(p.pending[:0], p.pending[n:]...)
		// Taking wmu before releasing p.mu keeps frame order equal to
		// window order when Publish and the flush timer race.
		c.wmu.Lock()
		p.mu.Unlock()
		c.wbuf.Reset()
		c.wbuf.PutProduce(0, p.topic, batch)
		_, err := c.nc.Write(c.wbuf.Bytes())
		c.wmu.Unlock()
		p.mu.Lock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush sends every topic's pending batch now.
func (c *Client) Flush() error {
	var first error
	for _, p := range c.allPubs() {
		p.mu.Lock()
		if err := p.flushLocked(); err != nil && first == nil {
			first = err
		}
		p.mu.Unlock()
	}
	return first
}

// Drain flushes and then blocks until the broker has acknowledged
// every published message (the pipeline is empty).
func (c *Client) Drain() error {
	if err := c.Flush(); err != nil {
		return err
	}
	for _, p := range c.allPubs() {
		p.mu.Lock()
		for c.Err() == nil && p.acked < p.sent {
			p.cond.Wait()
		}
		p.mu.Unlock()
	}
	return c.Err()
}

func (c *Client) allPubs() []*pub {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*pub, 0, len(c.pubs))
	for _, p := range c.pubs {
		out = append(out, p)
	}
	return out
}

// ---- consumer side ----

// Subscription is one credit-window subscription. Recv (or RecvMsg on
// a replay subscription) is single-consumer; everything else on the
// Client stays concurrent.
type Subscription struct {
	c      *Client
	topic  []byte
	ch     chan []byte
	window int
	// mch replaces ch on a replay subscription: deliveries carry
	// offsets there.
	mch chan Msg
	// taken counts messages consumed since the last CREDIT; Recv
	// replenishes at half a window.
	taken  int
	closed atomic.Bool
	ended  atomic.Bool
}

// Msg is one replay-delivered message: the payload plus its durable
// per-topic offset.
type Msg struct {
	Offset  uint64
	Payload []byte
}

// FromCursor, passed to SubscribeFrom, resumes from the consumer
// group's persisted cursor (or the log's oldest retained offset when
// the group has no cursor yet).
const FromCursor = wire.OffsetCursor

// offsetsReply carries one OFFSETS response to its waiting query.
type offsetsReply struct {
	oldest, next, cursor uint64
}

// Ended reports whether the broker sent the end-of-stream marker (a
// graceful drain). After Recv returns ok=false, Ended distinguishes a
// clean end from a connection failure.
func (s *Subscription) Ended() bool { return s.ended.Load() }

// Subscribe opens a subscription on topic with the given credit window
// (0 means the client default). The window bounds broker-side
// in-flight deliveries and is also the Recv buffer size.
func (c *Client) Subscribe(topic string, window int) (*Subscription, error) {
	if window <= 0 {
		window = c.opts.Window
	}
	s := &Subscription{
		c:      c,
		topic:  []byte(topic),
		ch:     make(chan []byte, window),
		window: window,
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if _, dup := c.subs[topic]; dup {
		c.mu.Unlock()
		return nil, errors.New("client: already subscribed to " + topic)
	}
	c.subs[topic] = s
	c.mu.Unlock()
	if err := c.writeConsume(s.topic, uint32(window)); err != nil {
		c.mu.Lock()
		delete(c.subs, topic)
		c.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// SubscribeFrom opens a replay subscription on a durable topic: the
// broker streams the topic's log from the given offset (FromCursor =
// the group's persisted position) and keeps following it at the head.
// Every message arrives with its offset via RecvMsg. group may be
// empty — then there is no cursor to resume from or Commit to.
func (c *Client) SubscribeFrom(topic string, window int, from uint64, group string) (*Subscription, error) {
	if window <= 0 {
		window = c.opts.Window
	}
	s := &Subscription{
		c:      c,
		topic:  []byte(topic),
		mch:    make(chan Msg, window),
		window: window,
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if _, dup := c.subs[topic]; dup {
		c.mu.Unlock()
		return nil, errors.New("client: already subscribed to " + topic)
	}
	c.subs[topic] = s
	c.mu.Unlock()
	if err := c.writeConsumeFrom(s.topic, uint32(window), from, []byte(group)); err != nil {
		c.mu.Lock()
		delete(c.subs, topic)
		c.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Recv returns the next delivered message; ok=false means
// end-of-stream (broker drain) or connection failure — check
// Client.Err to distinguish. It replenishes the broker's credit
// window as messages are consumed.
func (s *Subscription) Recv() (msg []byte, ok bool) {
	if s.mch != nil {
		m, ok := s.RecvMsg()
		return m.Payload, ok
	}
	m, ok := <-s.ch
	if !ok {
		return nil, false
	}
	s.replenish()
	return m, true
}

// RecvMsg returns the next replay-delivered message with its offset;
// only valid on a SubscribeFrom subscription. ok=false as in Recv.
func (s *Subscription) RecvMsg() (m Msg, ok bool) {
	m, ok = <-s.mch
	if !ok {
		return Msg{}, false
	}
	s.replenish()
	return m, true
}

// replenish grants the broker more credit once half the window has
// been consumed.
func (s *Subscription) replenish() {
	s.taken++
	if s.taken >= max(1, s.window/2) {
		s.c.writeCredit(s.topic, uint32(s.taken))
		s.taken = 0
	}
}

// Commit persists the subscription's consumer-group cursor: off is the
// first offset NOT yet processed (commit Msg.Offset+1 after handling a
// message). Requires a SubscribeFrom subscription with a group.
func (s *Subscription) Commit(off uint64) error {
	if s.mch == nil {
		return errors.New("client: Commit on a non-replay subscription")
	}
	return s.c.writeCommit(s.topic, off)
}

// closeCh closes the delivery channel exactly once (end marker and
// connection failure can race).
func (s *Subscription) closeCh() {
	if s.closed.CompareAndSwap(false, true) {
		if s.mch != nil {
			close(s.mch)
		} else {
			close(s.ch)
		}
	}
}

// Offsets queries a durable topic's offset range and, when group is
// non-empty, that group's committed cursor (wire.OffsetCursor — i.e.
// ^uint64(0) — when the group has none).
func (c *Client) Offsets(topic, group string) (oldest, next, cursor uint64, err error) {
	ch := make(chan offsetsReply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, 0, 0, err
	}
	c.offsets[topic] = append(c.offsets[topic], ch)
	c.mu.Unlock()
	if err := c.writeOffsetsReq([]byte(topic), []byte(group)); err != nil {
		return 0, 0, 0, err
	}
	select {
	case r := <-ch:
		return r.oldest, r.next, r.cursor, nil
	case <-c.done:
		return 0, 0, 0, c.Err()
	}
}

// ---- ping ----

// Ping round-trips a PING frame and returns the wire+broker latency.
func (c *Client) Ping() (time.Duration, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	c.pingID++
	token := c.pingID
	ch := make(chan struct{}, 1)
	c.pings[token] = ch
	c.mu.Unlock()

	start := time.Now()
	if err := c.writePing(token); err != nil {
		return 0, err
	}
	select {
	case <-ch:
		return time.Since(start), nil
	case <-c.done:
		return 0, c.Err()
	}
}

// Close flushes pending batches and closes the connection. Open
// subscriptions observe end-of-stream.
func (c *Client) Close() error {
	c.Flush()
	err := c.nc.Close()
	<-c.done // read loop exits and closes subscription channels
	return err
}

// ---- serialized writer ----

func (c *Client) writeConsume(topic []byte, credit uint32) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutConsume(topic, credit)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeConsumeFrom(topic []byte, credit uint32, from uint64, group []byte) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutConsumeFrom(topic, credit, from, group)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeCommit(topic []byte, off uint64) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutAck(wire.FlagOffset, topic, off)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeOffsetsReq(topic, group []byte) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutOffsetsReq(topic, group)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeCredit(topic []byte, n uint32) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutCredit(topic, n)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writePing(token uint64) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutPing(token, false)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}
