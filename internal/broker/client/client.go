// Package client is the Go client for the ffqd wire protocol:
// auto-batching pipelined producers, credit-window subscriptions, and
// PING round-trips, over any net.Conn.
//
// # Producer side
//
// Publish appends to a per-topic buffer; a full buffer (MaxBatch) or
// the flush timer (FlushInterval) turns it into one PRODUCE frame.
// Batching is what the broker's ingress path is built around — one
// frame is one arena copy, one SPSC staging slot and one
// EnqueueBatch rank reservation, regardless of message count. The
// pipeline keeps at most Window unacknowledged messages in flight per
// topic; Publish blocks (backpressure) beyond that.
//
// # Consumer side
//
// Subscribe opens a credit window; the broker delivers at most that
// many messages beyond what Recv has consumed, so the Subscription's
// buffered channel can never block the client's read loop. Recv
// replenishes credit in half-window chunks. The channel closes after
// the broker's end-of-stream marker (sent when the topic is drained
// on shutdown) or on connection failure — check Err to tell the two
// apart.
//
// # Durable topics
//
// Against a durable broker (-data-dir), SubscribeFrom opens a replay
// subscription: a log follower that receives every message of the
// topic from a chosen offset (or FromCursor, the consumer group's
// persisted position) with its offset attached — RecvMsg instead of
// Recv. Commit persists the group's cursor (the first offset NOT yet
// processed); after a crash, SubscribeFrom(FromCursor) resumes there,
// so a consumer that commits after side-effecting gets at-least-once
// delivery, deduplicable by offset. Offsets queries a topic's
// retained range and a group's cursor.
package client

import (
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ffq/internal/wire"
)

// Defaults for Options zero values.
const (
	DefaultMaxBatch      = 64
	DefaultFlushInterval = time.Millisecond
	DefaultWindow        = 1024
)

// NoPartition addresses the classic unpartitioned form of a topic;
// the *Part methods take it to mean "no partition qualifier". The
// plain methods (Publish, Subscribe, ...) use it implicitly.
const NoPartition = wire.NoPartition

// ErrOffsetTruncated is the broker's answer to a strict replay
// (SubscribeFromPart with strict=true) whose requested offset the
// broker no longer retains, or that hit a retention gap mid-stream.
// Oldest is the first offset still live; a replication follower
// recovers by ResetTo(Oldest) on its local log and resubscribing.
type ErrOffsetTruncated struct {
	Oldest uint64
	msg    string
}

func (e *ErrOffsetTruncated) Error() string {
	if e.msg != "" {
		return e.msg
	}
	return "client: replay offset truncated; oldest retained is " + strconv.FormatUint(e.Oldest, 10)
}

// ErrNotOwner reports a partitioned operation sent to a cluster node
// that does not hold the partition in the required role. The fix is
// client-side routing: recompute the owner from the cluster config
// and dial that node.
type ErrNotOwner struct {
	Part uint32
	msg  string
}

func (e *ErrNotOwner) Error() string { return e.msg }

// NodeInfo is one cluster member as reported by Meta.
type NodeInfo struct {
	ID   string
	Addr string
}

// MetaInfo is a broker's METADATA answer: the static cluster shape
// (zero values on a standalone broker) and the partitioned topics
// present on that node.
type MetaInfo struct {
	NodeID      string
	Partitions  uint32
	Replication uint32
	Nodes       []NodeInfo
	Topics      []string
}

// Options configures a Client.
type Options struct {
	// MaxBatch is the flush threshold in messages per topic; a Publish
	// that fills the buffer flushes synchronously. 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// FlushInterval bounds how long a message may sit in the batch
	// buffer before a timer flushes it. 0 means DefaultFlushInterval.
	FlushInterval time.Duration
	// Window is the per-topic pipelining bound: the maximum number of
	// published-but-unacknowledged messages before Publish blocks.
	// 0 means DefaultWindow.
	Window int
}

// Client is one ffqd connection. All methods are safe for concurrent
// use; each Subscription's Recv is single-consumer.
type Client struct {
	nc   net.Conn
	opts Options

	// wmu serializes frame writes; wbuf is the shared encode buffer.
	wmu  sync.Mutex
	wbuf wire.Buffer

	// pubs/subs/offsets are two-level maps, topic name then partition
	// (NoPartition for the classic namespace): the inner lookup keeps
	// the read loop's byte-slice topic keys allocation-free.
	mu     sync.Mutex
	pubs   map[string]map[uint32]*pub
	subs   map[string]map[uint32]*Subscription
	pings  map[uint64]chan struct{}
	pingID uint64
	// offsets holds pending Offsets queries per topic partition,
	// answered in FIFO order (the broker replies in request order per
	// connection); metas likewise for Meta queries.
	offsets map[string]map[uint32][]chan offsetsReply
	metas   []chan MetaInfo
	err     error

	// done closes when the connection dies (peer close, protocol or
	// socket error).
	done chan struct{}
}

// Dial connects to an ffqd broker over TCP.
func Dial(addr string, opts Options) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(nc, opts), nil
}

// New adopts an established connection (TCP or a net.Pipe end) and
// starts the read loop.
func New(nc net.Conn, opts Options) *Client {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	c := &Client{
		nc:      nc,
		opts:    opts,
		pubs:    map[string]map[uint32]*pub{},
		subs:    map[string]map[uint32]*Subscription{},
		pings:   map[uint64]chan struct{}{},
		offsets: map[string]map[uint32][]chan offsetsReply{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Err returns the terminal connection error, or nil while the
// connection is healthy. A clean Close reports net.ErrClosed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fail records the terminal error once and unblocks everything:
// publishers waiting on window space, subscriptions waiting on Recv,
// pings waiting on pongs.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	pubs := make([]*pub, 0, len(c.pubs))
	for _, m := range c.pubs {
		for _, p := range m {
			pubs = append(pubs, p)
		}
	}
	subs := make([]*Subscription, 0, len(c.subs))
	for _, m := range c.subs {
		for _, s := range m {
			subs = append(subs, s)
		}
	}
	c.mu.Unlock()

	close(c.done)
	c.nc.Close()
	for _, p := range pubs {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	for _, s := range subs {
		s.closeCh()
	}
}

// readLoop dispatches broker frames: DELIVERs to subscriptions, ACKs
// to publisher windows (or, with FlagEnd, subscription end-of-stream),
// PONGs to waiting Pings.
func (c *Client) readLoop() {
	r := wire.NewReader(c.nc)
	for {
		f, err := r.Next()
		if err != nil {
			c.fail(err)
			return
		}
		switch f.Type {
		case wire.TProduce:
			if f.Flags&wire.FlagDeliver == 0 {
				c.fail(errors.New("client: PRODUCE without DELIVER flag from broker"))
				return
			}
			if f.Flags&wire.FlagOffset != 0 {
				topic, part, base, b, err := wire.ParseDeliverOffsets(f)
				if err != nil {
					c.fail(err)
					return
				}
				c.mu.Lock()
				s := c.subs[string(topic)][part]
				c.mu.Unlock()
				msgs := wire.CopyMessages(&b)
				if s == nil || s.mch == nil {
					continue // subscription raced away; drop
				}
				for i, m := range msgs {
					s.mch <- Msg{Offset: base + uint64(i), Payload: m}
				}
				continue
			}
			p, err := wire.ParseProduce(f)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			s := c.subs[string(p.Topic)][p.Part]
			c.mu.Unlock()
			msgs := wire.CopyMessages(&p.Batch)
			if s == nil {
				continue // subscription raced away; drop
			}
			for _, m := range msgs {
				s.ch <- m
			}
		case wire.TAck:
			topic, part, seq, err := wire.ParseAck(f)
			if err != nil {
				c.fail(err)
				return
			}
			if f.Flags&wire.FlagEnd != 0 {
				c.mu.Lock()
				s := c.subs[string(topic)][part]
				c.mu.Unlock()
				if s != nil {
					s.ended.Store(true)
					s.closeCh()
				}
				continue
			}
			c.mu.Lock()
			p := c.pubs[string(topic)][part]
			c.mu.Unlock()
			if p != nil {
				p.mu.Lock()
				if seq > p.acked {
					p.acked = seq
					p.cond.Broadcast()
				}
				p.mu.Unlock()
			}
		case wire.TOffsets:
			topic, part, oldest, next, cursor, err := wire.ParseOffsetsResp(f)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			var ch chan offsetsReply
			if q := c.offsets[string(topic)][part]; len(q) > 0 {
				ch = q[0]
				c.offsets[string(topic)][part] = q[1:]
			}
			c.mu.Unlock()
			if ch != nil {
				ch <- offsetsReply{oldest: oldest, next: next, cursor: cursor}
			}
		case wire.TMeta:
			if f.Flags&wire.FlagReply == 0 {
				c.fail(errors.New("client: METADATA request from broker"))
				return
			}
			m, err := wire.ParseMetaResp(f)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			var ch chan MetaInfo
			if len(c.metas) > 0 {
				ch = c.metas[0]
				c.metas = c.metas[1:]
			}
			c.mu.Unlock()
			if ch != nil {
				info := MetaInfo{
					NodeID:      m.NodeID,
					Partitions:  m.Partitions,
					Replication: m.Replication,
					Topics:      m.Topics,
				}
				for _, n := range m.Nodes {
					info.Nodes = append(info.Nodes, NodeInfo{ID: n.ID, Addr: n.Addr})
				}
				ch <- info
			}

		case wire.TPing:
			token, err := wire.ParsePing(f)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			ch := c.pings[token]
			delete(c.pings, token)
			c.mu.Unlock()
			if ch != nil {
				ch <- struct{}{}
			}
		case wire.TErr:
			code, detail, msg, err := wire.ParseErrCode(f)
			if err != nil {
				c.fail(err)
				return
			}
			switch code {
			case wire.ECodeTruncated:
				c.fail(&ErrOffsetTruncated{Oldest: detail, msg: "client: broker error: " + msg})
			case wire.ECodeNotOwner:
				c.fail(&ErrNotOwner{Part: uint32(detail), msg: "client: broker error: " + msg})
			default:
				c.fail(errors.New("client: broker error: " + msg))
			}
			return
		default:
			c.fail(errors.New("client: unexpected frame type from broker"))
			return
		}
	}
}

// ---- producer side ----

// pub is the per-topic-partition publish state: batch buffer +
// pipeline window. Each partition pipelines independently — a full
// window on one partition never blocks publishes to another.
type pub struct {
	c     *Client
	topic []byte
	part  uint32

	mu      sync.Mutex
	cond    *sync.Cond
	pending [][]byte
	// sent/acked track the pipeline window in messages; acked is the
	// broker's cumulative ACK.
	sent, acked uint64
	timerArmed  bool
}

// pub returns (creating) the publish state for (topic, part).
func (c *Client) pub(topic string, part uint32) *pub {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pubs[topic][part]
	if !ok {
		p = &pub{c: c, topic: []byte(topic), part: part}
		p.cond = sync.NewCond(&p.mu)
		if c.pubs[topic] == nil {
			c.pubs[topic] = map[uint32]*pub{}
		}
		c.pubs[topic][part] = p
	}
	return p
}

// Publish queues msg for topic (the bytes are copied). It flushes
// synchronously when the batch buffer reaches MaxBatch and blocks when
// the pipeline window is full; otherwise it returns immediately and
// the flush timer picks the batch up.
func (c *Client) Publish(topic string, msg []byte) error {
	return c.PublishPart(topic, NoPartition, msg)
}

// PublishPart queues msg for one partition of topic, with the same
// batching and windowing as Publish. Against a clustered broker the
// connection must be to the partition's owner — anything else dies
// with ErrNotOwner.
func (c *Client) PublishPart(topic string, part uint32, msg []byte) error {
	p := c.pub(topic, part)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := c.Err(); err != nil {
		return err
	}
	p.pending = append(p.pending, append([]byte(nil), msg...))
	if len(p.pending) >= c.opts.MaxBatch {
		return p.flushLocked()
	}
	if !p.timerArmed {
		p.timerArmed = true
		time.AfterFunc(c.opts.FlushInterval, p.timerFlush)
	}
	return nil
}

// timerFlush is the FlushInterval callback.
func (p *pub) timerFlush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timerArmed = false
	if len(p.pending) > 0 && p.c.Err() == nil {
		p.flushLocked() // best effort; errors surface on the next Publish
	}
}

// flushLocked sends the pending batch as PRODUCE frames, waiting for
// window space as needed. Callers hold p.mu.
//
// The socket write happens with p.mu RELEASED (wmu alone orders the
// frames): the read loop takes p.mu to process ACKs, and on a
// synchronous transport (net.Pipe) a write can only complete once the
// peer's reads progress — holding p.mu across the write would deadlock
// the window against its own acknowledgements.
func (p *pub) flushLocked() error {
	c := p.c
	for len(p.pending) > 0 {
		for c.Err() == nil && p.sent-p.acked >= uint64(c.opts.Window) {
			p.cond.Wait()
		}
		if err := c.Err(); err != nil {
			return err
		}
		room := c.opts.Window - int(p.sent-p.acked)
		n := min(len(p.pending), c.opts.MaxBatch, room)
		// Copy the slice headers: the pending buffer is compacted (and
		// refilled by concurrent Publishes) once p.mu is released.
		batch := make([][]byte, n)
		copy(batch, p.pending[:n])
		p.sent += uint64(n)
		p.pending = append(p.pending[:0], p.pending[n:]...)
		// Taking wmu before releasing p.mu keeps frame order equal to
		// window order when Publish and the flush timer race.
		c.wmu.Lock()
		p.mu.Unlock()
		c.wbuf.Reset()
		c.wbuf.PutProduce(0, p.topic, p.part, batch)
		_, err := c.nc.Write(c.wbuf.Bytes())
		c.wmu.Unlock()
		p.mu.Lock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush sends every topic's pending batch now.
func (c *Client) Flush() error {
	var first error
	for _, p := range c.allPubs() {
		p.mu.Lock()
		if err := p.flushLocked(); err != nil && first == nil {
			first = err
		}
		p.mu.Unlock()
	}
	return first
}

// Drain flushes and then blocks until the broker has acknowledged
// every published message (the pipeline is empty).
func (c *Client) Drain() error {
	if err := c.Flush(); err != nil {
		return err
	}
	for _, p := range c.allPubs() {
		p.mu.Lock()
		for c.Err() == nil && p.acked < p.sent {
			p.cond.Wait()
		}
		p.mu.Unlock()
	}
	return c.Err()
}

func (c *Client) allPubs() []*pub {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*pub, 0, len(c.pubs))
	for _, m := range c.pubs {
		for _, p := range m {
			out = append(out, p)
		}
	}
	return out
}

// ---- consumer side ----

// Subscription is one credit-window subscription. Recv (or RecvMsg on
// a replay subscription) is single-consumer; everything else on the
// Client stays concurrent.
type Subscription struct {
	c      *Client
	topic  []byte
	part   uint32
	ch     chan []byte
	window int
	// mch replaces ch on a replay subscription: deliveries carry
	// offsets there.
	mch chan Msg
	// taken counts messages consumed since the last CREDIT; Recv
	// replenishes at half a window.
	taken  int
	closed atomic.Bool
	ended  atomic.Bool
}

// Msg is one replay-delivered message: the payload plus its durable
// per-topic offset.
type Msg struct {
	Offset  uint64
	Payload []byte
}

// FromCursor, passed to SubscribeFrom, resumes from the consumer
// group's persisted cursor (or the log's oldest retained offset when
// the group has no cursor yet).
const FromCursor = wire.OffsetCursor

// offsetsReply carries one OFFSETS response to its waiting query.
type offsetsReply struct {
	oldest, next, cursor uint64
}

// Ended reports whether the broker sent the end-of-stream marker (a
// graceful drain). After Recv returns ok=false, Ended distinguishes a
// clean end from a connection failure.
func (s *Subscription) Ended() bool { return s.ended.Load() }

// register indexes a new subscription under (topic, part), rejecting
// duplicates.
func (c *Client) register(topic string, s *Subscription) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if _, dup := c.subs[topic][s.part]; dup {
		return errors.New("client: already subscribed to " + topic)
	}
	if c.subs[topic] == nil {
		c.subs[topic] = map[uint32]*Subscription{}
	}
	c.subs[topic][s.part] = s
	return nil
}

func (c *Client) unregister(topic string, part uint32) {
	c.mu.Lock()
	delete(c.subs[topic], part)
	c.mu.Unlock()
}

// Subscribe opens a subscription on topic with the given credit window
// (0 means the client default). The window bounds broker-side
// in-flight deliveries and is also the Recv buffer size.
func (c *Client) Subscribe(topic string, window int) (*Subscription, error) {
	return c.SubscribePart(topic, NoPartition, window)
}

// SubscribePart opens a live subscription on one partition of topic.
// Against a clustered broker the connection must be to the
// partition's owner.
func (c *Client) SubscribePart(topic string, part uint32, window int) (*Subscription, error) {
	if window <= 0 {
		window = c.opts.Window
	}
	s := &Subscription{
		c:      c,
		topic:  []byte(topic),
		part:   part,
		ch:     make(chan []byte, window),
		window: window,
	}
	if err := c.register(topic, s); err != nil {
		return nil, err
	}
	if err := c.writeConsume(s.topic, part, uint32(window)); err != nil {
		c.unregister(topic, part)
		return nil, err
	}
	return s, nil
}

// SubscribeFrom opens a replay subscription on a durable topic: the
// broker streams the topic's log from the given offset (FromCursor =
// the group's persisted position) and keeps following it at the head.
// Every message arrives with its offset via RecvMsg. group may be
// empty — then there is no cursor to resume from or Commit to.
func (c *Client) SubscribeFrom(topic string, window int, from uint64, group string) (*Subscription, error) {
	return c.SubscribeFromPart(topic, NoPartition, window, from, group, false)
}

// SubscribeFromPart is SubscribeFrom addressed to one partition.
// Replay is served by the partition's owner and by its replicas (a
// replica streams what its follower has copied so far). strict asks
// the broker to fail the stream with ErrOffsetTruncated instead of
// silently clamping when retention has dropped requested offsets —
// the mode replication followers run in.
func (c *Client) SubscribeFromPart(topic string, part uint32, window int, from uint64, group string, strict bool) (*Subscription, error) {
	if window <= 0 {
		window = c.opts.Window
	}
	s := &Subscription{
		c:      c,
		topic:  []byte(topic),
		part:   part,
		mch:    make(chan Msg, window),
		window: window,
	}
	if err := c.register(topic, s); err != nil {
		return nil, err
	}
	if err := c.writeConsumeFrom(s.topic, part, uint32(window), from, []byte(group), strict); err != nil {
		c.unregister(topic, part)
		return nil, err
	}
	return s, nil
}

// Recv returns the next delivered message; ok=false means
// end-of-stream (broker drain) or connection failure — check
// Client.Err to distinguish. It replenishes the broker's credit
// window as messages are consumed.
func (s *Subscription) Recv() (msg []byte, ok bool) {
	if s.mch != nil {
		m, ok := s.RecvMsg()
		return m.Payload, ok
	}
	m, ok := <-s.ch
	if !ok {
		return nil, false
	}
	s.replenish()
	return m, true
}

// RecvMsg returns the next replay-delivered message with its offset;
// only valid on a SubscribeFrom subscription. ok=false as in Recv.
func (s *Subscription) RecvMsg() (m Msg, ok bool) {
	m, ok = <-s.mch
	if !ok {
		return Msg{}, false
	}
	s.replenish()
	return m, true
}

// RecvMsgBatch blocks for one replay-delivered message, then drains
// whatever else is already buffered, up to max. ok=false as in Recv.
// It exists for consumers that amortize per-batch work — the
// replication follower turns each batch into one WAL record instead
// of one record per message.
func (s *Subscription) RecvMsgBatch(max int) (msgs []Msg, ok bool) {
	if max <= 0 {
		max = s.window
	}
	m, ok := <-s.mch
	if !ok {
		return nil, false
	}
	msgs = append(msgs, m)
	for len(msgs) < max {
		select {
		case m, more := <-s.mch:
			if !more {
				// Channel closed behind the buffered tail; deliver what
				// we have — the next call reports the close.
				for range msgs {
					s.replenish()
				}
				return msgs, true
			}
			msgs = append(msgs, m)
			continue
		default:
		}
		break
	}
	for range msgs {
		s.replenish()
	}
	return msgs, true
}

// replenish grants the broker more credit once half the window has
// been consumed.
func (s *Subscription) replenish() {
	s.taken++
	if s.taken >= max(1, s.window/2) {
		s.c.writeCredit(s.topic, s.part, uint32(s.taken))
		s.taken = 0
	}
}

// Commit persists the subscription's consumer-group cursor: off is the
// first offset NOT yet processed (commit Msg.Offset+1 after handling a
// message). Requires a SubscribeFrom subscription with a group.
func (s *Subscription) Commit(off uint64) error {
	if s.mch == nil {
		return errors.New("client: Commit on a non-replay subscription")
	}
	return s.c.writeCommit(s.topic, s.part, off)
}

// closeCh closes the delivery channel exactly once (end marker and
// connection failure can race).
func (s *Subscription) closeCh() {
	if s.closed.CompareAndSwap(false, true) {
		if s.mch != nil {
			close(s.mch)
		} else {
			close(s.ch)
		}
	}
}

// Offsets queries a durable topic's offset range and, when group is
// non-empty, that group's committed cursor (wire.OffsetCursor — i.e.
// ^uint64(0) — when the group has none).
func (c *Client) Offsets(topic, group string) (oldest, next, cursor uint64, err error) {
	return c.OffsetsPart(topic, NoPartition, group)
}

// OffsetsPart is Offsets addressed to one partition; replicas answer
// for partitions they hold with the range their follower has copied.
func (c *Client) OffsetsPart(topic string, part uint32, group string) (oldest, next, cursor uint64, err error) {
	ch := make(chan offsetsReply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, 0, 0, err
	}
	if c.offsets[topic] == nil {
		c.offsets[topic] = map[uint32][]chan offsetsReply{}
	}
	c.offsets[topic][part] = append(c.offsets[topic][part], ch)
	c.mu.Unlock()
	if err := c.writeOffsetsReq([]byte(topic), part, []byte(group)); err != nil {
		return 0, 0, 0, err
	}
	select {
	case r := <-ch:
		return r.oldest, r.next, r.cursor, nil
	case <-c.done:
		return 0, 0, 0, c.Err()
	}
}

// Meta queries the broker's cluster shape and partitioned topics. On
// a standalone broker the cluster fields come back zero.
func (c *Client) Meta() (MetaInfo, error) {
	ch := make(chan MetaInfo, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return MetaInfo{}, err
	}
	c.metas = append(c.metas, ch)
	c.mu.Unlock()
	if err := c.writeMetaReq(); err != nil {
		return MetaInfo{}, err
	}
	select {
	case m := <-ch:
		return m, nil
	case <-c.done:
		return MetaInfo{}, c.Err()
	}
}

// ---- ping ----

// Ping round-trips a PING frame and returns the wire+broker latency.
func (c *Client) Ping() (time.Duration, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	c.pingID++
	token := c.pingID
	ch := make(chan struct{}, 1)
	c.pings[token] = ch
	c.mu.Unlock()

	start := time.Now()
	if err := c.writePing(token); err != nil {
		return 0, err
	}
	select {
	case <-ch:
		return time.Since(start), nil
	case <-c.done:
		return 0, c.Err()
	}
}

// Close flushes pending batches and closes the connection. Open
// subscriptions observe end-of-stream.
func (c *Client) Close() error {
	c.Flush()
	err := c.nc.Close()
	<-c.done // read loop exits and closes subscription channels
	return err
}

// ---- serialized writer ----

func (c *Client) writeConsume(topic []byte, part uint32, credit uint32) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutConsume(topic, part, credit)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeConsumeFrom(topic []byte, part uint32, credit uint32, from uint64, group []byte, strict bool) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutConsumeFrom(topic, part, credit, from, group, strict)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeCommit(topic []byte, part uint32, off uint64) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutAck(wire.FlagOffset, topic, part, off)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeOffsetsReq(topic []byte, part uint32, group []byte) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutOffsetsReq(topic, part, group)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeCredit(topic []byte, part uint32, n uint32) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutCredit(topic, part, n)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writeMetaReq() error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutMetaReq()
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}

func (c *Client) writePing(token uint64) error {
	c.wmu.Lock()
	c.wbuf.Reset()
	c.wbuf.PutPing(token, false)
	_, err := c.nc.Write(c.wbuf.Bytes())
	c.wmu.Unlock()
	return err
}
