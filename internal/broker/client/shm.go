package client

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"ffq/internal/shm"
)

// ShmPublisher publishes to a local ffqd through a shared-memory
// segment instead of the wire: payloads go straight into an mmap SPSC
// ring that the broker's ShmDir scanner pumps into the topic. One
// goroutine at a time may use it. There are no ACKs on this path — the
// handoff is the ring itself, and delivery to the topic is bounded by
// the broker's scan interval plus pump latency.
type ShmPublisher struct {
	p    *shm.Producer
	path string
}

// shmSeq makes segment names unique within a process that opens
// several publishers for one topic.
var shmSeq atomic.Uint64

// DialShm creates a fresh segment under dir (the broker's -shm-dir)
// for topic, sized for payloads up to slotSize bytes and a ring of at
// least capacity of them. The file name embeds the topic, the PID and
// a sequence number, so concurrent producers never collide; the file
// appears atomically, so the broker can never scan a half-built one.
func DialShm(dir, topic string, slotSize, capacity int) (*ShmPublisher, error) {
	name := fmt.Sprintf("%s-%d-%d.ffq", sanitize(topic), os.Getpid(), shmSeq.Add(1))
	path := filepath.Join(dir, name)
	p, err := shm.Create(path, topic, slotSize, capacity)
	if err != nil {
		return nil, err
	}
	return &ShmPublisher{p: p, path: path}, nil
}

// sanitize keeps segment file names flat and portable: anything
// outside [a-zA-Z0-9._-] becomes '_' (the topic the broker routes on
// is the header's, not the file name's).
func sanitize(topic string) string {
	out := []byte(topic)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Path returns the segment file backing this publisher.
func (s *ShmPublisher) Path() string { return s.path }

// Publish appends one payload, blocking while the ring is full. It
// returns shm.ErrTooLarge for oversized payloads and shm.ErrPeerDead
// if the draining broker process died.
func (s *ShmPublisher) Publish(payload []byte) error { return s.p.Enqueue(payload) }

// TryPublish appends one payload if the ring has space.
func (s *ShmPublisher) TryPublish(payload []byte) (bool, error) { return s.p.TryEnqueue(payload) }

// PublishBatch appends every payload in order with line-granular
// publication (one release store per cache line of the ring).
func (s *ShmPublisher) PublishBatch(payloads [][]byte) error { return s.p.EnqueueBatch(payloads) }

// Close marks the segment closed and unmaps it. The broker drains
// whatever was published and then removes the file.
func (s *ShmPublisher) Close() error {
	s.p.Close()
	return s.p.Detach()
}
