// Package cachesim is a trace-driven multi-level cache hierarchy
// simulator with MESI-style private-cache coherence. It stands in for
// the hardware performance counters (Intel PCM) the paper reads in its
// cache-locality study (Section V-D, Figures 4 and 5): the perfmodel
// package replays the memory access pattern of an FFQ
// producer/consumer pair against this hierarchy and derives hit
// ratios, miss counts, memory bandwidth and IPC from the simulation
// instead of from MSRs.
//
// The model: per-core L1D and L2, one shared inclusive L3, 64-byte
// lines, true-LRU sets, a directory tracking which private caches hold
// each line. Writes require exclusivity (other cores' copies are
// invalidated); a miss that hits a dirty remote copy pays a
// core-to-core transfer. Latencies are configurable and default to
// Skylake-client-like values.
package cachesim

import (
	"fmt"
	"math/bits"
)

// Level identifies where an access was satisfied.
type Level uint8

// Access outcome levels.
const (
	L1 Level = iota
	L2
	L3
	Memory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "mem"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// LevelConfig sizes one cache level.
type LevelConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyCycles is the load-to-use latency on a hit at this level.
	LatencyCycles int
}

// Config describes the hierarchy.
type Config struct {
	// LineSize in bytes (64).
	LineSize int
	// Cores is the number of simulated cores (each with private L1/L2).
	Cores int
	// L1D, L2 are per-core; L3 is shared and inclusive.
	L1D, L2, L3 LevelConfig
	// MemLatencyCycles is the miss-to-DRAM latency.
	MemLatencyCycles int
	// TransferLatencyCycles is the extra cost of pulling a line out of
	// another core's private cache (dirty sharing).
	TransferLatencyCycles int
	// PrefetchDepth enables a per-core next-line streaming prefetcher:
	// when a core misses two consecutive lines in ascending order, the
	// following PrefetchDepth lines are pulled into its L2 in the
	// background (0 disables). Real Intel cores ship an equivalent
	// streamer; without it the sequential queue traversal of the
	// paper's workload would never produce the rising L2 hit ratios of
	// Figure 4.
	PrefetchDepth int
}

// SkylakeConfig returns a configuration resembling the paper's Skylake
// server (Xeon E3-1270 v5: 4 cores, 32 KiB L1D, 256 KiB L2, 8 MiB L3).
func SkylakeConfig() Config {
	return Config{
		LineSize:              64,
		Cores:                 4,
		L1D:                   LevelConfig{SizeBytes: 32 << 10, Assoc: 8, LatencyCycles: 4},
		L2:                    LevelConfig{SizeBytes: 256 << 10, Assoc: 4, LatencyCycles: 12},
		L3:                    LevelConfig{SizeBytes: 8 << 20, Assoc: 16, LatencyCycles: 42},
		MemLatencyCycles:      200,
		TransferLatencyCycles: 60,
		PrefetchDepth:         2,
	}
}

// HaswellConfig resembles one socket of the paper's Haswell server
// (Xeon E5-2683 v3: 14 cores at 2 GHz, 35 MB shared L3; rounded to
// 32 MiB here because the simulator indexes sets with a mask).
func HaswellConfig() Config {
	return Config{
		LineSize:              64,
		Cores:                 14,
		L1D:                   LevelConfig{SizeBytes: 32 << 10, Assoc: 8, LatencyCycles: 4},
		L2:                    LevelConfig{SizeBytes: 256 << 10, Assoc: 8, LatencyCycles: 12},
		L3:                    LevelConfig{SizeBytes: 32 << 20, Assoc: 16, LatencyCycles: 50},
		MemLatencyCycles:      230,
		TransferLatencyCycles: 80,
		PrefetchDepth:         2,
	}
}

// Power8Config resembles the paper's POWER8 server (8284-22A: 10 cores
// at 3.42 GHz, 512 KiB L2 and 8 MB L3 per core; the L3 here models one
// core's local region times the core count as a shared victim space,
// the closest single-L3 approximation this model supports). POWER8
// lines are 128 bytes.
func Power8Config() Config {
	return Config{
		LineSize:              128,
		Cores:                 10,
		L1D:                   LevelConfig{SizeBytes: 64 << 10, Assoc: 8, LatencyCycles: 3},
		L2:                    LevelConfig{SizeBytes: 512 << 10, Assoc: 8, LatencyCycles: 13},
		L3:                    LevelConfig{SizeBytes: 80 << 20, Assoc: 10, LatencyCycles: 55},
		MemLatencyCycles:      250,
		TransferLatencyCycles: 70,
		PrefetchDepth:         4,
	}
}

// ServerConfig returns the named configuration ("skylake", "haswell",
// "p8").
func ServerConfig(name string) (Config, error) {
	switch name {
	case "skylake":
		return SkylakeConfig(), nil
	case "haswell":
		return HaswellConfig(), nil
	case "p8":
		return Power8Config(), nil
	default:
		return Config{}, fmt.Errorf("cachesim: unknown server %q (have skylake, haswell, p8)", name)
	}
}

// way is one cache line slot.
type way struct {
	tag   uint64 // line address (addr >> log2(LineSize))
	valid bool
	dirty bool
	lru   uint64
}

// cache is one set-associative cache of lines.
type cache struct {
	sets    [][]way
	setMask uint64
	tick    uint64
}

func newCache(c LevelConfig, lineSize int) (*cache, error) {
	if c.SizeBytes <= 0 || c.Assoc <= 0 {
		return nil, fmt.Errorf("cachesim: bad level config %+v", c)
	}
	nSets := c.SizeBytes / (lineSize * c.Assoc)
	if nSets < 1 || nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cachesim: %d sets (size %d, assoc %d) is not a power of two",
			nSets, c.SizeBytes, c.Assoc)
	}
	sets := make([][]way, nSets)
	backing := make([]way, nSets*c.Assoc)
	for i := range sets {
		sets[i] = backing[i*c.Assoc : (i+1)*c.Assoc]
	}
	return &cache{sets: sets, setMask: uint64(nSets - 1)}, nil
}

func (c *cache) set(line uint64) []way {
	return c.sets[line&c.setMask]
}

// lookup returns the way holding line, or nil.
func (c *cache) lookup(line uint64) *way {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			c.tick++
			s[i].lru = c.tick
			return &s[i]
		}
	}
	return nil
}

// insert places line, evicting the LRU way. It returns the evicted
// line (valid=false when the slot was free).
func (c *cache) insert(line uint64, dirty bool) (evicted way) {
	s := c.set(line)
	victim := 0
	for i := range s {
		if !s[i].valid {
			victim = i
			break
		}
		if s[i].lru < s[victim].lru {
			victim = i
		}
	}
	evicted = s[victim]
	c.tick++
	s[victim] = way{tag: line, valid: true, dirty: dirty, lru: c.tick}
	return evicted
}

// invalidate drops line if present, returning whether it was dirty.
func (c *cache) invalidate(line uint64) (present, dirty bool) {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			d := s[i].dirty
			s[i].valid = false
			return true, d
		}
	}
	return false, false
}

// dirEntry tracks which cores' private caches hold a line.
type dirEntry struct {
	owners uint64 // bitmask of cores
	dirty  int8   // core holding it modified, or -1
}

// Stats are cumulative counters for the whole hierarchy.
type Stats struct {
	// Accesses is the total number of Access calls.
	Accesses uint64
	// Hits per level (L1, L2, L3); Memory counts DRAM fills.
	L1Hits, L2Hits, L3Hits, MemFills uint64
	// Writebacks counts dirty lines written toward memory.
	Writebacks uint64
	// Invalidations counts coherence invalidations of private copies.
	Invalidations uint64
	// Transfers counts core-to-core dirty-line transfers.
	Transfers uint64
	// Prefetches counts lines pulled into private L2s by the streamer.
	Prefetches uint64
	// Cycles is the summed access latency.
	Cycles uint64
}

// L1Ratio returns L1 hits / accesses.
func (s Stats) L1Ratio() float64 { return ratio(s.L1Hits, s.Accesses) }

// L2Ratio returns L2 hits / L1 misses (the "L2 hit ratio" of Fig. 4).
func (s Stats) L2Ratio() float64 { return ratio(s.L2Hits, s.Accesses-s.L1Hits) }

// L3Ratio returns L3 hits / L2 misses (the "L3 hit ratio" of Fig. 5).
func (s Stats) L3Ratio() float64 {
	return ratio(s.L3Hits, s.Accesses-s.L1Hits-s.L2Hits)
}

// MemBytes returns bytes moved to/from DRAM assuming 64-byte lines.
func (s Stats) MemBytes() uint64 { return (s.MemFills + s.Writebacks) * 64 }

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Hierarchy is the simulated cache system. Not safe for concurrent
// use: the perfmodel drives it from one event loop.
type Hierarchy struct {
	cfg       Config
	lineShift uint
	l1, l2    []*cache
	l3        *cache
	dir       map[uint64]*dirEntry
	stats     Stats
	// streams holds each core's stream detectors: streams[core][k] is
	// the next line a tracked stream expects. Real streamers track
	// several independent streams (Intel: one per 4 KiB page); a small
	// fixed table with round-robin replacement captures that.
	streams  [][]uint64
	streamRR []int
}

// New builds a hierarchy from cfg.
func New(cfg Config) (*Hierarchy, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("cachesim: need at least one core")
	}
	if cfg.Cores > 64 {
		return nil, fmt.Errorf("cachesim: directory bitmask supports at most 64 cores")
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d is not a power of two", cfg.LineSize)
	}
	h := &Hierarchy{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		dir:       make(map[uint64]*dirEntry),
		streamRR:  make([]int, cfg.Cores),
	}
	for c := 0; c < cfg.Cores; c++ {
		h.streams = append(h.streams, make([]uint64, 8))
	}
	for c := 0; c < cfg.Cores; c++ {
		l1, err := newCache(cfg.L1D, cfg.LineSize)
		if err != nil {
			return nil, err
		}
		l2, err := newCache(cfg.L2, cfg.LineSize)
		if err != nil {
			return nil, err
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
	}
	l3, err := newCache(cfg.L3, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	h.l3 = l3
	return h, nil
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a snapshot of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters (cache contents are kept, so a warmed
// hierarchy can be measured separately).
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// entry returns (creating) the directory entry for line.
func (h *Hierarchy) entry(line uint64) *dirEntry {
	e := h.dir[line]
	if e == nil {
		e = &dirEntry{dirty: -1}
		h.dir[line] = e
	}
	return e
}

// Access simulates one memory access by core to byte address addr and
// returns the level that satisfied it plus its cycle cost.
func (h *Hierarchy) Access(core int, addr uint64, write bool) (Level, int) {
	line := addr >> h.lineShift
	h.stats.Accesses++

	if w := h.l1[core].lookup(line); w != nil {
		cycles := h.cfg.L1D.LatencyCycles
		if write {
			cycles += h.ensureExclusive(core, line)
			w.dirty = true
		}
		h.stats.L1Hits++
		h.stats.Cycles += uint64(cycles)
		return L1, cycles
	}
	if w := h.l2[core].lookup(line); w != nil {
		cycles := h.cfg.L2.LatencyCycles
		dirty := w.dirty
		if write {
			cycles += h.ensureExclusive(core, line)
			dirty = true
			w.dirty = true
		}
		h.fillL1(core, line, dirty && write)
		h.stats.L2Hits++
		h.stats.Cycles += uint64(cycles)
		return L2, cycles
	}

	// Private miss: consult the directory for remote copies.
	cycles := 0
	level := L3
	e := h.entry(line)
	remote := e.owners &^ (1 << uint(core))
	if e.dirty >= 0 && int(e.dirty) != core && remote&(1<<uint(e.dirty)) != 0 {
		// Dirty in another core's private cache: transfer it, write it
		// back to L3, downgrade the owner to shared.
		cycles += h.cfg.TransferLatencyCycles
		h.stats.Transfers++
		h.writebackPrivate(e.dirty, line)
		e.dirty = -1
		if h.l3.lookup(line) == nil {
			h.insertL3(line, true)
		}
	}

	if h.l3.lookup(line) != nil {
		cycles += h.cfg.L3.LatencyCycles
		h.stats.L3Hits++
	} else {
		cycles += h.cfg.MemLatencyCycles
		h.stats.MemFills++
		h.insertL3(line, false)
		level = Memory
	}

	if write {
		cycles += h.ensureExclusive(core, line)
	}
	h.fillL2(core, line, write)
	h.fillL1(core, line, write)
	e = h.entry(line) // insertL3 back-invalidation may have replaced it
	e.owners |= 1 << uint(core)
	if write {
		e.dirty = int8(core)
	}
	h.prefetch(core, line)
	h.stats.Cycles += uint64(cycles)
	return level, cycles
}

// prefetch runs the per-core next-line streamer after a private miss
// on line: two consecutive ascending misses trigger background fills
// of the following PrefetchDepth lines into this core's L2. Prefetch
// fills are clean and free of charge (they overlap with execution on
// real hardware); they still consume L2/L3 capacity, which is what
// creates the Figure 4/5 interplay.
func (h *Hierarchy) prefetch(core int, line uint64) {
	if h.cfg.PrefetchDepth <= 0 {
		return
	}
	table := h.streams[core]
	hit := false
	for k := range table {
		if table[k] == line && line != 0 {
			table[k] = line + 1 // stream confirmed; advance it
			hit = true
			break
		}
	}
	if !hit {
		// Allocate a detector expecting the next line (round-robin
		// victim) and wait for confirmation before prefetching.
		table[h.streamRR[core]] = line + 1
		h.streamRR[core] = (h.streamRR[core] + 1) % len(table)
		return
	}
	for d := 1; d <= h.cfg.PrefetchDepth; d++ {
		pl := line + uint64(d)
		if h.l2[core].lookup(pl) != nil || h.l1[core].lookup(pl) != nil {
			continue
		}
		// A dirty remote copy is snooped exactly as a demand load
		// would snoop it — the streamer pulling the producer's freshly
		// written cells early is precisely what raises the consumer's
		// L2 hit ratio on streaming handoffs (Figure 4).
		if e := h.dir[pl]; e != nil && e.dirty >= 0 && int(e.dirty) != core {
			h.writebackPrivate(e.dirty, pl)
			e.dirty = -1
			if h.l3.lookup(pl) == nil {
				h.insertL3(pl, true)
			}
			h.stats.Transfers++
		}
		if h.l3.lookup(pl) == nil {
			h.insertL3(pl, false)
			h.stats.MemFills++
		}
		h.fillL2(core, pl, false)
		if e := h.entry(pl); e != nil {
			e.owners |= 1 << uint(core)
		}
		h.stats.Prefetches++
	}
}

// ensureExclusive invalidates all other private copies of line and
// returns the added cycle cost.
func (h *Hierarchy) ensureExclusive(core int, line uint64) int {
	e := h.entry(line)
	others := e.owners &^ (1 << uint(core))
	if others == 0 {
		e.dirty = int8(core)
		return 0
	}
	cost := 0
	for c := 0; c < h.cfg.Cores; c++ {
		if others&(1<<uint(c)) == 0 {
			continue
		}
		p1, d1 := h.l1[c].invalidate(line)
		p2, d2 := h.l2[c].invalidate(line)
		if p1 || p2 {
			h.stats.Invalidations++
			cost += h.cfg.TransferLatencyCycles / 2
			if d1 || d2 {
				// Their dirty data reaches us through L3.
				if w := h.l3.lookup(line); w != nil {
					w.dirty = true
				}
			}
		}
		e.owners &^= 1 << uint(c)
	}
	e.owners |= 1 << uint(core)
	e.dirty = int8(core)
	return cost
}

// writebackPrivate flushes line out of core's private caches into L3.
func (h *Hierarchy) writebackPrivate(core int8, line uint64) {
	h.l1[core].invalidate(line)
	h.l2[core].invalidate(line)
	e := h.entry(line)
	e.owners &^= 1 << uint(core)
}

// fillL1 inserts line into core's L1, handling the victim.
func (h *Hierarchy) fillL1(core int, line uint64, dirty bool) {
	if h.l1[core].lookup(line) != nil {
		return
	}
	ev := h.l1[core].insert(line, dirty)
	if ev.valid && ev.dirty {
		// Dirty victim falls into L2.
		if w := h.l2[core].lookup(ev.tag); w != nil {
			w.dirty = true
		} else {
			h.fillL2(core, ev.tag, true)
		}
	}
	if ev.valid {
		h.noteEviction(core, ev.tag)
	}
}

// fillL2 inserts line into core's L2, handling the victim.
func (h *Hierarchy) fillL2(core int, line uint64, dirty bool) {
	if w := h.l2[core].lookup(line); w != nil {
		w.dirty = w.dirty || dirty
		return
	}
	ev := h.l2[core].insert(line, dirty)
	if ev.valid {
		if ev.dirty {
			if w := h.l3.lookup(ev.tag); w != nil {
				w.dirty = true
			} else {
				h.insertL3(ev.tag, true)
			}
		}
		// The line may still be in L1 (non-inclusive victim): evict it
		// too to keep the model simple (mostly-inclusive hierarchy).
		h.l1[core].invalidate(ev.tag)
		h.noteEviction(core, ev.tag)
	}
}

// insertL3 inserts line into the shared L3, back-invalidating private
// copies of the victim (inclusive L3).
func (h *Hierarchy) insertL3(line uint64, dirty bool) {
	ev := h.l3.insert(line, dirty)
	if !ev.valid {
		return
	}
	if e := h.dir[ev.tag]; e != nil {
		for c := 0; c < h.cfg.Cores; c++ {
			if e.owners&(1<<uint(c)) == 0 {
				continue
			}
			_, d1 := h.l1[c].invalidate(ev.tag)
			_, d2 := h.l2[c].invalidate(ev.tag)
			if d1 || d2 {
				ev.dirty = true
			}
			h.stats.Invalidations++
		}
		delete(h.dir, ev.tag)
	}
	if ev.dirty {
		h.stats.Writebacks++
	}
}

// noteEviction clears core's directory bit once the line has left both
// of its private levels.
func (h *Hierarchy) noteEviction(core int, line uint64) {
	if h.l1[core].lookup(line) != nil || h.l2[core].lookup(line) != nil {
		return
	}
	if e := h.dir[line]; e != nil {
		e.owners &^= 1 << uint(core)
		if e.dirty == int8(core) {
			e.dirty = -1
		}
		if e.owners == 0 && h.l3.lookup(line) == nil {
			delete(h.dir, line)
		}
	}
}
