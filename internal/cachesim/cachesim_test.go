package cachesim

import (
	"testing"
	"testing/quick"
)

func tiny() Config {
	return Config{
		LineSize:              64,
		Cores:                 2,
		L1D:                   LevelConfig{SizeBytes: 1 << 10, Assoc: 2, LatencyCycles: 4},
		L2:                    LevelConfig{SizeBytes: 4 << 10, Assoc: 4, LatencyCycles: 12},
		L3:                    LevelConfig{SizeBytes: 16 << 10, Assoc: 4, LatencyCycles: 40},
		MemLatencyCycles:      200,
		TransferLatencyCycles: 60,
	}
}

func TestNewValidation(t *testing.T) {
	bad := tiny()
	bad.Cores = 0
	if _, err := New(bad); err == nil {
		t.Error("0 cores accepted")
	}
	bad = tiny()
	bad.LineSize = 48
	if _, err := New(bad); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	bad = tiny()
	bad.L1D.SizeBytes = 100 // 100/(64*2) -> 0 sets
	if _, err := New(bad); err == nil {
		t.Error("degenerate L1 accepted")
	}
	if _, err := New(SkylakeConfig()); err != nil {
		t.Errorf("SkylakeConfig rejected: %v", err)
	}
}

func TestColdMissThenHits(t *testing.T) {
	h, err := New(tiny())
	if err != nil {
		t.Fatal(err)
	}
	lvl, cyc := h.Access(0, 0x1000, false)
	if lvl != Memory || cyc < 200 {
		t.Fatalf("cold access: %v, %d cycles", lvl, cyc)
	}
	lvl, cyc = h.Access(0, 0x1000, false)
	if lvl != L1 || cyc != 4 {
		t.Fatalf("warm access: %v, %d cycles", lvl, cyc)
	}
	// Another address in the same line also hits.
	if lvl, _ = h.Access(0, 0x1030, false); lvl != L1 {
		t.Fatalf("same-line access: %v", lvl)
	}
	st := h.Stats()
	if st.Accesses != 3 || st.L1Hits != 2 || st.MemFills != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	h, _ := New(tiny())
	// L1: 1 KiB / 64B / 2-way = 8 sets. Touch 3 lines in the same set
	// (stride 8*64=512) to overflow a 2-way set.
	h.Access(0, 0, false)
	h.Access(0, 512, false)
	h.Access(0, 1024, false) // evicts line 0 from L1
	lvl, _ := h.Access(0, 0, false)
	if lvl != L2 {
		t.Fatalf("evicted line came from %v, want L2", lvl)
	}
}

func TestCoherenceReadAfterRemoteWrite(t *testing.T) {
	h, _ := New(tiny())
	h.Access(0, 0x2000, true) // core 0 writes (Modified)
	lvl, cyc := h.Access(1, 0x2000, false)
	if lvl == L1 || lvl == L2 {
		t.Fatalf("remote dirty line hit locally: %v", lvl)
	}
	if cyc < tiny().TransferLatencyCycles {
		t.Fatalf("no transfer cost: %d", cyc)
	}
	if st := h.Stats(); st.Transfers != 1 {
		t.Fatalf("transfers = %d, want 1", st.Transfers)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h, _ := New(tiny())
	h.Access(0, 0x3000, false) // both cores share the line
	h.Access(1, 0x3000, false)
	h.Access(0, 0x3000, true) // core 0 upgrades to Modified
	if st := h.Stats(); st.Invalidations == 0 {
		t.Fatal("no invalidation recorded")
	}
	// Core 1 must now miss privately.
	lvl, _ := h.Access(1, 0x3000, false)
	if lvl == L1 || lvl == L2 {
		t.Fatalf("stale copy survived invalidation: %v", lvl)
	}
}

func TestPingPongGeneratesTransfers(t *testing.T) {
	h, _ := New(tiny())
	for i := 0; i < 100; i++ {
		h.Access(0, 0x4000, true)
		h.Access(1, 0x4000, true)
	}
	st := h.Stats()
	if st.Transfers < 50 {
		t.Fatalf("ping-pong transfers = %d, want many", st.Transfers)
	}
}

func TestWorkingSetBeyondL3SpillsToMemory(t *testing.T) {
	h, _ := New(tiny()) // L3 = 16 KiB = 256 lines
	lines := 1024       // 64 KiB working set
	// Two passes: the second still misses to memory because the set
	// does not fit.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			h.Access(0, uint64(i)*64, false)
		}
	}
	st := h.Stats()
	if st.L3Ratio() > 0.5 {
		t.Fatalf("L3 ratio %.2f for a working set 4x L3", st.L3Ratio())
	}
	// And a small working set stays cached (8 lines = 512 B fits the
	// 1 KiB L1 with one line per set).
	h2, _ := New(tiny())
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 8; i++ {
			h2.Access(0, uint64(i)*64, false)
		}
	}
	if r := h2.Stats().L1Ratio(); r < 0.8 {
		t.Fatalf("L1 ratio %.2f for a tiny working set", r)
	}
}

func TestResetStats(t *testing.T) {
	h, _ := New(tiny())
	h.Access(0, 0, false)
	h.ResetStats()
	if st := h.Stats(); st.Accesses != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	// Cache content is preserved: next access is a hit.
	if lvl, _ := h.Access(0, 0, false); lvl != L1 {
		t.Fatalf("warm line lost on ResetStats: %v", lvl)
	}
}

func TestStatsRatios(t *testing.T) {
	s := Stats{Accesses: 100, L1Hits: 50, L2Hits: 25, L3Hits: 20, MemFills: 5, Writebacks: 3}
	if s.L1Ratio() != 0.5 {
		t.Error("L1Ratio")
	}
	if s.L2Ratio() != 0.5 {
		t.Error("L2Ratio")
	}
	if s.L3Ratio() != 0.8 {
		t.Error("L3Ratio")
	}
	if s.MemBytes() != 8*64 {
		t.Error("MemBytes")
	}
	var zero Stats
	if zero.L1Ratio() != 0 || zero.L2Ratio() != 0 || zero.L3Ratio() != 0 {
		t.Error("zero-stats ratios should be 0")
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{L1: "L1", L2: "L2", L3: "L3", Memory: "mem"} {
		if lvl.String() != want {
			t.Errorf("%d: %q", lvl, lvl.String())
		}
	}
}

// Property: accesses always return a sane level and non-negative cost,
// and per-level hit counters never exceed total accesses.
func TestAccessInvariantsProperty(t *testing.T) {
	h, _ := New(tiny())
	f := func(core bool, addr uint32, write bool) bool {
		c := 0
		if core {
			c = 1
		}
		lvl, cyc := h.Access(c, uint64(addr), write)
		if cyc < 0 || lvl > Memory {
			return false
		}
		st := h.Stats()
		return st.L1Hits+st.L2Hits+st.L3Hits+st.MemFills <= st.Accesses+st.Transfers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// The streaming prefetcher must turn a sequential scan into L2 hits
// (after the first two misses establish the stream).
func TestPrefetcherSequentialScan(t *testing.T) {
	cfg := tiny()
	cfg.PrefetchDepth = 2
	h, _ := New(cfg)
	hits := 0
	for i := 0; i < 64; i++ {
		lvl, _ := h.Access(0, uint64(i)*64, false)
		if lvl == L2 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("sequential scan produced no prefetched L2 hits")
	}
	if h.Stats().Prefetches == 0 {
		t.Fatal("prefetch counter did not advance")
	}
	// Disabled prefetcher: no L2 hits on a cold sequential scan.
	cfg.PrefetchDepth = 0
	h2, _ := New(cfg)
	for i := 0; i < 64; i++ {
		if lvl, _ := h2.Access(0, uint64(i)*64, false); lvl == L2 {
			t.Fatal("L2 hit with prefetcher disabled on a cold scan")
		}
	}
}

// Random access must not trigger the streamer.
func TestPrefetcherIgnoresRandomAccess(t *testing.T) {
	cfg := tiny()
	cfg.PrefetchDepth = 4
	h, _ := New(cfg)
	x := uint64(12345)
	for i := 0; i < 200; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		h.Access(0, (x%4096)*64*3, false)
	}
	st := h.Stats()
	if st.Prefetches > st.Accesses/4 {
		t.Fatalf("random access triggered %d prefetches over %d accesses", st.Prefetches, st.Accesses)
	}
}

func TestServerConfigs(t *testing.T) {
	for _, name := range []string{"skylake", "haswell", "p8"} {
		cfg, err := ServerConfig(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := New(cfg); err != nil {
			t.Errorf("%s: hierarchy rejected: %v", name, err)
		}
	}
	if _, err := ServerConfig("vax"); err == nil {
		t.Error("unknown server accepted")
	}
}
