package segq

import (
	"sync"
	"sync/atomic"
	"testing"

	"ffq/internal/core"
)

// The stress tests run the producer flat out against slower consumers,
// forcing the queue to grow and then recycle segments continuously.
// With segment size 16 and 16*200 items per run, every run turns over
// at least 200 segments — well past the 100-turnover floor the
// subsystem promises to survive. Run under -race in CI (see
// .github/workflows/ci.yml), these double as the memory-model audit of
// the retire/reuse protocol.

const (
	stressSeg   = 16
	stressTurns = 200
	stressItems = stressSeg * stressTurns
)

// TestStressSPMCOutrun: one producer enqueues every item before
// consumers are even released, guaranteeing the producer outruns
// consumption by the whole queue length; then concurrent consumers
// drain. Checks exactly-once delivery, global FIFO order per consumer,
// and that >= 100 segments were actually retired.
func TestStressSPMCOutrun(t *testing.T) {
	q, err := NewSPMC[int64](small(stressSeg))
	if err != nil {
		t.Fatal(err)
	}
	const consumers = 4
	got := make([]atomic.Int32, stressItems)
	var gate, wg sync.WaitGroup
	gate.Add(1)
	var tickets atomic.Int64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gate.Wait()
			last := int64(-1)
			for tickets.Add(1) <= stressItems {
				v, ok := q.Dequeue()
				if !ok {
					t.Error("claimed rank reported dead")
					return
				}
				// A consumer's claimed ranks ascend, and SPMC values
				// equal their rank, so each consumer's view is ordered.
				if v <= last {
					t.Errorf("order violated: %d after %d", v, last)
					return
				}
				last = v
				got[v].Add(1)
			}
		}()
	}
	for i := int64(0); i < stressItems; i++ {
		q.Enqueue(i)
	}
	gate.Done() // producer finished: consumers start against a full queue
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("item %d delivered %d times", i, n)
		}
	}
	if s := q.Stats(); s.SegsRetired < 100 {
		t.Fatalf("SegsRetired = %d, want >= 100 turnovers", s.SegsRetired)
	}
}

// TestStressSPMCInterleaved runs producer and consumers concurrently
// (the producer still outruns: enqueue is wait-free, dequeue spins),
// so retirement interleaves with linking and pool reuse constantly.
func TestStressSPMCInterleaved(t *testing.T) {
	q, err := NewSPMC[int64](small(stressSeg))
	if err != nil {
		t.Fatal(err)
	}
	const consumers = 3
	got := make([]atomic.Int32, stressItems)
	var wg sync.WaitGroup
	var tickets atomic.Int64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(-1)
			for tickets.Add(1) <= stressItems {
				v, ok := q.Dequeue()
				if !ok {
					t.Error("claimed rank reported dead")
					return
				}
				if v <= last {
					t.Errorf("order violated: %d after %d", v, last)
					return
				}
				last = v
				got[v].Add(1)
			}
		}()
	}
	for i := int64(0); i < stressItems; i++ {
		q.Enqueue(i)
	}
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("item %d delivered %d times", i, n)
		}
	}
	stats := q.Stats()
	if stats.SegsRetired < 100 {
		t.Fatalf("SegsRetired = %d, want >= 100", stats.SegsRetired)
	}
	if stats.SegsLive != stats.SegsAllocated+stats.SegsRecycled-stats.SegsRetired {
		t.Fatalf("accounting broken: %+v", stats)
	}
}

// TestStressMPMC: several producers and consumers; checks exactly-once
// delivery and per-producer order (values encode producer and
// sequence).
func TestStressMPMC(t *testing.T) {
	q, err := NewMPMC[int64](small(stressSeg))
	if err != nil {
		t.Fatal(err)
	}
	const producers, consumers = 4, 4
	const perProducer = stressItems / producers
	got := make([]atomic.Int32, stressItems)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := int64(p * perProducer)
			for i := int64(0); i < perProducer; i++ {
				q.Enqueue(base + i)
			}
		}(p)
	}
	var tickets atomic.Int64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSeen := [producers]int64{}
			for i := range lastSeen {
				lastSeen[i] = -1
			}
			for tickets.Add(1) <= stressItems {
				v, ok := q.Dequeue()
				if !ok {
					t.Error("claimed rank reported dead")
					return
				}
				p := v / perProducer
				seq := v % perProducer
				if p < 0 || p >= producers {
					t.Errorf("bogus value %d", v)
					return
				}
				if seq <= lastSeen[p] {
					t.Errorf("producer %d order violated: %d after %d", p, seq, lastSeen[p])
					return
				}
				lastSeen[p] = seq
				got[v].Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("item %d delivered %d times", i, n)
		}
	}
	if s := q.Stats(); s.SegsRetired < 100 {
		t.Fatalf("SegsRetired = %d, want >= 100", s.SegsRetired)
	}
}

// TestStressSPMCBatches: batch enqueue against batch dequeue. Each
// dequeued batch must be a contiguous ascending run (its ranks were
// claimed with one fetch-and-add), and delivery stays exactly-once.
func TestStressSPMCBatches(t *testing.T) {
	const batch = 8
	q, err := NewSPMC[int64](small(stressSeg))
	if err != nil {
		t.Fatal(err)
	}
	const consumers = 3
	got := make([]atomic.Int32, stressItems)
	var wg sync.WaitGroup
	var tickets atomic.Int64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]int64, batch)
			for tickets.Add(batch) <= stressItems {
				n, ok := q.DequeueBatch(dst)
				if !ok || n != batch {
					t.Errorf("DequeueBatch = %d,%v", n, ok)
					return
				}
				for i := 1; i < n; i++ {
					if dst[i] != dst[i-1]+1 {
						t.Errorf("batch not contiguous: %v", dst[:n])
						return
					}
				}
				for i := 0; i < n; i++ {
					got[dst[i]].Add(1)
				}
			}
		}()
	}
	vs := make([]int64, batch)
	for i := int64(0); i < stressItems; i += batch {
		for j := range vs {
			vs[j] = i + int64(j)
		}
		q.EnqueueBatch(vs)
	}
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("item %d delivered %d times", i, n)
		}
	}
}

// TestStressMPMCBatchEnqueue: concurrent batch producers against
// single-item consumers. A producer's batches are claimed with one
// fetch-and-add each, so its items must surface in order even under
// producer contention.
func TestStressMPMCBatchEnqueue(t *testing.T) {
	const producers, consumers, batch = 3, 3, 7
	const perProducer = ((stressItems / producers) / batch) * batch
	const total = producers * perProducer
	q, err := NewMPMC[int64](small(stressSeg))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := int64(p * perProducer)
			vs := make([]int64, batch)
			for i := int64(0); i < perProducer; i += batch {
				for j := range vs {
					vs[j] = base + i + int64(j)
				}
				q.EnqueueBatch(vs)
			}
		}(p)
	}
	var tickets atomic.Int64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSeen := [producers]int64{}
			for i := range lastSeen {
				lastSeen[i] = -1
			}
			for tickets.Add(1) <= total {
				v, ok := q.Dequeue()
				if !ok {
					t.Error("claimed rank reported dead")
					return
				}
				p := v / perProducer
				seq := v % perProducer
				if seq <= lastSeen[p] {
					t.Errorf("producer %d order violated: %d after %d", p, seq, lastSeen[p])
					return
				}
				lastSeen[p] = seq
				got[v].Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("item %d delivered %d times", i, n)
		}
	}
}

// TestStressTinySegments shrinks segments to 2 cells so segment
// hand-off dominates every other cost, hammering link/retire/reuse.
func TestStressTinySegments(t *testing.T) {
	q, err := NewSPMC[int64](core.ResolveOptions(core.WithSegmentSize(2)))
	if err != nil {
		t.Fatal(err)
	}
	const items = 2 * 500
	got := make([]atomic.Int32, items)
	var wg sync.WaitGroup
	var tickets atomic.Int64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tickets.Add(1) <= items {
				v, ok := q.Dequeue()
				if !ok {
					t.Error("claimed rank reported dead")
					return
				}
				got[v].Add(1)
			}
		}()
	}
	for i := int64(0); i < items; i++ {
		q.Enqueue(i)
	}
	wg.Wait()
	for i := range got {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("item %d delivered %d times", i, n)
		}
	}
	if s := q.Stats(); s.SegsRetired < 100 {
		t.Fatalf("SegsRetired = %d", s.SegsRetired)
	}
}
