package segq

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"ffq/internal/core"
)

// poison is a value the producers in these tests never enqueue. The
// recycle hook stamps it into every cell of a segment at retirement,
// so if a consumer ever reads a cell of a recycled segment — a
// violation of the reclamation invariant — it surfaces as a poisoned
// dequeue instead of a silent wrong value.
const poison = int64(math.MinInt64)

// poisonOnRecycle installs a retirement hook on q that stamps poison
// into every cell's payload. The hook runs after all cells were
// consumed (invariant condition a) and before the segment can be
// reused, so the only way poison is ever dequeued is a reclamation
// bug.
func poisonOnRecycle(q *SPMC[int64]) *atomic.Int64 {
	var retired atomic.Int64
	q.recycleHook = func(s *segment[int64]) {
		retired.Add(1)
		for i := range s.cells {
			s.cells[i].data = poison
		}
	}
	return &retired
}

// runPoisoned drives one SPMC instance with the poison hook: one
// producer enqueuing ranks as values, `consumers` concurrent
// consumers. It reports the number of retirements observed by the
// hook. Every dequeued value is checked against its claimed rank —
// for SPMC the value at rank r is exactly r, so this catches not only
// poison but any cross-segment misdelivery.
func runPoisoned(t *testing.T, segSize, consumers int, items int64) int64 {
	t.Helper()
	q, err := NewSPMC[int64](core.ResolveOptions(core.WithSegmentSize(segSize)))
	if err != nil {
		t.Fatal(err)
	}
	retired := poisonOnRecycle(q)
	var wg sync.WaitGroup
	var tickets atomic.Int64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk := tickets.Add(1)
				if tk > items {
					return
				}
				v, ok := q.Dequeue()
				if !ok {
					t.Error("claimed rank reported dead")
					return
				}
				if v == poison {
					t.Errorf("dequeued poison: a recycled segment was read")
					return
				}
				if v < 0 || v >= items {
					t.Errorf("dequeued out-of-range value %d", v)
					return
				}
			}
		}()
	}
	for i := int64(0); i < items; i++ {
		q.Enqueue(i)
	}
	wg.Wait()
	return retired.Load()
}

// TestPoisonNeverObserved is the deterministic heavy version: enough
// items for hundreds of recycles at several consumer counts.
func TestPoisonNeverObserved(t *testing.T) {
	for _, consumers := range []int{1, 2, 4} {
		retired := runPoisoned(t, 8, consumers, 8*150)
		if retired < 100 {
			t.Fatalf("consumers=%d: only %d retirements; test is not exercising recycling", consumers, retired)
		}
	}
}

// FuzzRecycleNeverObserved explores the parameter space: segment
// size, consumer count and item count are fuzzed, and the invariant
// "no dequeue ever observes a recycled cell" must hold everywhere.
func FuzzRecycleNeverObserved(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint16(64))
	f.Add(uint8(3), uint8(2), uint16(300))
	f.Add(uint8(4), uint8(4), uint16(1000))
	f.Add(uint8(1), uint8(3), uint16(777))
	f.Fuzz(func(t *testing.T, segExp, consumers uint8, n uint16) {
		segSize := 1 << (1 + segExp%5) // 2..32
		c := 1 + int(consumers%4)      // 1..4
		items := int64(n%4096) + int64(segSize)*3
		retired := runPoisoned(t, segSize, c, items)
		if retired == 0 {
			t.Fatalf("segSize=%d items=%d: no retirement at all", segSize, items)
		}
	})
}
