// Package segq implements unbounded FIFO queues as linked lists of
// fixed-size FFQ ring segments, in the lineage of Jiffy (Adas &
// Friedman, 2020) and Nikolaev's SCQ-based unbounded queues
// (arXiv:1908.04511): the bounded ring supplies the fast path, the
// segment list removes the capacity limit, and a recycling pool keeps
// allocation off the steady-state path.
//
// # Design
//
// Ranks are global: every enqueue takes the next rank in an int64
// sequence that never wraps, and rank r lives in cell r mod S of the
// segment whose base rank is r - r mod S (S = the segment size, a
// power of two). Because segments never wrap — the producer links a
// fresh segment instead of reusing cells — the bounded FFQ's gap
// machinery disappears entirely: a cell is written exactly once per
// segment incarnation, so enqueue never skips ranks and dequeue never
// chases gap announcements. What remains of FFQ is its cell
// handshake: the producer stores data and then the cell's rank; a
// consumer holding rank r spins until the cell's rank equals r. Rank
// values are unique over the queue's lifetime, which makes the
// handshake immune to segment reuse (a stale cell can never carry the
// rank a consumer is waiting for).
//
// # Reclamation invariant
//
// A segment is retired only when (a) all S of its cells have been
// consumed, and (b) it is the head of the segment list. Claim (a)
// guarantees no consumer will read a cell of the retired incarnation
// again; (b) serializes retirement in list order so the list between
// headSeg and the tail is always intact. Advancement of headSeg is
// performed under a try-token (acquire-release-recheck), so exactly
// one goroutine retires any segment incarnation and the ABA hazards
// of CAS-based head swinging cannot arise. A walker's target segment
// can never be retired out from under it, because the walker's own
// unconsumed rank keeps condition (a) false for that segment.
//
// What retirement does with the segment differs per variant, because
// reuse is only safe when no stale goroutine can mutate a
// reincarnated segment:
//
//   - SPMC recycles: base is poisoned, next severed, and the segment
//     returns to the pool. The only goroutine that ever writes a next
//     pointer is the single producer, acting on its own live tail —
//     never on a segment found by walking — so a reincarnated segment
//     cannot receive a stale link. Consumers are pure readers; one
//     holding a stale pointer sees the poisoned (or reincarnated)
//     base and restarts from headSeg.
//   - MPMC leaves retired segments to the garbage collector, keeping
//     base and next intact: the chain is write-once (next goes
//     nil -> successor exactly once, ever), so a producer's
//     CAS(nil, s) on next can only succeed on the true live tail, and
//     stale walkers just traverse the dead prefix forward. The pool
//     still serves MPMC, but is fed only by link-race losers —
//     segments no other goroutine ever saw.
//
// # Variants
//
// SPMC keeps FFQ's wait-free single-producer enqueue: the producer
// owns the tail segment outright and needs no atomic read-modify-
// write — linking a fresh segment is one pointer store, and the pool
// get is a bounded scan of swap-only slots. MPMC pays one
// fetch-and-add per enqueue for rank acquisition plus a CAS only on
// the segment-linking slow path (once per S items).
//
// Batch operations (EnqueueBatch/DequeueBatch) reserve a contiguous
// run of ranks in one step — one fetch-and-add on the consumer side
// regardless of batch size — and amortize the tail publication and
// instrumentation across the run.
package segq

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"

	"ffq/internal/core"
	"ffq/internal/obs"
)

// freeRank marks a cell that has not been published in the current
// segment incarnation (mirrors core's freeRank). Cells are only
// created in this state; consumption does not reset it — rank
// uniqueness makes stale values harmless.
const freeRank = -1

// pooledBase poisons the base of a retired segment so that walkers
// holding a stale pointer recognize it and restart from the head.
const pooledBase = -1

// cell is one slot of a segment: the published rank and the payload.
// Unlike the bounded rings there is no gap field — segments never
// wrap, so ranks are never skipped.
type cell[T any] struct {
	rank atomic.Int64
	data T
}

// segment is one fixed-size FFQ ring in the linked list.
//
//ffq:padded
type segment[T any] struct {
	// base is the first rank this segment covers (segment-size
	// aligned), or pooledBase after retirement. Written on (re)use
	// before the segment is linked; read by walkers for validation.
	base atomic.Int64
	// next links to the successor segment; nil at the tail and after
	// retirement. base and next are write-once per incarnation and
	// read-mostly, so sharing a line with base is deliberate.
	//ffq:ignore padding base and next are write-once per incarnation and read-mostly
	next atomic.Pointer[segment[T]]
	_    [core.CacheLineSize - 16]byte
	// consumed counts cells of this incarnation that consumers have
	// taken; == segment size means drained (reclamation condition a).
	// Every dequeue increments it, so it gets a line of its own.
	consumed atomic.Int64
	_        [core.CacheLineSize - 8]byte
	cells    []cell[T]
	_        [core.CacheLineSize - 24]byte
}

// poolSlots bounds the recycling pool. Retired segments beyond the
// bound are dropped to the garbage collector, so a burst that grew
// the queue does not pin its high-water memory forever.
const poolSlots = 8

// pool is a fixed array of swap-only slots holding retired segments.
// put claims an empty slot with a CAS from nil; get empties slots
// with unconditional Swap. Neither operation can suffer ABA — a slot
// transfers ownership of its whole pointer atomically — so the pool
// is lock-free (in fact wait-free: both are bounded scans).
type pool[T any] struct {
	slots [poolSlots]atomic.Pointer[segment[T]]
}

// put offers s to the pool; false means the pool was full and the
// caller should drop the segment.
func (p *pool[T]) put(s *segment[T]) bool {
	for i := range p.slots {
		if p.slots[i].CompareAndSwap(nil, s) {
			return true
		}
	}
	return false
}

// get removes and returns a pooled segment, or nil.
func (p *pool[T]) get() *segment[T] {
	for i := range p.slots {
		if s := p.slots[i].Swap(nil); s != nil {
			return s
		}
	}
	return nil
}

// segCounters groups the advancing token with the always-on segment
// accounting (live = alloc + recycled - retired). All of these fields
// are touched only on the once-per-segment allocation and retirement
// paths, so they deliberately share cache lines; nesting them in one
// struct records that grouping for the padding checker, which treats
// a nested struct as a single cold field.
type segCounters struct {
	advancing    atomic.Bool
	segsAlloc    atomic.Int64
	segsRecycled atomic.Int64
	segsRetired  atomic.Int64
	segsLive     atomic.Int64
}

// uq holds the state and consumer-side machinery shared by the SPMC
// and MPMC variants. The producer side differs (single owner vs
// fetch-and-add) and lives in the variant types.
//
//ffq:padded
type uq[T any] struct {
	ix      core.Indexer
	segSize int64
	logSeg  uint
	yieldTh int
	// rec is nil unless instrumentation was requested; every recording
	// site checks it first (same contract as the bounded core).
	rec  *obs.Recorder
	pool pool[T]
	// recycleHook, when non-nil, observes every segment at retirement
	// (before pooling). Test-only: the recycling fuzz test uses it to
	// poison drained cells.
	recycleHook func(s *segment[T])
	// pooling enables reuse of retired segments. Only the SPMC variant
	// sets it: there the sole next-writer is the single producer acting
	// on its own live tail, so a reincarnated segment can never receive
	// a stale link. MPMC producers CAS next on segments found by
	// walking, and a stale walker must never find a reincarnated
	// segment reusable — so MPMC leaves retired segments to the GC
	// (keeping its chain write-once) and recycles only segments that
	// were never visible to other goroutines.
	pooling bool

	_ [core.CacheLineSize]byte
	// head is the consumer rank counter: fetch-and-incremented once
	// per dequeue (or once per batch).
	head atomic.Int64
	_    [core.CacheLineSize]byte
	// tail is the number of enqueued (SPMC: published; MPMC: claimed)
	// ranks. SPMC's producer shadows it locally and only stores.
	tail atomic.Int64
	_    [core.CacheLineSize]byte
	// headSeg points at the earliest live segment, read on every
	// consumer walk. Written only by the holder of the advancing token.
	headSeg atomic.Pointer[segment[T]]
	_       [core.CacheLineSize - 8]byte
	// closed is read on every empty-queue poll.
	closed atomic.Bool
	_      [core.CacheLineSize - 4]byte
	// seg is the cold once-per-segment state (advancing token plus the
	// recycling analogue of the bounded queues' always-on gap counter).
	seg segCounters
	_   [core.CacheLineSize - 8]byte
}

// initUQ validates the configuration and links the first segment.
func (u *uq[T]) initUQ(cfg core.Resolved) error {
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = core.DefaultSegmentSize
	}
	if cfg.YieldThreshold == 0 {
		cfg.YieldThreshold = core.DefaultYieldThreshold()
	}
	ix, err := core.NewIndexer(cfg.SegmentSize, cfg.Layout, cellSize[T]())
	if err != nil {
		return err
	}
	u.ix = ix
	u.segSize = int64(cfg.SegmentSize)
	u.logSeg = uint(bits.TrailingZeros64(uint64(cfg.SegmentSize)))
	u.yieldTh = cfg.YieldThreshold
	u.rec = cfg.Recorder
	first := u.newSegment(0)
	u.headSeg.Store(first)
	return nil
}

// cellSize reports the in-memory size of one cell for layout padding.
func cellSize[T any]() uintptr {
	var c cell[T]
	return unsafe.Sizeof(c)
}

// newSegment allocates a fresh segment with the given base rank.
func (u *uq[T]) newSegment(base int64) *segment[T] {
	s := &segment[T]{cells: make([]cell[T], u.ix.Slots())}
	for i := range s.cells {
		s.cells[i].rank.Store(freeRank)
	}
	s.base.Store(base)
	u.seg.segsAlloc.Add(1)
	u.seg.segsLive.Add(1)
	return s
}

// takeSegment returns a ready-to-link segment with the given base,
// reusing a pooled one when available. Pool reuse skips the cell
// reset: rank values are globally unique, so stale ranks from the
// previous incarnation can never match a live consumer's rank.
// Segments reach the pool with next already nil (SPMC retire severs
// it; MPMC pools only never-linked CAS losers), so next is not
// touched here.
func (u *uq[T]) takeSegment(base int64) *segment[T] {
	if s := u.pool.get(); s != nil {
		s.consumed.Store(0)
		s.base.Store(base)
		u.seg.segsRecycled.Add(1)
		u.seg.segsLive.Add(1)
		return s
	}
	return u.newSegment(base)
}

// retire processes a drained segment that headSeg has just moved
// past. Called only by the advancing-token holder, once per
// incarnation.
//
// With pooling (SPMC): base is poisoned and next severed, then the
// segment is offered to the pool for reuse. Stale readers that still
// hold a pointer to it see the poisoned (or a later, reincarnated)
// base and restart from headSeg.
//
// Without pooling (MPMC): base and next are left untouched and the
// segment is dropped to the garbage collector. This keeps the MPMC
// chain write-once — next transitions nil -> successor exactly once
// per segment, ever — which is what makes the producers' link CAS
// sound: CAS(nil, s) on next can only succeed on the true live tail,
// because no retired segment's next is ever reset to nil. Stale
// walkers simply traverse the dead prefix forward until they reach
// live segments.
func (u *uq[T]) retire(s *segment[T]) {
	if u.recycleHook != nil {
		u.recycleHook(s)
	}
	u.seg.segsRetired.Add(1)
	u.seg.segsLive.Add(-1)
	if !u.pooling {
		return
	}
	s.base.Store(pooledBase)
	s.next.Store(nil)
	u.pool.put(s) // full pool: drop to the GC
}

// maybeAdvance moves headSeg past fully drained segments and retires
// them. The advancing token guarantees a single writer; the
// release-then-recheck loop guarantees a drain that lands while the
// token is held is never lost (either the holder's inner loop sees
// it, or the holder's recheck re-acquires, or the drainer's own CAS
// succeeds after the release).
func (u *uq[T]) maybeAdvance() {
	//ffq:ignore spin-backoff token try-loop: every iteration either advances headSeg, hands off to the token holder, or returns
	for {
		h := u.headSeg.Load()
		if h.consumed.Load() != u.segSize || h.next.Load() == nil {
			return
		}
		if !u.seg.advancing.CompareAndSwap(false, true) {
			return // the holder's recheck will pick this up
		}
		//ffq:ignore spin-backoff bounded by the number of drained segments; each iteration retires one
		for {
			h := u.headSeg.Load()
			if h.consumed.Load() != u.segSize {
				break
			}
			next := h.next.Load()
			if next == nil {
				break // the tail segment stays linked even when drained
			}
			u.headSeg.Store(next)
			u.retire(h)
		}
		u.seg.advancing.Store(false)
	}
}

// segFor returns the live segment covering rank r, spinning while the
// producer has not created it yet. It returns nil only when the queue
// is closed and r lies at or beyond the final tail (a dead rank).
//
// The walk starts at headSeg and validates every step against the
// expected base sequence; any sign of concurrent retirement (poisoned
// base, reincarnated base, severed next) abandons the walk and
// / restarts. Termination: the caller's own unconsumed rank keeps the
// target segment alive, and headSeg can never advance past it.
//
//ffq:hotpath
func (u *uq[T]) segFor(r int64) *segment[T] {
	want := r >> u.logSeg
	spins := 0
	waited := false
	stalled := false
	var waitStart time.Time
	for {
		seg := u.headSeg.Load()
		base := seg.base.Load()
		//ffq:ignore spin-backoff bounded walk: each iteration advances one segment toward the target or breaks out to the backoff loop
		for base >= 0 && base>>u.logSeg < want {
			next := seg.next.Load()
			if next == nil {
				break // tail reached: segment `want` does not exist yet
			}
			nbase := next.base.Load()
			if nbase != base+u.segSize {
				break // chain mutated under us; restart from headSeg
			}
			seg, base = next, nbase
		}
		if base >= 0 && base>>u.logSeg == want {
			if waited && u.rec != nil {
				u.rec.EndWait(obs.RoleConsumer, r, time.Since(waitStart), stalled)
			}
			return seg
		}
		if u.dead(r) {
			return nil
		}
		spins++
		if u.rec != nil {
			if !waited {
				waited = true
				waitStart = time.Now()
			}
			u.rec.EmptySpin()
			stalled = u.rec.StallCheck(obs.RoleConsumer, r, waitStart, spins, stalled)
			if core.Backoff(spins, u.yieldTh) {
				u.rec.ConsumerYield()
			}
		} else {
			core.Backoff(spins, u.yieldTh)
		}
	}
}

// dead reports whether rank r can never be published: the queue is
// closed and r lies at or beyond the final tail.
//
//ffq:hotpath
func (u *uq[T]) dead(r int64) bool {
	return u.closed.Load() && r >= u.tail.Load()
}

// consume delivers rank r: locate its segment, spin on the FFQ cell
// handshake, take the value, and mark the cell consumed (possibly
// triggering retirement). ok=false means r is a dead rank.
//
//ffq:hotpath
func (u *uq[T]) consume(r int64) (v T, ok bool) {
	seg := u.segFor(r)
	if seg == nil {
		var zero T
		return zero, false
	}
	c := &seg.cells[u.ix.Phys(r)]
	spins := 0
	waited := false
	stalled := false
	var waitStart time.Time
	for c.rank.Load() != r {
		if u.dead(r) {
			var zero T
			return zero, false
		}
		spins++
		if u.rec != nil {
			if !waited {
				waited = true
				waitStart = time.Now()
			}
			u.rec.EmptySpin()
			stalled = u.rec.StallCheck(obs.RoleConsumer, r, waitStart, spins, stalled)
			if core.Backoff(spins, u.yieldTh) {
				u.rec.ConsumerYield()
			}
		} else {
			core.Backoff(spins, u.yieldTh)
		}
	}
	v = c.data
	var zero T
	c.data = zero
	if seg.consumed.Add(1) == u.segSize {
		u.maybeAdvance()
	}
	if u.rec != nil {
		u.rec.Dequeue()
		if waited {
			u.rec.EndWait(obs.RoleConsumer, r, time.Since(waitStart), stalled)
		}
	}
	return v, true
}

// Dequeue removes and returns the item at the head of the queue,
// blocking (spinning, then yielding) while the queue is empty. It
// returns ok=false only after Close once every item has been
// delivered. Safe for any number of concurrent consumers.
//
//ffq:hotpath
func (u *uq[T]) Dequeue() (v T, ok bool) {
	var opStart time.Time
	if u.rec != nil {
		opStart = u.rec.OpStart()
	}
	v, ok = u.consume(u.head.Add(1) - 1)
	if ok && u.rec != nil {
		u.rec.DequeueDone(opStart)
	}
	return v, ok
}

// trySegFor is the non-blocking sibling of segFor: it returns the
// live segment covering rank r, or nil the moment the walk cannot
// complete (segment not created yet, or the chain mutated under us).
// Unlike segFor the caller holds no claim on r, so a nil return is
// simply "not ready" and carries no liveness obligation.
//
//ffq:hotpath
func (u *uq[T]) trySegFor(r int64) *segment[T] {
	want := r >> u.logSeg
	seg := u.headSeg.Load()
	base := seg.base.Load()
	//ffq:ignore spin-backoff bounded walk: each iteration advances one segment toward the target or returns
	for base >= 0 && base>>u.logSeg < want {
		next := seg.next.Load()
		if next == nil {
			return nil // tail reached: segment `want` does not exist yet
		}
		nbase := next.base.Load()
		if nbase != base+u.segSize {
			return nil // chain mutated under us; report not-ready
		}
		seg, base = next, nbase
	}
	if base >= 0 && base>>u.logSeg == want {
		return seg
	}
	return nil
}

// TryDequeue removes the head item if one is ready, without blocking
// and without claiming a rank: the head counter is advanced with a
// compare-and-swap only once the head cell is known to be published,
// so a false return leaves no claim behind (unlike Dequeue, whose
// fetch-and-add commits it to waiting). ok=false means no item was
// ready: the queue may be empty, mid-publish, or closed and drained.
// Safe for any number of concurrent consumers, mixed freely with
// Dequeue/DequeueBatch.
//
//ffq:hotpath
func (u *uq[T]) TryDequeue() (v T, ok bool) {
	//ffq:ignore spin-backoff every iteration either returns or retries after another consumer advanced head, which is global progress
	for {
		h := u.head.Load()
		if h >= u.tail.Load() {
			var zero T
			return zero, false
		}
		seg := u.trySegFor(h)
		if seg == nil {
			var zero T
			return zero, false
		}
		c := &seg.cells[u.ix.Phys(h)]
		if c.rank.Load() != h {
			var zero T
			return zero, false
		}
		if !u.head.CompareAndSwap(h, h+1) {
			continue // another consumer claimed rank h first
		}
		// Winning the CAS makes rank h exclusively ours: head is
		// monotonic, so consuming h first would require head > h, which
		// the successful CAS rules out. The rank match above is still
		// valid — ranks are globally unique and a segment cannot be
		// retired (condition a) while h is unconsumed — so the cell is
		// ours to take, exactly as consume does after its handshake.
		v = c.data
		var zero T
		c.data = zero
		if seg.consumed.Add(1) == u.segSize {
			u.maybeAdvance()
		}
		if u.rec != nil {
			u.rec.Dequeue()
		}
		return v, true
	}
}

// DequeueBatch removes up to len(dst) items in one rank reservation:
// a single fetch-and-add claims the whole contiguous run, amortizing
// the only consumer-side atomic read-modify-write across the batch.
// It blocks until the full run has been delivered, except after
// Close, where it returns the n < len(dst) items that existed; n <
// len(dst) therefore implies the queue is closed and drained. Safe
// for any number of concurrent consumers, but note that a batch
// claims its ranks immediately: a batch that blocks waiting for a
// slow producer delays later-ranked consumers behind it.
//
//ffq:hotpath
func (u *uq[T]) DequeueBatch(dst []T) (n int, ok bool) {
	k := int64(len(dst))
	if k == 0 {
		return 0, true
	}
	start := u.head.Add(k) - k
	for i := int64(0); i < k; i++ {
		v, ok := u.consume(start + i)
		if !ok {
			return int(i), false
		}
		dst[i] = v
	}
	if u.rec != nil {
		u.rec.ObserveBatch(int(k))
	}
	return int(k), true
}

// Len returns an instantaneous approximation of the number of queued
// items (enqueued or claimed minus dequeue-claimed).
func (u *uq[T]) Len() int {
	n := u.tail.Load() - u.head.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// SegmentSize returns the per-segment ring capacity.
func (u *uq[T]) SegmentSize() int { return int(u.segSize) }

// Segments returns the instantaneous number of linked segments.
func (u *uq[T]) Segments() int { return int(u.seg.segsLive.Load()) }

// Close marks the queue closed. Consumers drain the remaining items
// and then receive ok=false. Close must only be called after every
// producer's final Enqueue has returned.
func (u *uq[T]) Close() { u.closed.Store(true) }

// Closed reports whether Close has been called.
func (u *uq[T]) Closed() bool { return u.closed.Load() }

// Recorder returns the attached metrics recorder, or nil.
func (u *uq[T]) Recorder() *obs.Recorder { return u.rec }

// Stats snapshots the queue's instrumentation counters plus the
// always-on segment accounting (populated with or without a
// recorder, like the bounded queues' gap counter).
func (u *uq[T]) Stats() obs.Stats {
	s := u.rec.Snapshot()
	s.SegsAllocated = u.seg.segsAlloc.Load()
	s.SegsRecycled = u.seg.segsRecycled.Load()
	s.SegsRetired = u.seg.segsRetired.Load()
	s.SegsLive = u.seg.segsLive.Load()
	return s
}

// SegStats snapshots only the always-on segment accounting, with every
// other counter zero. Harnesses that share one Recorder across several
// queues aggregate with this to avoid double-counting the recorder's
// op counters.
func (u *uq[T]) SegStats() obs.Stats {
	return obs.Stats{
		SegsAllocated: u.seg.segsAlloc.Load(),
		SegsRecycled:  u.seg.segsRecycled.Load(),
		SegsRetired:   u.seg.segsRetired.Load(),
		SegsLive:      u.seg.segsLive.Load(),
	}
}
