package segq

import (
	"time"

	"ffq/internal/core"
)

// SPMC is the unbounded single-producer/multi-consumer queue: FFQ^s
// semantics without the capacity limit. Enqueue is wait-free
// unconditionally — where the bounded queue degrades to
// spinning-with-skips when consumers fall behind, this queue links a
// fresh (or recycled) segment and keeps going, trading memory for the
// paper's implicit-flow-control assumption.
//
// Exactly one goroutine may call Enqueue, EnqueueBatch and Close; any
// number of goroutines may call Dequeue and DequeueBatch.
//
//ffq:padded
type SPMC[T any] struct {
	uq[T]
	// Producer-local state: no other goroutine touches these, so the
	// enqueue fast path reads no shared mutable word at all.
	ptail   int64 // next rank to publish (shadow of uq.tail)
	tailSeg *segment[T]
	_       [core.CacheLineSize - 16]byte
}

// NewSPMC returns an unbounded SPMC queue configured by the resolved
// option set (zero-value fields fall back to defaults).
func NewSPMC[T any](cfg core.Resolved) (*SPMC[T], error) {
	q := &SPMC[T]{}
	if err := q.initUQ(cfg); err != nil {
		return nil, err
	}
	q.pooling = true // safe here: see the package comment on reclamation
	q.tailSeg = q.headSeg.Load()
	return q, nil
}

// grow links a segment for the next rank and makes it the producer's
// tail. One pointer store publishes it — no atomic read-modify-write,
// preserving the wait-free enqueue.
func (q *SPMC[T]) grow() *segment[T] {
	s := q.takeSegment(q.ptail)
	q.tailSeg.next.Store(s)
	q.tailSeg = s
	return s
}

// Enqueue inserts v at the tail. Wait-free: when the tail segment is
// full the producer links a new one instead of waiting for consumers.
// Producer goroutine only.
//
//ffq:hotpath
func (q *SPMC[T]) Enqueue(v T) {
	var opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	seg := q.tailSeg
	if q.ptail&(q.segSize-1) == 0 && q.ptail != seg.base.Load() {
		seg = q.grow()
	}
	c := &seg.cells[q.ix.Phys(q.ptail)]
	c.data = v
	c.rank.Store(q.ptail)
	q.ptail++
	q.tail.Store(q.ptail)
	if q.rec != nil {
		q.rec.Enqueue()
		q.rec.EnqueueDone(opStart)
	}
}

// EnqueueBatch inserts vs in order. The per-segment runs are published
// cell by cell (each rank store is a linearization point, so consumers
// can start draining the head of the batch immediately), but the tail
// publication and instrumentation are amortized across the whole
// batch. Producer goroutine only.
//
//ffq:hotpath
func (q *SPMC[T]) EnqueueBatch(vs []T) {
	if len(vs) == 0 {
		return
	}
	total := len(vs)
	//ffq:ignore spin-backoff every iteration publishes at least one cell and shrinks vs
	for len(vs) > 0 {
		seg := q.tailSeg
		off := q.ptail & (q.segSize - 1)
		if off == 0 && q.ptail != seg.base.Load() {
			seg = q.grow()
		}
		n := int64(len(vs))
		if room := q.segSize - off; room < n {
			n = room
		}
		for i := int64(0); i < n; i++ {
			c := &seg.cells[q.ix.Phys(q.ptail+i)]
			c.data = vs[i]
			c.rank.Store(q.ptail + i)
		}
		q.ptail += n
		vs = vs[n:]
	}
	q.tail.Store(q.ptail)
	if q.rec != nil {
		q.rec.EnqueueN(total)
		q.rec.ObserveBatch(total)
	}
}
