package segq

import (
	"sync"
	"testing"
	"time"

	"ffq/internal/core"
)

// small returns a resolved configuration with a tiny segment size so
// that tests cross segment boundaries constantly.
func small(seg int, extra ...core.Option) core.Resolved {
	opts := append([]core.Option{core.WithSegmentSize(seg)}, extra...)
	return core.ResolveOptions(opts...)
}

func TestSequentialSPMC(t *testing.T) {
	q, err := NewSPMC[int](small(8))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100 // 12.5 segments
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	if got := q.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue #%d = %d,%v", i, v, ok)
		}
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len after drain = %d", got)
	}
}

func TestSequentialMPMC(t *testing.T) {
	q, err := NewMPMC[int](small(8))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue #%d = %d,%v", i, v, ok)
		}
	}
}

func TestInvalidSegmentSize(t *testing.T) {
	if _, err := NewSPMC[int](small(12)); err == nil {
		t.Fatal("segment size 12 accepted")
	}
	if _, err := NewMPMC[int](small(3)); err == nil {
		t.Fatal("segment size 3 accepted")
	}
}

func TestDefaultSegmentSize(t *testing.T) {
	q, err := NewSPMC[int](core.Resolved{}) // all zero: defaults apply
	if err != nil {
		t.Fatal(err)
	}
	if got := q.SegmentSize(); got != core.DefaultSegmentSize {
		t.Fatalf("SegmentSize = %d, want %d", got, core.DefaultSegmentSize)
	}
	q.Enqueue(7)
	if v, ok := q.Dequeue(); !ok || v != 7 {
		t.Fatalf("round trip = %d,%v", v, ok)
	}
}

// TestRecyclingAccounting drives enough alternating fill/drain rounds
// to retire well over 100 segments and checks the always-on
// accounting, including that the pool actually gets reused.
func TestRecyclingAccounting(t *testing.T) {
	const seg, rounds = 8, 150
	q, err := NewSPMC[int](small(seg))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < seg; i++ {
			q.Enqueue(r*seg + i)
		}
		for i := 0; i < seg; i++ {
			v, ok := q.Dequeue()
			if !ok || v != r*seg+i {
				t.Fatalf("round %d: got %d,%v want %d", r, v, ok, r*seg+i)
			}
		}
	}
	s := q.Stats()
	if s.SegsRetired < 100 {
		t.Fatalf("SegsRetired = %d, want >= 100", s.SegsRetired)
	}
	if s.SegsRecycled == 0 {
		t.Fatal("SegsRecycled = 0: the pool is never reused")
	}
	if s.SegsLive != s.SegsAllocated+s.SegsRecycled-s.SegsRetired {
		t.Fatalf("live %d != alloc %d + recycled %d - retired %d",
			s.SegsLive, s.SegsAllocated, s.SegsRecycled, s.SegsRetired)
	}
	// Steady-state alternation keeps at most a couple of segments linked.
	if got := q.Segments(); got < 1 || got > 3 {
		t.Fatalf("Segments = %d, want 1..3", got)
	}
	// The pool must have absorbed most turnovers: far fewer allocations
	// than retirements.
	if s.SegsAllocated > int64(rounds/2) {
		t.Fatalf("SegsAllocated = %d: recycling is not reducing allocation", s.SegsAllocated)
	}
}

// TestCloseEmpty: dequeues on a closed, empty queue return ok=false
// instead of blocking, for both variants.
func TestCloseEmpty(t *testing.T) {
	s, err := NewSPMC[int](small(4))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("closed empty SPMC returned %d", v)
	}
	m, err := NewMPMC[int](small(4))
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if v, ok := m.Dequeue(); ok {
		t.Fatalf("closed empty MPMC returned %d", v)
	}
}

func TestCloseDeliversRemainder(t *testing.T) {
	q, err := NewSPMC[int](small(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		q.Enqueue(i)
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("drain #%d = %d,%v", i, v, ok)
		}
	}
	if v, ok := q.Dequeue(); ok {
		t.Fatalf("dead rank delivered %d", v)
	}
}

func TestBatchRoundTripSPMC(t *testing.T) {
	q, err := NewSPMC[int](small(8))
	if err != nil {
		t.Fatal(err)
	}
	// 20-item batches cross segment boundaries (size 8) every time.
	next := 0
	for r := 0; r < 5; r++ {
		vs := make([]int, 20)
		for i := range vs {
			vs[i] = next
			next++
		}
		q.EnqueueBatch(vs)
	}
	got := 0
	for got < next {
		dst := make([]int, 5) // divides the 100 items: no partial tail batch
		n, ok := q.DequeueBatch(dst)
		if n > 0 {
			for i := 0; i < n; i++ {
				if dst[i] != got+i {
					t.Fatalf("batch element %d = %d, want %d", i, dst[i], got+i)
				}
			}
			got += n
		}
		if !ok {
			break
		}
	}
	if got != next {
		t.Fatalf("drained %d of %d", got, next)
	}
}

func TestBatchRoundTripMPMC(t *testing.T) {
	q, err := NewMPMC[int](small(8))
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]int, 30)
	for i := range vs {
		vs[i] = i
	}
	q.EnqueueBatch(vs)
	dst := make([]int, 30)
	n, ok := q.DequeueBatch(dst)
	if !ok || n != 30 {
		t.Fatalf("DequeueBatch = %d,%v", n, ok)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d", i, v)
		}
	}
	// Empty batch operations are no-ops.
	q.EnqueueBatch(nil)
	if n, ok := q.DequeueBatch(nil); n != 0 || !ok {
		t.Fatalf("empty DequeueBatch = %d,%v", n, ok)
	}
}

// TestBatchPartialOnClose: a batch larger than the remaining items
// returns the remainder with ok=false once the queue is closed.
func TestBatchPartialOnClose(t *testing.T) {
	q, err := NewSPMC[int](small(4))
	if err != nil {
		t.Fatal(err)
	}
	q.EnqueueBatch([]int{0, 1, 2})
	q.Close()
	dst := make([]int, 8)
	n, ok := q.DequeueBatch(dst)
	if ok || n != 3 {
		t.Fatalf("DequeueBatch = %d,%v; want 3,false", n, ok)
	}
	for i := 0; i < n; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
}

// TestDequeueBlocks: a consumer that arrives early blocks until the
// producer publishes, rather than reporting empty.
func TestDequeueBlocks(t *testing.T) {
	q, err := NewSPMC[int](small(4))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		v, _ := q.Dequeue()
		done <- v
	}()
	select {
	case v := <-done:
		t.Fatalf("Dequeue returned %d from an empty queue", v)
	case <-time.After(10 * time.Millisecond):
	}
	q.Enqueue(42)
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Dequeue never observed the enqueue")
	}
}

// TestInstrumentedStats: with a recorder attached, operation counts and
// batch histograms flow into Stats alongside the always-on segment
// accounting; without one, Stats still carries the segment counters.
func TestInstrumentedStats(t *testing.T) {
	q, err := NewSPMC[int](small(4, core.WithInstrumentation()))
	if err != nil {
		t.Fatal(err)
	}
	if q.Recorder() == nil {
		t.Fatal("Recorder() = nil with instrumentation on")
	}
	q.EnqueueBatch([]int{1, 2, 3, 4, 5, 6})
	q.Enqueue(7)
	dst := make([]int, 5)
	q.DequeueBatch(dst)
	q.Dequeue()
	q.Dequeue()
	s := q.Stats()
	if s.Enqueues != 7 || s.Dequeues != 7 {
		t.Fatalf("ops: %d enq, %d deq; want 7, 7", s.Enqueues, s.Dequeues)
	}
	if s.BatchCount != 2 || s.BatchSumItems != 11 { // enqueue 6 + dequeue 5
		t.Fatalf("batches: %+v", s)
	}
	if s.SegsAllocated == 0 || s.SegsLive == 0 {
		t.Fatalf("segment accounting missing: %+v", s)
	}

	bare, err := NewSPMC[int](small(4))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Recorder() != nil {
		t.Fatal("Recorder() non-nil without instrumentation")
	}
	bare.Enqueue(1)
	s = bare.Stats()
	if s.Enqueues != 0 {
		t.Fatalf("uninstrumented queue counted ops: %+v", s)
	}
	if s.SegsAllocated == 0 {
		t.Fatal("segment accounting must work without a recorder")
	}
}

// TestConcurrentSmoke is a light version of the stress tests that runs
// fast enough for -short rounds: 2 consumers, enough items for a few
// dozen turnovers.
func TestConcurrentSmoke(t *testing.T) {
	const seg, items, consumers = 8, 8 * 40, 2
	q, err := NewMPMC[int](small(seg))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	seen := make([]bool, items)
	var mu sync.Mutex
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < items; i++ {
		q.Enqueue(i)
	}
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	wg.Wait()
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost", i)
		}
	}
}
