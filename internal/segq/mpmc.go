package segq

import (
	"sync/atomic"
	"time"

	"ffq/internal/core"
)

// MPMC is the unbounded multi-producer/multi-consumer queue. An
// enqueue claims a rank with one fetch-and-add and publishes it with
// the same cell handshake as SPMC — every rank has exactly one
// producer and one consumer, so per-cell the protocol stays
// SPSC-simple and the paper's double-width CAS is not needed at all.
// The only multi-producer coordination is linking a new segment (a
// CAS on the predecessor's next pointer, once per segment).
//
// Like the bounded FFQ^m, a producer that stalls between claiming a
// rank and publishing it blocks the consumer of that rank; both
// operations are lock-free otherwise.
//
//ffq:padded
type MPMC[T any] struct {
	uq[T]
	_ [core.CacheLineSize]byte
	// tailSeg is a hint at the newest segment so producers do not walk
	// the whole list from headSeg. It may lag or (transiently) point
	// at a retired segment; producerSeg validates and falls back.
	tailSeg atomic.Pointer[segment[T]]
	_       [core.CacheLineSize - 8]byte
}

// NewMPMC returns an unbounded MPMC queue configured by the resolved
// option set (zero-value fields fall back to defaults).
func NewMPMC[T any](cfg core.Resolved) (*MPMC[T], error) {
	q := &MPMC[T]{}
	if err := q.initUQ(cfg); err != nil {
		return nil, err
	}
	q.tailSeg.Store(q.headSeg.Load())
	return q, nil
}

// producerSeg returns the segment covering rank r, creating (and
// linking) missing segments along the way. The MPMC chain is
// write-once (retired segments keep base and next — see the package
// comment on reclamation), so the walk never needs to validate or
// restart mid-chain: from any segment at or before rank r's, stepping
// next (linking where nil) must reach rank r's segment. The walk
// starts at the tailSeg hint and falls back to headSeg when the hint
// is already past r; headSeg can never pass r's segment because the
// caller's unpublished rank keeps it from draining.
//
//ffq:hotpath
func (q *MPMC[T]) producerSeg(r int64) *segment[T] {
	want := r >> q.logSeg
	seg := q.tailSeg.Load()
	base := seg.base.Load()
	if base>>q.logSeg > want {
		seg = q.headSeg.Load()
		base = seg.base.Load()
	}
	//ffq:ignore spin-backoff bounded walk: every iteration steps (or links) one segment toward the target
	for base>>q.logSeg < want {
		next := seg.next.Load()
		if next == nil {
			next = q.link(seg, base+q.segSize)
		}
		seg, base = next, base+q.segSize
	}
	if q.tailSeg.Load() != seg {
		q.tailSeg.Store(seg) // best-effort hint refresh
	}
	return seg
}

// link appends a segment with the given base after seg, or adopts the
// one a racing producer appended first. The CAS can only succeed on
// the true live tail: no segment's next is ever reset to nil, so
// next == nil still means "never had a successor".
func (q *MPMC[T]) link(seg *segment[T], base int64) *segment[T] {
	s := q.takeSegment(base)
	if seg.next.CompareAndSwap(nil, s) {
		return s
	}
	// Lost the race. s was never visible to another goroutine, so it is
	// safe to recycle even though MPMC retirement itself never pools.
	// Counted as a retire to keep live = alloc + recycled - retired.
	s.base.Store(pooledBase)
	q.seg.segsRetired.Add(1)
	q.seg.segsLive.Add(-1)
	q.pool.put(s)
	return seg.next.Load()
}

// Enqueue inserts v at the tail: one fetch-and-add to claim a rank,
// then the FFQ cell handshake. Safe for any number of concurrent
// producers.
//
//ffq:hotpath
func (q *MPMC[T]) Enqueue(v T) {
	var opStart time.Time
	if q.rec != nil {
		opStart = q.rec.OpStart()
	}
	r := q.tail.Add(1) - 1
	seg := q.producerSeg(r)
	c := &seg.cells[q.ix.Phys(r)]
	c.data = v
	c.rank.Store(r)
	if q.rec != nil {
		q.rec.Enqueue()
		q.rec.EnqueueDone(opStart)
	}
}

// EnqueueBatch inserts vs as one contiguous run of ranks claimed with
// a single fetch-and-add — under producer contention the batch
// appears as an unbroken FIFO run, and the rank-acquisition atomic is
// amortized across the batch. Safe for concurrent producers.
//
//ffq:hotpath
func (q *MPMC[T]) EnqueueBatch(vs []T) {
	k := int64(len(vs))
	if k == 0 {
		return
	}
	start := q.tail.Add(k) - k
	i := int64(0)
	for i < k {
		r := start + i
		seg := q.producerSeg(r)
		// Publish the run that lands in this segment.
		end := (r | (q.segSize - 1)) + 1 // first rank past seg
		if last := start + k; last < end {
			end = last
		}
		for ; r < end; r, i = r+1, i+1 {
			c := &seg.cells[q.ix.Phys(r)]
			c.data = vs[i]
			c.rank.Store(r)
		}
	}
	if q.rec != nil {
		q.rec.EnqueueN(int(k))
		q.rec.ObserveBatch(int(k))
	}
}
