package spin

import "runtime"

// DefaultRetryEvery is the retry-loop yield period: a spinner hands its
// timeslice back to the scheduler once every this many failed retries.
// 128 keeps the common uncontended case yield-free while bounding the
// damage under oversubscription (the policy the CAS-loop queues and the
// ccqueue combiner converged on independently before it was hoisted
// here).
const DefaultRetryEvery = 128

// RetryYield yields the processor every DefaultRetryEvery failed
// retries of a lock-free loop. A failed iteration means some other
// operation succeeded, so the data structure as a whole progresses —
// but under oversubscription the spinning goroutine may be burning the
// timeslice of the very thread it waits on, so it periodically gives
// the processor back.
//
// Call it at the top of the loop with the current retry count; the
// first iteration (spins == 0) never yields.
func RetryYield(spins int) {
	if spins > 0 && spins%DefaultRetryEvery == 0 {
		runtime.Gosched()
	}
}

// RetryYieldEvery is RetryYield with a configurable yield period for
// loops whose iterations are not single CAS attempts (a full lane scan,
// say, already costs tens of loads, so its period should be smaller).
// every <= 0 selects DefaultRetryEvery.
func RetryYieldEvery(spins, every int) {
	if every <= 0 {
		every = DefaultRetryEvery
	}
	if spins > 0 && spins%every == 0 {
		runtime.Gosched()
	}
}
