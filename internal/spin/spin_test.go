package spin

import (
	"testing"
	"time"
)

func TestNanosecondsRoughMagnitude(t *testing.T) {
	// Busy-wait calibration on shared machines is noisy; only insist
	// the delay is neither instant nor wildly long.
	start := time.Now()
	for i := 0; i < 1000; i++ {
		Nanoseconds(1000) // 1 µs x1000 = ~1 ms
	}
	el := time.Since(start)
	if el < 100*time.Microsecond {
		t.Errorf("1ms worth of spinning finished in %v", el)
	}
	if el > 400*time.Millisecond {
		t.Errorf("1ms worth of spinning took %v", el)
	}
}

func TestNanosecondsNonPositive(t *testing.T) {
	Nanoseconds(0)
	Nanoseconds(-5) // must not hang or panic
}

func TestRecalibrate(t *testing.T) {
	before := itersPer1024ns.Load()
	Recalibrate()
	after := itersPer1024ns.Load()
	if before <= 0 || after <= 0 {
		t.Fatalf("calibration produced %d -> %d", before, after)
	}
}

func TestDelayerBounds(t *testing.T) {
	d := NewDelayer(50, 150, 1)
	// The delays themselves are busy-waits; verify the generator stays
	// in range by reading its internals through timing-free math: run
	// the xorshift separately.
	state := uint64(1)
	for i := 0; i < 10000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		ns := 50 + int64(state%101)
		if ns < 50 || ns > 150 {
			t.Fatalf("delay %d out of [50,150]", ns)
		}
	}
	d.Wait() // smoke: must return promptly
}

func TestDelayerDegenerate(t *testing.T) {
	d := NewDelayer(100, 50, 0) // max < min clamps; zero seed replaced
	d.Wait()
	d2 := NewDelayer(0, 0, 7)
	d2.Wait()
}
