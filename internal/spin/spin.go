// Package spin provides calibrated busy-wait delays. The comparative
// benchmark of the paper (Section V-G, following Yang &
// Mellor-Crummey's framework) inserts "an arbitrary delay (between 50
// and 150 ns)" between operations "to avoid scenarios where a cache
// line is held by one thread for a long time"; sleeping is far too
// coarse for that, so the delay must burn cycles.
package spin

import (
	"sync/atomic"
	"time"
)

// itersPerNano is the calibrated number of inner-loop iterations per
// nanosecond, stored as iterations per 1024 ns to keep integer math.
var itersPer1024ns atomic.Int64

func init() {
	itersPer1024ns.Store(calibrate())
}

// calibrate measures the spin loop against the wall clock.
func calibrate() int64 {
	const probe = 1 << 16
	best := int64(1 << 62)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		burn(probe)
		el := time.Since(start).Nanoseconds()
		if el < 1 {
			el = 1
		}
		if el < best {
			best = el
		}
	}
	ip := probe * 1024 / best
	if ip < 1 {
		ip = 1
	}
	return ip
}

//go:noinline
func burn(iters int64) {
	for i := int64(0); i < iters; i++ {
	}
}

// Nanoseconds busy-waits approximately d nanoseconds.
func Nanoseconds(d int64) {
	if d <= 0 {
		return
	}
	burn(d * itersPer1024ns.Load() / 1024)
}

// Recalibrate re-runs the timing calibration (useful after CPU
// frequency changes in long-running benchmark processes).
func Recalibrate() {
	itersPer1024ns.Store(calibrate())
}

// Delayer produces the paper's 50-150 ns inter-operation delays with a
// cheap per-goroutine xorshift generator (no locks, no allocation).
type Delayer struct {
	state   uint64
	min, sp int64 // minimum ns and span ns
}

// NewDelayer returns a Delayer for delays uniform in [minNS, maxNS].
// seed disambiguates goroutines.
func NewDelayer(minNS, maxNS int64, seed uint64) *Delayer {
	if maxNS < minNS {
		maxNS = minNS
	}
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Delayer{state: seed, min: minNS, sp: maxNS - minNS + 1}
}

// Wait busy-waits for the next random delay.
func (d *Delayer) Wait() {
	d.state ^= d.state << 13
	d.state ^= d.state >> 7
	d.state ^= d.state << 17
	ns := d.min + int64(d.state%uint64(d.sp))
	Nanoseconds(ns)
}
