// Package ccqueue implements the CC-Queue of Fatourou & Kallimanis
// [PPoPP'12]: the two-lock Michael & Scott queue with each lock
// replaced by CC-Synch combining. Threads announce operations in a
// swap-built list; the thread at the head becomes the combiner and
// executes a whole batch of pending operations sequentially, turning
// n contended CAS storms into one cache-friendly sweep.
//
// This is the "ccqueue" baseline of the paper's Figure 8: fastest in
// sequential runs (the combiner reuses the same nodes and takes no
// misses without contention), degrading as threads multiply.
package ccqueue

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// combineLimit bounds how many pending operations one combiner serves
// before handing the role over (H in the CC-Synch paper).
const combineLimit = 64

// ccNode is one announcement slot in a CC-Synch list. ret and
// completed are plain fields: the combiner writes them before its
// releasing wait.Store(false), and the poster reads them only after
// observing wait == false.
type ccNode struct {
	arg       uint64
	ret       uint64
	retOK     bool
	completed bool
	wait      atomic.Bool
	next      atomic.Pointer[ccNode]
	_         [24]byte // keep hot nodes off each other's lines
}

// ccSynch is one combining instance protecting one sequential
// operation (enqueue side or dequeue side).
type ccSynch struct {
	tail atomic.Pointer[ccNode]
}

func newCCSynch() *ccSynch {
	s := &ccSynch{}
	dummy := &ccNode{}
	s.tail.Store(dummy)
	return s
}

// apply posts op's argument and blocks until some combiner (possibly
// this thread) has executed it against the sequential state. myNode is
// the caller's reusable announcement node; apply returns the node the
// caller must use next time (CC-Synch recycles the predecessor node).
func (s *ccSynch) apply(myNode *ccNode, arg uint64, exec func(arg uint64) (uint64, bool)) (ret uint64, ok bool, nextNode *ccNode) {
	next := myNode
	next.next.Store(nil)
	next.wait.Store(true)
	next.completed = false

	cur := s.tail.Swap(next)
	cur.arg = arg
	cur.next.Store(next) // publishes arg to the combiner

	spins := 0
	for cur.wait.Load() {
		spins++
		ccBackoff(spins)
	}
	if cur.completed {
		return cur.ret, cur.retOK, cur
	}
	// This thread is the combiner: serve every announced request (a
	// node with a non-nil link has its arg posted), up to the limit.
	tmp := cur
	//ffq:ignore spin-backoff combiner serving loop: bounded by combineLimit and every iteration completes one request
	for served := 0; ; served++ {
		nxt := tmp.next.Load()
		if nxt == nil || served >= combineLimit {
			break
		}
		tmp.ret, tmp.retOK = exec(tmp.arg)
		tmp.completed = true
		tmp.wait.Store(false)
		tmp = nxt
	}
	// tmp is either the open tail node (its future owner starts as
	// combiner immediately) or a posted request past the combining
	// limit (its owner takes over the combiner role).
	tmp.wait.Store(false)
	return cur.ret, cur.retOK, cur
}

func ccBackoff(spins int) {
	if spins%128 == 0 {
		runtime.Gosched()
	}
}

// seqNode is a node of the sequential linked-list queue underneath.
// next is atomic because, exactly as in the two-lock Michael & Scott
// queue this design descends from, the enqueue combiner writes the
// last node's link while the dequeue combiner may be reading it (they
// meet on the dummy node when the queue is empty).
type seqNode struct {
	value uint64
	next  atomic.Pointer[seqNode]
}

// Queue is the combining FIFO queue.
type Queue struct {
	enqSide *ccSynch
	deqSide *ccSynch
	_       [64]byte
	head    *seqNode // owned by the dequeue combiner
	_       [64]byte
	tail    *seqNode // owned by the enqueue combiner
	_       [64]byte
	// pool recycles retired list nodes from the dequeue combiner back
	// to the enqueue combiner. The C original's sequential benchmark
	// advantage (the paper: "it reuses the same node for every
	// enqueue/dequeue pair") depends on nodes not being reallocated;
	// without this the Go port pays an allocation per enqueue.
	pool sync.Pool
}

// New returns an empty queue.
func New() *Queue {
	dummy := &seqNode{}
	q := &Queue{
		enqSide: newCCSynch(),
		deqSide: newCCSynch(),
		head:    dummy,
		tail:    dummy,
	}
	q.pool.New = func() any { return new(seqNode) }
	return q
}

// Handle is a per-goroutine registration carrying the caller's
// reusable combining nodes.
type Handle struct {
	q       *Queue
	enqNode *ccNode
	deqNode *ccNode
}

// Register returns a handle for the calling goroutine. Each goroutine
// must use its own handle.
func (q *Queue) Register() *Handle {
	return &Handle{q: q, enqNode: &ccNode{}, deqNode: &ccNode{}}
}

// Enqueue inserts v at the tail.
func (h *Handle) Enqueue(v uint64) {
	_, _, h.enqNode = h.q.enqSide.apply(h.enqNode, v, h.q.seqEnqueue)
}

// Dequeue removes the item at the head; ok=false if the queue was
// observed empty.
func (h *Handle) Dequeue() (uint64, bool) {
	v, ok, n := h.q.deqSide.apply(h.deqNode, 0, func(uint64) (uint64, bool) { return h.q.seqDequeue() })
	h.deqNode = n
	return v, ok
}

// seqEnqueue runs under the enqueue combiner only. The value is
// written before the atomic link store, so the dequeue combiner that
// observes the link also observes the value.
func (q *Queue) seqEnqueue(v uint64) (uint64, bool) {
	n := q.pool.Get().(*seqNode)
	n.value = v
	n.next.Store(nil)
	q.tail.next.Store(n)
	q.tail = n
	return 0, true
}

// seqDequeue runs under the dequeue combiner only.
func (q *Queue) seqDequeue() (uint64, bool) {
	next := q.head.next.Load()
	if next == nil {
		return 0, false
	}
	v := next.value
	old := q.head
	q.head = next
	// old is unreachable from the list now; recycle it. (next's value
	// was copied out above, so the node can be reused immediately.)
	q.pool.Put(old)
	return v, true
}
