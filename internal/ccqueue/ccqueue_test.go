package ccqueue_test

import (
	"sync"
	"testing"

	"ffq/internal/ccqueue"
	"ffq/internal/queue"
	"ffq/internal/queuetest"
)

type adapter struct{ q *ccqueue.Queue }

func (a adapter) Register() queue.Queue { return a.q.Register() }

func factory() queue.Factory {
	return queue.Factory{
		Name: "ccqueue",
		New: func(_, _ int) queue.Shared {
			return adapter{ccqueue.New()}
		},
	}
}

func TestSequential(t *testing.T) {
	queuetest.Sequential(t, factory(), queuetest.DefaultOptions())
}

func TestEmpty(t *testing.T) {
	queuetest.EmptyBehaviour(t, factory())
}

func TestConcurrent(t *testing.T) {
	queuetest.Concurrent(t, factory(), queuetest.DefaultOptions())
}

func TestManyThreadsCombining(t *testing.T) {
	// More threads than the combining limit, all hammering both sides,
	// so combiner handoff paths are exercised.
	q := ccqueue.New()
	const threads = 8
	const perThread = 5000
	var wg sync.WaitGroup
	sums := make([]uint64, threads)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := q.Register()
			var sum uint64
			for j := 0; j < perThread; j++ {
				h.Enqueue(uint64(j + 1))
				v, ok := h.Dequeue()
				for !ok {
					v, ok = h.Dequeue()
				}
				sum += v
			}
			sums[i] = sum
		}(i)
	}
	wg.Wait()
	var total uint64
	for _, s := range sums {
		total += s
	}
	want := uint64(threads) * uint64(perThread) * uint64(perThread+1) / 2
	if total != want {
		t.Fatalf("sum of dequeued values = %d, want %d", total, want)
	}
}

func TestHandlePerGoroutine(t *testing.T) {
	q := ccqueue.New()
	h1 := q.Register()
	h2 := q.Register()
	h1.Enqueue(1)
	h2.Enqueue(2)
	if v, ok := h2.Dequeue(); !ok || v != 1 {
		t.Fatalf("got %d,%v want 1", v, ok)
	}
	if v, ok := h1.Dequeue(); !ok || v != 2 {
		t.Fatalf("got %d,%v want 2", v, ok)
	}
}
