//go:build linux

package affinity

import (
	"syscall"
	"unsafe"
)

const pinSupported = true

// cpuSet mirrors the kernel's cpu_set_t (1024 bits).
type cpuSet [16]uint64

func (s *cpuSet) set(cpu int) {
	if cpu >= 0 && cpu < len(s)*64 {
		s[cpu/64] |= 1 << (uint(cpu) % 64)
	}
}

func schedSetaffinity(set *cpuSet) error {
	// pid 0 = the calling thread.
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(unsafe.Sizeof(*set)), uintptr(unsafe.Pointer(set)))
	if errno != 0 {
		return errno
	}
	return nil
}

func schedGetaffinity(set *cpuSet) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(unsafe.Sizeof(*set)), uintptr(unsafe.Pointer(set)))
	if errno != 0 {
		return errno
	}
	return nil
}

// pinThread applies the mask to the current thread. Failures (EPERM
// in sandboxes, EINVAL for offline CPUs) degrade to a no-op.
func pinThread(cpus []int) (func(), error) {
	var prev cpuSet
	if err := schedGetaffinity(&prev); err != nil {
		return func() {}, nil
	}
	var want cpuSet
	for _, c := range cpus {
		want.set(c)
	}
	if err := schedSetaffinity(&want); err != nil {
		return func() {}, nil
	}
	return func() { _ = schedSetaffinity(&prev) }, nil
}
