package affinity

import (
	"runtime"
	"testing"
)

func TestPolicyStrings(t *testing.T) {
	names := map[Policy]string{
		NoAffinity: "no-affinity",
		SameHT:     "same-HT",
		SiblingHT:  "sibling-HT",
		OtherCore:  "other-core",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
		back, err := ParsePolicy(want)
		if err != nil || back != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy parsed")
	}
}

func TestSyntheticTopology(t *testing.T) {
	top := Synthetic(4, 2)
	if top.NumCores() != 4 || top.NumCPUs() != 8 {
		t.Fatalf("cores=%d cpus=%d", top.NumCores(), top.NumCPUs())
	}
	// Linux-style numbering: core 0 holds CPUs {0, 4}.
	if got := top.Cores[0]; len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("core 0 = %v", got)
	}
	// Degenerate args clamp.
	if Synthetic(0, 0).NumCPUs() != 1 {
		t.Error("clamping failed")
	}
}

func TestAssignPolicies(t *testing.T) {
	top := Synthetic(4, 2)
	a := top.Assign(SameHT, 0)
	if len(a.Producer) != 1 || a.Producer[0] != a.Consumer[0] {
		t.Errorf("SameHT: %+v", a)
	}
	a = top.Assign(SiblingHT, 0)
	if a.Producer[0] == a.Consumer[0] {
		t.Errorf("SiblingHT placed both on one CPU: %+v", a)
	}
	if a.Producer[0] != 0 || a.Consumer[0] != 4 {
		t.Errorf("SiblingHT: %+v", a)
	}
	a = top.Assign(OtherCore, 0)
	if a.Producer[0] == a.Consumer[0] {
		t.Errorf("OtherCore on same CPU: %+v", a)
	}
	if top.Assign(NoAffinity, 0).Producer != nil {
		t.Error("NoAffinity returned a pin set")
	}
	// Pairs spread across cores.
	b := top.Assign(SiblingHT, 1)
	if b.Producer[0] == 0 {
		t.Errorf("pair 1 not spread: %+v", b)
	}
}

func TestAssignDegenerateTopologies(t *testing.T) {
	one := Synthetic(1, 1)
	for _, p := range Policies {
		a := one.Assign(p, 0)
		for _, c := range append(a.Producer, a.Consumer...) {
			if c != 0 {
				t.Errorf("%v on 1x1: cpu %d", p, c)
			}
		}
	}
	smt := Synthetic(1, 2)
	a := smt.Assign(OtherCore, 0)
	if len(a.Producer) == 1 && len(a.Consumer) == 1 && a.Producer[0] == a.Consumer[0] {
		t.Errorf("OtherCore on 1x2 should use both HTs: %+v", a)
	}
}

func TestDetectDoesNotPanic(t *testing.T) {
	top := Detect()
	if top.NumCPUs() < 1 {
		t.Fatal("empty topology")
	}
	if top.NumCPUs() < runtime.NumCPU() {
		t.Errorf("topology has %d CPUs, runtime sees %d", top.NumCPUs(), runtime.NumCPU())
	}
}

func TestPinRoundTrip(t *testing.T) {
	// Pin to CPU 0 (always present) and undo. On unsupported
	// platforms this must silently no-op.
	undo, err := Pin([]int{0})
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	undo()
	runtime.UnlockOSThread()

	undo, err = Pin(nil)
	if err != nil {
		t.Fatalf("Pin(nil): %v", err)
	}
	undo()
}
