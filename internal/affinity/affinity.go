// Package affinity pins OS threads to CPUs, reproducing the thread
// placement study of the paper (Section IV-B): on Linux it wraps
// sched_setaffinity on the calling goroutine's locked OS thread; on
// other systems every call degrades to a recorded no-op so benchmarks
// still run (with placement left to the OS, i.e. the paper's "no
// affinity" policy).
//
// The four policies of the paper are modeled by Placement:
//
//   - SiblingHT: producer and consumer on the two hardware threads of
//     one core.
//   - SameHT: producer and consumer time-share one hardware thread.
//   - OtherCore: producer and consumer on different cores.
//   - NoAffinity: the OS scheduler decides.
package affinity

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Policy is one of the paper's four thread-placement strategies.
type Policy uint8

const (
	// NoAffinity leaves placement to the OS scheduler.
	NoAffinity Policy = iota
	// SameHT puts producer and consumer on the same hardware thread.
	SameHT
	// SiblingHT puts them on the two hardware threads of one core.
	SiblingHT
	// OtherCore puts them on different physical cores.
	OtherCore
)

// Policies lists all placement policies in the paper's order.
var Policies = []Policy{SiblingHT, SameHT, OtherCore, NoAffinity}

// String returns the paper's name for the policy.
func (p Policy) String() string {
	switch p {
	case NoAffinity:
		return "no-affinity"
	case SameHT:
		return "same-HT"
	case SiblingHT:
		return "sibling-HT"
	case OtherCore:
		return "other-core"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy converts a policy name (as produced by String) back.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return NoAffinity, fmt.Errorf("affinity: unknown policy %q", s)
}

// Topology describes the CPUs visible to the process as
// core -> hardware threads.
type Topology struct {
	// Cores[i] lists the logical CPU ids sharing physical core i,
	// sorted; cores are sorted by their first CPU id.
	Cores [][]int
}

// NumCPUs returns the number of logical CPUs in the topology.
func (t *Topology) NumCPUs() int {
	n := 0
	for _, c := range t.Cores {
		n += len(c)
	}
	return n
}

// NumCores returns the number of physical cores.
func (t *Topology) NumCores() int { return len(t.Cores) }

// Detect reads /sys/devices/system/cpu to build the topology. When
// sysfs is unavailable (non-Linux, containers without /sys) it
// synthesizes a flat topology of runtime.NumCPU single-thread cores.
func Detect() *Topology {
	if t, err := detectSysfs("/sys/devices/system/cpu"); err == nil && len(t.Cores) > 0 {
		return t
	}
	return Synthetic(runtime.NumCPU(), 1)
}

// Synthetic builds a topology of cores physical cores with htPerCore
// hardware threads each, numbered the common Linux way (thread k of
// core c is CPU c + k*cores).
func Synthetic(cores, htPerCore int) *Topology {
	if cores < 1 {
		cores = 1
	}
	if htPerCore < 1 {
		htPerCore = 1
	}
	t := &Topology{Cores: make([][]int, cores)}
	for c := 0; c < cores; c++ {
		for k := 0; k < htPerCore; k++ {
			t.Cores[c] = append(t.Cores[c], c+k*cores)
		}
	}
	return t
}

// detectSysfs parses core ids out of sysfs.
func detectSysfs(root string) (*Topology, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	type key struct{ pkg, core int }
	groups := map[key][]int{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cpu") {
			continue
		}
		id, err := strconv.Atoi(name[3:])
		if err != nil {
			continue
		}
		coreB, err := os.ReadFile(root + "/" + name + "/topology/core_id")
		if err != nil {
			continue
		}
		pkgB, err := os.ReadFile(root + "/" + name + "/topology/physical_package_id")
		if err != nil {
			pkgB = []byte("0")
		}
		core, err := strconv.Atoi(strings.TrimSpace(string(coreB)))
		if err != nil {
			continue
		}
		pkg, _ := strconv.Atoi(strings.TrimSpace(string(pkgB)))
		groups[key{pkg, core}] = append(groups[key{pkg, core}], id)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("affinity: no topology under %s", root)
	}
	t := &Topology{}
	for _, cpus := range groups {
		sort.Ints(cpus)
		t.Cores = append(t.Cores, cpus)
	}
	sort.Slice(t.Cores, func(i, j int) bool { return t.Cores[i][0] < t.Cores[j][0] })
	return t, nil
}

// Assignment maps one producer/consumer pair (pair index k) to CPU
// sets under a policy. Empty sets mean "no pinning".
type Assignment struct {
	Producer []int
	Consumer []int
}

// Assign computes placement for pair k of nPairs under policy p.
// Pairs are spread round-robin over cores.
func (t *Topology) Assign(p Policy, k int) Assignment {
	if len(t.Cores) == 0 || p == NoAffinity {
		return Assignment{}
	}
	core := t.Cores[k%len(t.Cores)]
	switch p {
	case SameHT:
		cpu := core[0]
		return Assignment{Producer: []int{cpu}, Consumer: []int{cpu}}
	case SiblingHT:
		if len(core) >= 2 {
			return Assignment{Producer: []int{core[0]}, Consumer: []int{core[1]}}
		}
		// No SMT available: degrade to same-HT on this core.
		return Assignment{Producer: []int{core[0]}, Consumer: []int{core[0]}}
	case OtherCore:
		other := t.Cores[(k+1)%len(t.Cores)]
		if len(t.Cores) == 1 {
			// Single core: the best we can do is separate hardware
			// threads (or the same one).
			if len(core) >= 2 {
				return Assignment{Producer: []int{core[0]}, Consumer: []int{core[1]}}
			}
			return Assignment{Producer: []int{core[0]}, Consumer: []int{core[0]}}
		}
		return Assignment{Producer: []int{core[0]}, Consumer: []int{other[0]}}
	default:
		return Assignment{}
	}
}

// Pin restricts the calling goroutine's OS thread to cpus and returns
// an undo function restoring the previous mask. The goroutine must
// already be locked to its thread (runtime.LockOSThread); Pin calls
// LockOSThread itself as a belt-and-braces measure. An empty cpus
// slice is a no-op.
//
// On unsupported platforms or when the syscall fails (e.g. restricted
// containers) Pin records the attempt and returns a no-op undo with a
// nil error: affinity is an optimization, not a correctness
// requirement, and the paper's "no affinity" behaviour is the natural
// fallback.
func Pin(cpus []int) (undo func(), err error) {
	if len(cpus) == 0 {
		return func() {}, nil
	}
	runtime.LockOSThread()
	return pinThread(cpus)
}

// Supported reports whether thread pinning actually takes effect on
// this platform/build.
func Supported() bool { return pinSupported }
