//go:build !linux

package affinity

const pinSupported = false

// pinThread is a no-op outside Linux; placement falls back to the OS
// scheduler (the paper's "no affinity" policy).
func pinThread(cpus []int) (func(), error) {
	return func() {}, nil
}
