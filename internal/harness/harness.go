// Package harness repeats benchmark runs and aggregates their results,
// following the paper's methodology (Section V-A: "the reported
// results represent the average of 10 runs"). It also centralizes the
// scaling knobs that let the full paper-sized experiments shrink to
// CI-sized smoke runs without changing the experiment code.
package harness

import (
	"ffq/internal/stats"
)

// Repeat runs fn `runs` times (at least once) and returns the summary
// of its returned metric.
func Repeat(runs int, fn func() float64) stats.Summary {
	if runs < 1 {
		runs = 1
	}
	var s stats.Stream
	for i := 0; i < runs; i++ {
		s.Add(fn())
	}
	return s.Summarize()
}

// RepeatErr is Repeat for metric functions that can fail; the first
// error aborts.
func RepeatErr(runs int, fn func() (float64, error)) (stats.Summary, error) {
	if runs < 1 {
		runs = 1
	}
	var s stats.Stream
	for i := 0; i < runs; i++ {
		v, err := fn()
		if err != nil {
			return stats.Summary{}, err
		}
		s.Add(v)
	}
	return s.Summarize(), nil
}

// ScaleInt multiplies n by scale, clamping to at least min.
func ScaleInt(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		return min
	}
	return v
}

// PowersOfTwo returns 2^lo .. 2^hi inclusive.
func PowersOfTwo(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// ThreadSweep returns the thread counts for a comparative sweep:
// doubling from 1 up to 2*maxCPU (the paper oversubscribes 2x).
func ThreadSweep(maxCPU int) []int {
	if maxCPU < 1 {
		maxCPU = 1
	}
	var out []int
	for t := 1; t <= 2*maxCPU; t *= 2 {
		out = append(out, t)
	}
	return out
}
