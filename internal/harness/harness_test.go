package harness

import (
	"testing"
)

func TestRepeat(t *testing.T) {
	calls := 0
	sum := Repeat(5, func() float64 { calls++; return float64(calls) })
	if calls != 5 || sum.N != 5 || sum.Mean != 3 {
		t.Fatalf("calls=%d summary=%+v", calls, sum)
	}
	// Clamps to one run.
	calls = 0
	Repeat(0, func() float64 { calls++; return 0 })
	if calls != 1 {
		t.Fatalf("runs=0 executed %d times", calls)
	}
}

func TestRepeatErr(t *testing.T) {
	sum, err := RepeatErr(3, func() (float64, error) { return 2, nil })
	if err != nil || sum.Mean != 2 {
		t.Fatalf("%v %+v", err, sum)
	}
	calls := 0
	_, err = RepeatErr(3, func() (float64, error) {
		calls++
		return 0, errTest
	})
	if err == nil || calls != 1 {
		t.Fatalf("error not propagated immediately: %v calls=%d", err, calls)
	}
}

type testErr struct{}

func (testErr) Error() string { return "boom" }

var errTest = testErr{}

func TestScaleInt(t *testing.T) {
	if ScaleInt(1000, 0.5, 1) != 500 {
		t.Error("scale 0.5")
	}
	if ScaleInt(1000, 0.0001, 25) != 25 {
		t.Error("min clamp")
	}
	if ScaleInt(1000, 2, 1) != 2000 {
		t.Error("scale 2")
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(3, 6)
	want := []int{8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%v", got)
		}
	}
	if PowersOfTwo(5, 4) != nil {
		t.Error("inverted range should be empty")
	}
}

func TestThreadSweep(t *testing.T) {
	got := ThreadSweep(4)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%v", got)
		}
	}
	if got := ThreadSweep(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("clamped sweep: %v", got)
	}
}
