package analysis

import (
	"go/ast"
	"go/types"
)

// atomicCheck enforces atomic discipline:
//
//  1. sync/atomic values (atomic.Int64, atomic.Pointer[T], ...) must
//     never be copied: no by-value parameters, results, receivers,
//     assignments, call arguments, or composite-literal elements that
//     copy an existing atomic value.
//  2. a struct field whose address is passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, 1) style) must never be read or written
//     plainly anywhere else in the package.
type atomicCheck struct{}

func (atomicCheck) ID() string { return "atomic-discipline" }
func (atomicCheck) Doc() string {
	return "fields accessed via sync/atomic must never be accessed plainly, and atomic values must not be copied"
}

func (c atomicCheck) Run(ctx *Context, p *Package) []Finding {
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(n.Pos()),
			Check:   c.ID(),
			Message: sprintf(format, args...),
		})
	}

	// atomicFields collects fields the package accesses through
	// sync/atomic package functions; allowedSel marks the selector
	// expressions that constitute those sanctioned accesses.
	atomicFields := make(map[types.Object]bool)
	allowedSel := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			if pkgPathOf(callee) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObjOf(p.Info, sel); obj != nil {
					atomicFields[obj] = true
					allowedSel[sel] = true
				}
			}
			return true
		})
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if allowedSel[n] {
					return true
				}
				obj := fieldObjOf(p.Info, n)
				if obj != nil && atomicFields[obj] {
					report(n, "plain access to field %s, which is accessed with sync/atomic elsewhere (use the atomic API everywhere)", obj.Name())
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					c.checkCopy(p, rhs, "assignment copies", report)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					c.checkCopy(p, v, "initialization copies", report)
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					c.checkCopy(p, elt, "composite literal copies", report)
				}
			case *ast.CallExpr:
				if isConversion(p.Info, n) {
					return true
				}
				for _, arg := range n.Args {
					c.checkCopy(p, arg, "call passes", report)
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					c.checkCopy(p, r, "return copies", report)
				}
			case *ast.FuncDecl:
				c.checkSignature(p, n, report)
			case *ast.RangeStmt:
				// range over an array (not slice) of atomics copies
				// every element into the value variable.
				if n.Value != nil && isAtomicValueType(typeOf(p.Info, n.Value)) {
					report(n.Value, "range copies atomic values element-wise (iterate by index or over pointers)")
				}
			}
			return true
		})
	}
	return out
}

// checkCopy flags e when it denotes an existing sync/atomic value used
// in a copying context.
func (atomicCheck) checkCopy(p *Package, e ast.Expr, what string, report func(ast.Node, string, ...any)) {
	if !denotesExistingValue(e) {
		return
	}
	if t := typeOf(p.Info, e); isAtomicValueType(t) {
		report(e, "%s atomic value of type %s (operate through a pointer instead)", what, typeString(t))
	}
}

// checkSignature flags by-value atomic parameters, results, and
// receivers.
func (atomicCheck) checkSignature(p *Package, fd *ast.FuncDecl, report func(ast.Node, string, ...any)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if t := typeOf(p.Info, field.Type); isAtomicValueType(t) {
				report(field.Type, "%s of %s takes atomic type %s by value (use a pointer)", what, fd.Name.Name, typeString(t))
			}
		}
	}
	check(fd.Recv, "receiver")
	if fd.Type != nil {
		check(fd.Type.Params, "parameter")
		check(fd.Type.Results, "result")
	}
}

// fieldObjOf resolves sel to a struct field object, or nil.
func fieldObjOf(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// typeString renders t compactly (trimming the package path of named
// types to the package name).
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string {
		if p == nil {
			return ""
		}
		return p.Name()
	})
}
