package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/constant"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package together with everything
// the checkers need.
type Package struct {
	Path    string // import path ("ffq/internal/core")
	Dir     string // absolute directory
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sizes   types.Sizes
	Markers *Markers
	// TypeErrors collects type-checker diagnostics. The checkers still
	// run (guarding every Info lookup), but drivers usually refuse to
	// certify a tree that does not type-check.
	TypeErrors []error
}

// Loader loads and type-checks packages of one module using only the
// standard library: module-internal imports resolve through the loader
// itself, everything else through the source importer (which compiles
// stdlib packages from GOROOT source, so no export data is needed).
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string
	Sizes      types.Sizes

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
	// decls indexes every function declaration of every loaded module
	// package by its types object, for cross-package body lookups.
	decls map[types.Object]*ast.FuncDecl
}

// NewLoader locates the enclosing module of dir and returns a loader
// for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: path,
		Sizes:      sizes,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		decls:      make(map[types.Object]*ast.FuncDecl),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mp := strings.TrimSpace(rest)
					mp = strings.Trim(mp, `"`)
					if mp != "" {
						return d, mp, nil
					}
				}
			}
			return "", "", fmt.Errorf("%s: no module path", filepath.Join(d, "go.mod"))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Expand resolves package patterns ("./...", "./internal/core", a bare
// directory) relative to base into package directories: directories
// containing at least one buildable non-test .go file. testdata,
// vendor, hidden and underscore-prefixed directories are skipped by
// ... expansion, matching the go tool.
func (l *Loader) Expand(base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] && l.hasGoFiles(d) {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		} else if pat == "..." {
			rec, pat = true, "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !rec {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one buildable non-test
// Go file.
func (l *Loader) hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.IsDir() || !includeFileName(e.Name()) {
			continue
		}
		return true
	}
	return false
}

// importPathOf maps a directory under the module root to its import
// path.
func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDirs loads the given package directories (and, transitively,
// their module-internal imports).
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var pkgs []*Package
	for _, dir := range dirs {
		dir, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		path, err := l.importPathOf(dir)
		if err != nil {
			return nil, err
		}
		p, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Import implements types.Importer over module-internal paths, with
// the source importer covering the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.loadPath(path, filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("package %s did not type-check", path)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadPath parses and type-checks one package directory (memoized).
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !includeFileName(e.Name()) {
			continue
		}
		fn := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		if !includeFileTags(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Sizes: l.Sizes,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    l.Sizes,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns an error when any diagnostic fired; the collected
	// TypeErrors carry the details, and partial Info is still usable.
	p.Types, _ = conf.Check(path, l.Fset, files, p.Info)
	p.Markers = parseMarkers(l.Fset, files)
	for ident, obj := range p.Info.Defs {
		if _, ok := obj.(*types.Func); ok {
			if fd := findFuncDecl(files, ident); fd != nil {
				l.decls[obj] = fd
			}
		}
	}
	l.pkgs[path] = p
	return p, nil
}

// findFuncDecl locates the FuncDecl whose name is ident.
func findFuncDecl(files []*ast.File, ident *ast.Ident) *ast.FuncDecl {
	for _, f := range files {
		if f.Pos() <= ident.Pos() && ident.Pos() <= f.End() {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name == ident {
					return fd
				}
			}
		}
	}
	return nil
}

// declOf returns the FuncDecl of a module function object, or nil.
func (l *Loader) declOf(obj types.Object) *ast.FuncDecl {
	if l == nil {
		return nil
	}
	return l.decls[obj]
}

// cacheLineConst reads the CacheLineSize constant from the module's
// internal/core package when it is among the loaded set.
func (l *Loader) cacheLineConst() (int64, bool) {
	p, ok := l.pkgs[l.ModulePath+"/internal/core"]
	if !ok || p.Types == nil {
		return 0, false
	}
	obj := p.Types.Scope().Lookup("CacheLineSize")
	c, ok := obj.(*types.Const)
	if !ok {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	return v, ok
}

// goosList and goarchList are the filename-suffix vocabularies the go
// tool recognizes (subset sufficient for this module).
var goosList = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var goarchList = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// includeFileName applies the _test and _GOOS/_GOARCH filename rules
// against the current runtime platform.
func includeFileName(name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
		return false
	}
	if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
		return false
	}
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	// Trailing _GOARCH, _GOOS, or _GOOS_GOARCH constrain the file. The
	// first token is the base name and never a constraint.
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if goarchList[last] {
			if last != runtime.GOARCH {
				return false
			}
			if len(parts) >= 3 && goosList[parts[len(parts)-2]] {
				return parts[len(parts)-2] == runtime.GOOS
			}
			return true
		}
		if goosList[last] {
			return last == runtime.GOOS
		}
	}
	return true
}

// includeFileTags evaluates the file's build constraints (both
// //go:build and legacy // +build) against the runtime platform.
func includeFileTags(src []byte) bool {
	var exprs []constraint.Expr
	var goBuild constraint.Expr
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if constraint.IsGoBuild(trimmed) {
			if x, err := constraint.Parse(trimmed); err == nil {
				goBuild = x
			}
		} else if constraint.IsPlusBuild(trimmed) {
			if x, err := constraint.Parse(trimmed); err == nil {
				exprs = append(exprs, x)
			}
		}
	}
	ok := func(tag string) bool {
		switch {
		case tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc":
			return true
		case tag == "unix":
			return unixOS[runtime.GOOS]
		case strings.HasPrefix(tag, "go1."):
			return true // assume a current toolchain
		}
		return false
	}
	if goBuild != nil {
		return goBuild.Eval(ok)
	}
	for _, x := range exprs {
		if !x.Eval(ok) {
			return false
		}
	}
	return true
}

// CheckSource parses and analyzes a single standalone source file with
// imports left unresolved (types.Info is partial). It is the
// entry point of the FuzzLintParse target and must never panic on any
// parseable input.
func CheckSource(filename string, src []byte) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	files := []*ast.File{f}
	p := &Package{
		Path:  "fuzz",
		Fset:  fset,
		Files: files,
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	if p.Sizes == nil {
		p.Sizes = types.SizesFor("gc", "amd64")
	}
	conf := types.Config{
		Importer: failImporter{},
		Sizes:    p.Sizes,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = conf.Check("fuzz", fset, files, p.Info)
	p.Markers = parseMarkers(fset, files)

	ctx := &Context{CacheLine: 64, pkgs: []*Package{p}}
	var out []Finding
	out = append(out, p.Markers.Bad...)
	for _, c := range Checks() {
		out = append(out, c.Run(ctx, p)...)
	}
	var kept []Finding
	for _, f := range out {
		if !p.Markers.suppressed(f) {
			kept = append(kept, f)
		}
	}
	kept = append(kept, staleFindings(p)...)
	return kept, nil
}

// failImporter rejects every import; CheckSource uses it so that fuzz
// inputs cannot reach the filesystem or the go command.
type failImporter struct{}

func (failImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return nil, fmt.Errorf("import %q not available in single-source mode", path)
}
