// Package analysis is ffq's concurrency-invariant lint suite: a set of
// AST- and type-driven checkers, written purely against the standard
// library's go/parser, go/ast, go/types and go/importer packages, that
// machine-check the conventions the FFQ algorithms depend on but the
// compiler cannot see.
//
// # Checks
//
//   - atomic-discipline: a struct field accessed through sync/atomic
//     must never be read or written plainly elsewhere, and sync/atomic
//     values (atomic.Int64, atomic.Pointer[T], ...) must never be
//     copied by value.
//   - padding: a struct marked //ffq:padded must have a types.Sizes
//     size that is a multiple of the cache-line constant
//     (core.CacheLineSize), and no two atomic fields of the struct may
//     share a cache-line-sized block.
//   - hotpath-purity: a function marked //ffq:hotpath must not
//     allocate, call fmt/time/sync/os/log/reflect, range over a map,
//     box values into interfaces, spawn goroutines, or defer. Blocks
//     guarded by an instrumentation nil-check (if rec != nil, where
//     rec is a *Recorder) are exempt: they are off the uninstrumented
//     fast path by construction.
//   - spin-backoff: a for loop that retries an atomic Load or
//     CompareAndSwap must reach a backoff point — a call into
//     internal/core/backoff.go, runtime.Gosched, time.Sleep, or a
//     helper that directly performs one of those.
//   - lap-packing: the packed 64-bit (rank, gap) word is only built and
//     split through functions marked //ffq:packhelper; ad-hoc 32-bit
//     shifts on 64-bit words are flagged anywhere else.
//
// # Markers
//
// Markers are magic comments with no space after //, mirroring
// //go:build:
//
//	//ffq:hotpath            on a function declaration
//	//ffq:padded             on a struct type declaration
//	//ffq:packhelper         on a function declaration
//	//ffq:ignore CHECK reason  suppresses CHECK findings on the
//	                           comment's own line and the next line
//
// A malformed marker (unknown verb, ignore without a check ID or
// reason) is itself reported under the check ID "marker".
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one reported violation.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
}

// Check is one invariant checker.
type Check interface {
	// ID is the stable check identifier used in reports and
	// //ffq:ignore comments.
	ID() string
	// Doc is a one-line description.
	Doc() string
	// Run reports the violations found in pkg. Implementations must
	// tolerate packages with type errors (missing types.Info entries)
	// and must never panic on malformed input.
	Run(ctx *Context, pkg *Package) []Finding
}

// Context carries module-wide facts shared by all checkers.
type Context struct {
	// CacheLine is the padding granularity, read from the module's
	// internal/core CacheLineSize constant when that package is among
	// the loaded set, 64 otherwise.
	CacheLine int64
	// loader gives cross-package access (function declaration lookup
	// for the spin-backoff one-level expansion). Nil in single-source
	// mode (CheckSource).
	loader *Loader
}

// Checks returns the full suite in reporting order.
func Checks() []Check {
	return []Check{
		&atomicCheck{},
		&paddingCheck{},
		&hotpathCheck{},
		&spinCheck{},
		&lapCheck{},
	}
}

// CheckIDs returns the stable identifiers of every check in the suite,
// plus the pseudo-check "marker" used for malformed markers.
func CheckIDs() []string {
	ids := []string{markerCheckID}
	for _, c := range Checks() {
		ids = append(ids, c.ID())
	}
	sort.Strings(ids)
	return ids
}

// validCheckID reports whether id names a check (for //ffq:ignore
// validation). "all" is accepted and suppresses every check.
func validCheckID(id string) bool {
	if id == "all" || id == markerCheckID {
		return true
	}
	for _, c := range Checks() {
		if c.ID() == id {
			return true
		}
	}
	return false
}

// Run executes the whole suite over the loaded packages, applies
// //ffq:ignore suppressions, folds in malformed-marker findings, and
// returns the surviving findings sorted by position.
func Run(l *Loader, pkgs []*Package) []Finding {
	ctx := &Context{CacheLine: 64, loader: l}
	if l != nil {
		if cl, ok := l.cacheLineConst(); ok {
			ctx.CacheLine = cl
		}
	}
	var out []Finding
	for _, p := range pkgs {
		var raw []Finding
		raw = append(raw, p.Markers.Bad...)
		for _, c := range Checks() {
			raw = append(raw, c.Run(ctx, p)...)
		}
		for _, f := range raw {
			if p.Markers.suppressed(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
