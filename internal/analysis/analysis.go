// Package analysis is ffq's concurrency-invariant lint suite: a set of
// AST- and type-driven checkers, written purely against the standard
// library's go/parser, go/ast, go/types and go/importer packages, that
// machine-check the conventions the FFQ algorithms depend on but the
// compiler cannot see.
//
// # Checks
//
//   - atomic-discipline: a struct field accessed through sync/atomic
//     must never be read or written plainly elsewhere, and sync/atomic
//     values (atomic.Int64, atomic.Pointer[T], ...) must never be
//     copied by value.
//   - atomic-publish: module-wide release/acquire publication pairing
//     — a field written via package-form atomic.Store*/Add*/Swap*/
//     CompareAndSwap* must never be accessed plainly in any other
//     package of the module, and a field that is atomically stored but
//     never atomically loaded anywhere is an orphan publication.
//     //ffq:plainread reason sanctions init-before-publish accesses.
//   - padding: a struct marked //ffq:padded must have a types.Sizes
//     size that is a multiple of the cache-line constant
//     (core.CacheLineSize), and no two atomic fields of the struct may
//     share a cache-line-sized block.
//   - hotpath-purity: a function marked //ffq:hotpath must not
//     allocate, call fmt/time/sync/os/log/reflect, range over a map,
//     box values into interfaces, spawn goroutines, or defer. Blocks
//     guarded by an instrumentation nil-check (if rec != nil, where
//     rec is a *Recorder) are exempt: they are off the uninstrumented
//     fast path by construction.
//   - hotpath-alloc: allocation-freedom of //ffq:hotpath functions —
//     the heap-allocating constructs hotpath-purity does not already
//     police (map index-assign, addresses of locals escaping via
//     return or heap assignment), plus the full allocation rule set
//     applied one call level deep into //ffq:packhelper helpers
//     (composite literals, closures, make/new, growing append, string
//     concatenation, interface boxing). Cross-validated dynamically by
//     the testing.AllocsPerRun hot-path gate.
//   - spin-backoff: a for loop that retries an atomic Load or
//     CompareAndSwap must reach a backoff point — a call into
//     internal/core/backoff.go, runtime.Gosched, time.Sleep, or a
//     helper that directly performs one of those.
//   - goroutine-lifecycle: every go statement must be provably joined:
//     a sync.WaitGroup.Add lexically dominating the spawn with a
//     reachable Wait, or a spawned body that calls WaitGroup.Done or
//     signals a done channel (send or close). Goroutines that
//     legitimately outlive their spawner carry //ffq:detached reason.
//   - lap-packing: the packed 64-bit (rank, gap) word is only built and
//     split through functions marked //ffq:packhelper; ad-hoc 32-bit
//     shifts on 64-bit words are flagged anywhere else.
//
// # Markers
//
// Markers are magic comments with no space after //, mirroring
// //go:build:
//
//	//ffq:hotpath            on a function declaration
//	//ffq:padded             on a struct type declaration
//	//ffq:packhelper         on a function declaration
//	//ffq:ignore CHECK reason  suppresses CHECK findings on the
//	                           comment's own line and the next line
//	//ffq:plainread reason   sanctions a plain access to an atomically
//	                         published field (init-before-publish)
//	//ffq:detached reason    sanctions an unjoined go statement
//
// A malformed marker (unknown verb, a directive without a reason) is
// itself reported under the check ID "marker". A line-scoped directive
// that no longer suppresses or sanctions anything is reported under
// the check ID "stale-ignore": suppressions must die with the finding
// they justified.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one reported violation.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
}

// Check is one invariant checker.
type Check interface {
	// ID is the stable check identifier used in reports and
	// //ffq:ignore comments.
	ID() string
	// Doc is a one-line description.
	Doc() string
	// Run reports the violations found in pkg. Implementations must
	// tolerate packages with type errors (missing types.Info entries)
	// and must never panic on malformed input.
	Run(ctx *Context, pkg *Package) []Finding
}

// Context carries module-wide facts shared by all checkers.
type Context struct {
	// CacheLine is the padding granularity, read from the module's
	// internal/core CacheLineSize constant when that package is among
	// the loaded set, 64 otherwise.
	CacheLine int64
	// loader gives cross-package access (function declaration lookup
	// for the spin-backoff one-level expansion). Nil in single-source
	// mode (CheckSource).
	loader *Loader
	// publish caches the module-wide atomic publication facts of the
	// atomic-publish check, computed once per Run.
	publish *publishFacts
	// pkgs is the package set of this Run; with a nil loader it is the
	// only view the cross-package checkers have.
	pkgs []*Package
}

// Checks returns the full suite in reporting order.
func Checks() []Check {
	return []Check{
		&atomicCheck{},
		&publishCheck{},
		&paddingCheck{},
		&hotpathCheck{},
		&allocCheck{},
		&spinCheck{},
		&goroutineCheck{},
		&lapCheck{},
	}
}

// CheckIDs returns the stable identifiers of every check in the suite,
// plus the pseudo-checks "marker" (malformed markers) and
// "stale-ignore" (suppressions that suppress nothing).
func CheckIDs() []string {
	ids := []string{markerCheckID, staleCheckID}
	for _, c := range Checks() {
		ids = append(ids, c.ID())
	}
	sort.Strings(ids)
	return ids
}

// validCheckID reports whether id names a check (for //ffq:ignore
// validation). "all" is accepted and suppresses every check.
func validCheckID(id string) bool {
	if id == "all" || id == markerCheckID || id == staleCheckID {
		return true
	}
	for _, c := range Checks() {
		if c.ID() == id {
			return true
		}
	}
	return false
}

// Run executes the whole suite over the loaded packages, applies
// //ffq:ignore suppressions, folds in malformed-marker findings, and
// returns the surviving findings sorted by position.
func Run(l *Loader, pkgs []*Package) []Finding {
	ctx := &Context{CacheLine: 64, loader: l, pkgs: pkgs}
	if l != nil {
		if cl, ok := l.cacheLineConst(); ok {
			ctx.CacheLine = cl
		}
	}
	var out []Finding
	for _, p := range pkgs {
		var raw []Finding
		raw = append(raw, p.Markers.Bad...)
		for _, c := range Checks() {
			raw = append(raw, c.Run(ctx, p)...)
		}
		for _, f := range raw {
			if p.Markers.suppressed(f) {
				continue
			}
			out = append(out, f)
		}
		out = append(out, staleFindings(p)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// staleFindings runs the stale-suppression audit on a package after
// the checker pass: every line-scoped directive that suppressed or
// sanctioned nothing becomes a stale-ignore finding. The audit is
// two-phase — candidates are first matched against //ffq:ignore
// stale-ignore suppressions, then only directives that are still
// unused are reported — so a suppression consumed by the audit itself
// is not flagged by the same pass.
func staleFindings(p *Package) []Finding {
	stale := p.Markers.staleDirectives()
	if len(stale) == 0 {
		return nil
	}
	type candidate struct {
		d    *lineDirective
		f    Finding
		kept bool
	}
	cands := make([]candidate, 0, len(stale))
	for _, d := range stale {
		f := Finding{Pos: d.pos, Check: staleCheckID, Message: staleMessage(d)}
		cands = append(cands, candidate{d: d, f: f, kept: !p.Markers.suppressed(f)})
	}
	var out []Finding
	for _, c := range cands {
		if c.kept && !c.d.used {
			out = append(out, c.f)
		}
	}
	return out
}
