package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}

// atomicTypeNames are the value types of sync/atomic whose copies and
// mixed accesses the suite polices.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicValueType reports whether t is (an instantiation of) one of
// the sync/atomic value types.
func isAtomicValueType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

// pkgPathOf returns the import path of the package declaring obj, or
// "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleeOf resolves the object a call expression invokes (function,
// method, or builtin), or nil when unresolved.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
		if se, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			if sel, ok := info.Selections[se]; ok {
				return sel.Obj()
			}
			return info.Uses[se.Sel]
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
	}
	return nil
}

// isConversion reports whether the call expression is a type
// conversion rather than a function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// typeOf returns the static type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// denotesExistingValue reports whether e names an existing addressable
// value (so that using it in a value context copies it), as opposed to
// a fresh composite literal, conversion, or call result.
func denotesExistingValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.UnaryExpr:
		return false
	default:
		_ = e
		return false
	}
}

// walkSkipFuncLit walks the AST rooted at n, calling fn on every node
// but not descending into function literals (their bodies run on
// different goroutines or colder paths than the enclosing code).
// fn returning false prunes the subtree.
func walkSkipFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}

// funcDeclName renders a readable name for a function declaration
// (with receiver type for methods).
func funcDeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	return fmt.Sprintf("(%s).%s", exprString(recv), fd.Name.Name)
}

// exprString renders simple type expressions (idents, stars, generic
// indexes) without importing go/printer.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.IndexListExpr:
		s := exprString(e.X) + "["
		for i, ix := range e.Indices {
			if i > 0 {
				s += ", "
			}
			s += exprString(ix)
		}
		return s + "]"
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "?"
	}
}
