package analysis

import "testing"

// FuzzLintParse drives arbitrary source through the single-file
// analysis entry point. The invariant: the marker parser and every
// checker tolerate any input — malformed markers, type errors, partial
// type info — without panicking. Seeds cover every marker verb in
// well-formed, truncated, and misplaced positions.
func FuzzLintParse(f *testing.F) {
	seeds := []string{
		"package p\n",
		"package p\n//ffq:ignore\n",
		"package p\n//ffq:ignore spin-backoff because the loop is bounded\nfunc f() {}\n",
		"//ffq:padded\npackage p\n",
		"package p\n\n//ffq:hotpath\nfunc f() { go f() }\n",
		"package p\n\n//ffq:hotpath\nfunc f() { defer f() }\n",
		"package p\n\n//ffq:padded\ntype T struct{ a, b int64 }\n",
		"package p\n\n//ffq:padded\ntype T int\n",
		"package p\n\n//ffq:packhelper\nfunc pk(x uint32) uint64 { return uint64(x) << 32 }\n",
		"package p\n\nfunc g(w uint64) uint64 { return w >> 32 }\n",
		"package p\n\n//ffq:frobnicate\nvar x int\n",
		"package p\n//ffq:hotpath trailing junk\nvar x int\n",
		"package p\nimport \"sync/atomic\"\nvar v atomic.Int64\nfunc h() { for { if v.Load() == 0 { break } } }\n",
		"package p\nimport \"sync/atomic\"\ntype s struct{ n int64 }\nfunc h(x *s) { atomic.AddInt64(&x.n, 1); x.n = 2 }\n",
		"package p\n//want:padding \"x\"\n//want+1:marker\n",
		"package p\n//ffq:ignore all \x00\xff\n",
		"package p\n//ffq:",
		"package p\n//ffq:plainread\n",
		"package p\n//ffq:detached\n",
		"package p\ntype s struct{ f uint64 }\nfunc h(x *s) uint64 {\n\t//ffq:plainread not yet shared\n\treturn x.f\n}\n",
		"package p\nfunc h() {\n\t//ffq:detached lives for the process\n\tgo h()\n}\n",
		"package p\nfunc h() { go func() {}() }\n",
		"package p\nimport \"sync\"\nfunc h(wg *sync.WaitGroup) { go func() { defer wg.Done() }() }\n",
		"package p\nimport \"sync/atomic\"\ntype s struct{ n int64 }\nfunc h(x *s) { atomic.StoreInt64(&x.n, 1) }\n",
		"package p\nfunc h() int {\n\t//ffq:ignore spin-backoff stale on purpose\n\treturn 0\n}\n",
		"package p\nfunc h() int {\n\t//ffq:ignore stale-ignore kept through refactor\n\t//ffq:ignore padding dead\n\treturn 1\n}\n",
		"package p\n\n//ffq:hotpath\nfunc f(m map[int]int) { m[1] = 2 }\n",
		"package p\n\n//ffq:hotpath\nfunc f(v int) *int { return &v }\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		findings, err := CheckSource("fuzz.go", src)
		if err != nil {
			return // unparseable input is expected; panicking is the bug
		}
		for _, fd := range findings {
			if fd.Check == "" {
				t.Fatalf("finding with empty check ID: %+v", fd)
			}
		}
	})
}
