package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// spinCheck enforces the backoff discipline on spin loops: every
// non-range for loop that retries an atomic Load or CompareAndSwap
// must reach a backoff point, otherwise the lock-free protocols
// degrade to livelock under oversubscription (a spinning goroutine
// can starve the very peer it waits on).
//
// A backoff point is:
//   - a call to a function declared in internal/core/backoff.go (the
//     module's single spin/yield policy),
//   - runtime.Gosched or time.Sleep, or
//   - a call to a module function whose own body directly contains
//     one of those (one level of expansion, covering per-package
//     backoff helpers like ccqueue's ccBackoff).
//
// Loops that are retry-shaped but make guaranteed progress each
// iteration (bounded handshakes, pointer-advancing walks) are
// suppressed case by case with //ffq:ignore spin-backoff <reason>.
type spinCheck struct{}

func (spinCheck) ID() string { return "spin-backoff" }
func (spinCheck) Doc() string {
	return "atomic retry loops must reach internal/core/backoff.go or runtime.Gosched"
}

func (c spinCheck) Run(ctx *Context, p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				// Closure bodies are walked when the enclosing
				// Inspect reaches them; loops inside still match.
				return true
			}
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if !c.loopRetriesAtomically(p, loop) {
				return true
			}
			if c.loopReachesBackoff(ctx, p, loop) {
				return true
			}
			out = append(out, Finding{
				Pos:     p.Fset.Position(loop.Pos()),
				Check:   c.ID(),
				Message: "spin loop retries an atomic load/CAS without a backoff point (call core.Backoff or runtime.Gosched, or justify with //ffq:ignore spin-backoff <reason>)",
			})
			return true
		})
	}
	return out
}

// loopRetriesAtomically reports whether the loop's condition or body
// performs an atomic Load or CompareAndSwap (the retry-shaped
// operations; Store and Add are progress, not polling).
func (spinCheck) loopRetriesAtomically(p *Package, loop *ast.ForStmt) bool {
	found := false
	scan := func(n ast.Node) {
		if n == nil {
			return
		}
		walkSkipFuncLit(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isAtomicRetryCall(p.Info, call) {
				found = true
			}
			return true
		})
	}
	scan(loop.Cond)
	scan(loop.Body)
	return found
}

// isAtomicRetryCall matches Load/CompareAndSwap methods of sync/atomic
// types and the corresponding package-level functions.
func isAtomicRetryCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Load" && name != "CompareAndSwap" {
		// package-level forms: LoadInt64, CompareAndSwapUint64, ...
		if obj := info.Uses[sel.Sel]; pkgPathOf(obj) == "sync/atomic" {
			switch {
			case len(name) > 4 && name[:4] == "Load":
				return true
			case len(name) > 14 && name[:14] == "CompareAndSwap":
				return true
			}
		}
		return false
	}
	// Method form: receiver must be a sync/atomic value type.
	if s, ok := info.Selections[sel]; ok {
		recv := s.Recv()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		return isAtomicValueType(recv)
	}
	return false
}

// loopReachesBackoff reports whether any call in the loop body (or
// condition) is a backoff point, directly or via a one-level helper.
func (c spinCheck) loopReachesBackoff(ctx *Context, p *Package, loop *ast.ForStmt) bool {
	found := false
	scan := func(n ast.Node) {
		if n == nil {
			return
		}
		walkSkipFuncLit(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			if callee == nil {
				return true
			}
			if isBackoffObject(p, callee) {
				found = true
				return true
			}
			// One-level expansion through module helpers.
			if fd := ctx.declOf(callee); fd != nil && fd.Body != nil {
				if bodyHasDirectBackoff(ctx, p, fd) {
					found = true
				}
			}
			return true
		})
	}
	scan(loop.Cond)
	scan(loop.Body)
	scan(loop.Post)
	return found
}

// isBackoffObject reports whether obj is a designated backoff point:
// declared in internal/core/backoff.go, or runtime.Gosched/time.Sleep.
func isBackoffObject(p *Package, obj types.Object) bool {
	switch pkgPathOf(obj) {
	case "runtime":
		return obj.Name() == "Gosched"
	case "time":
		return obj.Name() == "Sleep"
	}
	if !obj.Pos().IsValid() {
		return false
	}
	pos := p.Fset.Position(obj.Pos())
	return filepath.Base(pos.Filename) == "backoff.go" &&
		filepath.Base(filepath.Dir(pos.Filename)) == "core"
}

// declOf resolves a function object to its declaration across loaded
// packages (nil in single-source mode).
func (ctx *Context) declOf(obj types.Object) *ast.FuncDecl {
	if ctx == nil || ctx.loader == nil {
		return nil
	}
	return ctx.loader.declOf(obj)
}

// bodyHasDirectBackoff reports whether fd's body directly calls a
// designated backoff point. One level only: deeper indirection should
// route through core.Backoff instead.
func bodyHasDirectBackoff(ctx *Context, p *Package, fd *ast.FuncDecl) bool {
	// The callee may live in another package; resolve calls with that
	// package's own type info when available.
	target := p
	if ctx.loader != nil {
		pos := p.Fset.Position(fd.Pos())
		for _, cand := range ctx.loader.pkgs {
			if cand.Dir != "" && filepath.Dir(pos.Filename) == cand.Dir {
				target = cand
				break
			}
		}
	}
	found := false
	walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeOf(target.Info, call); callee != nil && isBackoffObject(target, callee) {
			found = true
		}
		return true
	})
	return found
}
