package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// goroutineCheck enforces bounded goroutine lifetimes: every go
// statement must be provably joined, or explicitly annotated
// //ffq:detached reason. Unjoined goroutines are how drain-mode
// shutdown loses writes, tests leak workers across cases, and file
// handles outlive the broker that opened them.
//
// A spawn counts as joined when any of these holds:
//
//  1. WaitGroup discipline: a sync.WaitGroup Add call lexically
//     precedes the go statement inside the same enclosing function,
//     and a Wait call on a sync.WaitGroup is reachable — present in
//     the spawning package, or in the package declaring the spawned
//     function.
//  2. The spawned body — a function literal, or the declaration of the
//     spawned function/method resolved one call level deep — calls
//     sync.WaitGroup.Done (directly or deferred).
//  3. Done-channel discipline: the spawned body sends on or closes a
//     channel (directly or deferred), signalling completion to a
//     joiner.
//
// Known false negatives: an Add in a helper function or a different
// function than the spawn (lexical precedence is an approximation of
// dominance), a Wait that is dynamically unreachable, a done-channel
// send nobody receives, and bodies behind more than one level of
// indirection. Known false positives — goroutines that are genuinely
// fire-and-forget — carry //ffq:detached with the reason the leak is
// bounded.
type goroutineCheck struct{}

func (goroutineCheck) ID() string { return "goroutine-lifecycle" }
func (goroutineCheck) Doc() string {
	return "go statements must be provably joined (WaitGroup or done channel) or marked //ffq:detached"
}

func (c goroutineCheck) Run(ctx *Context, p *Package) []Finding {
	var out []Finding
	pkgHasWait := packageHasWaitGroupWait(p)
	for _, file := range p.Files {
		// funcStack tracks the innermost enclosing function body so the
		// Add-dominates rule scans the right scope.
		var funcStack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				for _, child := range childrenOf(n) {
					ast.Inspect(child, walk)
				}
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.GoStmt:
				c.checkGo(ctx, p, n, funcStack, pkgHasWait, &out)
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return out
}

// childrenOf returns the walkable children of a function node.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			out = append(out, n.Body)
		}
	case *ast.FuncLit:
		if n.Body != nil {
			out = append(out, n.Body)
		}
	}
	return out
}

func (c goroutineCheck) checkGo(ctx *Context, p *Package, g *ast.GoStmt, funcStack []ast.Node, pkgHasWait bool, out *[]Finding) {
	pos := p.Fset.Position(g.Pos())
	if p.Markers.detached(pos.Filename, pos.Line) {
		return
	}

	// Rule 1: Add lexically precedes the spawn in the enclosing
	// function, with a reachable Wait.
	if len(funcStack) > 0 {
		encl := funcStack[len(funcStack)-1]
		if addPrecedes(p, encl, g) && (pkgHasWait || spawnedPackageHasWait(ctx, p, g)) {
			return
		}
	}

	// Rules 2 and 3: the spawned body joins itself — WaitGroup.Done, a
	// channel send, or a channel close, including deferred forms.
	body, bodyPkg := spawnedBody(ctx, p, g)
	if body != nil && bodySignalsCompletion(bodyPkg, body) {
		return
	}

	*out = append(*out, Finding{
		Pos:   pos,
		Check: c.ID(),
		Message: "goroutine is not provably joined: no dominating sync.WaitGroup.Add with a reachable Wait, " +
			"and the spawned body neither calls Done nor signals a done channel (join it, or annotate //ffq:detached reason)",
	})
}

// addPrecedes reports whether a sync.WaitGroup Add call appears before
// the go statement inside the enclosing function node.
func addPrecedes(p *Package, encl ast.Node, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.End() <= g.Pos() &&
			isWaitGroupMethodCall(p.Info, call, "Add") {
			found = true
		}
		return true
	})
	return found
}

// spawnedBody resolves the body the go statement runs: an inline
// function literal, or (one level deep, cross-package via the loader's
// declaration index) the body of the named function or method being
// spawned. The returned package carries the type info the body must be
// resolved against.
func spawnedBody(ctx *Context, p *Package, g *ast.GoStmt) (*ast.BlockStmt, *Package) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, p
	}
	callee := calleeOf(p.Info, g.Call)
	if callee == nil {
		return nil, nil
	}
	fd := ctx.declOf(callee)
	if fd == nil || fd.Body == nil {
		return nil, nil
	}
	return fd.Body, packageAt(ctx, p, fd)
}

// packageAt finds the loaded package whose directory holds the
// declaration, defaulting to p (single-source mode, or same package).
func packageAt(ctx *Context, p *Package, fd *ast.FuncDecl) *Package {
	if ctx == nil || ctx.loader == nil {
		return p
	}
	pos := p.Fset.Position(fd.Pos())
	for _, cand := range ctx.loader.pkgs {
		if cand.Dir != "" && filepath.Dir(pos.Filename) == cand.Dir {
			return cand
		}
	}
	return p
}

// bodySignalsCompletion reports whether the body contains a
// WaitGroup.Done call, a channel send, or a channel close — directly
// or deferred. Nested function literals are not descended into: a
// signal there runs on yet another goroutine.
func bodySignalsCompletion(p *Package, body *ast.BlockStmt) bool {
	if p == nil {
		return false
	}
	found := false
	walkSkipFuncLit(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.DeferStmt:
			if signalCall(p.Info, n.Call) {
				found = true
			}
		case *ast.CallExpr:
			if signalCall(p.Info, n) {
				found = true
			}
		}
		return true
	})
	return found
}

// signalCall reports whether call is WaitGroup.Done or close(ch).
func signalCall(info *types.Info, call *ast.CallExpr) bool {
	if isWaitGroupMethodCall(info, call, "Done") {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			return true
		}
		// Partial type info (single-source mode): trust the name.
		if info.Uses[id] == nil {
			return true
		}
	}
	return false
}

// isWaitGroupMethodCall reports whether call invokes the named method
// on a sync.WaitGroup value or pointer.
func isWaitGroupMethodCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// packageHasWaitGroupWait reports whether any file of the package
// calls sync.WaitGroup.Wait.
func packageHasWaitGroupWait(p *Package) bool {
	for _, file := range p.Files {
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethodCall(p.Info, call, "Wait") {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// spawnedPackageHasWait reports whether the package declaring the
// spawned function contains a WaitGroup.Wait call — covering spawns
// whose join lives next to the spawned body (client goroutines waited
// by the client's own Close).
func spawnedPackageHasWait(ctx *Context, p *Package, g *ast.GoStmt) bool {
	callee := calleeOf(p.Info, g.Call)
	if callee == nil {
		return false
	}
	fd := ctx.declOf(callee)
	if fd == nil {
		return false
	}
	dp := packageAt(ctx, p, fd)
	if dp == nil || dp == p {
		return false
	}
	return packageHasWaitGroupWait(dp)
}
