package analysis

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCheckIDs pins the public check vocabulary: IDs are part of the
// //ffq:ignore and //want: grammars, so renaming one is a breaking
// change for every annotation in the tree.
func TestCheckIDs(t *testing.T) {
	want := []string{
		"atomic-discipline",
		"atomic-publish",
		"goroutine-lifecycle",
		"hotpath-alloc",
		"hotpath-purity",
		"lap-packing",
		"marker",
		"padding",
		"spin-backoff",
		"stale-ignore",
	}
	if got := CheckIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CheckIDs() = %v, want %v", got, want)
	}
}

// TestCorpus is the golden-file suite: it runs every checker over the
// injected-violation corpus and requires an exact bidirectional match
// between findings and //want: comments — every wanted finding fires,
// and nothing unwanted does (the negative cases in each package).
func TestCorpus(t *testing.T) {
	n, err := VerifyCorpus(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("corpus produced zero findings; the checkers are not running")
	}
	t.Logf("corpus: %d findings, all matched by //want: comments", n)
}

// TestShippedTreeClean loads and type-checks the whole module and
// asserts the suite reports nothing: the conventions the checkers
// enforce actually hold in the shipped tree.
func TestShippedTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Expand(l.ModuleRoot, nil)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDirs(dirs)
	if err != nil {
		t.Fatal(err)
	}
	// The walk must reach the binaries and examples, not just the
	// library packages: the goroutine-lifecycle findings this suite
	// exists to catch live disproportionately in cmd/ main packages.
	coverage := map[string]bool{"cmd/": false, "examples/": false, "internal/": false}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, te)
		}
		for prefix := range coverage {
			if rel, err := filepath.Rel(l.ModuleRoot, p.Dir); err == nil &&
				strings.HasPrefix(filepath.ToSlash(rel)+"/", prefix) {
				coverage[prefix] = true
			}
		}
	}
	for prefix, seen := range coverage {
		if !seen {
			t.Errorf("tree walk loaded no packages under %s; the lint gate is not covering the whole module", prefix)
		}
	}
	for _, f := range Run(l, pkgs) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestWantOffset covers the //want+1: form directly: the markers
// corpus package depends on it, so a regression here would silently
// hollow out that case.
func TestWantOffset(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", "markers")
	pkgs, err := l.LoadDirs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	wants, err := parseWants(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("markers corpus has no wants")
	}
	findings := Run(l, pkgs)
	if len(findings) != len(wants) {
		t.Fatalf("markers corpus: %d findings, %d wants", len(findings), len(wants))
	}
	for _, w := range wants {
		if w.check != markerCheckID {
			t.Errorf("markers corpus want %s is not a marker expectation", w)
		}
	}
}
